// Tests for the Rakhmatov-Vrudhula diffusion battery model.
#include <gtest/gtest.h>

#include <cmath>

#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/battery/rakhmatov_vrudhula.hpp"
#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {
namespace {

RakhmatovVrudhulaParameters cell() {
  // alpha sized like the paper's battery, beta ~ minutes-scale diffusion.
  return {.alpha = 7200.0, .beta = 0.02, .modes = 20};
}

TEST(RvModel, Validation) {
  EXPECT_THROW((RakhmatovVrudhulaParameters{0.0, 1.0, 10}.validate()),
               ModelError);
  EXPECT_THROW((RakhmatovVrudhulaParameters{1.0, 0.0, 10}.validate()),
               ModelError);
  EXPECT_THROW((RakhmatovVrudhulaParameters{1.0, 1.0, 0}.validate()),
               ModelError);
}

TEST(RvModel, InitialState) {
  RakhmatovVrudhulaBattery battery(cell());
  EXPECT_DOUBLE_EQ(battery.apparent_charge(), 0.0);
  EXPECT_DOUBLE_EQ(battery.available_charge(), 7200.0);
  EXPECT_DOUBLE_EQ(battery.bound_charge(), 0.0);
  EXPECT_FALSE(battery.empty());
}

TEST(RvModel, ApparentChargeExceedsConsumedUnderLoad) {
  // The diffusion deficit makes the apparent drawn charge larger than the
  // integral of the current -- the rate-capacity effect.
  RakhmatovVrudhulaBattery battery(cell());
  battery.advance(0.96, 1000.0);
  EXPECT_NEAR(battery.consumed_charge(), 960.0, 1e-9);
  EXPECT_GT(battery.apparent_charge(), 960.0);
}

TEST(RvModel, RestRecoversApparentCharge) {
  RakhmatovVrudhulaBattery battery(cell());
  battery.advance(0.96, 1000.0);
  const double before = battery.apparent_charge();
  battery.advance(0.0, 5000.0);
  EXPECT_LT(battery.apparent_charge(), before);
  // Consumed charge unchanged by rest.
  EXPECT_NEAR(battery.consumed_charge(), 960.0, 1e-9);
  // After a very long rest the transient deficit vanishes.
  battery.advance(0.0, 1e7);
  EXPECT_NEAR(battery.apparent_charge(), 960.0, 1e-6);
}

TEST(RvModel, IncrementalAdvanceComposesExactly) {
  RakhmatovVrudhulaBattery once(cell());
  once.advance(0.96, 2000.0);
  RakhmatovVrudhulaBattery split(cell());
  for (int i = 0; i < 4; ++i) split.advance(0.96, 500.0);
  EXPECT_NEAR(once.apparent_charge(), split.apparent_charge(), 1e-8);
}

TEST(RvModel, ConstantLoadLifetimeMatchesClosedForm) {
  const auto params = cell();
  const auto closed = rv_constant_load_lifetime(params, 0.96);
  ASSERT_TRUE(closed.has_value());
  RakhmatovVrudhulaBattery battery(params);
  const auto incremental =
      compute_lifetime(battery, LoadProfile::constant(0.96));
  ASSERT_TRUE(incremental.has_value());
  EXPECT_NEAR(*incremental, *closed, 1e-6 * *closed);
  // Diffusion shortens the lifetime below the ideal alpha / I.
  EXPECT_LT(*closed, 7200.0 / 0.96);
}

TEST(RvModel, HigherLoadDeliversLessCharge) {
  const auto params = cell();
  const double delivered_low =
      0.5 * rv_constant_load_lifetime(params, 0.5).value();
  const double delivered_high =
      2.0 * rv_constant_load_lifetime(params, 2.0).value();
  EXPECT_GT(delivered_low, delivered_high);
}

TEST(RvModel, PulsedLoadOutlivesContinuous) {
  const auto params = cell();
  const double continuous = rv_constant_load_lifetime(params, 0.96).value();
  RakhmatovVrudhulaBattery battery(params);
  const double pulsed =
      compute_lifetime(battery, LoadProfile::square_wave(0.001, 0.96),
                       {.max_time = 1e8})
          .value();
  // At 50% duty the pulsed load must last more than twice as long as it
  // would if recovery bought nothing... at least as long as 2x continuous
  // minus the final on-phase; and recovery buys extra on top.
  EXPECT_GT(pulsed, 1.9 * continuous);
}

TEST(RvModel, FasterDiffusionApproachesIdealBattery) {
  // beta -> large: the deficit relaxes instantly and the lifetime tends to
  // alpha / I.
  const RakhmatovVrudhulaParameters fast{7200.0, 1.0, 20};
  const double life = rv_constant_load_lifetime(fast, 0.96).value();
  EXPECT_NEAR(life, 7500.0, 0.05 * 7500.0);
  const RakhmatovVrudhulaParameters slow{7200.0, 0.005, 20};
  EXPECT_LT(rv_constant_load_lifetime(slow, 0.96).value(), life);
}

TEST(RvModel, SurvivesZeroLoadForever) {
  const auto params = cell();
  EXPECT_FALSE(rv_constant_load_lifetime(params, 0.0).has_value());
  RakhmatovVrudhulaBattery battery(params);
  EXPECT_FALSE(battery.advance(0.0, 1e9).has_value());
  EXPECT_FALSE(battery.empty());
}

TEST(RvModel, ResetRestoresFullCharge) {
  RakhmatovVrudhulaBattery battery(cell());
  battery.advance(0.96, 3000.0);
  battery.reset();
  EXPECT_DOUBLE_EQ(battery.apparent_charge(), 0.0);
  EXPECT_DOUBLE_EQ(battery.available_charge(), 7200.0);
  EXPECT_FALSE(battery.empty());
}

TEST(RvModel, EmptyCrossingDetectedAndSticky) {
  const auto params = cell();
  RakhmatovVrudhulaBattery battery(params);
  const auto crossing = battery.advance(10.0, 1e6);
  ASSERT_TRUE(crossing.has_value());
  EXPECT_TRUE(battery.empty());
  EXPECT_DOUBLE_EQ(battery.advance(1.0, 10.0).value(), 0.0);
}

}  // namespace
}  // namespace kibamrm::battery
