// Tests for the modified KiBaM, the stochastic discrete-recovery model,
// Peukert's law, and the RK4 integrator.
#include <gtest/gtest.h>

#include <cmath>

#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/battery/modified_kibam.hpp"
#include "kibamrm/battery/ode.hpp"
#include "kibamrm/battery/peukert.hpp"
#include "kibamrm/battery/stochastic_battery.hpp"
#include "kibamrm/common/error.hpp"
#include "kibamrm/common/random.hpp"
#include "kibamrm/stats/empirical.hpp"

namespace kibamrm::battery {
namespace {

KibamParameters paper_battery() { return {7200.0, 0.625, 4.5e-5}; }

TEST(Rk4, IntegratesLinearSystemExactly) {
  // dy/dt = (-y1, -2 y2): RK4 on an exponential is accurate to O(h^4).
  const WellOde rhs = [](double, const WellVector& y) -> WellVector {
    return {-y[0], -2.0 * y[1]};
  };
  const WellVector y = rk4_advance(rhs, 0.0, {1.0, 1.0}, 1.0, 100);
  EXPECT_NEAR(y[0], std::exp(-1.0), 1e-9);
  EXPECT_NEAR(y[1], std::exp(-2.0), 1e-8);
}

TEST(Rk4, EventDetectionBisectsCrossing) {
  // y1' = -2: hits zero at exactly t = 0.5 from y1(0) = 1.
  const WellOde rhs = [](double, const WellVector&) -> WellVector {
    return {-2.0, 0.0};
  };
  const OdeEventResult result = rk4_until_event(
      rhs, 0.0, {1.0, 0.0}, 10.0, 0.3,
      [](const WellVector& y) { return y[0] <= 0.0; });
  EXPECT_TRUE(result.event_hit);
  EXPECT_NEAR(result.event_time, 0.5, 1e-8);
}

TEST(Rk4, NoEventReturnsHorizonState) {
  const WellOde rhs = [](double, const WellVector&) -> WellVector {
    return {-0.1, 0.0};
  };
  const OdeEventResult result = rk4_until_event(
      rhs, 0.0, {100.0, 0.0}, 5.0, 1.0,
      [](const WellVector& y) { return y[0] <= 0.0; });
  EXPECT_FALSE(result.event_hit);
  EXPECT_NEAR(result.state[0], 99.5, 1e-10);
}

TEST(ModifiedKibam, RequiresBoundWell) {
  EXPECT_THROW(ModifiedKibamBattery({100.0, 1.0, 0.0}), InvalidArgument);
}

TEST(ModifiedKibam, ConservesChargeUnderLoad) {
  ModifiedKibamBattery battery(paper_battery(), 1.0);
  battery.advance(0.96, 1000.0);
  EXPECT_NEAR(battery.total_charge(), 7200.0 - 960.0, 1e-4);
}

TEST(ModifiedKibam, RecoversLessThanPlainKibamAtDepth) {
  // From the same deep-discharge state, the modified model (whose flow is
  // scaled by the bound well's fill level h2/h2(0) < 1) regains less
  // available charge over an idle interval than the plain KiBaM -- the
  // defining "recovery slower when less charge is left" property (Sec. 3).
  ModifiedKibamBattery modified(paper_battery(), 1.0);
  modified.advance(0.96, 3500.0);
  const double y1_mod = modified.available_charge();
  modified.advance(0.0, 300.0);
  const double gain_modified = modified.available_charge() - y1_mod;

  KibamBattery plain(paper_battery());
  plain.advance(0.96, 3500.0);
  const double y1_plain = plain.available_charge();
  plain.advance(0.0, 300.0);
  const double gain_plain = plain.available_charge() - y1_plain;

  EXPECT_GT(gain_modified, 0.0);
  EXPECT_GT(gain_plain, gain_modified);
}

TEST(ModifiedKibam, DeterministicLifetimeIsFrequencyIndependent) {
  // Table 1's observation: numerically evaluated with a deterministic
  // square wave, the modified KiBaM still shows no frequency dependence.
  const auto lifetime_at = [](double f) {
    ModifiedKibamBattery battery(paper_battery(), 0.5);
    return *compute_lifetime(battery, LoadProfile::square_wave(f, 0.96),
                             {.max_time = 1e7});
  };
  const double life_1hz = lifetime_at(1.0);
  const double life_02hz = lifetime_at(0.2);
  EXPECT_NEAR(life_1hz, life_02hz, 0.02 * life_1hz);
}

TEST(ModifiedKibam, LifetimeShorterThanPlainKibam) {
  // Scaling the recovery down (h2/h2_0 <= 1) can only slow the well flow.
  ModifiedKibamBattery modified(paper_battery(), 0.5);
  const double life_mod = *compute_lifetime(
      modified, LoadProfile::square_wave(1.0, 0.96), {.max_time = 1e7});
  KibamBattery plain(paper_battery());
  const double life_plain = *compute_lifetime(
      plain, LoadProfile::square_wave(1.0, 0.96), {.max_time = 1e7});
  EXPECT_LE(life_mod, life_plain + 1.0);
}

StochasticBatteryParameters stochastic_params() {
  StochasticBatteryParameters p;
  p.available_units = 450;   // 4500 As at 10 As per unit
  p.bound_units = 270;
  p.charge_per_unit = 10.0;  // As
  p.slot_duration = 1.0;     // s
  p.recovery_decay = 2.0;
  p.base_recovery_probability = 0.4;
  return p;
}

TEST(StochasticBattery, Validation) {
  StochasticBatteryParameters p = stochastic_params();
  p.available_units = 0;
  EXPECT_THROW(StochasticBattery(p, common::RandomStream(1)), ModelError);
  p = stochastic_params();
  p.base_recovery_probability = 0.0;
  EXPECT_THROW(StochasticBattery(p, common::RandomStream(1)), ModelError);
  p = stochastic_params();
  p.recovery_decay = -1.0;
  EXPECT_THROW(StochasticBattery(p, common::RandomStream(1)), ModelError);
}

TEST(StochasticBattery, DrainsAtExpectedRateUnderConstantLoad) {
  StochasticBattery battery(stochastic_params(), common::RandomStream(7));
  const auto crossing = battery.advance(0.96, 1e7);
  ASSERT_TRUE(crossing.has_value());
  // No idle slots -> no recovery: lifetime = available / I = 4500/0.96.
  EXPECT_NEAR(*crossing, 4500.0 / 0.96, 2.0 * stochastic_params().slot_duration
                                            + 15.0);
  EXPECT_TRUE(battery.empty());
}

TEST(StochasticBattery, PulsedLoadOutlivesContinuous) {
  const auto mean_lifetime = [](const LoadProfile& profile) {
    std::vector<double> lives;
    common::RandomStream rng(42);
    for (int i = 0; i < 30; ++i) {
      StochasticBattery battery(stochastic_params(), rng.split());
      lives.push_back(*compute_lifetime(battery, profile, {.max_time = 1e7}));
    }
    return stats::EmpiricalDistribution(std::move(lives)).mean();
  };
  const double continuous = mean_lifetime(LoadProfile::constant(0.96));
  const double pulsed = mean_lifetime(LoadProfile::square_wave(0.01, 0.96));
  EXPECT_GT(pulsed, 1.3 * continuous);
}

TEST(StochasticBattery, AbundantRecoverySaturatesAtEnergyBalance) {
  // With a generous recovery probability every bound unit is recovered, so
  // the pulsed lifetime is pinned at the energy-balance time
  // (total charge)/(average current) = 7200/0.48 = 15000 s, up to slot
  // granularity -- independent of the pulse frequency.
  for (double f : {0.05, 0.002}) {
    StochasticBattery battery(stochastic_params(), common::RandomStream(11));
    const double life = *compute_lifetime(
        battery, LoadProfile::square_wave(f, 0.96), {.max_time = 1e7});
    EXPECT_NEAR(life, 15000.0, 5.0) << "f=" << f;
  }
}

TEST(StochasticBattery, ScarceRecoveryIsRandomAndBracketed) {
  // With recovery made scarce (low base probability, strong depth decay)
  // the lifetime becomes genuinely random, strictly longer than the
  // no-recovery bound and shorter than the full energy balance.
  StochasticBatteryParameters p = stochastic_params();
  p.base_recovery_probability = 0.02;
  p.recovery_decay = 4.0;
  std::vector<double> lives;
  common::RandomStream rng(17);
  for (int i = 0; i < 60; ++i) {
    StochasticBattery battery(p, rng.split());
    lives.push_back(*compute_lifetime(
        battery, LoadProfile::square_wave(0.01, 0.96), {.max_time = 1e7}));
  }
  const stats::EmpiricalDistribution dist(std::move(lives));
  // No recovery at all -> available well only: on-time 4500/0.96 = 4687.5 s
  // -> wall-clock ~ 9375 s.  Full recovery -> 15000 s.
  EXPECT_GT(dist.min(), 9300.0);
  EXPECT_LT(dist.max(), 15010.0);
  EXPECT_GT(dist.stddev(), 0.0);
  EXPECT_GT(dist.mean(), 9500.0);
  EXPECT_LT(dist.mean(), 14990.0);
}

TEST(StochasticBattery, ResetRestoresCharge) {
  StochasticBattery battery(stochastic_params(), common::RandomStream(3));
  battery.advance(0.96, 1000.0);
  battery.reset();
  EXPECT_DOUBLE_EQ(battery.available_charge(), 4500.0);
  EXPECT_DOUBLE_EQ(battery.bound_charge(), 2700.0);
  EXPECT_FALSE(battery.empty());
}

TEST(Peukert, LifetimeFollowsPowerLaw) {
  const PeukertLaw law(100.0, 1.3);
  EXPECT_NEAR(law.lifetime(1.0), 100.0, 1e-12);
  EXPECT_NEAR(law.lifetime(2.0), 100.0 / std::pow(2.0, 1.3), 1e-10);
}

TEST(Peukert, FitRecoversConstants) {
  const PeukertLaw truth(250.0, 1.25);
  const PeukertLaw fitted =
      PeukertLaw::fit(0.5, truth.lifetime(0.5), 2.0, truth.lifetime(2.0));
  EXPECT_NEAR(fitted.a(), 250.0, 1e-9);
  EXPECT_NEAR(fitted.b(), 1.25, 1e-12);
}

TEST(Peukert, EffectiveCapacityDropsWithLoad) {
  const PeukertLaw law(100.0, 1.3);
  EXPECT_GT(law.effective_capacity(0.5), law.effective_capacity(1.0));
  EXPECT_GT(law.effective_capacity(1.0), law.effective_capacity(2.0));
}

TEST(Peukert, Validation) {
  EXPECT_THROW(PeukertLaw(0.0, 1.2), InvalidArgument);
  EXPECT_THROW(PeukertLaw(1.0, 0.9), InvalidArgument);
  EXPECT_THROW(PeukertLaw::fit(1.0, 10.0, 1.0, 20.0), InvalidArgument);
  EXPECT_THROW(PeukertLaw(10.0, 1.2).lifetime(0.0), InvalidArgument);
}

}  // namespace
}  // namespace kibamrm::battery
