// Cross-validation tests for the three lifetime-distribution solvers:
// Markovian approximation, Monte-Carlo simulation, exact transform (c = 1).
#include <gtest/gtest.h>

#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/exact_c1.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/workload/onoff_model.hpp"
#include "kibamrm/workload/simple_model.hpp"

namespace kibamrm::core {
namespace {

KibamRmModel onoff_c1(double capacity = 7200.0) {
  return KibamRmModel(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = capacity, .available_fraction = 1.0, .flow_constant = 0.0});
}

KibamRmModel onoff_kibam() {
  return KibamRmModel(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
}

// Small, fast single-well model used for convergence sweeps: capacity 60,
// current 1, rates of order 1.
KibamRmModel tiny_c1() {
  workload::WorkloadBuilder builder;
  const std::size_t on = builder.add_state("on", 1.0);
  const std::size_t off = builder.add_state("off", 0.0);
  builder.add_transition(on, off, 1.0);
  builder.add_transition(off, on, 1.0);
  builder.set_initial_state(on);
  return KibamRmModel(builder.build(),
                      {.capacity = 60.0, .available_fraction = 1.0,
                       .flow_constant = 0.0});
}

TEST(LifetimeCurve, BasicAccessorsAndInterpolation) {
  const LifetimeCurve curve({1.0, 2.0, 3.0}, {0.0, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(curve.probability_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(curve.probability_at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(curve.probability_at(2.5), 0.75);
  EXPECT_DOUBLE_EQ(curve.probability_at(9.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(curve.median(), 2.0);
  EXPECT_DOUBLE_EQ(curve.quantile(0.75), 2.5);
  EXPECT_TRUE(curve.complete());
}

TEST(LifetimeCurve, ValidationRejectsBadCurves) {
  EXPECT_THROW(LifetimeCurve({2.0, 1.0}, {0.0, 1.0}), InvalidArgument);
  EXPECT_THROW(LifetimeCurve({1.0, 2.0}, {0.5, 0.1}), InvalidArgument);
  EXPECT_THROW(LifetimeCurve({1.0}, {1.5}), InvalidArgument);
  EXPECT_THROW(LifetimeCurve({1.0, 2.0}, {0.0}), InvalidArgument);
}

TEST(LifetimeCurve, QuantileBeyondHorizonThrows) {
  const LifetimeCurve curve({1.0, 2.0}, {0.0, 0.4});
  EXPECT_THROW(curve.quantile(0.9), NumericalError);
}

TEST(LifetimeCurve, MeanEstimateOfStepFunction) {
  // CDF jumping 0 -> 1 at t = 10: mean 10 (within grid resolution).
  const LifetimeCurve curve({9.9, 10.1}, {0.0, 1.0});
  EXPECT_NEAR(curve.mean_estimate(), 10.0, 0.11);
}

TEST(LifetimeCurve, UniformGridHelper) {
  const auto grid = uniform_grid(0.0, 10.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0], 0.0);
  EXPECT_DOUBLE_EQ(grid[2], 5.0);
  EXPECT_DOUBLE_EQ(grid[4], 10.0);
  EXPECT_THROW(uniform_grid(0.0, 1.0, 1), InvalidArgument);
  EXPECT_THROW(uniform_grid(2.0, 1.0, 3), InvalidArgument);
}

TEST(Approximation, DegenerateDeterministicLoad) {
  // Single always-on state: lifetime is exactly C/I; the approximation is
  // the Erlang-(C/Delta) absorption time, concentrating around C/I.
  workload::WorkloadBuilder builder;
  builder.add_state("on", 1.0);
  builder.set_initial_state(0);
  const KibamRmModel model(builder.build(),
                           {.capacity = 100.0, .available_fraction = 1.0,
                            .flow_constant = 0.0});
  MarkovianApproximation solver(model, {.delta = 1.0});
  const auto curve = solver.solve(uniform_grid(50.0, 150.0, 101));
  // Median at ~C/I = 100 (the Erlang-100 mean).
  EXPECT_NEAR(curve.median(), 100.0, 2.0);
  // CDF at 50 ~ 0, at 150 ~ 1.
  EXPECT_LT(curve.probability_at(55.0), 0.01);
  EXPECT_GT(curve.probability_at(145.0), 0.99);
}

TEST(Approximation, RefiningDeltaConvergesToSimulation) {
  const KibamRmModel model = tiny_c1();
  const auto times = uniform_grid(40.0, 250.0, 85);
  MonteCarloSimulator sim(model, {.replications = 4000, .seed = 99});
  const LifetimeCurve reference = sim.empty_probability_curve(times);

  double previous_error = 1.0;
  for (double delta : {10.0, 4.0, 1.0}) {
    MarkovianApproximation solver(model, {.delta = delta});
    const LifetimeCurve curve = solver.solve(times);
    const double error = curve.max_difference(reference);
    // Successive refinements shrink the gap (allowing MC noise head-room).
    EXPECT_LT(error, previous_error + 0.02) << "delta=" << delta;
    previous_error = error;
  }
  // The approximation is first-order in Delta with a level-sized bias at
  // the absorbing boundary; on this steep CDF that leaves ~0.15 at
  // Delta = 1 (the paper itself calls the on/off approximation "not really
  // a good one", Sec. 6.1).
  EXPECT_LT(previous_error, 0.18);
}

TEST(Approximation, MatchesExactSolverOnTinyModel) {
  const KibamRmModel model = tiny_c1();
  const auto times = uniform_grid(40.0, 250.0, 43);
  const LifetimeCurve exact = ExactC1Solver(model).solve(times);
  // Error is dominated by the one-level bias at the absorbing boundary
  // (~Delta/I time shift x CDF slope); quarter-unit levels keep it small.
  MarkovianApproximation fine(model, {.delta = 0.25});
  const LifetimeCurve approx = fine.solve(times);
  EXPECT_LT(approx.max_difference(exact), 0.08);
  EXPECT_NEAR(approx.median(), exact.median(), 2.0);
}

TEST(Approximation, StatsReported) {
  MarkovianApproximation solver(onoff_c1(), {.delta = 25.0});
  solver.solve({10000.0});
  const ApproximationStats& stats = solver.last_stats();
  EXPECT_EQ(stats.expanded_states, 289u * 2u);
  EXPECT_GT(stats.generator_nonzeros, 0u);
  EXPECT_GT(stats.uniformization_iterations, 1000u);
  EXPECT_GT(stats.uniformization_rate, 2.0);
}

TEST(Approximation, CurveIsMonotoneAndBounded) {
  MarkovianApproximation solver(onoff_kibam(), {.delta = 300.0});
  const auto curve = solver.solve(uniform_grid(1000.0, 30000.0, 60));
  // LifetimeCurve construction validates monotonicity; spot-check bounds.
  EXPECT_GE(curve.probabilities().front(), 0.0);
  EXPECT_LE(curve.probabilities().back(), 1.0);
  EXPECT_GT(curve.probabilities().back(), 0.99);
}

TEST(Approximation, SmallerDeltaShiftsCurveRight) {
  // Coarse discretisation systematically over-estimates the empty
  // probability early (mass enters the absorbing layer one level too
  // soon); Fig. 7 shows the Delta = 100 curve left of Delta = 5.
  const auto times = uniform_grid(10000.0, 16000.0, 25);
  MarkovianApproximation coarse(onoff_c1(), {.delta = 100.0});
  MarkovianApproximation fine(onoff_c1(), {.delta = 20.0});
  const auto curve_coarse = coarse.solve(times);
  const auto curve_fine = fine.solve(times);
  // At the early-rise point the coarse curve lies above.
  const double t_probe = 13000.0;
  EXPECT_GT(curve_coarse.probability_at(t_probe) + 1e-9,
            curve_fine.probability_at(t_probe));
}

TEST(Simulator, DeterministicSingleStateLifetime) {
  workload::WorkloadBuilder builder;
  builder.add_state("on", 2.0);
  builder.set_initial_state(0);
  const KibamRmModel model(builder.build(),
                           {.capacity = 100.0, .available_fraction = 1.0,
                            .flow_constant = 0.0});
  MonteCarloSimulator sim(model, {.replications = 10});
  const auto dist = sim.run();
  for (double life : dist.sorted_samples()) {
    EXPECT_NEAR(life, 50.0, 1e-9);
  }
}

TEST(Simulator, ReproducibleWithSameSeed) {
  const KibamRmModel model = tiny_c1();
  MonteCarloSimulator a(model, {.replications = 50, .seed = 7});
  MonteCarloSimulator b(model, {.replications = 50, .seed = 7});
  EXPECT_EQ(a.run().sorted_samples(), b.run().sorted_samples());
}

TEST(Simulator, DifferentSeedsDiffer) {
  const KibamRmModel model = tiny_c1();
  MonteCarloSimulator a(model, {.replications = 50, .seed = 7});
  MonteCarloSimulator b(model, {.replications = 50, .seed = 8});
  EXPECT_NE(a.run().sorted_samples(), b.run().sorted_samples());
}

TEST(Simulator, MeanLifetimeMatchesEnergyBalance) {
  // tiny_c1: average current 0.5 => mean lifetime ~ C / 0.5 = 120.
  MonteCarloSimulator sim(tiny_c1(), {.replications = 3000, .seed = 5});
  const auto dist = sim.run();
  EXPECT_NEAR(dist.mean(), 120.0, 3.0);
}

TEST(Simulator, KibamRecoveryExtendsLifetimeVsNoBoundCharge) {
  // Same available charge; the KiBaM's bound well adds lifetime.
  MonteCarloSimulator without(
      KibamRmModel(workload::make_onoff_model(
                       {.frequency = 1.0, .erlang_k = 1, .on_current = 0.96}),
                   {.capacity = 4500.0, .available_fraction = 1.0,
                    .flow_constant = 0.0}),
      {.replications = 400, .seed = 21});
  MonteCarloSimulator with(onoff_kibam(), {.replications = 400, .seed = 21});
  EXPECT_GT(with.run().mean(), without.run().mean() + 1000.0);
}

TEST(Simulator, CurveMatchesApproximationForKibamOnOff) {
  // Two-well case: approximation at moderate Delta tracks simulation
  // within a few percent over the whole curve (Fig. 8's qualitative
  // agreement).
  const auto times = uniform_grid(6000.0, 20000.0, 29);
  MonteCarloSimulator sim(onoff_kibam(), {.replications = 1500, .seed = 3});
  const LifetimeCurve sim_curve = sim.empty_probability_curve(times);
  MarkovianApproximation approx(onoff_kibam(), {.delta = 50.0});
  const LifetimeCurve approx_curve = approx.solve(times);
  // Sec. 6.1 itself reports that for this nearly deterministic lifetime
  // "the curves for the approximation algorithm are quite far away from
  // the one obtained by simulation" -- the phase-type smearing dominates
  // at the steep rise.  Pin that honest gap plus the median agreement.
  EXPECT_LT(approx_curve.max_difference(sim_curve), 0.75);
  EXPECT_GT(approx_curve.max_difference(sim_curve), 0.05);
  EXPECT_NEAR(approx_curve.median(), sim_curve.median(),
              0.08 * sim_curve.median());
}

TEST(Simulator, RejectsBadOptions) {
  EXPECT_THROW(MonteCarloSimulator(tiny_c1(), {.replications = 0}),
               InvalidArgument);
}

}  // namespace
}  // namespace kibamrm::core
