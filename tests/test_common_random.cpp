// Tests for common/random: determinism, distribution shapes, stream
// splitting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/common/random.hpp"

namespace kibamrm::common {
namespace {

TEST(Xoshiro256, DeterministicForEqualSeeds) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, JumpChangesStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RandomStream, UniformWithinUnitInterval) {
  RandomStream rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStream, UniformRangeRespectsBounds) {
  RandomStream rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RandomStream, UniformRangeRejectsEmptyInterval) {
  RandomStream rng(3);
  EXPECT_THROW(rng.uniform(5.0, 5.0), InvalidArgument);
  EXPECT_THROW(rng.uniform(6.0, 5.0), InvalidArgument);
}

TEST(RandomStream, UniformMeanNearHalf) {
  RandomStream rng(4);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

class ExponentialRateTest : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialRateTest, MeanAndVarianceMatchTheory) {
  const double rate = GetParam();
  RandomStream rng(99);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(rate);
    EXPECT_GE(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0 / rate, 0.02 / rate);
  EXPECT_NEAR(var, 1.0 / (rate * rate), 0.1 / (rate * rate));
}

INSTANTIATE_TEST_SUITE_P(Rates, ExponentialRateTest,
                         ::testing::Values(0.1, 1.0, 2.0, 6.0, 182.0));

TEST(RandomStream, ExponentialRejectsNonPositiveRate) {
  RandomStream rng(5);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
  EXPECT_THROW(rng.exponential(-1.0), InvalidArgument);
}

class ErlangShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(ErlangShapeTest, MeanMatchesKOverRate) {
  const int k = GetParam();
  const double rate = 4.0;
  RandomStream rng(123);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.erlang(k, rate);
  EXPECT_NEAR(sum / n, k / rate, 0.03 * k / rate);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ErlangShapeTest,
                         ::testing::Values(1, 2, 5, 10, 50));

TEST(RandomStream, ErlangRejectsBadShape) {
  RandomStream rng(6);
  EXPECT_THROW(rng.erlang(0, 1.0), InvalidArgument);
}

TEST(RandomStream, BernoulliExtremeProbabilities) {
  RandomStream rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), InvalidArgument);
  EXPECT_THROW(rng.bernoulli(-0.1), InvalidArgument);
}

TEST(RandomStream, BernoulliFrequencyMatchesP) {
  RandomStream rng(8);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomStream, DiscreteMatchesWeights) {
  RandomStream rng(9);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RandomStream, DiscreteHandlesZeroWeightEntries) {
  RandomStream rng(10);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.discrete(weights), 1u);
  }
}

TEST(RandomStream, DiscreteRejectsInvalidWeights) {
  RandomStream rng(11);
  EXPECT_THROW(rng.discrete({}), InvalidArgument);
  EXPECT_THROW(rng.discrete({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(rng.discrete({1.0, -1.0}), InvalidArgument);
}

TEST(RandomStream, SplitProducesDecorrelatedStreams) {
  RandomStream parent(12);
  RandomStream child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.generator()() == child.generator()()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RandomStream, SplitIsReproducible) {
  RandomStream a(13);
  RandomStream b(13);
  RandomStream ca = a.split();
  RandomStream cb = b.split();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ca.generator()(), cb.generator()());
  }
}

}  // namespace
}  // namespace kibamrm::common
