// Tests for the out-of-core uniformisation backend: bitwise parity with
// the in-memory fused parallel backend at every tile size and thread
// count (the tentpole guarantee -- tiling and streaming must never change
// a bit), streaming stats, and option validation.
#include <gtest/gtest.h>

#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/core/lifetime_distribution.hpp"
#include "kibamrm/engine/ooc_backend.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/workload/onoff_model.hpp"

namespace kibamrm::engine {
namespace {

core::KibamRmModel fig8_kibam() {
  return core::KibamRmModel(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
}

TEST(OocBackend, RegisteredByName) {
  EXPECT_TRUE(is_backend_name("ooc"));
  EXPECT_EQ(make_backend("ooc")->name(), "ooc");
}

TEST(OocBackend, BitwiseIdenticalToFusedBackendAcrossTileSizesAndThreads) {
  // The acceptance property: ooc curves equal the in-memory fused
  // backend's bit for bit at every tested tile size and thread count.
  // Small tile_bytes force genuinely multi-tile streams on this ~10k
  // state chain; the MB-scale sizes cover the resident single-tile
  // degeneration.
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 50.0);
  const std::vector<double> times = {8000.0, 12000.0};
  auto reference = make_backend("parallel", {.threads = 1});
  const auto baseline =
      reference->solve(expanded.chain, expanded.initial, times);
  const std::uint64_t baseline_iterations =
      reference->last_stats().iterations;

  for (const std::size_t tile_bytes :
       {std::size_t{4096}, std::size_t{65536}, std::size_t{1} << 20,
        std::size_t{4} << 20, std::size_t{64} << 20}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      auto backend = make_backend(
          "ooc", {.threads = threads, .tile_bytes = tile_bytes});
      const auto result =
          backend->solve(expanded.chain, expanded.initial, times);
      // Bitwise equality, not a tolerance.
      EXPECT_EQ(result, baseline)
          << "tile_bytes = " << tile_bytes << ", threads = " << threads;
      EXPECT_EQ(backend->last_stats().iterations, baseline_iterations)
          << "steady-state detection must fire at the same step";
      EXPECT_GT(backend->last_stats().ooc_tiles, 0u);
      EXPECT_GT(backend->last_stats().ooc_spill_bytes, 0u);
      EXPECT_GT(backend->last_stats().ooc_bytes_streamed, 0u);
      if (tile_bytes == 4096) {
        EXPECT_GT(backend->last_stats().ooc_tiles, 1u)
            << "4KB tiles must split this chain";
      }
    }
  }
}

TEST(OocBackend, MatchesReferenceWithDetectionDisabled) {
  // Without the early-termination short circuit the full Fox-Glynn
  // window streams through the tiles; parity must hold there too.
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 100.0);
  const std::vector<double> times = {10000.0};
  auto reference = make_backend(
      "parallel", {.threads = 1, .steady_state_detection = false});
  const auto baseline =
      reference->solve(expanded.chain, expanded.initial, times);
  auto backend = make_backend("ooc", {.threads = 2,
                                      .steady_state_detection = false,
                                      .tile_bytes = 16384});
  const auto result =
      backend->solve(expanded.chain, expanded.initial, times);
  EXPECT_EQ(result, baseline);
  EXPECT_EQ(backend->last_stats().iterations,
            reference->last_stats().iterations);
}

TEST(OocBackend, StreamsEveryTileEveryIterationWhenMultiTile) {
  // delta = 50 puts the chain above the pool-engagement threshold, so the
  // double-buffered IO/compute pipeline (not the inline sweep) runs.
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 50.0);
  const std::vector<double> times = {12000.0};
  auto backend = make_backend("ooc", {.threads = 2, .tile_bytes = 4096});
  backend->solve(expanded.chain, expanded.initial, times);
  const BackendStats& stats = backend->last_stats();
  ASSERT_GT(stats.ooc_tiles, 2u);
  // Reads + satisfied lookups together cover every tile of every DTMC
  // step (each step sweeps all tiles once).
  EXPECT_GE(stats.ooc_tile_reads + stats.ooc_prefetch_hits,
            stats.iterations * stats.ooc_tiles);
  // The double buffer turns the steady-state sweep into hits: with a
  // working prefetch pipeline the overwhelming majority of lookups never
  // wait for a synchronous read.
  EXPECT_GT(stats.ooc_prefetch_hits, 0u);
  EXPECT_EQ(stats.ooc_bytes_streamed > 0u, true);
}

TEST(OocBackend, SingleTileChainReadsOnce) {
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 300.0);
  const std::vector<double> times = {12000.0};
  auto backend = make_backend("ooc", {.tile_bytes = 256ull << 20});
  backend->solve(expanded.chain, expanded.initial, times);
  const BackendStats& stats = backend->last_stats();
  EXPECT_EQ(stats.ooc_tiles, 1u);
  EXPECT_EQ(stats.ooc_tile_reads, 1u) << "resident tile must not re-read";
}

TEST(OocBackend, ApproximationPipelineMatchesParallelEngine) {
  // End-to-end through MarkovianApproximation: the fig8 curve from
  // "--engine ooc" equals the in-memory fused engine's bitwise.
  const auto times = core::uniform_grid(6000.0, 20000.0, 10);
  core::MarkovianApproximation reference(
      fig8_kibam(), {.delta = 100.0, .engine = "parallel", .threads = 2});
  const core::LifetimeCurve expected = reference.solve(times);
  core::MarkovianApproximation solver(fig8_kibam(),
                                      {.delta = 100.0,
                                       .engine = "ooc",
                                       .threads = 2,
                                       .tile_bytes = 8192});
  const core::LifetimeCurve curve = solver.solve(times);
  EXPECT_EQ(curve.probabilities(), expected.probabilities());
  EXPECT_GT(solver.last_stats().ooc_tiles, 1u);
  EXPECT_GT(solver.last_stats().ooc_bytes_streamed, 0u);
  EXPECT_EQ(solver.last_stats().active_states,
            reference.last_stats().active_states);
}

TEST(OocBackend, RejectsBadOptions) {
  EXPECT_THROW(make_backend("ooc", {.epsilon = 0.0}), InvalidArgument);
  EXPECT_THROW(make_backend("ooc", {.tile_bytes = 0}), InvalidArgument);
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 450.0);
  auto backend =
      make_backend("ooc", {.spill_dir = "/nonexistent/spill/dir"});
  EXPECT_THROW(
      backend->solve(expanded.chain, expanded.initial, {10000.0}),
      InvalidArgument);
}

}  // namespace
}  // namespace kibamrm::engine
