// Stiff-chain regression suite for the Krylov transient backend: the
// chains the explicit stepper refuses (documented step-underflow throw)
// must solve through "krylov", and on the mild fig8 grid "krylov" must
// agree with the production uniformisation engine to the usual budget.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/workload/onoff_model.hpp"
#include "kibamrm/workload/workload_model.hpp"

namespace kibamrm::engine {
namespace {

// The Fig. 8 scenario: on/off workload over the full two-well KiBaM.
core::KibamRmModel fig8_kibam(double frequency = 1.0) {
  return core::KibamRmModel(
      workload::make_onoff_model({.frequency = frequency, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
}

// Fast flip-flop A<->B at 1e12/s with slow absorption B->C at 0.05/s: the
// stable step of an explicit method is ~1e-14 s against horizons of
// minutes, while the quasi-steady solution is analytically
//   pi_C(t) = 1 - exp(-0.025 t)   up to O(fast/slow) corrections.
markov::Ctmc stiff_flip_flop() {
  return markov::ctmc_from_rates(
      {{0.0, 1e12, 0.0}, {1e12, 0.0, 0.05}, {0.0, 0.0, 0.0}});
}

TEST(KrylovStiff, AdaptiveThrowsItsDocumentedUnderflowOnTheStiffChain) {
  const markov::Ctmc chain = stiff_flip_flop();
  auto adaptive = make_backend("adaptive");
  try {
    adaptive->solve(chain, {1.0, 0.0, 0.0}, {40.0, 120.0});
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& error) {
    EXPECT_NE(std::string(error.what()).find("step size underflow"),
              std::string::npos)
        << error.what();
  }
}

TEST(KrylovStiff, KrylovSolvesTheChainTheAdaptiveStepperRefuses) {
  const markov::Ctmc chain = stiff_flip_flop();
  auto krylov = make_backend("krylov");
  const auto results = krylov->solve(chain, {1.0, 0.0, 0.0}, {40.0, 120.0});
  ASSERT_EQ(results.size(), 2u);
  // Against the quasi-steady analytic solution; the tolerance is the
  // round-off floor of *any* double-precision method on a chain whose
  // stiffness ratio is ~2e13 (matvecs cancel +-1e12-scale terms), not a
  // property of the Krylov scheme -- the dense Pade oracle carries a
  // similar error here.
  EXPECT_NEAR(results[0][2], 1.0 - std::exp(-0.025 * 40.0), 5e-3);
  EXPECT_NEAR(results[1][2], 1.0 - std::exp(-0.025 * 120.0), 5e-3);
  EXPECT_TRUE(linalg::is_probability_vector(results[1], 1e-6));

  const BackendStats& stats = krylov->last_stats();
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.substeps, 0u);
  EXPECT_GT(stats.hessenberg_expms, 0u);
  // The 3-state chain exhausts its Krylov space: happy breakdown caps
  // the subspace at the chain dimension.
  EXPECT_EQ(stats.krylov_dim, 3u);
}

TEST(KrylovStiff, MatchesUniformizationWithinTenEpsilonOnFig8Grid) {
  const auto times = core::uniform_grid(6000.0, 20000.0, 15);
  const double epsilon = 1e-10;
  core::MarkovianApproximation uniformization(
      fig8_kibam(), {.delta = 300.0, .epsilon = epsilon,
                     .engine = "uniformization"});
  core::MarkovianApproximation krylov(
      fig8_kibam(), {.delta = 300.0, .epsilon = epsilon,
                     .engine = "krylov"});
  const auto reference = uniformization.solve(times);
  const auto curve = krylov.solve(times);
  EXPECT_LT(reference.max_difference(curve), 10.0 * epsilon);
  EXPECT_EQ(krylov.last_stats().engine, "krylov");
  EXPECT_GT(krylov.last_stats().substeps, 0u);
  EXPECT_GT(krylov.last_stats().hessenberg_expms, 0u);
  EXPECT_EQ(krylov.last_stats().krylov_dim, 30u);
}

TEST(KrylovStiff, SolvesTheStiffExpandedBatteryChain) {
  // A 1e11 Hz on/off workload makes the expanded KiBaM chain stiff by a
  // factor ~1e12 against the lifetime horizon: the adaptive stepper
  // underflows instantly, krylov integrates through the quasi-steady
  // regime in a few hundred sub-steps.
  const auto times = core::uniform_grid(6000.0, 20000.0, 8);
  core::MarkovianApproximation adaptive(
      fig8_kibam(1e11), {.delta = 300.0, .engine = "adaptive"});
  EXPECT_THROW(adaptive.solve(times), NumericalError);

  core::MarkovianApproximation krylov(
      fig8_kibam(1e11), {.delta = 300.0, .engine = "krylov"});
  const auto curve = krylov.solve(times);

  // Independent oracle: at 1e11 Hz the on/off draw averages to a
  // constant 0.48 A (thinning limit), whose expanded chain is mild and
  // solvable by uniformisation.  Agreement is bounded by the operator
  // round-off floor eps * ||Q|| * horizon ~ 1e-2, not by either solver.
  workload::WorkloadBuilder builder;
  builder.set_initial_state(builder.add_state("avg", 0.48));
  const core::KibamRmModel averaged(
      builder.build(), {.capacity = 7200.0, .available_fraction = 0.625,
                        .flow_constant = 4.5e-5});
  core::MarkovianApproximation reference(
      averaged, {.delta = 300.0, .engine = "uniformization"});
  EXPECT_LT(reference.solve(times).max_difference(curve), 2e-2);
}

TEST(KrylovStiff, BitwiseDeterministicAcrossThreadCounts) {
  // Delta = 50 expands to ~35k stored entries, enough to engage the
  // sharded matvec; the gather kernel makes the solve bitwise identical
  // for every thread count.
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 50.0);
  const std::vector<double> times = {8000.0, 14000.0};
  auto serial = make_backend("krylov", {.threads = 1});
  auto threaded = make_backend("krylov", {.threads = 4});
  const auto reference = serial->solve(expanded.chain, expanded.initial,
                                       times);
  const auto result = threaded->solve(expanded.chain, expanded.initial,
                                      times);
  ASSERT_EQ(reference.size(), result.size());
  for (std::size_t k = 0; k < reference.size(); ++k) {
    EXPECT_EQ(reference[k], result[k]) << "t = " << times[k];
  }
  EXPECT_EQ(serial->last_stats().iterations,
            threaded->last_stats().iterations);
}

TEST(KrylovStiff, SubspaceKnobIsHonoured) {
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 300.0);
  const std::vector<double> times = {10000.0};
  // Fixed-dimension mode: this test compares the cost of two pinned
  // subspace sizes, which adaptivity would (correctly) equalise.
  auto wide =
      make_backend("krylov", {.krylov_dim = 20, .krylov_adaptive_dim = false});
  auto narrow =
      make_backend("krylov", {.krylov_dim = 8, .krylov_adaptive_dim = false});
  const auto a = wide->solve(expanded.chain, expanded.initial, times);
  const auto b = narrow->solve(expanded.chain, expanded.initial, times);
  EXPECT_EQ(wide->last_stats().krylov_dim, 20u);
  EXPECT_EQ(narrow->last_stats().krylov_dim, 8u);
  // A narrower subspace pays with more, smaller sub-steps but keeps the
  // same error contract.
  EXPECT_GT(narrow->last_stats().substeps, wide->last_stats().substeps);
  EXPECT_LT(linalg::linf_distance(a.front(), b.front()), 1e-8);
}

TEST(KrylovAdaptiveDim, StillMatchesUniformizationTightlyOnFig8Grid) {
  // The adaptive dimension trades cost only; the accept/reject test is
  // unchanged, so agreement with the production uniformisation engine
  // must stay well inside the budget (PR 4 measured ~2e-12 at fixed m).
  const auto times = core::uniform_grid(6000.0, 20000.0, 15);
  core::MarkovianApproximation uniformization(
      fig8_kibam(), {.delta = 300.0, .engine = "uniformization"});
  core::MarkovianApproximation krylov(
      fig8_kibam(), {.delta = 300.0, .engine = "krylov"});
  EXPECT_LT(uniformization.solve(times).max_difference(krylov.solve(times)),
            1e-11);
}

TEST(KrylovAdaptiveDim, SavesOrthogonalisationWorkOnTheMildChain) {
  // On the mild fig8 chain the a-posteriori estimate sits far below the
  // budget at m = 30; the adaptive controller shrinks the subspace.  The
  // contract is about the m^2 n orthogonalisation cost that dominates
  // large chains (a smaller m legitimately spends a few *more* matvecs
  // on extra sub-steps -- that trade is the point): the summed dim^2
  // work must drop measurably against the pinned dimension.
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 300.0);
  const auto times = core::uniform_grid(6000.0, 20000.0, 15);
  auto adaptive = make_backend("krylov");
  auto fixed = make_backend("krylov", {.krylov_adaptive_dim = false});
  adaptive->solve(expanded.chain, expanded.initial, times);
  fixed->solve(expanded.chain, expanded.initial, times);
  EXPECT_LT(adaptive->last_stats().krylov_ortho_work,
            (3 * fixed->last_stats().krylov_ortho_work) / 4);
  // The first factorisation runs at the cap, so the max-dim stat still
  // reports it.
  EXPECT_EQ(adaptive->last_stats().krylov_dim, 30u);
}

TEST(KrylovAdaptiveDim, BitwiseDeterministicAcrossThreadCounts) {
  // The adaptive decisions feed off the (bitwise thread-independent)
  // error estimates, so the full adaptive solve stays bitwise identical
  // across thread counts too.
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 50.0);
  const std::vector<double> times = {8000.0, 14000.0};
  auto serial = make_backend("krylov", {.threads = 1});
  auto threaded = make_backend("krylov", {.threads = 8});
  const auto reference =
      serial->solve(expanded.chain, expanded.initial, times);
  const auto result =
      threaded->solve(expanded.chain, expanded.initial, times);
  ASSERT_EQ(reference.size(), result.size());
  for (std::size_t k = 0; k < reference.size(); ++k) {
    EXPECT_EQ(reference[k], result[k]) << "t = " << times[k];
  }
}

TEST(KrylovStiff, AllAbsorbingChainIsIdentity) {
  const markov::Ctmc chain = markov::ctmc_from_rates(
      {{0.0, 0.0}, {0.0, 0.0}});
  auto krylov = make_backend("krylov");
  const auto results = krylov->solve(chain, {0.25, 0.75}, {5.0, 50.0});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[1][0], 0.25);
  EXPECT_EQ(results[1][1], 0.75);
  EXPECT_EQ(krylov->last_stats().iterations, 0u);
}

}  // namespace
}  // namespace kibamrm::engine
