// Tests for common/cli argument parsing.
#include <gtest/gtest.h>

#include <vector>

#include "kibamrm/common/cli.hpp"
#include "kibamrm/common/error.hpp"

namespace kibamrm::common {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, ProgramNameCaptured) {
  const CliArgs args = parse({"bench/fig7"});
  EXPECT_EQ(args.program(), "bench/fig7");
  EXPECT_TRUE(args.positional().empty());
}

TEST(CliArgs, FlagWithoutValue) {
  const CliArgs args = parse({"p", "--full"});
  EXPECT_TRUE(args.has("full"));
  EXPECT_FALSE(args.has("quick"));
}

TEST(CliArgs, KeyValueSpaceForm) {
  const CliArgs args = parse({"p", "--delta", "25"});
  EXPECT_DOUBLE_EQ(args.get_double("delta", 0.0), 25.0);
}

TEST(CliArgs, KeyValueEqualsForm) {
  const CliArgs args = parse({"p", "--delta=12.5"});
  EXPECT_DOUBLE_EQ(args.get_double("delta", 0.0), 12.5);
}

TEST(CliArgs, FallbackUsedWhenAbsent) {
  const CliArgs args = parse({"p"});
  EXPECT_DOUBLE_EQ(args.get_double("delta", 7.0), 7.0);
  EXPECT_EQ(args.get("out", "default.csv"), "default.csv");
  EXPECT_EQ(args.get_int("runs", 3), 3);
}

TEST(CliArgs, NegativeNumberTreatedAsValue) {
  const CliArgs args = parse({"p", "--offset", "-3.5"});
  EXPECT_DOUBLE_EQ(args.get_double("offset", 0.0), -3.5);
}

TEST(CliArgs, MalformedNumberThrows) {
  const CliArgs args = parse({"p", "--delta", "abc"});
  EXPECT_THROW(args.get_double("delta", 0.0), InvalidArgument);
}

TEST(CliArgs, IntRejectsFractional) {
  const CliArgs args = parse({"p", "--runs", "2.5"});
  EXPECT_THROW(args.get_int("runs", 0), InvalidArgument);
}

TEST(CliArgs, PositiveIntAcceptsPositiveValues) {
  const CliArgs args = parse({"p", "--threads", "4"});
  EXPECT_EQ(args.get_positive_int("threads", 0), 4);
}

TEST(CliArgs, PositiveIntFallbackExemptFromPositivity) {
  // 0 as a *fallback* is the auto-detect sentinel and must pass through;
  // only user-provided values are validated.
  const CliArgs args = parse({"p"});
  EXPECT_EQ(args.get_positive_int("threads", 0), 0);
}

TEST(CliArgs, PositiveIntRejectsZero) {
  const CliArgs args = parse({"p", "--threads", "0"});
  EXPECT_THROW(args.get_positive_int("threads", 1), InvalidArgument);
}

TEST(CliArgs, PositiveIntRejectsNegative) {
  const CliArgs args = parse({"p", "--threads", "-2"});
  EXPECT_THROW(args.get_positive_int("threads", 1), InvalidArgument);
}

TEST(CliArgs, PositiveIntRejectsGarbageAndFractions) {
  EXPECT_THROW(parse({"p", "--threads", "many"})
                   .get_positive_int("threads", 1),
               InvalidArgument);
  EXPECT_THROW(parse({"p", "--threads", "2.5"})
                   .get_positive_int("threads", 1),
               InvalidArgument);
}

TEST(CliArgs, NonNegativeIntAcceptsExplicitZero) {
  // Regression: `--threads 0` is the documented auto-detect sentinel, but
  // the drivers parsed it with get_positive_int, which threw on the very
  // value the help text advertises.
  const CliArgs args = parse({"p", "--threads", "0"});
  EXPECT_EQ(args.get_nonnegative_int("threads", 1), 0);
}

TEST(CliArgs, NonNegativeIntAcceptsPositiveAndFallback) {
  EXPECT_EQ(parse({"p", "--threads", "4"}).get_nonnegative_int("threads", 0),
            4);
  EXPECT_EQ(parse({"p"}).get_nonnegative_int("threads", 7), 7);
}

TEST(CliArgs, NonNegativeIntRejectsNegativeGarbageAndFractions) {
  EXPECT_THROW(parse({"p", "--threads", "-2"})
                   .get_nonnegative_int("threads", 1),
               InvalidArgument);
  EXPECT_THROW(parse({"p", "--threads", "many"})
                   .get_nonnegative_int("threads", 1),
               InvalidArgument);
  EXPECT_THROW(parse({"p", "--threads", "2.5"})
                   .get_nonnegative_int("threads", 1),
               InvalidArgument);
}

TEST(CliArgs, DoubleListParsing) {
  const CliArgs args = parse({"p", "--delta", "100,50,25,5"});
  const std::vector<double> values = args.get_double_list("delta", {});
  ASSERT_EQ(values.size(), 4u);
  EXPECT_DOUBLE_EQ(values[0], 100.0);
  EXPECT_DOUBLE_EQ(values[3], 5.0);
}

TEST(CliArgs, DoubleListFallback) {
  const CliArgs args = parse({"p"});
  const std::vector<double> values = args.get_double_list("delta", {1.0, 2.0});
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[1], 2.0);
}

TEST(CliArgs, DoubleListMalformedEntryThrows) {
  const CliArgs args = parse({"p", "--delta", "10,x,5"});
  EXPECT_THROW(args.get_double_list("delta", {}), InvalidArgument);
}

TEST(CliArgs, PositionalArgumentsPreserved) {
  // Note: a bare token directly after an option name is consumed as that
  // option's value ("--full more" would make full="more"), so positionals
  // come before options or between key/value pairs.
  const CliArgs args = parse({"p", "input.csv", "more", "--full"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "more");
  EXPECT_TRUE(args.has("full"));
}

TEST(CliArgs, ValidateAcceptsDeclaredOptions) {
  CliArgs args = parse({"p", "--delta", "5", "--full"});
  args.declare("delta").declare("full");
  EXPECT_NO_THROW(args.validate());
}

TEST(CliArgs, ValidateRejectsUnknownOption) {
  CliArgs args = parse({"p", "--detla", "5"});
  args.declare("delta");
  EXPECT_THROW(args.validate(), InvalidArgument);
}

TEST(CliArgs, GetChoiceReturnsAllowedValue) {
  const CliArgs args = parse({"p", "--engine", "dense"});
  EXPECT_EQ(args.get_choice("engine", "uniformization",
                            {"adaptive", "dense", "uniformization"}),
            "dense");
}

TEST(CliArgs, GetChoiceFallsBackWhenAbsent) {
  const CliArgs args = parse({"p"});
  EXPECT_EQ(args.get_choice("engine", "uniformization",
                            {"adaptive", "dense", "uniformization"}),
            "uniformization");
}

TEST(CliArgs, GetChoicePresentWithoutValueThrows) {
  // `--engine --full`: the next token is an option, so --engine parses as
  // valueless; a malformed selection must not silently run the fallback.
  const CliArgs args = parse({"p", "--engine", "--full"});
  EXPECT_THROW(args.get_choice("engine", "uniformization",
                               {"adaptive", "dense", "uniformization"}),
               InvalidArgument);
}

TEST(CliArgs, GetDirectoryAcceptsExistingDirectory) {
  const CliArgs args = parse({"p", "--spill-dir", "/tmp"});
  EXPECT_EQ(args.get_directory("spill-dir", ""), "/tmp");
}

TEST(CliArgs, GetDirectoryFallbackExemptFromExistence) {
  // The "" fallback means "use $TMPDIR" downstream; it must pass through
  // unvalidated, like get_positive_int's sentinel fallbacks.
  const CliArgs args = parse({"p"});
  EXPECT_EQ(args.get_directory("spill-dir", ""), "");
}

TEST(CliArgs, GetDirectoryRejectsMissingPathAndFiles) {
  const CliArgs args =
      parse({"p", "--spill-dir", "/nonexistent/kibamrm-test-dir"});
  EXPECT_THROW(args.get_directory("spill-dir", ""), InvalidArgument);
  // A regular file is not a directory either.
  const CliArgs file_args = parse({"p", "--spill-dir", "/proc/self/status"});
  EXPECT_THROW(file_args.get_directory("spill-dir", ""), InvalidArgument);
}

TEST(CliArgs, GetDirectoryPresentWithoutValueThrows) {
  const CliArgs args = parse({"p", "--spill-dir", "--full"});
  EXPECT_THROW(args.get_directory("spill-dir", ""), InvalidArgument);
}

TEST(CliArgs, GetChoiceRejectsUnknownValueListingChoices) {
  const CliArgs args = parse({"p", "--engine", "krylov"});
  try {
    args.get_choice("engine", "uniformization",
                    {"adaptive", "dense", "uniformization"});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("krylov"), std::string::npos);
    EXPECT_NE(what.find("adaptive"), std::string::npos);
  }
}

}  // namespace
}  // namespace kibamrm::common
