// Tests for the level grid and the expanded CTMC Q* (Sec. 5.1-5.2).
#include <gtest/gtest.h>

#include "kibamrm/common/error.hpp"
#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/workload/onoff_model.hpp"
#include "kibamrm/workload/simple_model.hpp"

namespace kibamrm::core {
namespace {

KibamRmModel onoff_c1() {
  return KibamRmModel(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 1.0, .flow_constant = 0.0});
}

KibamRmModel onoff_kibam() {
  return KibamRmModel(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
}

TEST(LevelGrid, PaperStateCount2882) {
  // Sec. 6.1: "the CTMC for Delta = 5 has 2882 states".
  const KibamRmModel model = onoff_c1();
  const LevelGrid grid(model, 5.0);
  EXPECT_EQ(grid.available_levels(), 1440u);
  EXPECT_EQ(grid.bound_levels(), 0u);
  EXPECT_EQ(grid.state_count(), 2882u);
}

TEST(LevelGrid, TwoWellDimensions) {
  // c = 0.625: u1 = 4500, u2 = 2700; Delta = 5 -> 901 x 541 levels.
  const KibamRmModel model = onoff_kibam();
  const LevelGrid grid(model, 5.0);
  EXPECT_EQ(grid.available_levels(), 900u);
  EXPECT_EQ(grid.bound_levels(), 540u);
  EXPECT_EQ(grid.state_count(), 901u * 541u * 2u);
}

TEST(LevelGrid, InitialLevelsUseIntervalSemantics) {
  // a1 = 4500 lies in (4495, 4500] -> level 899 at Delta = 5.
  const LevelGrid grid(onoff_kibam(), 5.0);
  EXPECT_EQ(grid.initial_available_level(), 899u);
  EXPECT_EQ(grid.initial_bound_level(), 539u);
}

TEST(LevelGrid, IndexIsBijective) {
  const LevelGrid grid(onoff_kibam(), 100.0);
  std::vector<bool> seen(grid.state_count(), false);
  for (std::size_t j1 = 0; j1 <= grid.available_levels(); ++j1) {
    for (std::size_t j2 = 0; j2 <= grid.bound_levels(); ++j2) {
      for (std::size_t i = 0; i < grid.workload_states(); ++i) {
        const std::size_t idx = grid.index(i, j1, j2);
        ASSERT_LT(idx, grid.state_count());
        ASSERT_FALSE(seen[idx]);
        seen[idx] = true;
      }
    }
  }
}

TEST(LevelGrid, NonDivisibleDeltaRejected) {
  EXPECT_THROW(LevelGrid(onoff_c1(), 7.0), InvalidArgument);
  EXPECT_THROW(LevelGrid(onoff_c1(), -5.0), InvalidArgument);
}

TEST(ExpandedChain, GeneratorIsValidatedCtmc) {
  // Construction through markov::Ctmc already asserts row sums ~ 0 and
  // non-negative rates; here we check the structural expectations.
  const ExpandedChain expanded = build_expanded_chain(onoff_kibam(), 100.0);
  EXPECT_EQ(expanded.chain.state_count(), expanded.grid.state_count());
  EXPECT_GT(expanded.chain.generator().nonzeros(), 0u);
}

TEST(ExpandedChain, EmptyLayerIsAbsorbing) {
  const ExpandedChain expanded = build_expanded_chain(onoff_kibam(), 100.0);
  const LevelGrid& grid = expanded.grid;
  for (std::size_t j2 = 0; j2 <= grid.bound_levels(); ++j2) {
    for (std::size_t i = 0; i < grid.workload_states(); ++i) {
      EXPECT_TRUE(expanded.chain.is_absorbing(grid.index(i, 0, j2)));
    }
  }
}

TEST(ExpandedChain, ConsumptionRateIsCurrentOverDelta) {
  const double delta = 100.0;
  const ExpandedChain expanded = build_expanded_chain(onoff_kibam(), delta);
  const LevelGrid& grid = expanded.grid;
  // on-state (0) consumes 0.96 A -> rate 0.96/100 between (0,j1,j2) and
  // (0,j1-1,j2).
  const std::size_t j1 = 10;
  const std::size_t j2 = 5;
  EXPECT_NEAR(expanded.chain.generator().at(grid.index(0, j1, j2),
                                            grid.index(0, j1 - 1, j2)),
              0.96 / delta, 1e-15);
  // off-state (1) consumes nothing.
  EXPECT_DOUBLE_EQ(expanded.chain.generator().at(grid.index(1, j1, j2),
                                                 grid.index(1, j1 - 1, j2)),
                   0.0);
}

TEST(ExpandedChain, WorkloadRatesCopiedAtAllLevels) {
  const ExpandedChain expanded = build_expanded_chain(onoff_kibam(), 100.0);
  const LevelGrid& grid = expanded.grid;
  for (std::size_t j1 : {std::size_t{1}, grid.available_levels()}) {
    EXPECT_DOUBLE_EQ(expanded.chain.generator().at(grid.index(0, j1, 3),
                                                   grid.index(1, j1, 3)),
                     2.0);  // on -> off at lambda = 2 f K = 2
  }
}

TEST(ExpandedChain, TransferRateMatchesHeightDifference) {
  const double delta = 100.0;
  const double k = 4.5e-5;
  const double c = 0.625;
  const ExpandedChain expanded = build_expanded_chain(onoff_kibam(), delta);
  const LevelGrid& grid = expanded.grid;
  const std::size_t j1 = 10;
  const std::size_t j2 = 20;
  const double expected = k * (static_cast<double>(j2) / (1.0 - c) -
                               static_cast<double>(j1) / c);
  EXPECT_NEAR(expanded.chain.generator().at(grid.index(0, j1, j2),
                                            grid.index(0, j1 + 1, j2 - 1)),
              expected, 1e-15);
}

TEST(ExpandedChain, NoTransferWhenHeightsReversed) {
  const ExpandedChain expanded = build_expanded_chain(onoff_kibam(), 100.0);
  const LevelGrid& grid = expanded.grid;
  // j1/c > j2/(1-c): available well higher, no flow (the guard of
  // Sec. 4.2).
  const std::size_t j1 = 40;
  const std::size_t j2 = 2;
  EXPECT_DOUBLE_EQ(expanded.chain.generator().at(grid.index(0, j1, j2),
                                                 grid.index(0, j1 + 1, j2 - 1)),
                   0.0);
}

TEST(ExpandedChain, InitialDistributionConcentrated) {
  const ExpandedChain expanded = build_expanded_chain(onoff_kibam(), 100.0);
  const LevelGrid& grid = expanded.grid;
  double total = 0.0;
  for (double p : expanded.initial) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      expanded.initial[grid.index(0, grid.initial_available_level(),
                                  grid.initial_bound_level())],
      1.0);
}

TEST(ExpandedChain, EmptyProbabilityOfInitialIsZero) {
  const ExpandedChain expanded = build_expanded_chain(onoff_kibam(), 100.0);
  EXPECT_DOUBLE_EQ(expanded.empty_probability(expanded.initial), 0.0);
  const std::vector<double> wrong_size(3, 0.0);
  EXPECT_THROW(expanded.empty_probability(wrong_size), InvalidArgument);
}

TEST(ExpandedChain, SimpleModelNonZeroCountsScale) {
  // Nonzero count grows like (levels)^2 for the two-well model.  Deltas
  // must divide both u1 = 4500 and u2 = 2700: use 300 and 60.
  const ExpandedChain coarse = build_expanded_chain(onoff_kibam(), 300.0);
  const ExpandedChain fine = build_expanded_chain(onoff_kibam(), 60.0);
  EXPECT_GT(fine.chain.generator().nonzeros(),
            10 * coarse.chain.generator().nonzeros());
}

TEST(ExpandedChain, PaperNonZeroCountAtDelta5) {
  // Sec. 6.1 quotes "more than 3.2e6 nonzero transition rates" for the
  // two-well on/off chain at Delta = 5.  Our chain has 2.92e6 including
  // diagonals -- same order; the paper's exact count depends on their
  // (unpublished) handling of boundary levels, so we pin the magnitude.
  const ExpandedChain expanded = build_expanded_chain(onoff_kibam(), 5.0);
  EXPECT_GT(expanded.chain.generator().nonzeros(), 2500000u);
  EXPECT_LT(expanded.chain.generator().nonzeros(), 4500000u);
}

}  // namespace
}  // namespace kibamrm::core
