// Tests for the Arnoldi factorisation behind the Krylov backend: the
// Arnoldi relation, basis orthonormality, and happy breakdowns.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/arnoldi.hpp"
#include "kibamrm/linalg/dense_matrix.hpp"
#include "kibamrm/linalg/vector_ops.hpp"

namespace kibamrm::linalg {
namespace {

/// Deterministic dense test matrix with no special structure (a plain LCG
/// fill -- trigonometric fills like sin(ai + bj) are secretly low-rank and
/// break the Krylov space down early).
DenseReal test_matrix(std::size_t n) {
  DenseReal a(n, n);
  std::uint64_t state = 12345;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      a(i, j) = static_cast<double>(state >> 11) /
                    static_cast<double>(1ULL << 53) -
                0.5;
    }
  }
  return a;
}

ArnoldiMatvec dense_matvec(const DenseReal& a) {
  return [&a](const std::vector<double>& in, std::vector<double>& out) {
    const std::size_t n = a.rows();
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += a(i, j) * in[j];
      out[i] = acc;
    }
  };
}

TEST(Arnoldi, RelationAndOrthonormalityHold) {
  const std::size_t n = 6;
  const std::size_t m = 4;
  const DenseReal a = test_matrix(n);

  std::vector<std::vector<double>> basis(m + 1,
                                         std::vector<double>(n, 0.0));
  basis[0][0] = 1.0;  // v1 = e_1
  DenseReal h(m + 1, m);
  const ArnoldiResult result = arnoldi(dense_matvec(a), basis, h, m, 1e-14);
  ASSERT_EQ(result.dim, m);
  EXPECT_FALSE(result.happy_breakdown);
  EXPECT_EQ(result.matvecs, m);

  // Orthonormal basis: V^T V = I to round-off.
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t j = 0; j <= m; ++j) {
      EXPECT_NEAR(dot(basis[i], basis[j]), i == j ? 1.0 : 0.0, 1e-12)
          << "i=" << i << " j=" << j;
    }
  }

  // Arnoldi relation A v_j = sum_{i <= j+1} h(i,j) v_i, column by column.
  std::vector<double> av(n, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    dense_matvec(a)(basis[j], av);
    std::vector<double> reconstructed(n, 0.0);
    for (std::size_t i = 0; i <= j + 1; ++i) {
      axpy(h(i, j), basis[i], reconstructed);
    }
    EXPECT_LT(linf_distance(av, reconstructed), 1e-12) << "column " << j;
  }
}

TEST(Arnoldi, HappyBreakdownOnInvariantSubspace) {
  // Block-diagonal matrix: starting inside the leading 2x2 block, the
  // Krylov space closes after two steps no matter how large m is.
  DenseReal a(5, 5);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = -1.0;
  for (std::size_t i = 2; i < 5; ++i) a(i, i) = 4.0;

  std::vector<std::vector<double>> basis(6, std::vector<double>(5, 0.0));
  basis[0][0] = 1.0;
  DenseReal h(6, 5);
  const ArnoldiResult result = arnoldi(dense_matvec(a), basis, h, 5, 1e-14);
  EXPECT_TRUE(result.happy_breakdown);
  EXPECT_EQ(result.dim, 2u);
}

TEST(Arnoldi, ImmediateBreakdownOnEigenvector) {
  const DenseReal a = DenseReal::identity(4).scaled(2.5);
  std::vector<std::vector<double>> basis(5, std::vector<double>(4, 0.0));
  basis[0][1] = 1.0;  // every vector is an eigenvector of 2.5 I
  DenseReal h(5, 4);
  const ArnoldiResult result = arnoldi(dense_matvec(a), basis, h, 4, 1e-14);
  EXPECT_TRUE(result.happy_breakdown);
  EXPECT_EQ(result.dim, 1u);
  EXPECT_NEAR(h(0, 0), 2.5, 1e-14);
}

TEST(Arnoldi, RejectsUndersizedArguments) {
  std::vector<std::vector<double>> basis(2, std::vector<double>(4, 0.0));
  DenseReal h(3, 2);
  EXPECT_THROW(arnoldi(dense_matvec(DenseReal::identity(4)), basis, h, 2,
                       1e-14),
               InvalidArgument);
}

}  // namespace
}  // namespace kibamrm::linalg
