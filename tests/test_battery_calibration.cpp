// Tests for KiBaM parameter calibration (Sec. 3's fitting procedures).
#include <gtest/gtest.h>

#include "kibamrm/battery/calibration.hpp"
#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {
namespace {

TEST(Calibration, AvailableFractionFromCapacities) {
  // Sec. 3: c = (capacity at very large load)/(capacity at very small
  // load); [9]'s value 0.625 from 4500/7200.
  EXPECT_DOUBLE_EQ(estimate_available_fraction(4500.0, 7200.0), 0.625);
  EXPECT_THROW(estimate_available_fraction(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(estimate_available_fraction(2.0, 1.0), InvalidArgument);
}

TEST(Calibration, RecoversKnownFlowConstant) {
  // Compute the lifetime for a known k, then invert for it.
  const double k_true = 4.5e-5;
  KibamBattery battery({7200.0, 0.625, k_true});
  const double lifetime =
      *compute_lifetime(battery, LoadProfile::constant(0.96));
  const double k_fit = calibrate_flow_constant(7200.0, 0.625, 0.96, lifetime);
  EXPECT_NEAR(k_fit, k_true, 1e-8);
}

TEST(Calibration, PaperTargetNinetyMinutes) {
  // The paper fits k so the continuous 0.96 A lifetime equals the
  // experimental 90 min; the result must land near the quoted 4.5e-5/s.
  const double k = calibrate_flow_constant(7200.0, 0.625, 0.96, 90.0 * 60.0);
  EXPECT_GT(k, 1e-5);
  EXPECT_LT(k, 1e-4);
  // Round trip: the fitted battery has the requested lifetime.
  KibamBattery battery({7200.0, 0.625, k});
  EXPECT_NEAR(*compute_lifetime(battery, LoadProfile::constant(0.96)),
              90.0 * 60.0, 1.0);
}

TEST(Calibration, LifetimeMonotoneInK) {
  // The bisection precondition.
  double previous = 0.0;
  for (double k : {1e-7, 1e-6, 1e-5, 1e-4, 1e-3}) {
    KibamBattery battery({7200.0, 0.625, k});
    const double life =
        *compute_lifetime(battery, LoadProfile::constant(0.96));
    EXPECT_GE(life, previous);
    previous = life;
  }
}

TEST(Calibration, UnattainableTargetRejected) {
  // Continuous load can never exceed C/I even with instant recovery.
  EXPECT_THROW(
      calibrate_flow_constant(7200.0, 0.625, 0.96, 10.0 * 7200.0 / 0.96),
      NumericalError);
  // Nor drop below the available-well-only lifetime.
  EXPECT_THROW(calibrate_flow_constant(7200.0, 0.625, 0.96, 100.0),
               NumericalError);
}

TEST(Calibration, InvalidArgumentsRejected) {
  EXPECT_THROW(calibrate_flow_constant(-1.0, 0.625, 0.96, 100.0),
               InvalidArgument);
  EXPECT_THROW(calibrate_flow_constant(7200.0, 1.0, 0.96, 100.0),
               InvalidArgument);
  EXPECT_THROW(calibrate_flow_constant(7200.0, 0.625, 0.0, 100.0),
               InvalidArgument);
  EXPECT_THROW(calibrate_flow_constant(7200.0, 0.625, 0.96, 0.0),
               InvalidArgument);
}

}  // namespace
}  // namespace kibamrm::battery
