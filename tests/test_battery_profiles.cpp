// Tests for load profiles and the segment walker.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "kibamrm/battery/load_profile.hpp"
#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {
namespace {

TEST(LoadProfile, ConstantProfile) {
  const LoadProfile p = LoadProfile::constant(0.96);
  EXPECT_DOUBLE_EQ(p.current_at(0.0), 0.96);
  EXPECT_DOUBLE_EQ(p.current_at(1e9), 0.96);
  EXPECT_NEAR(p.average_current(100.0), 0.96, 1e-12);
}

TEST(LoadProfile, SquareWaveTiming) {
  // f = 0.001 Hz: 500 s on, 500 s off (Fig. 2's drive).
  const LoadProfile p = LoadProfile::square_wave(0.001, 0.96);
  EXPECT_DOUBLE_EQ(p.cycle_duration(), 1000.0);
  EXPECT_DOUBLE_EQ(p.current_at(0.0), 0.96);
  EXPECT_DOUBLE_EQ(p.current_at(499.9), 0.96);
  EXPECT_DOUBLE_EQ(p.current_at(500.1), 0.0);
  EXPECT_DOUBLE_EQ(p.current_at(999.9), 0.0);
  // Periodic wrap-around.
  EXPECT_DOUBLE_EQ(p.current_at(1000.1), 0.96);
  EXPECT_DOUBLE_EQ(p.current_at(1500.1), 0.0);
}

TEST(LoadProfile, SquareWaveOffFirst) {
  const LoadProfile p = LoadProfile::square_wave(0.5, 1.0, /*on_first=*/false);
  EXPECT_DOUBLE_EQ(p.current_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.current_at(1.5), 1.0);
}

TEST(LoadProfile, AverageCurrentOfSquareWaveIsHalf) {
  const LoadProfile p = LoadProfile::square_wave(1.0, 0.96);
  EXPECT_NEAR(p.average_current(10.0), 0.48, 1e-12);
}

TEST(LoadProfile, NonPeriodicHoldsLastCurrent) {
  const LoadProfile p({{10.0, 2.0}, {5.0, 0.5}}, /*periodic=*/false);
  EXPECT_DOUBLE_EQ(p.current_at(3.0), 2.0);
  EXPECT_DOUBLE_EQ(p.current_at(12.0), 0.5);
  EXPECT_DOUBLE_EQ(p.current_at(1000.0), 0.5);
}

TEST(LoadProfile, Validation) {
  EXPECT_THROW(LoadProfile({}), InvalidArgument);
  EXPECT_THROW(LoadProfile({{0.0, 1.0}}), InvalidArgument);
  EXPECT_THROW(LoadProfile({{1.0, -1.0}}), InvalidArgument);
  EXPECT_THROW(LoadProfile::square_wave(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(LoadProfile::constant(1.0).current_at(-1.0), InvalidArgument);
}

TEST(SegmentWalker, WalksPeriodicProfile) {
  const LoadProfile p = LoadProfile::square_wave(0.5, 1.0);  // 1 s halves
  SegmentWalker walker(p);
  EXPECT_DOUBLE_EQ(walker.current(), 1.0);
  EXPECT_DOUBLE_EQ(walker.remaining(), 1.0);
  walker.consume(0.4);
  EXPECT_DOUBLE_EQ(walker.current(), 1.0);
  EXPECT_NEAR(walker.remaining(), 0.6, 1e-12);
  walker.consume(0.6);
  EXPECT_DOUBLE_EQ(walker.current(), 0.0);  // off half
  walker.consume(1.0);
  EXPECT_DOUBLE_EQ(walker.current(), 1.0);  // wrapped to the next cycle
}

TEST(SegmentWalker, OverconsumeRejected) {
  const LoadProfile profile = LoadProfile::square_wave(0.5, 1.0);
  SegmentWalker walker(profile);
  EXPECT_THROW(walker.consume(1.5), InvalidArgument);
}

TEST(SegmentWalker, NonPeriodicEndsInInfiniteHold) {
  const LoadProfile p({{2.0, 3.0}}, /*periodic=*/false);
  SegmentWalker walker(p);
  walker.consume(2.0);
  EXPECT_DOUBLE_EQ(walker.current(), 3.0);
  EXPECT_TRUE(std::isinf(walker.remaining()));
  walker.consume(1e12);  // no-op past the end
  EXPECT_DOUBLE_EQ(walker.current(), 3.0);
}

}  // namespace
}  // namespace kibamrm::battery
