// Tests for common/units conversions, including the paper's quoted
// equivalences.
#include <gtest/gtest.h>

#include "kibamrm/common/units.hpp"

namespace kibamrm::units {
namespace {

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(hours_to_seconds(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(seconds_to_hours(hours_to_seconds(3.7)), 3.7);
  EXPECT_DOUBLE_EQ(minutes_to_seconds(90.0), 5400.0);
  EXPECT_DOUBLE_EQ(seconds_to_minutes(minutes_to_seconds(12.5)), 12.5);
}

TEST(Units, ChargeConversions) {
  // The paper's Sec. 6.1 battery: C = 2000 mAh = 7200 As.
  EXPECT_DOUBLE_EQ(mAh_to_As(2000.0), 7200.0);
  EXPECT_DOUBLE_EQ(As_to_mAh(7200.0), 2000.0);
  // Sec. 6.2 battery: 800 mAh = 2880 As.
  EXPECT_DOUBLE_EQ(mAh_to_As(800.0), 2880.0);
  EXPECT_DOUBLE_EQ(Ah_to_As(2.0), 7200.0);
}

TEST(Units, RateConversionForPaperK) {
  // Sec. 6.2 prints "k = 4.5e-5/s = 1.96e-2/h", but 4.5e-5 * 3600 is
  // 0.162/h -- the paper's printed per-hour value is a typo (off by the
  // ratio 3600/436).  We use the arithmetically correct conversion; the
  // Fig. 10/11 anchors (17 h / 23 h / 25 h sure-empty times) reproduce
  // with it (see test_integration_paper.cpp).
  EXPECT_DOUBLE_EQ(per_second_to_per_hour(4.5e-5), 0.162);
  EXPECT_DOUBLE_EQ(per_hour_to_per_second(per_second_to_per_hour(0.123)),
                   0.123);
}

TEST(Units, CurrentConversions) {
  EXPECT_DOUBLE_EQ(mA_to_A(200.0), 0.2);
  EXPECT_DOUBLE_EQ(A_to_mA(0.96), 960.0);
  EXPECT_DOUBLE_EQ(A_to_mA(mA_to_A(8.0)), 8.0);
}

TEST(Units, ChargeCurrentTimeConsistency) {
  // 0.96 A for 7500 s consumes 7200 As, the Sec. 6.1 capacity.
  EXPECT_DOUBLE_EQ(0.96 * 7500.0, mAh_to_As(2000.0));
  // 200 mA for 4 h consumes 800 mAh (Sec. 4.3: "4 hours in send mode").
  EXPECT_DOUBLE_EQ(200.0 * 4.0, 800.0);
}

}  // namespace
}  // namespace kibamrm::units
