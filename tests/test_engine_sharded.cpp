// Tests for the sharded (multi-process) uniformisation backend, its
// ShardPlan partitioner, the ShmChannel transport and the batch-shared
// gather-plan cache.
//
// The three properties CI leans on:
//   1. curves are *bitwise* identical to the "parallel" engine at every
//      shards x threads combination (the coordinator replicates the
//      parallel backend's bookkeeping exactly, workers run the same fused
//      kernels over the same operands),
//   2. a worker crash surfaces as common::IpcError on that scenario only
//      -- the coordinator reaps the remaining workers and the batch layer
//      keeps every other curve, and
//   3. the plan cache never changes a result, it only skips setup work.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/common/shm_channel.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/engine/plan_cache.hpp"
#include "kibamrm/engine/scenario_batch.hpp"
#include "kibamrm/engine/sharded_backend.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/linalg/shard_plan.hpp"
#include "kibamrm/workload/onoff_model.hpp"

namespace kibamrm::engine {
namespace {

// The Fig. 8 scenario: on/off workload over the full two-well KiBaM.
core::KibamRmModel fig8_kibam() {
  return core::KibamRmModel(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
}

/// Scoped KIBAMRM_SHARDED_FAULT: set on construction, cleared on
/// destruction, so a failing test cannot poison its neighbours.
class ScopedFault {
 public:
  explicit ScopedFault(const char* spec) {
    ::setenv("KIBAMRM_SHARDED_FAULT", spec, 1);
  }
  ~ScopedFault() { ::unsetenv("KIBAMRM_SHARDED_FAULT"); }
};

TEST(ShardPlan, BandsPartitionRowsAndPadToShardCount) {
  const std::vector<std::uint32_t> counts = {3, 1, 4, 1, 5, 9, 2, 6};
  const std::vector<std::uint32_t> lo = {0, 1, 0, 3, 2, 4, 5, 6};
  const std::vector<std::uint32_t> hi = {2, 1, 3, 3, 6, 7, 6, 7};
  const auto plan = linalg::ShardPlan::build(counts, lo, hi, 3);
  ASSERT_EQ(plan.shard_count(), 3u);
  ASSERT_EQ(plan.bands().size(), 3u);
  std::size_t covered = 0;
  std::uint64_t nonzeros = 0;
  for (const linalg::ShardBand& band : plan.bands()) {
    EXPECT_EQ(band.row_begin, covered);
    covered = band.row_end;
    nonzeros += band.nonzeros;
  }
  EXPECT_EQ(covered, counts.size());
  EXPECT_EQ(nonzeros, 31u);
  EXPECT_GE(plan.nnz_imbalance(), 1.0);
  // More shards than rows: trailing bands are empty but present.
  const auto wide = linalg::ShardPlan::build(counts, lo, hi, 16);
  EXPECT_EQ(wide.bands().size(), 16u);
  EXPECT_EQ(wide.bands().back().rows(), 0u);
}

TEST(ShardPlan, HaloSpansLieInsideTheSourceBand) {
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 100.0);
  const double rate = 1.02 * expanded.chain.max_exit_rate();
  const linalg::CsrMatrix pt =
      expanded.chain.generator().uniformized(rate).transposed();
  const auto plan = linalg::ShardPlan::build(pt, 4);
  EXPECT_GT(plan.halo_spans().size(), 0u) << "banded chain must have halos";
  std::uint64_t bytes = 0;
  for (const linalg::HaloSpan& span : plan.halo_spans()) {
    ASSERT_NE(span.source, span.dest);
    const linalg::ShardBand& source = plan.bands()[span.source];
    const linalg::ShardBand& dest = plan.bands()[span.dest];
    EXPECT_GE(span.begin, source.row_begin);
    EXPECT_LE(span.end, source.row_end);
    EXPECT_GE(span.begin, dest.col_begin);
    EXPECT_LE(span.end, dest.col_end);
    EXPECT_LT(span.begin, span.end);
    bytes += span.rows() * sizeof(double);
  }
  EXPECT_EQ(plan.halo_bytes_per_step(), bytes);
}

TEST(ShmChannel, RoundTripsFramesAndDetectsCorruption) {
  auto channel = common::ShmChannel::create(1 << 12);
  const std::vector<double> payload = {1.0, -2.5, 3.25};
  channel.send(7, payload.data(), payload.size() * sizeof(double));
  common::ShmFrame frame;
  channel.recv(frame);
  EXPECT_EQ(frame.type, 7u);
  ASSERT_EQ(frame.payload.size(), payload.size() * sizeof(double));
  std::vector<double> out(payload.size());
  std::memcpy(out.data(), frame.payload.data(), frame.payload.size());
  EXPECT_EQ(out, payload);

  // decode_shm_frame is the single validation path: a flipped payload
  // byte must fail the checksum with IpcError.
  std::vector<std::byte> encoded;
  common::encode_shm_frame(7, std::as_bytes(std::span(payload)), encoded);
  common::ShmFrame decoded;
  EXPECT_EQ(common::decode_shm_frame(encoded, decoded), encoded.size());
  encoded[common::kShmFrameHeaderBytes] ^= std::byte{0x40};
  EXPECT_THROW(common::decode_shm_frame(encoded, decoded), IpcError);
}

TEST(ShmChannel, ClosedChannelFailsPendingRecv) {
  auto channel = common::ShmChannel::create(1 << 10);
  channel.close();
  common::ShmFrame frame;
  EXPECT_THROW(channel.recv(frame), IpcError);
}

TEST(ShardedBackend, RegisteredByName) {
  EXPECT_TRUE(is_backend_name("sharded"));
  EXPECT_EQ(make_backend("sharded")->name(), "sharded");
}

TEST(ShardedBackend, RejectsBadOptions) {
  EXPECT_THROW(make_backend("sharded", {.epsilon = 0.0}), Error);
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 450.0);
  auto unfused = make_backend("sharded", {.fused_kernels = false});
  EXPECT_THROW(unfused->solve(expanded.chain, expanded.initial, {8000.0}),
               UnsupportedChainError);
}

TEST(ShardedBackend, BitwiseIdenticalToParallelAtEveryShardThreadCombo) {
  // The acceptance property: full distributions agree *bitwise* with the
  // parallel engine (itself bitwise across thread counts) for every
  // tested shards x threads combination, and steady-state detection
  // fires at the same step (iteration counts equal).  Delta = 50 puts
  // the chain above the inner pool threshold, so threads = 2 runs the
  // per-worker pool path too.
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 50.0);
  const std::vector<double> times = {8000.0, 12000.0};
  auto reference = make_backend("parallel", {.threads = 1});
  const auto expected =
      reference->solve(expanded.chain, expanded.initial, times);
  const std::uint64_t expected_iterations =
      reference->last_stats().iterations;

  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const std::size_t threads : {1u, 2u}) {
      auto backend =
          make_backend("sharded", {.threads = threads, .shards = shards});
      const auto actual =
          backend->solve(expanded.chain, expanded.initial, times);
      ASSERT_EQ(actual.size(), expected.size());
      for (std::size_t k = 0; k < times.size(); ++k) {
        EXPECT_EQ(actual[k], expected[k])
            << "bitwise divergence at shards=" << shards
            << " threads=" << threads << " t=" << times[k];
      }
      const BackendStats& stats = backend->last_stats();
      EXPECT_EQ(stats.iterations, expected_iterations)
          << "detection must fire at the same step";
      EXPECT_EQ(stats.shards, shards);
      EXPECT_EQ(stats.active_states, reference->last_stats().active_states);
      EXPECT_EQ(stats.active_nonzeros,
                reference->last_stats().active_nonzeros);
      EXPECT_GE(stats.shard_nnz_imbalance, shards > 1 ? 1.0 : 0.0);
      if (shards > 1) {
        EXPECT_GT(stats.halo_bytes_per_step, 0u)
            << "multi-shard bands must exchange halos";
      } else {
        EXPECT_EQ(stats.halo_bytes_per_step, 0u);
      }
    }
  }
}

TEST(ShardedBackend, CurveMatchesParallelThroughApproximationLayer) {
  const auto times = core::uniform_grid(6000.0, 20000.0, 10);
  core::MarkovianApproximation parallel(
      fig8_kibam(), {.delta = 300.0, .engine = "parallel", .threads = 1});
  const core::LifetimeCurve expected = parallel.solve(times);
  core::MarkovianApproximation sharded(
      fig8_kibam(),
      {.delta = 300.0, .engine = "sharded", .threads = 1, .shards = 2});
  const core::LifetimeCurve curve = sharded.solve(times);
  EXPECT_EQ(curve.probabilities(), expected.probabilities())
      << "curves must be bitwise equal, not merely close";
  EXPECT_EQ(sharded.last_stats().shards, 2u);
  EXPECT_EQ(sharded.last_stats().uniformization_iterations,
            parallel.last_stats().uniformization_iterations);
}

TEST(ShardedBackend, DetectionOnOffAgreeAndAccountingCloses) {
  // Delta = 50 is the coarsest fig8 grid whose curve saturates inside the
  // horizon (see the parallel detection test), and the late increments of
  // a multi-point grid are where the chain sits still long enough for the
  // calm-step guard -- detection must actually fire here, and the
  // skipped-vs-executed accounting must close.
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 50.0);
  const std::vector<double> times = core::uniform_grid(6000.0, 20000.0, 12);
  auto on = make_backend("sharded", {.shards = 2});
  auto off =
      make_backend("sharded", {.steady_state_detection = false, .shards = 2});
  const auto a = on->solve(expanded.chain, expanded.initial, times);
  const auto b = off->solve(expanded.chain, expanded.initial, times);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(on->last_stats().iterations_saved, 0u);
  EXPECT_EQ(on->last_stats().iterations + on->last_stats().iterations_saved,
            off->last_stats().iterations);
}

TEST(ShardedBackend, WorkerDeathRaisesIpcErrorAndBackendRecovers) {
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 300.0);
  const std::vector<double> times = {10000.0};
  auto backend = make_backend("sharded", {.shards = 2});
  {
    ScopedFault fault("exit:1");
    EXPECT_THROW(backend->solve(expanded.chain, expanded.initial, times),
                 IpcError);
  }
  // The coordinator reaped the solve's workers; the same backend object
  // must solve cleanly once the fault is gone.
  const auto result = backend->solve(expanded.chain, expanded.initial, times);
  ASSERT_EQ(result.size(), times.size());
  auto reference = make_backend("parallel", {.threads = 1});
  EXPECT_EQ(result,
            reference->solve(expanded.chain, expanded.initial, times));
}

TEST(ScenarioBatch, IsolatesShardedWorkerDeathToItsScenario) {
  // The fault's min-states floor (1000) sits between the Delta = 450
  // chain (~a few hundred states) and the Delta = 50 chain (~10k), so
  // only the fine scenario's worker 0 crashes.
  const auto times = core::uniform_grid(6000.0, 20000.0, 4);
  std::vector<Scenario> scenarios = {
      {"coarse", fig8_kibam(), 450.0, times},
      {"fine", fig8_kibam(), 50.0, times},
  };
  ScopedFault fault("exit:0:1000");
  ScenarioBatch batch({.engine = "sharded", .threads = 2, .shards = 2});
  const auto results = batch.solve_all(scenarios);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].curve.has_value());
  EXPECT_FALSE(results[0].failed);
  EXPECT_TRUE(results[1].failed);
  EXPECT_FALSE(results[1].curve.has_value());
  EXPECT_NE(results[1].failure_reason.find("worker"), std::string::npos)
      << results[1].failure_reason;
  EXPECT_EQ(batch.last_stats().failed, 1u);
}

TEST(GatherPlanCache, SecondObtainReusesTheFirstBuild) {
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 300.0);
  std::vector<std::uint32_t> seeds;
  for (std::size_t i = 0; i < expanded.initial.size(); ++i) {
    if (expanded.initial[i] != 0.0) {
      seeds.push_back(static_cast<std::uint32_t>(i));
    }
  }
  const double rate = 1.02 * expanded.chain.max_exit_rate();
  GatherPlanCache cache;
  const auto first = cache.obtain(expanded.chain.generator(), rate, seeds);
  const auto second = cache.obtain(expanded.chain.generator(), rate, seeds);
  EXPECT_EQ(first.get(), second.get()) << "same chain must share one plan";
  EXPECT_EQ(cache.plans_built(), 1u);
  EXPECT_EQ(cache.plans_reused(), 1u);
  // A different rate is a different solve setup.
  const auto third =
      cache.obtain(expanded.chain.generator(), 2.0 * rate, seeds);
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(cache.plans_built(), 2u);
}

TEST(ScenarioBatch, SharesOnePlanAcrossIdenticalStructures) {
  // Three scenarios, identical Q*-structure (same model, same Delta),
  // different time grids: one plan built, two served from the cache --
  // and the curves stay bitwise equal to uncached sequential solves.
  std::vector<Scenario> scenarios;
  for (const double horizon : {18000.0, 20000.0, 22000.0}) {
    scenarios.push_back({"h=" + std::to_string(horizon), fig8_kibam(), 300.0,
                         core::uniform_grid(6000.0, horizon, 6)});
  }
  ScenarioBatch batch({.engine = "parallel", .threads = 2});
  const auto results = batch.solve_all(scenarios);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(batch.last_stats().plans_built, 1u);
  EXPECT_EQ(batch.last_stats().plans_reused, 2u);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_TRUE(results[i].curve.has_value());
    core::MarkovianApproximation solo(
        scenarios[i].model,
        {.delta = scenarios[i].delta, .engine = "parallel", .threads = 1});
    EXPECT_EQ(results[i].curve->probabilities(),
              solo.solve(scenarios[i].times).probabilities())
        << "cache hit changed scenario " << i;
  }
}

}  // namespace
}  // namespace kibamrm::engine
