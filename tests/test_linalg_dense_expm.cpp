// Tests for dense matrices, LU solve, and the Pade matrix exponential.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/dense_matrix.hpp"
#include "kibamrm/linalg/expm.hpp"

namespace kibamrm::linalg {
namespace {

using Complex = std::complex<double>;

TEST(Dense, IdentityAndMultiply) {
  DenseReal a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  const DenseReal i = DenseReal::identity(2);
  const DenseReal ai = a * i;
  EXPECT_DOUBLE_EQ(ai(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(ai(1, 0), 3.0);

  const DenseReal sq = a * a;
  EXPECT_DOUBLE_EQ(sq(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(sq(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(sq(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(sq(1, 1), 22.0);
}

TEST(Dense, AddSubtractScale) {
  DenseReal a(1, 2);
  a(0, 0) = 1.0;
  a(0, 1) = -2.0;
  const DenseReal b = a.scaled(3.0);
  EXPECT_DOUBLE_EQ(b(0, 1), -6.0);
  const DenseReal c = b - a;
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  const DenseReal d = c + a;
  EXPECT_DOUBLE_EQ(d(0, 1), -6.0);
}

TEST(Dense, Norm1IsMaxColumnSum) {
  DenseReal a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = -5.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;
  EXPECT_DOUBLE_EQ(a.norm1(), 6.0);
}

TEST(Dense, ShapeMismatchRejected) {
  DenseReal a(2, 3);
  DenseReal b(2, 3);
  EXPECT_THROW(a * b, InvalidArgument);
  DenseReal c(3, 3);
  EXPECT_THROW(a + c, InvalidArgument);
}

TEST(Dense, LeftMultiplyRowVector) {
  DenseReal a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  const std::vector<double> out = a.left_multiply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

TEST(LuSolve, SolvesRealSystem) {
  DenseReal a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  DenseReal b(2, 1);
  b(0, 0) = 5.0;
  b(1, 0) = 10.0;
  const DenseReal x = lu_solve(a, b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(x(1, 0), 3.0, 1e-14);
}

TEST(LuSolve, PivotsOnZeroDiagonal) {
  DenseReal a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const DenseReal x = lu_solve(a, DenseReal::identity(2));
  // inverse of the swap matrix is itself
  EXPECT_NEAR(x(0, 1), 1.0, 1e-15);
  EXPECT_NEAR(x(1, 0), 1.0, 1e-15);
}

TEST(LuSolve, SingularMatrixThrows) {
  DenseReal a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(lu_solve(a, DenseReal::identity(2)), NumericalError);
}

TEST(LuSolve, SolvesComplexSystem) {
  DenseComplex a(2, 2);
  a(0, 0) = Complex(1.0, 1.0);
  a(0, 1) = Complex(0.0, -1.0);
  a(1, 0) = Complex(2.0, 0.0);
  a(1, 1) = Complex(1.0, 0.0);
  DenseComplex b(2, 1);
  b(0, 0) = Complex(1.0, 0.0);
  b(1, 0) = Complex(0.0, 1.0);
  const DenseComplex x = lu_solve(a, b);
  // Verify A x == b.
  const Complex r0 = a(0, 0) * Complex(0, 0);  // placeholder, recompute below
  (void)r0;
  DenseComplex check(2, 2);
  check(0, 0) = Complex(1.0, 1.0);
  check(0, 1) = Complex(0.0, -1.0);
  check(1, 0) = Complex(2.0, 0.0);
  check(1, 1) = Complex(1.0, 0.0);
  const DenseComplex ax = check * x;
  EXPECT_NEAR(std::abs(ax(0, 0) - b(0, 0)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(ax(1, 0) - b(1, 0)), 0.0, 1e-14);
}

TEST(Expm, ZeroMatrixGivesIdentity) {
  const DenseReal e = expm(DenseReal(3, 3));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(e(i, j), i == j ? 1.0 : 0.0, 1e-15);
    }
  }
}

TEST(Expm, DiagonalMatrix) {
  DenseReal a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -2.0;
  const DenseReal e = expm(a);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-13);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-13);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-15);
}

TEST(Expm, NilpotentMatrixTruncatesSeries) {
  // N = [[0,1],[0,0]], exp(N) = I + N exactly.
  DenseReal n(2, 2);
  n(0, 1) = 1.0;
  const DenseReal e = expm(n);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-15);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-15);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-15);
}

TEST(Expm, RotationGeneratorGivesSineCosine) {
  // A = [[0,-w],[w,0]] => exp(A t): rotation by w t.
  const double w = 2.0;
  DenseReal a(2, 2);
  a(0, 1) = -w;
  a(1, 0) = w;
  const DenseReal e = expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(w), 1e-13);
  EXPECT_NEAR(e(0, 1), -std::sin(w), 1e-13);
  EXPECT_NEAR(e(1, 0), std::sin(w), 1e-13);
}

TEST(Expm, LargeNormTriggersScalingAndStaysAccurate) {
  // Generator scaled way past theta_13: exp(Q t) must stay stochastic.
  DenseReal q(2, 2);
  q(0, 0) = -2.0;
  q(0, 1) = 2.0;
  q(1, 0) = 5.0;
  q(1, 1) = -5.0;
  const double t = 2000.0;
  const DenseReal e = expm(q.scaled(t));
  // Rows sum to 1 and equal the stationary distribution (5/7, 2/7).
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(e(i, 0) + e(i, 1), 1.0, 1e-10);
    EXPECT_NEAR(e(i, 0), 5.0 / 7.0, 1e-10);
    EXPECT_NEAR(e(i, 1), 2.0 / 7.0, 1e-10);
  }
}

TEST(Expm, ComplexScalarMatchesStdExp) {
  DenseComplex a(1, 1);
  a(0, 0) = Complex(0.3, -2.2);
  const DenseComplex e = expm(a);
  const Complex expected = std::exp(Complex(0.3, -2.2));
  EXPECT_NEAR(std::abs(e(0, 0) - expected), 0.0, 1e-13);
}

TEST(Expm, ComplexCommutingSumFactorises) {
  // For commuting A, B: exp(A+B) = exp(A) exp(B); use diagonal matrices.
  DenseComplex a(2, 2);
  a(0, 0) = Complex(0.5, 1.0);
  a(1, 1) = Complex(-1.0, 0.3);
  DenseComplex b(2, 2);
  b(0, 0) = Complex(-0.2, 0.4);
  b(1, 1) = Complex(0.1, -0.8);
  const DenseComplex lhs = expm(a + b);
  const DenseComplex rhs = expm(a) * expm(b);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(std::abs(lhs(i, i) - rhs(i, i)), 0.0, 1e-12);
  }
}

TEST(Expm, RejectsNonSquare) {
  EXPECT_THROW(expm(DenseReal(2, 3)), InvalidArgument);
}

TEST(ScaledExpmCache, MatchesFreshExpmAcrossScales) {
  DenseReal a(3, 3);
  a(0, 0) = -2.0;
  a(0, 1) = 2.0;
  a(1, 0) = 0.5;
  a(1, 1) = -1.5;
  a(1, 2) = 1.0;
  a(2, 2) = -0.1;
  const ScaledExpmCache cache(a);
  // Scales spanning no-squaring, heavy squaring, zero and negative.
  for (const double s : {0.0, 0.3, 1.0, -2.0, 50.0, 4000.0}) {
    const DenseReal expected = expm(a.scaled(s));
    const DenseReal actual = cache.expm(s);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_NEAR(actual(i, j), expected(i, j),
                    1e-13 * std::max(1.0, std::abs(expected(i, j))))
            << "s=" << s << " (" << i << "," << j << ")";
      }
    }
  }
  EXPECT_EQ(cache.evaluations(), 6u);
  EXPECT_EQ(cache.dimension(), 3u);
}

TEST(ScaledExpmCache, TallMatrixPadsZeroColumns) {
  // The Krylov backend's augmented Hessenberg arrives as (m+2) x (m+1):
  // its implied final column is zero.  Padding must reproduce the
  // explicit square embedding exactly.
  DenseReal tall(4, 3);
  tall(0, 0) = -1.0;
  tall(0, 1) = 0.7;
  tall(1, 0) = 0.4;
  tall(1, 1) = -0.9;
  tall(2, 1) = 0.3;  // the h_{m+1,m} row
  tall(3, 2) = 1.0;  // the error-estimate chain entry
  DenseReal square(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) square(i, j) = tall(i, j);
  }
  const ScaledExpmCache cache(tall);
  const DenseReal expected = ScaledExpmCache(square).expm(2.5);
  const DenseReal actual = cache.expm(2.5);
  ASSERT_EQ(cache.dimension(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(actual(i, j), expected(i, j));
    }
  }
}

TEST(ScaledExpmCache, SurvivesExtremeNorms) {
  // ||A||_1 = 2e60 would overflow A^6 if the powers were formed naively;
  // the exact power-of-two prescale restores the scale-first domain.
  // exp([[-q, q], [0, 0]]) = [[e^-q, 1 - e^-q], [0, 1]].
  DenseReal a(2, 2);
  a(0, 0) = -1e60;
  a(0, 1) = 1e60;
  const ScaledExpmCache cache(a);
  const DenseReal at_one = cache.expm(1.0);
  EXPECT_NEAR(at_one(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(at_one(0, 1), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(at_one(1, 1), 1.0);
  // A tiny scalar lands back in the mild regime and must agree with the
  // plain expm of the equivalent small matrix.
  const DenseReal small = expm(a.scaled(1e-60));
  const DenseReal at_tiny = cache.expm(1e-60);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(at_tiny(i, j), small(i, j), 1e-12) << i << "," << j;
    }
  }
  // And the free-function expm survives the same norm directly.
  const DenseReal direct = expm(a);
  EXPECT_NEAR(direct(0, 1), 1.0, 1e-9);
}

TEST(ScaledExpmCache, RejectsWideOrEmptyMatrices) {
  EXPECT_THROW(ScaledExpmCache(DenseReal(2, 3)), InvalidArgument);
  EXPECT_THROW(ScaledExpmCache(DenseReal(0, 0)), InvalidArgument);
}

}  // namespace
}  // namespace kibamrm::linalg
