// Property sweeps: physical invariants of the KiBaM and structural
// invariants of the Markovian approximation, asserted over randomized
// battery/load configurations drawn from the shared property generators
// (tests/property/) instead of the original hand-picked parameter grid.
// Each invariant keeps its historical name; failures shrink to a minimal
// scenario and print a KIBAMRM_PROP_SEED repro line.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/lifetime_distribution.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/markov/uniformization.hpp"
#include "kibamrm/workload/onoff_model.hpp"
#include "property/generators.hpp"
#include "property/propgen.hpp"

namespace kibamrm::prop {
namespace {

// ------------------------------------------------ KiBaM physical invariants
//
// A ScenarioCase doubles as a KiBaM configuration: capacity and available
// fraction come from the level counts and grid width, the flow constant
// and load current are drawn directly.

struct KibamView {
  double capacity;
  double c;
  double k;
  double current;
};

KibamView kibam_view(const ScenarioCase& value) {
  const double y1 = static_cast<double>(value.levels_available) * value.delta;
  const double y2 = static_cast<double>(value.levels_bound) * value.delta;
  return {y1 + y2, y1 / (y1 + y2), value.flow_constant, value.on_current};
}

TEST(KibamInvariantTest, LifetimeBracketedByAvailableAndTotalCharge) {
  check<ScenarioCase>(
      "LifetimeBracketed", scenario_gen(), [](const ScenarioCase& value) {
        const KibamView view = kibam_view(value);
        battery::KibamBattery model({view.capacity, view.c, view.k});
        const auto life = battery::compute_lifetime(
            model, battery::LoadProfile::constant(view.current),
            {.max_time = 1e12});
        if (!life.has_value())
          return Verdict::fail("constant drain never emptied the battery");
        // Never better than draining the full capacity, never worse than
        // draining only the initially available charge.
        const double lower =
            view.c * view.capacity / view.current * (1.0 - 1e-9);
        const double upper = view.capacity / view.current * (1.0 + 1e-9);
        if (*life < lower || *life > upper) {
          std::ostringstream why;
          why << "lifetime " << *life << " outside [" << lower << ", "
              << upper << "]";
          return Verdict::fail(why.str());
        }
        return Verdict::pass();
      });
}

TEST(KibamInvariantTest, ChargeConservedAndWellsNonNegative) {
  check<ScenarioCase>(
      "ChargeConserved", scenario_gen(), [](const ScenarioCase& value) {
        const KibamView view = kibam_view(value);
        battery::KibamBattery model({view.capacity, view.c, view.k});
        double drained = 0.0;
        const double dt = 0.05 * view.capacity / view.current / 20.0;
        for (int step = 0; step < 20 && !model.empty(); ++step) {
          const auto crossing = model.advance(view.current, dt);
          drained += view.current * (crossing ? *crossing : dt);
          if (model.available_charge() < 0.0)
            return Verdict::fail("available charge went negative");
          if (model.bound_charge() < 0.0)
            return Verdict::fail("bound charge went negative");
          if (!crossing &&
              std::abs(model.total_charge() - (view.capacity - drained)) >
                  1e-9 * view.capacity) {
            std::ostringstream why;
            why << "charge leak: total " << model.total_charge()
                << " vs drained ledger " << view.capacity - drained;
            return Verdict::fail(why.str());
          }
        }
        return Verdict::pass();
      });
}

TEST(KibamInvariantTest, PulsedLifetimeAtLeastTwiceContinuousOnTime) {
  check<ScenarioCase>(
      "PulsedLifetime", scenario_gen(), [](const ScenarioCase& value) {
        const KibamView view = kibam_view(value);
        battery::KibamBattery continuous({view.capacity, view.c, view.k});
        const auto life_cont = battery::compute_lifetime(
            continuous, battery::LoadProfile::constant(view.current),
            {.max_time = 1e12});
        if (!life_cont.has_value())
          return Verdict::fail("continuous drain never emptied the battery");
        battery::KibamBattery pulsed({view.capacity, view.c, view.k});
        // Period two orders below the continuous lifetime; 50% duty means
        // wall-clock at least ~2x, and recovery only adds on top.
        const double freq = 100.0 / *life_cont;
        const auto life_pulsed = battery::compute_lifetime(
            pulsed, battery::LoadProfile::square_wave(freq, view.current),
            {.max_time = 1e13});
        if (!life_pulsed.has_value())
          return Verdict::fail("pulsed drain never emptied the battery");
        if (*life_pulsed < 2.0 * *life_cont * (1.0 - 2.0 / 100.0)) {
          std::ostringstream why;
          why << "pulsed lifetime " << *life_pulsed << " below 2x "
              << "continuous " << *life_cont;
          return Verdict::fail(why.str());
        }
        return Verdict::pass();
      });
}

TEST(KibamInvariantTest, RestNeverDecreasesAvailableCharge) {
  check<ScenarioCase>(
      "RestRecovers", scenario_gen(), [](const ScenarioCase& value) {
        const KibamView view = kibam_view(value);
        battery::KibamBattery model({view.capacity, view.c, view.k});
        model.advance(view.current,
                      0.25 * view.c * view.capacity / view.current);
        const double before = model.available_charge();
        model.advance(0.0, 1.0 / (view.k > 0.0 ? view.k : 1.0));
        if (model.available_charge() < before - 1e-9 * view.capacity) {
          std::ostringstream why;
          why << "rest decreased available charge: " << before << " -> "
              << model.available_charge();
          return Verdict::fail(why.str());
        }
        return Verdict::pass();
      });
}

// ------------------------------------- approximation structural invariants

TEST(ApproxStructureTest, StateCountMatchesGridFormula) {
  check<ScenarioCase>(
      "StateCountFormula", scenario_gen(), [](const ScenarioCase& value) {
        const core::KibamRmModel model = value.model();
        core::MarkovianApproximation solver(model, {.delta = value.delta});
        const std::size_t expected = (value.levels_available + 1) *
                                     (value.levels_bound + 1) *
                                     model.workload().chain().state_count();
        if (solver.last_stats().expanded_states != expected) {
          std::ostringstream why;
          why << "expanded states "
              << solver.last_stats().expanded_states << " != (L1+1)(L2+1)W"
              << " = " << expected;
          return Verdict::fail(why.str());
        }
        return Verdict::pass();
      });
}

TEST(ApproxStructureTest, ProbabilityMassConservedAlongTheCurve) {
  check<ScenarioCase>(
      "MassConservedOnCurve", scenario_gen(), [](const ScenarioCase& value) {
        const auto expanded =
            core::build_expanded_chain(value.model(), value.delta);
        markov::TransientSolver solver(expanded.chain,
                                       {.renormalize = false});
        const auto pis = solver.solve(expanded.initial, value.times);
        for (std::size_t point = 0; point < pis.size(); ++point) {
          if (std::abs(linalg::sum(pis[point]) - 1.0) > 1e-8) {
            std::ostringstream why;
            why << "mass at t=" << value.times[point] << ": "
                << linalg::sum(pis[point]);
            return Verdict::fail(why.str());
          }
          for (double p : pis[point])
            if (p < -1e-12)
              return Verdict::fail("negative probability on the curve");
        }
        return Verdict::pass();
      });
}

TEST(ApproxStructureTest, EmptyProbabilityMonotoneAndWithinBounds) {
  check<ScenarioCase>(
      "EmptyProbabilityCurve", scenario_gen(), [](const ScenarioCase& value) {
        const KibamView view = kibam_view(value);
        const core::KibamRmModel model = value.model();
        core::MarkovianApproximation solver(model, {.delta = value.delta});
        // LifetimeCurve's constructor enforces monotonicity/bounds;
        // surviving construction is most of the assertion.  The horizon
        // doubles from the deterministic full-drain time until the curve
        // saturates (random scenarios spread their lifetime mass wider
        // than the paper's cell, so a fixed horizon would flake).
        double horizon = 2.0 * view.capacity / view.current;
        for (int attempt = 0; attempt < 6; ++attempt) {
          const auto curve =
              solver.solve(core::uniform_grid(0.05 * horizon, horizon, 12));
          if (curve.probabilities().front() < 0.0)
            return Verdict::fail("curve starts below zero");
          if (curve.probabilities().back() > 0.95) return Verdict::pass();
          horizon *= 2.0;
        }
        return Verdict::fail(
            "Pr{empty} never reached 0.95 within 64x the drain time");
      });
}

}  // namespace
}  // namespace kibamrm::prop
