// Parameterized property sweeps: physical invariants of the KiBaM and
// structural invariants of the Markovian approximation, asserted over a
// grid of battery/load configurations rather than hand-picked points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/markov/uniformization.hpp"
#include "kibamrm/workload/onoff_model.hpp"

namespace kibamrm {
namespace {

// ------------------------------------------------ KiBaM physical invariants

// (capacity, available fraction c, flow constant k, current I).
using KibamConfig = std::tuple<double, double, double, double>;

class KibamInvariantTest : public ::testing::TestWithParam<KibamConfig> {};

TEST_P(KibamInvariantTest, LifetimeBracketedByAvailableAndTotalCharge) {
  const auto [capacity, c, k, current] = GetParam();
  battery::KibamBattery model({capacity, c, k});
  const auto life = battery::compute_lifetime(
      model, battery::LoadProfile::constant(current), {.max_time = 1e12});
  ASSERT_TRUE(life.has_value());
  // Never better than draining the full capacity, never worse than
  // draining only the initially available charge.
  EXPECT_GE(*life, c * capacity / current * (1.0 - 1e-9));
  EXPECT_LE(*life, capacity / current * (1.0 + 1e-9));
}

TEST_P(KibamInvariantTest, ChargeConservedAndWellsNonNegative) {
  const auto [capacity, c, k, current] = GetParam();
  battery::KibamBattery model({capacity, c, k});
  double drained = 0.0;
  const double dt = 0.05 * capacity / current / 20.0;
  for (int step = 0; step < 20 && !model.empty(); ++step) {
    const auto crossing = model.advance(current, dt);
    drained += current * (crossing ? *crossing : dt);
    EXPECT_GE(model.available_charge(), 0.0);
    EXPECT_GE(model.bound_charge(), 0.0);
    if (!crossing) {
      EXPECT_NEAR(model.total_charge(), capacity - drained,
                  1e-9 * capacity);
    }
  }
}

TEST_P(KibamInvariantTest, PulsedLifetimeAtLeastTwiceContinuousOnTime) {
  const auto [capacity, c, k, current] = GetParam();
  battery::KibamBattery continuous({capacity, c, k});
  const double life_cont = *battery::compute_lifetime(
      continuous, battery::LoadProfile::constant(current),
      {.max_time = 1e12});
  battery::KibamBattery pulsed({capacity, c, k});
  // Period two orders below the continuous lifetime.
  const double freq = 100.0 / life_cont;
  const double life_pulsed = *battery::compute_lifetime(
      pulsed, battery::LoadProfile::square_wave(freq, current),
      {.max_time = 1e13});
  // 50% duty: wall-clock at least ~2x the continuous lifetime, and the
  // recovery effect can only add on top.
  EXPECT_GE(life_pulsed, 2.0 * life_cont * (1.0 - 2.0 / 100.0));
}

TEST_P(KibamInvariantTest, RestNeverDecreasesAvailableCharge) {
  const auto [capacity, c, k, current] = GetParam();
  battery::KibamBattery model({capacity, c, k});
  model.advance(current, 0.25 * c * capacity / current);
  const double before = model.available_charge();
  model.advance(0.0, 1.0 / (k > 0.0 ? k : 1.0));
  EXPECT_GE(model.available_charge(), before - 1e-9 * capacity);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KibamInvariantTest,
    ::testing::Values(
        KibamConfig{7200.0, 0.625, 4.5e-5, 0.96},   // the paper's cell
        KibamConfig{7200.0, 0.625, 4.5e-5, 0.10},   // light load
        KibamConfig{7200.0, 0.625, 4.5e-5, 5.00},   // heavy load
        KibamConfig{7200.0, 0.900, 4.5e-5, 0.96},   // mostly available
        KibamConfig{7200.0, 0.200, 4.5e-5, 0.96},   // mostly bound
        KibamConfig{7200.0, 0.625, 1.0e-3, 0.96},   // fast well flow
        KibamConfig{7200.0, 0.625, 1.0e-7, 0.96},   // nearly frozen flow
        KibamConfig{100.0, 0.500, 1.0e-2, 2.00},    // small cell
        KibamConfig{2880.0, 0.625, 1.6e-1, 54.0})); // mAh/hour units

// ------------------------------------- approximation structural invariants

class ApproxStructureTest : public ::testing::TestWithParam<double> {};

TEST_P(ApproxStructureTest, StateCountMatchesGridFormula) {
  const double delta = GetParam();
  const core::KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
  core::MarkovianApproximation solver(model, {.delta = delta});
  const auto l1 = static_cast<std::size_t>(std::llround(4500.0 / delta));
  const auto l2 = static_cast<std::size_t>(std::llround(2700.0 / delta));
  EXPECT_EQ(solver.last_stats().expanded_states, (l1 + 1) * (l2 + 1) * 2);
}

TEST_P(ApproxStructureTest, ProbabilityMassConservedAlongTheCurve) {
  const double delta = GetParam();
  const core::KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
  const auto expanded = core::build_expanded_chain(model, delta);
  markov::TransientSolver solver(expanded.chain, {.renormalize = false});
  const auto pis =
      solver.solve(expanded.initial, {2000.0, 8000.0, 14000.0});
  for (const auto& pi : pis) {
    EXPECT_NEAR(linalg::sum(pi), 1.0, 1e-8);
    for (double p : pi) EXPECT_GE(p, -1e-12);
  }
}

TEST_P(ApproxStructureTest, EmptyProbabilityMonotoneAndWithinBounds) {
  const double delta = GetParam();
  const core::KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
  core::MarkovianApproximation solver(model, {.delta = delta});
  // LifetimeCurve's constructor enforces monotonicity/bounds; surviving
  // construction across the sweep is the assertion.
  const auto curve = solver.solve(core::uniform_grid(1000.0, 25000.0, 25));
  EXPECT_GE(curve.probabilities().front(), 0.0);
  EXPECT_GT(curve.probabilities().back(), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Deltas, ApproxStructureTest,
                         ::testing::Values(900.0, 450.0, 300.0, 180.0,
                                           100.0));

}  // namespace
}  // namespace kibamrm
