// Tests for phase-type distributions and the Erlang helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/common/random.hpp"
#include "kibamrm/markov/phase_type.hpp"

namespace kibamrm::markov {
namespace {

TEST(ErlangCdf, MatchesClosedFormSmallK) {
  const double rate = 2.0;
  for (double t : {0.1, 0.5, 1.0, 2.0}) {
    // Erlang-1 = exponential.
    EXPECT_NEAR(erlang_cdf(1, rate, t), 1.0 - std::exp(-rate * t), 1e-10);
    // Erlang-2 closed form.
    const double x = rate * t;
    EXPECT_NEAR(erlang_cdf(2, rate, t), 1.0 - std::exp(-x) * (1.0 + x),
                1e-10);
  }
}

TEST(ErlangCdf, ZeroAndEdge) {
  EXPECT_DOUBLE_EQ(erlang_cdf(3, 1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(erlang_cdf(3, 1.0, -1.0), 0.0);
  EXPECT_THROW(erlang_cdf(0, 1.0, 1.0), kibamrm::InvalidArgument);
  EXPECT_THROW(erlang_cdf(1, 0.0, 1.0), kibamrm::InvalidArgument);
}

TEST(ErlangCdf, HugeShapeIsStable) {
  // Sec. 6.1: total on-time ~ Erlang_15000(2/s), nearly deterministic with
  // mean 7500 s.  The CDF must be ~0 well below and ~1 well above the mean.
  const int k = 15000;
  const double rate = 2.0;
  EXPECT_NEAR(erlang_cdf(k, rate, 7200.0), 0.0, 1e-3);
  EXPECT_NEAR(erlang_cdf(k, rate, 7800.0), 1.0, 1e-3);
  EXPECT_NEAR(erlang_cdf(k, rate, 7500.0), 0.5, 0.02);
}

TEST(ErlangCdf, MonotoneInT) {
  double prev = 0.0;
  for (double t = 0.0; t <= 5.0; t += 0.25) {
    const double cur = erlang_cdf(4, 1.5, t);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(ErlangMoments, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(erlang_mean(6, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(erlang_variance(6, 3.0), 6.0 / 9.0);
}

TEST(PhaseType, ExponentialCdfAndPdf) {
  const PhaseType exp_ph = PhaseType::exponential(2.0);
  EXPECT_EQ(exp_ph.phases(), 1u);
  for (double t : {0.0, 0.3, 1.0, 2.5}) {
    EXPECT_NEAR(exp_ph.cdf(t), 1.0 - std::exp(-2.0 * t), 1e-12);
    EXPECT_NEAR(exp_ph.pdf(t), 2.0 * std::exp(-2.0 * t), 1e-12);
  }
  EXPECT_NEAR(exp_ph.mean(), 0.5, 1e-12);
}

TEST(PhaseType, ErlangAgainstDirectCdf) {
  const PhaseType ph = PhaseType::erlang(4, 3.0);
  EXPECT_EQ(ph.phases(), 4u);
  for (double t : {0.2, 1.0, 2.0}) {
    EXPECT_NEAR(ph.cdf(t), erlang_cdf(4, 3.0, t), 1e-9) << "t=" << t;
  }
  EXPECT_NEAR(ph.mean(), erlang_mean(4, 3.0), 1e-10);
}

TEST(PhaseType, AlphaDeficitIsAtomAtZero) {
  // alpha sums to 0.6: with probability 0.4 the value is exactly 0.
  linalg::DenseReal t(1, 1);
  t(0, 0) = -1.0;
  const PhaseType ph({0.6}, t);
  EXPECT_NEAR(ph.cdf(0.0), 0.4, 1e-12);
}

TEST(PhaseType, SampleMomentsMatchTheory) {
  const PhaseType ph = PhaseType::erlang(3, 2.0);
  common::RandomStream rng(2024);
  const int n = 40000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += ph.sample(rng);
  EXPECT_NEAR(sum / n, 1.5, 0.03);
}

TEST(PhaseType, ValidationRejectsBadInputs) {
  linalg::DenseReal good(1, 1);
  good(0, 0) = -1.0;
  EXPECT_THROW(PhaseType({1.5}, good), kibamrm::InvalidArgument);   // alpha > 1
  EXPECT_THROW(PhaseType({-0.1}, good), kibamrm::InvalidArgument);  // alpha < 0
  linalg::DenseReal positive_row(1, 1);
  positive_row(0, 0) = 1.0;  // row sum > 0
  EXPECT_THROW(PhaseType({1.0}, positive_row), kibamrm::InvalidArgument);
  linalg::DenseReal wrong_shape(2, 1);
  EXPECT_THROW(PhaseType({1.0}, wrong_shape), kibamrm::InvalidArgument);
}

class ErlangConvergenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ErlangConvergenceTest, ConcentratesAroundMeanAsKGrows) {
  // Relative spread (std/mean) = 1/sqrt(K): the Sec. 4.3 mechanism for
  // approximating deterministic on/off times.
  const int k = GetParam();
  const double rate = static_cast<double>(k);  // mean fixed at 1
  const double below = erlang_cdf(k, rate, 0.7);
  const double above = erlang_cdf(k, rate, 1.3);
  if (k >= 64) {
    EXPECT_LT(below, 0.02);
    EXPECT_GT(above, 0.98);
  }
  // Larger K concentrates more.
  const double spread = above - below;
  EXPECT_GT(spread, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ErlangConvergenceTest,
                         ::testing::Values(1, 4, 16, 64, 256));

}  // namespace
}  // namespace kibamrm::markov
