// Tests for the parallel uniformisation backend, the ThreadPool beneath it
// and the batched multi-scenario solve layer.
//
// The two properties the CI sanitizer matrix leans on:
//   1. "parallel" agrees with "uniformization" within 1e-10 on the paper's
//      Fig. 8 KiBaM scenario at every thread count, and
//   2. results are *bitwise* identical across thread counts (the gather
//      kernel sums each output entry in fixed CSR order, so the partition
//      cannot change the arithmetic).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/common/thread_pool.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/engine/parallel_backend.hpp"
#include "kibamrm/engine/scenario_batch.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/workload/onoff_model.hpp"

namespace kibamrm::engine {
namespace {

// The Fig. 8 scenario: on/off workload over the full two-well KiBaM.
core::KibamRmModel fig8_kibam() {
  return core::KibamRmModel(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t index, std::size_t lane) {
    ASSERT_LT(lane, pool.thread_count());
    hits[index].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyDispatches) {
  // The spmv loop dispatches tens of thousands of tiny jobs; the pool must
  // neither deadlock nor leak across them.
  common::ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 500; ++round) {
    pool.parallel_for(7, [&](std::size_t, std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 500u * 7u);
}

TEST(ThreadPool, AutoDetectsAtLeastOneLane) {
  common::ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<int> runs{0};
  pool.parallel_for(5, [&](std::size_t, std::size_t) { ++runs; });
  EXPECT_EQ(runs.load(), 5);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  for (const std::size_t lanes : {1u, 3u}) {
    common::ThreadPool pool(lanes);
    EXPECT_THROW(
        pool.parallel_for(16,
                          [&](std::size_t index, std::size_t) {
                            if (index == 11) {
                              throw std::runtime_error("boom");
                            }
                          }),
        std::runtime_error);
    // And the pool still works afterwards.
    std::atomic<int> runs{0};
    pool.parallel_for(4, [&](std::size_t, std::size_t) { ++runs; });
    EXPECT_EQ(runs.load(), 4);
  }
}

TEST(ParallelBackend, RegisteredByName) {
  EXPECT_TRUE(is_backend_name("parallel"));
  EXPECT_EQ(make_backend("parallel")->name(), "parallel");
}

TEST(ParallelBackend, MatchesUniformizationOnFig8AtEveryThreadCount) {
  // The acceptance scenario: full-curve agreement within 1e-10 against the
  // serial production engine at 1, 2 and 8 threads.
  const auto times = core::uniform_grid(6000.0, 20000.0, 15);
  core::MarkovianApproximation reference(
      fig8_kibam(), {.delta = 300.0, .engine = "uniformization"});
  const core::LifetimeCurve expected = reference.solve(times);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    core::MarkovianApproximation solver(
        fig8_kibam(),
        {.delta = 300.0, .engine = "parallel", .threads = threads});
    const core::LifetimeCurve curve = solver.solve(times);
    EXPECT_LT(curve.max_difference(expected), 1e-10)
        << "threads = " << threads;
    EXPECT_EQ(solver.last_stats().uniformization_iterations,
              reference.last_stats().uniformization_iterations)
        << "same Fox-Glynn windows, same DTMC step count";
  }
}

TEST(ParallelBackend, FullDistributionsMatchSerialBackend) {
  // Delta = 50 puts the chain (~10k states, ~40k nonzeros) above the
  // backend's inline threshold, so this exercises the sharded pool path.
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 50.0);
  const std::vector<double> times = {12000.0};
  auto serial = make_backend("uniformization");
  const auto expected =
      serial->solve(expanded.chain, expanded.initial, times);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    auto backend = make_backend("parallel", {.threads = threads});
    const auto actual =
        backend->solve(expanded.chain, expanded.initial, times);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t k = 0; k < times.size(); ++k) {
      EXPECT_LT(linalg::linf_distance(actual[k], expected[k]), 1e-10)
          << "threads = " << threads << ", t = " << times[k];
    }
    EXPECT_EQ(backend->last_stats().time_points, times.size());
    EXPECT_GT(backend->last_stats().iterations, 0u);
    EXPECT_GT(backend->last_stats().uniformization_rate, 0.0);
  }
}

TEST(ParallelBackend, BitwiseDeterministicAcrossThreadCounts) {
  // Above the inline threshold: the shard partition differs per thread
  // count, the arithmetic must not.  This covers the fused kernel
  // (compressed gather plan + steady-state detection), whose per-shard
  // deltas reduce by max, so even the termination decision is
  // partition-independent.
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 50.0);
  const std::vector<double> times = {10000.0};
  auto one = make_backend("parallel", {.threads = 1});
  const auto baseline = one->solve(expanded.chain, expanded.initial, times);
  const std::uint64_t baseline_iterations = one->last_stats().iterations;
  for (const std::size_t threads : {2u, 5u, 8u}) {
    auto backend = make_backend("parallel", {.threads = threads});
    const auto result =
        backend->solve(expanded.chain, expanded.initial, times);
    // Bitwise equality, not a tolerance: the gather kernel's summation
    // order is independent of the shard partition.
    EXPECT_EQ(result, baseline) << "threads = " << threads;
    EXPECT_EQ(backend->last_stats().iterations, baseline_iterations)
        << "early termination must fire at the same step";
  }
}

TEST(ParallelBackend, DetectionOnOffAgreeOnFig8Curve) {
  // The acceptance property of the early-termination optimisation: the
  // full Fig. 8 lifetime curve with detection on agrees with detection
  // off within 10 * epsilon, while actually skipping iterations.
  // Delta = 50 is the coarsest fig8 grid whose curve saturates inside the
  // horizon (coarser chains still carry ~1e-4 active mass at t = 20000,
  // where detection correctly refuses to fire).
  const auto times = core::uniform_grid(6000.0, 20000.0, 12);
  core::MarkovianApproximation on(
      fig8_kibam(), {.delta = 50.0, .engine = "parallel", .threads = 4});
  core::MarkovianApproximation off(fig8_kibam(),
                                   {.delta = 50.0,
                                    .engine = "parallel",
                                    .threads = 4,
                                    .steady_state_detection = false});
  const core::LifetimeCurve curve_on = on.solve(times);
  const core::LifetimeCurve curve_off = off.solve(times);
  EXPECT_LT(curve_on.max_difference(curve_off), 10.0 * 1e-10);
  EXPECT_GT(on.last_stats().iterations_saved, 0u);
  // Closed accounting: skipped terms + executed terms == the full window
  // cost the detection-off run paid.
  EXPECT_EQ(on.last_stats().uniformization_iterations +
                on.last_stats().iterations_saved,
            off.last_stats().uniformization_iterations);
}

TEST(ParallelBackend, FusedMatchesUnfusedPath) {
  // The fused compacted kernel against the pre-fusion gather + axpy loop.
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 50.0);
  const std::vector<double> times = {8000.0, 14000.0};
  auto fused = make_backend("parallel", {.threads = 4});
  auto unfused = make_backend(
      "parallel",
      {.threads = 4, .fused_kernels = false, .steady_state_detection = false});
  const auto a = fused->solve(expanded.chain, expanded.initial, times);
  const auto b = unfused->solve(expanded.chain, expanded.initial, times);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_LT(linalg::linf_distance(a[k], b[k]), 1e-10) << "t=" << times[k];
  }
  // The fused loop iterates only the reachable closure.
  EXPECT_GT(fused->last_stats().active_states, 0u);
  EXPECT_LT(fused->last_stats().active_states, expanded.initial.size());
  EXPECT_EQ(unfused->last_stats().active_states, expanded.initial.size());
}

TEST(ScenarioBatch, MatchesSequentialSolvesAndThreadCountInvariant) {
  const auto times = core::uniform_grid(6000.0, 20000.0, 8);
  std::vector<Scenario> scenarios;
  for (const double delta : {450.0, 300.0, 900.0}) {
    scenarios.push_back({"Delta=" + std::to_string(delta), fig8_kibam(),
                         delta, times});
  }

  std::vector<std::vector<double>> reference;
  for (const Scenario& scenario : scenarios) {
    core::MarkovianApproximation solver(
        scenario.model, {.delta = scenario.delta, .engine = "uniformization"});
    reference.push_back(solver.solve(times).probabilities());
  }

  for (const std::size_t threads : {1u, 3u}) {
    ScenarioBatch batch({.engine = "uniformization", .threads = threads});
    const auto results = batch.solve_all(scenarios);
    ASSERT_EQ(results.size(), scenarios.size());
    EXPECT_EQ(batch.last_stats().scenarios, scenarios.size());
    EXPECT_EQ(batch.last_stats().skipped, 0u);
    EXPECT_EQ(batch.last_stats().threads, threads);
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_FALSE(results[i].skipped);
      ASSERT_TRUE(results[i].curve.has_value());
      EXPECT_EQ(results[i].label, scenarios[i].label) << "positional order";
      // Determinism across thread counts is bitwise: same chains, same
      // engine arithmetic, results only land in different lanes.
      EXPECT_EQ(results[i].curve->probabilities(), reference[i])
          << "threads = " << threads << ", scenario " << i;
      EXPECT_GT(results[i].stats.expanded_states, 0u);
      EXPECT_GT(results[i].stats.uniformization_iterations, 0u);
    }
  }
}

TEST(ScenarioBatch, SkipsUnsupportedChainsWithoutAborting) {
  const auto times = core::uniform_grid(6000.0, 20000.0, 5);
  // Delta = 450 fits under the dense limit below, Delta = 100 does not.
  std::vector<Scenario> scenarios = {
      {"coarse", fig8_kibam(), 450.0, times},
      {"fine", fig8_kibam(), 100.0, times},
  };
  ScenarioBatch batch({.engine = "dense", .dense_state_limit = 200,
                       .threads = 2});
  const auto results = batch.solve_all(scenarios);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].curve.has_value());
  EXPECT_TRUE(results[1].skipped);
  EXPECT_FALSE(results[1].skip_reason.empty());
  EXPECT_EQ(batch.last_stats().skipped, 1u);
}

TEST(ScenarioBatch, IsolatesANumericalFailureToItsScenario) {
  // One poisoned scenario (a 1e11 Hz workload the explicit stepper
  // instantly underflows on) must not abort the batch: every other
  // scenario still returns its curve, and the failure is recorded in
  // place.  Before the `failed` flag, the NumericalError propagated out
  // of solve_all() and discarded all completed results.
  const auto times = core::uniform_grid(6000.0, 20000.0, 5);
  const core::KibamRmModel poisoned(
      workload::make_onoff_model({.frequency = 1e11, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
  std::vector<Scenario> scenarios = {
      {"mild-a", fig8_kibam(), 450.0, times},
      {"poisoned", poisoned, 450.0, times},
      {"mild-b", fig8_kibam(), 300.0, times},
  };
  ScenarioBatch batch({.engine = "adaptive", .threads = 2});
  const auto results = batch.solve_all(scenarios);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].curve.has_value());
  EXPECT_TRUE(results[2].curve.has_value());
  EXPECT_FALSE(results[0].failed);
  EXPECT_FALSE(results[2].failed);
  EXPECT_TRUE(results[1].failed);
  EXPECT_FALSE(results[1].curve.has_value());
  EXPECT_FALSE(results[1].skipped) << "failure is not a by-design skip";
  EXPECT_NE(results[1].failure_reason.find("step size underflow"),
            std::string::npos)
      << results[1].failure_reason;
  EXPECT_EQ(batch.last_stats().failed, 1u);
  EXPECT_EQ(batch.last_stats().skipped, 0u);
}

TEST(ScenarioBatch, RejectsUnknownEngineUpFront) {
  EXPECT_THROW(ScenarioBatch({.engine = "not-an-engine"}), InvalidArgument);
}

TEST(ScenarioBatch, EmptyBatchIsANoOp) {
  ScenarioBatch batch({.threads = 2});
  EXPECT_TRUE(batch.solve_all({}).empty());
  EXPECT_EQ(batch.last_stats().scenarios, 0u);
}

}  // namespace
}  // namespace kibamrm::engine
