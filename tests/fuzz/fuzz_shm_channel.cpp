// libFuzzer target for the shared-memory frame codec of the sharded
// backend (common/shm_channel).
//
// decode_shm_frame is the single validation path every cross-process
// frame funnels through: the coordinator and its forked workers trust
// the decoded type/payload to drive band offsets and kernel inputs, so
// a frame a crashed or hostile peer left half-written must surface as
// kibamrm::IpcError -- never as an oversized allocation, an out-of-range
// read, or an unwrapped std exception.  The target drives three
// surfaces: raw decode of the input, decode of the remainder after a
// valid prefix (framing resynchronisation), and an encode round trip of
// input-derived payloads (the codec's own output must always decode to
// the same bytes).  Built with -DKIBAMRM_FUZZ=ON (clang) this is a
// libFuzzer binary; otherwise a standalone driver replaying corpus
// files under ctest on gcc-only machines.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/common/shm_channel.hpp"

namespace {

void exercise(const std::uint8_t* data, std::size_t size) {
  namespace kc = kibamrm::common;
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(data), size);

  // 1. Raw decode: arbitrary byte soup either yields one well-formed
  //    frame (consuming header + payload) or throws IpcError.
  kc::ShmFrame frame;
  try {
    const std::size_t consumed = kc::decode_shm_frame(bytes, frame);
    // A successful decode must have consumed a sane amount and -- the
    // framing contract -- the remainder must decode independently.
    if (consumed < kc::kShmFrameHeaderBytes || consumed > size) {
      std::fprintf(stderr, "fuzz_shm_channel: bogus consumed %zu of %zu\n",
                    consumed, size);
      __builtin_trap();
    }
    try {
      kc::decode_shm_frame(bytes.subspan(consumed), frame);
    } catch (const kibamrm::Error&) {
    }
  } catch (const kibamrm::Error&) {
    // Rejection is the expected outcome for most inputs.
  }

  // 2. Encode round trip: the input reinterpreted as (type, payload)
  //    must encode to a buffer that decodes back to identical bytes.
  std::uint32_t type = 1;
  if (size >= sizeof(type)) std::memcpy(&type, data, sizeof(type));
  const std::span<const std::byte> payload =
      bytes.subspan(size >= sizeof(type) ? sizeof(type) : 0);
  std::vector<std::byte> encoded;
  kc::encode_shm_frame(type, payload, encoded);
  kc::ShmFrame decoded;
  const std::size_t consumed = kc::decode_shm_frame(encoded, decoded);
  if (consumed != encoded.size() || decoded.type != type ||
      decoded.payload.size() != payload.size() ||
      (!payload.empty() &&
       std::memcmp(decoded.payload.data(), payload.data(),
                   payload.size()) != 0)) {
    std::fprintf(stderr, "fuzz_shm_channel: round trip mismatch\n");
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  exercise(data, size);
  return 0;
}

#ifdef KIBAMRM_FUZZ_STANDALONE
#include <fstream>
#include <iterator>
#include <string>

// Corpus replay driver: each argument is a file of fuzz input.
int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i], std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "fuzz_shm_channel: cannot open %s\n", argv[i]);
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(file)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::printf("fuzz_shm_channel: replayed %d corpus file(s)\n", replayed);
  return 0;
}
#endif
