// libFuzzer target for the TileStore spill-format deserialization
// surface.
//
// The spill file is process-local scratch, but the ooc backend trusts
// its header, tile index and slab framing to drive buffer sizes and
// kernel offsets.  The contract under test: an arbitrary byte soup
// presented as a spill file either opens and streams cleanly or raises
// kibamrm::Error from open()/read_tile() validation -- never an
// unwrapped std exception, never a kernel dereferencing a damaged
// offset.  Built with -DKIBAMRM_FUZZ=ON (clang) this is a libFuzzer
// binary; otherwise a standalone driver that replays corpus files passed
// as arguments, so the same translation unit runs under ctest on
// gcc-only machines.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/common/spill_io.hpp"
#include "kibamrm/linalg/tile_store.hpp"

namespace {

// A fuzz input is a few KB; any index claiming dimensions past these is
// hostile by construction and only interesting for whether validation
// rejects it, not for running the kernel over giant buffers.
constexpr std::size_t kMaxRows = std::size_t{1} << 16;
constexpr std::size_t kMaxSlabBytes = std::size_t{1} << 22;
constexpr std::size_t kMaxTilesExercised = 64;

const std::string& scratch_path() {
  static const std::string path = kibamrm::common::unique_spill_path(
      kibamrm::common::resolve_spill_dir(""), "kibamrm-fuzz-tile");
  return path;
}

/// Presents the input as a spill file and drives the full read surface:
/// open -> per-tile read (checksum + structural validation) -> fused
/// kernel -> range balancing.
void exercise(const std::uint8_t* data, std::size_t size) {
  const std::string& path = scratch_path();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }

  try {
    kibamrm::linalg::TileStore store =
        kibamrm::linalg::TileStore::open(path, {});
    if (store.rows() == 0 || store.rows() > kMaxRows ||
        store.max_slab_bytes() > kMaxSlabBytes) {
      std::remove(path.c_str());
      return;
    }
    std::vector<double> x(store.rows(), 1.0);
    std::vector<double> out(store.rows(), 0.0);
    std::vector<double> accum(store.rows(), 0.0);
    kibamrm::common::AlignedBuffer slab;
    const std::size_t tiles =
        std::min(store.tile_count(), kMaxTilesExercised);
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      store.prefetch_tile(tile);
      store.read_tile(tile, slab);
      const std::size_t local_rows =
          store.tile_row_end(tile) - store.tile_row_begin(tile);
      store.multiply_fused_tile(tile, slab, x, out, accum, 0.5, 0,
                                local_rows);
      store.balanced_tile_ranges(tile, slab, 4);
    }
  } catch (const kibamrm::Error&) {
    // Rejection is the expected outcome for most inputs.
  }
  std::remove(path.c_str());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  exercise(data, size);
  return 0;
}

#ifdef KIBAMRM_FUZZ_STANDALONE
#include <iterator>

// Corpus replay driver: each argument is a file of fuzz input.
int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i], std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "fuzz_tile_store: cannot open %s\n", argv[i]);
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(file)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::printf("fuzz_tile_store: replayed %d corpus file(s)\n", replayed);
  return 0;
}
#endif
