// libFuzzer target for the CLI-argument surface.
//
// Every bench/example binary funnels argv through common::CliArgs and the
// small string parsers behind --reorder / --kernels / KIBAMRM_PROP_SEED.
// The contract: any byte soup either parses or raises kibamrm::Error --
// never an unwrapped std exception, never UB.  Built with
// -DKIBAMRM_FUZZ=ON (clang) this is a libFuzzer binary; otherwise a
// standalone driver that replays corpus files passed as arguments, so the
// same translation unit runs under ctest on gcc-only machines.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "kibamrm/common/cli.hpp"
#include "kibamrm/common/error.hpp"
#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/linalg/kernels.hpp"

namespace {

/// Splits the fuzz input on whitespace/NUL into an argv-shaped token list.
std::vector<std::string> tokenize(const std::uint8_t* data,
                                  std::size_t size) {
  std::vector<std::string> tokens;
  std::string current;
  for (std::size_t i = 0; i < size; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\0') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

/// Drives every accessor a real bench binary uses against one parse.
void exercise(const std::vector<std::string>& tokens) {
  std::vector<const char*> argv = {"fuzz_cli"};
  for (const std::string& token : tokens) argv.push_back(token.c_str());

  try {
    kibamrm::common::CliArgs args(static_cast<int>(argv.size()),
                                  argv.data());
    args.get_double("delta", 400.0);
    args.get_int("points", 8);
    args.get_positive_int("runs", 1);
    args.get_nonnegative_int("threads", 0);
    args.get_double_list("delta", {400.0});
    args.get("out", "");
    args.has("batch");
    args.get_choice("engine", "uniformization",
                    {"uniformization", "parallel", "adaptive", "dense",
                     "krylov"});
    args.get_choice("reorder", "none", {"none", "level", "rcm"});
    args.declare("delta")
        .declare("points")
        .declare("runs")
        .declare("threads")
        .declare("out")
        .declare("batch")
        .declare("engine")
        .declare("reorder");
    args.validate();
  } catch (const kibamrm::Error&) {
    // Rejection is the expected outcome for most inputs.
  }

  // The two string parsers the CLI layer feeds user text into.
  if (!tokens.empty()) {
    try {
      kibamrm::linalg::kernels::parse_dispatch(tokens.front());
    } catch (const kibamrm::Error&) {
    }
    try {
      kibamrm::core::parse_state_ordering(tokens.front());
    } catch (const kibamrm::Error&) {
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  exercise(tokenize(data, size));
  return 0;
}

#ifdef KIBAMRM_FUZZ_STANDALONE
#include <cstdio>
#include <fstream>
#include <iterator>

// Corpus replay driver: each argument is a file of fuzz input.
int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i], std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "fuzz_cli: cannot open %s\n", argv[i]);
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(file)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::printf("fuzz_cli: replayed %d corpus file(s)\n", replayed);
  return 0;
}
#endif
