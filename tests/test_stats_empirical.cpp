// Tests for stats/empirical.
#include <gtest/gtest.h>

#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/common/random.hpp"
#include "kibamrm/stats/empirical.hpp"

namespace kibamrm::stats {
namespace {

TEST(Empirical, CdfStepsAtSamples) {
  const EmpiricalDistribution dist({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(dist.cdf(0.5), 0.0);
  EXPECT_NEAR(dist.cdf(1.0), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(dist.cdf(1.5), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(dist.cdf(2.0), 2.0 / 3.0, 1e-15);
  EXPECT_DOUBLE_EQ(dist.cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.cdf(99.0), 1.0);
}

TEST(Empirical, SamplesSortedAndExtremes) {
  const EmpiricalDistribution dist({5.0, -1.0, 2.0});
  EXPECT_DOUBLE_EQ(dist.min(), -1.0);
  EXPECT_DOUBLE_EQ(dist.max(), 5.0);
  EXPECT_TRUE(std::is_sorted(dist.sorted_samples().begin(),
                             dist.sorted_samples().end()));
}

TEST(Empirical, MomentsMatchHandComputation) {
  const EmpiricalDistribution dist({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(dist.mean(), 2.5);
  EXPECT_NEAR(dist.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(dist.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Empirical, SingleSampleDegenerate) {
  const EmpiricalDistribution dist({7.0});
  EXPECT_DOUBLE_EQ(dist.mean(), 7.0);
  EXPECT_DOUBLE_EQ(dist.variance(), 0.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.3), 7.0);
}

TEST(Empirical, EmptyRejected) {
  EXPECT_THROW(EmpiricalDistribution({}), InvalidArgument);
}

TEST(Empirical, QuantileInterpolates) {
  const EmpiricalDistribution dist({0.0, 10.0});
  EXPECT_DOUBLE_EQ(dist.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(dist.quantile(1.0), 10.0);
  EXPECT_THROW(dist.quantile(1.5), InvalidArgument);
}

TEST(Empirical, MedianOfUniformSamplesNearHalf) {
  common::RandomStream rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.uniform());
  const EmpiricalDistribution dist(std::move(samples));
  EXPECT_NEAR(dist.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(dist.mean(), 0.5, 0.01);
  EXPECT_NEAR(dist.variance(), 1.0 / 12.0, 0.005);
}

TEST(Empirical, ConfidenceIntervalShrinksWithSamples) {
  common::RandomStream rng(6);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 100; ++i) small.push_back(rng.exponential(1.0));
  for (int i = 0; i < 10000; ++i) large.push_back(rng.exponential(1.0));
  const double hw_small = EmpiricalDistribution(small).mean_ci_halfwidth();
  const double hw_large = EmpiricalDistribution(large).mean_ci_halfwidth();
  EXPECT_GT(hw_small, hw_large);
  // ~ z * sigma / sqrt(n) with sigma = 1: 1.96/sqrt(10000) ~ 0.0196.
  EXPECT_NEAR(hw_large, 0.0196, 0.004);
}

TEST(Empirical, ConfidenceLevelOrdering) {
  common::RandomStream rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.uniform());
  const EmpiricalDistribution dist(std::move(samples));
  EXPECT_LT(dist.mean_ci_halfwidth(0.90), dist.mean_ci_halfwidth(0.95));
  EXPECT_LT(dist.mean_ci_halfwidth(0.95), dist.mean_ci_halfwidth(0.99));
  EXPECT_THROW(dist.mean_ci_halfwidth(1.0), InvalidArgument);
}

TEST(Empirical, KsDistanceIdenticalIsZero) {
  const EmpiricalDistribution a({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ks_distance(a, a), 0.0);
}

TEST(Empirical, KsDistanceDisjointIsOne) {
  const EmpiricalDistribution a({1.0, 2.0});
  const EmpiricalDistribution b({10.0, 20.0});
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
}

TEST(Empirical, KsDistanceSameDistributionSmall) {
  common::RandomStream rng(8);
  std::vector<double> s1;
  std::vector<double> s2;
  for (int i = 0; i < 5000; ++i) s1.push_back(rng.exponential(2.0));
  for (int i = 0; i < 5000; ++i) s2.push_back(rng.exponential(2.0));
  EXPECT_LT(ks_distance(EmpiricalDistribution(s1), EmpiricalDistribution(s2)),
            0.05);
}

TEST(Empirical, KsDistanceToCdfGrid) {
  const EmpiricalDistribution a({1.0, 2.0, 3.0, 4.0});
  // Perfect grid CDF matching the ECDF at the grid points.
  const std::vector<double> grid = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> cdf = {0.25, 0.5, 0.75, 1.0};
  EXPECT_DOUBLE_EQ(ks_distance_to_cdf(a, grid, cdf), 0.0);
  const std::vector<double> off = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(ks_distance_to_cdf(a, grid, off), 0.5);
  EXPECT_THROW(ks_distance_to_cdf(a, grid, {0.1}), InvalidArgument);
}

}  // namespace
}  // namespace kibamrm::stats
