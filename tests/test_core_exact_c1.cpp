// Tests for the exact transform solver (substitute for [25], c = 1 case).
#include <gtest/gtest.h>

#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/exact_c1.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/markov/phase_type.hpp"
#include "kibamrm/workload/onoff_model.hpp"
#include "kibamrm/workload/simple_model.hpp"

namespace kibamrm::core {
namespace {

TEST(ExactC1, RejectsTwoWellModels) {
  const KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
  EXPECT_THROW(ExactC1Solver solver(model), InvalidArgument);
}

TEST(ExactC1, SingleAlwaysOnStateIsStepFunction) {
  // One state drawing I = 2: the battery empties at exactly C/I = 50.
  workload::WorkloadBuilder builder;
  builder.add_state("on", 2.0);
  builder.set_initial_state(0);
  const KibamRmModel model(builder.build(),
                           {.capacity = 100.0, .available_fraction = 1.0,
                            .flow_constant = 0.0});
  const ExactC1Solver solver(model);
  EXPECT_NEAR(solver.empty_probability(45.0), 0.0, 1e-6);
  EXPECT_NEAR(solver.empty_probability(55.0), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(solver.empty_probability(0.0), 0.0);
}

TEST(ExactC1, TwoStateMatchesErlangOnTimeArgument) {
  // on/off with rate 1 each, I = 1, C = 60: the battery is empty at t iff
  // the accumulated on-time reaches 60.  For t slightly above 60 the
  // probability is tiny; for t >> 2 * 60 it approaches 1.
  workload::WorkloadBuilder builder;
  const std::size_t on = builder.add_state("on", 1.0);
  const std::size_t off = builder.add_state("off", 0.0);
  builder.add_transition(on, off, 1.0);
  builder.add_transition(off, on, 1.0);
  builder.set_initial_state(on);
  const KibamRmModel model(builder.build(),
                           {.capacity = 60.0, .available_fraction = 1.0,
                            .flow_constant = 0.0});
  const ExactC1Solver solver(model);
  EXPECT_NEAR(solver.empty_probability(60.0), 0.0, 1e-5);
  EXPECT_GT(solver.empty_probability(125.0), 0.3);
  EXPECT_LT(solver.empty_probability(125.0), 0.7);
  EXPECT_NEAR(solver.empty_probability(300.0), 1.0, 1e-4);
}

TEST(ExactC1, MatchesMonteCarloOnSimpleModel) {
  // Fig. 10's rightmost curve setting: C = 800 mAh, c = 1.
  const KibamRmModel model(workload::make_simple_model(),
                           {.capacity = 800.0, .available_fraction = 1.0,
                            .flow_constant = 0.0});
  const auto times = uniform_grid(5.0, 30.0, 26);
  const ExactC1Solver solver(model);
  const LifetimeCurve exact = solver.solve(times);
  MonteCarloSimulator sim(model, {.replications = 4000, .seed = 17});
  const LifetimeCurve mc = sim.empty_probability_curve(times);
  // MC noise bound: KS ~ 1.36/sqrt(4000) ~ 0.022 at 95%; allow head-room.
  EXPECT_LT(exact.max_difference(mc), 0.05);
}

TEST(ExactC1, MatchesFineApproximationOnSimpleModel) {
  const KibamRmModel model(workload::make_simple_model(),
                           {.capacity = 800.0, .available_fraction = 1.0,
                            .flow_constant = 0.0});
  const auto times = uniform_grid(5.0, 30.0, 26);
  const LifetimeCurve exact = ExactC1Solver(model).solve(times);
  MarkovianApproximation approx(model, {.delta = 0.5});
  const LifetimeCurve approximate = approx.solve(times);
  EXPECT_LT(approximate.max_difference(exact), 0.02);
}

TEST(ExactC1, CurveMonotoneOverLongHorizon) {
  const KibamRmModel model(workload::make_simple_model(),
                           {.capacity = 800.0, .available_fraction = 1.0,
                            .flow_constant = 0.0});
  const ExactC1Solver solver(model);
  double prev = 0.0;
  for (double t = 4.0; t <= 40.0; t += 0.5) {
    const double p = solver.empty_probability(t);
    EXPECT_GE(p, prev - 1e-8) << "t=" << t;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(ExactC1, MeanLifetimeMatchesEnergyBalanceLowerBound) {
  // Consumed power in steady state is 54 mA (test_workload_models); the
  // lifetime mean must land near C / 54 ~ 14.8 h (not exact because the
  // initial state is idle, but within a few percent).
  const KibamRmModel model(workload::make_simple_model(),
                           {.capacity = 800.0, .available_fraction = 1.0,
                            .flow_constant = 0.0});
  const auto times = uniform_grid(1.0, 60.0, 118);
  const LifetimeCurve curve = ExactC1Solver(model).solve(times);
  EXPECT_TRUE(curve.complete(1e-2));
  EXPECT_NEAR(curve.mean_estimate(), 800.0 / 54.0, 0.8);
}

TEST(ExactC1, ErlangOnTimeCrossCheck) {
  // Deterministic-ish validation through an independent formula: with the
  // on/off chain symmetric at rate r and capacity C, Pr{empty at t} equals
  // Pr{on-time(t) >= C/I}.  For r*t large, on-time is approximately
  // N(t/2, t/(4r)); check one point at 2 sigma.
  workload::WorkloadBuilder builder;
  const std::size_t on = builder.add_state("on", 1.0);
  const std::size_t off = builder.add_state("off", 0.0);
  const double r = 4.0;
  builder.add_transition(on, off, r);
  builder.add_transition(off, on, r);
  builder.set_initial_state(on);
  const double capacity = 100.0;
  const KibamRmModel model(builder.build(),
                           {.capacity = capacity, .available_fraction = 1.0,
                            .flow_constant = 0.0});
  const ExactC1Solver solver(model);
  const double t = 220.0;  // on-time mean 110, sd sqrt(220/16) ~ 3.7
  const double z = (110.0 - capacity) / std::sqrt(t / (4.0 * r));
  const double normal_tail = 0.5 * std::erfc(-z / std::sqrt(2.0));
  EXPECT_NEAR(solver.empty_probability(t), normal_tail, 0.03);
}

TEST(ExactC1, OptionValidation) {
  workload::WorkloadBuilder builder;
  builder.add_state("on", 1.0);
  builder.set_initial_state(0);
  const KibamRmModel model(builder.build(),
                           {.capacity = 10.0, .available_fraction = 1.0,
                            .flow_constant = 0.0});
  EXPECT_THROW(ExactC1Solver(model, {.terms = 0}), InvalidArgument);
  ExactC1Solver solver(model);
  EXPECT_THROW(solver.empty_probability(-1.0), InvalidArgument);
}

}  // namespace
}  // namespace kibamrm::core
