// Tests for the Fox-Glynn Poisson windows and Poisson helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/markov/fox_glynn.hpp"

namespace kibamrm::markov {
namespace {

TEST(PoissonPmf, SmallLambdaExactValues) {
  EXPECT_NEAR(poisson_pmf(1.0, 0), std::exp(-1.0), 1e-15);
  EXPECT_NEAR(poisson_pmf(1.0, 1), std::exp(-1.0), 1e-15);
  EXPECT_NEAR(poisson_pmf(2.0, 2), 2.0 * std::exp(-2.0), 1e-15);
}

TEST(PoissonPmf, ZeroLambdaDegenerate) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(0.0, 3), 0.0);
}

TEST(PoissonPmf, LargeLambdaNoOverflow) {
  // Mode weight ~ 1/sqrt(2 pi lambda).
  const double lambda = 50000.0;
  const double w = poisson_pmf(lambda, 50000);
  EXPECT_NEAR(w, 1.0 / std::sqrt(2.0 * M_PI * lambda), 1e-6);
}

TEST(FoxGlynn, DegenerateAtZeroLambda) {
  const PoissonWindow window = fox_glynn(0.0, 1e-10);
  EXPECT_EQ(window.left, 0u);
  EXPECT_EQ(window.right, 0u);
  EXPECT_DOUBLE_EQ(window.weight(0), 1.0);
}

TEST(FoxGlynn, RejectsBadArguments) {
  EXPECT_THROW(fox_glynn(-1.0, 1e-10), InvalidArgument);
  EXPECT_THROW(fox_glynn(1.0, 0.0), InvalidArgument);
  EXPECT_THROW(fox_glynn(1.0, 1.5), InvalidArgument);
}

class FoxGlynnLambdaTest : public ::testing::TestWithParam<double> {};

TEST_P(FoxGlynnLambdaTest, WeightsSumToOne) {
  const PoissonWindow window = fox_glynn(GetParam(), 1e-12);
  double total = 0.0;
  for (double w : window.weights) total += w;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_P(FoxGlynnLambdaTest, WeightsMatchPmf) {
  const double lambda = GetParam();
  const PoissonWindow window = fox_glynn(lambda, 1e-12);
  // Compare a handful of in-window points against the log-space pmf.
  for (std::uint64_t n = window.left; n <= window.right;
       n += 1 + (window.right - window.left) / 7) {
    EXPECT_NEAR(window.weight(n), poisson_pmf(lambda, n),
                1e-9 * poisson_pmf(lambda, n) + 1e-300)
        << "lambda=" << lambda << " n=" << n;
  }
}

TEST_P(FoxGlynnLambdaTest, WindowCoversMode) {
  const double lambda = GetParam();
  const PoissonWindow window = fox_glynn(lambda, 1e-12);
  const auto mode = static_cast<std::uint64_t>(std::floor(lambda));
  EXPECT_LE(window.left, mode);
  EXPECT_GE(window.right, mode);
}

TEST_P(FoxGlynnLambdaTest, DroppedTailsAreSmall) {
  const double lambda = GetParam();
  const PoissonWindow window = fox_glynn(lambda, 1e-12);
  // The pmf just outside the window must be below the per-side budget.
  if (window.left > 0) {
    EXPECT_LT(poisson_pmf(lambda, window.left - 1), 1e-11);
  }
  EXPECT_LT(poisson_pmf(lambda, window.right + 1), 1e-11);
}

TEST_P(FoxGlynnLambdaTest, WindowWidthScalesLikeSqrtLambda) {
  const double lambda = GetParam();
  if (lambda < 10.0) return;
  const PoissonWindow window = fox_glynn(lambda, 1e-12);
  const double width = static_cast<double>(window.right - window.left);
  EXPECT_LT(width, 60.0 * std::sqrt(lambda) + 60.0);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, FoxGlynnLambdaTest,
                         ::testing::Values(0.01, 0.5, 1.0, 5.0, 25.0, 100.0,
                                           1000.0, 46000.0, 300000.0));

TEST(FoxGlynn, WeightOutsideWindowIsZero) {
  const PoissonWindow window = fox_glynn(100.0, 1e-12);
  EXPECT_DOUBLE_EQ(window.weight(window.left == 0 ? window.right + 1
                                                  : window.left - 1),
                   0.0);
  EXPECT_DOUBLE_EQ(window.weight(window.right + 1), 0.0);
}

TEST(PoissonTail, MatchesDirectSummation) {
  const double lambda = 7.5;
  for (std::uint64_t n : {0ULL, 1ULL, 5ULL, 8ULL, 15ULL}) {
    double direct = 0.0;
    for (std::uint64_t m = 0; m < n; ++m) direct += poisson_pmf(lambda, m);
    EXPECT_NEAR(poisson_tail(lambda, n), 1.0 - direct, 1e-12) << "n=" << n;
  }
}

TEST(PoissonTail, EdgeCases) {
  EXPECT_DOUBLE_EQ(poisson_tail(5.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_tail(0.0, 1), 0.0);
  // Far tails saturate.
  EXPECT_NEAR(poisson_tail(10.0, 1), 1.0, 1e-4);
  EXPECT_NEAR(poisson_tail(10.0, 100), 0.0, 1e-12);
}

TEST(PoissonTail, MedianOfLargeLambdaNearHalf) {
  // Pr{N >= lambda} ~ 1/2 for large lambda.
  EXPECT_NEAR(poisson_tail(10000.0, 10000), 0.5, 0.01);
}

TEST(UniformizationPlan, CachesIdenticalLookups) {
  UniformizationPlan plan;
  const auto first = plan.window(120.0, 1e-10);
  const auto again = plan.window(120.0, 1e-10);
  EXPECT_EQ(first.get(), again.get());  // same cached entry, no recompute
  EXPECT_EQ(plan.windows_computed(), 1u);
  EXPECT_EQ(plan.windows_reused(), 1u);
  EXPECT_EQ(plan.cached_windows(), 1u);
}

TEST(UniformizationPlan, HeldWindowSurvivesEviction) {
  // Regression: window() used to return a reference into the LRU list; a
  // caller holding the window across `capacity` distinct lookups read
  // freed memory once its entry was evicted (ASan: heap-use-after-free).
  // The shared_ptr pins the window through any amount of cache churn.
  UniformizationPlan plan(2);
  const auto held = plan.window(40.0, 1e-10);
  const PoissonWindow expected = fox_glynn(40.0, 1e-10);
  // Fill the cache far past capacity with distinct lambdas.
  for (double lambda = 100.0; lambda < 2000.0; lambda += 100.0) {
    plan.window(lambda, 1e-10);
  }
  EXPECT_EQ(plan.cached_windows(), 2u);  // 40.0 is long gone from the LRU
  ASSERT_EQ(held->weights.size(), expected.weights.size());
  EXPECT_EQ(held->left, expected.left);
  EXPECT_EQ(held->right, expected.right);
  EXPECT_EQ(held->weights, expected.weights);  // reads every held weight
}

TEST(UniformizationPlan, UlpPerturbedLambdaHitsTheCache) {
  // uniform_grid() increments differ in the last few ulps; those must not
  // recompute the window.
  UniformizationPlan plan;
  const double lambda = 1234.5;
  plan.window(lambda, 1e-10);
  plan.window(std::nextafter(lambda, 2000.0), 1e-10);
  plan.window(lambda * (1.0 + 1e-12), 1e-10);
  EXPECT_EQ(plan.windows_computed(), 1u);
  EXPECT_EQ(plan.windows_reused(), 2u);
}

TEST(UniformizationPlan, DistinctKeysComputeSeparately) {
  UniformizationPlan plan;
  plan.window(10.0, 1e-10);
  plan.window(20.0, 1e-10);   // different lambda
  plan.window(10.0, 1e-12);   // different epsilon
  EXPECT_EQ(plan.windows_computed(), 3u);
  EXPECT_EQ(plan.windows_reused(), 0u);
  EXPECT_EQ(plan.cached_windows(), 3u);
}

TEST(UniformizationPlan, EvictsLeastRecentlyUsedAtCapacity) {
  UniformizationPlan plan(2);
  plan.window(1.0, 1e-10);
  plan.window(2.0, 1e-10);
  plan.window(1.0, 1e-10);  // refresh 1.0: now MRU
  plan.window(3.0, 1e-10);  // evicts 2.0
  EXPECT_EQ(plan.cached_windows(), 2u);
  plan.window(2.0, 1e-10);  // recomputed
  EXPECT_EQ(plan.windows_computed(), 4u);
}

TEST(UniformizationPlan, CachedWindowMatchesDirectComputation) {
  UniformizationPlan plan;
  const auto cached = plan.window(500.0, 1e-11);
  const PoissonWindow direct = fox_glynn(500.0, 1e-11);
  EXPECT_EQ(cached->left, direct.left);
  EXPECT_EQ(cached->right, direct.right);
  EXPECT_EQ(cached->weights, direct.weights);
}

TEST(PoissonTail, PerturbedLambdaIsNotServedFromTheCache) {
  // The tail cache matches lambda *exactly*: the transient solvers'
  // 1e-9-relative grid slack would hand a perturbed lambda the cached
  // neighbour's tail, wrong by ~pmf(mode) * dlambda ~ 2e-7 here -- nine
  // decades above the advertised accuracy.
  const double lambda = 1e6;
  const double a = poisson_tail(lambda, 1000000);
  const double b = poisson_tail(lambda * (1.0 + 5e-10), 1000000);
  EXPECT_NE(a, b);
  EXPECT_NEAR(a, b, 1e-6);  // ...while the true tails are this close
}

TEST(PoissonTail, HonoursCallerEpsilon) {
  // A loose window is allowed to be off by ~epsilon, no more; the default
  // stays at the historical 1e-16.
  const double tight = poisson_tail(50.0, 55);
  const double loose = poisson_tail(50.0, 55, 1e-4);
  EXPECT_NEAR(loose, tight, 1e-4);
  EXPECT_NE(loose, tight);  // the window genuinely changed
  EXPECT_DOUBLE_EQ(poisson_tail(50.0, 55, 1e-16), tight);
}

}  // namespace
}  // namespace kibamrm::markov
