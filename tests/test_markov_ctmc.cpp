// Tests for CTMC construction and validation.
#include <gtest/gtest.h>

#include "kibamrm/common/error.hpp"
#include "kibamrm/markov/ctmc.hpp"

namespace kibamrm::markov {
namespace {

linalg::CsrMatrix generator_2x2(double a, double b) {
  linalg::CooBuilder builder(2, 2);
  builder.add(0, 0, -a);
  builder.add(0, 1, a);
  builder.add(1, 0, b);
  builder.add(1, 1, -b);
  return builder.build();
}

TEST(Ctmc, AcceptsValidGenerator) {
  const Ctmc chain(generator_2x2(2.0, 3.0));
  EXPECT_EQ(chain.state_count(), 2u);
  EXPECT_DOUBLE_EQ(chain.exit_rate(0), 2.0);
  EXPECT_DOUBLE_EQ(chain.exit_rate(1), 3.0);
  EXPECT_DOUBLE_EQ(chain.max_exit_rate(), 3.0);
}

TEST(Ctmc, RejectsNonSquare) {
  linalg::CooBuilder builder(2, 3);
  builder.add(0, 0, -1.0);
  builder.add(0, 1, 1.0);
  EXPECT_THROW(Ctmc(builder.build()), ModelError);
}

TEST(Ctmc, RejectsNegativeOffDiagonal) {
  linalg::CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, -1.0);
  EXPECT_THROW(Ctmc(builder.build()), ModelError);
}

TEST(Ctmc, RejectsPositiveDiagonal) {
  linalg::CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, -1.0);
  builder.add(1, 0, 1.0);
  EXPECT_THROW(Ctmc(builder.build()), ModelError);
}

TEST(Ctmc, RejectsNonZeroRowSum) {
  linalg::CooBuilder builder(2, 2);
  builder.add(0, 0, -1.0);
  builder.add(0, 1, 2.0);  // row sums to +1
  EXPECT_THROW(Ctmc(builder.build()), ModelError);
}

TEST(Ctmc, RowSumToleranceIsRelative) {
  // A huge exit rate with relative rounding error must still be accepted.
  linalg::CooBuilder builder(2, 2);
  const double rate = 1e12;
  builder.add(0, 0, -rate);
  builder.add(0, 1, rate * (1.0 + 1e-13));
  builder.add(1, 0, 1.0);
  builder.add(1, 1, -1.0);
  EXPECT_NO_THROW(Ctmc(builder.build()));
}

TEST(Ctmc, AbsorbingStateDetection) {
  linalg::CooBuilder builder(2, 2);
  builder.add(0, 0, -1.0);
  builder.add(0, 1, 1.0);
  const Ctmc chain(builder.build());
  EXPECT_FALSE(chain.is_absorbing(0));
  EXPECT_TRUE(chain.is_absorbing(1));
  EXPECT_DOUBLE_EQ(chain.exit_rate(1), 0.0);
}

TEST(Ctmc, DenseGeneratorCopy) {
  const Ctmc chain(generator_2x2(2.0, 3.0));
  const linalg::DenseReal dense = chain.dense_generator();
  EXPECT_DOUBLE_EQ(dense(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(dense(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(dense(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(dense(1, 1), -3.0);
}

TEST(CtmcFromRates, BuildsDiagonalAutomatically) {
  const Ctmc chain = ctmc_from_rates({{0.0, 1.0, 2.0},
                                      {0.5, 0.0, 0.0},
                                      {0.0, 0.0, 0.0}});
  EXPECT_DOUBLE_EQ(chain.exit_rate(0), 3.0);
  EXPECT_DOUBLE_EQ(chain.exit_rate(1), 0.5);
  EXPECT_TRUE(chain.is_absorbing(2));
}

TEST(CtmcFromRates, RejectsRaggedTable) {
  EXPECT_THROW(ctmc_from_rates({{0.0, 1.0}, {1.0}}), InvalidArgument);
}

TEST(Ctmc, StateOutOfRangeQueriesRejected) {
  const Ctmc chain(generator_2x2(1.0, 1.0));
  EXPECT_THROW(chain.exit_rate(2), InvalidArgument);
  EXPECT_THROW(chain.is_absorbing(5), InvalidArgument);
}

}  // namespace
}  // namespace kibamrm::markov
