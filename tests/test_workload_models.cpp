// Tests for the workload models of Sec. 4.3 and their builders.
#include <gtest/gtest.h>

#include "kibamrm/common/error.hpp"
#include "kibamrm/markov/steady_state.hpp"
#include "kibamrm/workload/burst_model.hpp"
#include "kibamrm/workload/onoff_model.hpp"
#include "kibamrm/workload/simple_model.hpp"
#include "kibamrm/workload/workload_model.hpp"

namespace kibamrm::workload {
namespace {

TEST(WorkloadBuilder, BuildsValidatedModel) {
  WorkloadBuilder builder;
  const std::size_t a = builder.add_state("a", 1.0);
  const std::size_t b = builder.add_state("b", 0.0);
  builder.add_transition(a, b, 2.0);
  builder.add_transition(b, a, 3.0);
  builder.set_initial_state(a);
  const WorkloadModel model = builder.build();
  EXPECT_EQ(model.state_count(), 2u);
  EXPECT_DOUBLE_EQ(model.current(0), 1.0);
  EXPECT_DOUBLE_EQ(model.max_current(), 1.0);
  EXPECT_DOUBLE_EQ(model.initial_distribution()[0], 1.0);
  EXPECT_EQ(model.state_names()[1], "b");
}

TEST(WorkloadBuilder, RejectsInvalidConstruction) {
  WorkloadBuilder builder;
  EXPECT_THROW(builder.build(), InvalidArgument);  // no states
  const std::size_t a = builder.add_state("a", 1.0);
  EXPECT_THROW(builder.add_transition(a, a, 1.0), InvalidArgument);  // loop
  EXPECT_THROW(builder.add_transition(a, 5, 1.0), InvalidArgument);
  EXPECT_THROW(builder.add_transition(a, a + 0, -1.0), InvalidArgument);
  EXPECT_THROW(builder.build(), InvalidArgument);  // no initial state
}

TEST(WorkloadModel, RejectsNegativeCurrents) {
  markov::Ctmc chain = markov::ctmc_from_rates({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_THROW(WorkloadModel(std::move(chain), {-1.0, 0.0}, {1.0, 0.0},
                             {"a", "b"}),
               ModelError);
}

TEST(WorkloadModel, RejectsSizeMismatches) {
  markov::Ctmc chain = markov::ctmc_from_rates({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_THROW(WorkloadModel(std::move(chain), {1.0}, {1.0, 0.0}, {"a", "b"}),
               ModelError);
}

TEST(OnOffModel, StructureAndRates) {
  // f = 1 Hz, K = 1: two states toggling at lambda = 2 f K = 2.
  const WorkloadModel model =
      make_onoff_model({.frequency = 1.0, .erlang_k = 1, .on_current = 0.96});
  EXPECT_EQ(model.state_count(), 2u);
  EXPECT_DOUBLE_EQ(model.current(0), 0.96);
  EXPECT_DOUBLE_EQ(model.current(1), 0.0);
  EXPECT_DOUBLE_EQ(model.chain().exit_rate(0), 2.0);
  EXPECT_DOUBLE_EQ(model.chain().exit_rate(1), 2.0);
  EXPECT_DOUBLE_EQ(model.initial_distribution()[0], 1.0);
}

class OnOffErlangTest : public ::testing::TestWithParam<int> {};

TEST_P(OnOffErlangTest, PhaseRateKeepsFrequency) {
  // Expected on-time is K/(2 f K) = 1/(2f) regardless of K (Sec. 4.3).
  const int k = GetParam();
  const double f = 0.25;
  const WorkloadModel model =
      make_onoff_model({.frequency = f, .erlang_k = k, .on_current = 1.0});
  EXPECT_EQ(model.state_count(), static_cast<std::size_t>(2 * k));
  for (std::size_t i = 0; i < model.state_count(); ++i) {
    EXPECT_DOUBLE_EQ(model.chain().exit_rate(i), 2.0 * f * k);
  }
  // Steady state: half the time on.
  const auto pi = markov::steady_state(model.chain());
  double on_prob = 0.0;
  for (int i = 0; i < k; ++i) on_prob += pi[static_cast<std::size_t>(i)];
  EXPECT_NEAR(on_prob, 0.5, 1e-10);
  EXPECT_NEAR(model.steady_state_current(), 0.5, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, OnOffErlangTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(OnOffModel, StartOffOption) {
  const WorkloadModel model = make_onoff_model(
      {.frequency = 1.0, .erlang_k = 3, .on_current = 1.0, .start_on = false});
  EXPECT_DOUBLE_EQ(model.initial_distribution()[3], 1.0);
}

TEST(SimpleModel, PaperDefaults) {
  const WorkloadModel model = make_simple_model();
  EXPECT_EQ(model.state_count(), 3u);
  EXPECT_EQ(model.state_names()[0], "idle");
  EXPECT_DOUBLE_EQ(model.current(0), 8.0);
  EXPECT_DOUBLE_EQ(model.current(1), 200.0);
  EXPECT_DOUBLE_EQ(model.current(2), 0.0);
  // idle exits at lambda + tau = 3/h; send at mu = 6/h; sleep at lambda.
  EXPECT_DOUBLE_EQ(model.chain().exit_rate(0), 3.0);
  EXPECT_DOUBLE_EQ(model.chain().exit_rate(1), 6.0);
  EXPECT_DOUBLE_EQ(model.chain().exit_rate(2), 2.0);
}

TEST(SimpleModel, SteadyStateSendProbabilityIsQuarter) {
  // Balance equations give pi = (1/2, 1/4, 1/4).
  const auto pi = markov::steady_state(make_simple_model().chain());
  EXPECT_NEAR(pi[0], 0.5, 1e-10);
  EXPECT_NEAR(pi[1], 0.25, 1e-10);
  EXPECT_NEAR(pi[2], 0.25, 1e-10);
}

TEST(SimpleModel, SteadyStateCurrent) {
  // 0.5*8 + 0.25*200 + 0.25*0 = 54 mA.
  EXPECT_NEAR(make_simple_model().steady_state_current(), 54.0, 1e-9);
}

TEST(BurstModel, PaperDefaults) {
  const WorkloadModel model = make_burst_model();
  EXPECT_EQ(model.state_count(), 5u);
  EXPECT_DOUBLE_EQ(model.current(
                       static_cast<std::size_t>(BurstState::kOnSend)),
                   200.0);
  EXPECT_DOUBLE_EQ(model.current(static_cast<std::size_t>(BurstState::kSleep)),
                   0.0);
}

TEST(BurstModel, LambdaBurstCalibrationMatchesSimpleModel) {
  // Sec. 4.3: lambda_burst = 182/h makes the steady-state send probability
  // equal to the simple model's 1/4.
  EXPECT_NEAR(burst_send_probability(make_burst_model()), 0.25, 0.002);
}

TEST(BurstModel, SleepsMoreThanSimpleModel) {
  // "As could be expected, the steady-state probability to be in sleep is
  // higher in the burst model than in the simple model."
  const auto pi_simple = markov::steady_state(make_simple_model().chain());
  const auto pi_burst = markov::steady_state(make_burst_model().chain());
  const double sleep_simple =
      pi_simple[static_cast<std::size_t>(SimpleState::kSleep)];
  const double sleep_burst =
      pi_burst[static_cast<std::size_t>(BurstState::kSleep)];
  EXPECT_GT(sleep_burst, sleep_simple);
}

TEST(BurstModel, LowerSteadyCurrentThanSimple) {
  // More sleep at the same send share => lower average draw.
  EXPECT_LT(make_burst_model().steady_state_current(),
            make_simple_model().steady_state_current());
}

TEST(Models, ParameterValidation) {
  EXPECT_THROW(make_onoff_model({.frequency = 0.0}), InvalidArgument);
  EXPECT_THROW(make_onoff_model({.frequency = 1.0, .erlang_k = 0}),
               InvalidArgument);
  SimpleModelParameters bad_simple;
  bad_simple.send_finish_rate = 0.0;
  EXPECT_THROW(make_simple_model(bad_simple), InvalidArgument);
  BurstModelParameters bad_burst;
  bad_burst.switch_on_rate = 0.0;
  EXPECT_THROW(make_burst_model(bad_burst), InvalidArgument);
}

}  // namespace
}  // namespace kibamrm::workload
