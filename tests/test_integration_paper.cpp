// Integration tests pinning the paper-level results (Tables and Figures of
// Sec. 3 and Sec. 6) at test-friendly resolutions.  The bench binaries
// regenerate the full-resolution versions.
#include <gtest/gtest.h>

#include "kibamrm/battery/calibration.hpp"
#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/common/units.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/exact_c1.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/workload/burst_model.hpp"
#include "kibamrm/workload/onoff_model.hpp"
#include "kibamrm/workload/simple_model.hpp"

namespace kibamrm {
namespace {

using battery::KibamBattery;
using battery::KibamParameters;
using battery::LoadProfile;
using core::KibamRmModel;
using core::LifetimeCurve;
using core::MarkovianApproximation;
using core::MonteCarloSimulator;
using core::uniform_grid;

// ---------------------------------------------------------------- Table 1

TEST(Table1, KibamLifetimesMatchPaperColumn) {
  const KibamParameters params{7200.0, 0.625, 4.5e-5};
  KibamBattery continuous(params);
  EXPECT_NEAR(*compute_lifetime(continuous, LoadProfile::constant(0.96)) /
                  60.0,
              91.0, 0.6);
  KibamBattery wave_1hz(params);
  EXPECT_NEAR(*compute_lifetime(wave_1hz, LoadProfile::square_wave(1.0, 0.96),
                                {.max_time = 1e7}) /
                  60.0,
              203.0, 1.0);
  KibamBattery wave_02hz(params);
  EXPECT_NEAR(*compute_lifetime(wave_02hz,
                                LoadProfile::square_wave(0.2, 0.96),
                                {.max_time = 1e7}) /
                  60.0,
              203.0, 1.0);
}

TEST(Table1, CalibrationReproducesExperimentalContinuousLifetime) {
  // The paper sets k so the continuous lifetime is the experimental 90 min
  // with c = 0.625 from [9].
  const double k =
      battery::calibrate_flow_constant(7200.0, 0.625, 0.96, 90.0 * 60.0);
  KibamBattery battery({7200.0, 0.625, k});
  EXPECT_NEAR(*compute_lifetime(battery, LoadProfile::constant(0.96)) / 60.0,
              90.0, 0.1);
}

// ---------------------------------------------------------------- Figure 2

TEST(Figure2, WellEvolutionAnchors) {
  // f = 0.001 Hz square wave: y1 starts at 4500, y2 at 2700; y1 recovers
  // during off-phases; near t = 10000 s the plot shows y1 well below 1500
  // and y2 below 2000.
  KibamBattery battery({7200.0, 0.625, 4.5e-5});
  const auto samples = record_trajectory(
      battery, LoadProfile::square_wave(0.001, 0.96),
      {0.0, 500.0, 1000.0, 10000.0});
  EXPECT_DOUBLE_EQ(samples[0].available, 4500.0);
  EXPECT_DOUBLE_EQ(samples[0].bound, 2700.0);
  EXPECT_LT(samples[1].available, 4100.0);   // dipped during the on phase
  EXPECT_GT(samples[2].available, samples[1].available);  // recovered
  EXPECT_LT(samples[3].available, 1500.0);
  EXPECT_LT(samples[3].bound, 2000.0);
}

// ---------------------------------------------------------------- Figure 7

TEST(Figure7, DegenerateOnOffNearlyDeterministicAt15000s) {
  const KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 1.0, .flow_constant = 0.0});
  // Simulation: mean ~ 15000 s, tight spread (Erlang_15000-like).
  MonteCarloSimulator sim(model, {.replications = 1000});
  const auto dist = sim.run();
  EXPECT_NEAR(dist.mean(), 15000.0, 120.0);
  EXPECT_LT(dist.stddev(), 500.0);
  // Approximation at Delta = 25 is visibly smeared (the paper's point
  // about phase-type approximations of deterministic values): probability
  // at 14000 s noticeably above the simulation's.
  MarkovianApproximation approx(model, {.delta = 25.0});
  const auto curve = approx.solve(uniform_grid(10000.0, 20000.0, 41));
  EXPECT_GT(curve.probability_at(14000.0), dist.cdf(14000.0));
  EXPECT_NEAR(curve.median(), 15000.0, 200.0);
}

TEST(Figure7, CoarserDeltaIsFurtherLeft) {
  const KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 1.0, .flow_constant = 0.0});
  const auto times = uniform_grid(11000.0, 15000.0, 17);
  MarkovianApproximation coarse(model, {.delta = 100.0});
  MarkovianApproximation fine(model, {.delta = 25.0});
  const auto c100 = coarse.solve(times);
  const auto c25 = fine.solve(times);
  // At the early shoulder the coarse curve dominates (Fig. 7 ordering).
  EXPECT_GT(c100.probability_at(13500.0), c25.probability_at(13500.0));
}

// ---------------------------------------------------------------- Figure 8

TEST(Figure8, KibamOnOffCurveAnchors) {
  const KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
  // Simulation reference: lifetime near 15000 s but with the bound well
  // it lands somewhat below the c = 1 case (not all charge usable at this
  // rate).  Keep the run small: shape anchors only.
  MonteCarloSimulator sim(model, {.replications = 600, .seed = 12});
  const auto dist = sim.run();
  EXPECT_GT(dist.mean(), 12000.0);
  EXPECT_LT(dist.mean(), 16000.0);
  // Approximation at a moderate Delta: curve bracketed around simulation.
  MarkovianApproximation approx(model, {.delta = 100.0});
  const auto curve = approx.solve(uniform_grid(6000.0, 20000.0, 29));
  EXPECT_GT(curve.probabilities().back(), 0.97);
}

// ---------------------------------------------------------------- Figure 9

TEST(Figure9, InitialCapacityOrdering) {
  // Pr{empty} at a probe time: (C=4500, c=1) dies first, (C=7200,
  // c=0.625) second, (C=7200, c=1) last.
  const auto onoff = workload::make_onoff_model(
      {.frequency = 1.0, .erlang_k = 1, .on_current = 0.96});
  const auto times = uniform_grid(4000.0, 20000.0, 33);
  const double delta = 100.0;  // test-friendly; bench uses Delta = 5

  MarkovianApproximation small_c1(
      KibamRmModel(onoff, {.capacity = 4500.0, .available_fraction = 1.0,
                           .flow_constant = 0.0}),
      {.delta = delta});
  MarkovianApproximation kibam(
      KibamRmModel(onoff, {.capacity = 7200.0, .available_fraction = 0.625,
                           .flow_constant = 4.5e-5}),
      {.delta = delta});
  MarkovianApproximation full_c1(
      KibamRmModel(onoff, {.capacity = 7200.0, .available_fraction = 1.0,
                           .flow_constant = 0.0}),
      {.delta = delta});

  const auto curve_small = small_c1.solve(times);
  const auto curve_kibam = kibam.solve(times);
  const auto curve_full = full_c1.solve(times);

  for (double t : {10000.0, 12000.0, 14000.0}) {
    EXPECT_GE(curve_small.probability_at(t) + 1e-9,
              curve_kibam.probability_at(t))
        << "t=" << t;
    EXPECT_GE(curve_kibam.probability_at(t) + 1e-9,
              curve_full.probability_at(t))
        << "t=" << t;
  }
  // Medians are ordered with real gaps.
  EXPECT_LT(curve_small.median() + 500.0, curve_kibam.median());
  EXPECT_LT(curve_kibam.median(), curve_full.median());
}

// --------------------------------------------------------------- Figure 10

TEST(Figure10, SimpleModelThreeBatterySettings) {
  const auto simple = workload::make_simple_model();
  const auto times = uniform_grid(2.0, 30.0, 57);
  const double delta = 2.0;  // the paper's finest plotted Delta

  // C = 500 mAh fully available.
  MarkovianApproximation c500(
      KibamRmModel(simple, {.capacity = 500.0, .available_fraction = 1.0,
                            .flow_constant = 0.0}),
      {.delta = delta});
  const auto curve500 = c500.solve(times);
  // "the battery is most certainly empty (probability > 99%) after about
  // 17 hours"
  EXPECT_GT(curve500.probability_at(17.0), 0.97);

  // C = 800 mAh KiBaM (k in per-hour units: 1.96e-2).
  MarkovianApproximation c800k(
      KibamRmModel(simple,
                   {.capacity = 800.0, .available_fraction = 0.625,
                    .flow_constant =
                        units::per_second_to_per_hour(4.5e-5)}),
      {.delta = delta});
  const auto curve800k = c800k.solve(times);
  // "gets surely empty after about 23 hours"
  EXPECT_GT(curve800k.probability_at(23.5), 0.985);
  EXPECT_LT(curve800k.probability_at(15.0), 0.9);

  // C = 800 mAh fully available: exact solver; "after about 25 hours".
  const KibamRmModel full(simple, {.capacity = 800.0,
                                   .available_fraction = 1.0,
                                   .flow_constant = 0.0});
  const auto curve800 = core::ExactC1Solver(full).solve(times);
  EXPECT_GT(curve800.probability_at(25.5), 0.98);

  // Ordering: 500-available < 800-kibam < 800-available lifetimes, i.e.
  // reversed ordering of empty probabilities at a mid probe.
  for (double t : {12.0, 16.0, 20.0}) {
    EXPECT_GT(curve500.probability_at(t), curve800k.probability_at(t));
    EXPECT_GT(curve800k.probability_at(t), curve800.probability_at(t) - 1e-9);
  }

  // "the middle curves are closer to the right curve than to the left
  // set": compare medians.
  const double m500 = curve500.median();
  const double m800k = curve800k.median();
  const double m800 = curve800.median();
  EXPECT_LT(m800 - m800k, m800k - m500);
}

// --------------------------------------------------------------- Figure 11

TEST(Figure11, BurstModelOutlivesSimpleModel) {
  const double k_per_hour = units::per_second_to_per_hour(4.5e-5);
  const KibamParameters batt{800.0, 0.625, k_per_hour};
  const auto times = uniform_grid(2.0, 30.0, 57);
  const double delta = 5.0;  // the paper's Fig. 11 step size

  MarkovianApproximation simple(
      KibamRmModel(workload::make_simple_model(), batt), {.delta = delta});
  MarkovianApproximation burst(
      KibamRmModel(workload::make_burst_model(), batt), {.delta = delta});
  const auto curve_simple = simple.solve(times);
  const auto curve_burst = burst.solve(times);

  // Paper: at 20 h the simple model is ~95% empty, the burst model ~89%.
  EXPECT_NEAR(curve_simple.probability_at(20.0), 0.95, 0.03);
  EXPECT_NEAR(curve_burst.probability_at(20.0), 0.89, 0.03);
  // Burst curve lies right of (below) the simple curve over the main rise
  // (the region the paper quantifies).  Very early the curves cross: the
  // burst model's condensed sends give it a heavier fast-depletion tail.
  for (double t : {15.0, 20.0, 25.0}) {
    EXPECT_LT(curve_burst.probability_at(t),
              curve_simple.probability_at(t) + 1e-9)
        << "t=" << t;
  }
  // The visible gap at the paper's quoted probe: ~6 percentage points.
  EXPECT_GT(curve_simple.probability_at(20.0) -
                curve_burst.probability_at(20.0),
            0.03);
}

// ------------------------------------------------------- Sec. 6.1 numbers

TEST(Complexity, PaperIterationCountQuote) {
  // "To compute the transient state probabilities for t = 17000 seconds
  // more than 36000 iterations are needed" (Delta = 5, c = 1 chain).
  const KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 1.0, .flow_constant = 0.0});
  MarkovianApproximation approx(model, {.delta = 5.0});
  approx.solve({17000.0});
  EXPECT_GT(approx.last_stats().uniformization_iterations, 36000u);
  EXPECT_LT(approx.last_stats().uniformization_iterations, 80000u);
  EXPECT_EQ(approx.last_stats().expanded_states, 2882u);
}

}  // namespace
}  // namespace kibamrm
