// Tests for the COO builder and CSR matrix kernels.
#include <gtest/gtest.h>

#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/csr_matrix.hpp"

namespace kibamrm::linalg {
namespace {

CsrMatrix small_matrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  CooBuilder builder(3, 3);
  builder.add(0, 0, 1.0);
  builder.add(0, 2, 2.0);
  builder.add(2, 0, 3.0);
  builder.add(2, 1, 4.0);
  return builder.build();
}

TEST(CooBuilder, MergesDuplicatesAndDropsZeros) {
  CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 0, 2.0);   // duplicate: summed
  builder.add(1, 1, 5.0);
  builder.add(1, 1, -5.0);  // cancels to zero: dropped
  builder.add(0, 1, 0.0);   // explicit zero: dropped
  const CsrMatrix m = builder.build();
  EXPECT_EQ(m.nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(CooBuilder, OutOfBoundsRejected) {
  CooBuilder builder(2, 2);
  EXPECT_THROW(builder.add(2, 0, 1.0), InvalidArgument);
  EXPECT_THROW(builder.add(0, 2, 1.0), InvalidArgument);
}

TEST(CooBuilder, UnsortedInsertionOrderIsFine) {
  CooBuilder builder(3, 3);
  builder.add(2, 1, 4.0);
  builder.add(0, 2, 2.0);
  builder.add(2, 0, 3.0);
  builder.add(0, 0, 1.0);
  const CsrMatrix m = builder.build();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 4.0);
}

TEST(CsrMatrix, MultiplyColumnVector) {
  const CsrMatrix m = small_matrix();
  std::vector<double> out;
  m.multiply({1.0, 2.0, 3.0}, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 7.0);   // 1*1 + 2*3
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 11.0);  // 3*1 + 4*2
}

TEST(CsrMatrix, LeftMultiplyRowVector) {
  const CsrMatrix m = small_matrix();
  std::vector<double> out;
  m.left_multiply({1.0, 2.0, 3.0}, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 10.0);  // 1*1 + 3*3
  EXPECT_DOUBLE_EQ(out[1], 12.0);  // 3*4
  EXPECT_DOUBLE_EQ(out[2], 2.0);   // 1*2
}

TEST(CsrMatrix, LeftMultiplyEqualsTransposedMultiply) {
  const CsrMatrix m = small_matrix();
  const CsrMatrix mt = m.transposed();
  const std::vector<double> v = {0.3, 0.5, 0.2};
  std::vector<double> left;
  std::vector<double> via_transpose;
  m.left_multiply(v, left);
  mt.multiply(v, via_transpose);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(left[i], via_transpose[i], 1e-15);
  }
}

TEST(CsrMatrix, DimensionMismatchRejected) {
  const CsrMatrix m = small_matrix();
  std::vector<double> out;
  const std::vector<double> bad = {1.0, 2.0};
  EXPECT_THROW(m.multiply(bad, out), InvalidArgument);
  EXPECT_THROW(m.left_multiply(bad, out), InvalidArgument);
}

TEST(CsrMatrix, RowSums) {
  const std::vector<double> sums = small_matrix().row_sums();
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 0.0);
  EXPECT_DOUBLE_EQ(sums[2], 7.0);
}

TEST(CsrMatrix, ScaledCopies) {
  const CsrMatrix m = small_matrix().scaled(2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 8.0);
}

TEST(CsrMatrix, TransposeRoundTrip) {
  const CsrMatrix m = small_matrix();
  const CsrMatrix mtt = m.transposed().transposed();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), mtt.at(i, j));
    }
  }
}

CsrMatrix two_state_generator(double a, double b) {
  CooBuilder builder(2, 2);
  builder.add(0, 0, -a);
  builder.add(0, 1, a);
  builder.add(1, 0, b);
  builder.add(1, 1, -b);
  return builder.build();
}

TEST(CsrMatrix, MaxExitRate) {
  EXPECT_DOUBLE_EQ(two_state_generator(2.0, 5.0).max_exit_rate(), 5.0);
}

TEST(CsrMatrix, UniformizedIsStochastic) {
  const CsrMatrix q = two_state_generator(2.0, 5.0);
  const CsrMatrix p = q.uniformized(5.0);
  const std::vector<double> sums = p.row_sums();
  EXPECT_NEAR(sums[0], 1.0, 1e-15);
  EXPECT_NEAR(sums[1], 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(p.at(0, 1), 0.4);
  EXPECT_DOUBLE_EQ(p.at(0, 0), 0.6);
  EXPECT_DOUBLE_EQ(p.at(1, 1), 0.0);
}

TEST(CsrMatrix, UniformizedHandlesAbsorbingRows) {
  CooBuilder builder(2, 2);
  builder.add(0, 0, -1.0);
  builder.add(0, 1, 1.0);
  // row 1 absorbing: all zero
  const CsrMatrix p = builder.build().uniformized(1.0);
  EXPECT_DOUBLE_EQ(p.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.at(1, 0), 0.0);
}

TEST(CsrMatrix, UniformizedRejectsTooSmallRate) {
  const CsrMatrix q = two_state_generator(2.0, 5.0);
  EXPECT_THROW(q.uniformized(4.0), InvalidArgument);
}

TEST(CsrMatrix, AtOutOfRangeRejected) {
  const CsrMatrix m = small_matrix();
  EXPECT_THROW(m.at(3, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 3), InvalidArgument);
}

TEST(CsrMatrix, IdentityRowsDetected) {
  // Uniformise a generator with one absorbing state: exactly its row
  // becomes a unit diagonal.
  CooBuilder builder(3, 3);
  builder.add(0, 0, -2.0);
  builder.add(0, 1, 2.0);
  builder.add(1, 1, -1.0);
  builder.add(1, 2, 1.0);
  // row 2 absorbing
  const CsrMatrix p = builder.build().uniformized(2.0);
  const auto identity = p.identity_rows();
  ASSERT_EQ(identity.size(), 1u);
  EXPECT_EQ(identity[0], 2u);
}

TEST(CsrMatrix, PartitionedLeftMultiplyMatchesPlain) {
  CooBuilder builder(4, 4);
  builder.add(0, 0, -3.0);
  builder.add(0, 1, 1.0);
  builder.add(0, 3, 2.0);
  builder.add(1, 1, -0.5);
  builder.add(1, 2, 0.5);
  // rows 2 and 3 absorbing
  const CsrMatrix p = builder.build().uniformized(3.0);
  const auto identity = p.identity_rows();
  ASSERT_EQ(identity.size(), 2u);
  const std::vector<std::uint32_t> active = {0, 1};

  const std::vector<double> pi = {0.4, 0.3, 0.2, 0.1};
  std::vector<double> expected;
  p.left_multiply(pi, expected);
  std::vector<double> fast;
  p.left_multiply_partitioned(pi, fast, active, identity);
  ASSERT_EQ(fast.size(), expected.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_DOUBLE_EQ(fast[i], expected[i]) << "entry " << i;
  }
}

TEST(CsrMatrix, PartitionedLeftMultiplyRejectsBadPartition) {
  const CsrMatrix p = two_state_generator(1.0, 1.0).uniformized(2.0);
  const std::vector<double> pi = {0.5, 0.5};
  std::vector<double> out;
  const std::vector<std::uint32_t> only_one_row = {0};
  EXPECT_THROW(
      p.left_multiply_partitioned(pi, out, only_one_row, {}),
      InvalidArgument);
}

TEST(CsrMatrix, MultiplyRangeCoversExactlyItsRows) {
  // Ranged gather == full multiply on the covered rows, untouched outside.
  CooBuilder builder(5, 5);
  builder.add(0, 1, 2.0);
  builder.add(1, 0, 3.0);
  builder.add(1, 4, 1.0);
  builder.add(3, 3, -4.0);
  builder.add(4, 2, 0.5);
  const CsrMatrix m = builder.build();
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};

  std::vector<double> full;
  m.multiply(x, full);

  std::vector<double> ranged(5, -99.0);
  m.multiply_range(x, ranged, 1, 4);
  for (std::size_t row = 0; row < 5; ++row) {
    if (row >= 1 && row < 4) {
      EXPECT_DOUBLE_EQ(ranged[row], full[row]) << "row " << row;
    } else {
      EXPECT_DOUBLE_EQ(ranged[row], -99.0) << "row " << row;
    }
  }
}

TEST(CsrMatrix, MultiplyRangeStitchedPartitionsMatchFullMultiply) {
  const CsrMatrix p =
      two_state_generator(1.0, 2.0).uniformized(4.0).transposed();
  const std::vector<double> x = {0.25, 0.75};
  std::vector<double> full;
  p.multiply(x, full);
  std::vector<double> stitched(p.rows(), 0.0);
  const auto ranges = p.balanced_row_ranges(2);
  for (std::size_t part = 0; part + 1 < ranges.size(); ++part) {
    p.multiply_range(x, stitched, ranges[part], ranges[part + 1]);
  }
  for (std::size_t row = 0; row < p.rows(); ++row) {
    // Bitwise, not approximate: each entry is one row gather either way.
    EXPECT_EQ(stitched[row], full[row]) << "row " << row;
  }
}

TEST(CsrMatrix, MultiplyRangeRejectsBadArguments) {
  const CsrMatrix m(3, 3);
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> too_small(2, 0.0);
  EXPECT_THROW(m.multiply_range(x, too_small, 0, 3), InvalidArgument);
  std::vector<double> out(3, 0.0);
  EXPECT_THROW(m.multiply_range(x, out, 2, 1), InvalidArgument);
  EXPECT_THROW(m.multiply_range(x, out, 0, 4), InvalidArgument);
}

TEST(CsrMatrix, BalancedRowRangesCoverAllRowsInOrder) {
  const std::size_t n = 1000;
  CooBuilder builder(n, n);
  // Heavily skewed nnz: row i holds i % 7 entries, so equal-row splits
  // would be badly unbalanced.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i % 7; ++k) {
      builder.add(i, (i + k) % n, 1.0);
    }
  }
  const CsrMatrix m = builder.build();
  for (const std::size_t parts : {1u, 3u, 16u}) {
    const auto ranges = m.balanced_row_ranges(parts);
    ASSERT_GE(ranges.size(), 2u);
    ASSERT_LE(ranges.size(), parts + 1);
    EXPECT_EQ(ranges.front(), 0u);
    EXPECT_EQ(ranges.back(), n);
    for (std::size_t i = 0; i + 1 < ranges.size(); ++i) {
      EXPECT_LT(ranges[i], ranges[i + 1]) << "empty or unsorted range";
    }
  }
}

TEST(CsrMatrix, BalancedRowRangesBalanceByNonzeros) {
  // 100 rows: the first 10 hold 50 nonzeros each, the rest one each.  An
  // equal-rows split at 2 parts would put 5% of the work in part 2; the
  // nnz-balanced split must cut inside the heavy block.
  CooBuilder builder(100, 100);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t k = 0; k < 50; ++k) builder.add(i, k, 1.0);
  }
  for (std::size_t i = 10; i < 100; ++i) builder.add(i, 0, 1.0);
  const CsrMatrix m = builder.build();
  const auto ranges = m.balanced_row_ranges(2);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_LT(ranges[1], 10u) << "split must land inside the heavy rows";
}

TEST(CsrMatrix, BalancedRowRangesSurviveOneDominantRow) {
  // One row holds ~84% of the weight; the remaining parts must still be
  // carved out of the light tail instead of collapsing into one range.
  CooBuilder builder(100, 100);
  for (std::size_t k = 0; k < 100; ++k) builder.add(0, k, 1.0);
  for (std::size_t i = 1; i < 100; ++i) builder.add(i, 0, 1.0);
  const CsrMatrix m = builder.build();
  const auto ranges = m.balanced_row_ranges(4);
  ASSERT_EQ(ranges.size(), 5u) << "requested parts must all materialise";
  EXPECT_EQ(ranges[1], 1u) << "the dominant row is its own range";
}

TEST(CsrMatrix, BalancedRowRangesMoreKPartsThanRows) {
  const CsrMatrix m(3, 3);
  const auto ranges = m.balanced_row_ranges(16);
  EXPECT_EQ(ranges.front(), 0u);
  EXPECT_EQ(ranges.back(), 3u);
  ASSERT_LE(ranges.size(), 4u);
  for (std::size_t i = 0; i + 1 < ranges.size(); ++i) {
    EXPECT_LT(ranges[i], ranges[i + 1]);
  }
}

TEST(CsrMatrix, LargeBandedMatrixRoundTrip) {
  // A 10k-state birth-death structure, the shape of the expanded battery
  // chains; checks index arithmetic at scale.
  const std::size_t n = 10000;
  CooBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) builder.add(i, i + 1, 1.0 + static_cast<double>(i));
    if (i > 0) builder.add(i, i - 1, 2.0);
    builder.add(i, i, -3.0);
  }
  const CsrMatrix m = builder.build();
  EXPECT_EQ(m.nonzeros(), 3 * n - 2);
  EXPECT_DOUBLE_EQ(m.at(5000, 5001), 5001.0);
  std::vector<double> out;
  m.left_multiply(std::vector<double>(n, 1.0 / static_cast<double>(n)), out);
  EXPECT_EQ(out.size(), n);
}

}  // namespace
}  // namespace kibamrm::linalg
