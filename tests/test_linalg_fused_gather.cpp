// Tests for the fused uniformisation-step kernels: the CSR fused gather
// and scatter variants, the compressed FusedGatherPlan (bitwise parity
// with the CSR gather), and the reachability/compaction helpers they ride
// on.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/csr_matrix.hpp"
#include "kibamrm/linalg/fused_gather.hpp"
#include "kibamrm/linalg/vector_ops.hpp"

namespace kibamrm::linalg {
namespace {

// Banded row-stochastic matrix with mixed row lengths (1 to 5 stored
// entries), resembling a uniformised battery chain.
CsrMatrix banded(std::size_t n) {
  CooBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    if (i > 0) {
      builder.add(i, i - 1, 0.3);
      off += 0.3;
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, 0.2);
      off += 0.2;
    }
    if (i % 3 == 0 && i + 2 < n) {
      builder.add(i, i + 2, 0.1);
      off += 0.1;
    }
    if (i % 5 == 0 && i >= 2) {
      builder.add(i, i - 2, 0.05);
      off += 0.05;
    }
    builder.add(i, i, 1.0 - off);
  }
  return builder.build();
}

std::vector<double> random_vector(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = uniform(rng);
  return v;
}

TEST(CsrFusedRange, MatchesMultiplyPlusAxpyPlusDelta) {
  const CsrMatrix pt = banded(257).transposed();
  const std::vector<double> x = random_vector(257, 1);
  std::vector<double> expected(257, 0.0);
  pt.multiply(x, expected);
  std::vector<double> expected_accum(257, 0.25);
  axpy(0.125, expected, expected_accum);
  const double expected_delta = linf_distance(expected, x);

  std::vector<double> out(257, 0.0);
  std::vector<double> accum(257, 0.25);
  const double delta = pt.multiply_fused_range(x, out, accum, 0.125, 0, 257);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], expected[i], 1e-15) << "row " << i;
    EXPECT_NEAR(accum[i], expected_accum[i], 1e-15) << "row " << i;
  }
  EXPECT_NEAR(delta, expected_delta, 1e-15);
}

TEST(CsrFusedRange, ZeroWeightSkipsAccumulator) {
  const CsrMatrix pt = banded(64).transposed();
  const std::vector<double> x = random_vector(64, 2);
  std::vector<double> out(64, 0.0);
  std::vector<double> accum(64, 0.75);
  pt.multiply_fused_range(x, out, accum, 0.0, 0, 64);
  for (const double a : accum) EXPECT_EQ(a, 0.75);
}

TEST(CsrFusedRange, DisjointRangesComposeBitwise) {
  const CsrMatrix pt = banded(101).transposed();
  const std::vector<double> x = random_vector(101, 3);
  std::vector<double> out_full(101, 0.0);
  std::vector<double> accum_full(101, 0.0);
  const double delta_full =
      pt.multiply_fused_range(x, out_full, accum_full, 0.5, 0, 101);

  std::vector<double> out(101, 0.0);
  std::vector<double> accum(101, 0.0);
  double delta = 0.0;
  for (const auto& [begin, end] :
       {std::pair<std::size_t, std::size_t>{0, 37},
        std::pair<std::size_t, std::size_t>{37, 70},
        std::pair<std::size_t, std::size_t>{70, 101}}) {
    delta = std::max(delta,
                     pt.multiply_fused_range(x, out, accum, 0.5, begin, end));
  }
  EXPECT_EQ(out, out_full);      // bitwise: sharding cannot change results
  EXPECT_EQ(accum, accum_full);
  EXPECT_EQ(delta, delta_full);
}

TEST(CsrFusedScatter, MatchesPartitionedPlusAxpy) {
  // Make row 5 an exact unit diagonal so the identity partition is
  // non-trivial.
  CooBuilder builder(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 5) {
      builder.add(i, i, 1.0);
      continue;
    }
    if (i > 0) builder.add(i, i - 1, 0.4);
    builder.add(i, i, i > 0 ? 0.6 : 1.0);
  }
  const CsrMatrix p = builder.build();
  const auto identity = p.identity_rows();
  ASSERT_EQ(identity.size(), 2u);  // rows 0 and 5
  std::vector<std::uint32_t> active;
  std::size_t next_identity = 0;
  for (std::uint32_t row = 0; row < 8; ++row) {
    if (next_identity < identity.size() && identity[next_identity] == row) {
      ++next_identity;
    } else {
      active.push_back(row);
    }
  }

  const std::vector<double> pi = {0.1, 0.2, 0.05, 0.15, 0.1, 0.2, 0.1, 0.1};
  std::vector<double> expected(8, 0.0);
  p.left_multiply_partitioned(pi, expected, active, identity);
  std::vector<double> expected_accum(8, 0.0);
  axpy(2.0, expected, expected_accum);

  std::vector<double> out(8, 0.0);
  std::vector<double> accum(8, 0.0);
  const double delta =
      p.left_multiply_partitioned_fused(pi, out, active, identity, 2.0, accum);
  EXPECT_EQ(out, expected);  // same scatter arithmetic, bit for bit
  EXPECT_EQ(accum, expected_accum);
  EXPECT_NEAR(delta, linf_distance(expected, pi), 1e-15);
}

TEST(FusedGatherPlan, BitwiseMatchesCsrKernel) {
  const CsrMatrix pt = banded(509).transposed();
  const auto plan = FusedGatherPlan::build(pt);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->rows(), pt.rows());
  EXPECT_EQ(plan->nonzeros(), pt.nonzeros());

  const std::vector<double> x = random_vector(509, 4);
  std::vector<double> out_csr(509, 0.0), accum_csr(509, 0.0);
  std::vector<double> out_plan(509, 0.0), accum_plan(509, 0.0);
  const double delta_csr =
      pt.multiply_fused_range(x, out_csr, accum_csr, 0.375, 0, 509);
  const double delta_plan =
      plan->multiply_fused_range(x, out_plan, accum_plan, 0.375, 0, 509);
  // The dictionary stores exact doubles and every row length evaluates in
  // the same canonical order, so the two kernels agree bit for bit.
  EXPECT_EQ(out_plan, out_csr);
  EXPECT_EQ(accum_plan, accum_csr);
  EXPECT_EQ(delta_plan, delta_csr);
}

TEST(FusedGatherPlan, RangesComposeBitwise) {
  const CsrMatrix pt = banded(211).transposed();
  const auto plan = FusedGatherPlan::build(pt);
  ASSERT_TRUE(plan.has_value());
  const std::vector<double> x = random_vector(211, 5);
  std::vector<double> out_full(211, 0.0), accum_full(211, 0.0);
  plan->multiply_fused_range(x, out_full, accum_full, 1.0, 0, 211);
  std::vector<double> out(211, 0.0), accum(211, 0.0);
  plan->multiply_fused_range(x, out, accum, 1.0, 100, 211);  // out of order
  plan->multiply_fused_range(x, out, accum, 1.0, 0, 100);
  EXPECT_EQ(out, out_full);
  EXPECT_EQ(accum, accum_full);
}

// Constant three-point stencil with a pattern break every `period` rows
// (an extra entry), so the plan finds many uniform segments separated by
// single irregular rows -- the shape an RCM-banded battery chain takes.
CsrMatrix stencil_with_breaks(std::size_t n, std::size_t period) {
  CooBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    if (i > 0) {
      builder.add(i, i - 1, 0.3);
      off += 0.3;
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, 0.2);
      off += 0.2;
    }
    if (i % period == 0 && i + 2 < n) {
      builder.add(i, i + 2, 0.1);
      off += 0.1;
    }
    builder.add(i, i, 1.0 - off);
  }
  return builder.build();
}

TEST(FusedGatherPlan, SegmentSpansAreOrderedUniformRuns) {
  const CsrMatrix pt = stencil_with_breaks(211, 50).transposed();
  const auto plan = FusedGatherPlan::build(pt);
  ASSERT_TRUE(plan.has_value());
  // Spans cover the uniform runs only (gaps are the irregular rows), in
  // ascending row order without overlap.
  const auto spans = plan->uniform_segment_spans();
  ASSERT_GE(spans.size(), 3u);
  std::size_t cursor = 0;
  for (const auto& [begin, end] : spans) {
    EXPECT_GE(begin, cursor);
    EXPECT_LT(begin, end);
    EXPECT_LE(end, plan->rows());
    cursor = end;
  }
}

TEST(FusedGatherPlan, AlignRangesSnapsToSegmentEdgesBitwise) {
  const CsrMatrix pt = stencil_with_breaks(509, 50).transposed();
  const auto plan = FusedGatherPlan::build(pt);
  ASSERT_TRUE(plan.has_value());
  ASSERT_FALSE(plan->uniform_segment_spans().empty());
  // An arbitrary unaligned partition; after alignment no interior
  // boundary may sit strictly inside a uniform segment (it either snapped
  // to a segment edge or already lay in an irregular gap), and the whole
  // thing must remain a strictly ascending partition of [0, rows).
  std::vector<std::size_t> ranges = {0, 97, 222, 351, 509};
  plan->align_ranges_to_segments(ranges);
  ASSERT_GE(ranges.size(), 2u);
  EXPECT_EQ(ranges.front(), 0u);
  EXPECT_EQ(ranges.back(), plan->rows());
  const auto spans = plan->uniform_segment_spans();
  for (std::size_t i = 0; i + 1 < ranges.size(); ++i) {
    EXPECT_LT(ranges[i], ranges[i + 1]);
    if (i == 0) continue;
    for (const auto& [begin, end] : spans) {
      EXPECT_FALSE(begin < ranges[i] && ranges[i] < end)
          << "boundary " << ranges[i] << " splits segment [" << begin
          << ", " << end << ")";
    }
  }

  // Aligned shards still compose to the full-range result bit for bit
  // (alignment is an optimisation for the segment-run kernel, never a
  // semantic change).
  const std::vector<double> x = random_vector(509, 6);
  std::vector<double> out_full(509, 0.0), accum_full(509, 0.0);
  const double delta_full =
      plan->multiply_fused_range(x, out_full, accum_full, 0.625, 0, 509);
  std::vector<double> out(509, 0.0), accum(509, 0.0);
  double delta = 0.0;
  for (std::size_t i = 0; i + 1 < ranges.size(); ++i) {
    delta = std::max(delta, plan->multiply_fused_range(
                                x, out, accum, 0.625, ranges[i],
                                ranges[i + 1]));
  }
  EXPECT_EQ(out, out_full);
  EXPECT_EQ(accum, accum_full);
  EXPECT_EQ(delta, delta_full);
}

TEST(FusedGatherPlan, WideOffsetsFallBackToColumnDelta) {
  // A synthetic wide chain: couplings 40000 columns from the row escape
  // the int16 row-offset layout, but every within-row column gap fits
  // uint16, so the column-delta fallback layout takes over -- with the
  // same bitwise result as the CSR kernel.
  const std::size_t n = 50000;
  const std::size_t span = 40000;
  CooBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    if (i >= span) {
      builder.add(i, i - span, 0.25);
      off += 0.25;
    }
    if (i + span < n) {
      builder.add(i, i + span, 0.15);
      off += 0.15;
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, 0.1);
      off += 0.1;
    }
    builder.add(i, i, 1.0 - off);
  }
  const CsrMatrix pt = builder.build();
  const auto plan = FusedGatherPlan::build(pt);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->layout(), FusedGatherPlan::Layout::kColumnDelta);
  EXPECT_EQ(plan->nonzeros(), pt.nonzeros());

  const std::vector<double> x = random_vector(n, 7);
  std::vector<double> out_csr(n, 0.0), accum_csr(n, 0.0);
  std::vector<double> out_plan(n, 0.0), accum_plan(n, 0.0);
  const double delta_csr =
      pt.multiply_fused_range(x, out_csr, accum_csr, 0.5, 0, n);
  const double delta_plan =
      plan->multiply_fused_range(x, out_plan, accum_plan, 0.5, 0, n);
  EXPECT_EQ(out_plan, out_csr);
  EXPECT_EQ(accum_plan, accum_csr);
  EXPECT_EQ(delta_plan, delta_csr);
}

TEST(FusedGatherPlan, ColumnDeltaHandlesLongRows) {
  // Rows beyond the switch cases (>= 5 entries) exercise the incremental
  // even/odd column walk of the delta kernel.
  const std::size_t n = 40000;
  CooBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 0.5);
    for (std::size_t e = 1; e <= 6; ++e) {
      const std::size_t col = (i + 6001 * e) % n;
      builder.add(i, col, 0.01 * static_cast<double>(e));
    }
  }
  const CsrMatrix pt = builder.build();
  const auto plan = FusedGatherPlan::build(pt);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->layout(), FusedGatherPlan::Layout::kColumnDelta);

  const std::vector<double> x = random_vector(n, 8);
  std::vector<double> out_csr(n, 0.0), accum_csr(n, 0.0);
  std::vector<double> out_plan(n, 0.0), accum_plan(n, 0.0);
  pt.multiply_fused_range(x, out_csr, accum_csr, 0.25, 0, n);
  plan->multiply_fused_range(x, out_plan, accum_plan, 0.25, 0, n);
  EXPECT_EQ(out_plan, out_csr);
  EXPECT_EQ(accum_plan, accum_csr);
}

TEST(FusedGatherPlan, RefusesWideColumnGaps) {
  // A within-row gap of 70000 columns fits neither int16 row offsets nor
  // uint16 column deltas.
  CooBuilder builder(80000, 80000);
  for (std::size_t i = 0; i < 80000; ++i) builder.add(i, i, 1.0);
  builder.add(0, 70000, 0.5);
  EXPECT_FALSE(FusedGatherPlan::build(builder.build()).has_value());
}

TEST(FusedGatherPlan, RefusesRectangularMatrices) {
  CooBuilder builder(3, 4);
  builder.add(0, 0, 1.0);
  EXPECT_FALSE(FusedGatherPlan::build(builder.build()).has_value());
}

TEST(ReachableRows, ClosureFollowsSparsityPattern) {
  // 0 -> 1 -> 2, 3 -> 4, 5 isolated (self loop).
  CooBuilder builder(6, 6);
  builder.add(0, 1, 1.0);
  builder.add(1, 2, 1.0);
  builder.add(3, 4, 1.0);
  builder.add(5, 5, 1.0);
  const CsrMatrix m = builder.build();
  const std::vector<std::uint32_t> seed0 = {0};
  EXPECT_EQ(m.reachable_rows(seed0), (std::vector<std::uint32_t>{0, 1, 2}));
  const std::vector<std::uint32_t> seed3 = {3};
  EXPECT_EQ(m.reachable_rows(seed3), (std::vector<std::uint32_t>{3, 4}));
  const std::vector<std::uint32_t> seeds = {5, 0};
  EXPECT_EQ(m.reachable_rows(seeds),
            (std::vector<std::uint32_t>{0, 1, 2, 5}));
}

TEST(TransposedSubmatrix, CompactsAndTransposes) {
  // Keep rows {0, 2, 3} of a 4x4 matrix; entries into dropped rows vanish.
  CooBuilder builder(4, 4);
  builder.add(0, 0, 1.0);
  builder.add(0, 2, 2.0);
  builder.add(1, 0, 9.0);   // dropped row
  builder.add(2, 1, 8.0);   // dropped column
  builder.add(2, 3, 3.0);
  builder.add(3, 3, 4.0);
  const CsrMatrix m = builder.build();
  const std::vector<std::uint32_t> keep = {0, 2, 3};
  const CsrMatrix sub = m.transposed_submatrix(keep);
  ASSERT_EQ(sub.rows(), 3u);
  ASSERT_EQ(sub.cols(), 3u);
  // Compact indices: 0 -> 0, 2 -> 1, 3 -> 2; sub holds the transpose, so
  // a kept entry m(r, c) lands at sub(compact(c), compact(r)).
  EXPECT_DOUBLE_EQ(sub.at(0, 0), 1.0);  // m(0,0)
  EXPECT_DOUBLE_EQ(sub.at(1, 0), 2.0);  // m(0,2) transposed
  EXPECT_DOUBLE_EQ(sub.at(2, 1), 3.0);  // m(2,3) transposed
  EXPECT_DOUBLE_EQ(sub.at(2, 2), 4.0);  // m(3,3)
  EXPECT_EQ(sub.nonzeros(), 4u);        // the 8.0 and 9.0 entries vanished
}

TEST(TransposedSubmatrix, FullKeepEqualsTranspose) {
  const CsrMatrix m = banded(37);
  std::vector<std::uint32_t> all(37);
  for (std::uint32_t i = 0; i < 37; ++i) all[i] = i;
  const CsrMatrix a = m.transposed_submatrix(all);
  const CsrMatrix b = m.transposed();
  ASSERT_EQ(a.nonzeros(), b.nonzeros());
  for (std::size_t r = 0; r < 37; ++r) {
    for (std::size_t c = 0; c < 37; ++c) {
      EXPECT_DOUBLE_EQ(a.at(r, c), b.at(r, c));
    }
  }
}

TEST(TransposedSubmatrix, RejectsBadKeepSets) {
  const CsrMatrix m = banded(8);
  EXPECT_THROW(m.transposed_submatrix({}), InvalidArgument);
  const std::vector<std::uint32_t> unsorted = {3, 1};
  EXPECT_THROW(m.transposed_submatrix(unsorted), InvalidArgument);
  const std::vector<std::uint32_t> out_of_range = {7, 9};
  EXPECT_THROW(m.transposed_submatrix(out_of_range), InvalidArgument);
}

}  // namespace
}  // namespace kibamrm::linalg
