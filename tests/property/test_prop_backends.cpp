// Property: all five transient backends compute the same distribution.
//
// The system contract under test -- PRs 3-6 rewrote every hot path
// (fused gather, closure compaction, CGS2 Arnoldi, permutation layer,
// kernel tiers) behind the backend interface, and this is the invariant
// that says none of those rewrites changed the mathematics: on a random
// chain, `uniformization`, `parallel`, `adaptive`, `dense` and `krylov`
// agree pointwise on pi(t), for every structural family the generators
// produce.  The stiff family beyond the explicit stepper's reach is
// checked against the dense oracle + krylov only (the other backends'
// refusal/cost there is by design, not a bug).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "property/generators.hpp"
#include "property/propgen.hpp"

namespace kibamrm::prop {
namespace {

/// Solves `value` with every backend in `names` and checks pairwise
/// agreement within `tolerance` at every time point.
Verdict backends_agree(const CtmcCase& value,
                       const std::vector<std::string>& names,
                       double tolerance) {
  const markov::Ctmc chain = value.chain();
  std::vector<std::vector<std::vector<double>>> results;
  results.reserve(names.size());
  for (const std::string& name : names) {
    engine::BackendOptions options;
    if (name == "parallel") options.threads = 2;
    auto backend = engine::make_backend(name, options);
    results.push_back(backend->solve(chain, value.initial, value.times));
  }
  for (std::size_t a = 0; a < results.size(); ++a) {
    for (std::size_t b = a + 1; b < results.size(); ++b) {
      for (std::size_t k = 0; k < value.times.size(); ++k) {
        const double distance =
            linalg::linf_distance(results[a][k], results[b][k]);
        if (distance > tolerance) {
          std::ostringstream why;
          why << names[a] << " vs " << names[b] << " at t="
              << value.times[k] << ": linf " << distance << " > "
              << tolerance;
          return Verdict::fail(why.str());
        }
      }
    }
  }
  return Verdict::pass();
}

const std::vector<std::string> kAllFive = {"adaptive", "dense", "krylov",
                                           "parallel", "uniformization"};

class BackendAgreement : public ::testing::TestWithParam<CtmcFamily> {};

TEST_P(BackendAgreement, AllFiveBackendsAgreeWithinTolerance) {
  CtmcGenOptions options;
  options.family = GetParam();
  // Keep q * t modest: every backend (including the explicit stepper)
  // must afford each solve, and stiffness within the capped product is
  // already 6 decades of rate spread.
  options.max_rate_time_product = 1500.0;
  check<CtmcCase>(std::string("AllFiveAgree/") +
                      std::string(ctmc_family_name(GetParam())),
                  ctmc_gen(options),
                  [](const CtmcCase& value) {
                    return backends_agree(value, kAllFive, 1e-7);
                  });
}

INSTANTIATE_TEST_SUITE_P(Families, BackendAgreement,
                         ::testing::Values(CtmcFamily::kErgodic,
                                           CtmcFamily::kAbsorbing,
                                           CtmcFamily::kStiff,
                                           CtmcFamily::kNearDegenerate),
                         [](const auto& info) {
                           std::string name(ctmc_family_name(info.param));
                           name.erase(
                               std::remove(name.begin(), name.end(), '-'),
                               name.end());
                           return name;
                         });

TEST(BackendAgreement, KrylovMatchesDenseOracleBeyondExplicitReach) {
  // Rate ratios up to 1e8 and horizons far past 1/q_max: only the Krylov
  // backend and the dense oracle can afford these solves; their
  // agreement is the contract that lets the krylov engine claim the
  // stiff regime the paper's explicit pipeline refuses.
  CtmcGenOptions options;
  options.family = CtmcFamily::kStiff;
  options.stiff_decades = 8.0;
  options.max_states = 8;
  // q_max * t up to 1e7: ~2000x past what the capped property above
  // allows, yet sub-millisecond for both solvers here.
  options.max_rate_time_product = 1e7;
  check<CtmcCase>("KrylovVsDenseStiff", ctmc_gen(options),
                  [](const CtmcCase& value) {
                    return backends_agree(value, {"dense", "krylov"}, 1e-7);
                  });
}

}  // namespace
}  // namespace kibamrm::prop
