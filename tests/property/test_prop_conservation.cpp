// Property: probability mass is conserved, distributions stay
// non-negative, and steady-state detection never costs more than its
// epsilon budget.
//
// These are the accuracy contracts the perf work of PRs 3-6 is charged
// against: the fused kernels may reorder nothing that moves mass, the
// renormalize=false path must conserve sum(pi) to solver accuracy on its
// own, and switching --no-detect on or off must stay within 10 eps (the
// detection error is budgeted against epsilon/2 by design).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "property/generators.hpp"
#include "property/propgen.hpp"

namespace kibamrm::prop {
namespace {

Verdict mass_conserved(const CtmcCase& value, const std::string& backend_name) {
  const markov::Ctmc chain = value.chain();
  auto backend = engine::make_backend(backend_name, {.renormalize = false});
  const auto results = backend->solve(chain, value.initial, value.times);
  for (std::size_t point = 0; point < results.size(); ++point) {
    const double mass = linalg::sum(results[point]);
    if (std::abs(mass - 1.0) > 1e-8) {
      std::ostringstream why;
      why << backend_name << " at t=" << value.times[point]
          << ": sum(pi) = " << mass << " (|drift| > 1e-8)";
      return Verdict::fail(why.str());
    }
    for (std::size_t i = 0; i < results[point].size(); ++i) {
      if (results[point][i] < -1e-12) {
        std::ostringstream why;
        why << backend_name << " at t=" << value.times[point]
            << ": pi[" << i << "] = " << results[point][i] << " < -1e-12";
        return Verdict::fail(why.str());
      }
    }
  }
  return Verdict::pass();
}

class MassConservation
    : public ::testing::TestWithParam<std::tuple<CtmcFamily, std::string>> {
};

TEST_P(MassConservation, SumStaysOneWithoutRenormalization) {
  const auto [family, backend_name] = GetParam();
  CtmcGenOptions options;
  options.family = family;
  options.max_rate_time_product = 1500.0;
  check<CtmcCase>(std::string("MassConserved/") + backend_name + "/" +
                      std::string(ctmc_family_name(family)),
                  ctmc_gen(options),
                  [name = backend_name](const CtmcCase& value) {
                    return mass_conserved(value, name);
                  });
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndEngines, MassConservation,
    ::testing::Combine(::testing::Values(CtmcFamily::kErgodic,
                                         CtmcFamily::kAbsorbing,
                                         CtmcFamily::kNearDegenerate),
                       ::testing::Values(std::string("uniformization"),
                                         std::string("krylov"))),
    [](const auto& info) {
      std::string name(ctmc_family_name(std::get<0>(info.param)));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_" + std::get<1>(info.param);
    });

TEST(SteadyStateDetection, OnOffWithinTenEpsOnRandomChains) {
  // Ergodic chains with long horizons: detection fires often, and the
  // distribution with detection on must stay within 10 eps of the full
  // Fox-Glynn evaluation.
  const double epsilon = 1e-10;
  CtmcGenOptions options;
  options.family = CtmcFamily::kErgodic;
  options.max_rate_time_product = 4000.0;
  check<CtmcCase>(
      "DetectionOnOffChains", ctmc_gen(options),
      [epsilon](const CtmcCase& value) {
        const markov::Ctmc chain = value.chain();
        auto detect_on = engine::make_backend(
            "uniformization",
            {.epsilon = epsilon, .steady_state_detection = true});
        auto detect_off = engine::make_backend(
            "uniformization",
            {.epsilon = epsilon, .steady_state_detection = false});
        const auto on = detect_on->solve(chain, value.initial, value.times);
        const auto off =
            detect_off->solve(chain, value.initial, value.times);
        for (std::size_t point = 0; point < on.size(); ++point) {
          const double distance = linalg::linf_distance(on[point],
                                                        off[point]);
          if (distance > 10.0 * epsilon) {
            std::ostringstream why;
            why << "detection on vs off at t=" << value.times[point]
                << ": linf " << distance << " > 10 eps";
            return Verdict::fail(why.str());
          }
        }
        return Verdict::pass();
      });
}

TEST(SteadyStateDetection, OnOffWithinTenEpsOnBatteryScenarios) {
  // The same 10-eps budget end to end through the expanded battery
  // chains (absorbing layer + closure compaction + fused kernels).
  const double epsilon = 1e-10;
  check<ScenarioCase>(
      "DetectionOnOffScenarios", scenario_gen(),
      [epsilon](const ScenarioCase& value) {
        const auto expanded =
            core::build_expanded_chain(value.model(), value.delta);
        auto detect_on = engine::make_backend(
            "uniformization",
            {.epsilon = epsilon, .steady_state_detection = true});
        auto detect_off = engine::make_backend(
            "uniformization",
            {.epsilon = epsilon, .steady_state_detection = false});
        const auto on =
            detect_on->solve(expanded.chain, expanded.initial, value.times);
        const auto off = detect_off->solve(expanded.chain, expanded.initial,
                                           value.times);
        for (std::size_t point = 0; point < on.size(); ++point) {
          const double distance = linalg::linf_distance(on[point],
                                                        off[point]);
          if (distance > 10.0 * epsilon) {
            std::ostringstream why;
            why << "scenario detection on vs off at t="
                << value.times[point] << ": linf " << distance
                << " > 10 eps";
            return Verdict::fail(why.str());
          }
        }
        return Verdict::pass();
      });
}

TEST(MassConservationScenario, EmptyProbabilityMonotoneOverRandomScenarios) {
  // Pr{battery empty at t} is a CDF: within one scenario it must be
  // non-decreasing in t and inside [0, 1 + eps] -- over random battery
  // configurations, not just the paper's hand-picked cell.
  check<ScenarioCase>(
      "EmptyProbabilityCdf", scenario_gen(),
      [](const ScenarioCase& value) {
        const auto expanded =
            core::build_expanded_chain(value.model(), value.delta);
        auto backend = engine::make_backend("uniformization");
        double previous = 0.0;
        std::string failure;
        backend->solve(
            expanded.chain, expanded.initial, value.times,
            [&](std::size_t point, double time,
                const std::vector<double>& pi) {
              const double empty = expanded.empty_probability(pi);
              std::ostringstream why;
              if (empty < -1e-12 || empty > 1.0 + 1e-9) {
                why << "Pr{empty at " << time << "} = " << empty
                    << " outside [0, 1]";
                failure = why.str();
              } else if (point > 0 && empty < previous - 1e-9) {
                why << "Pr{empty} decreased: " << previous << " -> "
                    << empty << " at t=" << time;
                failure = why.str();
              }
              previous = empty;
            });
        return failure.empty() ? Verdict::pass() : Verdict::fail(failure);
      });
}

}  // namespace
}  // namespace kibamrm::prop
