// Domain generators for the property suites: random CTMCs in four
// structural families, random battery+workload scenario configurations,
// and random time grids -- each with shrinking toward a minimal failing
// case (fewer states, fewer time points, rounder rates).
//
// Family semantics (what each one stresses):
//   kErgodic         irreducible chains (a ring backbone plus random extra
//                    edges) -- the steady-state detection and the long-t
//                    behaviour of every backend
//   kAbsorbing       one absorbing state every other state can reach --
//                    the structure of the expanded battery chains (the
//                    j1 = 0 layer) and the identity-row fast paths
//   kStiff           rates spread over up to 8 decades -- the Poisson
//                    window blow-up, the adaptive stepper's step control,
//                    and the Krylov sub-step splitting
//   kNearDegenerate  two internally-fast blocks coupled by ~1e-9-relative
//                    rates -- near-reducible spectra, the hard case for
//                    steady-state detection and for expm conditioning
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kibamrm/common/random.hpp"
#include "kibamrm/core/kibamrm_model.hpp"
#include "kibamrm/markov/ctmc.hpp"
#include "property/propgen.hpp"

namespace kibamrm::prop {

enum class CtmcFamily {
  kErgodic,
  kAbsorbing,
  kStiff,
  kNearDegenerate,
};

std::string_view ctmc_family_name(CtmcFamily family);

/// One generated transient-solve case: a dense rate specification (kept
/// dense so shrinking can delete states and zero entries directly), an
/// initial distribution and a sorted positive time grid.
struct CtmcCase {
  CtmcFamily family = CtmcFamily::kErgodic;
  /// Off-diagonal transition rates; rates[i][i] is ignored (derived).
  std::vector<std::vector<double>> rates;
  std::vector<double> initial;
  std::vector<double> times;

  std::size_t states() const { return rates.size(); }

  /// Validated chain (diagonals derived from the off-diagonal rates).
  markov::Ctmc chain() const;
};

/// Knobs the individual properties tune: the uniformisation backends do
/// q_max * t_max DTMC steps per solve, so properties that run them keep
/// `max_rate_time_product` modest, while the Krylov/dense stiff property
/// raises `stiff_decades` instead.
struct CtmcGenOptions {
  CtmcFamily family = CtmcFamily::kErgodic;
  std::size_t min_states = 2;
  std::size_t max_states = 10;
  std::size_t max_time_points = 5;
  /// Cap on max_exit_rate * times.back() -- the uniformisation step count.
  double max_rate_time_product = 2000.0;
  /// Stiff family: rates span up to 10^stiff_decades.
  double stiff_decades = 6.0;
  /// Probability of a random initial distribution instead of a unit vector.
  double random_initial_probability = 0.5;
};

Gen<CtmcCase> ctmc_gen(const CtmcGenOptions& options);

/// One generated battery scenario: explicit well contents that land
/// exactly on the level grid (delta * integer level counts), an Erlang
/// on/off workload, and a lifetime-scaled time grid.  The expanded chain
/// stays small (level counts are bounded) so scenario properties can
/// afford hundreds of iterations across orderings x threads x tiers.
struct ScenarioCase {
  double delta = 300.0;
  std::uint32_t levels_available = 5;  ///< y1(0) = levels_available * delta
  std::uint32_t levels_bound = 3;      ///< y2(0) = levels_bound * delta
  double flow_constant = 4.5e-5;
  double on_current = 0.96;
  double frequency = 1.0;
  int erlang_k = 1;
  std::vector<double> times;

  core::KibamRmModel model() const;
};

struct ScenarioGenOptions {
  std::uint32_t max_levels_available = 10;
  std::uint32_t max_levels_bound = 6;
  int max_erlang_k = 3;
  std::size_t max_time_points = 6;
};

Gen<ScenarioCase> scenario_gen(const ScenarioGenOptions& options = {});

/// Sorted positive time grids on their own (for grid-shape properties).
Gen<std::vector<double>> time_grid_gen(double t_min, double t_max,
                                       std::size_t max_points);

}  // namespace kibamrm::prop
