// PropGen: the in-repo property-based testing engine behind tests/property.
//
// A deliberately small stand-in for rapidcheck (which needs a FetchContent
// network step this repo's offline builds cannot assume): seeded random
// generators, properties as predicates, and greedy counterexample
// shrinking.  The moving parts:
//
//   Gen<T>        a value generator: `generate` draws a T from a
//                 common::RandomStream, `shrink` proposes strictly simpler
//                 candidates (most aggressive first), `describe` renders a
//                 counterexample for the failure report.
//   check(...)    runs a property over N generated values.  Every
//                 iteration i uses the stream common::derive_seed(base, i),
//                 so a failure is pinned by (base seed, iteration) alone.
//                 On failure the counterexample is shrunk by greedy
//                 descent -- repeatedly move to the first failing shrink
//                 candidate -- and the report carries a one-line repro:
//
//                   KIBAMRM_PROP_SEED=0x... KIBAMRM_PROP_ITERS=N
//                       ctest -R <binary> --output-on-failure
//
// Environment contract (the CI property job scripts against this):
//   KIBAMRM_PROP_SEED          base seed (decimal or 0x-hex); fixed
//                              default, so plain runs are reproducible
//   KIBAMRM_PROP_ITERS         iterations per property (default 200)
//   KIBAMRM_PROP_ARTIFACT_DIR  when set, every falsified property appends
//                              its repro line to $dir/failing_seeds.txt
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kibamrm/common/random.hpp"

namespace kibamrm::prop {

/// Base seed of this process: KIBAMRM_PROP_SEED or the fixed default.
std::uint64_t base_seed();

/// Iterations per property: KIBAMRM_PROP_ITERS or 200.
std::size_t default_iterations();

/// Appends `line` to $KIBAMRM_PROP_ARTIFACT_DIR/failing_seeds.txt when the
/// variable is set; no-op otherwise.  Exposed for the harness self-tests.
void record_failing_seed(const std::string& line);

/// The repro one-liner for iteration `iteration` of the current binary.
std::string repro_line(std::uint64_t seed_base, std::size_t iteration);

struct CheckOptions {
  /// 0 selects default_iterations().
  std::size_t iterations = 0;
  /// Cap on property evaluations spent shrinking one counterexample.
  std::size_t max_shrink_evals = 400;
};

/// Outcome of one property evaluation.
struct Verdict {
  bool ok = true;
  std::string why;

  static Verdict pass() { return {}; }
  static Verdict fail(std::string reason) {
    return {false, std::move(reason)};
  }
};

template <typename T>
struct Gen {
  std::function<T(common::RandomStream&)> generate;
  /// Simpler candidate values, most aggressive first.  Empty (or an empty
  /// result) disables shrinking for this generator.
  std::function<std::vector<T>(const T&)> shrink;
  std::function<std::string(const T&)> describe;
};

namespace detail {

/// Evaluates `property` exception-safely: a thrown exception falsifies the
/// property with the exception text as the reason (the generators only
/// produce valid inputs, so a throw is a bug, not a bad test case).
template <typename T>
Verdict evaluate(const std::function<Verdict(const T&)>& property,
                 const T& value) {
  try {
    return property(value);
  } catch (const std::exception& error) {
    return Verdict::fail(std::string("unexpected exception: ") +
                         error.what());
  }
}

}  // namespace detail

/// Runs `property` over `options.iterations` generated values; on the
/// first falsified value, shrinks it and reports one gtest failure with
/// the counterexample and the seed repro line.
template <typename T>
void check(const std::string& property_name, const Gen<T>& gen,
           const std::function<Verdict(const T&)>& property,
           CheckOptions options = {}) {
  const std::uint64_t seed = base_seed();
  const std::size_t iterations =
      options.iterations != 0 ? options.iterations : default_iterations();

  for (std::size_t iteration = 0; iteration < iterations; ++iteration) {
    const std::uint64_t iteration_seed = common::derive_seed(seed, iteration);
    common::RandomStream stream(iteration_seed);
    T value = gen.generate(stream);
    Verdict verdict = detail::evaluate(property, value);
    if (verdict.ok) continue;

    // Greedy shrink: move to the first failing candidate, restart from it.
    const std::string original = gen.describe ? gen.describe(value) : "";
    std::size_t evals = 0;
    std::size_t steps = 0;
    if (gen.shrink) {
      bool shrunk_this_round = true;
      while (shrunk_this_round && evals < options.max_shrink_evals) {
        shrunk_this_round = false;
        for (T& candidate : gen.shrink(value)) {
          if (++evals > options.max_shrink_evals) break;
          Verdict candidate_verdict = detail::evaluate(property, candidate);
          if (!candidate_verdict.ok) {
            value = std::move(candidate);
            verdict = std::move(candidate_verdict);
            ++steps;
            shrunk_this_round = true;
            break;
          }
        }
      }
    }

    const std::string repro = repro_line(seed, iteration);
    record_failing_seed(repro + "  # " + property_name);
    ADD_FAILURE() << "FALSIFIED " << property_name << " after "
                  << iteration + 1 << " iteration(s)\n"
                  << "  reason: " << verdict.why << "\n"
                  << "  counterexample (" << steps << " shrink step(s), "
                  << evals << " eval(s)):\n    "
                  << (gen.describe ? gen.describe(value) : "<no describe>")
                  << "\n  original:\n    " << original << "\n"
                  << "  repro: " << repro;
    return;
  }
}

}  // namespace kibamrm::prop
