// Property: the linalg-layer building blocks round-trip and mirror each
// other bitwise.
//
//   * Permutation: apply / apply_inverse round-trip exactly, inverse and
//     composition satisfy the group laws, and symmetric conjugation of a
//     matrix preserves every entry.
//   * FusedGatherPlan: the compressed kernel is bit-for-bit the CSR
//     kernel on the same matrix -- for any row range split, any weight,
//     and whatever dispatch tier is active (the contract every engine
//     leans on when it swaps kernels mid-flight).
//   * ScaledExpmCache: the cached-Pade evaluation of exp(sA) matches a
//     fresh expm(sA) to near round-off for any scalar s.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "kibamrm/linalg/csr_matrix.hpp"
#include "kibamrm/linalg/dense_matrix.hpp"
#include "kibamrm/linalg/expm.hpp"
#include "kibamrm/linalg/fused_gather.hpp"
#include "kibamrm/linalg/permutation.hpp"
#include "property/generators.hpp"
#include "property/propgen.hpp"

namespace kibamrm::prop {
namespace {

// ------------------------------------------------------------ permutations

/// A random permutation with a payload vector to push through it.
struct PermCase {
  std::vector<std::uint32_t> new_of_old;
  std::vector<double> data;
};

Gen<PermCase> perm_gen() {
  Gen<PermCase> gen;
  gen.generate = [](common::RandomStream& stream) {
    PermCase value;
    const std::size_t n =
        1 + static_cast<std::size_t>(stream.uniform() * 64.0);
    value.new_of_old.resize(n);
    std::iota(value.new_of_old.begin(), value.new_of_old.end(), 0u);
    // Fisher-Yates off the deterministic stream.
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(stream.uniform() * static_cast<double>(i));
      std::swap(value.new_of_old[i - 1], value.new_of_old[j]);
    }
    value.data.resize(n);
    for (double& x : value.data) x = stream.uniform(-1.0, 1.0);
    return value;
  };
  gen.shrink = [](const PermCase& value) {
    std::vector<PermCase> out;
    const std::size_t n = value.new_of_old.size();
    if (n > 1) {
      // Drop the last slot: delete position n-1 and close the gap its
      // image leaves (every value above it shifts down one) -- always a
      // bijection on {0, ..., n-2}.
      const std::uint32_t dropped_image = value.new_of_old[n - 1];
      PermCase smaller;
      smaller.new_of_old.reserve(n - 1);
      for (std::size_t i = 0; i + 1 < n; ++i) {
        const std::uint32_t image = value.new_of_old[i];
        smaller.new_of_old.push_back(image > dropped_image ? image - 1
                                                           : image);
      }
      smaller.data.assign(value.data.begin(), value.data.end() - 1);
      out.push_back(std::move(smaller));
    }
    return out;
  };
  gen.describe = [](const PermCase& value) {
    std::ostringstream text;
    text << "permutation {";
    for (std::size_t i = 0; i < value.new_of_old.size(); ++i)
      text << (i == 0 ? "" : ", ") << value.new_of_old[i];
    text << "}";
    return text.str();
  };
  return gen;
}

TEST(PermutationProps, RoundTripAndGroupLaws) {
  check<PermCase>(
      "PermutationRoundTrip", perm_gen(), [](const PermCase& value) {
        const linalg::Permutation p(value.new_of_old);
        const linalg::Permutation inv = p.inverse();
        if (!p.then(inv).is_identity())
          return Verdict::fail("p.then(p.inverse()) is not the identity");
        if (!inv.then(p).is_identity())
          return Verdict::fail("p.inverse().then(p) is not the identity");
        const std::vector<double> forward = p.apply(value.data);
        const std::vector<double> back = p.apply_inverse(forward);
        if (back != value.data)
          return Verdict::fail(
              "apply_inverse(apply(v)) is not bitwise v");
        if (inv.apply(forward) != back)
          return Verdict::fail(
              "inverse().apply differs from apply_inverse");
        return Verdict::pass();
      });
}

TEST(PermutationProps, SymmetricConjugationPreservesEntries) {
  CtmcGenOptions options;
  options.family = CtmcFamily::kErgodic;
  check<CtmcCase>(
      "PermutedMatrixEntries", ctmc_gen(options), [](const CtmcCase& value) {
        const markov::Ctmc chain = value.chain();
        const linalg::CsrMatrix& q = chain.generator();
        // Derive a deterministic permutation from the case itself: RCM of
        // the generator pattern (exercises the production path, and stays
        // reproducible under shrinking).
        const linalg::Permutation p =
            linalg::Permutation::reverse_cuthill_mckee(q);
        const linalg::CsrMatrix b = p.permuted(q);
        if (b.nonzeros() != q.nonzeros())
          return Verdict::fail("conjugation changed the entry count");
        const std::size_t n = q.rows();
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            const double original = q.at(i, j);
            const double moved = b.at(p[i], p[j]);
            if (original != moved) {
              std::ostringstream why;
              why << "entry (" << i << "," << j << ") = " << original
                  << " moved to " << moved;
              return Verdict::fail(why.str());
            }
          }
        }
        return Verdict::pass();
      });
}

// -------------------------------------------------------- fused gather plan

/// A random uniformised-transpose matrix with a kernel input: vector x,
/// Poisson weight, and a split point for the range-sharding check.
struct GatherCase {
  CtmcCase base;
  double weight = 0.5;
  double split_fraction = 0.5;

  linalg::CsrMatrix transition_transpose() const {
    const markov::Ctmc chain = base.chain();
    const double rate = 1.02 * chain.max_exit_rate() + 1e-9;
    return chain.generator().uniformized(rate).transposed();
  }
};

Gen<GatherCase> gather_gen() {
  CtmcGenOptions options;
  options.family = CtmcFamily::kErgodic;
  options.min_states = 3;
  options.max_states = 48;
  const Gen<CtmcCase> base = ctmc_gen(options);
  Gen<GatherCase> gen;
  gen.generate = [base](common::RandomStream& stream) {
    GatherCase value;
    value.base = base.generate(stream);
    value.weight = stream.bernoulli(0.2) ? 0.0 : stream.uniform(0.0, 2.0);
    value.split_fraction = stream.uniform();
    return value;
  };
  gen.shrink = [base](const GatherCase& value) {
    std::vector<GatherCase> out;
    for (CtmcCase& smaller : base.shrink(value.base)) {
      GatherCase candidate = value;
      candidate.base = std::move(smaller);
      out.push_back(std::move(candidate));
    }
    if (value.weight != 0.0) {
      GatherCase unweighted = value;
      unweighted.weight = 0.0;
      out.push_back(std::move(unweighted));
    }
    return out;
  };
  gen.describe = [base](const GatherCase& value) {
    std::ostringstream text;
    text << base.describe(value.base) << "; weight=" << value.weight
         << " split=" << value.split_fraction;
    return text.str();
  };
  return gen;
}

TEST(FusedGatherProps, CompressedPlanIsBitwiseTheCsrKernel) {
  check<GatherCase>(
      "FusedGatherParity", gather_gen(), [](const GatherCase& value) {
        const linalg::CsrMatrix matrix = value.transition_transpose();
        const auto plan = linalg::FusedGatherPlan::build(matrix);
        if (!plan.has_value())
          return Verdict::fail("plan refused a small banded matrix");
        const std::size_t n = matrix.rows();
        // The probe vector: the case's initial distribution (exact
        // doubles either way).
        const std::vector<double>& x = value.base.initial;

        std::vector<double> out_csr(n, 0.0), accum_csr(n, 0.25);
        std::vector<double> out_plan(n, 0.0), accum_plan(n, 0.25);
        const double delta_csr = matrix.multiply_fused_range(
            x, out_csr, accum_csr, value.weight, 0, n);
        const double delta_plan = plan->multiply_fused_range(
            x, out_plan, accum_plan, value.weight, 0, n);
        if (out_csr != out_plan)
          return Verdict::fail("plan out differs from CSR out");
        if (accum_csr != accum_plan)
          return Verdict::fail("plan accum differs from CSR accum");
        if (delta_csr != delta_plan)
          return Verdict::fail("plan delta differs from CSR delta");

        // Range sharding: any split reproduces the full-range bits.
        const std::size_t split = std::min<std::size_t>(
            n, static_cast<std::size_t>(value.split_fraction *
                                        static_cast<double>(n + 1)));
        std::vector<double> out_split(n, 0.0), accum_split(n, 0.25);
        const double delta_lo = plan->multiply_fused_range(
            x, out_split, accum_split, value.weight, 0, split);
        const double delta_hi = plan->multiply_fused_range(
            x, out_split, accum_split, value.weight, split, n);
        if (out_split != out_plan)
          return Verdict::fail("split out differs from full-range out");
        if (accum_split != accum_plan)
          return Verdict::fail("split accum differs from full-range accum");
        if (std::max(delta_lo, delta_hi) != delta_plan)
          return Verdict::fail("split deltas do not combine to the "
                               "full-range delta");
        return Verdict::pass();
      });
}

// --------------------------------------------------------- scaled expm cache

struct ExpmCase {
  CtmcCase base;
  double scalar = 1.0;
};

Gen<ExpmCase> expm_gen() {
  CtmcGenOptions options;
  options.family = CtmcFamily::kErgodic;
  options.max_states = 7;
  const Gen<CtmcCase> base = ctmc_gen(options);
  Gen<ExpmCase> gen;
  gen.generate = [base](common::RandomStream& stream) {
    ExpmCase value;
    value.base = base.generate(stream);
    value.scalar = stream.uniform(-3.0, 3.0);
    return value;
  };
  gen.shrink = [base](const ExpmCase& value) {
    std::vector<ExpmCase> out;
    for (CtmcCase& smaller : base.shrink(value.base)) {
      ExpmCase candidate = value;
      candidate.base = std::move(smaller);
      out.push_back(std::move(candidate));
    }
    if (value.scalar != 1.0) {
      ExpmCase unit = value;
      unit.scalar = 1.0;
      out.push_back(unit);
    }
    return out;
  };
  gen.describe = [base](const ExpmCase& value) {
    std::ostringstream text;
    text << base.describe(value.base) << "; s=" << value.scalar;
    return text.str();
  };
  return gen;
}

TEST(ScaledExpmCacheProps, MatchesFreshExpmForAnyScalar) {
  check<ExpmCase>(
      "ScaledExpmCacheParity", expm_gen(), [](const ExpmCase& value) {
        const linalg::DenseReal a = value.base.chain().dense_generator();
        const linalg::ScaledExpmCache cache(a);
        const linalg::DenseReal via_cache = cache.expm(value.scalar);

        linalg::DenseReal scaled(a.rows(), a.cols());
        for (std::size_t i = 0; i < a.rows(); ++i)
          for (std::size_t j = 0; j < a.cols(); ++j)
            scaled(i, j) = value.scalar * a(i, j);
        const linalg::DenseReal fresh = linalg::expm(scaled);

        double max_magnitude = 1.0;
        for (std::size_t i = 0; i < fresh.rows(); ++i)
          for (std::size_t j = 0; j < fresh.cols(); ++j)
            max_magnitude =
                std::max(max_magnitude, std::abs(fresh(i, j)));
        for (std::size_t i = 0; i < fresh.rows(); ++i) {
          for (std::size_t j = 0; j < fresh.cols(); ++j) {
            const double difference =
                std::abs(via_cache(i, j) - fresh(i, j));
            if (difference > 1e-11 * max_magnitude) {
              std::ostringstream why;
              why << "exp(sA)(" << i << "," << j << "): cache "
                  << via_cache(i, j) << " vs fresh " << fresh(i, j)
                  << " (|diff| " << difference << ")";
              return Verdict::fail(why.str());
            }
          }
        }
        return Verdict::pass();
      });
}

}  // namespace
}  // namespace kibamrm::prop
