// Property: bitwise determinism across thread counts x kernel tiers x
// state orderings.
//
// The library's strongest promise: the parallel backend's sharded spmv,
// the pool-sharded Arnoldi, the dispatched kernel tiers and the
// permutation layer all reproduce the single-thread scalar result BIT
// FOR BIT (the mixed tier is excluded by design -- it trades bits for
// throughput).  Orderings change the state numbering, not the chain, so
// within one ordering every (threads, tier) combination must agree
// exactly, and across orderings the solved curves agree within the
// 10-eps tolerance the reordering layer pins.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/linalg/kernels.hpp"
#include "property/generators.hpp"
#include "property/propgen.hpp"

namespace kibamrm::prop {
namespace {

namespace k = linalg::kernels;

/// Restores CPUID dispatch on scope exit, whatever a property pinned.
class DispatchGuard {
 public:
  ~DispatchGuard() { k::clear_dispatch(); }
};

/// The bitwise-contract double tiers this machine can execute.
std::vector<k::Dispatch> double_tiers() {
  std::vector<k::Dispatch> tiers = {k::Dispatch::kScalar};
  if (k::detected_dispatch() != k::Dispatch::kScalar)
    tiers.push_back(k::detected_dispatch());
  return tiers;
}

Verdict bitwise_equal(const std::vector<std::vector<double>>& reference,
                      const std::vector<std::vector<double>>& candidate,
                      const std::string& label) {
  for (std::size_t point = 0; point < reference.size(); ++point) {
    for (std::size_t i = 0; i < reference[point].size(); ++i) {
      if (reference[point][i] != candidate[point][i]) {
        std::ostringstream why;
        why << label << ": point " << point << " state " << i
            << " differs: " << reference[point][i] << " vs "
            << candidate[point][i];
        return Verdict::fail(why.str());
      }
    }
  }
  return Verdict::pass();
}

TEST(Determinism, ParallelBackendBitwiseAcrossThreadCounts) {
  // Chains dense enough that plan_gather_shards actually engages the
  // ThreadPool (>= ~16k stored entries); a small-chain run would pass
  // vacuously through the inline path.
  CtmcGenOptions options;
  options.family = CtmcFamily::kErgodic;
  options.min_states = 240;
  options.max_states = 300;
  options.max_time_points = 2;
  options.max_rate_time_product = 250.0;
  check<CtmcCase>(
      "ParallelBitwiseAcrossThreads", ctmc_gen(options),
      [](const CtmcCase& value) {
        const markov::Ctmc chain = value.chain();
        if (chain.generator().nonzeros() < 16384)
          return Verdict::pass();  // inline path; nothing to shard
        std::vector<std::vector<std::vector<double>>> runs;
        for (const std::size_t threads : {1, 2, 4}) {
          auto backend =
              engine::make_backend("parallel", {.threads = threads});
          runs.push_back(
              backend->solve(chain, value.initial, value.times));
        }
        for (std::size_t run = 1; run < runs.size(); ++run) {
          Verdict verdict = bitwise_equal(
              runs[0], runs[run],
              "threads=1 vs threads=" + std::to_string(run == 1 ? 2 : 4));
          if (!verdict.ok) return verdict;
        }
        return Verdict::pass();
      });
}

TEST(Determinism, KrylovBackendBitwiseAcrossThreadCounts) {
  // The pool-sharded CGS2 orthogonalisation must stay on the fixed-block
  // reduction contract: krylov at 1/2/4 threads is bitwise one solve.
  CtmcGenOptions options;
  options.family = CtmcFamily::kErgodic;
  options.min_states = 40;
  options.max_states = 120;
  options.max_time_points = 2;
  options.max_rate_time_product = 400.0;
  check<CtmcCase>(
      "KrylovBitwiseAcrossThreads", ctmc_gen(options),
      [](const CtmcCase& value) {
        const markov::Ctmc chain = value.chain();
        std::vector<std::vector<std::vector<double>>> runs;
        for (const std::size_t threads : {1, 2, 4}) {
          auto backend =
              engine::make_backend("krylov", {.threads = threads});
          runs.push_back(
              backend->solve(chain, value.initial, value.times));
        }
        for (std::size_t run = 1; run < runs.size(); ++run) {
          Verdict verdict =
              bitwise_equal(runs[0], runs[run], "krylov thread variation");
          if (!verdict.ok) return verdict;
        }
        return Verdict::pass();
      });
}

TEST(Determinism, ScenarioBitwiseAcrossThreadsAndTiersPerOrdering) {
  // The full cross product on expanded battery chains: for each state
  // ordering, every (threads, double tier) combination solves the same
  // bits; across orderings the grid-order distributions agree within
  // 10 eps (the reordering layer's documented tolerance).
  const double epsilon = 1e-10;
  check<ScenarioCase>(
      "ScenarioThreadsTiersOrderings", scenario_gen(),
      [epsilon](const ScenarioCase& value) {
        DispatchGuard guard;
        const core::KibamRmModel model = value.model();
        std::vector<std::vector<std::vector<double>>> per_ordering_grid;
        for (const core::StateOrdering ordering :
             {core::StateOrdering::kNone, core::StateOrdering::kLevel,
              core::StateOrdering::kRcm}) {
          const auto expanded =
              core::build_expanded_chain(model, value.delta, ordering);
          std::vector<std::vector<std::vector<double>>> runs;
          for (const k::Dispatch tier : double_tiers()) {
            k::set_dispatch(tier);
            for (const std::size_t threads : {1, 2}) {
              auto backend = engine::make_backend(
                  "parallel", {.epsilon = epsilon, .threads = threads});
              runs.push_back(backend->solve(expanded.chain,
                                            expanded.initial,
                                            value.times));
            }
          }
          k::clear_dispatch();
          for (std::size_t run = 1; run < runs.size(); ++run) {
            Verdict verdict = bitwise_equal(
                runs[0], runs[run],
                std::string("ordering ") +
                    std::string(core::state_ordering_name(ordering)) +
                    " run " + std::to_string(run));
            if (!verdict.ok) return verdict;
          }
          // Back to grid order for the cross-ordering comparison.
          std::vector<std::vector<double>> grid_order;
          for (const auto& pi : runs[0])
            grid_order.push_back(expanded.to_grid_order(pi));
          per_ordering_grid.push_back(std::move(grid_order));
        }
        for (std::size_t o = 1; o < per_ordering_grid.size(); ++o) {
          for (std::size_t point = 0;
               point < per_ordering_grid[0].size(); ++point) {
            for (std::size_t i = 0;
                 i < per_ordering_grid[0][point].size(); ++i) {
              const double difference =
                  std::abs(per_ordering_grid[0][point][i] -
                           per_ordering_grid[o][point][i]);
              if (difference > 10.0 * epsilon) {
                std::ostringstream why;
                why << "ordering " << o << " point " << point
                    << " state " << i << ": |diff| " << difference
                    << " > 10 eps";
                return Verdict::fail(why.str());
              }
            }
          }
        }
        return Verdict::pass();
      });
}

TEST(Determinism, OocBackendBitwiseAcrossTileSizesAndThreads) {
  // The out-of-core stream adds two more axes the bits must survive: the
  // tile partition of the spill file and the IO/compute pipeline's lane
  // count.  Every (tile_bytes, threads) combination must reproduce the
  // in-memory parallel backend's single-thread result exactly -- tiny
  // tiles force genuinely multi-tile streams on these small chains.
  CtmcGenOptions options;
  options.family = CtmcFamily::kErgodic;
  options.min_states = 60;
  options.max_states = 160;
  options.max_time_points = 2;
  options.max_rate_time_product = 250.0;
  check<CtmcCase>(
      "OocBitwiseAcrossTilesAndThreads", ctmc_gen(options),
      [](const CtmcCase& value) {
        const markov::Ctmc chain = value.chain();
        auto reference = engine::make_backend("parallel", {.threads = 1});
        const auto baseline =
            reference->solve(chain, value.initial, value.times);
        for (const std::size_t tile_bytes :
             {std::size_t{4096}, std::size_t{1} << 20}) {
          for (const std::size_t threads : {std::size_t{1},
                                            std::size_t{2}}) {
            auto backend = engine::make_backend(
                "ooc", {.threads = threads, .tile_bytes = tile_bytes});
            const auto run =
                backend->solve(chain, value.initial, value.times);
            Verdict verdict = bitwise_equal(
                baseline, run,
                "ooc tile_bytes=" + std::to_string(tile_bytes) +
                    " threads=" + std::to_string(threads));
            if (!verdict.ok) return verdict;
          }
        }
        return Verdict::pass();
      });
}

TEST(Determinism, ShardedBitwiseAcrossShardCounts) {
  // The multi-process axis: the sharded backend forks workers that
  // exchange halo rows per DTMC step, and any shard count must reproduce
  // the in-process parallel backend's single-thread result exactly --
  // the band partition and the exchange schedule move work between
  // processes, never a bit of the arithmetic.  Shards x inner threads
  // are both varied so the per-worker pool split is covered too.
  CtmcGenOptions options;
  options.family = CtmcFamily::kErgodic;
  options.min_states = 60;
  options.max_states = 160;
  options.max_time_points = 2;
  options.max_rate_time_product = 250.0;
  check<CtmcCase>(
      "ShardedBitwiseAcrossShards", ctmc_gen(options),
      [](const CtmcCase& value) {
        const markov::Ctmc chain = value.chain();
        auto reference = engine::make_backend("parallel", {.threads = 1});
        const auto baseline =
            reference->solve(chain, value.initial, value.times);
        for (const std::size_t shards :
             {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
          const std::size_t threads = shards == 2 ? 2 : 1;
          auto backend = engine::make_backend(
              "sharded", {.threads = threads, .shards = shards});
          const auto run =
              backend->solve(chain, value.initial, value.times);
          Verdict verdict = bitwise_equal(
              baseline, run,
              "sharded shards=" + std::to_string(shards) +
                  " threads=" + std::to_string(threads));
          if (!verdict.ok) return verdict;
        }
        return Verdict::pass();
      });
}

TEST(Determinism, RepeatedSolveIsBitwiseStable) {
  // Run-to-run determinism of one configuration (the cheapest and most
  // load-bearing form: caches warmed by the first solve must not change
  // the second).
  check<ScenarioCase>(
      "RepeatedSolveStable", scenario_gen(),
      [](const ScenarioCase& value) {
        const auto expanded =
            core::build_expanded_chain(value.model(), value.delta);
        auto backend = engine::make_backend("uniformization");
        const auto first =
            backend->solve(expanded.chain, expanded.initial, value.times);
        const auto second =
            backend->solve(expanded.chain, expanded.initial, value.times);
        return bitwise_equal(first, second, "first vs second solve");
      });
}

}  // namespace
}  // namespace kibamrm::prop
