#include "property/generators.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "kibamrm/workload/onoff_model.hpp"

namespace kibamrm::prop {

namespace {

std::size_t uniform_index(common::RandomStream& stream, std::size_t lo,
                          std::size_t hi) {
  // Inclusive bounds; the double has 53 bits, plenty for these ranges.
  return lo + static_cast<std::size_t>(stream.uniform() *
                                       static_cast<double>(hi - lo + 1));
}

/// Sorted, strictly increasing, strictly positive time grid with at most
/// `max_points` points in (0, t_max].
std::vector<double> draw_times(common::RandomStream& stream, double t_max,
                               std::size_t max_points) {
  const std::size_t count = uniform_index(stream, 1, max_points);
  std::vector<double> times(count);
  for (double& t : times) t = stream.uniform(0.05 * t_max, t_max);
  std::sort(times.begin(), times.end());
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (times[i] <= times[i - 1]) times[i] = times[i - 1] * (1.0 + 1e-9);
  }
  return times;
}

/// Shrink candidates for a time grid: last point only, then first half.
template <typename Case>
void push_time_shrinks(const Case& value, std::vector<Case>& out) {
  if (value.times.size() > 1) {
    Case last = value;
    last.times = {value.times.back()};
    out.push_back(std::move(last));
    Case half = value;
    half.times.resize(value.times.size() / 2);
    out.push_back(std::move(half));
  }
}

double round_to_one_digit(double value) {
  if (value == 0.0) return 0.0;
  const double magnitude = std::pow(10.0, std::floor(std::log10(value)));
  return std::round(value / magnitude) * magnitude;
}

std::string compact(double value) {
  std::ostringstream text;
  text.precision(17);
  text << value;
  return text.str();
}

}  // namespace

std::string_view ctmc_family_name(CtmcFamily family) {
  switch (family) {
    case CtmcFamily::kErgodic: return "ergodic";
    case CtmcFamily::kAbsorbing: return "absorbing";
    case CtmcFamily::kStiff: return "stiff";
    case CtmcFamily::kNearDegenerate: return "near-degenerate";
  }
  return "?";
}

markov::Ctmc CtmcCase::chain() const {
  return markov::ctmc_from_rates(rates);
}

Gen<CtmcCase> ctmc_gen(const CtmcGenOptions& options) {
  Gen<CtmcCase> gen;

  gen.generate = [options](common::RandomStream& stream) {
    CtmcCase value;
    value.family = options.family;
    const std::size_t n =
        uniform_index(stream, options.min_states, options.max_states);
    value.rates.assign(n, std::vector<double>(n, 0.0));

    const double scale = std::pow(10.0, stream.uniform(-1.0, 1.0));
    const auto plain_rate = [&] {
      return scale * std::pow(10.0, stream.uniform(-0.7, 0.7));
    };
    const auto stiff_rate = [&] {
      const double half = options.stiff_decades / 2.0;
      return scale * std::pow(10.0, stream.uniform(-half, half));
    };

    switch (options.family) {
      case CtmcFamily::kErgodic:
        for (std::size_t i = 0; i < n; ++i)
          value.rates[i][(i + 1) % n] = plain_rate();
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j < n; ++j)
            if (i != j && value.rates[i][j] == 0.0 &&
                stream.bernoulli(0.3))
              value.rates[i][j] = plain_rate();
        break;
      case CtmcFamily::kAbsorbing:
        // Chain path to the absorbing last state; extra edges only out of
        // the transient states, so the last row stays all-zero.
        for (std::size_t i = 0; i + 1 < n; ++i)
          value.rates[i][i + 1] = plain_rate();
        for (std::size_t i = 0; i + 1 < n; ++i)
          for (std::size_t j = 0; j < n; ++j)
            if (i != j && value.rates[i][j] == 0.0 &&
                stream.bernoulli(0.3))
              value.rates[i][j] = plain_rate();
        break;
      case CtmcFamily::kStiff:
        for (std::size_t i = 0; i < n; ++i)
          value.rates[i][(i + 1) % n] = stiff_rate();
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j < n; ++j)
            if (i != j && value.rates[i][j] == 0.0 &&
                stream.bernoulli(0.3))
              value.rates[i][j] = stiff_rate();
        break;
      case CtmcFamily::kNearDegenerate: {
        // Two internally-connected blocks, coupled ~9 decades below the
        // working rates: the spectrum has a near-zero second eigenvalue.
        const std::size_t n1 = std::max<std::size_t>(1, n / 2);
        const auto ring = [&](std::size_t begin, std::size_t end) {
          if (end - begin < 2) return;
          for (std::size_t i = begin; i < end; ++i) {
            const std::size_t next = i + 1 == end ? begin : i + 1;
            value.rates[i][next] = plain_rate();
          }
        };
        ring(0, n1);
        ring(n1, n);
        if (n1 < n) {
          value.rates[n1 - 1][n1] = scale * 1e-9;
          value.rates[n - 1][0] = scale * 1e-9;
        }
        break;
      }
    }

    // Initial distribution: a unit vector or a random dense distribution.
    value.initial.assign(n, 0.0);
    if (stream.bernoulli(options.random_initial_probability)) {
      double total = 0.0;
      for (double& p : value.initial) total += (p = stream.exponential(1.0));
      for (double& p : value.initial) p /= total;
    } else {
      value.initial[uniform_index(stream, 0, n - 1)] = 1.0;
    }

    // Time grid scaled against the uniformisation step count q * t.
    double q_max = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double exit = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        if (i != j) exit += value.rates[i][j];
      q_max = std::max(q_max, exit);
    }
    const double t_max = stream.uniform(0.2, 1.0) *
                         options.max_rate_time_product /
                         std::max(q_max, 1e-300);
    value.times = draw_times(stream, t_max, options.max_time_points);
    return value;
  };

  gen.shrink = [](const CtmcCase& value) {
    std::vector<CtmcCase> out;
    const std::size_t n = value.states();

    // Delete one state (the biggest reduction first).  Strided so large
    // chains propose a bounded number of (bounded-size) candidates.
    if (n > 2) {
      const std::size_t stride = std::max<std::size_t>(1, n / 16);
      for (std::size_t remove = 0; remove < n; remove += stride) {
        CtmcCase smaller = value;
        smaller.rates.erase(smaller.rates.begin() +
                            static_cast<std::ptrdiff_t>(remove));
        for (auto& row : smaller.rates)
          row.erase(row.begin() + static_cast<std::ptrdiff_t>(remove));
        smaller.initial.erase(smaller.initial.begin() +
                              static_cast<std::ptrdiff_t>(remove));
        double total = 0.0;
        for (double p : smaller.initial) total += p;
        if (total <= 0.0) {
          smaller.initial.assign(n - 1, 0.0);
          smaller.initial[0] = 1.0;
        } else {
          for (double& p : smaller.initial) p /= total;
        }
        out.push_back(std::move(smaller));
      }
    }

    push_time_shrinks(value, out);

    // Zero one off-diagonal entry (bounded fan-out).
    std::size_t zeroed = 0;
    for (std::size_t i = 0; i < n && zeroed < 24; ++i) {
      for (std::size_t j = 0; j < n && zeroed < 24; ++j) {
        if (i == j || value.rates[i][j] == 0.0) continue;
        CtmcCase sparser = value;
        sparser.rates[i][j] = 0.0;
        out.push_back(std::move(sparser));
        ++zeroed;
      }
    }

    // Round every rate to one significant digit, then to exactly 1.
    CtmcCase rounded = value;
    bool changed = false;
    for (auto& row : rounded.rates)
      for (double& rate : row) {
        const double r = round_to_one_digit(rate);
        changed |= r != rate;
        rate = r;
      }
    if (changed) out.push_back(std::move(rounded));
    CtmcCase ones = value;
    changed = false;
    for (auto& row : ones.rates)
      for (double& rate : row) {
        if (rate != 0.0 && rate != 1.0) {
          rate = 1.0;
          changed = true;
        }
      }
    if (changed) out.push_back(std::move(ones));

    // Collapse a dense initial distribution to its heaviest state.
    const auto heaviest = std::max_element(value.initial.begin(),
                                           value.initial.end());
    if (*heaviest != 1.0) {
      CtmcCase unit = value;
      unit.initial.assign(n, 0.0);
      unit.initial[static_cast<std::size_t>(
          heaviest - value.initial.begin())] = 1.0;
      out.push_back(std::move(unit));
    }
    return out;
  };

  gen.describe = [](const CtmcCase& value) {
    std::ostringstream text;
    text << ctmc_family_name(value.family) << " chain, "
         << value.states() << " states; rates {";
    bool first = true;
    for (std::size_t i = 0; i < value.states(); ++i)
      for (std::size_t j = 0; j < value.states(); ++j)
        if (i != j && value.rates[i][j] != 0.0) {
          text << (first ? "" : ", ") << i << "->" << j << ":"
               << compact(value.rates[i][j]);
          first = false;
        }
    text << "}; initial {";
    for (std::size_t i = 0; i < value.initial.size(); ++i)
      text << (i == 0 ? "" : ", ") << compact(value.initial[i]);
    text << "}; times {";
    for (std::size_t i = 0; i < value.times.size(); ++i)
      text << (i == 0 ? "" : ", ") << compact(value.times[i]);
    text << "}";
    return text.str();
  };

  return gen;
}

core::KibamRmModel ScenarioCase::model() const {
  const double y1 = levels_available * delta;
  const double y2 = levels_bound * delta;
  return core::KibamRmModel(
      workload::make_onoff_model({.frequency = frequency,
                                  .erlang_k = erlang_k,
                                  .on_current = on_current}),
      {.capacity = y1 + y2,
       .available_fraction = y1 / (y1 + y2),
       .flow_constant = flow_constant},
      y1, y2);
}

Gen<ScenarioCase> scenario_gen(const ScenarioGenOptions& options) {
  Gen<ScenarioCase> gen;

  gen.generate = [options](common::RandomStream& stream) {
    ScenarioCase value;
    value.delta = std::pow(10.0, stream.uniform(1.0, 2.5));
    value.levels_available = static_cast<std::uint32_t>(
        uniform_index(stream, 2, options.max_levels_available));
    value.levels_bound = static_cast<std::uint32_t>(
        uniform_index(stream, 1, options.max_levels_bound));
    value.flow_constant = std::pow(10.0, stream.uniform(-6.0, -3.0));
    value.on_current = stream.uniform(0.3, 3.0);
    value.frequency = std::pow(10.0, stream.uniform(-1.0, 1.0));
    value.erlang_k =
        static_cast<int>(uniform_index(stream, 1, options.max_erlang_k));
    // Lifetime scale at ~50% duty; the grid spans ramp-up to depletion.
    const double capacity =
        (value.levels_available + value.levels_bound) * value.delta;
    const double horizon = capacity / (0.5 * value.on_current);
    value.times = draw_times(stream, stream.uniform(0.8, 1.6) * horizon,
                             options.max_time_points);
    return value;
  };

  gen.shrink = [](const ScenarioCase& value) {
    std::vector<ScenarioCase> out;
    if (value.levels_available > 2) {
      ScenarioCase smaller = value;
      smaller.levels_available = value.levels_available - 1;
      out.push_back(smaller);
    }
    if (value.levels_bound > 1) {
      ScenarioCase smaller = value;
      smaller.levels_bound = value.levels_bound - 1;
      out.push_back(smaller);
    }
    push_time_shrinks(value, out);
    if (value.erlang_k != 1) {
      ScenarioCase simpler = value;
      simpler.erlang_k = 1;
      out.push_back(simpler);
    }
    if (value.frequency != 1.0) {
      ScenarioCase simpler = value;
      simpler.frequency = 1.0;
      out.push_back(simpler);
    }
    if (value.on_current != 1.0) {
      ScenarioCase simpler = value;
      simpler.on_current = 1.0;
      out.push_back(simpler);
    }
    if (value.flow_constant != 0.0) {
      ScenarioCase frozen = value;
      frozen.flow_constant = 0.0;
      out.push_back(frozen);
    }
    const double rounded_delta = round_to_one_digit(value.delta);
    if (rounded_delta != value.delta) {
      ScenarioCase simpler = value;
      simpler.delta = rounded_delta;
      out.push_back(simpler);
    }
    return out;
  };

  gen.describe = [](const ScenarioCase& value) {
    std::ostringstream text;
    text << "scenario delta=" << compact(value.delta)
         << " levels=(" << value.levels_available << ","
         << value.levels_bound << ") k=" << compact(value.flow_constant)
         << " I_on=" << compact(value.on_current)
         << " f=" << compact(value.frequency)
         << " erlang_k=" << value.erlang_k << " times {";
    for (std::size_t i = 0; i < value.times.size(); ++i)
      text << (i == 0 ? "" : ", ") << compact(value.times[i]);
    text << "}";
    return text.str();
  };

  return gen;
}

Gen<std::vector<double>> time_grid_gen(double t_min, double t_max,
                                       std::size_t max_points) {
  Gen<std::vector<double>> gen;
  gen.generate = [t_min, t_max, max_points](common::RandomStream& stream) {
    std::vector<double> times =
        draw_times(stream, stream.uniform(t_min, t_max), max_points);
    return times;
  };
  gen.shrink = [](const std::vector<double>& value) {
    std::vector<std::vector<double>> out;
    if (value.size() > 1) {
      out.push_back({value.back()});
      out.push_back(std::vector<double>(value.begin(),
                                        value.begin() + value.size() / 2));
    }
    return out;
  };
  gen.describe = [](const std::vector<double>& value) {
    std::ostringstream text;
    text << "times {";
    for (std::size_t i = 0; i < value.size(); ++i)
      text << (i == 0 ? "" : ", ") << compact(value[i]);
    text << "}";
    return text.str();
  };
  return gen;
}

}  // namespace kibamrm::prop
