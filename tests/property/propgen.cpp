#include "property/propgen.hpp"

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

namespace kibamrm::prop {

namespace {

// The ctest registration name is the binary name (one gtest binary per
// tests/*.cpp), so the repro line regexes on it.  /proc/self/exe is fine:
// the library is Linux-only (the CI matrix and the SIMD tiers already
// assume it).
std::string binary_name() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return "test_prop";
  buffer[n] = '\0';
  const std::string path(buffer);
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::uint64_t base_seed() {
  static const std::uint64_t seed =
      common::seed_from_env("KIBAMRM_PROP_SEED").value_or(
          0x6B6962616D726DULL);  // "kibamrm"
  return seed;
}

std::size_t default_iterations() {
  static const std::size_t iterations = static_cast<std::size_t>(
      common::seed_from_env("KIBAMRM_PROP_ITERS").value_or(200));
  return iterations;
}

std::string repro_line(std::uint64_t seed_base, std::size_t iteration) {
  std::ostringstream line;
  line << "KIBAMRM_PROP_SEED=0x" << std::hex << seed_base << std::dec
       << " KIBAMRM_PROP_ITERS=" << iteration + 1 << " ctest -R "
       << binary_name() << " --output-on-failure";
  return line.str();
}

void record_failing_seed(const std::string& line) {
  const char* dir = std::getenv("KIBAMRM_PROP_ARTIFACT_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  // Serialise appends within the process; concurrent test binaries append
  // whole lines through O_APPEND semantics of ofstream::app.
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  std::ofstream out(std::string(dir) + "/failing_seeds.txt",
                    std::ios::app);
  out << line << '\n';
}

}  // namespace kibamrm::prop
