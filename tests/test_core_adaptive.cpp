// Tests for reward-inhomogeneous (charge-adaptive) workload rates: the
// Q(y1, y2) generality of Sec. 4.1, exercised through a throttling policy.
#include <gtest/gtest.h>

#include "kibamrm/common/error.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/exact_c1.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/workload/simple_model.hpp"

namespace kibamrm::core {
namespace {

KibamRmModel plain_model() {
  return KibamRmModel(workload::make_simple_model(),
                      {.capacity = 800.0, .available_fraction = 1.0,
                       .flow_constant = 0.0});
}

// Throttle: halve the idle->send arrival rate once the available charge
// drops below the threshold.
KibamRmModel throttled_model(double threshold, double factor) {
  KibamRmModel model = plain_model();
  const auto send = static_cast<std::size_t>(workload::SimpleState::kSend);
  model.set_rate_modifier(
      [threshold, factor, send](std::size_t /*from*/, std::size_t to,
                                double y1, double /*y2*/) {
        if (to == send && y1 < threshold) return factor;
        return 1.0;
      },
      1.0);
  return model;
}

TEST(AdaptiveWorkload, ModifierValidation) {
  KibamRmModel model = plain_model();
  EXPECT_THROW(model.set_rate_modifier(nullptr), InvalidArgument);
  EXPECT_THROW(model.set_rate_modifier(
                   [](std::size_t, std::size_t, double, double) {
                     return 1.0;
                   },
                   0.0),
               InvalidArgument);
  EXPECT_FALSE(model.has_rate_modifier());
  model.set_rate_modifier(
      [](std::size_t, std::size_t, double, double) { return 0.5; }, 1.0);
  EXPECT_TRUE(model.has_rate_modifier());
}

TEST(AdaptiveWorkload, UnitModifierLeavesCurveUnchanged) {
  const auto times = uniform_grid(2.0, 30.0, 29);
  MarkovianApproximation base(plain_model(), {.delta = 10.0});
  const LifetimeCurve reference = base.solve(times);

  KibamRmModel unit = plain_model();
  unit.set_rate_modifier(
      [](std::size_t, std::size_t, double, double) { return 1.0; }, 1.0);
  MarkovianApproximation same(unit, {.delta = 10.0});
  EXPECT_LT(same.solve(times).max_difference(reference), 1e-12);
}

TEST(AdaptiveWorkload, ModifierOutsideBoundRejectedAtBuild) {
  KibamRmModel model = plain_model();
  model.set_rate_modifier(
      [](std::size_t, std::size_t, double, double) { return 2.0; }, 1.0);
  EXPECT_THROW(MarkovianApproximation(model, {.delta = 10.0}),
               InvalidArgument);
}

TEST(AdaptiveWorkload, ThrottlingExtendsLifetime) {
  const auto times = uniform_grid(2.0, 40.0, 39);
  MarkovianApproximation base(plain_model(), {.delta = 10.0});
  const LifetimeCurve plain = base.solve(times);
  MarkovianApproximation throttled(throttled_model(400.0, 0.25),
                                   {.delta = 10.0});
  const LifetimeCurve adaptive = throttled.solve(times);
  EXPECT_GT(adaptive.median(), plain.median() + 0.5);
  // The adaptive curve is right of the plain one wherever it matters.
  for (double t : {10.0, 15.0, 20.0, 25.0}) {
    EXPECT_LE(adaptive.probability_at(t), plain.probability_at(t) + 1e-9)
        << "t=" << t;
  }
}

TEST(AdaptiveWorkload, StrongerThrottleExtendsMore) {
  const auto times = uniform_grid(2.0, 60.0, 59);
  MarkovianApproximation mild(throttled_model(400.0, 0.5), {.delta = 10.0});
  MarkovianApproximation strong(throttled_model(400.0, 0.1), {.delta = 10.0});
  EXPECT_GT(strong.solve(times).median(), mild.solve(times).median());
}

TEST(AdaptiveWorkload, SimulatorAgreesWithApproximation) {
  // The thinning simulator and the level-expanded chain must agree on the
  // adaptive model (coarse tolerance: Delta bias + MC noise).
  const auto times = uniform_grid(2.0, 40.0, 39);
  const KibamRmModel model = throttled_model(400.0, 0.25);
  MarkovianApproximation approx(model, {.delta = 2.0});
  const LifetimeCurve curve = approx.solve(times);
  MonteCarloSimulator sim(model, {.replications = 2000, .seed = 31});
  const LifetimeCurve mc = sim.empty_probability_curve(times);
  EXPECT_LT(curve.max_difference(mc), 0.05);
  EXPECT_NEAR(curve.median(), mc.median(), 0.6);
}

TEST(AdaptiveWorkload, ExactSolverRejectsModifiers) {
  const KibamRmModel model = throttled_model(400.0, 0.5);
  EXPECT_THROW(ExactC1Solver solver(model), InvalidArgument);
}

TEST(AdaptiveWorkload, ZeroModifierDisablesTransition) {
  // Forbid sending entirely below the threshold.  Below it the sleep state
  // loses its only exit (sleep -> send), so a device that falls asleep
  // there stays asleep drawing nothing: a positive fraction of batteries
  // never dies and the CDF plateaus strictly below 1.
  const auto times = uniform_grid(2.0, 200.0, 99);
  MarkovianApproximation blocked(throttled_model(400.0, 0.0),
                                 {.delta = 10.0});
  const LifetimeCurve curve = blocked.solve(times);
  const double plateau = curve.probabilities().back();
  EXPECT_LT(plateau, 0.9);
  EXPECT_GT(plateau, 0.0);
  // The plateau is reached: the last two grid values are ~equal.
  EXPECT_NEAR(plateau,
              curve.probability_at(times[times.size() / 2]), 0.05);
  // The plain model, in contrast, is surely dead long before the horizon.
  MarkovianApproximation base(plain_model(), {.delta = 10.0});
  EXPECT_GT(base.solve(times).probabilities().back(), 0.999);
}

}  // namespace
}  // namespace kibamrm::core
