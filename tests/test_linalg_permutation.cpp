// Property tests for the state-reordering permutation layer: the
// permutation algebra itself (bijection validation, inverse, composition,
// edge cases), symmetric matrix permutation, the RCM bandwidth heuristic
// on the real fig8 chain, and the end-to-end invariants the reorder flag
// promises -- the transient distribution does not depend on the state
// numbering (within the solver's 10 eps agreement budget), and the
// inverse-permuted curves stay bitwise deterministic across thread
// counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/linalg/csr_matrix.hpp"
#include "kibamrm/linalg/permutation.hpp"
#include "kibamrm/markov/ctmc.hpp"
#include "kibamrm/markov/uniformization.hpp"
#include "kibamrm/workload/onoff_model.hpp"

namespace kibamrm {
namespace {

using linalg::CooBuilder;
using linalg::CsrMatrix;
using linalg::Permutation;

core::KibamRmModel fig8_model() {
  return core::KibamRmModel(
      workload::make_onoff_model(
          {.frequency = 1.0, .erlang_k = 1, .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
}

Permutation random_permutation(std::size_t n, unsigned seed) {
  std::vector<std::uint32_t> p(n);
  std::iota(p.begin(), p.end(), 0u);
  std::mt19937 rng(seed);
  std::shuffle(p.begin(), p.end(), rng);
  return Permutation(std::move(p));
}

TEST(Permutation, EmptyIdentitySingletonEdgeCases) {
  const Permutation empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.is_identity());
  EXPECT_TRUE(empty.apply({}).empty());
  EXPECT_TRUE(empty.apply_inverse({}).empty());

  const Permutation one = Permutation::identity(1);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_TRUE(one.is_identity());
  EXPECT_EQ(one.apply({3.5}), std::vector<double>{3.5});

  const Permutation id = Permutation::identity(5);
  EXPECT_TRUE(id.is_identity());
  EXPECT_TRUE(id.inverse().is_identity());
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_EQ(id.apply(v), v);
  EXPECT_EQ(id.apply_inverse(v), v);
}

TEST(Permutation, RejectsNonBijections) {
  EXPECT_THROW(Permutation({0, 0, 1}), InvalidArgument);
  EXPECT_THROW(Permutation({1, 2, 3}), InvalidArgument);  // out of range
}

TEST(Permutation, InverseAndCompositionRoundTrip) {
  const Permutation p = random_permutation(257, 1);
  const Permutation inv = p.inverse();
  EXPECT_TRUE(p.then(inv).is_identity());
  EXPECT_TRUE(inv.then(p).is_identity());

  std::vector<double> v(257);
  std::mt19937 rng(2);
  std::uniform_real_distribution<double> uniform(-1.0, 1.0);
  for (double& x : v) x = uniform(rng);
  EXPECT_EQ(p.apply_inverse(p.apply(v)), v);
  EXPECT_EQ(inv.apply(v), p.apply_inverse(v));
}

TEST(Permutation, SymmetricMatrixPermutationPreservesEntries) {
  const std::size_t n = 64;
  CooBuilder builder(n, n);
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> uniform(0.1, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, (i + 7) % n, uniform(rng));
    builder.add(i, (i * 3 + 1) % n, uniform(rng));
  }
  const CsrMatrix a = builder.build();
  const Permutation p = random_permutation(n, 4);
  const CsrMatrix b = p.permuted(a);
  EXPECT_EQ(b.nonzeros(), a.nonzeros());
  // Entry-by-entry: B(p[i], p[j]) == A(i, j), checked through dense probes.
  std::vector<double> e(n, 0.0), row_a(n, 0.0), row_b(n, 0.0);
  for (std::size_t i = 0; i < n; i += 13) {
    std::vector<double> x(n, 0.0);
    x[i] = 1.0;  // row i of A via e_i^T A
    a.left_multiply(x, row_a);
    std::vector<double> y(n, 0.0);
    y[p[i]] = 1.0;
    b.left_multiply(y, row_b);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(row_b[p[j]], row_a[j]) << i << "," << j;
    }
  }
}

// The matrix the fused uniformisation loop actually iterates: the
// transpose of the uniformised generator, compacted to the reachable
// closure of the initial support.
linalg::CsrMatrix compacted_transpose(const core::ExpandedChain& expanded) {
  const CsrMatrix p = expanded.chain.generator().uniformized(
      1.02 * expanded.chain.max_exit_rate());
  std::vector<std::uint32_t> seeds;
  for (std::size_t i = 0; i < expanded.initial.size(); ++i) {
    if (expanded.initial[i] != 0.0) {
      seeds.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return p.transposed_submatrix(p.reachable_rows(seeds));
}

TEST(Permutation, RcmReducesFig8Bandwidth) {
  // The point of the RCM option: on the matrix the solver iterates (the
  // compacted transpose of the real expanded battery chain) the natural
  // numbering's bandwidth must at least halve.
  const auto natural =
      core::build_expanded_chain(fig8_model(), 50.0,
                                 core::StateOrdering::kNone);
  const auto rcm = core::build_expanded_chain(fig8_model(), 50.0,
                                              core::StateOrdering::kRcm);
  const auto stats_nat =
      linalg::structure_stats(compacted_transpose(natural));
  const auto stats_rcm = linalg::structure_stats(compacted_transpose(rcm));
  EXPECT_LT(stats_rcm.bandwidth, stats_nat.bandwidth);
  EXPECT_LE(stats_rcm.bandwidth, stats_nat.bandwidth / 2);
  // And the level ordering, whose goal is runs rather than bandwidth,
  // must raise the groupable-row fraction to (nearly) everything.
  const auto level = core::build_expanded_chain(
      fig8_model(), 50.0, core::StateOrdering::kLevel);
  const auto stats_level =
      linalg::structure_stats(compacted_transpose(level));
  EXPECT_GT(stats_level.groupable_fraction(), 0.95);
  EXPECT_GT(stats_level.groupable_fraction(),
            stats_nat.groupable_fraction());
}

TEST(Permutation, TransientDistributionInvariantUnderAnyPermutation) {
  // Permuting generator and initial together and inverse-permuting the
  // result is a pure renumbering: the distribution must agree with the
  // unpermuted solve within the solver's agreement budget (10 eps).
  const auto expanded =
      core::build_expanded_chain(fig8_model(), 100.0,
                                 core::StateOrdering::kNone);
  const std::size_t n = expanded.chain.state_count();
  const markov::TransientOptions options{.epsilon = 1e-10};
  markov::TransientSolver reference(expanded.chain, options);
  const auto base = reference.solve(expanded.initial, {9000.0}).front();

  for (const unsigned seed : {5u, 6u}) {
    const Permutation p = random_permutation(n, seed);
    const markov::Ctmc permuted_chain(p.permuted(expanded.chain.generator()));
    markov::TransientSolver solver(permuted_chain, options);
    const auto permuted =
        solver.solve(p.apply(expanded.initial), {9000.0}).front();
    const auto back = p.apply_inverse(permuted);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i], base[i], 10.0 * options.epsilon)
          << "state " << i << " seed " << seed;
    }
  }
}

TEST(Permutation, ReorderedCurvesAgreeAcrossOrderings) {
  // The end-to-end reorder flag: every ordering must yield the same
  // lifetime curve within 10 eps of the configured epsilon.
  const auto times = std::vector<double>{8000.0, 12000.0, 16000.0};
  const double epsilon = 1e-10;
  std::vector<std::vector<double>> curves;
  for (const auto ordering :
       {core::StateOrdering::kNone, core::StateOrdering::kLevel,
        core::StateOrdering::kRcm}) {
    const auto expanded =
        core::build_expanded_chain(fig8_model(), 100.0, ordering);
    auto backend = engine::make_backend("uniformization",
                                        {.epsilon = epsilon});
    curves.push_back(
        core::solve_empty_probability_curve(expanded, *backend, times,
                                            epsilon)
            .probabilities());
  }
  for (std::size_t k = 1; k < curves.size(); ++k) {
    for (std::size_t i = 0; i < times.size(); ++i) {
      EXPECT_NEAR(curves[k][i], curves[0][i], 10.0 * epsilon)
          << "ordering " << k << " point " << i;
    }
  }
}

TEST(Permutation, ReorderedParallelBitwiseAcrossThreadCounts) {
  // Reordering must not cost the parallel backend its determinism
  // guarantee: the inverse-permuted curve is bitwise identical at every
  // thread count (and across serial vs pool execution).
  const auto times = std::vector<double>{8000.0, 14000.0};
  const auto expanded = core::build_expanded_chain(
      fig8_model(), 50.0, core::StateOrdering::kLevel);
  std::vector<double> reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    auto backend = engine::make_backend(
        "parallel", {.epsilon = 1e-10, .threads = threads});
    const auto probs =
        core::solve_empty_probability_curve(expanded, *backend, times,
                                            1e-10)
            .probabilities();
    if (reference.empty()) {
      reference = probs;
      continue;
    }
    EXPECT_EQ(probs, reference) << threads << " threads";
  }
}

}  // namespace
}  // namespace kibamrm
