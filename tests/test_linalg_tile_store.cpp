// Tests for the out-of-core tile store: exact replication of the
// in-memory uniformise-transpose-compact pipeline, bitwise kernel parity
// at every tile size, round-trip serialization, and the corruption /
// truncation error paths (a damaged spill file must surface as
// kibamrm::Error, never as UB in a kernel trusting a bad offset).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/common/spill_io.hpp"
#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/linalg/fused_gather.hpp"
#include "kibamrm/linalg/tile_store.hpp"
#include "kibamrm/workload/onoff_model.hpp"

namespace kibamrm::linalg {
namespace {

core::KibamRmModel fig8_kibam() {
  return core::KibamRmModel(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
}

/// A real expanded battery generator plus the reference compacted
/// transposed P the tile store must reproduce bit for bit.
struct Reference {
  CsrMatrix generator{1, 1};
  double rate = 0.0;
  std::vector<std::uint32_t> reachable;
  CsrMatrix pt{1, 1};
};

Reference make_reference(double delta) {
  const auto expanded = core::build_expanded_chain(fig8_kibam(), delta);
  Reference ref;
  ref.generator = expanded.chain.generator();
  ref.rate = 1.02 * expanded.chain.max_exit_rate();
  std::vector<std::uint32_t> seeds;
  for (std::size_t i = 0; i < expanded.initial.size(); ++i) {
    if (expanded.initial[i] != 0.0) {
      seeds.push_back(static_cast<std::uint32_t>(i));
    }
  }
  const CsrMatrix p = ref.generator.uniformized(ref.rate);
  ref.reachable = p.reachable_rows(seeds);
  ref.pt = p.transposed_submatrix(ref.reachable);
  return ref;
}

std::string temp_store_path(const std::string& tag) {
  return common::unique_spill_path(common::resolve_spill_dir(""),
                                   "kibamrm-test-" + tag);
}

/// RAII deletion for stores tests keep on disk to reopen/corrupt.
struct PathGuard {
  std::string path;
  ~PathGuard() { std::remove(path.c_str()); }
};

TEST(TileStore, ReachableClosureMatchesMaterializedP) {
  const auto expanded = core::build_expanded_chain(fig8_kibam(), 300.0);
  const double rate = 1.02 * expanded.chain.max_exit_rate();
  std::vector<std::uint32_t> seeds;
  for (std::size_t i = 0; i < expanded.initial.size(); ++i) {
    if (expanded.initial[i] != 0.0) {
      seeds.push_back(static_cast<std::uint32_t>(i));
    }
  }
  const auto streamed =
      tile_store_reachable_rows(expanded.chain.generator(), seeds, rate);
  const auto materialized = expanded.chain.generator()
                                .uniformized(rate)
                                .reachable_rows(seeds);
  EXPECT_EQ(streamed, materialized);
}

TEST(TileStore, StreamingBuildReproducesCompactedTransposeExactly) {
  const Reference ref = make_reference(100.0);
  // Several tile sizes, including one small enough to force many tiles.
  for (const std::size_t tile_bytes :
       {std::size_t{4096}, std::size_t{65536}, std::size_t{64} << 20}) {
    PathGuard guard{temp_store_path("exact")};
    TileStore store =
        TileStore::build(ref.generator, ref.reachable, ref.rate,
                         {.tile_bytes = tile_bytes}, guard.path);
    ASSERT_EQ(store.rows(), ref.pt.rows());
    ASSERT_EQ(store.nonzeros(), ref.pt.nonzeros());
    if (tile_bytes == 4096) {
      EXPECT_GT(store.tile_count(), 1u) << "4KB tiles must split this chain";
    }

    // One fused step over the tiles against the reference CSR kernel --
    // bitwise equality of out, accum and the sup-norm delta.
    std::vector<double> x(store.rows());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = 1.0 / static_cast<double>(i + 2);
    }
    const double weight = 0.37;
    std::vector<double> out_ref(store.rows(), 0.0);
    std::vector<double> accum_ref(store.rows(), 0.5);
    const double delta_ref = ref.pt.multiply_fused_range(
        x, out_ref, accum_ref, weight, 0, ref.pt.rows());

    std::vector<double> out(store.rows(), 0.0);
    std::vector<double> accum(store.rows(), 0.5);
    double delta = 0.0;
    common::AlignedBuffer slab;
    for (std::size_t t = 0; t < store.tile_count(); ++t) {
      store.read_tile(t, slab);
      const std::size_t rows =
          store.tile_row_end(t) - store.tile_row_begin(t);
      // Shard the tile to cover the partial-range path too.
      const auto ranges = store.balanced_tile_ranges(t, slab, 3);
      ASSERT_EQ(ranges.front(), 0u);
      ASSERT_EQ(ranges.back(), rows);
      for (std::size_t s = 0; s + 1 < ranges.size(); ++s) {
        delta = std::max(delta, store.multiply_fused_tile(
                                    t, slab, x, out, accum, weight,
                                    ranges[s], ranges[s + 1]));
      }
    }
    EXPECT_EQ(out, out_ref) << "tile_bytes = " << tile_bytes;
    EXPECT_EQ(accum, accum_ref) << "tile_bytes = " << tile_bytes;
    EXPECT_EQ(delta, delta_ref) << "tile_bytes = " << tile_bytes;
  }
}

TEST(TileStore, RoundTripReopenMatchesFreshBuild) {
  const Reference ref = make_reference(300.0);
  PathGuard guard{temp_store_path("roundtrip")};
  std::vector<std::size_t> tile_rows;
  std::uint64_t nonzeros = 0;
  {
    TileStore store =
        TileStore::build(ref.generator, ref.reachable, ref.rate,
                         {.tile_bytes = 8192}, guard.path);
    nonzeros = store.nonzeros();
    for (std::size_t t = 0; t < store.tile_count(); ++t) {
      tile_rows.push_back(store.tile_row_end(t));
    }
  }
  // Reopen from disk only; every tile must validate and the kernel must
  // agree with the in-memory reference.
  TileStore reopened = TileStore::open(guard.path, {});
  EXPECT_EQ(reopened.nonzeros(), nonzeros);
  ASSERT_EQ(reopened.tile_count(), tile_rows.size());
  for (std::size_t t = 0; t < reopened.tile_count(); ++t) {
    EXPECT_EQ(reopened.tile_row_end(t), tile_rows[t]);
  }
  std::vector<double> x(reopened.rows(), 0.25);
  std::vector<double> out(reopened.rows(), 0.0);
  std::vector<double> accum(reopened.rows(), 0.0);
  std::vector<double> out_ref(reopened.rows(), 0.0);
  std::vector<double> accum_ref(reopened.rows(), 0.0);
  ref.pt.multiply_fused_range(x, out_ref, accum_ref, 1.0, 0, ref.pt.rows());
  common::AlignedBuffer slab;
  for (std::size_t t = 0; t < reopened.tile_count(); ++t) {
    ASSERT_NO_THROW(reopened.read_tile(t, slab));
    const std::size_t rows =
        reopened.tile_row_end(t) - reopened.tile_row_begin(t);
    reopened.multiply_fused_tile(t, slab, x, out, accum, 1.0, 0, rows);
  }
  EXPECT_EQ(out, out_ref);
}

TEST(TileStore, DiagonalRunStatsMatchStructureStats) {
  const Reference ref = make_reference(300.0);
  PathGuard guard{temp_store_path("stats")};
  const TileStore store =
      TileStore::build(ref.generator, ref.reachable, ref.rate,
                       {.tile_bytes = 8192}, guard.path);
  const StructureStats expected = structure_stats(ref.pt);
  EXPECT_EQ(store.build_stats().bandwidth, expected.bandwidth);
  EXPECT_EQ(store.build_stats().diagonal_rows, expected.diagonal_rows);
  EXPECT_EQ(store.build_stats().longest_diagonal_run,
            expected.longest_diagonal_run);
}

TEST(TileStore, CorruptSlabByteThrowsOnRead) {
  const Reference ref = make_reference(300.0);
  PathGuard guard{temp_store_path("corrupt")};
  {
    TileStore store =
        TileStore::build(ref.generator, ref.reachable, ref.rate,
                         {.tile_bytes = 8192}, guard.path);
  }
  {
    // Flip one byte inside the first slab (slabs start at offset 4096).
    std::fstream file(guard.path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekg(4096 + 100);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(4096 + 100);
    file.write(&byte, 1);
  }
  // Header and index are intact, so open succeeds; the checksum catches
  // the damage on the first read of the poisoned tile.
  TileStore store = TileStore::open(guard.path, {});
  common::AlignedBuffer slab;
  EXPECT_THROW(store.read_tile(0, slab), Error);
}

TEST(TileStore, CorruptHeaderThrowsOnOpen) {
  const Reference ref = make_reference(450.0);
  PathGuard guard{temp_store_path("header")};
  {
    TileStore store =
        TileStore::build(ref.generator, ref.reachable, ref.rate,
                         {.tile_bytes = 1 << 20}, guard.path);
  }
  {
    std::fstream file(guard.path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(16);  // inside the row-count field
    const char poison = 0x7f;
    file.write(&poison, 1);
  }
  EXPECT_THROW(TileStore::open(guard.path, {}), Error);
}

TEST(TileStore, TruncatedFileThrowsNotUB) {
  const Reference ref = make_reference(300.0);
  PathGuard guard{temp_store_path("truncated")};
  std::uint64_t full_size = 0;
  {
    TileStore store =
        TileStore::build(ref.generator, ref.reachable, ref.rate,
                         {.tile_bytes = 8192}, guard.path);
    full_size = store.file_bytes();
  }
  // Cut the file at several points: inside the index (open fails), inside
  // a slab (open may succeed, read fails), inside the header.
  for (const std::uint64_t keep :
       {full_size / 2, std::uint64_t{5000}, std::uint64_t{40}}) {
    {
      std::ofstream file(guard.path + ".cut", std::ios::binary);
      std::ifstream source(guard.path, std::ios::binary);
      std::vector<char> bytes(keep);
      source.read(bytes.data(), static_cast<std::streamsize>(keep));
      file.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    PathGuard cut_guard{guard.path + ".cut"};
    try {
      TileStore store = TileStore::open(cut_guard.path, {});
      common::AlignedBuffer slab;
      for (std::size_t t = 0; t < store.tile_count(); ++t) {
        store.read_tile(t, slab);
      }
      FAIL() << "truncation to " << keep << " bytes went unnoticed";
    } catch (const Error&) {
      // Expected: every truncation surfaces as kibamrm::Error.
    }
  }
}

TEST(TileStore, RejectsBadArguments) {
  const Reference ref = make_reference(450.0);
  PathGuard guard{temp_store_path("args")};
  EXPECT_THROW(TileStore::build(ref.generator, {}, ref.rate, {}, guard.path),
               Error);
  EXPECT_THROW(TileStore::build(ref.generator, ref.reachable, 0.0, {},
                                guard.path),
               Error);
  EXPECT_THROW(TileStore::open("/nonexistent/dir/nofile.spill", {}), Error);
  EXPECT_THROW(common::resolve_spill_dir("/nonexistent/dir/zzz"),
               InvalidArgument);
}

}  // namespace
}  // namespace kibamrm::linalg
