// Tests for the analytical KiBaM: closed form vs RK4, charge conservation,
// the recovery effect, and the paper's quantitative anchors (Sec. 3).
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "kibamrm/battery/ideal.hpp"
#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/battery/ode.hpp"
#include "kibamrm/common/error.hpp"

namespace kibamrm::battery {
namespace {

// The paper's Sec. 6.1 battery: C = 7200 As, c = 0.625, k = 4.5e-5/s.
KibamParameters paper_battery() { return {7200.0, 0.625, 4.5e-5}; }

TEST(KibamParameters, Validation) {
  EXPECT_NO_THROW(paper_battery().validate());
  EXPECT_THROW((KibamParameters{0.0, 0.5, 1e-5}.validate()), ModelError);
  EXPECT_THROW((KibamParameters{1.0, 0.0, 1e-5}.validate()), ModelError);
  EXPECT_THROW((KibamParameters{1.0, 1.2, 0.0}.validate()), ModelError);
  EXPECT_THROW((KibamParameters{1.0, 0.5, -1.0}.validate()), ModelError);
  // c = 1 with nonzero k is contradictory.
  EXPECT_THROW((KibamParameters{1.0, 1.0, 1e-5}.validate()), ModelError);
}

TEST(KibamParameters, DerivedQuantities) {
  const KibamParameters p = paper_battery();
  EXPECT_DOUBLE_EQ(p.initial_available(), 4500.0);
  EXPECT_DOUBLE_EQ(p.initial_bound(), 2700.0);
  EXPECT_NEAR(p.k_prime(), 4.5e-5 / (0.625 * 0.375), 1e-15);
  EXPECT_TRUE(std::isinf(KibamParameters{1.0, 1.0, 0.0}.k_prime()));
}

TEST(KibamBattery, InitialStateAndHeights) {
  KibamBattery battery(paper_battery());
  EXPECT_DOUBLE_EQ(battery.available_charge(), 4500.0);
  EXPECT_DOUBLE_EQ(battery.bound_charge(), 2700.0);
  EXPECT_DOUBLE_EQ(battery.total_charge(), 7200.0);
  // Both wells start at equal height C (Fig. 1 geometry).
  EXPECT_NEAR(battery.available_height(), 7200.0, 1e-12);
  EXPECT_NEAR(battery.bound_height(), 7200.0, 1e-12);
  EXPECT_FALSE(battery.empty());
}

TEST(KibamBattery, ChargeConservationUnderLoad) {
  // d(y1+y2)/dt = -I exactly: total charge after t equals C - I t.
  KibamBattery battery(paper_battery());
  battery.advance(0.96, 1000.0);
  EXPECT_NEAR(battery.total_charge(), 7200.0 - 0.96 * 1000.0, 1e-8);
  battery.advance(0.5, 500.0);
  EXPECT_NEAR(battery.total_charge(), 7200.0 - 960.0 - 250.0, 1e-8);
}

TEST(KibamBattery, RestRedistributesWithoutConsuming) {
  KibamBattery battery(paper_battery());
  battery.advance(0.96, 1000.0);
  const double total = battery.total_charge();
  const double y1_before = battery.available_charge();
  battery.advance(0.0, 2000.0);
  EXPECT_NEAR(battery.total_charge(), total, 1e-8);
  // Idle recovery moves charge into the available well.
  EXPECT_GT(battery.available_charge(), y1_before);
  EXPECT_LT(battery.bound_charge(), 2700.0);
}

TEST(KibamBattery, HeightsEqualiseAfterLongRest) {
  KibamBattery battery(paper_battery());
  battery.advance(0.96, 2000.0);
  battery.advance(0.0, 1e7);
  EXPECT_NEAR(battery.available_height(), battery.bound_height(),
              1e-6 * battery.bound_height());
}

TEST(KibamBattery, AdvanceComposition) {
  // Advancing 2000 s in one call equals 4 x 500 s (the closed form chains
  // exactly across segment boundaries).
  KibamBattery once(paper_battery());
  once.advance(0.96, 2000.0);
  KibamBattery split(paper_battery());
  for (int i = 0; i < 4; ++i) split.advance(0.96, 500.0);
  EXPECT_NEAR(once.available_charge(), split.available_charge(), 1e-8);
  EXPECT_NEAR(once.bound_charge(), split.bound_charge(), 1e-8);
}

TEST(KibamBattery, ClosedFormMatchesRk4) {
  const KibamParameters p = paper_battery();
  const double current = 0.96;
  KibamBattery battery(p);
  battery.advance(current, 3000.0);

  const double c = p.available_fraction;
  const double k = p.flow_constant;
  const WellOde rhs = [&](double, const WellVector& y) -> WellVector {
    const double diff = y[1] / (1.0 - c) - y[0] / c;
    return {-current + k * diff, -k * diff};
  };
  const WellVector numeric =
      rk4_advance(rhs, 0.0, {4500.0, 2700.0}, 3000.0, 3000);
  EXPECT_NEAR(battery.available_charge(), numeric[0], 1e-6);
  EXPECT_NEAR(battery.bound_charge(), numeric[1], 1e-6);
}

TEST(KibamBattery, DegenerateC1IsLinear) {
  KibamBattery battery({7200.0, 1.0, 0.0});
  battery.advance(0.96, 1000.0);
  EXPECT_NEAR(battery.available_charge(), 7200.0 - 960.0, 1e-10);
  EXPECT_DOUBLE_EQ(battery.bound_charge(), 0.0);
  const auto crossing = battery.advance(0.96, 1e9);
  ASSERT_TRUE(crossing.has_value());
  EXPECT_NEAR(*crossing, (7200.0 - 960.0) / 0.96, 1e-6);
  EXPECT_TRUE(battery.empty());
}

TEST(KibamBattery, ZeroFlowConstantFreezesBoundWell) {
  KibamBattery battery({7200.0, 0.625, 0.0});
  battery.advance(0.96, 1000.0);
  EXPECT_DOUBLE_EQ(battery.bound_charge(), 2700.0);
  EXPECT_NEAR(battery.available_charge(), 4500.0 - 960.0, 1e-10);
}

TEST(KibamBattery, EmptyCrossingDetectedInsideSegment) {
  KibamBattery battery({100.0, 1.0, 0.0});
  const auto crossing = battery.advance(10.0, 100.0);
  ASSERT_TRUE(crossing.has_value());
  EXPECT_NEAR(*crossing, 10.0, 1e-9);
  EXPECT_TRUE(battery.empty());
  EXPECT_DOUBLE_EQ(battery.available_charge(), 0.0);
  // Further advances report an immediate (time-0) crossing.
  EXPECT_DOUBLE_EQ(battery.advance(1.0, 5.0).value(), 0.0);
}

TEST(KibamBattery, NoCrossingWhenChargeSuffices) {
  KibamBattery battery({100.0, 1.0, 0.0});
  EXPECT_FALSE(battery.advance(1.0, 50.0).has_value());
  EXPECT_FALSE(battery.empty());
}

TEST(KibamBattery, ContinuousLifetimeMatchesPaper) {
  // Sec. 3 / Table 1: continuous 0.96 A load, KiBaM lifetime 91 min.
  KibamBattery battery(paper_battery());
  const auto life = compute_lifetime(battery, LoadProfile::constant(0.96));
  ASSERT_TRUE(life.has_value());
  EXPECT_NEAR(*life / 60.0, 91.0, 0.5);
}

TEST(KibamBattery, SquareWaveLifetimeMatchesPaperAndIsFrequencyFree) {
  // Table 1: 1 Hz and 0.2 Hz square waves both give 203 min for the KiBaM.
  const double life_1hz = [] {
    KibamBattery b(paper_battery());
    return *compute_lifetime(b, LoadProfile::square_wave(1.0, 0.96),
                             {.max_time = 1e7});
  }();
  const double life_02hz = [] {
    KibamBattery b(paper_battery());
    return *compute_lifetime(b, LoadProfile::square_wave(0.2, 0.96),
                             {.max_time = 1e7});
  }();
  EXPECT_NEAR(life_1hz / 60.0, 203.0, 1.0);
  EXPECT_NEAR(life_02hz / 60.0, 203.0, 1.0);
  EXPECT_NEAR(life_1hz, life_02hz, 10.0);
}

TEST(KibamBattery, RecoveryExtendsLifetimeOverContinuous) {
  // The intermittent load delivers more charge than the continuous one at
  // the same current (Sec. 2's recovery effect).
  KibamBattery continuous(paper_battery());
  const double life_cont =
      *compute_lifetime(continuous, LoadProfile::constant(0.96));
  KibamBattery pulsed(paper_battery());
  const double life_pulsed = *compute_lifetime(
      pulsed, LoadProfile::square_wave(0.01, 0.96), {.max_time = 1e7});
  // On-time of the pulsed load at depletion.
  EXPECT_GT(life_pulsed / 2.0, life_cont);
}

TEST(KibamBattery, CustomInitialWellsFig9Scenario) {
  // Fig. 9's third case: C = 4500 As entirely available (c = 1).
  KibamBattery battery({4500.0, 1.0, 0.0});
  const auto life = compute_lifetime(battery, LoadProfile::constant(0.96));
  EXPECT_NEAR(*life, 4500.0 / 0.96, 1e-6);
}

TEST(KibamBattery, ResetRestoresInitialState) {
  KibamBattery battery(paper_battery());
  battery.advance(0.96, 4000.0);
  battery.reset();
  EXPECT_DOUBLE_EQ(battery.available_charge(), 4500.0);
  EXPECT_DOUBLE_EQ(battery.bound_charge(), 2700.0);
  EXPECT_FALSE(battery.empty());
}

TEST(KibamBattery, RejectsNegativeInputs) {
  KibamBattery battery(paper_battery());
  EXPECT_THROW(battery.advance(-1.0, 1.0), InvalidArgument);
  EXPECT_THROW(battery.advance(1.0, -1.0), InvalidArgument);
}

TEST(IdealBattery, LifetimeIsCapacityOverCurrent) {
  IdealBattery battery(1200.0);
  const auto life = compute_lifetime(battery, LoadProfile::constant(2.0));
  EXPECT_NEAR(*life, 600.0, 1e-9);
}

TEST(IdealBattery, LoadIndependentDeliveredCharge) {
  // The ideal battery delivers exactly C under any profile shape.
  IdealBattery battery(1000.0);
  const auto life = compute_lifetime(
      battery, LoadProfile::square_wave(0.01, 4.0), {.max_time = 1e7});
  ASSERT_TRUE(life.has_value());
  // On-time * current = C.
  const double on_time = *life - std::floor(*life * 0.01) * 50.0 -
                         std::min(std::fmod(*life, 100.0), 50.0) +
                         std::floor(*life * 0.01) * 50.0;
  (void)on_time;  // exact on-time bookkeeping checked via charge instead:
  EXPECT_NEAR(battery.available_charge(), 0.0, 1e-9);
}

TEST(Trajectory, RecordsFig2Shape) {
  // Fig. 2: f = 0.001 Hz square wave; y1 dips during on-phases and recovers
  // during off-phases; y2 decreases monotonically.
  KibamBattery battery(paper_battery());
  std::vector<double> times;
  for (double t = 0.0; t <= 4000.0; t += 100.0) times.push_back(t);
  const auto samples = record_trajectory(
      battery, LoadProfile::square_wave(0.001, 0.96), times);
  ASSERT_EQ(samples.size(), times.size());
  EXPECT_DOUBLE_EQ(samples[0].available, 4500.0);
  EXPECT_DOUBLE_EQ(samples[0].bound, 2700.0);
  // t = 500 (end of on half-period region): y1 dropped.
  EXPECT_LT(samples[5].available, 4100.0);
  // During the off half (t in [500, 1000]) y1 recovers.
  EXPECT_GT(samples[10].available, samples[5].available);
  // y2 is non-increasing throughout.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i].bound, samples[i - 1].bound + 1e-9);
  }
}

TEST(Trajectory, StopsAtDepletion) {
  KibamBattery battery({100.0, 1.0, 0.0});
  const auto samples = record_trajectory(
      battery, LoadProfile::constant(10.0), {0.0, 5.0, 20.0, 30.0});
  ASSERT_EQ(samples.size(), 3u);  // 0, 5, then the crossing at 10
  EXPECT_NEAR(samples.back().time, 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(samples.back().available, 0.0);
}

}  // namespace
}  // namespace kibamrm::battery
