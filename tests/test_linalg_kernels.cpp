// Tests for the runtime-dispatched kernel layer: the fixed-block pairwise
// reduction contract (sharded partials compose bitwise for any block
// partition), scalar <-> AVX2 dispatch parity on every kernel, and the
// pool-sharded Arnoldi factorisation's bitwise independence of the thread
// count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "kibamrm/common/cpu_features.hpp"
#include "kibamrm/common/error.hpp"
#include "kibamrm/common/thread_pool.hpp"
#include "kibamrm/linalg/arnoldi.hpp"
#include "kibamrm/linalg/csr_matrix.hpp"
#include "kibamrm/linalg/fused_gather.hpp"
#include "kibamrm/linalg/kernels.hpp"

namespace kibamrm::linalg {
namespace {

namespace k = kernels;

std::vector<double> random_vector(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uniform(-1.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = uniform(rng);
  return v;
}

/// Restores the process-global dispatch pin (and the opt-in gather
/// grouping) on scope exit -- these tests mutate shared state other
/// suites rely on.
class DispatchGuard {
 public:
  ~DispatchGuard() {
    k::clear_dispatch();
    k::set_gather_grouping(false);
  }
};

bool tier_runnable(k::Dispatch tier) {
  return static_cast<int>(k::detected_dispatch()) >= static_cast<int>(tier);
}

bool avx2_runnable() { return tier_runnable(k::Dispatch::kAvx2); }
bool avx512_runnable() { return tier_runnable(k::Dispatch::kAvx512); }

/// The double SIMD tiers the CPU can run, for cross-tier parity loops.
std::vector<k::Dispatch> runnable_simd_tiers() {
  std::vector<k::Dispatch> tiers;
  if (avx2_runnable()) tiers.push_back(k::Dispatch::kAvx2);
  if (avx512_runnable()) tiers.push_back(k::Dispatch::kAvx512);
  return tiers;
}

TEST(KernelDispatch, ParseAndNames) {
  EXPECT_EQ(k::parse_dispatch("auto"), std::nullopt);
  EXPECT_EQ(k::parse_dispatch("scalar"), k::Dispatch::kScalar);
  EXPECT_EQ(k::parse_dispatch("avx2"), k::Dispatch::kAvx2);
  EXPECT_EQ(k::parse_dispatch("avx512"), k::Dispatch::kAvx512);
  EXPECT_EQ(k::parse_dispatch("mixed"), k::Dispatch::kMixed);
  EXPECT_THROW(k::parse_dispatch("sse9"), InvalidArgument);
  EXPECT_EQ(k::dispatch_name(k::Dispatch::kScalar), "scalar");
  EXPECT_EQ(k::dispatch_name(k::Dispatch::kAvx2), "avx2");
  EXPECT_EQ(k::dispatch_name(k::Dispatch::kAvx512), "avx512");
  EXPECT_EQ(k::dispatch_name(k::Dispatch::kMixed), "mixed");
}

TEST(KernelDispatch, ScalarPinAlwaysAccepted) {
  DispatchGuard guard;
  k::set_dispatch(k::Dispatch::kScalar);
  EXPECT_EQ(k::active_dispatch(), k::Dispatch::kScalar);
  k::clear_dispatch();
  EXPECT_EQ(k::active_dispatch(), k::detected_dispatch());
}

TEST(KernelDispatch, MixedPinAlwaysAccepted) {
  // The mixed tier needs no ISA of its own: its dense kernels run the
  // detected double tier, and the float gather exists in a scalar flavour.
  DispatchGuard guard;
  k::set_dispatch(k::Dispatch::kMixed);
  EXPECT_EQ(k::active_dispatch(), k::Dispatch::kMixed);
  EXPECT_EQ(k::double_tier(k::active_dispatch()), k::detected_dispatch());
}

TEST(KernelDispatch, ApplyDispatchFallsBackGracefully) {
  // Satellite contract: requesting an unavailable SIMD tier through the
  // CLI/env path (apply_dispatch) must never throw -- it falls back to
  // the best supported tier with a stderr note, so a pinned bench
  // command line keeps working across heterogeneous machines.  On CPUs
  // that do support the tier it must pin exactly.
  DispatchGuard guard;
  for (const char* request : {"scalar", "avx2", "avx512", "mixed", "auto"}) {
    EXPECT_NO_THROW(k::apply_dispatch(request)) << request;
    if (std::string(request) == "auto") {
      EXPECT_EQ(k::active_dispatch(), k::detected_dispatch());
    } else if (const auto parsed = k::parse_dispatch(request);
               parsed == k::Dispatch::kMixed || tier_runnable(*parsed)) {
      EXPECT_EQ(k::active_dispatch(), *parsed) << request;
    } else {
      EXPECT_EQ(k::active_dispatch(), k::detected_dispatch()) << request;
    }
  }
  // The strict setter, by contrast, refuses unsupported tiers.
  if (!avx512_runnable()) {
    EXPECT_THROW(k::set_dispatch(k::Dispatch::kAvx512), InvalidArgument);
  }
}

TEST(KernelDot, MatchesReferenceWithinRounding) {
  // Odd length exercises the 16-lane body, the 4-lane cleanup and the
  // sequential tail at once.
  const std::size_t n = 10011;
  const auto a = random_vector(n, 1);
  const auto b = random_vector(n, 2);
  long double reference = 0.0L;
  for (std::size_t i = 0; i < n; ++i) {
    reference += static_cast<long double>(a[i]) * b[i];
  }
  EXPECT_NEAR(k::dot(a.data(), b.data(), n),
              static_cast<double>(reference), 1e-11);
  EXPECT_NEAR(k::nrm2(a.data(), n),
              std::sqrt(k::dot(a.data(), a.data(), n)), 0.0);
}

TEST(KernelDot, ShardedPartialsComposeBitwise) {
  // The heart of the determinism contract: any block partition, filled in
  // any order, reduces to the same bits as the single-call dot.
  const std::size_t n = 9973;  // prime: maximally awkward tail
  const auto a = random_vector(n, 3);
  const auto b = random_vector(n, 4);
  const double whole = k::dot(a.data(), b.data(), n);
  const std::size_t blocks = k::block_count(n);
  for (const std::size_t shards : {2u, 3u, 7u}) {
    std::vector<double> partials(blocks, 0.0);
    // Fill shard ranges back to front to prove order irrelevance.
    for (std::size_t s = shards; s-- > 0;) {
      const std::size_t begin = blocks * s / shards;
      const std::size_t end = blocks * (s + 1) / shards;
      k::dot_blocks(a.data(), b.data(), n, begin, end, partials.data());
    }
    EXPECT_EQ(k::reduce_pairwise(partials.data(), blocks), whole)
        << shards << " shards";
  }
}

TEST(KernelDot, ScalarSimdParityBitwise) {
  const auto tiers = runnable_simd_tiers();
  if (tiers.empty()) GTEST_SKIP() << "CPU lacks AVX2+FMA";
  DispatchGuard guard;
  for (const std::size_t n : {1u, 3u, 16u, 255u, 256u, 257u, 4096u, 10007u}) {
    const auto a = random_vector(n, 5);
    const auto b = random_vector(n, 6);
    k::set_dispatch(k::Dispatch::kScalar);
    const double scalar = k::dot(a.data(), b.data(), n);
    for (const k::Dispatch tier : tiers) {
      k::set_dispatch(tier);
      EXPECT_EQ(scalar, k::dot(a.data(), b.data(), n))
          << "n = " << n << " tier = " << k::dispatch_name(tier);
    }
  }
}

TEST(KernelAxpyScale, ScalarSimdParityBitwise) {
  const auto tiers = runnable_simd_tiers();
  if (tiers.empty()) GTEST_SKIP() << "CPU lacks AVX2+FMA";
  DispatchGuard guard;
  const std::size_t n = 1037;
  const auto x = random_vector(n, 7);
  auto y_scalar = random_vector(n, 8);
  const auto y_init = y_scalar;
  k::set_dispatch(k::Dispatch::kScalar);
  k::axpy(0.3125, x.data(), y_scalar.data(), n);
  k::scale(y_scalar.data(), -1.75, n);
  for (const k::Dispatch tier : tiers) {
    auto y_simd = y_init;
    k::set_dispatch(tier);
    k::axpy(0.3125, x.data(), y_simd.data(), n);
    k::scale(y_simd.data(), -1.75, n);
    EXPECT_EQ(y_scalar, y_simd) << k::dispatch_name(tier);
  }
}

// Banded matrix with mixed row lengths: long runs of equal-length rows
// (the SIMD grouped path) broken by ragged rows (the scalar fallback
// inside the AVX2 kernel).
CsrMatrix mixed_bands(std::size_t n) {
  CooBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    if (i > 0) {
      builder.add(i, i - 1, 0.3);
      off += 0.3;
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, 0.2);
      off += 0.2;
    }
    if (i % 97 == 0) {  // occasional long row
      for (std::size_t e = 2; e < 8 && i + e < n; ++e) {
        builder.add(i, i + e, 0.01);
        off += 0.01;
      }
    }
    builder.add(i, i, 1.0 - off);
  }
  return builder.build();
}

TEST(KernelCsrMultiplyRange, ScalarAvx2ParityBitwise) {
  if (!avx2_runnable()) GTEST_SKIP() << "CPU lacks AVX2+FMA";
  DispatchGuard guard;
  k::set_gather_grouping(true);
  const std::size_t n = 3001;
  const CsrMatrix pt = mixed_bands(n).transposed();
  const auto x = random_vector(n, 9);
  std::vector<double> out_scalar(n, 0.0), out_avx2(n, 0.0);
  k::set_dispatch(k::Dispatch::kScalar);
  pt.multiply_range(x, out_scalar, 0, n);
  k::set_dispatch(k::Dispatch::kAvx2);
  pt.multiply_range(x, out_avx2, 0, n);
  EXPECT_EQ(out_scalar, out_avx2);
  // Partial ranges land mid-run of equal-length rows: grouping must not
  // depend on where the range starts.
  std::vector<double> out_ranges(n, 0.0);
  pt.multiply_range(x, out_ranges, 1001, n);
  pt.multiply_range(x, out_ranges, 0, 1001);
  EXPECT_EQ(out_ranges, out_scalar);
}

TEST(KernelFusedGatherPlan, ScalarAvx2ParityBitwise) {
  if (!avx2_runnable()) GTEST_SKIP() << "CPU lacks AVX2+FMA";
  DispatchGuard guard;
  k::set_gather_grouping(true);
  const std::size_t n = 2503;
  const CsrMatrix pt = mixed_bands(n).transposed();
  const auto plan = FusedGatherPlan::build(pt);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->layout(), FusedGatherPlan::Layout::kRowOffset);
  const auto x = random_vector(n, 10);
  std::vector<double> out_s(n, 0.0), accum_s(n, 0.125);
  std::vector<double> out_v(n, 0.0), accum_v(n, 0.125);
  k::set_dispatch(k::Dispatch::kScalar);
  const double delta_s =
      plan->multiply_fused_range(x, out_s, accum_s, 0.25, 0, n);
  k::set_dispatch(k::Dispatch::kAvx2);
  const double delta_v =
      plan->multiply_fused_range(x, out_v, accum_v, 0.25, 0, n);
  EXPECT_EQ(out_s, out_v);
  EXPECT_EQ(accum_s, accum_v);
  EXPECT_EQ(delta_s, delta_v);
  // And the SIMD tier still matches the CSR reference kernel bitwise.
  std::vector<double> out_csr(n, 0.0), accum_csr(n, 0.125);
  const double delta_csr =
      pt.multiply_fused_range(x, out_csr, accum_csr, 0.25, 0, n);
  EXPECT_EQ(out_v, out_csr);
  EXPECT_EQ(accum_v, accum_csr);
  EXPECT_EQ(delta_v, delta_csr);
}

TEST(KernelFusedGatherPlan, ZeroWeightParityAndSkip) {
  if (!avx2_runnable()) GTEST_SKIP() << "CPU lacks AVX2+FMA";
  DispatchGuard guard;
  k::set_gather_grouping(true);
  const std::size_t n = 1024;
  const CsrMatrix pt = mixed_bands(n).transposed();
  const auto plan = FusedGatherPlan::build(pt);
  ASSERT_TRUE(plan.has_value());
  const auto x = random_vector(n, 11);
  std::vector<double> out(n, 0.0), accum(n, 0.5);
  k::set_dispatch(k::Dispatch::kAvx2);
  plan->multiply_fused_range(x, out, accum, 0.0, 0, n);
  for (const double a : accum) EXPECT_EQ(a, 0.5);
}

// Pure banded matrix: after transposition every interior row has the
// same length and the same offset pattern, so the gather plan covers
// nearly all rows with uniform segments -- the structure the level-major
// state reordering produces on real expanded battery chains, and the
// input the across-row SIMD segment kernels vectorise.
CsrMatrix banded_uniform(std::size_t n) {
  CooBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    if (i > 0) {
      builder.add(i, i - 1, 0.3);
      off += 0.3;
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, 0.2);
      off += 0.2;
    }
    builder.add(i, i, 1.0 - off);
  }
  return builder.build();
}

TEST(KernelUniformSegments, ScalarSimdParityBitwise) {
  // The uniform-segment kernels (8 rows per zmm / 4 per ymm, lane = row)
  // replay the scalar per-row association exactly, so every double tier
  // must produce the same bits -- including ranges that start and stop
  // mid-segment, which exercise the partition seams.
  const auto tiers = runnable_simd_tiers();
  if (tiers.empty()) GTEST_SKIP() << "CPU lacks AVX2+FMA";
  DispatchGuard guard;
  const std::size_t n = 4099;
  const CsrMatrix pt = banded_uniform(n).transposed();
  const auto plan = FusedGatherPlan::build(pt);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->layout(), FusedGatherPlan::Layout::kRowOffset);
  EXPECT_GT(plan->uniform_fraction(), 0.9);
  const auto x = random_vector(n, 20);
  k::set_dispatch(k::Dispatch::kScalar);
  std::vector<double> out_s(n, 0.0), accum_s(n, 0.125);
  const double delta_s =
      plan->multiply_fused_range(x, out_s, accum_s, 0.25, 0, n);
  for (const k::Dispatch tier : tiers) {
    k::set_dispatch(tier);
    std::vector<double> out_v(n, 0.0), accum_v(n, 0.125);
    const double delta_v =
        plan->multiply_fused_range(x, out_v, accum_v, 0.25, 0, n);
    EXPECT_EQ(out_s, out_v) << k::dispatch_name(tier);
    EXPECT_EQ(accum_s, accum_v) << k::dispatch_name(tier);
    EXPECT_EQ(delta_s, delta_v) << k::dispatch_name(tier);
    // Shard seams inside a segment: the same rows in two disjoint calls.
    std::vector<double> out_r(n, 0.0), accum_r(n, 0.125);
    const double delta_hi =
        plan->multiply_fused_range(x, out_r, accum_r, 0.25, 1003, n);
    const double delta_lo =
        plan->multiply_fused_range(x, out_r, accum_r, 0.25, 0, 1003);
    EXPECT_EQ(out_s, out_r) << k::dispatch_name(tier);
    EXPECT_EQ(accum_s, accum_r) << k::dispatch_name(tier);
    EXPECT_EQ(delta_s, std::max(delta_lo, delta_hi))
        << k::dispatch_name(tier);
  }
}

TEST(KernelUniformSegments, MixedAccuracyAndPartitionDeterminism) {
  // The mixed tier streams float32 operands through the same canonical
  // association with double accumulation: every product is exact in
  // double, so the result is deterministic under any row partition, and
  // it tracks the all-double kernel to float operand rounding.
  DispatchGuard guard;
  const std::size_t n = 3001;
  const CsrMatrix pt = banded_uniform(n).transposed();
  const auto plan = FusedGatherPlan::build(pt);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(plan->mixed_supported());
  std::vector<double> x(n);
  std::mt19937 rng(21);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  for (double& v : x) v = uniform(rng);
  k::set_dispatch(k::Dispatch::kScalar);
  std::vector<double> out_d(n, 0.0), accum_d(n, 0.0);
  plan->multiply_fused_range(x, out_d, accum_d, 0.25, 0, n);

  k::set_dispatch(k::Dispatch::kMixed);
  const std::vector<float> x_f(x.begin(), x.end());
  std::vector<float> out_f(n, 0.0f);
  std::vector<double> accum_f(n, 0.0);
  const double delta_full =
      plan->multiply_fused_range_mixed(x_f, out_f, accum_f, 0.25, 0, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(out_f[i]), out_d[i], 1e-5) << i;
    EXPECT_NEAR(accum_f[i], accum_d[i], 1e-5) << i;
  }
  // Partition determinism: two disjoint ranges, filled high range first,
  // reproduce the single-call bits exactly.
  std::vector<float> out_r(n, 0.0f);
  std::vector<double> accum_r(n, 0.0);
  const double delta_hi =
      plan->multiply_fused_range_mixed(x_f, out_r, accum_r, 0.25, 977, n);
  const double delta_lo =
      plan->multiply_fused_range_mixed(x_f, out_r, accum_r, 0.25, 0, 977);
  EXPECT_EQ(out_f, out_r);
  EXPECT_EQ(accum_f, accum_r);
  EXPECT_EQ(delta_full, std::max(delta_lo, delta_hi));
}

// Arnoldi over a chain large enough to engage the pool-sharded sweeps
// (>= 16384 states): the factorisation must be bitwise identical across
// thread counts.
TEST(ArnoldiSharded, BitwiseIdenticalAcrossThreadCounts) {
  const std::size_t n = 20000;
  const std::size_t m = 8;
  const CsrMatrix a = mixed_bands(n);
  const ArnoldiMatvec matvec = [&](const std::vector<double>& in,
                                   std::vector<double>& out) {
    a.multiply_range(in, out, 0, n);
  };

  std::vector<std::vector<double>> reference_basis;
  DenseReal reference_h(1, 1);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    common::ThreadPool pool(threads);
    ArnoldiWorkspace workspace;
    std::vector<std::vector<double>> basis(m + 1,
                                           std::vector<double>(n, 0.0));
    auto v0 = random_vector(n, 12);
    const double norm = k::nrm2(v0.data(), n);
    for (std::size_t i = 0; i < n; ++i) basis[0][i] = v0[i] / norm;
    DenseReal h(m + 1, m);
    const ArnoldiResult result =
        arnoldi(matvec, basis, h, m, 1e-14, &pool, &workspace);
    ASSERT_EQ(result.dim, m);
    if (reference_basis.empty()) {
      reference_basis = basis;
      reference_h = h;
      continue;
    }
    for (std::size_t j = 0; j <= m; ++j) {
      EXPECT_EQ(basis[j], reference_basis[j])
          << "basis vector " << j << " at " << threads << " threads";
    }
    for (std::size_t i = 0; i <= m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        EXPECT_EQ(h(i, j), reference_h(i, j))
            << "h(" << i << "," << j << ") at " << threads << " threads";
      }
    }
  }
}

TEST(ArnoldiSharded, PoolMatchesInlineBitwise) {
  // The inline path (no pool) and the sharded path must agree bitwise
  // too -- one contract, not two.
  const std::size_t n = 18000;
  const std::size_t m = 6;
  const CsrMatrix a = mixed_bands(n);
  const ArnoldiMatvec matvec = [&](const std::vector<double>& in,
                                   std::vector<double>& out) {
    a.multiply_range(in, out, 0, n);
  };
  std::vector<std::vector<double>> basis_inline(m + 1,
                                                std::vector<double>(n, 0.0));
  basis_inline[0][0] = 1.0;
  DenseReal h_inline(m + 1, m);
  arnoldi(matvec, basis_inline, h_inline, m, 1e-14);

  common::ThreadPool pool(4);
  std::vector<std::vector<double>> basis_pool(m + 1,
                                              std::vector<double>(n, 0.0));
  basis_pool[0][0] = 1.0;
  DenseReal h_pool(m + 1, m);
  arnoldi(matvec, basis_pool, h_pool, m, 1e-14, &pool);

  for (std::size_t j = 0; j <= m; ++j) {
    EXPECT_EQ(basis_pool[j], basis_inline[j]) << "basis vector " << j;
  }
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(h_pool(i, j), h_inline(i, j));
    }
  }
}

}  // namespace
}  // namespace kibamrm::linalg
