// Tests for the uniformisation transient solver, cross-checked against
// closed forms and the independent dense matrix exponential.
#include <gtest/gtest.h>

#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/expm.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/markov/ctmc.hpp"
#include "kibamrm/markov/uniformization.hpp"

namespace kibamrm::markov {
namespace {

Ctmc two_state(double a, double b) {
  return ctmc_from_rates({{0.0, a}, {b, 0.0}});
}

// Closed form for the two-state chain started in state 0:
// pi_0(t) = b/(a+b) + a/(a+b) e^{-(a+b)t}.
double two_state_p0(double a, double b, double t) {
  return b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
}

TEST(Uniformization, TwoStateMatchesClosedForm) {
  const double a = 2.0;
  const double b = 0.5;
  const Ctmc chain = two_state(a, b);
  for (double t : {0.0, 0.1, 0.5, 1.0, 5.0, 50.0}) {
    const auto pi = transient_distribution(chain, {1.0, 0.0}, t);
    EXPECT_NEAR(pi[0], two_state_p0(a, b, t), 1e-9) << "t=" << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
  }
}

TEST(Uniformization, MatchesDenseMatrixExponential) {
  // 4-state random-ish generator; compare against alpha * expm(Q t).
  const Ctmc chain = ctmc_from_rates({{0.0, 1.2, 0.3, 0.0},
                                      {0.4, 0.0, 2.0, 0.1},
                                      {0.0, 0.7, 0.0, 0.9},
                                      {1.5, 0.0, 0.2, 0.0}});
  const std::vector<double> alpha = {0.25, 0.25, 0.25, 0.25};
  const double t = 1.7;
  const auto pi = transient_distribution(chain, alpha, t);
  const linalg::DenseReal e = linalg::expm(chain.dense_generator().scaled(t));
  const std::vector<double> expected = e.left_multiply(alpha);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(pi[i], expected[i], 1e-10) << "state " << i;
  }
}

TEST(Uniformization, TimeZeroReturnsInitial) {
  const Ctmc chain = two_state(1.0, 1.0);
  const auto pi = transient_distribution(chain, {0.3, 0.7}, 0.0);
  EXPECT_DOUBLE_EQ(pi[0], 0.3);
  EXPECT_DOUBLE_EQ(pi[1], 0.7);
}

TEST(Uniformization, IncrementalMultiPointMatchesOneShot) {
  const Ctmc chain = two_state(3.0, 0.7);
  TransientSolver solver(chain);
  const std::vector<double> times = {0.25, 0.5, 1.0, 2.0, 4.0};
  const auto curves = solver.solve({1.0, 0.0}, times);
  for (std::size_t k = 0; k < times.size(); ++k) {
    const auto direct = transient_distribution(chain, {1.0, 0.0}, times[k]);
    EXPECT_NEAR(curves[k][0], direct[0], 1e-9) << "t=" << times[k];
  }
}

TEST(Uniformization, RepeatedTimePointsAllowed) {
  const Ctmc chain = two_state(1.0, 2.0);
  TransientSolver solver(chain);
  const auto curves = solver.solve({1.0, 0.0}, {1.0, 1.0, 1.0});
  EXPECT_NEAR(curves[0][0], curves[2][0], 1e-15);
}

TEST(Uniformization, AbsorbingChainAccumulatesMass) {
  // 0 -> 1 at rate 2, state 1 absorbing: pi_1(t) = 1 - e^{-2t}.
  const Ctmc chain = ctmc_from_rates({{0.0, 2.0}, {0.0, 0.0}});
  for (double t : {0.1, 1.0, 3.0}) {
    const auto pi = transient_distribution(chain, {1.0, 0.0}, t);
    EXPECT_NEAR(pi[1], 1.0 - std::exp(-2.0 * t), 1e-10);
  }
}

TEST(Uniformization, AllAbsorbingChainIsConstant) {
  const Ctmc chain = ctmc_from_rates({{0.0, 0.0}, {0.0, 0.0}});
  const auto pi = transient_distribution(chain, {0.4, 0.6}, 10.0);
  EXPECT_NEAR(pi[0], 0.4, 1e-12);
  EXPECT_NEAR(pi[1], 0.6, 1e-12);
}

TEST(Uniformization, ErlangAbsorptionProbability) {
  // Chain 0->1->2->absorbing(3), all rate r: absorption by t is the
  // Erlang-3 CDF.
  const double r = 4.0;
  const Ctmc chain = ctmc_from_rates({{0.0, r, 0.0, 0.0},
                                      {0.0, 0.0, r, 0.0},
                                      {0.0, 0.0, 0.0, r},
                                      {0.0, 0.0, 0.0, 0.0}});
  const double t = 0.8;
  const auto pi = transient_distribution(chain, {1.0, 0.0, 0.0, 0.0}, t);
  const double x = r * t;
  const double erlang3 =
      1.0 - std::exp(-x) * (1.0 + x + x * x / 2.0);
  EXPECT_NEAR(pi[3], erlang3, 1e-10);
}

TEST(Uniformization, LongHorizonReachesSteadyState) {
  const Ctmc chain = two_state(2.0, 6.0);
  const auto pi = transient_distribution(chain, {0.0, 1.0}, 500.0);
  EXPECT_NEAR(pi[0], 0.75, 1e-9);
  EXPECT_NEAR(pi[1], 0.25, 1e-9);
}

TEST(Uniformization, StatsReportIterationsAndRate) {
  const Ctmc chain = two_state(1.0, 1.0);
  TransientSolver solver(chain);
  solver.solve({1.0, 0.0}, {10.0});
  const TransientStats& stats = solver.last_stats();
  EXPECT_GT(stats.iterations, 5u);   // ~ q t = 1.02 * 10 plus window
  EXPECT_LT(stats.iterations, 200u);
  // Auto rate is 1.02 * max_exit_rate = 1.02 * 1.0.
  EXPECT_NEAR(stats.uniformization_rate, 1.02, 0.01);
  EXPECT_EQ(stats.time_points, 1u);
}

TEST(Uniformization, CustomUniformizationRateAccepted) {
  const Ctmc chain = two_state(1.0, 1.0);
  TransientSolver fast(chain, {.uniformization_rate = 10.0});
  const auto pi = fast.solve({1.0, 0.0}, {1.0}).front();
  EXPECT_NEAR(pi[0], two_state_p0(1.0, 1.0, 1.0), 1e-9);
}

TEST(Uniformization, RejectsBadInputs) {
  const Ctmc chain = two_state(1.0, 1.0);
  TransientSolver solver(chain);
  const std::vector<double> good = {1.0, 0.0};
  EXPECT_THROW(solver.solve({1.0}, {1.0}), InvalidArgument);        // dim
  EXPECT_THROW(solver.solve({0.7, 0.7}, {1.0}), InvalidArgument);   // not dist
  EXPECT_THROW(solver.solve(good, {2.0, 1.0}), InvalidArgument);    // unsorted
  EXPECT_THROW(solver.solve(good, {-1.0}), InvalidArgument);        // negative
  EXPECT_THROW(TransientSolver(chain, {.uniformization_rate = 0.5}),
               InvalidArgument);  // rate below max exit rate
}

TEST(Uniformization, ProbabilityVectorStaysNormalised) {
  // Long run over many increments: renormalisation keeps the sum at 1.
  const Ctmc chain = ctmc_from_rates({{0.0, 5.0, 0.0},
                                      {1.0, 0.0, 4.0},
                                      {0.0, 2.0, 0.0}});
  TransientSolver solver(chain);
  std::vector<double> times;
  for (int i = 1; i <= 200; ++i) times.push_back(0.5 * i);
  const auto curves = solver.solve({1.0, 0.0, 0.0}, times);
  for (const auto& pi : curves) {
    EXPECT_NEAR(linalg::sum(pi), 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace kibamrm::markov
