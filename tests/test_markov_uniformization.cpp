// Tests for the uniformisation transient solver, cross-checked against
// closed forms and the independent dense matrix exponential.
#include <gtest/gtest.h>

#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/expm.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/markov/ctmc.hpp"
#include "kibamrm/markov/uniformization.hpp"

namespace kibamrm::markov {
namespace {

Ctmc two_state(double a, double b) {
  return ctmc_from_rates({{0.0, a}, {b, 0.0}});
}

// Closed form for the two-state chain started in state 0:
// pi_0(t) = b/(a+b) + a/(a+b) e^{-(a+b)t}.
double two_state_p0(double a, double b, double t) {
  return b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
}

TEST(Uniformization, TwoStateMatchesClosedForm) {
  const double a = 2.0;
  const double b = 0.5;
  const Ctmc chain = two_state(a, b);
  // One solver for the whole grid: repeated one-shot
  // transient_distribution() calls would rebuild the uniformised matrix
  // per time point.
  TransientSolver solver(chain);
  const std::vector<double> times = {0.0, 0.1, 0.5, 1.0, 5.0, 50.0};
  const auto curves = solver.solve({1.0, 0.0}, times);
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_NEAR(curves[k][0], two_state_p0(a, b, times[k]), 1e-9)
        << "t=" << times[k];
    EXPECT_NEAR(curves[k][0] + curves[k][1], 1.0, 1e-12);
  }
}

TEST(Uniformization, MatchesDenseMatrixExponential) {
  // 4-state random-ish generator; compare against alpha * expm(Q t).
  const Ctmc chain = ctmc_from_rates({{0.0, 1.2, 0.3, 0.0},
                                      {0.4, 0.0, 2.0, 0.1},
                                      {0.0, 0.7, 0.0, 0.9},
                                      {1.5, 0.0, 0.2, 0.0}});
  const std::vector<double> alpha = {0.25, 0.25, 0.25, 0.25};
  const double t = 1.7;
  const auto pi = transient_distribution(chain, alpha, t);
  const linalg::DenseReal e = linalg::expm(chain.dense_generator().scaled(t));
  const std::vector<double> expected = e.left_multiply(alpha);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(pi[i], expected[i], 1e-10) << "state " << i;
  }
}

TEST(Uniformization, TimeZeroReturnsInitial) {
  const Ctmc chain = two_state(1.0, 1.0);
  const auto pi = transient_distribution(chain, {0.3, 0.7}, 0.0);
  EXPECT_DOUBLE_EQ(pi[0], 0.3);
  EXPECT_DOUBLE_EQ(pi[1], 0.7);
}

TEST(Uniformization, IncrementalMultiPointMatchesOneShot) {
  const Ctmc chain = two_state(3.0, 0.7);
  TransientSolver solver(chain);
  const std::vector<double> times = {0.25, 0.5, 1.0, 2.0, 4.0};
  const auto curves = solver.solve({1.0, 0.0}, times);
  for (std::size_t k = 0; k < times.size(); ++k) {
    const auto direct = transient_distribution(chain, {1.0, 0.0}, times[k]);
    EXPECT_NEAR(curves[k][0], direct[0], 1e-9) << "t=" << times[k];
  }
}

TEST(Uniformization, RepeatedTimePointsAllowed) {
  const Ctmc chain = two_state(1.0, 2.0);
  TransientSolver solver(chain);
  const auto curves = solver.solve({1.0, 0.0}, {1.0, 1.0, 1.0});
  EXPECT_NEAR(curves[0][0], curves[2][0], 1e-15);
}

TEST(Uniformization, AbsorbingChainAccumulatesMass) {
  // 0 -> 1 at rate 2, state 1 absorbing: pi_1(t) = 1 - e^{-2t}.  One
  // reusable solver instead of a one-shot rebuild per time point.
  const Ctmc chain = ctmc_from_rates({{0.0, 2.0}, {0.0, 0.0}});
  TransientSolver solver(chain);
  const std::vector<double> times = {0.1, 1.0, 3.0};
  const auto curves = solver.solve({1.0, 0.0}, times);
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_NEAR(curves[k][1], 1.0 - std::exp(-2.0 * times[k]), 1e-10);
  }
}

TEST(Uniformization, AllAbsorbingChainIsConstant) {
  const Ctmc chain = ctmc_from_rates({{0.0, 0.0}, {0.0, 0.0}});
  const auto pi = transient_distribution(chain, {0.4, 0.6}, 10.0);
  EXPECT_NEAR(pi[0], 0.4, 1e-12);
  EXPECT_NEAR(pi[1], 0.6, 1e-12);
}

TEST(Uniformization, ErlangAbsorptionProbability) {
  // Chain 0->1->2->absorbing(3), all rate r: absorption by t is the
  // Erlang-3 CDF.
  const double r = 4.0;
  const Ctmc chain = ctmc_from_rates({{0.0, r, 0.0, 0.0},
                                      {0.0, 0.0, r, 0.0},
                                      {0.0, 0.0, 0.0, r},
                                      {0.0, 0.0, 0.0, 0.0}});
  const double t = 0.8;
  const auto pi = transient_distribution(chain, {1.0, 0.0, 0.0, 0.0}, t);
  const double x = r * t;
  const double erlang3 =
      1.0 - std::exp(-x) * (1.0 + x + x * x / 2.0);
  EXPECT_NEAR(pi[3], erlang3, 1e-10);
}

TEST(Uniformization, LongHorizonReachesSteadyState) {
  const Ctmc chain = two_state(2.0, 6.0);
  const auto pi = transient_distribution(chain, {0.0, 1.0}, 500.0);
  EXPECT_NEAR(pi[0], 0.75, 1e-9);
  EXPECT_NEAR(pi[1], 0.25, 1e-9);
}

TEST(Uniformization, StatsReportIterationsAndRate) {
  const Ctmc chain = two_state(1.0, 1.0);
  TransientSolver solver(chain);
  solver.solve({1.0, 0.0}, {10.0});
  const TransientStats& stats = solver.last_stats();
  EXPECT_GT(stats.iterations, 5u);   // ~ q t = 1.02 * 10 plus window
  EXPECT_LT(stats.iterations, 200u);
  // Auto rate is 1.02 * max_exit_rate = 1.02 * 1.0.
  EXPECT_NEAR(stats.uniformization_rate, 1.02, 0.01);
  EXPECT_EQ(stats.time_points, 1u);
}

TEST(Uniformization, CustomUniformizationRateAccepted) {
  const Ctmc chain = two_state(1.0, 1.0);
  TransientSolver fast(chain, {.uniformization_rate = 10.0});
  const auto pi = fast.solve({1.0, 0.0}, {1.0}).front();
  EXPECT_NEAR(pi[0], two_state_p0(1.0, 1.0, 1.0), 1e-9);
}

TEST(Uniformization, RejectsBadInputs) {
  const Ctmc chain = two_state(1.0, 1.0);
  TransientSolver solver(chain);
  const std::vector<double> good = {1.0, 0.0};
  EXPECT_THROW(solver.solve({1.0}, {1.0}), InvalidArgument);        // dim
  EXPECT_THROW(solver.solve({0.7, 0.7}, {1.0}), InvalidArgument);   // not dist
  EXPECT_THROW(solver.solve(good, {2.0, 1.0}), InvalidArgument);    // unsorted
  EXPECT_THROW(solver.solve(good, {-1.0}), InvalidArgument);        // negative
  EXPECT_THROW(TransientSolver(chain, {.uniformization_rate = 0.5}),
               InvalidArgument);  // rate below max exit rate
}

TEST(Uniformization, FusedMatchesBaselineLoop) {
  // The fused compacted gather loop and the pre-fusion scatter loop are
  // different arithmetic over the same series; they must agree to solver
  // accuracy everywhere.
  const Ctmc chain = ctmc_from_rates({{0.0, 1.2, 0.3, 0.0},
                                      {0.4, 0.0, 2.0, 0.1},
                                      {0.0, 0.7, 0.0, 0.9},
                                      {1.5, 0.0, 0.2, 0.0}});
  const std::vector<double> initial = {0.25, 0.25, 0.25, 0.25};
  const std::vector<double> times = {0.5, 1.7, 4.0, 12.0};
  TransientSolver fused(chain);
  TransientSolver baseline(
      chain, {.fused_kernels = false, .steady_state_detection = false});
  const auto a = fused.solve(initial, times);
  const auto b = baseline.solve(initial, times);
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_LT(linalg::linf_distance(a[k], b[k]), 1e-12) << "t=" << times[k];
  }
}

TEST(Uniformization, SteadyStateDetectionSkipsConvergedTail) {
  // two_state(2, 6) relaxes fast (second DTMC eigenvalue ~0.02), so a
  // long-horizon window is almost entirely converged tail.
  const Ctmc chain = two_state(2.0, 6.0);
  TransientSolver solver(chain);
  const auto pi = solver.solve({0.0, 1.0}, {500.0}).front();
  EXPECT_NEAR(pi[0], 0.75, 1e-9);
  EXPECT_NEAR(pi[1], 0.25, 1e-9);
  const TransientStats& stats = solver.last_stats();
  EXPECT_GT(stats.iterations_saved, stats.iterations)
      << "most of the ~4000-term window should be short-circuited";
  EXPECT_EQ(stats.steady_state_hits, 1u);
  // iterations + iterations_saved always equals the full window term
  // count, so the accounting is closed.
  TransientSolver no_detect(chain, {.steady_state_detection = false});
  no_detect.solve({0.0, 1.0}, {500.0});
  EXPECT_EQ(stats.iterations + stats.iterations_saved,
            no_detect.last_stats().iterations);
}

TEST(Uniformization, DetectionNeverFiresWhileTransient) {
  // Short horizon on a slowly mixing chain: the distribution is still
  // moving, detection must not trigger.
  const Ctmc chain = two_state(1.0, 1.0);
  TransientSolver solver(chain);
  solver.solve({1.0, 0.0}, {1.0});
  EXPECT_EQ(solver.last_stats().steady_state_hits, 0u);
  EXPECT_EQ(solver.last_stats().iterations_saved, 0u);
}

TEST(Uniformization, DetectionOnOffAgreeWithinBudget) {
  const Ctmc chain = ctmc_from_rates({{0.0, 5.0, 0.0},
                                      {1.0, 0.0, 4.0},
                                      {0.0, 2.0, 0.0}});
  std::vector<double> times;
  for (int i = 1; i <= 40; ++i) times.push_back(2.5 * i);
  TransientSolver on(chain);
  TransientSolver off(chain, {.steady_state_detection = false});
  const auto a = on.solve({1.0, 0.0, 0.0}, times);
  const auto b = off.solve({1.0, 0.0, 0.0}, times);
  const double budget = 10.0 * 1e-10;  // 10 * default epsilon
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_LT(linalg::linf_distance(a[k], b[k]), budget) << "t=" << times[k];
  }
  EXPECT_GT(on.last_stats().iterations_saved, 0u);
}

TEST(Uniformization, UniformGridComputesExactlyOneWindow) {
  // 1000-point uniform grid: every increment shares one lambda, so the
  // plan cache must compute a single Fox-Glynn window for the whole curve.
  const Ctmc chain = two_state(1.0, 1.0);
  TransientSolver solver(chain);
  std::vector<double> times(1000);
  for (std::size_t i = 0; i < times.size(); ++i) {
    times[i] = 14.0 * static_cast<double>(i + 1);
  }
  solver.solve({1.0, 0.0}, times);
  EXPECT_EQ(solver.last_stats().windows_computed, 1u);
  EXPECT_EQ(solver.last_stats().windows_reused, 999u);
}

TEST(Uniformization, CompactsToReachableClosure) {
  // State 2 is unreachable from state 0; the fused loop must iterate only
  // the two reachable states yet still report full-size distributions.
  const Ctmc chain = ctmc_from_rates({{0.0, 1.0, 0.0},
                                      {2.0, 0.0, 0.0},
                                      {1.0, 1.0, 0.0}});
  TransientSolver solver(chain);
  const auto pi = solver.solve({1.0, 0.0, 0.0}, {3.0}).front();
  ASSERT_EQ(pi.size(), 3u);
  EXPECT_EQ(solver.last_stats().active_states, 2u);
  EXPECT_EQ(pi[2], 0.0);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
}

TEST(Uniformization, ReusableSolverHandlesGrowingSupport) {
  // A second initial outside the cached closure must transparently rebuild
  // the compacted machinery (and keep the earlier initials valid).
  const Ctmc chain = ctmc_from_rates({{0.0, 1.0, 0.0},
                                      {2.0, 0.0, 0.0},
                                      {1.0, 1.0, 0.0}});
  TransientSolver solver(chain);
  const auto first = solver.solve({1.0, 0.0, 0.0}, {2.0}).front();
  EXPECT_EQ(solver.last_stats().active_states, 2u);
  const auto second = solver.solve({0.0, 0.0, 1.0}, {2.0}).front();
  EXPECT_EQ(solver.last_stats().active_states, 3u);
  const auto again = solver.solve({1.0, 0.0, 0.0}, {2.0}).front();
  // Cross-check both against one-shot solves.
  const auto ref_first = transient_distribution(chain, {1.0, 0.0, 0.0}, 2.0);
  const auto ref_second = transient_distribution(chain, {0.0, 0.0, 1.0}, 2.0);
  EXPECT_LT(linalg::linf_distance(first, ref_first), 1e-12);
  EXPECT_LT(linalg::linf_distance(second, ref_second), 1e-12);
  EXPECT_LT(linalg::linf_distance(again, ref_first), 1e-12);
}

TEST(Uniformization, ProbabilityVectorStaysNormalised) {
  // Long run over many increments: renormalisation keeps the sum at 1.
  const Ctmc chain = ctmc_from_rates({{0.0, 5.0, 0.0},
                                      {1.0, 0.0, 4.0},
                                      {0.0, 2.0, 0.0}});
  TransientSolver solver(chain);
  std::vector<double> times;
  for (int i = 1; i <= 200; ++i) times.push_back(0.5 * i);
  const auto curves = solver.solve({1.0, 0.0, 0.0}, times);
  for (const auto& pi : curves) {
    EXPECT_NEAR(linalg::sum(pi), 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace kibamrm::markov
