// Tests for the Gauss-Seidel steady-state solver.
#include <gtest/gtest.h>

#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/markov/steady_state.hpp"
#include "kibamrm/markov/uniformization.hpp"

namespace kibamrm::markov {
namespace {

TEST(SteadyState, TwoStateClosedForm) {
  const Ctmc chain = ctmc_from_rates({{0.0, 2.0}, {6.0, 0.0}});
  const auto pi = steady_state(chain);
  EXPECT_NEAR(pi[0], 0.75, 1e-10);
  EXPECT_NEAR(pi[1], 0.25, 1e-10);
}

TEST(SteadyState, BirthDeathDetailedBalance) {
  // Birth rate 1, death rate 2 over 5 states: pi_i ~ (1/2)^i.
  std::vector<std::vector<double>> rates(5, std::vector<double>(5, 0.0));
  for (int i = 0; i < 4; ++i) {
    rates[i][i + 1] = 1.0;
    rates[i + 1][i] = 2.0;
  }
  const auto pi = steady_state(ctmc_from_rates(rates));
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(pi[i + 1] / pi[i], 0.5, 1e-9) << "level " << i;
  }
  EXPECT_NEAR(linalg::sum(pi), 1.0, 1e-12);
}

TEST(SteadyState, MatchesLongRunTransient) {
  const Ctmc chain = ctmc_from_rates({{0.0, 1.2, 0.3},
                                      {0.4, 0.0, 2.0},
                                      {1.5, 0.7, 0.0}});
  const auto pi = steady_state(chain);
  const auto transient = transient_distribution(chain, {1.0, 0.0, 0.0}, 200.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(pi[i], transient[i], 1e-8) << "state " << i;
  }
}

TEST(SteadyState, StationaryUnderGenerator) {
  // pi Q = 0: left-multiplying the generator by pi gives ~0.
  const Ctmc chain = ctmc_from_rates({{0.0, 5.0, 0.0, 1.0},
                                      {1.0, 0.0, 4.0, 0.0},
                                      {0.0, 2.0, 0.0, 3.0},
                                      {2.0, 0.0, 1.0, 0.0}});
  const auto pi = steady_state(chain);
  std::vector<double> residual;
  chain.generator().left_multiply(pi, residual);
  EXPECT_LT(linalg::linf_norm(residual), 1e-9);
}

TEST(SteadyState, AbsorbingChainRejected) {
  const Ctmc chain = ctmc_from_rates({{0.0, 1.0}, {0.0, 0.0}});
  EXPECT_THROW(steady_state(chain), NumericalError);
}

TEST(SteadyState, StiffRatesConverge) {
  // Rates spanning 5 orders of magnitude (like the burst model's 182/h
  // against 1/h).
  const Ctmc chain = ctmc_from_rates({{0.0, 1e-2, 0.0},
                                      {0.0, 0.0, 1e3},
                                      {5.0, 0.0, 0.0}});
  const auto pi = steady_state(chain);
  EXPECT_NEAR(linalg::sum(pi), 1.0, 1e-12);
  // Flow balance across the cycle: pi_0 * 1e-2 = pi_1 * 1e3 = pi_2 * 5.
  EXPECT_NEAR(pi[0] * 1e-2, pi[1] * 1e3, 1e-10);
  EXPECT_NEAR(pi[1] * 1e3, pi[2] * 5.0, 1e-10);
}

}  // namespace
}  // namespace kibamrm::markov
