// Tests for the pluggable transient-engine layer: registry behaviour and
// numerical equivalence of the three built-in backends on battery chains.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "kibamrm/common/error.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/workload/onoff_model.hpp"
#include "kibamrm/workload/simple_model.hpp"

namespace kibamrm::engine {
namespace {

const std::vector<std::string> kBuiltins = {"adaptive", "dense", "krylov",
                                            "uniformization"};

// Small, fast single-well model: capacity 60, current 1, rates of order 1.
core::KibamRmModel tiny_c1() {
  workload::WorkloadBuilder builder;
  const std::size_t on = builder.add_state("on", 1.0);
  const std::size_t off = builder.add_state("off", 0.0);
  builder.add_transition(on, off, 1.0);
  builder.add_transition(off, on, 1.0);
  builder.set_initial_state(on);
  return core::KibamRmModel(builder.build(),
                            {.capacity = 60.0, .available_fraction = 1.0,
                             .flow_constant = 0.0});
}

// The Fig. 8 scenario: on/off workload over the full two-well KiBaM.
core::KibamRmModel fig8_kibam() {
  return core::KibamRmModel(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
}

TEST(EngineRegistry, BuiltinsRegistered) {
  const auto names = backend_names();
  for (const std::string& name : kBuiltins) {
    EXPECT_TRUE(is_backend_name(name)) << name;
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
  }
  EXPECT_TRUE(is_backend_name("sharded"));
  EXPECT_FALSE(is_backend_name("gpu"));
}

TEST(EngineRegistry, UnknownNameThrowsListingChoices) {
  try {
    make_backend("gpu");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("gpu"), std::string::npos);
    EXPECT_NE(what.find("uniformization"), std::string::npos);
    EXPECT_NE(what.find("krylov"), std::string::npos);
  }
}

TEST(EngineRegistry, BackendsReportTheirNames) {
  for (const std::string& name : kBuiltins) {
    EXPECT_EQ(make_backend(name)->name(), name);
  }
}

TEST(EngineRegistry, CustomBackendRegistrationWins) {
  register_backend("custom-for-test", [](const BackendOptions& options) {
    return make_backend("uniformization", options);
  });
  EXPECT_TRUE(is_backend_name("custom-for-test"));
  EXPECT_EQ(make_backend("custom-for-test")->name(), "uniformization");
}

TEST(EngineBackends, AgreeOnTinyChainDistributions) {
  // Full-distribution agreement (not just the aggregate curve) on the
  // expanded tiny chain, all pairs within 1e-8.
  const auto expanded = core::build_expanded_chain(tiny_c1(), 5.0);
  const std::vector<double> times = {20.0, 60.0, 120.0, 240.0};

  std::vector<std::vector<std::vector<double>>> all;
  for (const std::string& name : kBuiltins) {
    auto backend = make_backend(name);
    all.push_back(backend->solve(expanded.chain, expanded.initial, times));
    EXPECT_GT(backend->last_stats().iterations, 0u) << name;
    EXPECT_EQ(backend->last_stats().time_points, times.size()) << name;
  }
  for (std::size_t a = 0; a < all.size(); ++a) {
    for (std::size_t b = a + 1; b < all.size(); ++b) {
      for (std::size_t k = 0; k < times.size(); ++k) {
        EXPECT_LT(linalg::linf_distance(all[a][k], all[b][k]), 1e-8)
            << kBuiltins[a] << " vs " << kBuiltins[b] << " at t="
            << times[k];
      }
    }
  }
}

TEST(EngineBackends, AgreeOnEmptyProbabilityThroughApproximation) {
  // Same comparison through the public MarkovianApproximation API on the
  // simple three-state workload: Pr{battery empty at t} within 1e-8.
  const core::KibamRmModel model(
      workload::make_simple_model(),
      {.capacity = 800.0, .available_fraction = 1.0, .flow_constant = 0.0});
  const auto times = core::uniform_grid(2.0, 40.0, 20);

  std::vector<core::LifetimeCurve> curves;
  for (const std::string& name : kBuiltins) {
    core::MarkovianApproximation solver(model,
                                        {.delta = 40.0, .engine = name});
    curves.push_back(solver.solve(times));
    EXPECT_EQ(solver.last_stats().engine, name);
    EXPECT_GT(solver.last_stats().uniformization_iterations, 0u) << name;
  }
  for (std::size_t a = 0; a < curves.size(); ++a) {
    for (std::size_t b = a + 1; b < curves.size(); ++b) {
      EXPECT_LT(curves[a].max_difference(curves[b]), 1e-8)
          << kBuiltins[a] << " vs " << kBuiltins[b];
    }
  }
}

TEST(EngineBackends, AgreeOnFig8KibamScenario) {
  // The acceptance scenario: the paper's Fig. 8 on/off + KiBaM model at a
  // coarse grid every engine can afford (320 expanded states).
  const auto times = core::uniform_grid(6000.0, 20000.0, 15);
  std::vector<core::LifetimeCurve> curves;
  for (const std::string& name : kBuiltins) {
    core::MarkovianApproximation solver(fig8_kibam(),
                                        {.delta = 300.0, .engine = name});
    curves.push_back(solver.solve(times));
  }
  for (std::size_t a = 0; a < curves.size(); ++a) {
    for (std::size_t b = a + 1; b < curves.size(); ++b) {
      EXPECT_LT(curves[a].max_difference(curves[b]), 1e-8)
          << kBuiltins[a] << " vs " << kBuiltins[b];
    }
  }
  // And the curve is the physically sensible one: complete rise.
  EXPECT_LT(curves.front().probabilities().front(), 0.05);
  EXPECT_GT(curves.front().probabilities().back(), 0.99);
}

TEST(EngineBackends, DenseRefusesChainsAboveLimit) {
  const auto expanded = core::build_expanded_chain(tiny_c1(), 5.0);
  auto backend = make_backend("dense", {.dense_state_limit = 4});
  // The dedicated refusal type lets sweep drivers skip the configuration
  // without catching genuine solver errors.
  EXPECT_THROW(backend->solve(expanded.chain, expanded.initial, {10.0}),
               UnsupportedChainError);
}

TEST(EngineBackends, ApproximationRejectsUnknownEngine) {
  EXPECT_THROW(core::MarkovianApproximation(tiny_c1(),
                                            {.delta = 5.0,
                                             .engine = "not-an-engine"}),
               InvalidArgument);
}

TEST(EngineBackends, CollectDistributionsOffReturnsEmpty) {
  const auto expanded = core::build_expanded_chain(tiny_c1(), 5.0);
  for (const std::string& name : kBuiltins) {
    auto backend = make_backend(name, {.collect_distributions = false});
    std::size_t points_seen = 0;
    const auto results = backend->solve(
        expanded.chain, expanded.initial, {10.0, 20.0},
        [&](std::size_t, double, const std::vector<double>& pi) {
          ++points_seen;
          EXPECT_EQ(pi.size(), expanded.chain.state_count());
        });
    EXPECT_TRUE(results.empty()) << name;
    EXPECT_EQ(points_seen, 2u) << name;
  }
}

TEST(EngineBackends, AdaptiveReportsRejectionsOnStiffChain) {
  // A chain with a 1e4 rate spread forces the explicit stepper to shrink
  // its step at least once.
  const markov::Ctmc chain = markov::ctmc_from_rates(
      {{0.0, 1e4, 0.0}, {0.0, 0.0, 1.0}, {0.5, 0.0, 0.0}});
  auto backend = make_backend("adaptive");
  backend->solve(chain, {1.0, 0.0, 0.0}, {5.0});
  const auto& stats = backend->last_stats();
  EXPECT_GT(stats.iterations, 10u);
  // rejected_steps is informational; just check the counter exists and is
  // consistent (rejections never exceed RHS evaluations).
  EXPECT_LE(stats.rejected_steps, stats.iterations);
}

TEST(EngineBackends, OneShotHelperSelectsEngine) {
  const auto times = core::uniform_grid(40.0, 200.0, 9);
  const auto by_name =
      core::approximate_lifetime_distribution(tiny_c1(), 5.0, times,
                                              "dense");
  const auto by_default =
      core::approximate_lifetime_distribution(tiny_c1(), 5.0, times);
  EXPECT_LT(by_name.max_difference(by_default), 1e-8);
}

}  // namespace
}  // namespace kibamrm::engine
