// Tests for linalg/vector_ops kernels.
#include <gtest/gtest.h>

#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/vector_ops.hpp"

namespace kibamrm::linalg {
namespace {

TEST(VectorOps, SumIsAccurateOnManyTinyTerms) {
  // Kahan summation keeps 1e7 additions of 1e-7 at ~1.0 exactly enough.
  std::vector<double> v(10000000, 1e-7);
  EXPECT_NEAR(sum(v), 1.0, 1e-12);
}

TEST(VectorOps, SumOfEmptyVectorIsZero) {
  EXPECT_DOUBLE_EQ(sum({}), 0.0);
}

TEST(VectorOps, DotProduct) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
}

TEST(VectorOps, DotRejectsSizeMismatch) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(dot(a, b), InvalidArgument);
}

TEST(VectorOps, AxpyAccumulates) {
  std::vector<double> y = {1.0, 1.0};
  axpy(2.0, {3.0, 4.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
}

TEST(VectorOps, ScaleAndFill) {
  std::vector<double> v = {1.0, -2.0};
  scale(v, -3.0);
  EXPECT_DOUBLE_EQ(v[0], -3.0);
  EXPECT_DOUBLE_EQ(v[1], 6.0);
  fill(v, 0.5);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
}

TEST(VectorOps, Norms) {
  const std::vector<double> v = {3.0, -4.0, 1.0};
  EXPECT_DOUBLE_EQ(linf_norm(v), 4.0);
  EXPECT_DOUBLE_EQ(l1_norm(v), 8.0);
  EXPECT_DOUBLE_EQ(linf_distance({1.0, 2.0}, {1.5, 1.0}), 1.0);
}

TEST(VectorOps, NormalizeProbability) {
  std::vector<double> v = {1.0, 3.0};
  normalize_probability(v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(VectorOps, NormalizeRejectsZeroVector) {
  std::vector<double> v = {0.0, 0.0};
  EXPECT_THROW(normalize_probability(v), NumericalError);
}

TEST(VectorOps, IsProbabilityVector) {
  EXPECT_TRUE(is_probability_vector({0.25, 0.75}));
  EXPECT_TRUE(is_probability_vector({1.0, 0.0, 0.0}));
  EXPECT_FALSE(is_probability_vector({0.5, 0.6}));
  EXPECT_FALSE(is_probability_vector({1.5, -0.5}));
}

}  // namespace
}  // namespace kibamrm::linalg
