// Tests for the table/CSV output helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "kibamrm/common/error.hpp"
#include "kibamrm/io/table.hpp"

namespace kibamrm::io {
namespace {

TEST(Table, PrintAlignsColumns) {
  Table table({"t", "value"});
  table.add_row({"10", "0.5"});
  table.add_row({"10000", "0.9999"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("t"), std::string::npos);
  EXPECT_NE(text.find("10000"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Table, RowArityEnforced) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(Table, NumericRowsFormatted) {
  Table table({"x", "y"});
  table.add_numeric_row(std::vector<double>{1.5, 2.25}, 2);
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(), "x,y\n1.50,2.25\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"name", "note"});
  table.add_row({"a,b", "say \"hi\""});
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, WriteCsvFileRoundTrip) {
  Table table({"t", "p"});
  table.add_numeric_row(std::vector<double>{1.0, 0.25}, 3);
  const std::string path = ::testing::TempDir() + "kibamrm_table_test.csv";
  table.write_csv_file(path);
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "t,p\n1.000,0.250\n");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvFileBadPathThrows) {
  Table table({"a"});
  EXPECT_THROW(table.write_csv_file("/nonexistent-dir/x/y.csv"), Error);
}

TEST(FormatDouble, PrecisionControl) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace kibamrm::io
