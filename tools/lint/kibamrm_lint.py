#!/usr/bin/env python3
"""kibamrm-lint: project-invariant checks the generic tools cannot express.

Three checks, each enforcing an invariant the library's correctness
story leans on (see README "Static analysis & code health"):

  determinism        engine/, linalg/ and markov/ feed solver results;
                     nothing there may draw from unseeded randomness
                     (rand(), std::random_device, mt19937 outside
                     common/random) or iterate an unordered container
                     (hash order is process-randomised -- iteration
                     order must never reach a result).

  reduction-contract the fixed-block reduction contract (bitwise
                     identical results across threads and SIMD tiers)
                     only holds when (a) every translation unit that
                     implements contract kernels is pinned with
                     -ffp-contract=off in CMakeLists.txt, and (b) hot
                     engine code performs scalar floating-point
                     reductions through the kernels:: API instead of
                     raw `acc +=` loops whose rounding order would be
                     invisible to the contract.

  error-discipline   library code reports failure only through
                     kibamrm::Error-derived types: no `throw std::...`,
                     and no `catch (...)` that swallows the exception
                     without rethrowing or recording it
                     (std::current_exception).

Suppression: a finding is silenced by an annotation on the same line or
the line directly above:

    // kibamrm-lint: allow(<check>) <non-empty justification>

The justification is mandatory; an allow() without one is itself a
finding.  This mirrors the thread-safety layer's rule that unguarded
shared state carries its reasoning at the declaration.

Implementation: a token-level scanner (comments and string literals are
stripped before matching, so prose like "rand()" in a comment never
fires).  When the libclang python bindings are importable, the
error-discipline check additionally refines `throw` classification
through the AST; any libclang failure silently falls back to the token
result, so environments without it (or with a broken install) see
identical gating behaviour.

Exit codes: 0 clean, 1 findings, 2 internal/usage error.
Self-test: `kibamrm_lint.py --self-test` runs every check against the
seeded-violation fixtures in tools/lint/fixtures/ and verifies each
expected finding fires and nothing unexpected does.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CHECKS = ("determinism", "reduction-contract", "error-discipline")

# Directories (relative to the repo root) whose sources feed results.
RESULT_PATH_DIRS = ("src/kibamrm/engine", "src/kibamrm/linalg",
                    "src/kibamrm/markov")
LIBRARY_DIR = "src/kibamrm"

ALLOW_RE = re.compile(
    r"//\s*kibamrm-lint:\s*allow\(([a-z-]+)\)\s*(.*)$")


class Finding:
    def __init__(self, check: str, path: Path, line: int, message: str):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def __repr__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure
    (and the kibamrm-lint control comments, which must stay visible)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            end = n if end < 0 else end
            comment = text[i:end]
            if "kibamrm-lint:" in comment:
                out.append(comment)
            else:
                out.append(" " * (end - i))
            i = end
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            end = n if end < 0 else end + 2
            out.append(re.sub(r"[^\n]", " ", text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2
                       else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allow_table(lines: list[str]) -> dict[int, tuple[str, str, int]]:
    """Maps 1-based line numbers covered by an allow annotation to
    (check, justification, annotation line)."""
    table = {}
    for idx, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        check, reason = m.group(1), m.group(2).strip()
        # Covers its own line and the next (annotation-above style).
        table[idx] = (check, reason, idx)
        table[idx + 1] = (check, reason, idx)
    return table


def suppressed(findings: list[Finding], check: str, lines: list[str],
               path: Path, line_no: int, message: str) -> None:
    """Records the finding unless an allow(<check>) annotation covers it;
    an allow with an empty justification is converted into a finding."""
    allows = allow_table(lines)
    entry = allows.get(line_no)
    if entry and entry[0] == check:
        if not entry[1]:
            findings.append(Finding(
                check, path, entry[2],
                "allow() annotation requires a justification"))
        return
    findings.append(Finding(check, path, line_no, message))


# ------------------------------------------------------------ determinism

UNSEEDED_RANDOM_RE = re.compile(
    r"\bstd::random_device\b|\brandom_device\b|\bstd::rand\b|\brand\s*\(|"
    r"\bsrand\s*\(|\bd?rand48\s*\(|\blrand48\s*\(|\brandom_shuffle\b|"
    r"\bstd::mt19937(_64)?\b|\bdefault_random_engine\b")
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*[&*]?\s*(\w+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*([^)]+)\)")


def check_determinism(path: Path, text: str) -> list[Finding]:
    findings: list[Finding] = []
    lines = text.split("\n")
    unordered_names = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        unordered_names.add(m.group(1))
    for idx, line in enumerate(lines, start=1):
        if UNSEEDED_RANDOM_RE.search(line):
            suppressed(findings, "determinism", lines, path, idx,
                       "unseeded/system randomness in a result path; "
                       "derive seeded streams from common/random")
        m = RANGE_FOR_RE.search(line)
        if m:
            range_expr = m.group(1).strip()
            head = re.split(r"[.\[(]", range_expr, 1)[0].strip("&* \t")
            if head in unordered_names or "unordered_" in range_expr:
                suppressed(findings, "determinism", lines, path, idx,
                           "iteration over an unordered container feeds "
                           "a result path (hash order is not stable)")
        for name in unordered_names:
            # .begin() starts an iteration; .end() alone is the
            # order-independent found/not-found comparison idiom.
            if re.search(rf"\b{re.escape(name)}\s*\.\s*c?r?begin\s*\(",
                         line):
                suppressed(findings, "determinism", lines, path, idx,
                           f"explicit iteration over unordered container "
                           f"'{name}' (hash order is not stable)")
    return findings


# ------------------------------------------------------ reduction contract

CONTRACT_MARKER_RE = re.compile(
    r"\bkBlockDoubles\b|\breduce_pairwise\b|\bdot_blocks\b|multiply_fused")
ACCUM_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*=\s*0(?:\.0*)?\s*;")
FFP_OFF = "-ffp-contract=off"


def cmake_pinned_sources(cmake_text: str) -> set[str]:
    """File names granted -ffp-contract=off in CMakeLists.txt: entries of
    list variables later pinned via set_source_files_properties, plus
    files named directly in a pinning call."""
    pinned: set[str] = set()
    lists: dict[str, list[str]] = {}
    for m in re.finditer(r"set\(\s*(\w+)([^)]*)\)", cmake_text):
        lists[m.group(1)] = re.findall(r"[\w/.+-]+\.cpp", m.group(2))
    for m in re.finditer(
            r"set_source_files_properties\(([^)]*?)PROPERTIES(.*?)\)",
            cmake_text, re.DOTALL):
        subjects, props = m.group(1), m.group(2)
        if FFP_OFF not in props:
            continue
        pinned.update(re.findall(r"[\w/.+-]+\.cpp", subjects))
        for var in re.findall(r"\$\{(\w+)\}", subjects):
            pinned.update(lists.get(var, []))
    return pinned


def check_reduction_contract_cmake(repo: Path) -> list[Finding]:
    findings: list[Finding] = []
    cmake_path = repo / "CMakeLists.txt"
    if not cmake_path.is_file():
        return [Finding("reduction-contract", cmake_path, 1,
                        "CMakeLists.txt not found; cannot verify the "
                        "-ffp-contract=off pinning of the contract TUs")]
    pinned = cmake_pinned_sources(cmake_path.read_text())
    pinned_names = {Path(p).name for p in pinned}
    linalg = repo / "src/kibamrm/linalg"
    for source in sorted(linalg.glob("*.cpp")) if linalg.is_dir() else []:
        stripped = strip_comments_and_strings(source.read_text())
        if not CONTRACT_MARKER_RE.search(stripped):
            continue
        if source.name not in pinned_names:
            findings.append(Finding(
                "reduction-contract", source, 1,
                f"{source.name} implements contract kernels (matches "
                f"{CONTRACT_MARKER_RE.pattern!r}) but CMakeLists.txt does "
                f"not pin it with {FFP_OFF}; an FMA-contracting build "
                f"would break the bitwise reduction contract"))
    return findings


def check_reduction_contract_source(path: Path, text: str) -> list[Finding]:
    """Raw scalar floating accumulation loops in engine/ sources."""
    findings: list[Finding] = []
    lines = text.split("\n")
    accumulators: dict[str, int] = {}
    for idx, line in enumerate(lines, start=1):
        for m in ACCUM_DECL_RE.finditer(line):
            accumulators[m.group(1)] = idx
    if not accumulators:
        return findings
    for idx, line in enumerate(lines, start=1):
        m = re.match(r"\s*(\w+)\s*\+=", line)
        if not m or m.group(1) not in accumulators:
            continue
        suppressed(findings, "reduction-contract", lines, path, idx,
                   f"raw floating-point accumulation into "
                   f"'{m.group(1)}' (declared zero-initialised on line "
                   f"{accumulators[m.group(1)]}); scalar reductions in "
                   f"engine code must go through the kernels:: API so "
                   f"the rounding order stays inside the bitwise "
                   f"contract")
    return findings


# -------------------------------------------------------- error discipline

THROW_STD_RE = re.compile(r"\bthrow\s+(::)?std\s*::\s*\w+")
CATCH_ALL_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")


def catch_block(text: str, start: int) -> str:
    """Body of the catch whose 'catch' keyword starts at `start`."""
    brace = text.find("{", start)
    if brace < 0:
        return ""
    depth = 0
    for i in range(brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[brace:i + 1]
    return text[brace:]


def check_error_discipline(path: Path, text: str) -> list[Finding]:
    findings: list[Finding] = []
    lines = text.split("\n")
    for m in THROW_STD_RE.finditer(text):
        line_no = text.count("\n", 0, m.start()) + 1
        suppressed(findings, "error-discipline", lines, path, line_no,
                   "library code throws a std:: exception type; throw a "
                   "kibamrm::Error subclass (or KIBAMRM_REQUIRE) so "
                   "callers can rely on one catchable hierarchy")
    for m in CATCH_ALL_RE.finditer(text):
        line_no = text.count("\n", 0, m.start()) + 1
        body = catch_block(text, m.start())
        rethrows = re.search(r"\bthrow\s*;", body) is not None
        records = "current_exception" in body
        if not rethrows and not records:
            suppressed(findings, "error-discipline", lines, path, line_no,
                       "catch (...) swallows the exception without "
                       "rethrowing (`throw;`) or recording it "
                       "(std::current_exception)")
    return findings


def refine_throws_with_libclang(repo: Path, path: Path,
                                findings: list[Finding]) -> list[Finding]:
    """Optional AST refinement: drops throw-std findings whose thrown type
    libclang proves derives from kibamrm::Error (a typedef/alias the token
    scan cannot see through).  Any failure keeps the token findings."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return findings
    try:
        index = cindex.Index.create()
        tu = index.parse(str(path),
                         args=[f"-I{repo / 'src'}", "-std=c++20"])

        def derives_from_error(type_decl) -> bool:
            seen = set()
            stack = [type_decl]
            while stack:
                decl = stack.pop()
                if decl is None or decl.hash in seen:
                    continue
                seen.add(decl.hash)
                if decl.spelling == "Error":
                    return True
                for child in decl.get_children():
                    if child.kind == cindex.CursorKind.CXX_BASE_SPECIFIER:
                        stack.append(child.type.get_declaration())
            return False

        safe_lines = set()
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind != cindex.CursorKind.CXX_THROW_EXPR:
                continue
            children = list(cursor.get_children())
            if not children:
                continue
            decl = children[0].type.get_canonical().get_declaration()
            if derives_from_error(decl):
                safe_lines.add(cursor.location.line)
        return [f for f in findings
                if not (f.check == "error-discipline"
                        and "std:: exception" in f.message
                        and f.line in safe_lines)]
    except Exception:
        return findings


# ---------------------------------------------------------------- driver

def iter_sources(repo: Path, dirs: tuple[str, ...]):
    for rel in dirs:
        base = repo / rel
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".cpp", ".hpp", ".h", ".cc"):
                yield path


def run_checks(repo: Path, selected: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    if "reduction-contract" in selected:
        findings.extend(check_reduction_contract_cmake(repo))
    for path in iter_sources(repo, RESULT_PATH_DIRS):
        text = strip_comments_and_strings(path.read_text())
        if "determinism" in selected:
            findings.extend(check_determinism(path, text))
        if ("reduction-contract" in selected
                and "src/kibamrm/engine" in path.as_posix()):
            findings.extend(check_reduction_contract_source(path, text))
    if "error-discipline" in selected:
        for path in iter_sources(repo, (LIBRARY_DIR,)):
            text = strip_comments_and_strings(path.read_text())
            file_findings = check_error_discipline(path, text)
            if file_findings:
                file_findings = refine_throws_with_libclang(
                    repo, path, file_findings)
            findings.extend(file_findings)
    return findings


# -------------------------------------------------------------- self-test

def self_test(repo: Path) -> int:
    """Runs every check over the seeded-violation fixture tree and
    verifies each expected finding fires (the check is live) and nothing
    unexpected does (the suppressions and clean files stay clean)."""
    fixtures = Path(__file__).resolve().parent / "fixtures"
    expected = {
        ("determinism", "src/kibamrm/markov/bad_rand.cpp", 10),
        ("determinism", "src/kibamrm/markov/bad_rand.cpp", 14),
        ("determinism", "src/kibamrm/linalg/bad_unordered.cpp", 13),
        ("determinism", "src/kibamrm/linalg/bad_unordered.cpp", 19),
        ("reduction-contract", "src/kibamrm/linalg/unpinned_kernels.cpp", 1),
        ("reduction-contract", "src/kibamrm/engine/bad_accum.cpp", 11),
        ("error-discipline", "src/kibamrm/battery/bad_throw.cpp", 8),
        ("error-discipline", "src/kibamrm/core/bad_swallow.cpp", 11),
        ("error-discipline", "src/kibamrm/core/bad_swallow.cpp", 30),
    }
    findings = run_checks(fixtures, set(CHECKS))
    actual = {(f.check, f.path.relative_to(fixtures).as_posix(), f.line)
              for f in findings}
    ok = True
    for item in sorted(expected - actual):
        print(f"self-test: MISSED expected finding {item}", file=sys.stderr)
        ok = False
    for item in sorted(actual - expected):
        print(f"self-test: UNEXPECTED finding {item}", file=sys.stderr)
        ok = False
    # The real tree must also parse without an internal error (findings
    # there are reported by the normal invocation, not the self-test).
    print(f"self-test: {len(expected)} seeded violations, "
          f"{len(actual & expected)} detected, "
          f"{len(actual - expected)} unexpected")
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(
        description="kibamrm project-invariant linter")
    parser.add_argument("--repo", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (default: two levels up)")
    parser.add_argument("--check", action="append", choices=CHECKS,
                        help="run only the named check (repeatable; "
                             "default: all)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every check fires on the seeded "
                             "fixture violations")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args()

    if args.list_checks:
        for check in CHECKS:
            print(check)
        return 0
    if args.self_test:
        return self_test(args.repo)

    repo = args.repo.resolve()
    if not (repo / "src" / "kibamrm").is_dir():
        print(f"kibamrm-lint: {repo} does not look like the kibamrm repo "
              f"(no src/kibamrm)", file=sys.stderr)
        return 2
    selected = set(args.check) if args.check else set(CHECKS)
    findings = run_checks(repo, selected)
    for f in findings:
        try:
            shown = f.path.relative_to(repo)
        except ValueError:
            shown = f.path
        print(f"{shown}:{f.line}: [{f.check}] {f.message}")
    if findings:
        print(f"kibamrm-lint: {len(findings)} finding(s); suppress a "
              f"justified one with '// kibamrm-lint: allow(<check>) "
              f"<reason>'", file=sys.stderr)
        return 1
    print(f"kibamrm-lint: clean ({', '.join(sorted(selected))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
