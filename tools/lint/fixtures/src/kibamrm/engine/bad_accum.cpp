// Fixture: raw scalar floating accumulation loop in engine code.
#include <cstddef>

namespace kibamrm::engine {

double sum_bad(const double* x, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // The rounding order of this loop is invisible to the kernels::
    // contract: must be flagged (line 11).
    sum += x[i];
  }
  return sum;
}

double sum_allowed(const double* x, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // kibamrm-lint: allow(reduction-contract) fixture: justified
    total += x[i];
  }
  return total;
}

}  // namespace kibamrm::engine
