// Fixture: catch (...) that records the exception -- clean.
#include <exception>

namespace kibamrm::core {

inline std::exception_ptr capture(void (*callback)()) {
  try {
    callback();
  } catch (...) {
    return std::current_exception();
  }
  return nullptr;
}

}  // namespace kibamrm::core
