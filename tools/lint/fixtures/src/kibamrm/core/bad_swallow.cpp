// Fixture: catch (...) that swallows without rethrow or record, and
// an allow() annotation missing its mandatory justification.
namespace kibamrm::core {

int risky();

// Swallows: neither `throw;` nor std::current_exception() -- flagged.
inline int swallow_bad() {
  try {
    return risky();
  } catch (...) {
    return -1;
  }
}

// Rethrow after cleanup: fine.
inline int rethrow_ok() {
  try {
    return risky();
  } catch (...) {
    throw;
  }
}

// An allow() without a justification is itself a finding (reported on
// the annotation line).
inline int swallow_unjustified() {
  try {
    return risky();
  } catch (...) {  // kibamrm-lint: allow(error-discipline)
    return 0;
  }
}

}  // namespace kibamrm::core
