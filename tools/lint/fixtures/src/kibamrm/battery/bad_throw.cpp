// Fixture: library code throwing a std:: exception type (line 8);
// line 13 is suppressed with a justified allow().
#include <stdexcept>

namespace kibamrm::battery {

inline void validate(int levels) {
  if (levels < 0) throw std::runtime_error("negative level count");
}

// kibamrm-lint: allow(error-discipline) fixture: a justified suppression
inline void validate_allowed() { throw std::invalid_argument("fixture"); }

}  // namespace kibamrm::battery
