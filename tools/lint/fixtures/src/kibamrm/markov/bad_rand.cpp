// Fixture: unseeded randomness in a result path (markov/).
// Seeded violations on lines 10 and 14; line 19 is suppressed.
#include <cstdlib>
#include <random>

namespace kibamrm::markov {

double jitter();
double jitter() {
  return static_cast<double>(rand());
}

double seeded_wrong() {
  std::mt19937 engine(42);
  return static_cast<double>(engine());
}

// kibamrm-lint: allow(determinism) fixture: a justified suppression
inline unsigned suppressed_ok = rand();

}  // namespace kibamrm::markov
