// Fixture: unordered-container iteration feeding a result (linalg/).
#include <unordered_map>

namespace kibamrm::linalg {

double lookup_ok(const std::unordered_map<int, double>& table, int key) {
  auto it = table.find(key);  // point lookups are order-independent: ok
  return it == table.end() ? 0.0 : it->second;
}

double product_bad(const std::unordered_map<int, double>& table) {
  double total = 1.0;
  for (const auto& [key, value] : table) total *= value;
  return total;
}

double iterate_bad(std::unordered_map<int, double>& table) {
  double first = 0.0;
  auto it = table.begin();
  if (it != table.end()) first = it->second;
  return first;
}

}  // namespace kibamrm::linalg
