// Fixture: a contract TU correctly pinned in the fixture CMakeLists.txt
// (clean: the check must NOT flag this file).
namespace kibamrm::linalg::kernels {
inline double reduce_pairwise_fixture(const double* partials, int count) {
  return count > 0 ? partials[0] : 0.0;  // marker: reduce_pairwise
}
}  // namespace kibamrm::linalg::kernels
