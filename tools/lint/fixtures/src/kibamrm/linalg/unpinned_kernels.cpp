// Fixture: a contract TU (kBlockDoubles marker) the fixture
// CMakeLists.txt does NOT pin with -ffp-contract=off.
namespace kibamrm::linalg::kernels {
inline constexpr unsigned long kBlockDoubles = 256;
}  // namespace kibamrm::linalg::kernels
