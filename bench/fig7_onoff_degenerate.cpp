// Reproduces Figure 7: battery lifetime distribution for the on/off model
// with the degenerate battery (all charge available): f = 1 Hz, K = 1,
// C = 7200 As, c = 1, k = 0, I = 0.96 A.
//
// Series: Markovian approximation for Delta in {100, 50, 25, 5} and a
// 1000-run simulation, exactly the paper's set.  Also prints the expanded
// state counts and uniformisation iteration counts quoted in Sec. 6.1
// (2882 states and >36000 iterations for t = 17000 at Delta = 5).
// --engine selects the transient backend.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/exact_c1.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/workload/onoff_model.hpp"

int main(int argc, char** argv) {
  using namespace kibamrm;
  common::CliArgs args(argc, argv);
  args.declare("csv").declare("full").declare("points").declare("delta")
      .declare("runs").declare("engine").declare("json").declare("threads")
      .declare("no-fuse").declare("no-detect").declare("kernels")
      .declare("reorder").declare("tile-mb").declare("spill-dir")
      .declare("shards");
  args.validate();
  bench::apply_kernel_choice(args);
  const std::string engine =
      args.get_choice("engine", "uniformization", engine::backend_names());
  const auto threads =
      static_cast<std::size_t>(args.get_nonnegative_int("threads", 0));

  std::cout << "=== Figure 7: on/off lifetime CDF (C = 7200 As, c = 1, "
               "k = 0; engine = " << engine << ") ===\n\n";

  const core::KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 1.0, .flow_constant = 0.0});

  const auto times = core::uniform_grid(
      6000.0, 20000.0,
      static_cast<std::size_t>(args.get_int("points", 57)));

  const std::vector<double> deltas =
      args.get_double_list("delta", {100.0, 50.0, 25.0, 5.0});

  bench::BenchReport report("fig7");
  std::vector<std::string> labels;
  std::vector<core::LifetimeCurve> curves;
  for (double delta : deltas) {
    core::ApproximationOptions options{
        .delta = delta, .engine = engine, .threads = threads};
    bench::apply_engine_tuning(args, options);
    const auto run = bench::run_approximation(model, options, times);
    if (run.skipped) continue;
    curves.push_back(*run.curve);
    labels.push_back("Delta=" + io::format_double(delta, 0));
    std::cout << "Delta = " << delta << ": " << run.stats.expanded_states
              << " states, " << run.stats.generator_nonzeros
              << " nonzeros, " << run.stats.uniformization_iterations
              << " iterations (q = "
              << io::format_double(run.stats.uniformization_rate, 3)
              << ")\n";
    bench::add_engine_record(report, run, delta)
        .field("threads", bench::resolved_thread_count(engine, threads));
  }
  std::cout << "Paper quotes for Delta = 5: 2882 states, >3.2e6 nonzeros "
               "(two-well variant), >36000 iterations at t = 17000.\n\n";

  core::MonteCarloSimulator sim(model,
                                {.replications = static_cast<std::size_t>(
                                     args.get_int("runs", 1000))});
  const auto sim_start = std::chrono::steady_clock::now();
  curves.push_back(sim.empty_probability_curve(times));
  const auto sim_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sim_start)
          .count();
  labels.push_back("Simulation");
  report.add_record()
      .field("engine", "simulation")
      .field("replications", sim.last_stats().replications)
      .field("events", sim.last_stats().events)
      .field("wall_seconds", sim_seconds);

  // Bonus series the paper could not show: the exact distribution.
  curves.push_back(core::ExactC1Solver(model).solve(times));
  labels.push_back("Exact");

  bench::emit(bench::curves_table("t (s)", times, labels, curves), args,
              "fig7.csv");
  report.write(args);

  std::cout << "Shape checks vs Fig. 7: all curves rise from 0 to 1 around "
               "t ~ 15000 s; the simulation (and exact) curve is nearly a "
               "step -- the lifetime is almost deterministic; smaller Delta "
               "moves the approximation toward it but convergence is slow "
               "(the paper's phase-type-approximation caveat).\n";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::cout << "  median[" << labels[i] << "] = "
              << io::format_double(curves[i].median(), 0) << " s\n";
  }
  return 0;
}
