// Ablation: the Erlang-K remark of Sec. 6.1.
//
// "We also evaluated the battery lifetime of the on/off-model for better
// approximations to the deterministic on- and off-times, that is, for
// K > 1 ... While the lifetime distribution obtained from simulation gets
// even closer to a deterministic one for increasing K, the values computed
// by the approximation algorithm do not change visibly."
//
// This bench quantifies both halves: the simulated lifetime's standard
// deviation shrinks with K, while the approximation's curve (at a fixed
// Delta) stays put.
#include <iostream>

#include "bench_common.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/workload/onoff_model.hpp"

int main(int argc, char** argv) {
  using namespace kibamrm;
  common::CliArgs args(argc, argv);
  args.declare("csv").declare("full").declare("runs").declare("delta");
  args.validate();
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 1000));
  const double delta = args.get_double("delta", 25.0);

  std::cout << "=== Ablation: Erlang-K on/off phases (Sec. 6.1 remark) "
               "===\n\n";

  const std::vector<int> ks =
      args.has("full") ? std::vector<int>{1, 2, 4, 8, 16}
                       : std::vector<int>{1, 2, 4, 8};

  io::Table table({"K", "sim mean (s)", "sim stddev (s)",
                   "approx median (s)", "approx p(14500)", "approx p(15500)"});
  core::LifetimeCurve* previous = nullptr;
  std::vector<core::LifetimeCurve> kept;
  const auto times = core::uniform_grid(12000.0, 18000.0, 49);
  for (int k : ks) {
    const core::KibamRmModel model(
        workload::make_onoff_model({.frequency = 1.0, .erlang_k = k,
                                    .on_current = 0.96}),
        {.capacity = 7200.0, .available_fraction = 1.0,
         .flow_constant = 0.0});
    core::MonteCarloSimulator sim(model, {.replications = runs});
    const auto dist = sim.run();
    core::MarkovianApproximation approx(model, {.delta = delta});
    kept.push_back(approx.solve(times));
    const auto& curve = kept.back();
    table.add_row({std::to_string(k), io::format_double(dist.mean(), 0),
                   io::format_double(dist.stddev(), 0),
                   io::format_double(curve.median(), 0),
                   io::format_double(curve.probability_at(14500.0), 4),
                   io::format_double(curve.probability_at(15500.0), 4)});
    previous = &kept.back();
  }
  (void)previous;
  bench::emit(table, args, "erlang_k.csv");

  // Maximal pairwise difference between approximation curves across K.
  double worst = 0.0;
  for (std::size_t i = 1; i < kept.size(); ++i) {
    worst = std::max(worst, kept[i].max_difference(kept[0]));
  }
  std::cout << "Simulated stddev shrinks ~ 1/sqrt(K) (deterministic limit); "
               "approximation curves differ by at most "
            << io::format_double(worst, 4)
            << " across K -- 'do not change visibly', as the paper says.\n";
  return 0;
}
