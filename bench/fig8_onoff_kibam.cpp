// Reproduces Figure 8: battery lifetime distribution for the on/off model
// with the full KiBaM battery: f = 1 Hz, K = 1, C = 7200 As, c = 0.625,
// k = 4.5e-5/s, I = 0.96 A.
//
// The paper plots Delta in {100, 50, 25, 10, 5} plus a simulation.  The
// Delta = 10 and Delta = 5 chains have ~2.4e5 / ~9.7e5 states and dominate
// the run time, so they are gated behind --full (the default set still
// shows the convergence direction).  --engine selects the transient
// backend (the dense oracle only fits the coarsest grids); --threads N
// feeds the "parallel" engine's spmv sharding, and --batch solves all
// Delta configurations concurrently through engine::ScenarioBatch instead
// of one after another -- the perf CI compares the resulting per-scenario
// and aggregate wall times across thread counts.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/workload/onoff_model.hpp"

int main(int argc, char** argv) {
  using namespace kibamrm;
  common::CliArgs args(argc, argv);
  args.declare("csv").declare("full").declare("points").declare("delta")
      .declare("runs").declare("engine").declare("json").declare("threads")
      .declare("batch").declare("no-fuse").declare("no-detect")
      .declare("kernels").declare("reorder").declare("tile-mb")
      .declare("spill-dir").declare("shards");
  args.validate();
  bench::apply_kernel_choice(args);
  const std::string engine =
      args.get_choice("engine", "uniformization", engine::backend_names());
  const auto threads =
      static_cast<std::size_t>(args.get_nonnegative_int("threads", 0));

  std::cout << "=== Figure 8: on/off lifetime CDF (C = 7200 As, c = 0.625, "
               "k = 4.5e-5/s; engine = " << engine << ") ===\n"
            << (args.has("full")
                    ? ""
                    : "(default resolution; pass --full for the paper's "
                      "Delta = 10 and 5)\n")
            << '\n';

  const core::KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});

  const auto times = core::uniform_grid(
      6000.0, 20000.0,
      static_cast<std::size_t>(args.get_int("points", 57)));

  const std::vector<double> default_deltas =
      args.has("full") ? std::vector<double>{100.0, 50.0, 25.0, 10.0, 5.0}
                       : std::vector<double>{100.0, 50.0, 25.0};
  const std::vector<double> deltas =
      args.get_double_list("delta", default_deltas);

  bench::BenchReport report("fig8");
  std::vector<std::string> labels;
  std::vector<core::LifetimeCurve> curves;
  if (args.has("batch")) {
    // Batched mode: all Delta scenarios in flight at once; per-scenario
    // wall times overlap, the aggregate record holds the batch wall time.
    std::vector<engine::Scenario> scenarios;
    for (double delta : deltas) {
      scenarios.push_back({"Delta=" + io::format_double(delta, 0), model,
                           delta, times});
    }
    engine::ScenarioBatchOptions batch_options{.engine = engine,
                                               .threads = threads};
    bench::apply_engine_tuning(args, batch_options);
    engine::ScenarioBatch batch(batch_options);
    const auto results = batch.solve_all(scenarios);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& result = results[i];
      if (result.skipped) {
        std::cout << result.label << ": skipped (" << result.skip_reason
                  << ")\n";
        continue;
      }
      if (result.failed) {
        std::cout << result.label << ": failed (" << result.failure_reason
                  << ")\n";
        continue;
      }
      curves.push_back(*result.curve);
      labels.push_back(result.label);
      std::cout << result.label << ": " << result.stats.expanded_states
                << " states, " << result.stats.generator_nonzeros
                << " nonzeros, " << result.stats.uniformization_iterations
                << " iterations, "
                << io::format_double(result.wall_seconds, 1)
                << " s wall clock\n";
      bench::add_scenario_record(report, result, deltas[i])
          .field("threads", batch.last_stats().threads);
    }
    bench::add_batch_record(report, engine, batch.last_stats());
    std::cout << "batch: " << batch.last_stats().scenarios
              << " scenarios on " << batch.last_stats().threads
              << " threads, "
              << io::format_double(batch.last_stats().wall_seconds, 1)
              << " s wall clock ("
              << io::format_double(batch.last_stats().solve_seconds_total, 1)
              << " s summed solve time)\n";
  } else {
    for (double delta : deltas) {
      core::ApproximationOptions options{
          .delta = delta, .engine = engine, .threads = threads};
      bench::apply_engine_tuning(args, options);
      const auto run = bench::run_approximation(model, options, times);
      if (run.skipped) continue;
      curves.push_back(*run.curve);
      labels.push_back("Delta=" + io::format_double(delta, 0));
      std::cout << "Delta = " << delta << ": " << run.stats.expanded_states
                << " states, " << run.stats.generator_nonzeros
                << " nonzeros, " << run.stats.uniformization_iterations
                << " iterations, " << io::format_double(run.wall_seconds, 1)
                << " s wall clock\n";
      bench::add_engine_record(report, run, delta)
          .field("threads", bench::resolved_thread_count(engine, threads));
    }
  }
  std::cout << "Paper quotes for Delta = 5: ~3.2e6 nonzeros; >2.3e4 "
               "iterations for t = 10000, >4.6e4 for t = 20000.\n\n";

  core::MonteCarloSimulator sim(model,
                                {.replications = static_cast<std::size_t>(
                                     args.get_int("runs", 1000))});
  const auto sim_start = std::chrono::steady_clock::now();
  curves.push_back(sim.empty_probability_curve(times));
  const auto sim_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sim_start)
          .count();
  labels.push_back("Simulation");
  report.add_record()
      .field("engine", "simulation")
      .field("replications", sim.last_stats().replications)
      .field("events", sim.last_stats().events)
      .field("wall_seconds", sim_seconds);

  bench::emit(bench::curves_table("t (s)", times, labels, curves), args,
              "fig8.csv");
  report.write(args);

  std::cout << "Shape checks vs Fig. 8: the approximation curves lie left "
               "of (above) the simulation and move right as Delta shrinks, "
               "but remain visibly apart even at Delta = 5 -- the paper's "
               "\"quite far away\" observation.\n";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::cout << "  median[" << labels[i] << "] = "
              << io::format_double(curves[i].median(), 0) << " s\n";
  }
  return 0;
}
