#!/usr/bin/env python3
"""Append one run's BENCH_*.json records to the queryable perf history.

The bench drivers and the CI perf job each produce a pile of
BENCH_<name>.json files (engine records) plus the micro_kernels
google-benchmark JSON.  This script folds them into ONE line of
bench/history/history.jsonl -- a run record keyed by commit and
timestamp -- so the perf trajectory of the repository accumulates
across PRs in a form one `jq`/pandas line can query, instead of being
buried in per-run CI artifact zips.

Usage:
  record_history.py record [--dir BUILD_DIR] [--label TEXT]
                           [--history PATH] [--commit SHA]
  record_history.py show   [--history PATH] [--metric wall_seconds]
  record_history.py gate   [--dir BUILD_DIR] [--history PATH]
                           [--metric wall_seconds] [--threshold 1.20]
                           [--min-value 0.05]

`record` scans BUILD_DIR (default: ./build next to the repo root) for
BENCH_*.json, keeps the informative fields, and appends one JSON line.
`show` prints a per-run summary of the recorded fig8 wall times --
the quick "did that PR move the needle" view.
`gate` is the trend gate the CI perf job runs: it compares a fresh
build directory's BENCH_*.json (or, without --dir, the newest history
line) against the *median* of the matching configurations across all
earlier history lines, and fails (exit 1) when any configuration
regressed by more than the threshold (default 20%).  Configurations
are matched on (bench, engine, delta, threads, kernels, reorder, shards,
scenario), so a new kernel tier or ordering starts its own trend
instead of tripping the gate; values below --min-value seconds are
noise and never gate.
"""

import argparse
import datetime
import glob
import json
import os
import subprocess
import sys

SCRIPT_DIR = os.path.dirname(os.path.abspath(__file__))
DEFAULT_HISTORY = os.path.join(SCRIPT_DIR, "history", "history.jsonl")

# google-benchmark emits many repetitions/aggregates; keep the fields a
# trajectory query actually consumes.
MICRO_FIELDS = ("name", "real_time", "cpu_time", "time_unit",
                "bytes_per_second", "items_per_second")


def git_commit():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=SCRIPT_DIR, text=True).strip()
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def collect(build_dir):
    benches = {}
    micro = []
    for path in sorted(glob.glob(os.path.join(build_dir, "BENCH_*.json"))):
        with open(path) as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                print(f"[history] skipping unparsable {path}: {error}",
                      file=sys.stderr)
                continue
        name = os.path.basename(path)
        if "records" in data:
            benches[name] = data["records"]
        elif "benchmarks" in data:
            micro.extend(
                {field: row[field] for field in MICRO_FIELDS if field in row}
                for row in data["benchmarks"])
        else:
            print(f"[history] skipping {path}: unknown schema",
                  file=sys.stderr)
    return benches, micro


def cmd_record(args):
    benches, micro = collect(args.dir)
    if not benches and not micro:
        raise SystemExit(f"no BENCH_*.json found under {args.dir}")
    run = {
        "schema": 1,
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "commit": args.commit or git_commit(),
        "label": args.label,
        "benches": benches,
        "micro_kernels": micro,
    }
    os.makedirs(os.path.dirname(args.history), exist_ok=True)
    with open(args.history, "a") as handle:
        handle.write(json.dumps(run, sort_keys=True) + "\n")
    records = sum(len(v) for v in benches.values())
    print(f"[history] appended run {run['commit']} "
          f"({records} records, {len(micro)} micro rows) -> {args.history}")


def cmd_show(args):
    if not os.path.exists(args.history):
        raise SystemExit(f"no history at {args.history}")
    with open(args.history) as handle:
        for line in handle:
            run = json.loads(line)
            summary = []
            for name, records in sorted(run.get("benches", {}).items()):
                for record in records:
                    if "states" not in record or "engine" not in record:
                        continue
                    value = record.get(args.metric)
                    if value is None:
                        continue
                    summary.append(
                        f"{record['engine']}@{record.get('delta', '?')}"
                        f"[{record.get('threads', 1)}t]"
                        f"={value:.2f}" if isinstance(value, float)
                        else f"{record['engine']}={value}")
            label = f" {run['label']}" if run.get("label") else ""
            print(f"{run['recorded_at']} {run['commit']}{label}: "
                  + " ".join(summary))


def record_key(bench, record):
    """Configuration identity a trend is tracked under."""
    return (bench, record.get("engine", "?"), record.get("delta"),
            record.get("threads"), record.get("kernels"),
            record.get("reorder"), record.get("scenario"),
            record.get("batch"), record.get("shards"))


def metric_values(benches, metric):
    values = {}
    for bench, records in benches.items():
        for record in records:
            value = record.get(metric)
            if isinstance(value, (int, float)):
                # Repeated configurations within one run: keep the best
                # (the gate asks "can the code still go this fast").
                key = record_key(bench, record)
                if key not in values or value < values[key]:
                    values[key] = float(value)
    return values


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def cmd_gate(args):
    if not os.path.exists(args.history):
        print(f"[gate] no history at {args.history}; nothing to gate against")
        return
    with open(args.history) as handle:
        runs = [json.loads(line) for line in handle if line.strip()]
    if args.dir:
        candidate, _ = collect(args.dir)
        baseline_runs = runs
        candidate_label = args.dir
    else:
        if not runs:
            print("[gate] empty history; nothing to gate")
            return
        candidate = runs[-1].get("benches", {})
        baseline_runs = runs[:-1]
        candidate_label = (f"run {runs[-1].get('commit', '?')} "
                           f"({runs[-1].get('recorded_at', '?')})")
    if not baseline_runs:
        print("[gate] no baseline runs in history; nothing to gate against")
        return
    current = metric_values(candidate, args.metric)
    baselines = {}
    for run in baseline_runs:
        for key, value in metric_values(run.get("benches", {}),
                                        args.metric).items():
            baselines.setdefault(key, []).append(value)
    regressions = []
    compared = 0
    for key, value in sorted(current.items()):
        history = baselines.get(key)
        if not history:
            continue  # new configuration: starts its own trend
        base = median(history)
        if base < args.min_value or value < args.min_value:
            continue  # sub-noise timings never gate
        compared += 1
        ratio = value / base
        marker = "REGRESSION" if ratio > args.threshold else "ok"
        line = (f"[gate] {marker}: {key[0]} {key[1]}"
                f" delta={key[2]} threads={key[3]} kernels={key[4]}"
                f" reorder={key[5]}: {args.metric} {value:.3f}"
                f" vs median {base:.3f} over {len(history)} run(s)"
                f" (x{ratio:.2f})")
        if ratio > args.threshold:
            regressions.append(line)
            print(line, file=sys.stderr)
        else:
            print(line)
    print(f"[gate] {candidate_label}: {compared} configuration(s) compared, "
          f"{len(regressions)} regression(s) beyond x{args.threshold:.2f}")
    if regressions:
        raise SystemExit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    record = sub.add_parser("record")
    record.add_argument("--dir", default=os.path.join(
        os.path.dirname(SCRIPT_DIR), "build"))
    record.add_argument("--label", default="")
    record.add_argument("--history", default=DEFAULT_HISTORY)
    record.add_argument("--commit", default="")
    show = sub.add_parser("show")
    show.add_argument("--history", default=DEFAULT_HISTORY)
    show.add_argument("--metric", default="wall_seconds")
    gate = sub.add_parser("gate")
    gate.add_argument("--dir", default="")
    gate.add_argument("--history", default=DEFAULT_HISTORY)
    gate.add_argument("--metric", default="wall_seconds")
    gate.add_argument("--threshold", type=float, default=1.20)
    gate.add_argument("--min-value", type=float, default=0.05)
    args = parser.parse_args()
    if args.command == "show":
        cmd_show(args)
    elif args.command == "gate":
        cmd_gate(args)
    else:
        cmd_record(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
