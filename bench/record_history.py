#!/usr/bin/env python3
"""Append one run's BENCH_*.json records to the queryable perf history.

The bench drivers and the CI perf job each produce a pile of
BENCH_<name>.json files (engine records) plus the micro_kernels
google-benchmark JSON.  This script folds them into ONE line of
bench/history/history.jsonl -- a run record keyed by commit and
timestamp -- so the perf trajectory of the repository accumulates
across PRs in a form one `jq`/pandas line can query, instead of being
buried in per-run CI artifact zips.

Usage:
  record_history.py record [--dir BUILD_DIR] [--label TEXT]
                           [--history PATH] [--commit SHA]
  record_history.py show   [--history PATH] [--metric wall_seconds]

`record` scans BUILD_DIR (default: ./build next to the repo root) for
BENCH_*.json, keeps the informative fields, and appends one JSON line.
`show` prints a per-run summary of the recorded fig8 wall times --
the quick "did that PR move the needle" view.
"""

import argparse
import datetime
import glob
import json
import os
import subprocess
import sys

SCRIPT_DIR = os.path.dirname(os.path.abspath(__file__))
DEFAULT_HISTORY = os.path.join(SCRIPT_DIR, "history", "history.jsonl")

# google-benchmark emits many repetitions/aggregates; keep the fields a
# trajectory query actually consumes.
MICRO_FIELDS = ("name", "real_time", "cpu_time", "time_unit",
                "bytes_per_second", "items_per_second")


def git_commit():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=SCRIPT_DIR, text=True).strip()
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def collect(build_dir):
    benches = {}
    micro = []
    for path in sorted(glob.glob(os.path.join(build_dir, "BENCH_*.json"))):
        with open(path) as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                print(f"[history] skipping unparsable {path}: {error}",
                      file=sys.stderr)
                continue
        name = os.path.basename(path)
        if "records" in data:
            benches[name] = data["records"]
        elif "benchmarks" in data:
            micro.extend(
                {field: row[field] for field in MICRO_FIELDS if field in row}
                for row in data["benchmarks"])
        else:
            print(f"[history] skipping {path}: unknown schema",
                  file=sys.stderr)
    return benches, micro


def cmd_record(args):
    benches, micro = collect(args.dir)
    if not benches and not micro:
        raise SystemExit(f"no BENCH_*.json found under {args.dir}")
    run = {
        "schema": 1,
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "commit": args.commit or git_commit(),
        "label": args.label,
        "benches": benches,
        "micro_kernels": micro,
    }
    os.makedirs(os.path.dirname(args.history), exist_ok=True)
    with open(args.history, "a") as handle:
        handle.write(json.dumps(run, sort_keys=True) + "\n")
    records = sum(len(v) for v in benches.values())
    print(f"[history] appended run {run['commit']} "
          f"({records} records, {len(micro)} micro rows) -> {args.history}")


def cmd_show(args):
    if not os.path.exists(args.history):
        raise SystemExit(f"no history at {args.history}")
    with open(args.history) as handle:
        for line in handle:
            run = json.loads(line)
            summary = []
            for name, records in sorted(run.get("benches", {}).items()):
                for record in records:
                    if "states" not in record or "engine" not in record:
                        continue
                    value = record.get(args.metric)
                    if value is None:
                        continue
                    summary.append(
                        f"{record['engine']}@{record.get('delta', '?')}"
                        f"[{record.get('threads', 1)}t]"
                        f"={value:.2f}" if isinstance(value, float)
                        else f"{record['engine']}={value}")
            label = f" {run['label']}" if run.get("label") else ""
            print(f"{run['recorded_at']} {run['commit']}{label}: "
                  + " ".join(summary))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    record = sub.add_parser("record")
    record.add_argument("--dir", default=os.path.join(
        os.path.dirname(SCRIPT_DIR), "build"))
    record.add_argument("--label", default="")
    record.add_argument("--history", default=DEFAULT_HISTORY)
    record.add_argument("--commit", default="")
    show = sub.add_parser("show")
    show.add_argument("--history", default=DEFAULT_HISTORY)
    show.add_argument("--metric", default="wall_seconds")
    args = parser.parse_args()
    if args.command == "show":
        cmd_show(args)
    else:
        cmd_record(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
