// Ablation: battery-law comparison across the models of Sec. 2/3 plus the
// cited Rakhmatov-Vrudhula diffusion model [2].
//
// All models are normalised to the same total charge (7200 As) and, where
// a recovery parameter exists, calibrated to the same continuous-load
// lifetime at 0.96 A.  The sweep then shows how each law extrapolates to
// other currents and to pulsed operation -- the spread is exactly why the
// paper argues battery-aware evaluation needs a physical model rather than
// a C/I rule.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "kibamrm/battery/calibration.hpp"
#include "kibamrm/battery/ideal.hpp"
#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/battery/peukert.hpp"
#include "kibamrm/battery/rakhmatov_vrudhula.hpp"
#include "kibamrm/common/units.hpp"

namespace {

using namespace kibamrm;

double minutes(std::optional<double> seconds) {
  return seconds ? units::seconds_to_minutes(*seconds) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  args.declare("csv").declare("full");
  args.validate();

  std::cout << "=== Ablation: battery laws under equal calibration ===\n"
            << "total charge 7200 As; KiBaM and R-V calibrated to 90 min at "
               "0.96 A continuous\n\n";

  // KiBaM: c from [9], k fitted to 90 min at 0.96 A.
  const double k = battery::calibrate_flow_constant(
      7200.0, 0.625, 0.96, units::minutes_to_seconds(90.0));
  const battery::KibamParameters kibam_params{7200.0, 0.625, k};

  // R-V: beta fitted by bisection to the same anchor.
  double beta_lo = 1e-4;
  double beta_hi = 1.0;
  for (int i = 0; i < 100; ++i) {
    const double beta = std::sqrt(beta_lo * beta_hi);
    const double life = battery::rv_constant_load_lifetime(
                            {7200.0, beta, 20}, 0.96)
                            .value();
    // Larger beta -> faster diffusion -> longer lifetime.
    if (life < units::minutes_to_seconds(90.0)) {
      beta_lo = beta;
    } else {
      beta_hi = beta;
    }
  }
  const battery::RakhmatovVrudhulaParameters rv_params{
      7200.0, std::sqrt(beta_lo * beta_hi), 20};
  std::cout << "fitted R-V beta = " << rv_params.beta << " /sqrt(s)\n";

  // Peukert: fitted through the ideal point at low current and the
  // calibration anchor.
  const battery::PeukertLaw peukert = battery::PeukertLaw::fit(
      0.1, 72000.0, 0.96, units::minutes_to_seconds(90.0));
  std::cout << "fitted Peukert a = " << peukert.a()
            << ", b = " << peukert.b() << "\n\n";

  io::Table table({"load", "ideal C/I (min)", "Peukert (min)", "KiBaM (min)",
                   "R-V (min)"});
  const auto add_constant_row = [&](double current) {
    battery::IdealBattery ideal(7200.0);
    battery::KibamBattery kibam(kibam_params);
    battery::RakhmatovVrudhulaBattery rv(rv_params);
    const auto profile = battery::LoadProfile::constant(current);
    table.add_row({
        "constant " + io::format_double(current, 2) + " A",
        io::format_double(minutes(compute_lifetime(ideal, profile)), 0),
        io::format_double(units::seconds_to_minutes(
                              peukert.lifetime(current)),
                          0),
        io::format_double(minutes(compute_lifetime(kibam, profile)), 0),
        io::format_double(minutes(compute_lifetime(rv, profile)), 0),
    });
  };
  add_constant_row(0.48);
  add_constant_row(0.96);
  add_constant_row(1.92);

  // Pulsed loads: Peukert has no defined answer (the paper's point), so
  // that column shows the average-current fallacy L(a * I_avg^-b).
  for (double f : {1.0, 0.01}) {
    battery::IdealBattery ideal(7200.0);
    battery::KibamBattery kibam(kibam_params);
    battery::RakhmatovVrudhulaBattery rv(rv_params);
    const auto profile = battery::LoadProfile::square_wave(f, 0.96);
    const battery::LifetimeOptions opts{.max_time = 1e8};
    table.add_row({
        "square " + io::format_double(f, 2) + " Hz",
        io::format_double(minutes(compute_lifetime(ideal, profile, opts)), 0),
        io::format_double(
            units::seconds_to_minutes(peukert.lifetime(0.48)), 0),
        io::format_double(minutes(compute_lifetime(kibam, profile, opts)), 0),
        io::format_double(minutes(compute_lifetime(rv, profile, opts)), 0),
    });
  }
  kibamrm::bench::emit(table, args, "battery_models.csv");

  std::cout
      << "Readings: the ideal battery is load-independent (125 min at "
         "0.96 A); Peukert bends the constant-load curve but (applied to "
         "the average current) cannot distinguish pulse frequencies; KiBaM "
         "and R-V agree at the calibration point by construction and both "
         "deliver more charge under pulsed operation, with different "
         "relaxation spectra (single-rate well vs diffusion modes) driving "
         "their remaining disagreement.\n";
  return 0;
}
