// Google-benchmark micro kernels for the numerical substrate: the CSR
// left-multiply (uniformisation's inner loop), Fox-Glynn window
// construction, the dense complex matrix exponential (the exact solver's
// inner call), a full uniformisation transient solve, and expanded-chain
// construction.
#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/core/exact_c1.hpp"
#include "kibamrm/linalg/csr_matrix.hpp"
#include "kibamrm/linalg/expm.hpp"
#include "kibamrm/markov/fox_glynn.hpp"
#include "kibamrm/markov/uniformization.hpp"
#include "kibamrm/workload/onoff_model.hpp"
#include "kibamrm/workload/simple_model.hpp"

namespace {

using namespace kibamrm;

linalg::CsrMatrix banded_stochastic(std::size_t n) {
  // Tridiagonal-ish stochastic matrix resembling a uniformised expanded
  // battery chain.
  linalg::CooBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    if (i > 0) {
      builder.add(i, i - 1, 0.3);
      off += 0.3;
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, 0.2);
      off += 0.2;
    }
    builder.add(i, i, 1.0 - off);
  }
  return builder.build();
}

void BM_CsrLeftMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::CsrMatrix p = banded_stochastic(n);
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> out(n);
  for (auto _ : state) {
    p.left_multiply(pi, out);
    pi.swap(out);
    benchmark::DoNotOptimize(pi.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.nonzeros()));
}
BENCHMARK(BM_CsrLeftMultiply)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_FoxGlynnWindow(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto window = markov::fox_glynn(lambda, 1e-10);
    benchmark::DoNotOptimize(window.weights.data());
  }
}
BENCHMARK(BM_FoxGlynnWindow)->Arg(10)->Arg(1000)->Arg(46000);

void BM_ComplexExpm3x3(benchmark::State& state) {
  // The exact solver's inner call: exp(t (Q - s R)) for the simple model.
  linalg::DenseComplex m(3, 3);
  const std::complex<double> s(0.01, 0.4);
  const double t = 20.0;
  const double q[3][3] = {{-3.0, 2.0, 1.0}, {6.0, -6.0, 0.0}, {2.0, 0.0, -2.0}};
  const double r[3] = {8.0, 200.0, 0.0};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      m(i, j) = std::complex<double>(q[i][j] * t, 0.0);
      if (i == j) m(i, j) -= s * r[i] * t;
    }
  }
  for (auto _ : state) {
    const auto e = linalg::expm(m);
    benchmark::DoNotOptimize(&e);
  }
}
BENCHMARK(BM_ComplexExpm3x3);

void BM_ExactC1CurvePoint(benchmark::State& state) {
  const core::KibamRmModel model(workload::make_simple_model(),
                                 {.capacity = 800.0,
                                  .available_fraction = 1.0,
                                  .flow_constant = 0.0});
  const core::ExactC1Solver solver(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.empty_probability(20.0));
  }
}
BENCHMARK(BM_ExactC1CurvePoint);

void BM_BuildExpandedChain(benchmark::State& state) {
  const double delta = static_cast<double>(state.range(0));
  const core::KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
  for (auto _ : state) {
    const auto expanded = core::build_expanded_chain(model, delta);
    benchmark::DoNotOptimize(&expanded);
    state.counters["states"] =
        static_cast<double>(expanded.grid.state_count());
    state.counters["nnz"] =
        static_cast<double>(expanded.chain.generator().nonzeros());
  }
}
BENCHMARK(BM_BuildExpandedChain)->Arg(100)->Arg(25)->Arg(10);

void BM_TransientSolve(benchmark::State& state) {
  // End-to-end uniformisation on the Delta = 25 single-well chain.
  const core::KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 1.0, .flow_constant = 0.0});
  const auto expanded = core::build_expanded_chain(model, 25.0);
  for (auto _ : state) {
    markov::TransientSolver solver(expanded.chain);
    const auto result = solver.solve(expanded.initial, {15000.0});
    benchmark::DoNotOptimize(result.front().data());
  }
}
BENCHMARK(BM_TransientSolve);

}  // namespace
