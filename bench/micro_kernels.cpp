// Google-benchmark micro kernels for the numerical substrate: the CSR
// left-multiply (uniformisation's inner loop) and its fused scatter and
// gather variants, the compressed FusedGatherPlan kernel, Fox-Glynn
// window construction and plan-cache reuse, the dense complex matrix
// exponential (the exact solver's inner call), full uniformisation
// transient solves (fused vs baseline), and expanded-chain construction.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <complex>
#include <random>
#include <vector>

#include "kibamrm/common/thread_pool.hpp"
#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/core/exact_c1.hpp"
#include "kibamrm/linalg/csr_matrix.hpp"
#include "kibamrm/linalg/expm.hpp"
#include "kibamrm/linalg/fused_gather.hpp"
#include "kibamrm/linalg/kernels.hpp"
#include "kibamrm/markov/fox_glynn.hpp"
#include "kibamrm/markov/uniformization.hpp"
#include "kibamrm/workload/onoff_model.hpp"
#include "kibamrm/workload/simple_model.hpp"

namespace {

using namespace kibamrm;

linalg::CsrMatrix banded_stochastic(std::size_t n) {
  // Tridiagonal-ish stochastic matrix resembling a uniformised expanded
  // battery chain.
  linalg::CooBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    if (i > 0) {
      builder.add(i, i - 1, 0.3);
      off += 0.3;
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, 0.2);
      off += 0.2;
    }
    builder.add(i, i, 1.0 - off);
  }
  return builder.build();
}

// --------------------------------------------------------------------
// Dispatched kernel layer (linalg/kernels): dot/axpy/nrm2 and the fused
// gather, scalar vs SIMD vs pool-sharded.  The second benchmark argument
// selects the tier (0 = scalar, 1 = avx2, 2 = avx512, 3 = mixed); SIMD
// rows are skipped on CPUs without the ISA.  The double tiers are bitwise
// identical -- those benches measure the cost of the contract, not
// different arithmetic; the mixed tier trades float32 operand rounding
// for bandwidth.

namespace k = linalg::kernels;

bool select_tier(benchmark::State& state) {
  const auto tier = static_cast<k::Dispatch>(state.range(1));
  if (tier != k::Dispatch::kMixed &&
      static_cast<int>(k::detected_dispatch()) < static_cast<int>(tier)) {
    state.SkipWithError("CPU lacks the requested SIMD tier");
    return false;
  }
  k::set_dispatch(tier);
  return true;
}

std::vector<double> random_doubles(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uniform(-1.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = uniform(rng);
  return v;
}

void BM_KernelDot(benchmark::State& state) {
  if (!select_tier(state)) return;
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_doubles(n, 1);
  const auto b = random_doubles(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k::dot(a.data(), b.data(), n));
  }
  k::clear_dispatch();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * sizeof(double)));
}
BENCHMARK(BM_KernelDot)
    ->Args({4096, 0})->Args({4096, 1})->Args({4096, 2})
    ->Args({262144, 0})->Args({262144, 1})->Args({262144, 2})
    ->Args({2097152, 0})->Args({2097152, 1})->Args({2097152, 2});

void BM_KernelNrm2(benchmark::State& state) {
  if (!select_tier(state)) return;
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto v = random_doubles(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k::nrm2(v.data(), n));
  }
  k::clear_dispatch();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(double)));
}
BENCHMARK(BM_KernelNrm2)->Args({262144, 0})->Args({262144, 1});

void BM_KernelAxpy(benchmark::State& state) {
  if (!select_tier(state)) return;
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_doubles(n, 4);
  auto y = random_doubles(n, 5);
  for (auto _ : state) {
    k::axpy(1e-3, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  k::clear_dispatch();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(3 * n * sizeof(double)));
}
BENCHMARK(BM_KernelAxpy)
    ->Args({4096, 0})->Args({4096, 1})->Args({4096, 2})
    ->Args({262144, 0})->Args({262144, 1})->Args({262144, 2});

void BM_KernelDotSharded(benchmark::State& state) {
  // The sharded reduction exactly as linalg::arnoldi drives it: block
  // partials filled over pool shards, one pairwise reduce -- bitwise
  // equal to the single-thread dot at every lane count (range(1) =
  // pool lanes).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto lanes = static_cast<std::size_t>(state.range(1));
  common::ThreadPool pool(lanes);
  const auto a = random_doubles(n, 6);
  const auto b = random_doubles(n, 7);
  const std::size_t blocks = k::block_count(n);
  std::vector<double> partials(blocks, 0.0);
  const std::size_t shards = std::min(blocks, 4 * pool.thread_count());
  for (auto _ : state) {
    pool.parallel_for(shards, [&](std::size_t s, std::size_t /*lane*/) {
      k::dot_blocks(a.data(), b.data(), n, blocks * s / shards,
                    blocks * (s + 1) / shards, partials.data());
    });
    benchmark::DoNotOptimize(k::reduce_pairwise(partials.data(), blocks));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * sizeof(double)));
}
BENCHMARK(BM_KernelDotSharded)
    ->Args({2097152, 1})->Args({2097152, 2})->Args({2097152, 4});

void BM_FusedGatherPlanKernelTier(benchmark::State& state) {
  // The fused gather through an explicit tier pin (the unsuffixed
  // BM_FusedGatherPlanKernel below runs the production default): scalar
  // per-length switch vs the opt-in AVX2 row-group gathers, same bits
  // out.  This bench is why the grouping defaults off -- watch it per
  // microarchitecture before flipping kernels::set_gather_grouping.
  if (!select_tier(state)) return;
  k::set_gather_grouping(state.range(1) == 1);
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::CsrMatrix pt = banded_stochastic(n).transposed();
  const auto plan = linalg::FusedGatherPlan::build(pt);
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> out(n, 0.0);
  std::vector<double> accum(n, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        plan->multiply_fused_range(pi, out, accum, 1e-4, 0, n));
    pi.swap(out);
  }
  k::clear_dispatch();
  k::set_gather_grouping(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plan->nonzeros()));
}
BENCHMARK(BM_FusedGatherPlanKernelTier)
    ->Args({100000, 0})->Args({100000, 1})
    ->Args({1000000, 0})->Args({1000000, 1});

void BM_FusedGatherReordered(benchmark::State& state) {
  // The production fused gather on the *real* Delta = 25 fig8 chain,
  // natural order vs the level-major reordering (range(0): 0 = none,
  // 1 = level) across kernel tiers (range(1), as in select_tier).  The
  // level ordering packs >99% of the compacted-transpose rows into
  // identical-offset runs, which is what the AVX2/AVX-512 uniform-segment
  // kernels vectorise across -- on natural order the SIMD tiers degrade
  // to the scalar path, so the (1, tier) / (0, tier) ratio is the whole
  // reordering win.  Feeds the perf history via record_history.py.
  if (!select_tier(state)) return;
  const bool mixed =
      static_cast<k::Dispatch>(state.range(1)) == k::Dispatch::kMixed;
  const core::KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
  const auto expanded = core::build_expanded_chain(
      model, 25.0,
      state.range(0) == 1 ? core::StateOrdering::kLevel
                          : core::StateOrdering::kNone);
  const linalg::CsrMatrix p = expanded.chain.generator().uniformized(
      1.02 * expanded.chain.max_exit_rate());
  std::vector<std::uint32_t> seeds;
  for (std::size_t i = 0; i < expanded.initial.size(); ++i) {
    if (expanded.initial[i] != 0.0) {
      seeds.push_back(static_cast<std::uint32_t>(i));
    }
  }
  const linalg::CsrMatrix pt = p.transposed_submatrix(p.reachable_rows(seeds));
  const auto plan = linalg::FusedGatherPlan::build(pt);
  const std::size_t n = pt.rows();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> out(n, 0.0);
  std::vector<double> accum(n, 0.0);
  std::vector<float> pi_f(pi.begin(), pi.end());
  std::vector<float> out_f(n, 0.0f);
  for (auto _ : state) {
    if (mixed) {
      benchmark::DoNotOptimize(
          plan->multiply_fused_range_mixed(pi_f, out_f, accum, 1e-4, 0, n));
      pi_f.swap(out_f);
    } else {
      benchmark::DoNotOptimize(
          plan->multiply_fused_range(pi, out, accum, 1e-4, 0, n));
      pi.swap(out);
    }
  }
  k::clear_dispatch();
  state.counters["uniform_fraction"] = plan->uniform_fraction();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plan->nonzeros()));
}
BENCHMARK(BM_FusedGatherReordered)
    ->Args({0, 0})->Args({1, 0})
    ->Args({0, 1})->Args({1, 1})
    ->Args({0, 2})->Args({1, 2})
    ->Args({1, 3});

void BM_CsrLeftMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::CsrMatrix p = banded_stochastic(n);
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> out(n);
  for (auto _ : state) {
    p.left_multiply(pi, out);
    pi.swap(out);
    benchmark::DoNotOptimize(pi.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.nonzeros()));
}
BENCHMARK(BM_CsrLeftMultiply)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_CsrMultiplyFusedRange(benchmark::State& state) {
  // The fused gather step (spmv + weighted accumulate + sup-norm delta in
  // one pass) on the transposed banded chain -- the per-iteration work of
  // the fused uniformisation loop, CSR fallback flavour.
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::CsrMatrix pt = banded_stochastic(n).transposed();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> out(n, 0.0);
  std::vector<double> accum(n, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pt.multiply_fused_range(pi, out, accum, 1e-4, 0, n));
    pi.swap(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pt.nonzeros()));
}
BENCHMARK(BM_CsrMultiplyFusedRange)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_FusedGatherPlanKernel(benchmark::State& state) {
  // Same fused step through the compressed plan (uint16 value dictionary +
  // int16 column offsets): the production kernel of both uniformisation
  // engines.  Compare against BM_CsrMultiplyFusedRange for the layout win.
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::CsrMatrix pt = banded_stochastic(n).transposed();
  const auto plan = linalg::FusedGatherPlan::build(pt);
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> out(n, 0.0);
  std::vector<double> accum(n, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        plan->multiply_fused_range(pi, out, accum, 1e-4, 0, n));
    pi.swap(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plan->nonzeros()));
}
BENCHMARK(BM_FusedGatherPlanKernel)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_CsrLeftMultiplyPartitionedFused(benchmark::State& state) {
  // The fused scatter variant (spmv + accumulate + delta, absorbing rows
  // carried over outside the CSR structure).
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::CsrMatrix p = banded_stochastic(n);
  const auto identity = p.identity_rows();
  std::vector<std::uint32_t> active;
  active.reserve(n - identity.size());
  std::size_t next_identity = 0;
  for (std::size_t row = 0; row < n; ++row) {
    if (next_identity < identity.size() && identity[next_identity] == row) {
      ++next_identity;
    } else {
      active.push_back(static_cast<std::uint32_t>(row));
    }
  }
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> out(n, 0.0);
  std::vector<double> accum(n, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.left_multiply_partitioned_fused(
        pi, out, active, identity, 1e-4, accum));
    pi.swap(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.nonzeros()));
}
BENCHMARK(BM_CsrLeftMultiplyPartitionedFused)->Arg(10000)->Arg(100000);

void BM_FoxGlynnWindow(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto window = markov::fox_glynn(lambda, 1e-10);
    benchmark::DoNotOptimize(window.weights.data());
  }
}
BENCHMARK(BM_FoxGlynnWindow)->Arg(10)->Arg(1000)->Arg(46000);

void BM_FoxGlynnPlanReuse(benchmark::State& state) {
  // Cached window lookup -- the per-increment cost on a uniform time grid
  // once the first increment has computed the window.
  markov::UniformizationPlan plan;
  const double lambda = static_cast<double>(state.range(0));
  plan.window(lambda, 1e-10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.window(lambda, 1e-10).get());
  }
}
BENCHMARK(BM_FoxGlynnPlanReuse)->Arg(1000)->Arg(46000);

void BM_ComplexExpm3x3(benchmark::State& state) {
  // The exact solver's inner call: exp(t (Q - s R)) for the simple model.
  linalg::DenseComplex m(3, 3);
  const std::complex<double> s(0.01, 0.4);
  const double t = 20.0;
  const double q[3][3] = {{-3.0, 2.0, 1.0}, {6.0, -6.0, 0.0}, {2.0, 0.0, -2.0}};
  const double r[3] = {8.0, 200.0, 0.0};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      m(i, j) = std::complex<double>(q[i][j] * t, 0.0);
      if (i == j) m(i, j) -= s * r[i] * t;
    }
  }
  for (auto _ : state) {
    const auto e = linalg::expm(m);
    benchmark::DoNotOptimize(&e);
  }
}
BENCHMARK(BM_ComplexExpm3x3);

void BM_ExactC1CurvePoint(benchmark::State& state) {
  const core::KibamRmModel model(workload::make_simple_model(),
                                 {.capacity = 800.0,
                                  .available_fraction = 1.0,
                                  .flow_constant = 0.0});
  const core::ExactC1Solver solver(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.empty_probability(20.0));
  }
}
BENCHMARK(BM_ExactC1CurvePoint);

void BM_BuildExpandedChain(benchmark::State& state) {
  const double delta = static_cast<double>(state.range(0));
  const core::KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 0.625,
       .flow_constant = 4.5e-5});
  for (auto _ : state) {
    const auto expanded = core::build_expanded_chain(model, delta);
    benchmark::DoNotOptimize(&expanded);
    state.counters["states"] =
        static_cast<double>(expanded.grid.state_count());
    state.counters["nnz"] =
        static_cast<double>(expanded.chain.generator().nonzeros());
  }
}
BENCHMARK(BM_BuildExpandedChain)->Arg(100)->Arg(25)->Arg(10);

void BM_TransientSolve(benchmark::State& state) {
  // End-to-end uniformisation on the Delta = 25 single-well chain with
  // the production defaults: fused compacted kernel plus steady-state
  // early termination.
  const core::KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 1.0, .flow_constant = 0.0});
  const auto expanded = core::build_expanded_chain(model, 25.0);
  for (auto _ : state) {
    markov::TransientSolver solver(expanded.chain);
    const auto result = solver.solve(expanded.initial, {15000.0});
    benchmark::DoNotOptimize(result.front().data());
  }
}
BENCHMARK(BM_TransientSolve);

void BM_TransientSolveBaseline(benchmark::State& state) {
  // The pre-fusion loop (scatter kernel, no early termination) on the same
  // chain -- the reference the CI fused-speedup gate measures against.
  const core::KibamRmModel model(
      workload::make_onoff_model({.frequency = 1.0, .erlang_k = 1,
                                  .on_current = 0.96}),
      {.capacity = 7200.0, .available_fraction = 1.0, .flow_constant = 0.0});
  const auto expanded = core::build_expanded_chain(model, 25.0);
  for (auto _ : state) {
    markov::TransientSolver solver(
        expanded.chain,
        {.fused_kernels = false, .steady_state_detection = false});
    const auto result = solver.solve(expanded.initial, {15000.0});
    benchmark::DoNotOptimize(result.front().data());
  }
}
BENCHMARK(BM_TransientSolveBaseline);

}  // namespace
