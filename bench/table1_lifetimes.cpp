// Reproduces Table 1: experimental vs KiBaM vs modified-KiBaM lifetimes for
// a continuous 0.96 A load and 1 Hz / 0.2 Hz square waves.
//
// Columns:
//   Experimental     -- the measured values the paper quotes from Rao et
//                       al. [9] (90 / 193 / 230 min), reference constants.
//   KiBaM            -- analytical KiBaM, k calibrated as in the paper so
//                       the continuous lifetime matches 90 min.
//   Mod. stochastic  -- our discrete-recovery stochastic model (mean of
//                       --runs replications), the substitute for [9]'s
//                       stochastic modified KiBaM.
//   Mod. numerical   -- modified KiBaM (height-scaled recovery) integrated
//                       deterministically with RK4.
//
// The paper's qualitative findings to check in the output: the KiBaM
// columns are frequency-independent (203/203 in the paper; the experiment
// said 193 vs 230), and the deterministic modified model stays frequency-
// independent as well.
//
// A second block solves the three workloads as one engine::ScenarioBatch
// through the Markovian approximation (the stochastic Erlang-1 on/off
// analogue of the square waves) and reports the median lifetimes --
// --engine/--threads select the backend and concurrency, and the timings
// land in BENCH_table1.json for the perf-trajectory CI.
#include <iostream>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "kibamrm/battery/calibration.hpp"
#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/battery/modified_kibam.hpp"
#include "kibamrm/battery/stochastic_battery.hpp"
#include "kibamrm/common/random.hpp"
#include "kibamrm/common/units.hpp"
#include "kibamrm/stats/empirical.hpp"
#include "kibamrm/workload/onoff_model.hpp"

namespace {

using namespace kibamrm;
using battery::LoadProfile;

double lifetime_minutes(battery::BatteryModel& model,
                        const LoadProfile& profile) {
  const auto life =
      battery::compute_lifetime(model, profile, {.max_time = 1e8});
  return units::seconds_to_minutes(life.value());
}

double stochastic_mean_minutes(const LoadProfile& profile, int runs,
                               common::RandomStream& rng) {
  // Calibrated like the paper calibrates the KiBaM: the directly usable
  // charge is what the continuous 0.96 A load delivers in the experimental
  // 90 min (5184 As); the remainder of the 7200 As capacity is bound and
  // only reachable through idle-slot recovery.
  battery::StochasticBatteryParameters params;
  params.charge_per_unit = 4.8;
  params.available_units = 1080;  // 5184 As
  params.bound_units = 420;       // 2016 As
  params.slot_duration = 0.5;
  params.recovery_decay = 4.0;
  params.base_recovery_probability = 0.05;
  std::vector<double> lives;
  lives.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    battery::StochasticBattery batteryModel(params, rng.split());
    lives.push_back(units::seconds_to_minutes(
        battery::compute_lifetime(batteryModel, profile, {.max_time = 1e8})
            .value()));
  }
  return stats::EmpiricalDistribution(std::move(lives)).mean();
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  args.declare("csv").declare("full").declare("runs").declare("engine")
      .declare("threads").declare("delta").declare("json")
      .declare("no-fuse").declare("no-detect").declare("kernels")
      .declare("reorder").declare("tile-mb").declare("spill-dir")
      .declare("shards");
  args.validate();
  bench::apply_kernel_choice(args);
  const int runs = args.get_int("runs", args.has("full") ? 200 : 50);
  const std::string engine =
      args.get_choice("engine", "uniformization", engine::backend_names());
  const auto threads =
      static_cast<std::size_t>(args.get_nonnegative_int("threads", 0));
  const double delta = args.get_double("delta", 100.0);

  std::cout << "=== Table 1: experimental and computed lifetimes (min) ===\n"
            << "Battery: C = 7200 As, c = 0.625 (from [9]); k calibrated so "
               "the continuous lifetime is 90 min.\n\n";

  // Calibration exactly as described in Sec. 3.
  const double k = battery::calibrate_flow_constant(
      7200.0, 0.625, 0.96, units::minutes_to_seconds(90.0));
  std::cout << "calibrated flow constant k = " << k
            << " /s (paper quotes ~4.5e-5 /s)\n\n";
  const battery::KibamParameters params{7200.0, 0.625, k};

  const std::vector<std::pair<std::string, LoadProfile>> workloads = {
      {"Continuous", LoadProfile::constant(0.96)},
      {"1 Hz", LoadProfile::square_wave(1.0, 0.96)},
      {"0.2 Hz", LoadProfile::square_wave(0.2, 0.96)},
  };
  // The experimental column quoted by the paper from [9].
  const std::vector<double> experimental = {90.0, 193.0, 230.0};

  common::RandomStream rng(2025);
  io::Table table({"Frequency", "Exp. lifetime", "KiBaM", "Mod. stochastic",
                   "Mod. numerical"});
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto& [label, profile] = workloads[i];
    battery::KibamBattery kibam(params);
    battery::ModifiedKibamBattery modified(params, 0.25);
    table.add_row({label, io::format_double(experimental[i], 0),
                   io::format_double(lifetime_minutes(kibam, profile), 0),
                   io::format_double(
                       stochastic_mean_minutes(profile, runs, rng), 0),
                   io::format_double(lifetime_minutes(modified, profile), 0)});
  }
  kibamrm::bench::emit(table, args, "table1.csv");

  // Batched Markovian block: the same three loads as CTMC workloads (the
  // continuous draw is a one-state chain, the square waves their Erlang-1
  // on/off analogues), solved concurrently through the engine layer.
  workload::WorkloadBuilder continuous_builder;
  continuous_builder.set_initial_state(
      continuous_builder.add_state("on", 0.96));
  const battery::KibamParameters markov_battery{7200.0, 0.625, k};
  const auto markov_times = core::uniform_grid(3000.0, 21000.0, 37);
  std::vector<engine::Scenario> scenarios;
  scenarios.push_back({"Continuous",
                       core::KibamRmModel(continuous_builder.build(),
                                          markov_battery),
                       delta, markov_times});
  for (const double frequency : {1.0, 0.2}) {
    scenarios.push_back(
        {io::format_double(frequency, 1) + " Hz",
         core::KibamRmModel(
             workload::make_onoff_model({.frequency = frequency,
                                         .erlang_k = 1,
                                         .on_current = 0.96}),
             markov_battery),
         delta, markov_times});
  }
  engine::ScenarioBatchOptions batch_options{.engine = engine,
                                             .threads = threads};
  bench::apply_engine_tuning(args, batch_options);
  engine::ScenarioBatch batch(batch_options);
  const auto batch_results = batch.solve_all(scenarios);

  bench::BenchReport report("table1");
  std::cout << "Markovian approximation (batch of " << scenarios.size()
            << " scenarios, engine = " << engine << ", Delta = " << delta
            << ", " << batch.last_stats().threads << " threads):\n";
  for (const auto& result : batch_results) {
    if (result.skipped) {
      std::cout << "  " << result.label << ": skipped ("
                << result.skip_reason << ")\n";
      continue;
    }
    if (result.failed) {
      std::cout << "  " << result.label << ": failed ("
                << result.failure_reason << ")\n";
      continue;
    }
    std::cout << "  median[" << result.label << "] = "
              << io::format_double(
                     units::seconds_to_minutes(result.curve->median()), 0)
              << " min (" << result.stats.expanded_states << " states, "
              << io::format_double(result.wall_seconds, 2) << " s)\n";
    bench::add_scenario_record(report, result, delta)
        .field("threads", batch.last_stats().threads);
  }
  bench::add_batch_record(report, engine, batch.last_stats());
  report.write(args);
  std::cout << '\n';

  std::cout << "Paper's Table 1 for comparison (min):\n"
            << "  Continuous  90 |  91 |  90 |  89\n"
            << "  1 Hz       193 | 203 | 193 | 193\n"
            << "  0.2 Hz     230 | 203 | 226 | 193\n"
            << "Check: both deterministic columns are frequency-independent "
               "(the paper's central observation); the stochastic column is "
               "our substituted recovery model, not [9]'s exact law.\n";
  return 0;
}
