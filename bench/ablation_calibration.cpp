// Ablation: the parameter-fitting procedure of Sec. 3.
//
// Sweeps the calibration target (the experimental continuous-load lifetime)
// and reports the fitted flow constant k, plus the resulting 1 Hz
// square-wave lifetime -- showing how sensitive the model is to the single
// calibration measurement, and that the square-wave prediction saturates as
// k grows (all bound charge becomes usable).
#include <iostream>

#include "bench_common.hpp"
#include "kibamrm/battery/calibration.hpp"
#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/common/units.hpp"

int main(int argc, char** argv) {
  using namespace kibamrm;
  common::CliArgs args(argc, argv);
  args.declare("csv").declare("full");
  args.validate();

  std::cout << "=== Ablation: KiBaM calibration sensitivity (Sec. 3) ===\n"
            << "C = 7200 As, c = 0.625, continuous load 0.96 A\n\n";

  io::Table table({"target cont. lifetime (min)", "fitted k (1/s)",
                   "1 Hz square-wave lifetime (min)",
                   "0.2 Hz square-wave lifetime (min)"});
  for (double target_min : {80.0, 85.0, 90.0, 95.0, 100.0, 110.0, 120.0}) {
    const double k = battery::calibrate_flow_constant(
        7200.0, 0.625, 0.96, units::minutes_to_seconds(target_min));
    battery::KibamBattery b1(battery::KibamParameters{7200.0, 0.625, k});
    const double life_1hz = units::seconds_to_minutes(
        *compute_lifetime(b1, battery::LoadProfile::square_wave(1.0, 0.96),
                          {.max_time = 1e8}));
    battery::KibamBattery b2(battery::KibamParameters{7200.0, 0.625, k});
    const double life_02hz = units::seconds_to_minutes(
        *compute_lifetime(b2, battery::LoadProfile::square_wave(0.2, 0.96),
                          {.max_time = 1e8}));
    table.add_row({io::format_double(target_min, 0),
                   io::format_double(k, 8),
                   io::format_double(life_1hz, 1),
                   io::format_double(life_02hz, 1)});
  }
  bench::emit(table, args, "calibration.csv");

  std::cout << "Notes: k grows superlinearly with the target (recovery must "
               "supply ever more bound charge within the shrinking "
               "lifetime); the two square-wave columns stay equal at every "
               "k -- the analytic KiBaM cannot produce the frequency "
               "dependence seen experimentally (Table 1's point).\n";
  return 0;
}
