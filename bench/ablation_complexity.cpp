// Ablation: the complexity analysis of Sec. 5.3.
//
// Sweeps the step size Delta for both on/off chains (single-well c = 1 and
// two-well c = 0.625) and reports expanded states, generator non-zeros,
// uniformisation rate/iterations and wall-clock solve time for a fixed
// horizon.  Expected scaling: states ~ Delta^-1 (single well) / Delta^-2
// (two wells); iterations grow once the consumption rate I/Delta exceeds
// the workload rates (the paper's "q gets linear in 1/Delta" regime).
// --engine swaps the transient backend to compare iteration economics.
#include <iostream>

#include "bench_common.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/workload/onoff_model.hpp"

namespace {

using namespace kibamrm;

void sweep(const core::KibamRmModel& model, const std::vector<double>& deltas,
           const char* title, const std::string& engine, std::size_t threads,
           const common::CliArgs& args, const std::string& csv_name,
           bench::BenchReport& report) {
  std::cout << "--- " << title << " ---\n";
  io::Table table({"Delta", "states", "nonzeros", "q (1/s)", "iterations",
                   "solve time (s)"});
  for (double delta : deltas) {
    core::ApproximationOptions options{
        .delta = delta, .engine = engine, .threads = threads};
    bench::apply_engine_tuning(args, options);
    const auto run = bench::run_approximation(model, options, {17000.0});
    if (run.skipped) continue;
    table.add_row({io::format_double(delta, 0),
                   std::to_string(run.stats.expanded_states),
                   std::to_string(run.stats.generator_nonzeros),
                   io::format_double(run.stats.uniformization_rate, 3),
                   std::to_string(run.stats.uniformization_iterations),
                   io::format_double(run.wall_seconds, 3)});
    bench::add_engine_record(report, run, delta)
        .field("threads", bench::resolved_thread_count(engine, threads))
        .field("sweep", title);
  }
  bench::emit(table, args, csv_name);
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  args.declare("csv").declare("full").declare("engine").declare("json")
      .declare("threads").declare("no-fuse").declare("no-detect")
      .declare("kernels").declare("reorder").declare("tile-mb")
      .declare("spill-dir").declare("shards");
  args.validate();
  bench::apply_kernel_choice(args);
  const std::string engine =
      args.get_choice("engine", "uniformization", engine::backend_names());
  const auto threads =
      static_cast<std::size_t>(args.get_nonnegative_int("threads", 0));

  std::cout << "=== Ablation: Sec. 5.3 complexity scaling (t = 17000 s; "
               "engine = " << engine << ") ===\n\n";

  const auto onoff = workload::make_onoff_model(
      {.frequency = 1.0, .erlang_k = 1, .on_current = 0.96});

  bench::BenchReport report("ablation_complexity");
  sweep(core::KibamRmModel(onoff, {.capacity = 7200.0,
                                   .available_fraction = 1.0,
                                   .flow_constant = 0.0}),
        {200.0, 100.0, 50.0, 25.0, 10.0, 5.0, 2.0},
        "single well (c = 1): states ~ 1/Delta", engine, threads, args,
        "complexity_single.csv", report);

  const std::vector<double> two_well_deltas =
      args.has("full") ? std::vector<double>{300.0, 100.0, 50.0, 25.0, 10.0}
                       : std::vector<double>{300.0, 100.0, 50.0, 25.0};
  sweep(core::KibamRmModel(onoff, {.capacity = 7200.0,
                                   .available_fraction = 0.625,
                                   .flow_constant = 4.5e-5}),
        two_well_deltas, "two wells (c = 0.625): states ~ 1/Delta^2", engine,
        threads, args, "complexity_two_well.csv", report);
  report.write(args);

  std::cout << "Paper anchors: Delta = 5 single-well chain has 2882 states "
               "and needs >36000 iterations for t = 17000 s.\n";
  return 0;
}
