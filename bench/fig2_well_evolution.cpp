// Reproduces Figure 2: evolution of the available-charge (y1) and
// bound-charge (y2) wells under a square-wave load of f = 0.001 Hz,
// I = 0.96 A, C = 7200 As, c = 0.625, k = 4.5e-5/s.
#include <iostream>

#include "bench_common.hpp"
#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"

int main(int argc, char** argv) {
  using namespace kibamrm;
  common::CliArgs args(argc, argv);
  args.declare("csv").declare("full").declare("step");
  args.validate();
  const double step = args.get_double("step", 100.0);

  std::cout << "=== Figure 2: well evolution, f = 0.001 Hz square wave ===\n"
            << "C = 7200 As, c = 0.625, k = 4.5e-5/s, I = 0.96 A\n\n";

  battery::KibamBattery model({7200.0, 0.625, 4.5e-5});
  std::vector<double> times;
  for (double t = 0.0; t <= 12500.0; t += step) times.push_back(t);
  const auto samples = battery::record_trajectory(
      model, battery::LoadProfile::square_wave(0.001, 0.96), times);

  io::Table table({"t (s)", "y1 (As)", "y2 (As)"});
  for (const auto& sample : samples) {
    table.add_numeric_row({sample.time, sample.available, sample.bound}, 1);
  }
  bench::emit(table, args, "fig2.csv");

  std::cout << "Shape checks vs the paper's plot: y1 starts at 4500 and "
               "saw-tooths downward (drops in on-phases, recovers in "
               "off-phases); y2 starts at 2700 and decreases monotonically, "
               "faster over time; depletion shortly after t = 12000 s.\n"
            << "Battery empty at t = " << samples.back().time << " s (y1 = "
            << samples.back().available << ").\n";
  return 0;
}
