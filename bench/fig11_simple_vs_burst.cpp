// Reproduces Figure 11: lifetime distribution of the simple model vs the
// burst model (C = 800 mAh, c = 0.625, Delta = 5).
//
// The burst model condenses send activity (lambda_burst = 182/h chosen so
// its steady-state send probability matches the simple model's 1/4) and
// sleeps more; its battery outlives the simple model's at every probe in
// the upper half of the distribution (paper: 95% vs 89% empty at 20 h).
#include <iostream>

#include "bench_common.hpp"
#include "kibamrm/common/units.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/markov/steady_state.hpp"
#include "kibamrm/workload/burst_model.hpp"
#include "kibamrm/workload/simple_model.hpp"

int main(int argc, char** argv) {
  using namespace kibamrm;
  common::CliArgs args(argc, argv);
  args.declare("csv").declare("full").declare("points").declare("delta");
  args.validate();
  const double delta = args.get_double("delta", 5.0);

  std::cout << "=== Figure 11: simple vs burst model (C = 800 mAh, "
               "c = 0.625, Delta = " << delta << ") ===\n\n";

  const auto simple = workload::make_simple_model();
  const auto burst = workload::make_burst_model();
  std::cout << "Calibration check: burst send probability = "
            << io::format_double(workload::burst_send_probability(burst), 4)
            << " (simple model: 0.25); steady currents "
            << io::format_double(burst.steady_state_current(), 2) << " vs "
            << io::format_double(simple.steady_state_current(), 2)
            << " mA.\n\n";

  const battery::KibamParameters batt{
      800.0, 0.625, units::per_second_to_per_hour(4.5e-5)};
  const auto times = core::uniform_grid(
      0.5, 30.0, static_cast<std::size_t>(args.get_int("points", 60)));

  std::vector<std::string> labels;
  std::vector<core::LifetimeCurve> curves;
  {
    core::MarkovianApproximation solver(core::KibamRmModel(simple, batt),
                                        {.delta = delta});
    curves.push_back(solver.solve(times));
    labels.push_back("simple model");
  }
  {
    core::MarkovianApproximation solver(core::KibamRmModel(burst, batt),
                                        {.delta = delta});
    curves.push_back(solver.solve(times));
    labels.push_back("burst model");
  }

  bench::emit(bench::curves_table("t (h)", times, labels, curves), args,
              "fig11.csv");

  std::cout << "Shape checks vs Fig. 11: the burst curve lies right of the "
               "simple curve over the main rise.\n"
            << "  p_empty(20 h): simple = "
            << io::format_double(curves[0].probability_at(20.0), 4)
            << " (paper ~0.95), burst = "
            << io::format_double(curves[1].probability_at(20.0), 4)
            << " (paper ~0.89)\n";
  return 0;
}
