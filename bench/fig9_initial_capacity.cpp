// Reproduces Figure 9: on/off model lifetime distribution under three
// initial-capacity scenarios (paper uses Delta = 5):
//   (a) C = 7200 As, c = 1      -- all charge available,
//   (b) C = 7200 As, c = 0.625  -- KiBaM split, k = 4.5e-5/s,
//   (c) C = 4500 As, c = 1      -- only the available fraction exists.
//
// Expected ordering (paper text): (a) lasts longest, (c) shortest, (b) in
// between but closer to (a) than to (c) at the far end.
#include <iostream>

#include "bench_common.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/workload/onoff_model.hpp"

int main(int argc, char** argv) {
  using namespace kibamrm;
  common::CliArgs args(argc, argv);
  args.declare("csv").declare("full").declare("points").declare("delta");
  args.validate();
  // c = 1 chains are single-well and cheap: Delta = 5 is fine by default;
  // the two-well scenario (b) costs minutes at Delta = 5, so without
  // --full it runs at Delta = 25.
  const double delta_single = args.get_double("delta", 5.0);
  const double delta_two_well =
      args.get_double("delta", args.has("full") ? 5.0 : 25.0);

  std::cout << "=== Figure 9: on/off model with different initial "
               "capacities ===\n"
            << "single-well Delta = " << delta_single
            << ", two-well Delta = " << delta_two_well
            << (args.has("full") ? "" : "  (pass --full for Delta = 5)")
            << "\n\n";

  const auto onoff = workload::make_onoff_model(
      {.frequency = 1.0, .erlang_k = 1, .on_current = 0.96});
  const auto times = core::uniform_grid(
      6000.0, 20000.0,
      static_cast<std::size_t>(args.get_int("points", 57)));

  std::vector<std::string> labels;
  std::vector<core::LifetimeCurve> curves;

  {
    core::MarkovianApproximation solver(
        core::KibamRmModel(onoff, {.capacity = 4500.0,
                                   .available_fraction = 1.0,
                                   .flow_constant = 0.0}),
        {.delta = delta_single});
    curves.push_back(solver.solve(times));
    labels.push_back("C=4500, c=1");
  }
  {
    core::MarkovianApproximation solver(
        core::KibamRmModel(onoff, {.capacity = 7200.0,
                                   .available_fraction = 0.625,
                                   .flow_constant = 4.5e-5}),
        {.delta = delta_two_well});
    curves.push_back(solver.solve(times));
    labels.push_back("C=7200, c=0.625");
  }
  {
    core::MarkovianApproximation solver(
        core::KibamRmModel(onoff, {.capacity = 7200.0,
                                   .available_fraction = 1.0,
                                   .flow_constant = 0.0}),
        {.delta = delta_single});
    curves.push_back(solver.solve(times));
    labels.push_back("C=7200, c=1");
  }

  bench::emit(bench::curves_table("t (s)", times, labels, curves), args,
              "fig9.csv");

  std::cout << "Shape checks vs Fig. 9: curves ordered left to right as "
               "(C=4500,c=1), (C=7200,c=0.625), (C=7200,c=1) -- the "
               "bound-charge battery recovers part but not all of the "
               "difference to the fully available battery.\n";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::cout << "  median[" << labels[i] << "] = "
              << io::format_double(curves[i].median(), 0) << " s\n";
  }
  return 0;
}
