// Reproduces Figure 10: lifetime distribution of the simple wireless-device
// model (Fig. 4) under three battery settings:
//   left set   : C = 500 mAh, c = 1      -- Delta in {25, 2} + simulation
//   middle set : C = 800 mAh, c = 0.625  -- Delta in {25, 2} + simulation
//   right curve: C = 800 mAh, c = 1      -- exact (transform solver,
//                 substituting the paper's uniformisation algorithm [25])
//
// Units are mAh and hours; k = 4.5e-5/s converted to per-hour (0.162/h; the
// paper prints 1.96e-2/h, an arithmetic slip -- see DESIGN.md).
#include <iostream>

#include "bench_common.hpp"
#include "kibamrm/common/units.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/exact_c1.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/workload/simple_model.hpp"

int main(int argc, char** argv) {
  using namespace kibamrm;
  common::CliArgs args(argc, argv);
  args.declare("csv").declare("full").declare("points").declare("runs");
  args.validate();
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 1000));

  std::cout << "=== Figure 10: simple model lifetime CDF ===\n"
            << "lambda = 2/h, mu = 6/h, tau = 1/h; I = {8, 200, 0} mA\n\n";

  const auto simple = workload::make_simple_model();
  const double k_per_hour = units::per_second_to_per_hour(4.5e-5);
  const auto times = core::uniform_grid(
      0.5, 30.0, static_cast<std::size_t>(args.get_int("points", 60)));

  std::vector<std::string> labels;
  std::vector<core::LifetimeCurve> curves;

  const core::KibamRmModel c500(simple, {.capacity = 500.0,
                                         .available_fraction = 1.0,
                                         .flow_constant = 0.0});
  for (double delta : {25.0, 2.0}) {
    core::MarkovianApproximation solver(c500, {.delta = delta});
    curves.push_back(solver.solve(times));
    labels.push_back("C=500 c=1 D=" + io::format_double(delta, 0));
  }
  curves.push_back(core::MonteCarloSimulator(c500, {.replications = runs})
                       .empty_probability_curve(times));
  labels.push_back("C=500 c=1 sim");

  const core::KibamRmModel c800k(simple, {.capacity = 800.0,
                                          .available_fraction = 0.625,
                                          .flow_constant = k_per_hour});
  for (double delta : {25.0, 2.0}) {
    core::MarkovianApproximation solver(c800k, {.delta = delta});
    curves.push_back(solver.solve(times));
    labels.push_back("C=800 c=.625 D=" + io::format_double(delta, 0));
  }
  curves.push_back(core::MonteCarloSimulator(c800k, {.replications = runs})
                       .empty_probability_curve(times));
  labels.push_back("C=800 c=.625 sim");

  const core::KibamRmModel c800(simple, {.capacity = 800.0,
                                         .available_fraction = 1.0,
                                         .flow_constant = 0.0});
  curves.push_back(core::ExactC1Solver(c800).solve(times));
  labels.push_back("C=800 c=1 exact");

  bench::emit(bench::curves_table("t (h)", times, labels, curves), args,
              "fig10.csv");

  std::cout
      << "Shape checks vs Fig. 10 (paper text): the C=500 battery is >99% "
         "empty after ~17 h; the KiBaM battery surely empty after ~23 h; "
         "the fully available 800 mAh battery after ~25 h.  The middle "
         "curves sit closer to the right curve than to the left set, and "
         "the approximation is better for the single-well (left) setting "
         "than for the two-well (middle) one.\n";
  std::cout << "  p_empty(17 h) C=500 set:  "
            << io::format_double(curves[2].probability_at(17.0), 4) << '\n'
            << "  p_empty(23 h) C=800 kibam: "
            << io::format_double(curves[5].probability_at(23.0), 4) << '\n'
            << "  p_empty(25 h) C=800 exact: "
            << io::format_double(curves[6].probability_at(25.0), 4) << '\n';
  return 0;
}
