// Shared helpers for the bench binaries: option handling, curve printing
// and machine-readable result records.
//
// Every bench accepts:
//   --csv <path>    also write the printed series as CSV
//   --full          run the expensive full-resolution configurations
//   --points N      number of curve points (where applicable)
//   --json <path>   where to write the BENCH_*.json record file
//   --engine NAME   transient engine (where the bench solves chains)
//   --threads N     engine/batch execution lanes (0/absent = auto-detect)
//   --batch         solve all configurations through engine::ScenarioBatch
//   --no-fuse       run the pre-fusion baseline uniformisation loop (the
//                   measured reference of the CI fused-speedup gate)
//   --no-detect     disable steady-state early termination
//   --tile-mb N     streamed tile size in MB for --engine ooc (default 8)
//   --spill-dir P   directory for the ooc engine's tile spill file
//                   (default $TMPDIR, falling back to /tmp); must exist
//   --shards N      worker processes for --engine sharded (default 1;
//                   each worker additionally runs --threads lanes, so
//                   shards x threads composes)
//   --kernels T     pin the vector-kernel tier:
//                   scalar | avx2 | avx512 | mixed | auto
//                   (default auto = CPUID; the double tiers are bitwise
//                   identical, mixed trades float32 operand rounding for
//                   throughput; the pin is for measurement and for
//                   sanitizer runs.  An unavailable SIMD tier falls back
//                   to the best supported one with a stderr note.)
//   --reorder R     state ordering of the expanded chain:
//                   none | level | rcm (default none; level packs the
//                   charge-major runs the SIMD gather tiers vectorise
//                   across, rcm minimises bandwidth -- results are
//                   inverse-permuted, so curves agree with none)
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "kibamrm/common/cli.hpp"
#include "kibamrm/common/error.hpp"
#include "kibamrm/common/resource.hpp"
#include "kibamrm/common/thread_pool.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/lifetime_distribution.hpp"
#include "kibamrm/engine/scenario_batch.hpp"
#include "kibamrm/io/table.hpp"
#include "kibamrm/linalg/kernels.hpp"

namespace kibamrm::bench {

/// The --kernels choice, validated; "auto" when absent.
inline std::string kernel_choice(const common::CliArgs& args) {
  return args.get_choice("kernels", "auto",
                         {"auto", "scalar", "avx2", "avx512", "mixed"});
}

/// The --reorder choice, validated; "none" when absent.
inline std::string reorder_choice(const common::CliArgs& args) {
  return args.get_choice("reorder", "none", {"none", "level", "rcm"});
}

/// Applies --kernels to the process-global dispatch immediately (so even
/// code paths that never see an options struct -- simulators, direct
/// TransientSolver users -- run the requested tier).
inline void apply_kernel_choice(const common::CliArgs& args) {
  linalg::kernels::apply_dispatch(kernel_choice(args));
}

/// Tier the kernels actually run, for the "kernels" record field.
inline std::string active_kernel_name() {
  return std::string(
      linalg::kernels::dispatch_name(linalg::kernels::active_dispatch()));
}

/// Prints one table and optionally mirrors it to CSV.
inline void emit(const io::Table& table, const common::CliArgs& args,
                 const std::string& default_csv_name) {
  table.print(std::cout);
  std::cout << '\n';
  if (args.has("csv")) {
    const std::string path = args.get("csv", default_csv_name);
    table.write_csv_file(path);
    std::cout << "[csv written to " << path << "]\n\n";
  }
}

/// Builds a table with a time column and one labelled probability column
/// per curve (all curves share the time grid).
inline io::Table curves_table(const std::string& time_header,
                              const std::vector<double>& times,
                              const std::vector<std::string>& labels,
                              const std::vector<core::LifetimeCurve>& curves) {
  std::vector<std::string> headers = {time_header};
  headers.insert(headers.end(), labels.begin(), labels.end());
  io::Table table(headers);
  for (std::size_t i = 0; i < times.size(); ++i) {
    std::vector<double> row = {times[i]};
    for (const auto& curve : curves) row.push_back(curve.probabilities()[i]);
    table.add_numeric_row(row, 4);
  }
  return table;
}

/// One machine-readable benchmark record: ordered key -> rendered-JSON-value
/// pairs.  Use the typed field() overloads; strings are escaped minimally
/// (the fields benches emit are identifiers and numbers).
class BenchRecord {
 public:
  BenchRecord& field(const std::string& key, const std::string& value) {
    std::string escaped;
    for (char c : value) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    return raw(key, '"' + escaped + '"');
  }
  BenchRecord& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  BenchRecord& field(const std::string& key, double value) {
    std::ostringstream rendered;
    rendered.precision(17);
    rendered << value;
    return raw(key, rendered.str());
  }
  // One template for every integer type: size_t, uint64_t and int are
  // distinct (and overlapping) types across platforms, so fixed overloads
  // would be ambiguous somewhere.
  template <typename Int>
    requires std::is_integral_v<Int>
  BenchRecord& field(const std::string& key, Int value) {
    return raw(key, std::to_string(value));
  }

  void render(std::ostream& out) const {
    out << '{';
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out << ", ";
      out << '"' << fields_[i].first << "\": " << fields_[i].second;
    }
    out << '}';
  }

 private:
  BenchRecord& raw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Collects BenchRecords for one bench and writes them as BENCH_<name>.json
/// (path overridable with --json), so the perf trajectory of the repo can
/// accumulate machine-readable data points across runs.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  BenchRecord& add_record() { return records_.emplace_back(); }

  void write(const common::CliArgs& args) const {
    const std::string path =
        args.get("json", "BENCH_" + name_ + ".json");
    std::ofstream out(path);
    KIBAMRM_REQUIRE(out.good(), "cannot open bench json file: " + path);
    out << "{\"bench\": \"" << name_ << "\", \"records\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      if (i > 0) out << ", ";
      records_[i].render(out);
    }
    out << "]}\n";
    KIBAMRM_REQUIRE(out.good(), "failed writing bench json file: " + path);
    std::cout << "[bench json written to " << path << "]\n";
  }

 private:
  std::string name_;
  std::vector<BenchRecord> records_;
};

/// Lanes a run will actually use, for the "threads" record field: the
/// serial engines always run 1, and the 0 = auto-detect sentinel resolves
/// to the hardware count -- so trajectory tooling never groups wall times
/// under a fictitious thread count 0.
inline std::size_t resolved_thread_count(const std::string& engine,
                                         std::size_t requested) {
  // The sharded engine reads 0 as one lane per worker (auto-detecting
  // inside N forked workers would oversubscribe N-fold).
  if (engine == "sharded") return requested == 0 ? 1 : requested;
  if (engine != "parallel" && engine != "krylov" && engine != "ooc") {
    return 1;
  }
  return requested == 0 ? common::ThreadPool::hardware_thread_count()
                        : requested;
}

/// Engine-tuning flags shared by every solver driver: --no-fuse selects
/// the pre-fusion baseline loop, --no-detect disables steady-state early
/// termination (uniformisation engines; other engines ignore both),
/// --tile-mb N and --spill-dir PATH size and place the "ooc" engine's
/// streamed tile store (other engines ignore them).
inline void apply_engine_tuning(const common::CliArgs& args,
                                core::ApproximationOptions& options) {
  options.fused_kernels = !args.has("no-fuse");
  options.steady_state_detection = !args.has("no-detect");
  options.kernel_dispatch = kernel_choice(args);
  options.reorder = reorder_choice(args);
  options.tile_bytes =
      static_cast<std::size_t>(args.get_positive_int("tile-mb", 8)) << 20;
  options.spill_dir = args.get_directory("spill-dir", "");
  options.shards =
      static_cast<std::size_t>(args.get_positive_int("shards", 1));
}

inline void apply_engine_tuning(const common::CliArgs& args,
                                engine::ScenarioBatchOptions& options) {
  options.fused_kernels = !args.has("no-fuse");
  options.steady_state_detection = !args.has("no-detect");
  options.kernel_dispatch = kernel_choice(args);
  options.reorder = reorder_choice(args);
  options.tile_bytes =
      static_cast<std::size_t>(args.get_positive_int("tile-mb", 8)) << 20;
  options.spill_dir = args.get_directory("spill-dir", "");
  options.shards =
      static_cast<std::size_t>(args.get_positive_int("shards", 1));
}

/// One engine-backed approximation solve for the sweep drivers: constructs
/// the solver, times the solve, and turns an engine refusal
/// (engine::UnsupportedChainError, e.g. dense over its state limit) into a
/// printed skip instead of a lost sweep.  Genuine solver errors propagate.
struct EngineRun {
  bool skipped = false;
  core::ApproximationStats stats;
  double wall_seconds = 0.0;
  std::optional<core::LifetimeCurve> curve;
};

inline EngineRun run_approximation(const core::KibamRmModel& model,
                                   const core::ApproximationOptions& options,
                                   const std::vector<double>& times) {
  EngineRun run;
  const auto start = std::chrono::steady_clock::now();
  core::MarkovianApproximation solver(model, options);
  try {
    run.curve = solver.solve(times);
  } catch (const engine::UnsupportedChainError& error) {
    std::cout << "Delta = " << options.delta << ": skipped ("
              << error.what() << ")\n";
    run.skipped = true;
  }
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.stats = solver.last_stats();
  return run;
}

/// Work rate of the uniformisation kernel: stored entries of the matrix
/// the loop actually iterated (active_nonzeros -- the compacted transpose
/// when fused, the full uniformised P otherwise; generator nonzeros as a
/// fallback for engines that do not report it) times DTMC steps per wall
/// second.  Tracks kernel-level regressions the wall time alone hides
/// (e.g. an iteration-count change masking a slower spmv, or a grown
/// reachable closure masquerading as one).  0 when the run did no
/// iterations or took no measurable time.
inline double spmv_throughput(const core::ApproximationStats& stats,
                              double wall_seconds) {
  if (wall_seconds <= 0.0 || stats.uniformization_iterations == 0) return 0.0;
  const std::uint64_t nonzeros = stats.active_nonzeros != 0
                                     ? stats.active_nonzeros
                                     : stats.generator_nonzeros;
  return static_cast<double>(nonzeros) *
         static_cast<double>(stats.uniformization_iterations) / wall_seconds;
}

/// Appends the standard per-configuration record (engine, delta, states,
/// nonzeros, iterations, early-termination savings, effective spmv
/// throughput, wall time); returns it for driver-specific extra fields.
inline BenchRecord& add_engine_record(BenchReport& report,
                                      const EngineRun& run, double delta) {
  return report.add_record()
      .field("engine", run.stats.engine)
      .field("kernels", active_kernel_name())
      .field("reorder", run.stats.reorder)
      .field("delta", delta)
      .field("states", run.stats.expanded_states)
      .field("nonzeros", run.stats.generator_nonzeros)
      .field("iterations", run.stats.uniformization_iterations)
      .field("iterations_saved", run.stats.iterations_saved)
      .field("active_states", run.stats.active_states)
      .field("active_nonzeros", run.stats.active_nonzeros)
      .field("matrix_bandwidth", run.stats.matrix_bandwidth)
      .field("groupable_rows", run.stats.groupable_rows)
      .field("longest_uniform_run", run.stats.longest_uniform_run)
      .field("diagonal_rows", run.stats.diagonal_rows)
      .field("longest_diagonal_run", run.stats.longest_diagonal_run)
      .field("krylov_dim", run.stats.krylov_dim)
      .field("substeps", run.stats.substeps)
      .field("hessenberg_expms", run.stats.hessenberg_expms)
      .field("krylov_ortho_work", run.stats.krylov_ortho_work)
      .field("ooc_tiles", run.stats.ooc_tiles)
      .field("ooc_tile_reads", run.stats.ooc_tile_reads)
      .field("ooc_prefetch_hits", run.stats.ooc_prefetch_hits)
      .field("ooc_bytes_streamed", run.stats.ooc_bytes_streamed)
      .field("ooc_spill_bytes", run.stats.ooc_spill_bytes)
      .field("shards", run.stats.shards)
      .field("halo_bytes_per_step", run.stats.halo_bytes_per_step)
      .field("halo_wait_ns", run.stats.halo_wait_ns)
      .field("shard_nnz_imbalance", run.stats.shard_nnz_imbalance)
      .field("spmv_throughput", spmv_throughput(run.stats, run.wall_seconds))
      .field("peak_rss_bytes", common::peak_rss_bytes())
      .field("wall_seconds", run.wall_seconds);
}

/// Per-scenario record of a batched solve: same core fields as
/// add_engine_record plus the scenario label, so the trajectory tooling
/// reads batched and sequential runs uniformly.
inline BenchRecord& add_scenario_record(BenchReport& report,
                                        const engine::ScenarioResult& result,
                                        double delta) {
  return report.add_record()
      .field("engine", result.stats.engine)
      .field("kernels", active_kernel_name())
      .field("reorder", result.stats.reorder)
      .field("scenario", result.label)
      .field("delta", delta)
      .field("states", result.stats.expanded_states)
      .field("nonzeros", result.stats.generator_nonzeros)
      .field("iterations", result.stats.uniformization_iterations)
      .field("iterations_saved", result.stats.iterations_saved)
      .field("active_states", result.stats.active_states)
      .field("active_nonzeros", result.stats.active_nonzeros)
      .field("matrix_bandwidth", result.stats.matrix_bandwidth)
      .field("groupable_rows", result.stats.groupable_rows)
      .field("longest_uniform_run", result.stats.longest_uniform_run)
      .field("diagonal_rows", result.stats.diagonal_rows)
      .field("longest_diagonal_run", result.stats.longest_diagonal_run)
      .field("krylov_dim", result.stats.krylov_dim)
      .field("substeps", result.stats.substeps)
      .field("hessenberg_expms", result.stats.hessenberg_expms)
      .field("krylov_ortho_work", result.stats.krylov_ortho_work)
      .field("ooc_tiles", result.stats.ooc_tiles)
      .field("ooc_tile_reads", result.stats.ooc_tile_reads)
      .field("ooc_prefetch_hits", result.stats.ooc_prefetch_hits)
      .field("ooc_bytes_streamed", result.stats.ooc_bytes_streamed)
      .field("ooc_spill_bytes", result.stats.ooc_spill_bytes)
      .field("shards", result.stats.shards)
      .field("halo_bytes_per_step", result.stats.halo_bytes_per_step)
      .field("halo_wait_ns", result.stats.halo_wait_ns)
      .field("shard_nnz_imbalance", result.stats.shard_nnz_imbalance)
      .field("spmv_throughput",
             spmv_throughput(result.stats, result.wall_seconds))
      .field("peak_rss_bytes", common::peak_rss_bytes())
      .field("wall_seconds", result.wall_seconds);
}

/// Aggregate record of one ScenarioBatch::solve_all: batch wall-clock vs
/// summed per-scenario time is the achieved scenario-level parallelism.
inline BenchRecord& add_batch_record(BenchReport& report,
                                     const std::string& engine,
                                     const engine::BatchStats& stats) {
  return report.add_record()
      .field("engine", engine)
      .field("batch", "aggregate")
      .field("scenarios", stats.scenarios)
      .field("skipped", stats.skipped)
      .field("failed", stats.failed)
      .field("threads", stats.threads)
      .field("batch_wall_seconds", stats.wall_seconds)
      .field("solve_seconds_total", stats.solve_seconds_total)
      .field("iterations", stats.iterations_total)
      .field("iterations_saved", stats.iterations_saved_total)
      .field("plans_built", stats.plans_built)
      .field("plans_reused", stats.plans_reused)
      .field("peak_rss_bytes", common::peak_rss_bytes());
}

}  // namespace kibamrm::bench
