// Shared helpers for the bench binaries: option handling and curve printing.
//
// Every bench accepts:
//   --csv <path>   also write the printed series as CSV
//   --full         run the expensive full-resolution configurations
//   --points N     number of curve points (where applicable)
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "kibamrm/common/cli.hpp"
#include "kibamrm/core/lifetime_distribution.hpp"
#include "kibamrm/io/table.hpp"

namespace kibamrm::bench {

/// Prints one table and optionally mirrors it to CSV.
inline void emit(const io::Table& table, const common::CliArgs& args,
                 const std::string& default_csv_name) {
  table.print(std::cout);
  std::cout << '\n';
  if (args.has("csv")) {
    const std::string path = args.get("csv", default_csv_name);
    table.write_csv_file(path);
    std::cout << "[csv written to " << path << "]\n\n";
  }
}

/// Builds a table with a time column and one labelled probability column
/// per curve (all curves share the time grid).
inline io::Table curves_table(const std::string& time_header,
                              const std::vector<double>& times,
                              const std::vector<std::string>& labels,
                              const std::vector<core::LifetimeCurve>& curves) {
  std::vector<std::string> headers = {time_header};
  headers.insert(headers.end(), labels.begin(), labels.end());
  io::Table table(headers);
  for (std::size_t i = 0; i < times.size(); ++i) {
    std::vector<double> row = {times[i]};
    for (const auto& curve : curves) row.push_back(curve.probabilities()[i]);
    table.add_numeric_row(row, 4);
  }
  return table;
}

}  // namespace kibamrm::bench
