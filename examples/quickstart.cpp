// Quickstart: compute the lifetime distribution of a battery-powered
// wireless device in ~30 lines of API use.
//
//   1. Describe the workload as a CTMC with per-state current draw.
//   2. Pick battery parameters (capacity, available fraction c, flow k).
//   3. Combine them into a KibamRmModel and solve with the Markovian
//      approximation; cross-check with Monte-Carlo simulation.
//
// Build & run:
//   ./examples/quickstart [--engine uniformization|adaptive|dense|parallel|
//                                    krylov|ooc|sharded]
//                         [--threads N]
//                         [--kernels auto|scalar|avx2|avx512|mixed]
//                         [--reorder none|level|rcm]
//                         [--tile-mb N] [--spill-dir PATH]   (ooc engine)
//                         [--shards N]                    (sharded engine)
//
// The engine flag swaps the transient solver behind the approximation; all
// engines agree within solver tolerance (see tests/test_engine_backends).
// "parallel" shards the uniformisation kernel over N threads (0/absent
// auto-detects the hardware) and reproduces "uniformization" bitwise per
// thread count.  "sharded" forks N worker processes that exchange halo
// rows over shared memory, bitwise identical to "parallel" again.
#include <iostream>

#include "kibamrm/common/cli.hpp"
#include "kibamrm/common/units.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/io/table.hpp"
#include "kibamrm/workload/simple_model.hpp"

int main(int argc, char** argv) {
  using namespace kibamrm;

  common::CliArgs args(argc, argv);
  args.declare("engine").declare("delta").declare("threads")
      .declare("no-fuse").declare("no-detect").declare("kernels")
      .declare("reorder").declare("tile-mb").declare("spill-dir")
      .declare("shards");
  args.validate();
  const std::string kernels = args.get_choice(
      "kernels", "auto", {"auto", "scalar", "avx2", "avx512", "mixed"});
  const std::string reorder =
      args.get_choice("reorder", "none", {"none", "level", "rcm"});
  const std::string engine =
      args.get_choice("engine", "uniformization", engine::backend_names());
  const auto threads =
      static_cast<std::size_t>(args.get_nonnegative_int("threads", 0));
  // Delta = 5 gives an 18k-state chain; the dense oracle needs a coarser
  // default grid to stay under its state limit.
  const double delta = args.get_double("delta", engine == "dense" ? 50.0
                                                                  : 5.0);

  // A phone-like device: idle (8 mA), send (200 mA), sleep (0 mA); rates
  // per hour.  make_simple_model uses the paper's defaults (Fig. 4).
  const workload::WorkloadModel device = workload::make_simple_model();

  // An 800 mAh battery; 62.5% immediately available, the rest bound and
  // released at rate k (converted from the usual per-second data sheets).
  const battery::KibamParameters battery{
      .capacity = 800.0,  // mAh
      .available_fraction = 0.625,
      .flow_constant = units::per_second_to_per_hour(4.5e-5)};

  const core::KibamRmModel model(device, battery);

  // Solve Pr{battery empty at t} on a grid of hours.
  const auto times = core::uniform_grid(1.0, 30.0, 30);
  core::MarkovianApproximation solver(
      model, {.delta = delta,
              .engine = engine,
              .threads = threads,
              // Engine tuning knobs, mirrored by the bench drivers: the
              // fused kernel and steady-state early termination are on by
              // default and --no-fuse / --no-detect switch back to the
              // baseline loop for A/B comparisons.
              .fused_kernels = !args.has("no-fuse"),
              .steady_state_detection = !args.has("no-detect"),
              // --tile-mb / --spill-dir tune the "ooc" engine's streamed
              // tile size and spill-file location; other engines ignore
              // them.
              .tile_bytes = static_cast<std::size_t>(
                                args.get_positive_int("tile-mb", 8))
                            << 20,
              .spill_dir = args.get_directory("spill-dir", ""),
              // --kernels pins the runtime-dispatched vector tier (the
              // double tiers are bitwise identical; scalar is the
              // sanitizer-CI escape hatch) and --reorder renumbers the
              // expanded chain's states (level packs the runs the SIMD
              // gather tiers want; results are inverse-permuted, so the
              // curve is the same either way).
              .kernel_dispatch = kernels,
              .reorder = reorder,
              // --shards forks that many worker processes under the
              // "sharded" engine (each running --threads lanes); other
              // engines ignore it.
              .shards = static_cast<std::size_t>(
                  args.get_positive_int("shards", 1))});
  const core::LifetimeCurve curve = solver.solve(times);

  // Monte-Carlo cross-check (1000 runs).
  core::MonteCarloSimulator sim(model, {.replications = 1000});
  const core::LifetimeCurve mc = sim.empty_probability_curve(times);

  io::Table table({"t (h)", "Pr[empty] approx", "Pr[empty] simulation"});
  for (std::size_t i = 0; i < times.size(); i += 3) {
    table.add_numeric_row(
        {times[i], curve.probabilities()[i], mc.probabilities()[i]}, 4);
  }
  table.print(std::cout);

  std::cout << "\nMedian lifetime:  " << curve.median() << " h (approx), "
            << mc.median() << " h (simulation)\n"
            << "5% of batteries die before " << curve.quantile(0.05)
            << " h; 95% are dead by " << curve.quantile(0.95) << " h.\n"
            << "Expanded chain: " << solver.last_stats().expanded_states
            << " states, engine " << solver.last_stats().engine << ", "
            << solver.last_stats().uniformization_iterations
            << " iterations.\n";
  return 0;
}
