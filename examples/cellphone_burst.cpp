// Send-buffering policy study for a cell-phone-like device (the question
// behind Fig. 11 of the paper, asked the way a product team would).
//
// Policy A ("eager", the simple model): transmit data as it arrives.
// Policy B ("buffered", the burst model): accumulate data and send it in
// condensed bursts, letting the device sleep between bursts.  Both policies
// move the same average amount of data (the burst rate is calibrated so
// the steady-state send probability matches).
//
// Output: the full lifetime distributions under a KiBaM battery, the
// quantiles a spec sheet would quote, and the policy recommendation.
#include <iostream>

#include "kibamrm/common/units.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/io/table.hpp"
#include "kibamrm/markov/steady_state.hpp"
#include "kibamrm/workload/burst_model.hpp"
#include "kibamrm/workload/simple_model.hpp"

int main() {
  using namespace kibamrm;

  const auto eager = workload::make_simple_model();
  const auto buffered = workload::make_burst_model();

  std::cout << "Policy comparison: eager vs buffered sending\n"
            << "  same send share: eager 0.25, buffered "
            << io::format_double(workload::burst_send_probability(buffered),
                                 4)
            << '\n'
            << "  average draw:    eager "
            << io::format_double(eager.steady_state_current(), 1)
            << " mA, buffered "
            << io::format_double(buffered.steady_state_current(), 1)
            << " mA (sleep pays)\n\n";

  const battery::KibamParameters battery{
      800.0, 0.625, units::per_second_to_per_hour(4.5e-5)};
  const auto times = core::uniform_grid(1.0, 36.0, 71);

  core::MarkovianApproximation solve_eager(
      core::KibamRmModel(eager, battery), {.delta = 5.0});
  core::MarkovianApproximation solve_buffered(
      core::KibamRmModel(buffered, battery), {.delta = 5.0});
  const auto curve_eager = solve_eager.solve(times);
  const auto curve_buffered = solve_buffered.solve(times);

  io::Table table({"metric", "eager", "buffered"});
  const auto row = [&](const std::string& name, double a, double b) {
    table.add_row({name, io::format_double(a, 2), io::format_double(b, 2)});
  };
  row("median lifetime (h)", curve_eager.median(), curve_buffered.median());
  row("5% quantile (h)", curve_eager.quantile(0.05),
      curve_buffered.quantile(0.05));
  row("95% quantile (h)", curve_eager.quantile(0.95),
      curve_buffered.quantile(0.95));
  row("Pr[dead at 20 h]", curve_eager.probability_at(20.0),
      curve_buffered.probability_at(20.0));
  row("mean lifetime (h)", curve_eager.mean_estimate(),
      curve_buffered.mean_estimate());
  table.print(std::cout);

  std::cout << "\nRecommendation: buffering wins in the upper half of the "
               "distribution (longer typical lifetime thanks to sleep), at "
               "the price of a slightly heavier fast-depletion tail -- the "
               "condensed bursts can hit an unlucky battery hard early.  "
               "Quote the 5% quantile accordingly.\n";
  return 0;
}
