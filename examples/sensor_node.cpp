// Sensor-node duty-cycling study.
//
// A wireless sensor samples and transmits in duty cycles.  The radio draws
// a fixed current while on; the node is otherwise quiescent.  Energy folk
// wisdom says only the duty cycle matters -- but a kinetic battery also
// cares *how* the on-time is distributed: many short wake-ups leave the
// available-charge well shallowly depleted, while long burst windows drive
// it deep before the bound charge can follow.
//
// This example sweeps the wake-up frequency at a fixed 50% duty cycle and
// reports (a) the deterministic KiBaM lifetime under an exact square wave
// and (b) the lifetime distribution when the wake-ups are random
// (exponential phases, the paper's on/off model), including the spread a
// deployment engineer should plan for.
#include <iostream>
#include <vector>

#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/io/table.hpp"
#include "kibamrm/workload/onoff_model.hpp"

int main() {
  using namespace kibamrm;

  // AA-class cell from the paper's measurements: 7200 As, c = 0.625,
  // k = 4.5e-5/s; radio draw 0.96 A.
  const battery::KibamParameters cell{7200.0, 0.625, 4.5e-5};
  const double radio_current = 0.96;

  std::cout << "Sensor node, 50% duty cycle, radio " << radio_current
            << " A, cell 7200 As (c = 0.625, k = 4.5e-5/s)\n\n";

  io::Table table({"wake-up freq (Hz)", "deterministic lifetime (min)",
                   "random: mean (min)", "random: stddev (min)",
                   "random: 5% quantile (min)"});
  for (double f : {1.0, 0.1, 0.01, 0.001, 0.0001}) {
    // (a) exact square wave.
    battery::KibamBattery deterministic(cell);
    const double det_life =
        battery::compute_lifetime(deterministic,
                                  battery::LoadProfile::square_wave(
                                      f, radio_current),
                                  {.max_time = 1e8})
            .value() /
        60.0;

    // (b) random on/off phases at the same frequency (K = 1).
    const core::KibamRmModel model(
        workload::make_onoff_model({.frequency = f, .erlang_k = 1,
                                    .on_current = radio_current}),
        cell);
    core::MonteCarloSimulator sim(model, {.replications = 600, .seed = 7});
    const auto dist = sim.run();

    table.add_numeric_row({f, det_life, dist.mean() / 60.0,
                           dist.stddev() / 60.0,
                           dist.quantile(0.05) / 60.0},
                          3);
  }
  table.print(std::cout);

  std::cout
      << "\nReadings:\n"
      << "  - The deterministic KiBaM lifetime is frequency-independent at "
         "50% duty until the period approaches the well-relaxation time "
         "1/k' ~ 1.6 h; very slow cycles (0.0001 Hz) strand bound charge "
         "and cost lifetime.\n"
      << "  - Random wake-ups at the same average duty add spread: plan "
         "deployments on the 5% quantile, not the mean.\n";
  return 0;
}
