// battery_explorer: a small CLI around the battery substrate.
//
// Modes (pick one):
//   --lifetime      lifetime of a KiBaM battery under a square wave
//                   (--capacity As --c frac --k 1/s --current A --freq Hz)
//   --trajectory    y1/y2 trace under the same load (--until s --step s)
//   --calibrate     fit k from an observed continuous-load lifetime
//                   (--target-minutes m)
//   --peukert       fit Peukert's law from two (I, L) points and tabulate
//                   (--i1 A --l1 s --i2 A --l2 s)
//
// Defaults reproduce the paper's battery.  Examples:
//   battery_explorer --lifetime --freq 0.01
//   battery_explorer --calibrate --target-minutes 90
#include <iostream>

#include "kibamrm/battery/calibration.hpp"
#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/battery/lifetime.hpp"
#include "kibamrm/battery/peukert.hpp"
#include "kibamrm/common/cli.hpp"
#include "kibamrm/common/units.hpp"
#include "kibamrm/io/table.hpp"

namespace {

using namespace kibamrm;

int run(const common::CliArgs& args) {
  const double capacity = args.get_double("capacity", 7200.0);
  const double c = args.get_double("c", 0.625);
  const double k = args.get_double("k", 4.5e-5);
  const double current = args.get_double("current", 0.96);

  if (args.has("calibrate")) {
    const double target = args.get_double("target-minutes", 90.0);
    const double fitted = battery::calibrate_flow_constant(
        capacity, c, current, units::minutes_to_seconds(target));
    std::cout << "fitted k = " << fitted << " /s for a " << target
              << " min continuous lifetime at " << current << " A\n";
    return 0;
  }

  if (args.has("peukert")) {
    const battery::PeukertLaw law = battery::PeukertLaw::fit(
        args.get_double("i1", 0.5), args.get_double("l1", 16000.0),
        args.get_double("i2", 2.0), args.get_double("l2", 3000.0));
    std::cout << "Peukert fit: a = " << law.a() << ", b = " << law.b()
              << "\n\n";
    io::Table table({"current (A)", "lifetime (s)", "delivered (As)"});
    for (double i : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      table.add_numeric_row({i, law.lifetime(i), law.effective_capacity(i)},
                            1);
    }
    table.print(std::cout);
    return 0;
  }

  const battery::KibamParameters params{capacity, c, c >= 1.0 ? 0.0 : k};
  const double freq = args.get_double("freq", 0.0);
  const battery::LoadProfile profile =
      freq > 0.0 ? battery::LoadProfile::square_wave(freq, current)
                 : battery::LoadProfile::constant(current);

  if (args.has("trajectory")) {
    const double until = args.get_double("until", 12000.0);
    const double step = args.get_double("step", 250.0);
    std::vector<double> times;
    for (double t = 0.0; t <= until; t += step) times.push_back(t);
    battery::KibamBattery model(params);
    io::Table table({"t (s)", "y1 (As)", "y2 (As)"});
    for (const auto& s : battery::record_trajectory(model, profile, times)) {
      table.add_numeric_row({s.time, s.available, s.bound}, 1);
    }
    table.print(std::cout);
    return 0;
  }

  // Default mode: lifetime.
  battery::KibamBattery model(params);
  const auto life =
      battery::compute_lifetime(model, profile, {.max_time = 1e9});
  if (!life) {
    std::cout << "battery survives the 1e9 s horizon under this load\n";
    return 0;
  }
  std::cout << "lifetime: " << *life << " s = "
            << io::format_double(units::seconds_to_minutes(*life), 1)
            << " min (delivered "
            << io::format_double(*life * profile.average_current(*life), 0)
            << " As of " << capacity << " As capacity)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    common::CliArgs args(argc, argv);
    args.declare("lifetime").declare("trajectory").declare("calibrate")
        .declare("peukert").declare("capacity").declare("c").declare("k")
        .declare("current").declare("freq").declare("target-minutes")
        .declare("i1").declare("l1").declare("i2").declare("l2")
        .declare("until").declare("step");
    args.validate();
    return run(args);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
