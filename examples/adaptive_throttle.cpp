// Charge-adaptive throttling: the reward-inhomogeneous generality of
// Sec. 4.1 (and the paper's "more realistic MRMs" future-work direction)
// put to use.
//
// The device runs the simple idle/send/sleep workload, but once the
// available charge drops below a threshold it throttles the send arrival
// rate (sync less often on a low battery -- what real phones do).  The
// Markovian approximation handles the charge-dependent generator Q(y1, y2)
// natively: workload rates are simply evaluated per charge level when the
// expanded chain is built.  The Monte-Carlo simulator cross-checks via
// thinning.
#include <iostream>

#include "kibamrm/common/units.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/simulator.hpp"
#include "kibamrm/io/table.hpp"
#include "kibamrm/workload/simple_model.hpp"

int main() {
  using namespace kibamrm;

  const battery::KibamParameters cell{
      800.0, 0.625, units::per_second_to_per_hour(4.5e-5)};
  const auto send = static_cast<std::size_t>(workload::SimpleState::kSend);
  const auto times = core::uniform_grid(2.0, 48.0, 93);

  std::cout << "Adaptive send throttling on a low battery\n"
            << "(threshold = available charge below 150 mAh; send arrivals "
               "scaled by the throttle factor there)\n\n";

  io::Table table({"throttle factor", "median life (h)", "5% quantile (h)",
                   "95% quantile (h)", "Pr[dead at 20 h]"});
  for (double factor : {1.0, 0.5, 0.25, 0.1}) {
    core::KibamRmModel model(workload::make_simple_model(), cell);
    if (factor < 1.0) {
      model.set_rate_modifier(
          [factor, send](std::size_t /*from*/, std::size_t to, double y1,
                         double /*y2*/) {
            return (to == send && y1 < 150.0) ? factor : 1.0;
          },
          1.0);
    }
    core::MarkovianApproximation solver(model, {.delta = 5.0});
    const core::LifetimeCurve curve = solver.solve(times);
    table.add_numeric_row({factor, curve.median(), curve.quantile(0.05),
                           curve.quantile(0.95),
                           curve.probability_at(20.0)},
                          3);
  }
  table.print(std::cout);

  // Cross-check the strongest policy with the thinning simulator.
  core::KibamRmModel strongest(workload::make_simple_model(), cell);
  strongest.set_rate_modifier(
      [send](std::size_t, std::size_t to, double y1, double) {
        return (to == send && y1 < 150.0) ? 0.1 : 1.0;
      },
      1.0);
  core::MarkovianApproximation approx(strongest, {.delta = 5.0});
  core::MonteCarloSimulator sim(strongest, {.replications = 1500});
  const auto approx_curve = approx.solve(times);
  const auto sim_curve = sim.empty_probability_curve(times);
  std::cout << "\nCross-check (factor 0.1): approximation median "
            << io::format_double(approx_curve.median(), 2)
            << " h vs thinning-simulation median "
            << io::format_double(sim_curve.median(), 2) << " h (max CDF gap "
            << io::format_double(approx_curve.max_difference(sim_curve), 3)
            << ").\n"
            << "Throttling trades responsiveness below the threshold for a "
               "fatter right tail: the median barely moves, the 95% "
               "quantile stretches.\n";
  return 0;
}
