#include "kibamrm/workload/burst_model.hpp"

#include "kibamrm/common/error.hpp"
#include "kibamrm/markov/steady_state.hpp"

namespace kibamrm::workload {

WorkloadModel make_burst_model(const BurstModelParameters& params) {
  KIBAMRM_REQUIRE(params.burst_send_rate > 0.0 &&
                      params.send_finish_rate > 0.0 &&
                      params.sleep_timeout_rate > 0.0 &&
                      params.switch_on_rate > 0.0 &&
                      params.switch_off_rate > 0.0,
                  "burst model rates must be positive");

  WorkloadBuilder builder;
  const std::size_t on_idle = builder.add_state("on-idle", params.idle_current);
  const std::size_t on_send = builder.add_state("on-send", params.send_current);
  const std::size_t off_idle =
      builder.add_state("off-idle", params.idle_current);
  const std::size_t off_send =
      builder.add_state("off-send", params.send_current);
  const std::size_t sleep = builder.add_state("sleep", params.sleep_current);

  builder.add_transition(on_idle, on_send, params.burst_send_rate);
  builder.add_transition(on_idle, off_idle, params.switch_off_rate);
  builder.add_transition(off_idle, on_idle, params.switch_on_rate);
  builder.add_transition(on_send, on_idle, params.send_finish_rate);
  builder.add_transition(on_send, off_send, params.switch_off_rate);
  builder.add_transition(off_send, on_send, params.switch_on_rate);
  builder.add_transition(off_send, off_idle, params.send_finish_rate);
  builder.add_transition(off_idle, sleep, params.sleep_timeout_rate);
  builder.add_transition(sleep, on_idle, params.switch_on_rate);
  // Start with the flow off and the device idle -- the analog of the simple
  // model's initial idle state.  (Starting in on-idle front-loads a burst
  // and shifts the whole lifetime CDF visibly left of the paper's Fig. 11.)
  builder.set_initial_state(off_idle);
  return builder.build();
}

double burst_send_probability(const WorkloadModel& burst_model) {
  const std::vector<double> pi = markov::steady_state(burst_model.chain());
  return pi[static_cast<std::size_t>(BurstState::kOnSend)] +
         pi[static_cast<std::size_t>(BurstState::kOffSend)];
}

}  // namespace kibamrm::workload
