// Stochastic workload models (Sec. 4.3).
//
// A workload model is a CTMC over the operating modes of the device plus a
// per-state energy-consumption rate I_i (the current drawn in state i) and
// an initial distribution.  Combined with a battery it forms the KiBaMRM
// (core/kibamrm_model.hpp).
#pragma once

#include <string>
#include <vector>

#include "kibamrm/markov/ctmc.hpp"

namespace kibamrm::workload {

class WorkloadModel {
 public:
  /// `chain`: operating-mode CTMC; `currents`: current drawn per state
  /// (>= 0, same units across states); `initial`: initial distribution;
  /// `state_names`: one label per state (for tables and debugging).
  WorkloadModel(markov::Ctmc chain, std::vector<double> currents,
                std::vector<double> initial,
                std::vector<std::string> state_names);

  std::size_t state_count() const { return chain_.state_count(); }
  const markov::Ctmc& chain() const { return chain_; }
  const std::vector<double>& currents() const { return currents_; }
  const std::vector<double>& initial_distribution() const { return initial_; }
  const std::vector<std::string>& state_names() const { return names_; }

  double current(std::size_t state) const { return currents_.at(state); }
  double max_current() const;

  /// Steady-state expected current draw sum_i pi_i I_i (requires an
  /// irreducible chain).
  double steady_state_current() const;

 private:
  markov::Ctmc chain_;
  std::vector<double> currents_;
  std::vector<double> initial_;
  std::vector<std::string> names_;
};

/// Convenience builder used by the model factories and tests.
class WorkloadBuilder {
 public:
  /// Adds a state; returns its index.
  std::size_t add_state(std::string name, double current);

  /// Adds a transition rate from -> to (both must exist).
  void add_transition(std::size_t from, std::size_t to, double rate);

  /// Marks the (single) initial state.
  void set_initial_state(std::size_t state);

  WorkloadModel build() const;

 private:
  std::vector<std::string> names_;
  std::vector<double> currents_;
  struct Transition {
    std::size_t from;
    std::size_t to;
    double rate;
  };
  std::vector<Transition> transitions_;
  std::size_t initial_state_ = 0;
  bool initial_set_ = false;
};

}  // namespace kibamrm::workload
