// The stochastic on/off workload (Sec. 4.3, Fig. 3).
//
// For a given frequency f the workload toggles between an off-state (no
// energy consumed) and an on-state (current I).  On- and off-times are
// Erlang-K distributed with rate lambda = 2 f K per phase, so the expected
// on (off) time is K / (2 f K) = 1/(2f) and the toggle frequency is f; with
// growing K the phase times approach the deterministic square wave of the
// Table 1 experiments.
#pragma once

#include "kibamrm/workload/workload_model.hpp"

namespace kibamrm::workload {

struct OnOffParameters {
  double frequency = 1.0;   // f, toggles per time unit
  int erlang_k = 1;         // K >= 1
  double on_current = 0.96; // I in the on-state (paper: 0.96 A)
  bool start_on = true;     // paper convention: the load starts drawing
};

/// Builds the 2K-state Erlang on/off chain: K "on" phases (each drawing the
/// on-current) followed by K "off" phases (drawing nothing), cyclically, all
/// with phase rate lambda = 2 f K.
WorkloadModel make_onoff_model(const OnOffParameters& params);

}  // namespace kibamrm::workload
