// The "simple model" of a small battery-powered wireless device
// (Sec. 4.3, Fig. 4): three states -- idle, send, sleep.
//
//   - idle -> send at rate lambda (data to transmit arrives),
//   - sleep -> send at rate lambda (arriving data wakes the device),
//   - send -> idle at rate mu (transmission complete),
//   - idle -> sleep at rate tau (power-saving timeout).
//
// Defaults are the paper's: lambda = 2/h, mu = 6/h, tau = 1/h, currents
// I_idle = 8 mA, I_send = 200 mA, I_sleep = 0 mA; the device starts idle.
// The steady-state send probability is 1/4 (used to calibrate the burst
// model's lambda_burst, see burst_model.hpp).
#pragma once

#include "kibamrm/workload/workload_model.hpp"

namespace kibamrm::workload {

struct SimpleModelParameters {
  double send_arrival_rate = 2.0;  // lambda, per hour
  double send_finish_rate = 6.0;   // mu, per hour (10-minute mean send)
  double sleep_timeout_rate = 1.0; // tau, per hour
  double idle_current = 8.0;       // mA
  double send_current = 200.0;     // mA
  double sleep_current = 0.0;      // mA
};

/// State indices of the simple model.
enum class SimpleState : std::size_t { kIdle = 0, kSend = 1, kSleep = 2 };

WorkloadModel make_simple_model(const SimpleModelParameters& params = {});

}  // namespace kibamrm::workload
