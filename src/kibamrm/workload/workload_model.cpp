#include "kibamrm/workload/workload_model.hpp"

#include <algorithm>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/markov/steady_state.hpp"

namespace kibamrm::workload {

WorkloadModel::WorkloadModel(markov::Ctmc chain, std::vector<double> currents,
                             std::vector<double> initial,
                             std::vector<std::string> state_names)
    : chain_(std::move(chain)),
      currents_(std::move(currents)),
      initial_(std::move(initial)),
      names_(std::move(state_names)) {
  const std::size_t n = chain_.state_count();
  if (currents_.size() != n || initial_.size() != n || names_.size() != n) {
    throw ModelError("workload model: vector sizes must match state count");
  }
  for (double current : currents_) {
    if (current < 0.0) {
      throw ModelError("workload model: currents must be non-negative");
    }
  }
  if (!linalg::is_probability_vector(initial_, 1e-9)) {
    throw ModelError("workload model: initial vector is not a distribution");
  }
}

double WorkloadModel::max_current() const {
  return *std::max_element(currents_.begin(), currents_.end());
}

double WorkloadModel::steady_state_current() const {
  const std::vector<double> pi = markov::steady_state(chain_);
  return linalg::dot(pi, currents_);
}

std::size_t WorkloadBuilder::add_state(std::string name, double current) {
  names_.push_back(std::move(name));
  currents_.push_back(current);
  return names_.size() - 1;
}

void WorkloadBuilder::add_transition(std::size_t from, std::size_t to,
                                     double rate) {
  KIBAMRM_REQUIRE(from < names_.size() && to < names_.size(),
                  "transition endpoints must be existing states");
  KIBAMRM_REQUIRE(from != to, "self-loops are not meaningful in a CTMC");
  KIBAMRM_REQUIRE(rate > 0.0, "transition rate must be positive");
  transitions_.push_back({from, to, rate});
}

void WorkloadBuilder::set_initial_state(std::size_t state) {
  KIBAMRM_REQUIRE(state < names_.size(), "initial state must exist");
  initial_state_ = state;
  initial_set_ = true;
}

WorkloadModel WorkloadBuilder::build() const {
  KIBAMRM_REQUIRE(!names_.empty(), "workload model needs >= 1 state");
  KIBAMRM_REQUIRE(initial_set_, "workload model needs an initial state");
  const std::size_t n = names_.size();
  linalg::CooBuilder builder(n, n);
  std::vector<double> exit(n, 0.0);
  for (const auto& t : transitions_) {
    builder.add(t.from, t.to, t.rate);
    exit[t.from] += t.rate;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (exit[i] != 0.0) builder.add(i, i, -exit[i]);
  }
  std::vector<double> initial(n, 0.0);
  initial[initial_state_] = 1.0;
  return WorkloadModel(markov::Ctmc(builder.build()), currents_, initial,
                       names_);
}

}  // namespace kibamrm::workload
