#include "kibamrm/workload/onoff_model.hpp"

#include <string>

#include "kibamrm/common/error.hpp"

namespace kibamrm::workload {

WorkloadModel make_onoff_model(const OnOffParameters& params) {
  KIBAMRM_REQUIRE(params.frequency > 0.0, "on/off frequency must be positive");
  KIBAMRM_REQUIRE(params.erlang_k >= 1, "Erlang K must be >= 1");
  KIBAMRM_REQUIRE(params.on_current >= 0.0, "on-current must be >= 0");

  const int k = params.erlang_k;
  const double rate = 2.0 * params.frequency * static_cast<double>(k);

  WorkloadBuilder builder;
  // States 0..K-1: on phases; states K..2K-1: off phases.
  for (int phase = 0; phase < k; ++phase) {
    builder.add_state("on[" + std::to_string(phase) + "]", params.on_current);
  }
  for (int phase = 0; phase < k; ++phase) {
    builder.add_state("off[" + std::to_string(phase) + "]", 0.0);
  }
  const auto n = static_cast<std::size_t>(2 * k);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add_transition(i, (i + 1) % n, rate);
  }
  builder.set_initial_state(params.start_on ? 0 : static_cast<std::size_t>(k));
  return builder.build();
}

}  // namespace kibamrm::workload
