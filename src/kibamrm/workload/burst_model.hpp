// The "burst model" (Sec. 4.3, Fig. 5): the device buffers the arriving
// data flow and transmits it in condensed bursts, so it can spend longer
// stretches in the power-saving sleep state.
//
// The data flow toggles between on (bursts arriving) and off:
//   - switch_on  = 1/h starts the flow,
//   - switch_off = 6/h stops it.
// While the flow is on, buffered data triggers sending at lambda_burst; a
// send completes at mu = 6/h, like in the simple model.  An idle device
// whose flow is off falls asleep after the timeout tau = 1/h and wakes when
// the flow resumes.
//
// States (indices below): on-idle, on-send, off-idle, off-send, sleep.
// Transitions:
//   on-idle  -> on-send   lambda_burst      (burst present, start sending)
//   on-idle  -> off-idle  switch_off
//   off-idle -> on-idle   switch_on
//   on-send  -> on-idle   mu                (send done, flow still on)
//   on-send  -> off-send  switch_off
//   off-send -> on-send   switch_on
//   off-send -> off-idle  mu                (drain the buffered remainder)
//   off-idle -> sleep     tau
//   sleep    -> on-idle   switch_on         (flow resumes, device wakes)
//
// The paper chooses lambda_burst = 182/h so that the steady-state
// probability of sending (on-send + off-send) equals the simple model's
// send probability (1/4); make_burst_model validates this calibration via
// the steady-state solver in tests.
#pragma once

#include "kibamrm/workload/workload_model.hpp"

namespace kibamrm::workload {

struct BurstModelParameters {
  double burst_send_rate = 182.0;  // lambda_burst, per hour
  double send_finish_rate = 6.0;   // mu, per hour
  double sleep_timeout_rate = 1.0; // tau, per hour
  double switch_on_rate = 1.0;     // per hour
  double switch_off_rate = 6.0;    // per hour
  double idle_current = 8.0;       // mA
  double send_current = 200.0;     // mA
  double sleep_current = 0.0;      // mA
};

/// State indices of the burst model.
enum class BurstState : std::size_t {
  kOnIdle = 0,
  kOnSend = 1,
  kOffIdle = 2,
  kOffSend = 3,
  kSleep = 4,
};

WorkloadModel make_burst_model(const BurstModelParameters& params = {});

/// Steady-state probability of residing in a send state; used to check the
/// lambda_burst calibration against the simple model.
double burst_send_probability(const WorkloadModel& burst_model);

}  // namespace kibamrm::workload
