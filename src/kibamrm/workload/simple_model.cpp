#include "kibamrm/workload/simple_model.hpp"

#include "kibamrm/common/error.hpp"

namespace kibamrm::workload {

WorkloadModel make_simple_model(const SimpleModelParameters& params) {
  KIBAMRM_REQUIRE(params.send_arrival_rate > 0.0 &&
                      params.send_finish_rate > 0.0 &&
                      params.sleep_timeout_rate > 0.0,
                  "simple model rates must be positive");

  WorkloadBuilder builder;
  const std::size_t idle = builder.add_state("idle", params.idle_current);
  const std::size_t send = builder.add_state("send", params.send_current);
  const std::size_t sleep = builder.add_state("sleep", params.sleep_current);

  builder.add_transition(idle, send, params.send_arrival_rate);
  builder.add_transition(idle, sleep, params.sleep_timeout_rate);
  builder.add_transition(send, idle, params.send_finish_rate);
  builder.add_transition(sleep, send, params.send_arrival_rate);
  builder.set_initial_state(idle);
  return builder.build();
}

}  // namespace kibamrm::workload
