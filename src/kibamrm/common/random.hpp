// Pseudo-random number generation for the Monte-Carlo simulators.
//
// We ship our own xoshiro256** generator (public-domain algorithm by
// Blackman & Vigna) rather than std::mt19937 because it is faster, has a
// tiny state, and gives us deterministic, platform-independent streams --
// important for reproducible simulation tests.  Seeding goes through
// splitmix64 so that small consecutive seeds yield decorrelated streams.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace kibamrm::common {

/// One splitmix64 step on `state` (advances it).  Public because it is the
/// seed-derivation primitive: consecutive integers fed through splitmix64
/// yield decorrelated 64-bit seeds, which both Xoshiro256's seeding and the
/// property-test harness's per-iteration streams rely on.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic sub-seed `index` of a base seed: seeds derived from the
/// same base with different indices are decorrelated (splitmix64 of
/// base + index).  The property harness derives one stream per test
/// iteration this way, so a failing iteration is reproducible from
/// (base seed, iteration) alone.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

/// Reads a 64-bit seed from environment variable `name`: decimal or 0x-hex.
/// nullopt when unset or empty; throws InvalidArgument on garbage so a
/// typo'd KIBAMRM_PROP_SEED fails loudly instead of silently exploring the
/// default stream.
std::optional<std::uint64_t> seed_from_env(const char* name);

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via splitmix64).
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Jumps the stream forward by 2^128 steps; used to derive independent
  /// sub-streams for parallel replications.
  void jump();

 private:
  std::uint64_t s_[4];
};

/// Convenience sampling wrapper around a generator.  All distributions are
/// implemented directly (inverse transform / sums) so results are identical
/// across standard libraries.
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
      : gen_(seed) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with rate `rate` (> 0); mean 1/rate.
  double exponential(double rate);

  /// Erlang-K: sum of k independent exponentials with rate `rate`.
  double erlang(int k, double rate);

  /// Bernoulli with success probability p in [0,1].
  bool bernoulli(double p);

  /// Samples an index from a discrete distribution given by non-negative
  /// weights (need not be normalised; their sum must be positive).
  std::size_t discrete(const std::vector<double>& weights);

  /// Underlying bit generator (e.g. for std distributions in tests).
  Xoshiro256& generator() { return gen_; }

  /// Derives an independent sub-stream (jump-ahead copy).
  RandomStream split();

 private:
  Xoshiro256 gen_;
};

}  // namespace kibamrm::common
