#include "kibamrm/common/cpu_features.hpp"

namespace kibamrm::common {

bool cpu_has_avx2_fma() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports caches the CPUID probe inside libgcc/compiler-rt;
  // the static just avoids re-entering it on every kernel call.
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  static const bool supported =
      __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512bw");
  return supported;
#else
  return false;
#endif
}

}  // namespace kibamrm::common
