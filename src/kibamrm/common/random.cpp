#include "kibamrm/common/random.hpp"

#include <cmath>
#include <cstdlib>
#include <string>

#include "kibamrm/common/error.hpp"

namespace kibamrm::common {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t state = base + index;
  return splitmix64(state);
}

std::optional<std::uint64_t> seed_from_env(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  const std::string text(raw);
  std::size_t consumed = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &consumed, 0);  // base 0: decimal or 0x-hex
  } catch (const std::exception&) {
    consumed = 0;
  }
  KIBAMRM_REQUIRE(consumed == text.size(),
                  std::string(name) + " must be a 64-bit integer, got \"" +
                      text + "\"");
  return value;
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double RandomStream::uniform() {
  // 53 random bits -> double in [0,1).
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double RandomStream::uniform(double lo, double hi) {
  KIBAMRM_REQUIRE(lo < hi, "uniform(lo,hi) requires lo < hi");
  return lo + (hi - lo) * uniform();
}

double RandomStream::exponential(double rate) {
  KIBAMRM_REQUIRE(rate > 0.0, "exponential rate must be positive");
  // Inverse transform; 1 - U avoids log(0).
  return -std::log1p(-uniform()) / rate;
}

double RandomStream::erlang(int k, double rate) {
  KIBAMRM_REQUIRE(k >= 1, "Erlang shape must be >= 1");
  double sum = 0.0;
  for (int i = 0; i < k; ++i) sum += exponential(rate);
  return sum;
}

bool RandomStream::bernoulli(double p) {
  KIBAMRM_REQUIRE(p >= 0.0 && p <= 1.0, "Bernoulli p must lie in [0,1]");
  return uniform() < p;
}

std::size_t RandomStream::discrete(const std::vector<double>& weights) {
  KIBAMRM_REQUIRE(!weights.empty(), "discrete() needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    KIBAMRM_REQUIRE(w >= 0.0, "discrete() weights must be non-negative");
    total += w;
  }
  KIBAMRM_REQUIRE(total > 0.0, "discrete() weights must not all be zero");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack: return last index
}

RandomStream RandomStream::split() {
  // The child takes over the current position and the parent jumps 2^128
  // steps ahead: successive split() calls hand out pairwise disjoint
  // sub-streams.  (Jumping only the child would leave consecutive children
  // offset by a single draw -- massively overlapping, correlated streams.)
  RandomStream child = *this;
  gen_.jump();
  return child;
}

}  // namespace kibamrm::common
