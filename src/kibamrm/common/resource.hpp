// Process resource accounting for benchmark records.
//
// The out-of-core tier's whole claim is "the working set stays bounded";
// that claim is only credible measured.  peak_rss_bytes() reads the
// kernel's high-water mark for the process, so every BENCH_*.json record
// can carry the memory the run actually took alongside its wall time.
#pragma once

#include <cstdint>

namespace kibamrm::common {

/// Peak resident set size of the process so far, in bytes (getrusage
/// ru_maxrss, normalised from the platform's unit); 0 where unavailable.
/// Monotone over the process lifetime -- per-phase numbers need a fork or
/// a fresh process.
std::uint64_t peak_rss_bytes();

}  // namespace kibamrm::common
