// Runtime CPU feature detection for the dispatched kernel layer.
//
// The library ships one binary per platform, not one per microarchitecture;
// linalg/kernels picks its implementation tier at runtime from these bits.
// Only the features a kernel tier actually gates on are exposed -- today
// the AVX2+FMA class (the x86-64-v3 vector baseline the SIMD gather and
// reduction kernels require) and the AVX-512 F/DQ/VL/BW class the wide
// uniform-run kernels require.
#pragma once

namespace kibamrm::common {

/// True iff the executing CPU reports both AVX2 and FMA.  Always false on
/// non-x86 builds.  The result is computed once and cached.
bool cpu_has_avx2_fma();

/// True iff the executing CPU reports AVX512F, AVX512DQ, AVX512VL and
/// AVX512BW (the Skylake-SP server baseline the avx512 kernel tier is
/// written against).  Always false on non-x86 builds; computed once and
/// cached.
bool cpu_has_avx512();

}  // namespace kibamrm::common
