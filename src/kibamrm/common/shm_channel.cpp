#include "kibamrm/common/shm_channel.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstring>
#include <ctime>
#include <new>
#include <sstream>
#include <string>

#include "kibamrm/common/error.hpp"
#include "kibamrm/common/spill_io.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace kibamrm::common {

namespace {

/// One wait slice between liveness polls: long enough that a healthy
/// solve never leaves the futex, short enough that a dead peer surfaces
/// promptly.
constexpr std::uint64_t kWaitSliceNs = 50ull * 1000000ull;

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Parks on `word` while it still holds `expected`, for at most one
/// slice.  FUTEX_WAIT (the cross-process form, not _PRIVATE) on Linux; a
/// short nanosleep keeps the protocol correct-but-polling elsewhere.
void futex_wait_slice(std::atomic<std::uint32_t>& word,
                      std::uint32_t expected) {
#if defined(__linux__)
  timespec ts{static_cast<time_t>(kWaitSliceNs / 1000000000ull),
              static_cast<long>(kWaitSliceNs % 1000000000ull)};
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAIT,
          expected, &ts, nullptr, 0);
#else
  (void)expected;
  (void)word;
  timespec ts{0, 1000000};
  nanosleep(&ts, nullptr);
#endif
}

void futex_wake_all(std::atomic<std::uint32_t>& word) {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAKE,
          INT_MAX, nullptr, nullptr, 0);
#else
  (void)word;
#endif
}

[[noreturn]] void throw_wait_failure(const char* what, bool peer_dead) {
  std::ostringstream message;
  if (peer_dead) {
    message << "shm channel: peer process died while " << what;
  } else {
    message << "shm channel: timed out while " << what;
  }
  throw IpcError(message.str());
}

}  // namespace

/// Shared-mapping layout: counters on their own cache lines, payload ring
/// directly after.  head/tail are monotonic byte counters (never wrapped
/// themselves; positions are taken modulo the capacity), so fullness is
/// simply head - tail.  The producer publishes with a release store of
/// head after writing the bytes; the consumer acquires head before
/// reading them -- that pair is the only data-ordering the ring needs.
/// data_seq/space_seq are futex doorbell words bumped after each
/// publish/consume.
struct ShmChannel::Ring {
  alignas(64) std::atomic<std::uint64_t> head;
  alignas(64) std::atomic<std::uint64_t> tail;
  alignas(64) std::atomic<std::uint32_t> data_seq;
  alignas(64) std::atomic<std::uint32_t> space_seq;
  alignas(64) std::atomic<std::uint32_t> closed;
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "the shared ring requires address-free lock-free atomics");

void encode_shm_frame(std::uint32_t type, std::span<const std::byte> payload,
                      std::vector<std::byte>& out) {
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(payload.size());
  KIBAMRM_REQUIRE(payload.size() <= kShmMaxFramePayload,
                  "shm frame payload exceeds the frame size cap");
  const std::uint64_t checksum = fnv1a64(
      payload.data(), payload.size(), fnv1a64(&type, sizeof(type)));
  const std::size_t base = out.size();
  out.resize(base + kShmFrameHeaderBytes + payload.size());
  std::memcpy(out.data() + base, &payload_len, sizeof(payload_len));
  std::memcpy(out.data() + base + 4, &type, sizeof(type));
  std::memcpy(out.data() + base + 8, &checksum, sizeof(checksum));
  if (!payload.empty()) {
    std::memcpy(out.data() + base + kShmFrameHeaderBytes, payload.data(),
                payload.size());
  }
}

std::size_t decode_shm_frame(std::span<const std::byte> bytes,
                             ShmFrame& frame) {
  if (bytes.size() < kShmFrameHeaderBytes) {
    throw IpcError("shm frame: truncated header (" +
                   std::to_string(bytes.size()) + " of " +
                   std::to_string(kShmFrameHeaderBytes) + " bytes)");
  }
  std::uint32_t payload_len = 0;
  std::uint32_t type = 0;
  std::uint64_t checksum = 0;
  std::memcpy(&payload_len, bytes.data(), sizeof(payload_len));
  std::memcpy(&type, bytes.data() + 4, sizeof(type));
  std::memcpy(&checksum, bytes.data() + 8, sizeof(checksum));
  if (payload_len > kShmMaxFramePayload) {
    throw IpcError("shm frame: payload length " +
                   std::to_string(payload_len) +
                   " exceeds the frame size cap");
  }
  if (bytes.size() - kShmFrameHeaderBytes < payload_len) {
    throw IpcError("shm frame: truncated payload (" +
                   std::to_string(bytes.size() - kShmFrameHeaderBytes) +
                   " of " + std::to_string(payload_len) + " bytes)");
  }
  const std::byte* payload = bytes.data() + kShmFrameHeaderBytes;
  const std::uint64_t expected =
      fnv1a64(payload, payload_len, fnv1a64(&type, sizeof(type)));
  if (expected != checksum) {
    throw IpcError("shm frame: checksum mismatch on a type-" +
                   std::to_string(type) + " frame of " +
                   std::to_string(payload_len) + " bytes");
  }
  frame.type = type;
  frame.payload.assign(payload, payload + payload_len);
  return kShmFrameHeaderBytes + payload_len;
}

ShmChannel ShmChannel::create(std::size_t capacity) {
  KIBAMRM_REQUIRE(capacity >= kShmFrameHeaderBytes,
                  "shm channel capacity below one frame header");
  const std::size_t page = 4096;
  const std::size_t wanted = sizeof(Ring) + capacity;
  const std::size_t mapping_bytes = (wanted + page - 1) / page * page;
  void* mapping = ::mmap(nullptr, mapping_bytes, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mapping == MAP_FAILED) {
    throw IpcError("shm channel: mmap of " +
                   std::to_string(mapping_bytes) + " bytes failed");
  }
  ShmChannel channel;
  channel.ring_ = new (mapping) Ring{};
  channel.buffer_ = static_cast<std::byte*>(mapping) + sizeof(Ring);
  channel.buffer_bytes_ = mapping_bytes - sizeof(Ring);
  channel.mapping_bytes_ = mapping_bytes;
  return channel;
}

ShmChannel::~ShmChannel() { unmap(); }

ShmChannel::ShmChannel(ShmChannel&& other) noexcept
    : ring_(other.ring_),
      buffer_(other.buffer_),
      buffer_bytes_(other.buffer_bytes_),
      mapping_bytes_(other.mapping_bytes_),
      scratch_(std::move(other.scratch_)) {
  other.ring_ = nullptr;
  other.buffer_ = nullptr;
  other.buffer_bytes_ = 0;
  other.mapping_bytes_ = 0;
}

ShmChannel& ShmChannel::operator=(ShmChannel&& other) noexcept {
  if (this != &other) {
    unmap();
    ring_ = other.ring_;
    buffer_ = other.buffer_;
    buffer_bytes_ = other.buffer_bytes_;
    mapping_bytes_ = other.mapping_bytes_;
    scratch_ = std::move(other.scratch_);
    other.ring_ = nullptr;
    other.buffer_ = nullptr;
    other.buffer_bytes_ = 0;
    other.mapping_bytes_ = 0;
  }
  return *this;
}

void ShmChannel::unmap() noexcept {
  if (ring_ != nullptr) {
    ::munmap(ring_, mapping_bytes_);
    ring_ = nullptr;
    buffer_ = nullptr;
    buffer_bytes_ = 0;
    mapping_bytes_ = 0;
  }
}

void ShmChannel::close() {
  if (ring_ == nullptr) return;
  ring_->closed.store(1, std::memory_order_release);
  ring_->data_seq.fetch_add(1, std::memory_order_release);
  ring_->space_seq.fetch_add(1, std::memory_order_release);
  futex_wake_all(ring_->data_seq);
  futex_wake_all(ring_->space_seq);
}

void ShmChannel::send(std::uint32_t type, const void* payload,
                      std::size_t bytes, const AlivePoll& peer_alive,
                      std::uint64_t timeout_ns) {
  KIBAMRM_REQUIRE(valid(), "shm channel: send on an unmapped channel");
  scratch_.clear();
  encode_shm_frame(
      type,
      std::span<const std::byte>(static_cast<const std::byte*>(payload),
                                 bytes),
      scratch_);
  const std::size_t frame_bytes = scratch_.size();
  if (frame_bytes > buffer_bytes_) {
    throw IpcError("shm channel: frame of " + std::to_string(frame_bytes) +
                   " bytes exceeds the ring capacity of " +
                   std::to_string(buffer_bytes_));
  }
  const std::uint64_t deadline = monotonic_ns() + timeout_ns;
  const std::uint64_t head = ring_->head.load(std::memory_order_relaxed);
  for (;;) {
    // Doorbell-before-condition: if the consumer frees space between the
    // seq load and the futex call, the wait returns immediately.
    const std::uint32_t seen =
        ring_->space_seq.load(std::memory_order_acquire);
    const std::uint64_t tail = ring_->tail.load(std::memory_order_acquire);
    if (buffer_bytes_ - (head - tail) >= frame_bytes) break;
    if (ring_->closed.load(std::memory_order_acquire) != 0) {
      throw IpcError("shm channel: peer closed the channel mid-send");
    }
    if (peer_alive && !peer_alive()) {
      throw_wait_failure("waiting for ring space", /*peer_dead=*/true);
    }
    if (monotonic_ns() >= deadline) {
      throw_wait_failure("waiting for ring space", /*peer_dead=*/false);
    }
    futex_wait_slice(ring_->space_seq, seen);
  }
  const std::size_t position =
      static_cast<std::size_t>(head % buffer_bytes_);
  const std::size_t first =
      std::min(frame_bytes, buffer_bytes_ - position);
  std::memcpy(buffer_ + position, scratch_.data(), first);
  if (first < frame_bytes) {
    std::memcpy(buffer_, scratch_.data() + first, frame_bytes - first);
  }
  ring_->head.store(head + frame_bytes, std::memory_order_release);
  ring_->data_seq.fetch_add(1, std::memory_order_release);
  futex_wake_all(ring_->data_seq);
}

void ShmChannel::recv(ShmFrame& frame, const AlivePoll& peer_alive,
                      std::uint64_t timeout_ns) {
  KIBAMRM_REQUIRE(valid(), "shm channel: recv on an unmapped channel");
  const std::uint64_t deadline = monotonic_ns() + timeout_ns;
  const std::uint64_t tail = ring_->tail.load(std::memory_order_relaxed);

  const auto wait_for_bytes = [&](std::size_t wanted) {
    for (;;) {
      const std::uint32_t seen =
          ring_->data_seq.load(std::memory_order_acquire);
      const std::uint64_t head =
          ring_->head.load(std::memory_order_acquire);
      if (head - tail >= wanted) return;
      if (ring_->closed.load(std::memory_order_acquire) != 0 &&
          ring_->head.load(std::memory_order_acquire) - tail < wanted) {
        throw IpcError(
            "shm channel: peer closed the channel with no frame pending");
      }
      if (peer_alive && !peer_alive()) {
        throw_wait_failure("waiting for a frame", /*peer_dead=*/true);
      }
      if (monotonic_ns() >= deadline) {
        throw_wait_failure("waiting for a frame", /*peer_dead=*/false);
      }
      futex_wait_slice(ring_->data_seq, seen);
    }
  };

  const auto copy_out = [&](std::byte* dst, std::size_t count) {
    const std::size_t position =
        static_cast<std::size_t>(tail % buffer_bytes_);
    const std::size_t first = std::min(count, buffer_bytes_ - position);
    std::memcpy(dst, buffer_ + position, first);
    if (first < count) {
      std::memcpy(dst + first, buffer_, count - first);
    }
  };

  wait_for_bytes(kShmFrameHeaderBytes);
  std::byte header[kShmFrameHeaderBytes];
  copy_out(header, kShmFrameHeaderBytes);
  std::uint32_t payload_len = 0;
  std::memcpy(&payload_len, header, sizeof(payload_len));
  if (payload_len > kShmMaxFramePayload ||
      kShmFrameHeaderBytes + static_cast<std::size_t>(payload_len) >
          buffer_bytes_) {
    throw IpcError("shm channel: corrupt frame length " +
                   std::to_string(payload_len) + " on a ring of " +
                   std::to_string(buffer_bytes_) + " bytes");
  }
  const std::size_t total =
      kShmFrameHeaderBytes + static_cast<std::size_t>(payload_len);
  wait_for_bytes(total);
  scratch_.resize(total);
  copy_out(scratch_.data(), total);
  // Funnel through the shared validation path (checksum included); only
  // a fully-validated frame advances the consumer cursor.
  decode_shm_frame(scratch_, frame);
  ring_->tail.store(tail + total, std::memory_order_release);
  ring_->space_seq.fetch_add(1, std::memory_order_release);
  futex_wake_all(ring_->space_seq);
}

}  // namespace kibamrm::common
