// Clang thread-safety annotations + annotated synchronisation wrappers.
//
// The concurrent core of the library (common::ThreadPool, the sharded
// backends, the ooc tile pipeline) keeps its invariants by lock
// discipline that TSan can only check for the schedules a test happens
// to produce.  This header makes the discipline *compile-time checked*:
// the CI static-analysis job builds the tree with clang's
// -Wthread-safety -Werror, and every mutex-protected member is declared
// with KIBAMRM_GUARDED_BY so an unlocked access is a build error, not a
// latent race.  On compilers without the attributes (gcc) everything
// expands to nothing -- the annotations carry zero runtime or ABI cost.
//
// Two layers live here:
//
//   1. The raw attribute macros (KIBAMRM_GUARDED_BY, KIBAMRM_REQUIRES,
//      KIBAMRM_ACQUIRE/RELEASE, KIBAMRM_EXCLUDES, ...), mirroring the
//      names in clang's thread-safety documentation.
//
//   2. Annotated wrappers Mutex / MutexLock / CondVar over std::mutex,
//      std::lock_guard and std::condition_variable.  The std types ship
//      without attributes in libstdc++, so locking through them is
//      invisible to the analysis; the wrappers restore visibility while
//      delegating every operation to the std primitive (same codegen,
//      same semantics -- CondVar waits on the wrapped std::mutex via
//      std::condition_variable, no condition_variable_any detour).
//
// State that is deliberately *not* lock-protected is documented with
// KIBAMRM_LOCK_FREE / KIBAMRM_EXTERNALLY_SYNCHRONIZED right at the
// declaration: the justification is part of the declaration the same
// way a guard is, and `tools/lint/kibamrm_lint.py` plus code review can
// grep for it.  An atomic or single-owner member without either a guard
// or one of these notes is a review smell.
#pragma once

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------- macros
#if defined(__clang__) && !defined(KIBAMRM_NO_THREAD_SAFETY_ATTRIBUTES)
#define KIBAMRM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define KIBAMRM_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define KIBAMRM_CAPABILITY(name) KIBAMRM_THREAD_ANNOTATION_(capability(name))

/// Declares an RAII type that acquires in its constructor and releases
/// in its destructor.
#define KIBAMRM_SCOPED_CAPABILITY KIBAMRM_THREAD_ANNOTATION_(scoped_lockable)

/// Member may only be read or written while holding `mu`.
#define KIBAMRM_GUARDED_BY(mu) KIBAMRM_THREAD_ANNOTATION_(guarded_by(mu))

/// Pointer member whose *pointee* may only be accessed while holding `mu`.
#define KIBAMRM_PT_GUARDED_BY(mu) \
  KIBAMRM_THREAD_ANNOTATION_(pt_guarded_by(mu))

/// Function requires the listed capabilities to be held on entry (and
/// still held on exit) -- the condition-variable-wait contract.
#define KIBAMRM_REQUIRES(...) \
  KIBAMRM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capability (held on exit, not on entry).
#define KIBAMRM_ACQUIRE(...) \
  KIBAMRM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define KIBAMRM_RELEASE(...) \
  KIBAMRM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function returns true when the capability was acquired.
#define KIBAMRM_TRY_ACQUIRE(...) \
  KIBAMRM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock guard on public entry points that lock internally).
#define KIBAMRM_EXCLUDES(...) \
  KIBAMRM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define KIBAMRM_RETURN_CAPABILITY(x) \
  KIBAMRM_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's locking is intentionally outside what
/// the analysis can express.  Every use must carry a comment proving
/// the synchronisation by hand; prefer restructuring (pass guarded
/// state by value across the boundary) over reaching for this.
#define KIBAMRM_NO_THREAD_SAFETY_ANALYSIS \
  KIBAMRM_THREAD_ANNOTATION_(no_thread_safety_analysis)

// ------------------------------------------- documented-unguarded state
// Expand to nothing on every compiler; they exist so the *justification*
// for unguarded shared state lives at the declaration, greppable and
// reviewed like any annotation.

/// Shared state accessed without a lock on purpose: atomics with a
/// stated protocol (orderings + why they suffice).
#define KIBAMRM_LOCK_FREE(reason)

/// State whose thread-safety is the owner's responsibility: confined to
/// one thread, or handed between threads with external synchronisation
/// (the reason names the owner/handoff).
#define KIBAMRM_EXTERNALLY_SYNCHRONIZED(reason)

namespace kibamrm::common {

// ------------------------------------------------------------- wrappers

/// std::mutex with the capability attribute: members declared
/// KIBAMRM_GUARDED_BY(a Mutex) are compile-time checked under clang
/// -Wthread-safety.  Lock through MutexLock (scoped) or lock()/unlock().
class KIBAMRM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() KIBAMRM_ACQUIRE() { mu_.lock(); }
  void unlock() KIBAMRM_RELEASE() { mu_.unlock(); }
  bool try_lock() KIBAMRM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // waits on the wrapped std::mutex directly
  std::mutex mu_;
};

/// Scoped lock over Mutex (std::lock_guard with the scoped-capability
/// attribute, so the analysis sees the acquire/release pair).
class KIBAMRM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KIBAMRM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() KIBAMRM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex.  wait() deliberately has no
/// predicate overload: a predicate lambda is analysed as a separate
/// function that cannot see the held capability, so callers loop
///     while (!condition) cv.wait(mutex_);
/// with the condition read in the annotated scope (spurious wakeups are
/// handled by the loop exactly as with the predicate form).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mu`, blocks, and re-acquires before
  /// returning.  The caller must hold `mu` (checked); the temporary
  /// release inside is the condition-variable contract and is invisible
  /// to the analysis by design (the capability is held again on exit).
  void wait(Mutex& mu) KIBAMRM_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's scope
  }

 private:
  std::condition_variable cv_;
};

}  // namespace kibamrm::common
