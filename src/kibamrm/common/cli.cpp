#include "kibamrm/common/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <system_error>

#include "kibamrm/common/error.hpp"

namespace kibamrm::common {

CliArgs::CliArgs(int argc, const char* const* argv) {
  KIBAMRM_REQUIRE(argc >= 1, "argc must be at least 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself an option; negative
    // numbers ("-3") are treated as values.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = std::string(argv[i + 1]);
      ++i;
    } else {
      options_[arg] = std::nullopt;
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.contains(name);
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || !it->second.has_value()) return fallback;
  return *it->second;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || !it->second.has_value()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second->c_str(), &end);
  KIBAMRM_REQUIRE(end != nullptr && *end == '\0',
                  "option --" + name + " is not a valid number: " +
                      *it->second);
  return value;
}

int CliArgs::get_int(const std::string& name, int fallback) const {
  const double value = get_double(name, static_cast<double>(fallback));
  const int as_int = static_cast<int>(value);
  KIBAMRM_REQUIRE(static_cast<double>(as_int) == value,
                  "option --" + name + " must be an integer");
  return as_int;
}

int CliArgs::get_int_at_least(const std::string& name, int fallback,
                              int minimum, const char* adjective) const {
  const auto it = options_.find(name);
  if (it == options_.end() || !it->second.has_value()) return fallback;
  const int value = get_int(name, fallback);
  KIBAMRM_REQUIRE(value >= minimum, "option --" + name + " must be a " +
                                        adjective + " integer, got: " +
                                        *it->second);
  return value;
}

int CliArgs::get_positive_int(const std::string& name, int fallback) const {
  return get_int_at_least(name, fallback, 1, "positive");
}

int CliArgs::get_nonnegative_int(const std::string& name, int fallback) const {
  return get_int_at_least(name, fallback, 0, "non-negative");
}

std::vector<double> CliArgs::get_double_list(
    const std::string& name, std::vector<double> fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || !it->second.has_value()) return fallback;
  std::vector<double> values;
  std::stringstream stream(*it->second);
  std::string token;
  while (std::getline(stream, token, ',')) {
    char* end = nullptr;
    values.push_back(std::strtod(token.c_str(), &end));
    KIBAMRM_REQUIRE(end != nullptr && *end == '\0',
                    "option --" + name + " has a malformed entry: " + token);
  }
  KIBAMRM_REQUIRE(!values.empty(), "option --" + name + " list is empty");
  return values;
}

std::string CliArgs::get_choice(const std::string& name,
                                const std::string& fallback,
                                const std::vector<std::string>& allowed) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const auto list_choices = [&allowed](std::string message) {
    for (const std::string& choice : allowed) message += ' ' + choice;
    return message;
  };
  // `--name` without a value is a malformed selection, not an absent one:
  // silently running the fallback would defeat the fail-loudly contract.
  if (!it->second.has_value()) {
    throw InvalidArgument(
        list_choices("option --" + name + " requires a value; choices:"));
  }
  const std::string& value = *it->second;
  if (std::find(allowed.begin(), allowed.end(), value) != allowed.end()) {
    return value;
  }
  throw InvalidArgument(list_choices("option --" + name +
                                     " has unknown value '" + value +
                                     "'; choices:"));
}

std::string CliArgs::get_directory(const std::string& name,
                                   const std::string& fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  if (!it->second.has_value()) {
    throw InvalidArgument("option --" + name +
                          " requires a directory path value");
  }
  const std::string& value = *it->second;
  std::error_code ec;
  if (!std::filesystem::is_directory(value, ec) || ec) {
    throw InvalidArgument("option --" + name +
                          " must name an existing directory, got: " + value);
  }
  return value;
}

CliArgs& CliArgs::declare(const std::string& name) {
  declared_.push_back(name);
  return *this;
}

void CliArgs::validate() const {
  for (const auto& [name, value] : options_) {
    (void)value;
    if (std::find(declared_.begin(), declared_.end(), name) ==
        declared_.end()) {
      throw InvalidArgument("unknown option --" + name);
    }
  }
}

}  // namespace kibamrm::common
