#include "kibamrm/common/error.hpp"

#include <sstream>

namespace kibamrm::detail {

void throw_requirement_failure(const char* expr, const std::string& message,
                               std::source_location where) {
  std::ostringstream out;
  out << message << " [requirement `" << expr << "` failed at "
      << where.file_name() << ":" << where.line() << " in "
      << where.function_name() << "]";
  throw InvalidArgument(out.str());
}

}  // namespace kibamrm::detail
