// A small persistent worker pool for data-parallel loops.
//
// The expanded battery chains are solved by long sequences of sparse
// matrix-vector products; each product splits into independent row ranges.
// ThreadPool keeps its workers alive across those products (a lifetime
// curve issues tens of thousands of them -- spawning threads per product
// would dominate the kernel), distributes loop indices through an atomic
// counter so uneven shards self-balance, and lets the calling thread work
// too: a pool of size 1 degenerates to a plain inline loop with no
// synchronisation at all.
//
// Users: engine/ParallelUniformizationBackend (sharded spmv) and
// engine/ScenarioBatch (concurrent scenario solves with per-lane scratch).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kibamrm::common {

/// Fixed-size pool executing parallel index loops.  parallel_for() is
/// blocking and must not be called concurrently from multiple threads or
/// re-entered from inside a task.
class ThreadPool {
 public:
  /// `threads` = total execution lanes including the caller; 0 selects
  /// hardware_thread_count().  A pool of size n spawns n-1 workers.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution lanes (>= 1).
  std::size_t thread_count() const { return lanes_; }

  /// Runs task(index, lane) for every index in [0, count), blocking until
  /// all complete.  `lane` identifies the executing lane in [0,
  /// thread_count()) -- tasks key per-thread scratch off it; two tasks with
  /// the same lane never run concurrently.  Indices are claimed through an
  /// atomic counter, so per-index cost may vary freely.  The first
  /// exception thrown by a task is rethrown here after the loop drains.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t index,
                                             std::size_t lane)>& task);

  /// std::thread::hardware_concurrency() with a floor of 1.
  static std::size_t hardware_thread_count();

 private:
  void worker_loop(std::size_t lane);
  /// Claims indices until the job is exhausted; records the first failure.
  void drain(std::size_t lane);

  std::size_t lanes_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  // Current job; generation_ bumps once per dispatch so late-waking
  // workers never re-run a finished job.
  const std::function<void(std::size_t, std::size_t)>* task_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};  // next unclaimed index (lock-free)
  std::size_t active_ = 0;            // workers still inside drain()
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  std::exception_ptr failure_;
};

}  // namespace kibamrm::common
