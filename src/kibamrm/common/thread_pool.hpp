// A small persistent worker pool for data-parallel loops.
//
// The expanded battery chains are solved by long sequences of sparse
// matrix-vector products; each product splits into independent row ranges.
// ThreadPool keeps its workers alive across those products (a lifetime
// curve issues tens of thousands of them -- spawning threads per product
// would dominate the kernel), distributes loop indices through an atomic
// counter so uneven shards self-balance, and lets the calling thread work
// too: a pool of size 1 degenerates to a plain inline loop with no
// synchronisation at all.
//
// Users: engine/ParallelUniformizationBackend (sharded spmv) and
// engine/ScenarioBatch (concurrent scenario solves with per-lane scratch).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "kibamrm/common/thread_annotations.hpp"

namespace kibamrm::common {

/// Fixed-size pool executing parallel index loops.  parallel_for() is
/// blocking and must not be called concurrently from multiple threads or
/// re-entered from inside a task.
class ThreadPool {
 public:
  /// `threads` = total execution lanes including the caller; 0 selects
  /// hardware_thread_count().  A pool of size n spawns n-1 workers.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution lanes (>= 1).
  std::size_t thread_count() const { return lanes_; }

  /// Runs task(index, lane) for every index in [0, count), blocking until
  /// all complete.  `lane` identifies the executing lane in [0,
  /// thread_count()) -- tasks key per-thread scratch off it; two tasks with
  /// the same lane never run concurrently.  Indices are claimed through an
  /// atomic counter, so per-index cost may vary freely.  The first
  /// exception thrown by a task is rethrown here after the loop drains.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t index,
                                             std::size_t lane)>& task)
      KIBAMRM_EXCLUDES(mutex_);

  /// std::thread::hardware_concurrency() with a floor of 1.
  static std::size_t hardware_thread_count();

 private:
  void worker_loop(std::size_t lane) KIBAMRM_EXCLUDES(mutex_);
  /// Claims indices of the job (`task`, `count` -- read from the guarded
  /// members under the lock by the caller) until it is exhausted;
  /// records the first failure.  Taking the job by value keeps every
  /// access to the guarded members inside a locked scope.
  void drain(const std::function<void(std::size_t, std::size_t)>& task,
             std::size_t count, std::size_t lane) KIBAMRM_EXCLUDES(mutex_);

  std::size_t lanes_;
  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar job_ready_;
  CondVar job_done_;
  // Current job; generation_ bumps once per dispatch so late-waking
  // workers never re-run a finished job.  Workers copy task_/count_ out
  // under the lock in worker_loop before entering drain().
  const std::function<void(std::size_t, std::size_t)>* task_
      KIBAMRM_GUARDED_BY(mutex_) = nullptr;
  std::size_t count_ KIBAMRM_GUARDED_BY(mutex_) = 0;
  // Next unclaimed index.  KIBAMRM_LOCK_FREE: fetch_add(relaxed) only
  // hands out disjoint indices -- no other state is ordered through it;
  // publication of the job itself rides the mutex_ handshake, and the
  // store that poisons the counter on failure is ordered by the same
  // lock around failure_.
  std::atomic<std::size_t> next_{0}
      KIBAMRM_LOCK_FREE("disjoint index claims; job published via mutex_");
  std::size_t active_ KIBAMRM_GUARDED_BY(mutex_) = 0;  // lanes inside drain()
  std::uint64_t generation_ KIBAMRM_GUARDED_BY(mutex_) = 0;
  bool stopping_ KIBAMRM_GUARDED_BY(mutex_) = false;
  std::exception_ptr failure_ KIBAMRM_GUARDED_BY(mutex_);
};

}  // namespace kibamrm::common
