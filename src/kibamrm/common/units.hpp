// Unit conventions and conversions.
//
// The paper mixes two unit systems:
//   - the on/off experiments (Sec. 6.1) use seconds and ampere-seconds (As),
//     with currents in ampere (A);
//   - the simple/burst experiments (Sec. 6.2) use hours and milliampere-hours
//     (mAh), with currents in milliampere (mA).
//
// The library itself is unit-agnostic: every model carries plain doubles and
// it is the caller's job to keep time, charge and current consistent
// (charge = current * time).  This header provides the named conversions the
// paper uses, so call sites read like the paper text, e.g.
// `per_second_to_per_hour(4.5e-5)` yields the 1.96e-2/h quoted in Sec. 6.2.
#pragma once

namespace kibamrm::units {

inline constexpr double kSecondsPerMinute = 60.0;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kMinutesPerHour = 60.0;

/// Converts hours to seconds.
constexpr double hours_to_seconds(double hours) {
  return hours * kSecondsPerHour;
}

/// Converts seconds to hours.
constexpr double seconds_to_hours(double seconds) {
  return seconds / kSecondsPerHour;
}

/// Converts minutes to seconds.
constexpr double minutes_to_seconds(double minutes) {
  return minutes * kSecondsPerMinute;
}

/// Converts seconds to minutes.
constexpr double seconds_to_minutes(double seconds) {
  return seconds / kSecondsPerMinute;
}

/// Converts a capacity in mAh to ampere-seconds (As).
/// 1 mAh = 3.6 As.
constexpr double mAh_to_As(double mah) { return mah * 3.6; }

/// Converts ampere-seconds to mAh.
constexpr double As_to_mAh(double as) { return as / 3.6; }

/// Converts an Ah capacity to ampere-seconds.
constexpr double Ah_to_As(double ah) { return ah * kSecondsPerHour; }

/// Converts a rate expressed per second into a rate per hour
/// (e.g. the KiBaM constant k = 4.5e-5/s = 1.96e-2/h, Sec. 6.2).
constexpr double per_second_to_per_hour(double per_second) {
  return per_second * kSecondsPerHour;
}

/// Converts a rate per hour into a rate per second.
constexpr double per_hour_to_per_second(double per_hour) {
  return per_hour / kSecondsPerHour;
}

/// Converts milliampere to ampere.
constexpr double mA_to_A(double ma) { return ma / 1000.0; }

/// Converts ampere to milliampere.
constexpr double A_to_mA(double a) { return a * 1000.0; }

}  // namespace kibamrm::units
