// Error handling primitives for the kibamrm library.
//
// The library reports contract violations and invalid models through
// exceptions derived from kibamrm::Error.  Numerical routines that can fail
// for legitimate reasons (e.g. a root not bracketed) also throw, carrying a
// message that names the offending quantity.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace kibamrm {

/// Base class for all errors thrown by the kibamrm library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad argument, bad model).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A model definition is structurally invalid (e.g. generator row sums
/// non-zero, negative off-diagonal rate, currents of wrong sign).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or was asked for an infeasible
/// computation (e.g. Fox-Glynn underflow at extreme lambda).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Inter-process communication with a solver worker failed: the peer died,
/// a frame arrived malformed (length/checksum mismatch), or a transfer
/// timed out.  The sharded backend maps this onto a per-scenario failure,
/// so a crashed worker fails one scenario, never the whole batch.
class IpcError : public Error {
 public:
  explicit IpcError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_requirement_failure(const char* expr,
                                            const std::string& message,
                                            std::source_location where);
}  // namespace detail

/// Checks a precondition; throws InvalidArgument naming the expression and
/// source location on failure.  Used at public API boundaries (always on,
/// including release builds: model construction is not on any hot path).
#define KIBAMRM_REQUIRE(expr, message)                          \
  do {                                                          \
    if (!(expr)) {                                              \
      ::kibamrm::detail::throw_requirement_failure(             \
          #expr, (message), std::source_location::current());   \
    }                                                           \
  } while (false)

}  // namespace kibamrm
