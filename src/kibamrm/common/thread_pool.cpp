#include "kibamrm/common/thread_pool.hpp"

#include <algorithm>

#include "kibamrm/common/error.hpp"

namespace kibamrm::common {

std::size_t ThreadPool::hardware_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads)
    : lanes_(threads == 0 ? hardware_thread_count() : threads) {
  workers_.reserve(lanes_ - 1);
  // Lane 0 is the calling thread; workers take lanes 1..n-1.
  for (std::size_t lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain(
    const std::function<void(std::size_t, std::size_t)>& task,
    std::size_t count, std::size_t lane) {
  for (;;) {
    const std::size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= count) return;
    try {
      task(index, lane);
    } catch (...) {
      MutexLock lock(mutex_);
      if (!failure_) failure_ = std::current_exception();
      // Stop claiming further work; indices already claimed elsewhere
      // still finish, which keeps the join below well-defined.
      next_.store(count, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop(std::size_t lane) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* task = nullptr;
    std::size_t count = 0;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && generation_ == seen_generation) {
        job_ready_.wait(mutex_);
      }
      if (stopping_) return;
      seen_generation = generation_;
      // Copy the job out under the lock: drain() never touches the
      // guarded members (parallel_for keeps *task alive until every
      // lane has retired through active_ below).
      task = task_;
      count = count_;
    }
    drain(*task, count, lane);
    {
      MutexLock lock(mutex_);
      --active_;
    }
    job_done_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& task) {
  KIBAMRM_REQUIRE(static_cast<bool>(task), "parallel_for task must be set");
  if (count == 0) return;
  if (lanes_ == 1 || count == 1) {
    // No pool involvement: zero synchronisation and exceptions propagate
    // directly, so a 1-lane pool behaves exactly like a plain loop.
    for (std::size_t index = 0; index < count; ++index) task(index, 0);
    return;
  }
  {
    MutexLock lock(mutex_);
    task_ = &task;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    failure_ = nullptr;
    ++generation_;
  }
  job_ready_.notify_all();
  drain(task, count, 0);  // the caller participates as lane 0
  std::exception_ptr failure;
  {
    MutexLock lock(mutex_);
    while (active_ != 0) job_done_.wait(mutex_);
    task_ = nullptr;
    failure = failure_;
    failure_ = nullptr;
  }
  if (failure) std::rethrow_exception(failure);
}

}  // namespace kibamrm::common
