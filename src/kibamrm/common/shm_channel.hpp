// Shared-memory SPSC channels for the sharded (multi-process) backend.
//
// The sharded engine forks one worker process per shard; coordinator and
// workers exchange halo rows, steady-state deltas and result slices tens
// of thousands of times per solve, so the transport must cost a memcpy
// plus (rarely) a futex, never a syscall per frame.  ShmChannel provides
// exactly that:
//
//   * One anonymous MAP_SHARED mapping per channel, created *before*
//     fork() and inherited by the worker.  Nothing is ever created under
//     /dev/shm, so a SIGKILLed worker cannot leak a named segment -- the
//     kernel reclaims the pages when the last process unmaps (leak-proof
//     by construction; see the reaping test in test_engine_sharded.cpp).
//
//   * A single-producer single-consumer byte ring with release/acquire
//     head/tail counters.  Producer and consumer park on futex doorbell
//     words (FUTEX_WAIT on the shared mapping; a nanosleep poll is the
//     portable fallback off Linux), so an idle side burns no CPU.
//
//   * Length-prefixed frames [u32 payload_len][u32 type][u64 fnv1a64]
//     [payload].  decode_shm_frame is the single validation path -- recv
//     funnels every frame through it, and the fuzz_shm_channel target
//     feeds it byte soup directly: a damaged frame must surface as
//     IpcError, never as UB downstream.
//
//   * Peer-death and timeout detection: recv waits in short slices,
//     polling a caller-supplied liveness callback (the coordinator passes
//     waitpid(WNOHANG) on the worker's pid) between slices.  A dead peer
//     or an exhausted deadline throws IpcError, which ScenarioBatch maps
//     to a per-scenario failure -- a crashed worker fails the scenario,
//     not the batch.
//
// Thread model: each end of a channel is owned by exactly one process
// (and one thread within it); the ring's cross-process synchronisation
// is the head/tail release/acquire protocol below.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "kibamrm/common/thread_annotations.hpp"

namespace kibamrm::common {

/// Frame header layout (little-endian, as memcpy'd on the wire).
inline constexpr std::size_t kShmFrameHeaderBytes = 16;

/// Hard cap on a single frame's payload; a length field beyond it is
/// corruption by definition (the largest legitimate frame is one result
/// slice, bounded by the channel capacity anyway).
inline constexpr std::uint32_t kShmMaxFramePayload = 1u << 30;

/// One decoded frame: a small type tag plus the payload bytes.
struct ShmFrame {
  std::uint32_t type = 0;
  std::vector<std::byte> payload;
};

/// Serialises one frame (header + payload) into `out`, appending; the
/// checksum covers type and payload.
void encode_shm_frame(std::uint32_t type, std::span<const std::byte> payload,
                      std::vector<std::byte>& out);

/// Validates and decodes exactly one frame from the front of `bytes`:
/// header present, payload length within kShmMaxFramePayload and within
/// `bytes`, checksum matching.  Returns the bytes consumed and fills
/// `frame` (payload storage is reused across calls).  Throws IpcError on
/// any violation -- this is the single untrusted-input path recv() and
/// the fuzz_shm_channel target share.
std::size_t decode_shm_frame(std::span<const std::byte> bytes,
                             ShmFrame& frame);

/// Single-producer single-consumer byte ring in an anonymous shared
/// mapping.  create() must run before fork(); afterwards exactly one
/// process sends and exactly one receives (which is which may differ per
/// channel).  Closing and destruction are per-process: the mapping's
/// pages live until the last process unmaps them.
///
/// KIBAMRM_EXTERNALLY_SYNCHRONIZED: each end is single-threaded by the
/// sharded protocol (coordinator thread / worker main); the shared ring
/// itself synchronises the two processes via release/acquire head/tail.
class KIBAMRM_EXTERNALLY_SYNCHRONIZED(
    "one process per end; ring head/tail release/acquire orders the data")
    ShmChannel {
 public:
  /// Polled between wait slices; return false to abort the wait with
  /// IpcError ("peer died").  The coordinator passes waitpid(WNOHANG).
  using AlivePoll = std::function<bool()>;

  /// Default transfer deadline: generous enough for a TSan-slowed CI
  /// worker mid-solve, short enough that a wedged peer fails the
  /// scenario rather than the whole run.
  static constexpr std::uint64_t kDefaultTimeoutNs = 300ull * 1000000000ull;

  ShmChannel() = default;
  ~ShmChannel();

  ShmChannel(ShmChannel&& other) noexcept;
  ShmChannel& operator=(ShmChannel&& other) noexcept;
  ShmChannel(const ShmChannel&) = delete;
  ShmChannel& operator=(const ShmChannel&) = delete;

  /// Channel whose ring buffers at least `capacity` payload bytes (the
  /// largest frame, header included, must fit; send() enforces it).
  static ShmChannel create(std::size_t capacity);

  bool valid() const { return ring_ != nullptr; }
  std::size_t capacity() const { return buffer_bytes_; }

  /// Enqueues one frame, blocking while the ring lacks space.  Throws
  /// IpcError when the frame exceeds the ring, the peer closed/died, or
  /// the deadline passes.
  void send(std::uint32_t type, const void* payload, std::size_t bytes,
            const AlivePoll& peer_alive = nullptr,
            std::uint64_t timeout_ns = kDefaultTimeoutNs);

  /// Dequeues one frame into `frame` (storage reused), blocking while the
  /// ring is empty.  Throws IpcError on a malformed frame, a closed-and-
  /// drained channel, a dead peer, or an exhausted deadline.
  void recv(ShmFrame& frame, const AlivePoll& peer_alive = nullptr,
            std::uint64_t timeout_ns = kDefaultTimeoutNs);

  /// Marks this channel closed (both directions), waking any waiter in
  /// either process.  recv() on a closed, drained channel throws
  /// IpcError; idempotent.
  void close();

 private:
  struct Ring;  // shared-mapping layout, defined in the .cpp

  void unmap() noexcept;

  Ring* ring_ = nullptr;           // start of the shared mapping
  std::byte* buffer_ = nullptr;    // payload ring, directly after Ring
  std::size_t buffer_bytes_ = 0;   // ring capacity in bytes
  std::size_t mapping_bytes_ = 0;  // total mapping length (for munmap)
  std::vector<std::byte> scratch_;  // per-process frame assembly buffer
};

}  // namespace kibamrm::common
