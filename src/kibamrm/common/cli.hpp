// Minimal command-line option parsing for the bench and example binaries.
//
// Supports `--flag`, `--key value` and `--key=value` forms.  Unknown options
// raise InvalidArgument so typos in bench invocations fail loudly instead of
// silently running the default configuration.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace kibamrm::common {

/// Parsed command line.  Construct once from argc/argv, then query options.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if `--name` appeared (with or without a value).
  bool has(const std::string& name) const;

  /// String value of `--name value` / `--name=value`, or `fallback`.
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Numeric accessors; throw InvalidArgument on malformed numbers.
  double get_double(const std::string& name, double fallback) const;
  int get_int(const std::string& name, int fallback) const;

  /// get_int additionally requiring any *provided* value to be >= 1 --
  /// replication counts, subspace dimensions.  Rejects 0, negatives,
  /// fractions and garbage with InvalidArgument.  The fallback itself is
  /// exempt, so callers may default to a sentinel.
  int get_positive_int(const std::string& name, int fallback) const;

  /// get_int additionally requiring any *provided* value to be >= 0 --
  /// options whose 0 is a documented sentinel, like `--threads 0` =
  /// auto-detect (get_positive_int would reject the explicit 0 the help
  /// text advertises).  Rejects negatives, fractions and garbage.
  int get_nonnegative_int(const std::string& name, int fallback) const;

  /// Parses a comma-separated list of doubles, e.g. `--delta 100,50,25`.
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> fallback) const;

  /// Value of `--name` restricted to an allowed set (e.g. the registered
  /// transient engines); throws InvalidArgument listing the choices when
  /// the given value is not among them, or when `--name` appears without a
  /// value.  `fallback` need not be validated against `allowed` (callers
  /// may default to a dynamic first entry).
  std::string get_choice(const std::string& name, const std::string& fallback,
                         const std::vector<std::string>& allowed) const;

  /// Value of `--name` required to be an *existing directory* when
  /// provided -- spill/output locations, where a typo'd path would
  /// otherwise surface minutes into a solve as an opaque open() failure.
  /// The fallback (typically "" = use $TMPDIR) is exempt.  A `--name`
  /// without a value throws, like get_choice.
  std::string get_directory(const std::string& name,
                            const std::string& fallback) const;

  /// Positional (non-option) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  /// Registers `name` as known; returns *this for chaining.  After all
  /// declare() calls, validate() throws on any unknown option.
  CliArgs& declare(const std::string& name);
  void validate() const;

 private:
  /// Shared body of the bounded-int accessors: fallback passthrough when
  /// absent, then get_int with the lower bound named by `adjective` in
  /// the error message.
  int get_int_at_least(const std::string& name, int fallback, int minimum,
                       const char* adjective) const;

  std::string program_;
  std::map<std::string, std::optional<std::string>> options_;
  std::vector<std::string> positional_;
  std::vector<std::string> declared_;
};

}  // namespace kibamrm::common
