#include "kibamrm/common/spill_io.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "kibamrm/common/error.hpp"

namespace kibamrm::common {

namespace {

constexpr std::size_t kAlignment = 4096;

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw Error(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      capacity_(std::exchange(other.capacity_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    capacity_ = std::exchange(other.capacity_, 0);
  }
  return *this;
}

void AlignedBuffer::resize(std::size_t bytes) {
  if (bytes <= capacity_) {
    size_ = bytes;
    return;
  }
  const std::size_t rounded = (bytes + kAlignment - 1) / kAlignment *
                              kAlignment;
  void* fresh = nullptr;
  if (posix_memalign(&fresh, kAlignment, rounded) != 0 || fresh == nullptr) {
    throw Error("spill buffer allocation of " + std::to_string(rounded) +
                " bytes failed");
  }
  std::free(data_);
  data_ = static_cast<std::byte*>(fresh);
  size_ = bytes;
  capacity_ = rounded;
}

SpillFile::~SpillFile() {
  if (fd_ >= 0) ::close(fd_);
}

SpillFile::SpillFile(SpillFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      direct_(std::exchange(other.direct_, false)),
      path_(std::move(other.path_)) {}

SpillFile& SpillFile::operator=(SpillFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    direct_ = std::exchange(other.direct_, false);
    path_ = std::move(other.path_);
  }
  return *this;
}

SpillFile SpillFile::create(const std::string& path) {
  SpillFile file;
  file.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0600);
  if (file.fd_ < 0) throw_errno("cannot create spill file", path);
  file.path_ = path;
  return file;
}

SpillFile SpillFile::open_readonly(const std::string& path, bool direct_io) {
  SpillFile file;
#ifdef O_DIRECT
  if (direct_io) {
    file.fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC | O_DIRECT);
    file.direct_ = file.fd_ >= 0;
  }
#else
  (void)direct_io;
#endif
  if (file.fd_ < 0) {
    file.fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  }
  if (file.fd_ < 0) throw_errno("cannot open spill file", path);
  file.path_ = path;
  return file;
}

void SpillFile::read_exact(void* dst, std::size_t bytes,
                           std::uint64_t offset) const {
  KIBAMRM_REQUIRE(fd_ >= 0, "read from a closed spill file");
  auto* out = static_cast<std::byte*>(dst);
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t got = ::pread(fd_, out + done, bytes - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw_errno("spill read failed on", path_);
    }
    if (got == 0) {
      throw Error("spill file '" + path_ + "' truncated: wanted " +
                  std::to_string(bytes) + " bytes at offset " +
                  std::to_string(offset) + ", file ended after " +
                  std::to_string(done));
    }
    done += static_cast<std::size_t>(got);
  }
}

void SpillFile::write_exact(const void* src, std::size_t bytes,
                            std::uint64_t offset) {
  KIBAMRM_REQUIRE(fd_ >= 0, "write to a closed spill file");
  const auto* in = static_cast<const std::byte*>(src);
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t put = ::pwrite(fd_, in + done, bytes - done,
                                 static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      throw_errno("spill write failed on", path_);
    }
    done += static_cast<std::size_t>(put);
  }
}

std::uint64_t SpillFile::size() const {
  KIBAMRM_REQUIRE(fd_ >= 0, "size of a closed spill file");
  struct stat info;
  if (fstat(fd_, &info) != 0) throw_errno("cannot stat spill file", path_);
  return static_cast<std::uint64_t>(info.st_size);
}

void SpillFile::advise_willneed(std::uint64_t offset,
                                std::uint64_t bytes) const {
#if defined(POSIX_FADV_WILLNEED)
  if (fd_ >= 0 && !direct_) {
    // Best-effort readahead; O_DIRECT bypasses the page cache, so the
    // hint would be meaningless there.
    (void)posix_fadvise(fd_, static_cast<off_t>(offset),
                        static_cast<off_t>(bytes), POSIX_FADV_WILLNEED);
  }
#else
  (void)offset;
  (void)bytes;
#endif
}

void SpillFile::sync() {
  KIBAMRM_REQUIRE(fd_ >= 0, "sync of a closed spill file");
#if defined(__APPLE__)
  if (fsync(fd_) != 0) throw_errno("cannot sync spill file", path_);
#else
  if (fdatasync(fd_) != 0) throw_errno("cannot sync spill file", path_);
#endif
}

void SpillFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  direct_ = false;
}

void SpillFile::unlink_keeping_open() {
  if (!path_.empty()) {
    (void)::unlink(path_.c_str());
  }
}

std::string resolve_spill_dir(const std::string& requested) {
  if (!requested.empty()) {
    struct stat info;
    if (stat(requested.c_str(), &info) != 0 || !S_ISDIR(info.st_mode)) {
      throw InvalidArgument("spill directory '" + requested +
                            "' does not exist or is not a directory");
    }
    return requested;
  }
  const char* tmpdir = std::getenv("TMPDIR");
  return tmpdir != nullptr && *tmpdir != '\0' ? tmpdir : "/tmp";
}

std::string unique_spill_path(const std::string& dir,
                              const std::string& stem) {
  static std::atomic<std::uint64_t> counter{0};
  return dir + "/" + stem + "." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1)) + ".spill";
}

}  // namespace kibamrm::common
