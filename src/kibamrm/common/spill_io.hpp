// File-backed spill storage for the out-of-core solver tier.
//
// The ooc backend writes the expanded chain's tiled transition structure
// to a spill file once per solve and streams it back tens of thousands of
// times; this header provides the thin POSIX layer it runs on:
//
//   SpillFile       RAII file descriptor with exact-length positional
//                   reads/writes (short transfers are errors, not partial
//                   successes), readahead hints (posix_fadvise) and an
//                   opportunistic O_DIRECT open that silently falls back
//                   to buffered IO on filesystems that refuse it
//   AlignedBuffer   page-aligned byte buffer (O_DIRECT requires aligned
//                   source/destination memory; the alignment also keeps
//                   the tile kernels' double arrays naturally aligned)
//   fnv1a64         checksum for tile slabs -- corruption and truncation
//                   must surface as kibamrm::Error, never as UB in a
//                   kernel that trusted a damaged offset table
//
// Everything throws kibamrm::Error subclasses on failure; callers never
// see errno directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "kibamrm/common/thread_annotations.hpp"

namespace kibamrm::common {

/// 64-bit FNV-1a over `bytes` bytes starting at `data`; `seed` chains
/// multi-span checksums (pass the previous digest).
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// Page-aligned (4096-byte) heap buffer, movable, non-copyable.  O_DIRECT
/// transfers require sector-aligned memory; buffered reads tolerate it.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t bytes) { resize(bytes); }
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Grows (never shrinks) the allocation to at least `bytes`; contents
  /// are NOT preserved (tiles are always re-read whole).
  void resize(std::size_t bytes);

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;      // requested bytes
  std::size_t capacity_ = 0;  // allocated bytes (multiple of the alignment)
};

/// RAII POSIX file with positional exact-length IO.  The spill files are
/// single-writer single-format scratch, so there is no seek state: every
/// transfer names its offset.
///
/// KIBAMRM_EXTERNALLY_SYNCHRONIZED: a SpillFile is owned by exactly one
/// TileStore.  The mutating operations (create/open/close/unlink/sync/
/// write_exact) run on the owner's thread only; concurrent read_exact /
/// advise_willneed calls are safe because pread takes no descriptor
/// state (each call names its own offset) and fd_ / direct_ / path_ are
/// immutable between open and close.  The ooc pipeline's IO lane is the
/// only reader during a streamed step, handed off through the pool's
/// dispatch barrier.
class KIBAMRM_EXTERNALLY_SYNCHRONIZED(
    "single owner; pread is stateless, members frozen between open/close")
    SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile();

  SpillFile(SpillFile&& other) noexcept;
  SpillFile& operator=(SpillFile&& other) noexcept;
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Creates (truncating) a read-write spill file.
  static SpillFile create(const std::string& path);

  /// Opens an existing file read-only.  With `direct_io`, O_DIRECT is
  /// attempted first and buffered IO is the silent fallback (tmpfs and
  /// some network filesystems reject the flag); direct_active() reports
  /// which mode the descriptor ended up in.
  static SpillFile open_readonly(const std::string& path, bool direct_io);

  bool is_open() const { return fd_ >= 0; }
  bool direct_active() const { return direct_; }
  const std::string& path() const { return path_; }

  /// Exact-length positional transfer; a short read (EOF inside the span,
  /// i.e. a truncated file) or any IO error throws kibamrm::Error.
  /// O_DIRECT descriptors require 4096-aligned offset/length/memory --
  /// the tile store pads its layout so callers satisfy this naturally.
  void read_exact(void* dst, std::size_t bytes, std::uint64_t offset) const;
  void write_exact(const void* src, std::size_t bytes, std::uint64_t offset);

  /// Byte size reported by fstat (throws when the descriptor is closed).
  std::uint64_t size() const;

  /// Readahead hint for an upcoming read_exact; silently a no-op where
  /// posix_fadvise is unavailable or the filesystem ignores it.
  void advise_willneed(std::uint64_t offset, std::uint64_t bytes) const;

  /// Flushes file contents to storage (fdatasync).
  void sync();

  void close();

  /// Unlinks the directory entry while keeping the descriptor open: the
  /// kernel reclaims the space when the last descriptor closes, so spill
  /// files cannot outlive a crashed solve.
  void unlink_keeping_open();

 private:
  int fd_ = -1;
  bool direct_ = false;
  std::string path_;
};

/// Directory for spill files: `requested` when non-empty (must exist),
/// otherwise $TMPDIR falling back to /tmp.
std::string resolve_spill_dir(const std::string& requested);

/// Unique not-yet-existing path `<dir>/<stem>.<pid>.<counter>.spill`.
std::string unique_spill_path(const std::string& dir,
                              const std::string& stem);

}  // namespace kibamrm::common
