// Monte-Carlo simulation of the KiBaMRM (the "simulation" curves of
// Sec. 6).
//
// Each replication samples a trajectory of the workload CTMC (exponential
// sojourns, embedded jump probabilities) and drives the *analytical* KiBaM
// closed form through the sojourn segments; the battery-empty crossing
// inside a sojourn is located exactly by the battery model.  This is
// statistically exact for the KiBaMRM (no reward discretisation), so it is
// the reference the Markovian approximation must converge to as Delta -> 0.
#pragma once

#include <cstdint>
#include <vector>

#include "kibamrm/common/random.hpp"
#include "kibamrm/core/kibamrm_model.hpp"
#include "kibamrm/core/lifetime_distribution.hpp"
#include "kibamrm/stats/empirical.hpp"

namespace kibamrm::core {

struct SimulationOptions {
  std::size_t replications = 1000;  // the paper's run count
  std::uint64_t seed = 0xB5E77E12;
  /// Abort a replication (and throw) if the battery survives this horizon;
  /// guards against configurations whose load can idle forever.
  double max_time = 1e12;
};

/// Cost counters of the most recent run(), the simulation analogue of the
/// transient engines' BackendStats (the bench harness reports both).
struct SimulationStats {
  std::uint64_t replications = 0;
  /// Sampled workload events over all replications (state jumps plus
  /// thinning phantoms for adaptive models).
  std::uint64_t events = 0;
};

class MonteCarloSimulator {
 public:
  /// The model is stored by value: simulators outlive the expressions that
  /// configure them (temporaries are fine), and the workload chains are
  /// small.
  MonteCarloSimulator(KibamRmModel model, SimulationOptions options);

  /// Samples a single battery lifetime.
  double sample_lifetime(common::RandomStream& rng) const;

  /// Runs all replications and returns the empirical lifetime distribution.
  stats::EmpiricalDistribution run() const;

  /// Empirical Pr{battery empty at t} on a time grid (the ECDF of run()).
  LifetimeCurve empty_probability_curve(const std::vector<double>& times)
      const;

  /// Counters of the most recent run().
  const SimulationStats& last_stats() const { return stats_; }

 private:
  /// sample_lifetime plus an event count for the run() statistics.
  double sample_lifetime_counted(common::RandomStream& rng,
                                 std::uint64_t& events) const;

  KibamRmModel model_;
  SimulationOptions options_;
  // Diagnostics of the last run(); mutable because sampling through the
  // const query API still updates the counters.
  mutable SimulationStats stats_;
};

}  // namespace kibamrm::core
