#include "kibamrm/core/simulator.hpp"

#include "kibamrm/battery/kibam.hpp"
#include "kibamrm/common/error.hpp"

namespace kibamrm::core {

MonteCarloSimulator::MonteCarloSimulator(KibamRmModel model,
                                         SimulationOptions options)
    : model_(std::move(model)), options_(options) {
  KIBAMRM_REQUIRE(options_.replications >= 1,
                  "simulation needs >= 1 replication");
  KIBAMRM_REQUIRE(options_.max_time > 0.0, "max_time must be positive");
}

double MonteCarloSimulator::sample_lifetime(common::RandomStream& rng) const {
  std::uint64_t events = 0;
  return sample_lifetime_counted(rng, events);
}

double MonteCarloSimulator::sample_lifetime_counted(
    common::RandomStream& rng, std::uint64_t& events) const {
  const auto& workload = model_.workload();
  const auto& chain = workload.chain();
  const auto& generator = chain.generator();
  const auto row_ptr = generator.row_pointers();
  const auto col_idx = generator.column_indices();
  const auto values = generator.values();
  const bool adaptive = model_.has_rate_modifier();

  battery::KibamBattery battery(model_.battery(), model_.initial_available(),
                                model_.initial_bound());

  // Draw the initial state.
  std::size_t state = rng.discrete(workload.initial_distribution());

  double elapsed = 0.0;
  while (elapsed < options_.max_time) {
    const double exit_rate = chain.exit_rate(state);
    const double current = workload.current(state);

    if (exit_rate <= 0.0) {
      // Absorbing workload state: the battery drains (or survives) forever.
      const auto crossing =
          battery.advance(current, options_.max_time - elapsed);
      if (crossing) return elapsed + *crossing;
      break;
    }

    // With a charge-dependent rate modifier the transition rates vary
    // continuously along the sojourn; sample the jump time by thinning
    // against the bounding rate q_i * bound (exact for modifiers bounded
    // by the registered bound).
    const double bound_rate =
        adaptive ? exit_rate * model_.rate_modifier_bound() : exit_rate;
    const double sojourn = rng.exponential(bound_rate);
    const double dt = std::min(sojourn, options_.max_time - elapsed);
    const auto crossing = battery.advance(current, dt);
    if (crossing) return elapsed + *crossing;
    elapsed += dt;
    if (dt < sojourn) break;  // horizon reached mid-sojourn
    ++events;

    // Candidate jump: evaluate the (possibly charge-dependent) rates now.
    std::vector<double> weights;
    std::vector<std::size_t> targets;
    double actual_total = 0.0;
    for (std::uint32_t k = row_ptr[state]; k < row_ptr[state + 1]; ++k) {
      if (col_idx[k] == state) continue;
      double rate = values[k];
      if (adaptive) {
        rate *= model_.rate_modifier()(state, col_idx[k],
                                       battery.available_charge(),
                                       battery.bound_charge());
      }
      if (rate > 0.0) {
        targets.push_back(col_idx[k]);
        weights.push_back(rate);
        actual_total += rate;
      }
    }
    if (adaptive) {
      // Thinning acceptance: with probability 1 - actual/bound this is a
      // phantom event and the state is unchanged.
      if (actual_total <= 0.0 ||
          !rng.bernoulli(std::min(1.0, actual_total / bound_rate))) {
        continue;
      }
    }
    state = targets[rng.discrete(weights)];
  }
  throw NumericalError(
      "simulation: battery survived past max_time; raise the horizon or "
      "check the workload");
}

stats::EmpiricalDistribution MonteCarloSimulator::run() const {
  std::vector<double> lifetimes;
  lifetimes.reserve(options_.replications);
  common::RandomStream rng(options_.seed);
  stats_ = SimulationStats{};
  for (std::size_t i = 0; i < options_.replications; ++i) {
    common::RandomStream replication_rng = rng.split();
    lifetimes.push_back(sample_lifetime_counted(replication_rng,
                                                stats_.events));
  }
  stats_.replications = options_.replications;
  return stats::EmpiricalDistribution(std::move(lifetimes));
}

LifetimeCurve MonteCarloSimulator::empty_probability_curve(
    const std::vector<double>& times) const {
  const stats::EmpiricalDistribution dist = run();
  std::vector<double> probs(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    probs[i] = dist.cdf(times[i]);
  }
  return LifetimeCurve(times, std::move(probs));
}

}  // namespace kibamrm::core
