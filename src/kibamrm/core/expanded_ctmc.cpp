#include "kibamrm/core/expanded_ctmc.hpp"

#include <utility>

#include "kibamrm/common/error.hpp"

namespace kibamrm::core {

StateOrdering parse_state_ordering(std::string_view name) {
  if (name == "none") return StateOrdering::kNone;
  if (name == "level") return StateOrdering::kLevel;
  if (name == "rcm") return StateOrdering::kRcm;
  throw InvalidArgument("unknown state ordering '" + std::string(name) +
                        "'; choices: none level rcm");
}

std::string_view state_ordering_name(StateOrdering ordering) {
  switch (ordering) {
    case StateOrdering::kLevel:
      return "level";
    case StateOrdering::kRcm:
      return "rcm";
    default:
      return "none";
  }
}

namespace {

/// The level-major renumbering: a level axis becomes the innermost index
/// so consecutive states differ by one level step and the transposed
/// transition matrix gets its equal-length row runs.  Two-well grids put
/// j2 innermost with the workload state between the wells -- every
/// transition family then lands within n*(L2+1)+1 of the diagonal, the
/// same bandwidth as the natural order, but with runs of ~L2 rows.
/// Single-well grids (L2 = 0) put j1 innermost instead; the workload
/// stride L1+1 stays far inside the compressed plan's int16 offset
/// budget for every paper configuration.
linalg::Permutation level_major_permutation(const LevelGrid& grid) {
  const std::size_t n = grid.workload_states();
  const std::size_t l1 = grid.available_levels();
  const std::size_t l2 = grid.bound_levels();
  std::vector<std::uint32_t> new_of_old(grid.state_count());
  for (std::size_t j1 = 0; j1 <= l1; ++j1) {
    for (std::size_t j2 = 0; j2 <= l2; ++j2) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t target =
            l2 > 0 ? (j1 * n + i) * (l2 + 1) + j2 : i * (l1 + 1) + j1;
        new_of_old[grid.index(i, j1, j2)] =
            static_cast<std::uint32_t>(target);
      }
    }
  }
  return linalg::Permutation(std::move(new_of_old));
}

}  // namespace

double ExpandedChain::empty_probability(const std::vector<double>& pi) const {
  KIBAMRM_REQUIRE(pi.size() == grid.state_count(),
                  "empty_probability: distribution size mismatch");
  double total = 0.0;
  if (ordering == StateOrdering::kNone) {
    for (std::size_t j2 = 0; j2 <= grid.bound_levels(); ++j2) {
      for (std::size_t i = 0; i < grid.workload_states(); ++i) {
        total += pi[grid.index(i, 0, j2)];
      }
    }
    return total;
  }
  for (std::size_t j2 = 0; j2 <= grid.bound_levels(); ++j2) {
    for (std::size_t i = 0; i < grid.workload_states(); ++i) {
      total += pi[permutation[grid.index(i, 0, j2)]];
    }
  }
  return total;
}

std::vector<double> ExpandedChain::to_grid_order(
    const std::vector<double>& pi) const {
  if (ordering == StateOrdering::kNone) return pi;
  return permutation.apply_inverse(pi);
}

ExpandedChain build_expanded_chain(const KibamRmModel& model, double delta,
                                   StateOrdering ordering) {
  const LevelGrid grid(model, delta);
  const std::size_t n = grid.workload_states();
  const std::size_t l1 = grid.available_levels();
  const std::size_t l2 = grid.bound_levels();
  const double c = model.battery().available_fraction;
  const double k = model.battery().flow_constant;

  const auto& q = model.workload().chain().generator();
  const auto q_row_ptr = q.row_pointers();
  const auto q_col_idx = q.column_indices();
  const auto q_values = q.values();

  linalg::CooBuilder builder(grid.state_count(), grid.state_count());
  // Exact triplet-count bound: only non-absorbing states (j1 >= 1, i.e.
  // l1 * (l2 + 1) level pairs) emit entries.  Summed over the workload
  // states of one level pair that is at most every off-diagonal of Q
  // (<= nonzeros) plus consumption, transfer and the rebuilt diagonal per
  // state.  A single exact-size reserve avoids reallocation spikes on the
  // multi-million-entry generators of small Delta.
  builder.reserve(l1 * (l2 + 1) * (q.nonzeros() + 3 * n));

  for (std::size_t j1 = 1; j1 <= l1; ++j1) {  // j1 = 0 is absorbing
    for (std::size_t j2 = 0; j2 <= l2; ++j2) {
      // Transfer rate from the bound well at this level pair:
      // k (h2 - h1)/Delta = k (j2/(1-c) - j1/c).
      double transfer = 0.0;
      if (k > 0.0 && l2 > 0 && j2 > 0 && j1 < l1) {
        const double height_diff = static_cast<double>(j2) / (1.0 - c) -
                                   static_cast<double>(j1) / c;
        if (height_diff > 0.0) transfer = k * height_diff;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t from = grid.index(i, j1, j2);
        double exit = 0.0;

        // 1. Workload transitions at the same reward levels; a rate
        // modifier makes this the reward-inhomogeneous Q(y1, y2) of
        // Sec. 4.1, evaluated at the level representatives.
        for (std::uint32_t e = q_row_ptr[i]; e < q_row_ptr[i + 1]; ++e) {
          const std::size_t target = q_col_idx[e];
          if (target == i) continue;  // diagonal rebuilt below
          double rate = q_values[e];
          if (model.has_rate_modifier()) {
            const double factor = model.rate_modifier()(
                i, target, static_cast<double>(j1) * delta,
                static_cast<double>(j2) * delta);
            KIBAMRM_REQUIRE(
                factor >= 0.0 &&
                    factor <= model.rate_modifier_bound() * (1.0 + 1e-12),
                "rate modifier returned a value outside [0, bound]");
            rate *= factor;
          }
          if (rate > 0.0) {
            builder.add(from, grid.index(target, j1, j2), rate);
            exit += rate;
          }
        }

        // 2. Consumption of energy: one level down in the available well.
        const double current = model.workload().current(i);
        if (current > 0.0) {
          const double rate = current / delta;
          builder.add(from, grid.index(i, j1 - 1, j2), rate);
          exit += rate;
        }

        // 3. Charge flow from the bound well to the available well.
        if (transfer > 0.0) {
          builder.add(from, grid.index(i, j1 + 1, j2 - 1), transfer);
          exit += transfer;
        }

        if (exit > 0.0) builder.add(from, from, -exit);
      }
    }
  }

  std::vector<double> initial(grid.state_count(), 0.0);
  const auto& alpha = model.workload().initial_distribution();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] != 0.0) {
      initial[grid.index(i, grid.initial_available_level(),
                         grid.initial_bound_level())] = alpha[i];
    }
  }

  linalg::CsrMatrix generator = builder.build();

  // Renumber at build time: a symmetric permutation of the generator is
  // the same chain (row sums, rates and absorbing layers all carried
  // along), so every backend solves it unchanged; only the memory layout
  // of the hot loops differs.  The permutation rides in the result so
  // distributions map back to grid coordinates.
  linalg::Permutation permutation;
  switch (ordering) {
    case StateOrdering::kNone:
      permutation = linalg::Permutation::identity(grid.state_count());
      break;
    case StateOrdering::kLevel:
      permutation = level_major_permutation(grid);
      break;
    case StateOrdering::kRcm:
      permutation = linalg::Permutation::reverse_cuthill_mckee(generator);
      break;
  }
  if (ordering != StateOrdering::kNone) {
    generator = permutation.permuted(generator);
    initial = permutation.apply(initial);
  }

  return ExpandedChain{grid, markov::Ctmc(std::move(generator)),
                       std::move(initial), std::move(permutation), ordering};
}

}  // namespace kibamrm::core
