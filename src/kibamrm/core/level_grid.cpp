#include "kibamrm/core/level_grid.hpp"

#include <cmath>

#include "kibamrm/common/error.hpp"

namespace kibamrm::core {

namespace {

/// Rounds bound/delta to the nearest integer, requiring near-exact
/// divisibility so levels line up with the physical charge bounds.
std::size_t levels_for(double bound, double delta, const char* what) {
  const double ratio = bound / delta;
  const double rounded = std::round(ratio);
  KIBAMRM_REQUIRE(std::abs(ratio - rounded) <= 1e-6 * (rounded + 1.0),
                  std::string(what) +
                      " must be an integer multiple of the step size delta");
  return static_cast<std::size_t>(rounded);
}

/// Level of reward value a under the interval semantics (j Delta, (j+1)
/// Delta], left-closed at 0.
std::size_t level_of(double a, double delta, std::size_t max_level) {
  if (a <= 0.0) return 0;
  const double j = std::ceil(a / delta - 1e-9) - 1.0;
  const auto level = j <= 0.0 ? std::size_t{0} : static_cast<std::size_t>(j);
  return level > max_level ? max_level : level;
}

}  // namespace

LevelGrid::LevelGrid(const KibamRmModel& model, double delta) : delta_(delta) {
  KIBAMRM_REQUIRE(delta > 0.0, "discretisation step delta must be positive");
  n_ = model.workload().state_count();

  const bool single = model.single_well();
  // With no flow between the wells, y1 cannot grow past its initial value;
  // otherwise transfer can push it up to c * (y1(0) + y2(0)).
  const double u1 =
      single ? model.initial_available() : model.available_upper_bound();
  l1_ = levels_for(u1, delta, "available-charge bound u1");
  KIBAMRM_REQUIRE(l1_ >= 1, "delta too coarse: no available-charge levels");
  l2_ = single ? 0 : levels_for(model.bound_upper_bound(), delta,
                                "bound-charge bound u2");
  j1_init_ = level_of(model.initial_available(), delta, l1_);
  j2_init_ = l2_ == 0 ? 0 : level_of(model.initial_bound(), delta, l2_);
}

}  // namespace kibamrm::core
