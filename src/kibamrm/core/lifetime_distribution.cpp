#include "kibamrm/core/lifetime_distribution.hpp"

#include <algorithm>
#include <cmath>

#include "kibamrm/common/error.hpp"

namespace kibamrm::core {

LifetimeCurve::LifetimeCurve(std::vector<double> times,
                             std::vector<double> probabilities,
                             double monotonicity_tolerance)
    : times_(std::move(times)), probs_(std::move(probabilities)) {
  KIBAMRM_REQUIRE(!times_.empty(), "lifetime curve needs >= 1 point");
  KIBAMRM_REQUIRE(times_.size() == probs_.size(),
                  "lifetime curve: times/probabilities size mismatch");
  KIBAMRM_REQUIRE(std::is_sorted(times_.begin(), times_.end()),
                  "lifetime curve: times must be ascending");
  double running_max = 0.0;
  for (double p : probs_) {
    KIBAMRM_REQUIRE(p >= -1e-9 && p <= 1.0 + 1e-9,
                    "lifetime curve: probability out of [0,1]");
    KIBAMRM_REQUIRE(p >= running_max - monotonicity_tolerance,
                    "lifetime curve: CDF decreases beyond tolerance");
    running_max = std::max(running_max, p);
  }
}

double LifetimeCurve::probability_at(double t) const {
  if (t <= times_.front()) {
    return t == times_.front() ? probs_.front() : 0.0;
  }
  if (t >= times_.back()) return probs_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  if (span <= 0.0) return probs_[hi];
  const double frac = (t - times_[lo]) / span;
  return probs_[lo] + frac * (probs_[hi] - probs_[lo]);
}

double LifetimeCurve::quantile(double p) const {
  KIBAMRM_REQUIRE(p >= 0.0 && p <= 1.0, "quantile level must lie in [0,1]");
  if (probs_.front() >= p) return times_.front();
  for (std::size_t i = 1; i < probs_.size(); ++i) {
    if (probs_[i] >= p) {
      const double rise = probs_[i] - probs_[i - 1];
      if (rise <= 0.0) return times_[i];
      const double frac = (p - probs_[i - 1]) / rise;
      return times_[i - 1] + frac * (times_[i] - times_[i - 1]);
    }
  }
  throw NumericalError(
      "lifetime quantile: curve does not reach the requested level within "
      "its time horizon");
}

double LifetimeCurve::mean_estimate() const {
  // E[L] = integral of (1 - F); trapezoid over the grid, plus the initial
  // rectangle [0, t_0] where the battery is (numerically) never empty.
  double mean = times_.front() * (1.0 - 0.5 * probs_.front());
  for (std::size_t i = 1; i < times_.size(); ++i) {
    const double survival =
        1.0 - 0.5 * (probs_[i] + probs_[i - 1]);
    mean += survival * (times_[i] - times_[i - 1]);
  }
  return mean;
}

bool LifetimeCurve::complete(double tolerance) const {
  return probs_.front() <= tolerance && probs_.back() >= 1.0 - tolerance;
}

double LifetimeCurve::max_difference(const LifetimeCurve& other) const {
  double worst = 0.0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    worst = std::max(worst,
                     std::abs(probs_[i] - other.probability_at(times_[i])));
  }
  return worst;
}

void sanitize_probabilities(std::vector<double>& probabilities,
                            double tolerance) {
  KIBAMRM_REQUIRE(tolerance >= 0.0, "sanitize: tolerance must be >= 0");
  for (double& p : probabilities) {
    KIBAMRM_REQUIRE(p >= -tolerance && p <= 1.0 + tolerance,
                    "probability outside [0,1] beyond the solver tolerance");
    p = std::clamp(p, 0.0, 1.0);
  }
}

std::vector<double> uniform_grid(double start, double end,
                                 std::size_t points) {
  KIBAMRM_REQUIRE(points >= 2, "uniform grid needs >= 2 points");
  KIBAMRM_REQUIRE(end > start && start >= 0.0, "invalid grid range");
  std::vector<double> grid(points);
  const double step = (end - start) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    grid[i] = start + step * static_cast<double>(i);
  }
  grid.back() = end;
  return grid;
}

}  // namespace kibamrm::core
