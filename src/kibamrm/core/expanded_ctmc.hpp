// The expanded pure CTMC Q* of the Markovian approximation (Sec. 5.2).
//
// Three transition families over states (i, j1, j2):
//
//  1. workload transitions   (i,j1,j2) -> (i',j1,j2)    rate Q_{i,i'}
//  2. energy consumption     (i,j1,j2) -> (i,j1-1,j2)   rate I_i / Delta
//  3. bound->available flow  (i,j1,j2) -> (i,j1+1,j2-1)
//                            rate k (j2/(1-c) - j1/c)   when positive
//
// The j1 = 0 layer ("battery empty") is absorbing: the lifetime is the
// *first* time the available charge hits zero, so no recovery is allowed
// from there (Sec. 5.2).  The approximated quantity of interest is
//     Pr{battery empty at t}  ~=  sum_i sum_{j2} pi_{(i,0,j2)}(t).
#pragma once

#include <vector>

#include "kibamrm/core/level_grid.hpp"
#include "kibamrm/markov/ctmc.hpp"

namespace kibamrm::core {

/// The derived chain together with its grid and initial distribution.
struct ExpandedChain {
  LevelGrid grid;
  markov::Ctmc chain;
  std::vector<double> initial;

  /// Pr{battery empty} under a transient distribution of `chain`.
  double empty_probability(const std::vector<double>& pi) const;
};

/// Builds Q*, the initial distribution alpha*, and the grid for the given
/// model and step size.
ExpandedChain build_expanded_chain(const KibamRmModel& model, double delta);

}  // namespace kibamrm::core
