// The expanded pure CTMC Q* of the Markovian approximation (Sec. 5.2).
//
// Three transition families over states (i, j1, j2):
//
//  1. workload transitions   (i,j1,j2) -> (i',j1,j2)    rate Q_{i,i'}
//  2. energy consumption     (i,j1,j2) -> (i,j1-1,j2)   rate I_i / Delta
//  3. bound->available flow  (i,j1,j2) -> (i,j1+1,j2-1)
//                            rate k (j2/(1-c) - j1/c)   when positive
//
// The j1 = 0 layer ("battery empty") is absorbing: the lifetime is the
// *first* time the available charge hits zero, so no recovery is allowed
// from there (Sec. 5.2).  The approximated quantity of interest is
//     Pr{battery empty at t}  ~=  sum_i sum_{j2} pi_{(i,0,j2)}(t).
//
// State ordering: LevelGrid's natural numbering keeps the workload state
// innermost, which interleaves the three transition families and leaves
// the transposed transition matrix without any runs of equal-length rows
// -- the structure the SIMD gather kernels group on.  build_expanded_chain
// can renumber the states at build time (StateOrdering): "level" moves a
// level axis innermost so consecutive states differ by one level step
// (long uniform runs, same bandwidth), "rcm" applies reverse
// Cuthill-McKee to the assembled generator.  The permutation is carried
// in the ExpandedChain so distributions map back to grid coordinates;
// solved curves are invariant under any ordering (the chain is the same
// chain).
#pragma once

#include <string_view>
#include <vector>

#include "kibamrm/core/level_grid.hpp"
#include "kibamrm/linalg/permutation.hpp"
#include "kibamrm/markov/ctmc.hpp"

namespace kibamrm::core {

/// State numbering of the expanded chain.
enum class StateOrdering {
  kNone,   ///< LevelGrid's natural numbering (workload state innermost)
  kLevel,  ///< level-major: a level axis innermost, workload state outer
  kRcm,    ///< reverse Cuthill-McKee on the assembled generator pattern
};

/// Parses "none" / "level" / "rcm"; throws InvalidArgument otherwise.
StateOrdering parse_state_ordering(std::string_view name);

std::string_view state_ordering_name(StateOrdering ordering);

/// The derived chain together with its grid, initial distribution and the
/// state permutation relating chain indices to grid indices.
struct ExpandedChain {
  LevelGrid grid;
  markov::Ctmc chain;
  /// Initial distribution alpha*, in chain (permuted) order.
  std::vector<double> initial;
  /// Grid index -> chain state index; identity for StateOrdering::kNone.
  linalg::Permutation permutation;
  StateOrdering ordering = StateOrdering::kNone;

  /// Pr{battery empty} under a transient distribution of `chain` (given
  /// in chain order, as the backends produce it).
  double empty_probability(const std::vector<double>& pi) const;

  /// Inverse-permutes a chain-order distribution back to grid order, so
  /// pi_grid[grid.index(i, j1, j2)] addresses it; pass-through for the
  /// natural ordering.
  std::vector<double> to_grid_order(const std::vector<double>& pi) const;
};

/// Builds Q*, the initial distribution alpha*, and the grid for the given
/// model and step size, with states numbered per `ordering`.
ExpandedChain build_expanded_chain(const KibamRmModel& model, double delta,
                                   StateOrdering ordering =
                                       StateOrdering::kNone);

}  // namespace kibamrm::core
