// Reward-level discretisation grid (Sec. 5.1).
//
// The uncountable state space S x [0, u1] x [0, u2] is broken down to
// S x {0, ..., u1/Delta} x {0, ..., u2/Delta}.  A level j stands for the
// reward interval (j Delta, (j+1) Delta] (left-closed at j = 0); the battery
// is empty in the j1 = 0 layer.  For single-well models (c = 1, k = 0 or no
// bound charge) only Y1 is discretised, reproducing the paper's state count
// (2882 states for the on/off model at Delta = 5, Sec. 6.1).
#pragma once

#include <cstddef>

#include "kibamrm/core/kibamrm_model.hpp"

namespace kibamrm::core {

class LevelGrid {
 public:
  /// Builds the grid for `model` with step `delta`.  Both reward bounds
  /// must be integer multiples of delta (to 1e-6 relative), like all the
  /// paper's configurations; throws InvalidArgument otherwise.
  LevelGrid(const KibamRmModel& model, double delta);

  double delta() const { return delta_; }

  /// Number of levels of the available well, u1/Delta (levels 0..L1).
  std::size_t available_levels() const { return l1_; }
  /// Number of levels of the bound well, u2/Delta (levels 0..L2; 0 for
  /// single-well models).
  std::size_t bound_levels() const { return l2_; }

  std::size_t workload_states() const { return n_; }

  /// Total expanded state count N * (L1 + 1) * (L2 + 1).
  std::size_t state_count() const { return n_ * (l1_ + 1) * (l2_ + 1); }

  /// Flat index of (workload state i, level j1, level j2).
  std::size_t index(std::size_t i, std::size_t j1, std::size_t j2) const {
    return (j1 * (l2_ + 1) + j2) * n_ + i;
  }

  /// Initial levels: the reward a lies in (j Delta, (j+1) Delta].
  std::size_t initial_available_level() const { return j1_init_; }
  std::size_t initial_bound_level() const { return j2_init_; }

 private:
  double delta_;
  std::size_t n_;
  std::size_t l1_;
  std::size_t l2_;
  std::size_t j1_init_;
  std::size_t j2_init_;
};

}  // namespace kibamrm::core
