// The KiBaMRM (Sec. 4.2): a kinetic battery combined with a CTMC workload.
//
// The workload CTMC states are the operating modes of the device; the two
// accumulated rewards are the available-charge well Y1 and the bound-charge
// well Y2, with reward-inhomogeneous rates derived from the KiBaM equations:
//
//   r_{i,1}(y1, y2) = -I_i + k (h2 - h1)   if h2 > h1 > 0, else 0
//   r_{i,2}(y1, y2) =      - k (h2 - h1)   if h2 > h1 > 0, else 0
//
// The battery is empty at time t iff Y1(t) = 0; the lifetime is the first
// such instant.  This type only couples the two ingredient models and fixes
// the initial well contents; the solvers live in approx_solver.hpp (the
// paper's Markovian approximation), exact_c1.hpp (transform solver for the
// c = 1 case) and simulator.hpp (Monte Carlo).
#pragma once

#include <functional>

#include "kibamrm/battery/battery_model.hpp"
#include "kibamrm/workload/workload_model.hpp"

namespace kibamrm::core {

/// Multiplier applied to a workload transition rate as a function of the
/// current charge state: rate(from -> to) * modifier(from, to, y1, y2).
/// This is the reward-inhomogeneous generator Q(y1, y2) of Sec. 4.1 --
/// e.g. a device that throttles its send rate when the battery runs low.
/// Must return values in [0, bound] for the bound registered alongside it.
using RateModifier =
    std::function<double(std::size_t from, std::size_t to, double y1,
                         double y2)>;

class KibamRmModel {
 public:
  /// Battery starting from the natural split y1 = cC, y2 = (1-c)C.
  KibamRmModel(workload::WorkloadModel workload,
               battery::KibamParameters battery);

  /// Battery starting from explicit well contents (Fig. 9's scenarios).
  KibamRmModel(workload::WorkloadModel workload,
               battery::KibamParameters battery, double initial_available,
               double initial_bound);

  const workload::WorkloadModel& workload() const { return workload_; }
  const battery::KibamParameters& battery() const { return battery_; }
  double initial_available() const { return initial_available_; }
  double initial_bound() const { return initial_bound_; }

  /// Upper bounds for the two accumulated rewards: y1 never exceeds
  /// c * (y1(0) + y2(0)) (all charge drawn into the available well), y2
  /// never exceeds y2(0) (charge only ever leaves the bound well).
  double available_upper_bound() const;
  double bound_upper_bound() const { return initial_bound_; }

  /// True if the bound well is degenerate (c = 1 or no initial bound
  /// charge and no flow): only Y1 needs to be discretised then.
  bool single_well() const;

  /// Installs a charge-dependent workload-rate modifier (see RateModifier).
  /// `bound` must dominate every value the modifier can return; it is used
  /// by the simulator's thinning step and by generator validation.
  void set_rate_modifier(RateModifier modifier, double bound = 1.0);
  bool has_rate_modifier() const { return static_cast<bool>(modifier_); }
  const RateModifier& rate_modifier() const { return modifier_; }
  double rate_modifier_bound() const { return modifier_bound_; }

 private:
  workload::WorkloadModel workload_;
  battery::KibamParameters battery_;
  double initial_available_;
  double initial_bound_;
  RateModifier modifier_;
  double modifier_bound_ = 1.0;
};

}  // namespace kibamrm::core
