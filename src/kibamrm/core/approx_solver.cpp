#include "kibamrm/core/approx_solver.hpp"

namespace kibamrm::core {

MarkovianApproximation::MarkovianApproximation(const KibamRmModel& model,
                                               ApproximationOptions options)
    : options_(options),
      expanded_(build_expanded_chain(model, options.delta)) {
  stats_.expanded_states = expanded_.grid.state_count();
  stats_.generator_nonzeros = expanded_.chain.generator().nonzeros();
}

LifetimeCurve MarkovianApproximation::solve(const std::vector<double>& times) {
  markov::TransientOptions transient;
  transient.epsilon = options_.epsilon;
  markov::TransientSolver solver(expanded_.chain, transient);

  std::vector<double> probabilities(times.size(), 0.0);
  solver.solve(expanded_.initial, times,
               [&](std::size_t index, double /*t*/,
                   const std::vector<double>& pi) {
                 probabilities[index] = expanded_.empty_probability(pi);
               });
  stats_.uniformization_iterations = solver.last_stats().iterations;
  stats_.uniformization_rate = solver.last_stats().uniformization_rate;
  return LifetimeCurve(times, std::move(probabilities));
}

LifetimeCurve approximate_lifetime_distribution(
    const KibamRmModel& model, double delta,
    const std::vector<double>& times) {
  MarkovianApproximation solver(model, {.delta = delta});
  return solver.solve(times);
}

}  // namespace kibamrm::core
