#include "kibamrm/core/approx_solver.hpp"

#include <algorithm>
#include <utility>

#include "kibamrm/linalg/kernels.hpp"

namespace kibamrm::core {

MarkovianApproximation::MarkovianApproximation(const KibamRmModel& model,
                                               ApproximationOptions options)
    : options_(std::move(options)),
      expanded_(build_expanded_chain(model, options_.delta,
                                     parse_state_ordering(options_.reorder))),
      backend_(engine::make_backend(
          options_.engine,
          {.epsilon = options_.epsilon,
           .dense_state_limit = options_.dense_state_limit,
           .threads = options_.threads,
           // The curve only needs the streamed Pr{empty} values, not one
           // distribution copy per time point.
           .collect_distributions = false,
           .fused_kernels = options_.fused_kernels,
           .steady_state_detection = options_.steady_state_detection,
           .tile_bytes = options_.tile_bytes,
           .spill_dir = options_.spill_dir,
           .kernel_dispatch = options_.kernel_dispatch,
           .shards = options_.shards})) {
  stats_.expanded_states = expanded_.grid.state_count();
  stats_.generator_nonzeros = expanded_.chain.generator().nonzeros();
  stats_.engine = options_.engine;
  stats_.reorder = state_ordering_name(expanded_.ordering);
}

LifetimeCurve MarkovianApproximation::solve(const std::vector<double>& times) {
  LifetimeCurve curve = solve_empty_probability_curve(expanded_, *backend_,
                                                      times, options_.epsilon);
  absorb_backend_stats(stats_, backend_->last_stats());
  return curve;
}

void absorb_backend_stats(ApproximationStats& stats,
                          const engine::BackendStats& backend) {
  stats.uniformization_iterations = backend.iterations;
  stats.uniformization_rate = backend.uniformization_rate;
  stats.iterations_saved = backend.iterations_saved;
  stats.windows_computed = backend.windows_computed;
  stats.windows_reused = backend.windows_reused;
  stats.active_states = backend.active_states;
  stats.active_nonzeros = backend.active_nonzeros;
  stats.krylov_dim = backend.krylov_dim;
  stats.substeps = backend.substeps;
  stats.hessenberg_expms = backend.hessenberg_expms;
  stats.krylov_ortho_work = backend.krylov_ortho_work;
  stats.matrix_bandwidth = backend.matrix_bandwidth;
  stats.groupable_rows = backend.groupable_rows;
  stats.longest_uniform_run = backend.longest_uniform_run;
  stats.diagonal_rows = backend.diagonal_rows;
  stats.longest_diagonal_run = backend.longest_diagonal_run;
  stats.shards = backend.shards;
  stats.halo_bytes_per_step = backend.halo_bytes_per_step;
  stats.halo_wait_ns = backend.halo_wait_ns;
  stats.shard_nnz_imbalance = backend.shard_nnz_imbalance;
  stats.ooc_tiles = backend.ooc_tiles;
  stats.ooc_tile_reads = backend.ooc_tile_reads;
  stats.ooc_prefetch_hits = backend.ooc_prefetch_hits;
  stats.ooc_bytes_streamed = backend.ooc_bytes_streamed;
  stats.ooc_spill_bytes = backend.ooc_spill_bytes;
}

LifetimeCurve solve_empty_probability_curve(const ExpandedChain& expanded,
                                            engine::TransientBackend& backend,
                                            const std::vector<double>& times,
                                            double epsilon) {
  std::vector<double> probabilities(times.size(), 0.0);
  backend.solve(expanded.chain, expanded.initial, times,
                [&](std::size_t index, double /*t*/,
                    const std::vector<double>& pi) {
                  probabilities[index] = expanded.empty_probability(pi);
                });
  // The iterative engines can leave round-off outside [0, 1] and small
  // CDF dips at the scale of their configured tolerance (with head-room
  // for accumulation over the curve); clamp that, anything larger is a
  // bug and throws.  The mixed kernel tier carries float32 operand
  // rounding (~1e-7 per product) through the power iteration, so its
  // floor is the float scale, not the solver tolerance.
  const bool mixed = linalg::kernels::active_dispatch() ==
                     linalg::kernels::Dispatch::kMixed;
  const double tolerance =
      std::max(mixed ? 1e-3 : 1e-6, 10.0 * epsilon);
  sanitize_probabilities(probabilities, tolerance);
  return LifetimeCurve(times, std::move(probabilities), tolerance);
}

LifetimeCurve approximate_lifetime_distribution(
    const KibamRmModel& model, double delta, const std::vector<double>& times,
    const std::string& engine) {
  MarkovianApproximation solver(model, {.delta = delta, .engine = engine});
  return solver.solve(times);
}

}  // namespace kibamrm::core
