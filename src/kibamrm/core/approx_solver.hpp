// The paper's tailored algorithm (Sec. 5): Markovian approximation of the
// battery lifetime distribution.
//
// Pipeline: discretise the two accumulated rewards with step Delta
// (level_grid), build the expanded pure CTMC Q* (expanded_ctmc), solve it
// transiently through a pluggable engine (engine/transient_backend) and read
// off Pr{battery empty at t} as the probability mass in the absorbing
// j1 = 0 layer.  The default engine is the paper's uniformisation; the
// adaptive ODE stepper and the dense matrix exponential are selectable by
// name for small chains and cross-validation.  Complexity of the default is
// O(N^2 q t (u1/Delta)(u2/Delta)) as analysed in Sec. 5.3; the solver
// reports the actual state/non-zero/iteration counts so the complexity
// experiments of Sec. 6.1 can be reproduced.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/core/lifetime_distribution.hpp"
#include "kibamrm/engine/transient_backend.hpp"

namespace kibamrm::core {

struct ApproximationOptions {
  /// Reward discretisation step Delta (charge units).
  double delta = 1.0;
  /// Transient-solver accuracy (truncation error per time increment for
  /// uniformisation, local-error tolerance for the adaptive stepper).
  double epsilon = 1e-10;
  /// Transient engine name; see engine::backend_names().
  std::string engine = "uniformization";
  /// Refusal threshold of the dense engine (states).
  std::size_t dense_state_limit = 1024;
  /// Execution lanes of the "parallel" engine; 0 auto-detects.  Ignored by
  /// the serial engines.
  std::size_t threads = 0;
  /// Fused spmv+accumulate kernels of the uniformisation engines; false
  /// keeps the pre-fusion loop as the measured baseline.
  bool fused_kernels = true;
  /// Steady-state / absorption early termination inside each Poisson
  /// window (uniformisation engines; requires fused_kernels).
  bool steady_state_detection = true;
  /// "ooc" engine: serialized-size target per streamed tile and the
  /// spill-file directory (empty selects $TMPDIR, falling back to /tmp);
  /// forwarded to engine::BackendOptions.  Ignored by other engines.
  std::size_t tile_bytes = 8ull << 20;
  std::string spill_dir = "";
  /// Vector-kernel tier pin ("auto" / "scalar" / "avx2" / "avx512" /
  /// "mixed"), forwarded to engine::BackendOptions::kernel_dispatch
  /// (process-global; the double tiers are bitwise identical, the mixed
  /// tier trades float32 gather traffic for ~1e-6-level accuracy).
  std::string kernel_dispatch = "auto";
  /// State ordering of the expanded chain ("none" / "level" / "rcm", see
  /// core::StateOrdering).  Reordering never changes the solved curve --
  /// it renumbers the states so the gather kernels see uniform row runs
  /// -- and the ExpandedChain carries the permutation for anything that
  /// reads raw distributions.
  std::string reorder = "none";
  /// Worker processes of the "sharded" engine (level-banded multi-process
  /// uniformisation); forwarded to engine::BackendOptions::shards.
  /// Ignored by the other engines.
  std::size_t shards = 1;
};

/// Cost/shape diagnostics of one approximation run.
struct ApproximationStats {
  std::size_t expanded_states = 0;
  std::size_t generator_nonzeros = 0;
  /// Engine that produced the last curve.
  std::string engine;
  /// Iteration count of the engine (DTMC steps for uniformisation, RHS
  /// evaluations for the adaptive stepper, exponentials for dense); the
  /// field keeps its historical name for the Sec. 6.1 experiments.
  std::uint64_t uniformization_iterations = 0;
  double uniformization_rate = 0.0;
  /// Poisson terms skipped by steady-state early termination (0 for
  /// engines without it); iterations + iterations_saved is the full
  /// Fox-Glynn term count.
  std::uint64_t iterations_saved = 0;
  /// Fox-Glynn windows computed vs served from the plan cache.
  std::uint64_t windows_computed = 0;
  std::uint64_t windows_reused = 0;
  /// States in the reachable closure actually iterated by the fused
  /// uniformisation loop (<= expanded_states; 0 for other engines), and
  /// the stored entries of the iterated matrix (the honest work unit for
  /// throughput metrics).
  std::uint64_t active_states = 0;
  std::uint64_t active_nonzeros = 0;
  /// Krylov engine: largest Arnoldi subspace dimension used, accepted
  /// adaptive sub-steps, small Hessenberg exponentials evaluated
  /// (including rejected trials), and the summed dim^2 orthogonalisation
  /// work (in units of the state count); 0 for other engines.
  std::uint64_t krylov_dim = 0;
  std::uint64_t substeps = 0;
  std::uint64_t hessenberg_expms = 0;
  std::uint64_t krylov_ortho_work = 0;
  /// State ordering the expanded chain was built with ("none" when the
  /// natural numbering was kept).
  std::string reorder = "none";
  /// Structure of the matrix the hot loop iterated (the compacted
  /// transpose for the fused engines): maximal |col - row|, rows inside
  /// >= 4-row equal-length runs (what the SIMD grouping can take) and the
  /// longest such run.  0 for engines that do not report it.
  std::uint64_t matrix_bandwidth = 0;
  std::uint64_t groupable_rows = 0;
  std::uint64_t longest_uniform_run = 0;
  /// Rows repeating the previous row's offset pattern (diagonal runs)
  /// and the longest such run; see linalg::StructureStats.
  std::uint64_t diagonal_rows = 0;
  std::uint64_t longest_diagonal_run = 0;
  /// "sharded" engine: worker processes of the solve, halo bytes crossing
  /// the process boundary per product (static plan property), summed
  /// nanoseconds workers spent blocked on halo receives, and the
  /// max/mean stored-entry imbalance of the level bands; 0 for
  /// single-process engines.
  std::uint64_t shards = 0;
  std::uint64_t halo_bytes_per_step = 0;
  std::uint64_t halo_wait_ns = 0;
  double shard_nnz_imbalance = 0.0;
  /// "ooc" engine: tiles in the spill store, tile reads over the solve,
  /// reads satisfied by the prefetch double-buffer, slab bytes streamed
  /// from disk and the spill file size; 0 for in-memory engines.
  std::uint64_t ooc_tiles = 0;
  std::uint64_t ooc_tile_reads = 0;
  std::uint64_t ooc_prefetch_hits = 0;
  std::uint64_t ooc_bytes_streamed = 0;
  std::uint64_t ooc_spill_bytes = 0;
};

/// Copies the per-solve cost counters of a backend into the
/// approximation-level record (shared by MarkovianApproximation and
/// engine::ScenarioBatch so batched and sequential stats cannot drift).
void absorb_backend_stats(ApproximationStats& stats,
                          const engine::BackendStats& backend);

class MarkovianApproximation {
 public:
  /// Builds the expanded chain and instantiates the selected engine;
  /// throws InvalidArgument for unknown engine names.
  MarkovianApproximation(const KibamRmModel& model,
                         ApproximationOptions options);

  /// Pr{battery empty at t} for every t in `times` (ascending).
  LifetimeCurve solve(const std::vector<double>& times);

  const ApproximationStats& last_stats() const { return stats_; }
  const ExpandedChain& expanded_chain() const { return expanded_; }

 private:
  ApproximationOptions options_;
  ExpandedChain expanded_;
  std::unique_ptr<engine::TransientBackend> backend_;
  ApproximationStats stats_;
};

/// One-shot convenience; `engine` selects the transient backend.
LifetimeCurve approximate_lifetime_distribution(
    const KibamRmModel& model, double delta, const std::vector<double>& times,
    const std::string& engine = "uniformization");

/// The shared tail of every approximation pipeline: streams Pr{empty at t}
/// for the expanded chain through `backend`, clamps solver round-off (the
/// tolerance policy lives here and only here) and builds the curve.  Both
/// MarkovianApproximation::solve and engine::ScenarioBatch call this, so
/// batched and sequential solves of the same scenario cannot diverge.
LifetimeCurve solve_empty_probability_curve(const ExpandedChain& expanded,
                                            engine::TransientBackend& backend,
                                            const std::vector<double>& times,
                                            double epsilon);

}  // namespace kibamrm::core
