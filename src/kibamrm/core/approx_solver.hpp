// The paper's tailored algorithm (Sec. 5): Markovian approximation of the
// battery lifetime distribution.
//
// Pipeline: discretise the two accumulated rewards with step Delta
// (level_grid), build the expanded pure CTMC Q* (expanded_ctmc), solve it
// transiently by uniformisation (markov/uniformization), and read off
// Pr{battery empty at t} as the probability mass in the absorbing j1 = 0
// layer.  Complexity is O(N^2 q t (u1/Delta)(u2/Delta)) as analysed in
// Sec. 5.3; the solver reports the actual state/non-zero/iteration counts so
// the complexity experiments of Sec. 6.1 can be reproduced.
#pragma once

#include <cstdint>

#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/core/lifetime_distribution.hpp"
#include "kibamrm/markov/uniformization.hpp"

namespace kibamrm::core {

struct ApproximationOptions {
  /// Reward discretisation step Delta (charge units).
  double delta = 1.0;
  /// Uniformisation truncation error per time increment.
  double epsilon = 1e-10;
};

/// Cost/shape diagnostics of one approximation run.
struct ApproximationStats {
  std::size_t expanded_states = 0;
  std::size_t generator_nonzeros = 0;
  std::uint64_t uniformization_iterations = 0;
  double uniformization_rate = 0.0;
};

class MarkovianApproximation {
 public:
  MarkovianApproximation(const KibamRmModel& model,
                         ApproximationOptions options);

  /// Pr{battery empty at t} for every t in `times` (ascending).
  LifetimeCurve solve(const std::vector<double>& times);

  const ApproximationStats& last_stats() const { return stats_; }
  const ExpandedChain& expanded_chain() const { return expanded_; }

 private:
  ApproximationOptions options_;
  ExpandedChain expanded_;
  ApproximationStats stats_;
};

/// One-shot convenience.
LifetimeCurve approximate_lifetime_distribution(const KibamRmModel& model,
                                                double delta,
                                                const std::vector<double>&
                                                    times);

}  // namespace kibamrm::core
