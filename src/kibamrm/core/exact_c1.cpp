#include "kibamrm/core/exact_c1.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/expm.hpp"

namespace kibamrm::core {

namespace {

using Complex = std::complex<double>;

/// phi(s, t) = alpha exp(t (Q - s R)) 1 for the workload chain.
Complex joint_transform(const KibamRmModel& model, Complex s, double t) {
  const auto& workload = model.workload();
  const std::size_t n = workload.state_count();
  const linalg::DenseReal q = workload.chain().dense_generator();

  linalg::DenseComplex m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex value(q(i, j) * t, 0.0);
      if (i == j) value -= s * workload.current(i) * t;
      m(i, j) = value;
    }
  }
  const linalg::DenseComplex e = linalg::expm(m);

  std::vector<Complex> alpha(n);
  for (std::size_t i = 0; i < n; ++i) {
    alpha[i] = Complex(workload.initial_distribution()[i], 0.0);
  }
  const std::vector<Complex> row = e.left_multiply(alpha);
  Complex total(0.0, 0.0);
  for (const Complex& x : row) total += x;
  return total;
}

}  // namespace

ExactC1Solver::ExactC1Solver(KibamRmModel model, ExactC1Options options)
    : model_(std::move(model)), options_(options) {
  KIBAMRM_REQUIRE(model_.single_well(),
                  "ExactC1Solver requires a single-well model (c = 1)");
  KIBAMRM_REQUIRE(!model_.has_rate_modifier(),
                  "ExactC1Solver requires charge-independent workload rates "
                  "(use the Markovian approximation or the simulator for "
                  "adaptive workloads)");
  KIBAMRM_REQUIRE(options_.terms >= 1 && options_.euler_terms >= 1,
                  "invalid Euler inversion parameters");
}

double ExactC1Solver::empty_probability(double t) const {
  KIBAMRM_REQUIRE(t >= 0.0, "time must be non-negative");
  if (t == 0.0) return 0.0;
  const double capacity = model_.initial_available();

  // Abate-Whitt Euler inversion of F_hat(s) = phi(s, t)/s at y = capacity:
  //   F(y) ~= (e^{A/2} / (2y)) * sum_k (-1)^k a_k,
  //   a_k  = Re{ F_hat((A + 2 pi i k) / (2y)) },   a_0 halved,
  // with binomial (Euler) smoothing of the tail partial sums.
  const double y = capacity;
  const double a = options_.a;
  const int n_terms = options_.terms;
  const int m = options_.euler_terms;

  std::vector<double> partial_sums;
  partial_sums.reserve(static_cast<std::size_t>(n_terms + m) + 1);

  double sum = 0.0;
  for (int k = 0; k <= n_terms + m; ++k) {
    const Complex s(a / (2.0 * y),
                    std::numbers::pi * static_cast<double>(k) / y);
    const Complex f_hat = joint_transform(model_, s, t) / s;
    double term = f_hat.real();
    if (k == 0) term *= 0.5;
    sum += (k % 2 == 0 ? term : -term);
    partial_sums.push_back(sum);
  }

  // Euler smoothing: binomial average of the last m+1 partial sums.
  double smoothed = 0.0;
  double binom = 1.0;  // C(m, j) built incrementally
  double binom_total = std::ldexp(1.0, m);
  for (int j = 0; j <= m; ++j) {
    smoothed += binom *
                partial_sums[static_cast<std::size_t>(n_terms + j)];
    binom = binom * static_cast<double>(m - j) / static_cast<double>(j + 1);
  }
  smoothed /= binom_total;

  const double cdf = std::exp(a / 2.0) / y * smoothed;
  // cdf is Pr{Y(t) <= C}; clamp the ~1e-8 inversion ripple.
  const double empty = 1.0 - cdf;
  return std::clamp(empty, 0.0, 1.0);
}

LifetimeCurve ExactC1Solver::solve(const std::vector<double>& times) const {
  std::vector<double> probs(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    probs[i] = empty_probability(times[i]);
  }
  return LifetimeCurve(times, std::move(probs), 1e-4);
}

}  // namespace kibamrm::core
