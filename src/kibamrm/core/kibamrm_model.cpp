#include "kibamrm/core/kibamrm_model.hpp"

#include "kibamrm/common/error.hpp"

namespace kibamrm::core {

KibamRmModel::KibamRmModel(workload::WorkloadModel workload,
                           battery::KibamParameters battery)
    : KibamRmModel(std::move(workload), battery, battery.initial_available(),
                   battery.initial_bound()) {}

KibamRmModel::KibamRmModel(workload::WorkloadModel workload,
                           battery::KibamParameters battery,
                           double initial_available, double initial_bound)
    : workload_(std::move(workload)),
      battery_(battery),
      initial_available_(initial_available),
      initial_bound_(initial_bound) {
  battery_.validate();
  KIBAMRM_REQUIRE(initial_available > 0.0,
                  "initial available charge must be positive");
  KIBAMRM_REQUIRE(initial_bound >= 0.0,
                  "initial bound charge must be non-negative");
  if (battery_.available_fraction >= 1.0) {
    KIBAMRM_REQUIRE(initial_bound == 0.0,
                    "c = 1 battery cannot hold bound charge");
  }
}

double KibamRmModel::available_upper_bound() const {
  return battery_.available_fraction * (initial_available_ + initial_bound_);
}

void KibamRmModel::set_rate_modifier(RateModifier modifier, double bound) {
  KIBAMRM_REQUIRE(static_cast<bool>(modifier),
                  "rate modifier must be callable");
  KIBAMRM_REQUIRE(bound > 0.0, "rate modifier bound must be positive");
  modifier_ = std::move(modifier);
  modifier_bound_ = bound;
}

bool KibamRmModel::single_well() const {
  return battery_.available_fraction >= 1.0 || initial_bound_ == 0.0 ||
         battery_.flow_constant == 0.0;
}

}  // namespace kibamrm::core
