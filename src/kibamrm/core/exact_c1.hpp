// Exact battery-empty probabilities for the single-well case c = 1.
//
// With c = 1 the KiBaMRM degenerates to a classical Markov reward model with
// constant, non-negative reward rates I_i: the consumed energy is
// Y(t) = int_0^t I_{X(s)} ds, which is non-decreasing, so
//
//     Pr{battery empty at t} = Pr{Y(t) >= C}.
//
// The paper computes the rightmost curve of Fig. 10 with a uniformisation-
// based performability algorithm [25].  We obtain the same distribution by a
// transform method (a documented substitution, see DESIGN.md Sec. 4): the
// joint transform of state and consumed energy is
//
//     phi(s, t) = alpha * exp(t (Q - s R)) * 1,      R = diag(I_i),
//
// which is an entire function of s evaluable for complex s with the dense
// Pade matrix exponential.  Since int_0^inf e^{-sy} F(t, y) dy = phi(s,t)/s
// for the CDF F(t, y) = Pr{Y(t) <= y}, an Abate-Whitt Euler inversion in y
// at y = C yields Pr{Y(t) <= C} with ~1e-8 discretisation error -- far
// below plotting resolution, hence "exact" in the paper's sense.
//
// Workload chains here are tiny (2-6 states), so each curve point costs
// ~2M+1 complex 3x3 exponentials: microseconds.
#pragma once

#include "kibamrm/core/kibamrm_model.hpp"
#include "kibamrm/core/lifetime_distribution.hpp"

namespace kibamrm::core {

struct ExactC1Options {
  /// Abate-Whitt Euler parameters: discretisation error ~ e^{-a}.
  double a = 18.4;
  /// Partial sums before Euler smoothing.  Nearly deterministic lifetimes
  /// (the on/off model) have slowly decaying transforms; 400 terms brings
  /// the oscillation below 1e-12 there while costing well under a
  /// millisecond per curve point on the paper's tiny chains.
  int terms = 400;
  int euler_terms = 12;  // binomial smoothing depth
};

class ExactC1Solver {
 public:
  /// Requires a single-well model (c = 1, or no bound charge/flow).
  /// Throws InvalidArgument otherwise.  The model is stored by value so
  /// solvers may outlive the expressions configuring them.
  explicit ExactC1Solver(KibamRmModel model, ExactC1Options options = {});

  /// Pr{battery empty at t}, exact up to the inversion error.
  double empty_probability(double t) const;

  /// Curve over a time grid.
  LifetimeCurve solve(const std::vector<double>& times) const;

 private:
  KibamRmModel model_;
  ExactC1Options options_;
};

}  // namespace kibamrm::core
