// Battery lifetime distribution curves.
//
// All solvers report the same shape of result: the probability that the
// battery is already empty at each of a set of time points, i.e. the CDF of
// the lifetime L = min{t | Y1(t) = 0} sampled on a grid (exactly what the
// paper's Figs. 7-11 plot).
#pragma once

#include <vector>

namespace kibamrm::core {

class LifetimeCurve {
 public:
  /// `times` ascending; `probabilities` in [0,1], one per time point.
  /// `monotonicity_tolerance` permits the small dips numerical solvers
  /// produce; larger violations indicate a bug and throw.
  LifetimeCurve(std::vector<double> times, std::vector<double> probabilities,
                double monotonicity_tolerance = 1e-6);

  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& probabilities() const { return probs_; }
  std::size_t size() const { return times_.size(); }

  /// CDF value at time t, linearly interpolated; 0 before the grid.  Past
  /// the grid the last value is held.
  double probability_at(double t) const;

  /// Smallest grid-interpolated time with CDF >= p; throws NumericalError
  /// if the curve never reaches p (horizon too short).
  double quantile(double p) const;

  /// Median lifetime, quantile(0.5).
  double median() const { return quantile(0.5); }

  /// Mean lifetime estimated as integral of the survival function over the
  /// grid, assuming the curve starts at probability ~0 and ends at ~1;
  /// `complete()` tells whether that assumption holds to the tolerance.
  double mean_estimate() const;
  bool complete(double tolerance = 1e-3) const;

  /// Largest absolute CDF difference to another curve evaluated on this
  /// curve's grid (interpolating the other curve).
  double max_difference(const LifetimeCurve& other) const;

 private:
  std::vector<double> times_;
  std::vector<double> probs_;
};

/// An evenly spaced time grid [start, end] with `points` >= 2 entries;
/// the shared helper benches use to sample curves.
std::vector<double> uniform_grid(double start, double end, std::size_t points);

/// Clamps solver round-off out of probability values: entries within
/// `tolerance` outside [0, 1] are snapped onto the interval; larger
/// violations indicate a solver bug and throw InvalidArgument.  The
/// iterative transient engines (uniformisation truncation, adaptive local
/// error) legitimately produce such dust at their tolerance scale.
void sanitize_probabilities(std::vector<double>& probabilities,
                            double tolerance);

}  // namespace kibamrm::core
