// Out-of-core uniformisation backend: the parallel fused solver with its
// matrix streamed from disk instead of held in memory.
//
// Every in-memory backend's peak footprint is bounded below by the
// compacted transposed P (plus the generator and the gather plan), which
// caps the reachable Delta long before the power iteration's O(states)
// vectors do.  This backend never materialises P, its transpose or a
// gather plan: at solve start it encodes the compacted transposed
// uniformised matrix band by band into a linalg::TileStore spill file
// (O(states) transient index arrays plus one tile), then runs the same
// incremental uniformisation loop as the parallel backend while streaming
// the tiles back each DTMC step through a double-buffered pipeline -- one
// pool lane reads tile t+1 while the remaining lanes compute tile t, so
// on chains whose per-step compute dominates the IO the stream is free.
//
// Bitwise contract: the tile kernel reproduces the canonical per-length
// evaluation order of the in-memory fused kernels and the streaming build
// reproduces uniformized + transposed_submatrix entry for entry (see
// linalg/tile_store.hpp), the reachable closure is computed over exactly
// P's sparsity pattern, and the per-shard steady-state deltas reduce by
// max -- so "--engine ooc" curves are bitwise identical to the in-memory
// fused parallel backend at EVERY tile size, thread count and shard
// partition.  The backend always runs the fused double-precision
// contract: `fused_kernels = false` and the mixed float32 dispatch tier
// are ignored (there is no baseline scatter loop over a streamed
// transpose, and the mixed tier's plan never exists here).
//
// Chains small enough that a single tile holds the whole matrix
// degenerate gracefully: the tile stays resident after its first read and
// the solve performs no further IO.
#pragma once

#include <atomic>
#include <memory>

#include "kibamrm/common/thread_annotations.hpp"
#include "kibamrm/common/thread_pool.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/linalg/tile_store.hpp"
#include "kibamrm/markov/fox_glynn.hpp"

namespace kibamrm::engine {

class OutOfCoreBackend final : public TransientBackend {
 public:
  explicit OutOfCoreBackend(BackendOptions options);

  std::string_view name() const override { return "ooc"; }

  std::vector<std::vector<double>> solve(
      const markov::Ctmc& chain, const std::vector<double>& initial,
      const std::vector<double>& times,
      const PointCallback& on_point = nullptr) override;

  const BackendStats& last_stats() const override { return stats_; }

  /// Lanes the pool actually runs (after auto-detection).
  std::size_t thread_count() const { return pool_->thread_count(); }

 private:
  BackendOptions options_;
  BackendStats stats_;
  std::unique_ptr<common::ThreadPool> pool_;
  // Power-iteration scratch, reused across increments and solve() calls.
  std::vector<double> power_;
  std::vector<double> next_;
  std::vector<double> accum_;
  std::vector<double> full_point_;
  // Per-lane sup-norm partials of one streamed step (reduced by max, so
  // the result is independent of which lane ran which shard).
  std::vector<double> lane_deltas_;
  // Per-tile pipeline state of one streamed step, shared by the single
  // pool dispatch that runs the whole sweep: tile_ready_ flips when the
  // IO role has the tile in its buffer, tile_claim_/tile_done_ hand out
  // and retire compute shards, tile_stalled_ records that a compute lane
  // had to wait (the complement of a prefetch hit).
  //
  // KIBAMRM_LOCK_FREE: the pipeline is a release-acquire hand-off chain.
  // The IO lane decodes tile t into buffers_[t%2] and then STORES
  // tile_ready_[t] with release; a compute lane LOADS it with acquire
  // before touching the buffer, so the decoded slab happens-before every
  // shard that reads it.  tile_claim_ hands out disjoint shard indices
  // (fetch_add, relaxed -- same argument as ThreadPool::next_);
  // tile_done_ retires them with release so the IO lane's acquire spin
  // on it sees all shard writes before recycling the buffer for tile
  // t+2.  tile_stalled_ is a relaxed telemetry flag (its value never
  // gates an access).  Any mutex here would serialise the very overlap
  // the double buffer exists to create.
  std::unique_ptr<std::atomic<std::uint32_t>[]> tile_ready_
      KIBAMRM_LOCK_FREE("release publish of the decoded slab, see above");
  std::unique_ptr<std::atomic<std::size_t>[]> tile_claim_
      KIBAMRM_LOCK_FREE("disjoint shard claims, relaxed fetch_add");
  std::unique_ptr<std::atomic<std::size_t>[]> tile_done_
      KIBAMRM_LOCK_FREE("release retire / acquire spin recycles buffers");
  std::unique_ptr<std::atomic<std::uint32_t>[]> tile_stalled_
      KIBAMRM_LOCK_FREE("telemetry only; never gates an access");
  // First failure inside the pipeline; waits abort on it so a throwing
  // read (corrupt spill file) can never deadlock the step.
  std::atomic<bool> step_abort_{false} KIBAMRM_LOCK_FREE(
      "monotonic abort flag; the failure itself rides the pool's rethrow");
  // Double-buffered tile stream: buffers_[i] holds tile held_[i] (kNone
  // when empty).  The compute sweep reads the front buffer while the
  // pool's IO task fills the back buffer with the next tile.
  common::AlignedBuffer buffers_[2];
  // Fox-Glynn windows memoised across increments and solve() calls.
  markov::UniformizationPlan plan_;
};

}  // namespace kibamrm::engine
