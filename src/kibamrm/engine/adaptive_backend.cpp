#include "kibamrm/engine/adaptive_backend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/vector_ops.hpp"

namespace kibamrm::engine {

namespace {

// Dormand-Prince 5(4) tableau (the RK45 of MATLAB's ode45).  The 5th-order
// weights b are also the last stage row (FSAL): k7 of an accepted step is
// k1 of the next.
constexpr double kA21 = 1.0 / 5.0;
constexpr double kA31 = 3.0 / 40.0, kA32 = 9.0 / 40.0;
constexpr double kA41 = 44.0 / 45.0, kA42 = -56.0 / 15.0, kA43 = 32.0 / 9.0;
constexpr double kA51 = 19372.0 / 6561.0, kA52 = -25360.0 / 2187.0,
                 kA53 = 64448.0 / 6561.0, kA54 = -212.0 / 729.0;
constexpr double kA61 = 9017.0 / 3168.0, kA62 = -355.0 / 33.0,
                 kA63 = 46732.0 / 5247.0, kA64 = 49.0 / 176.0,
                 kA65 = -5103.0 / 18656.0;
constexpr double kB1 = 35.0 / 384.0, kB3 = 500.0 / 1113.0,
                 kB4 = 125.0 / 192.0, kB5 = -2187.0 / 6784.0,
                 kB6 = 11.0 / 84.0;
// Error weights: b - b_hat (4th-order embedded solution).
constexpr double kE1 = kB1 - 5179.0 / 57600.0;
constexpr double kE3 = kB3 - 7571.0 / 16695.0;
constexpr double kE4 = kB4 - 393.0 / 640.0;
constexpr double kE5 = kB5 - -92097.0 / 339200.0;
constexpr double kE6 = kB6 - 187.0 / 2100.0;
constexpr double kE7 = -1.0 / 40.0;

constexpr double kSafety = 0.9;
constexpr double kMinShrink = 0.2;
constexpr double kMaxGrow = 5.0;

}  // namespace

AdaptiveBackend::AdaptiveBackend(BackendOptions options) : options_(options) {
  KIBAMRM_REQUIRE(options_.epsilon > 0.0 && options_.epsilon < 1.0,
                  "adaptive epsilon must lie in (0,1)");
}

std::vector<std::vector<double>> AdaptiveBackend::solve(
    const markov::Ctmc& chain, const std::vector<double>& initial,
    const std::vector<double>& times, const PointCallback& on_point) {
  check_arguments(chain, initial, times);

  stats_ = BackendStats{};
  stats_.time_points = times.size();

  stages_.assign(7, std::vector<double>(initial.size(), 0.0));
  trial_.assign(initial.size(), 0.0);
  first_same_as_last_valid_ = false;
  previous_step_ = 0.0;

  std::vector<std::vector<double>> results;
  results.reserve(times.size());

  std::vector<double> current = initial;
  double current_time = 0.0;
  for (std::size_t idx = 0; idx < times.size(); ++idx) {
    if (times[idx] > current_time) {
      integrate(chain, current, current_time, times[idx]);
      if (options_.renormalize) {
        linalg::normalize_probability(current);
        first_same_as_last_valid_ = false;  // renormalisation moved the state
      }
      current_time = times[idx];
    }
    if (options_.collect_distributions) results.push_back(current);
    if (on_point) on_point(idx, times[idx], current);
  }
  return results;
}

void AdaptiveBackend::integrate(const markov::Ctmc& chain,
                                std::vector<double>& state, double t_from,
                                double t_to) {
  const auto& q = chain.generator();
  const double rtol = options_.epsilon;
  const double atol = std::max(1e-14, rtol * 1e-4);

  auto rhs = [&](const std::vector<double>& y, std::vector<double>& dy) {
    q.left_multiply(y, dy);
    ++stats_.iterations;
  };

  auto& k1 = stages_[0];
  auto& k2 = stages_[1];
  auto& k3 = stages_[2];
  auto& k4 = stages_[3];
  auto& k5 = stages_[4];
  auto& k6 = stages_[5];
  auto& k7 = stages_[6];

  double t = t_from;
  // Initial step: the controller's converged step from the previous
  // increment when available, else the exit-rate scale (the transient
  // decays on ~1/q; the controller refines from there).
  double h = t_to - t_from;
  if (previous_step_ > 0.0) {
    h = std::min(h, previous_step_);
  } else {
    const double rate_scale = chain.max_exit_rate();
    if (rate_scale > 0.0) h = std::min(h, 0.5 / rate_scale);
  }

  if (!first_same_as_last_valid_) {
    rhs(state, k1);
    first_same_as_last_valid_ = true;
  }

  const std::size_t n = state.size();
  while (t < t_to) {
    // Round-off guard: once the remaining span is negligible relative to
    // the target the increment is done (avoids a denormal final step).
    if (t_to - t <= 1e-12 * std::max(1.0, std::abs(t_to))) break;
    // The attempted step is clipped to the output boundary; the clip must
    // not feed back into the controller step h below.
    const double step = std::min(h, t_to - t);
    // Step-size underflow: the step can no longer advance the clock, or
    // it is below the remaining span times machine epsilon -- finishing
    // the increment would then take more than ~1/eps steps, so the
    // stepper cannot succeed no matter how long it runs.  (The clock
    // test alone only fires at t ~ step/eps, which stiff chains never
    // reach in bounded work.)
    if (!(t + step > t) ||
        step <= std::numeric_limits<double>::epsilon() * (t_to - t)) {
      throw NumericalError(
          "adaptive engine: step size underflow (chain too stiff for the "
          "explicit stepper; use the krylov or uniformization engine)");
    }

    // Stage cascade; trial_ holds the running argument.
    for (std::size_t i = 0; i < n; ++i) {
      trial_[i] = state[i] + step * kA21 * k1[i];
    }
    rhs(trial_, k2);
    for (std::size_t i = 0; i < n; ++i) {
      trial_[i] = state[i] + step * (kA31 * k1[i] + kA32 * k2[i]);
    }
    rhs(trial_, k3);
    for (std::size_t i = 0; i < n; ++i) {
      trial_[i] = state[i] + step * (kA41 * k1[i] + kA42 * k2[i] +
                                     kA43 * k3[i]);
    }
    rhs(trial_, k4);
    for (std::size_t i = 0; i < n; ++i) {
      trial_[i] = state[i] + step * (kA51 * k1[i] + kA52 * k2[i] +
                                     kA53 * k3[i] + kA54 * k4[i]);
    }
    rhs(trial_, k5);
    for (std::size_t i = 0; i < n; ++i) {
      trial_[i] = state[i] + step * (kA61 * k1[i] + kA62 * k2[i] +
                                     kA63 * k3[i] + kA64 * k4[i] +
                                     kA65 * k5[i]);
    }
    rhs(trial_, k6);
    // 5th-order solution (also the 7th stage argument, FSAL).
    for (std::size_t i = 0; i < n; ++i) {
      trial_[i] = state[i] + step * (kB1 * k1[i] + kB3 * k3[i] +
                                     kB4 * k4[i] + kB5 * k5[i] +
                                     kB6 * k6[i]);
    }
    rhs(trial_, k7);

    // Scaled max-norm of the embedded error estimate.  A NaN component
    // (overflowed stages cancelling Inf - Inf) must force a rejection
    // explicitly: std::max(err, NaN) keeps err, so NaN would otherwise
    // vanish from the estimate and the broken step would be *accepted*.
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = step * (kE1 * k1[i] + kE3 * k3[i] + kE4 * k4[i] +
                               kE5 * k5[i] + kE6 * k6[i] + kE7 * k7[i]);
      const double scale =
          atol + rtol * std::max(std::abs(state[i]), std::abs(trial_[i]));
      const double component = std::abs(e) / scale;
      if (!std::isfinite(component)) {
        err = std::numeric_limits<double>::infinity();
        break;
      }
      err = std::max(err, component);
    }

    const bool accepted = err <= 1.0;
    if (accepted) {
      t += step;
      state.swap(trial_);
      k1.swap(k7);  // FSAL: the last stage is the next first stage
    } else {
      ++stats_.rejected_steps;
    }
    // A non-finite estimate (overflowed stages on violently stiff
    // chains) must shrink the step: the `err > 0.0` test alone let NaN
    // select kMaxGrow, growing the step on every rejection -- an
    // infinite loop instead of the documented underflow failure.
    const double factor = !std::isfinite(err) ? kMinShrink
                          : err > 0.0         ? kSafety * std::pow(err, -0.2)
                                              : kMaxGrow;
    const double proposed = step * std::clamp(factor, kMinShrink, kMaxGrow);
    if (accepted && step < h) {
      // A boundary-clipped accepted step says nothing against the larger
      // controller step; keep whichever is bigger.
      h = std::max(h, proposed);
    } else {
      h = proposed;
    }
  }
  previous_step_ = h;
}

}  // namespace kibamrm::engine
