// Parallel uniformisation backend: the paper's transient solver with its
// sparse matrix-vector products sharded across a thread pool.
//
// The serial backend's hot kernel is the left product pi * P, a *scatter*
// over rows of P -- rows race on output entries, so it does not shard.
// This backend stores P transposed once per solve and computes
//     next[j] = sum_k P^T(j,k) * power[k]  =  (power * P)[j],
// a *gather*: each output entry is one CSR-row dot product, so disjoint
// row ranges of P^T write disjoint outputs and need no synchronisation.
// Ranges are balanced by non-zero count (CsrMatrix::balanced_row_ranges)
// and claimed dynamically from a common::ThreadPool.
//
// Because every out[j] is summed in the fixed storage order of its P^T
// row (four fixed-interleave partial sums in the fused kernel), the result
// is bitwise identical for every thread count and shard partition --
// "--threads 8" reproduces "--threads 1" exactly, which the determinism
// tests in tests/test_engine_parallel.cpp pin down.
//
// The fused kernel additionally folds the Poisson-weighted accumulation
// and the steady-state delta into each shard's pass
// (CsrMatrix::multiply_fused_range); per-shard deltas reduce by max --
// order independent -- so steady-state early termination decides
// identically at every thread count.  Fox-Glynn windows are memoised in a
// markov::UniformizationPlan shared across increments and solves.
#pragma once

#include <memory>

#include "kibamrm/common/thread_pool.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/linalg/csr_matrix.hpp"
#include "kibamrm/markov/fox_glynn.hpp"

namespace kibamrm::engine {

class ParallelUniformizationBackend final : public TransientBackend {
 public:
  explicit ParallelUniformizationBackend(BackendOptions options);

  std::string_view name() const override { return "parallel"; }

  std::vector<std::vector<double>> solve(
      const markov::Ctmc& chain, const std::vector<double>& initial,
      const std::vector<double>& times,
      const PointCallback& on_point = nullptr) override;

  const BackendStats& last_stats() const override { return stats_; }

  /// Lanes the pool actually runs (after auto-detection).
  std::size_t thread_count() const { return pool_->thread_count(); }

 private:
  BackendOptions options_;
  BackendStats stats_;
  std::unique_ptr<common::ThreadPool> pool_;
  // Scratch reused across increments and solve() calls (same discipline as
  // markov::TransientSolver): a whole curve allocates only on its first
  // increment.
  std::vector<double> power_;
  std::vector<double> next_;
  std::vector<double> accum_;
  // Full-dimension buffer results and callbacks are expanded into when the
  // fused loop runs in the compacted reachable space.
  std::vector<double> full_point_;
  // Mixed-tier float scratch (see markov::TransientSolver): the power
  // iteration streams float32 while accum_ stays double; per-row
  // arithmetic is partition-independent, so the thread-count determinism
  // guarantee carries over to the mixed tier unchanged.
  std::vector<float> power_f_;
  std::vector<float> next_f_;
  // Per-shard sup-norm deltas from the fused kernel; reduced by max after
  // each product (max is order-independent, so the reduction preserves the
  // bitwise-deterministic guarantee).
  std::vector<double> shard_deltas_;
  // Fox-Glynn windows memoised across increments and solve() calls.
  markov::UniformizationPlan plan_;
};

}  // namespace kibamrm::engine
