#include "kibamrm/engine/krylov_backend.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <optional>
#include <string>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/arnoldi.hpp"
#include "kibamrm/linalg/expm.hpp"
#include "kibamrm/linalg/kernels.hpp"
#include "kibamrm/linalg/permutation.hpp"
#include "kibamrm/linalg/vector_ops.hpp"

namespace kibamrm::engine {

namespace {

// EXPOKIT-style controller constants: safety on the a-posteriori step
// update, clamped growth/shrink so one noisy estimate cannot fling tau.
constexpr double kSafety = 0.9;
constexpr double kMaxGrow = 5.0;
constexpr double kMinShrink = 0.1;
// Rejections on one Arnoldi factorisation before the solve gives up; the
// step shrinks at least 10% per rejection, so 60 means tau fell by > 500x
// without the estimate improving -- the projection is not converging.
constexpr std::size_t kMaxRejections = 60;
// Relative mass drift beyond which a sub-step is a blow-up, not noise.
// Stiff-chain matvecs carry round-off ~ eps * ||A|| per unit time (the
// fast terms cancel), so proportional drift up to ~1e-5 tau is expected
// and handled by the mass projection below; drift at the per-mille level
// means exp(tau H) diverged and the step must shrink instead.
constexpr double kMassBlowup = 1e-3;

// Adaptive-dimension floor: below four Krylov vectors the a-posteriori
// estimate loses its second-order term and the controller flails.
constexpr std::size_t kMinKrylovDim = 4;
// Grow/shrink quantum: a quarter of the current dimension (at least two),
// with shrinks gated on two consecutive steps of order-of-magnitude
// error-budget slack so one benign step cannot trigger a resize.
std::size_t dim_step(std::size_t m) { return std::max<std::size_t>(2, m / 4); }
constexpr double kSlackFraction = 0.01;

double l2_norm(const std::vector<double>& v) {
  return linalg::kernels::nrm2(v.data(), v.size());
}

}  // namespace

KrylovBackend::KrylovBackend(BackendOptions options)
    : options_(options),
      pool_(std::make_unique<common::ThreadPool>(options.threads)) {
  KIBAMRM_REQUIRE(options_.epsilon > 0.0 && options_.epsilon < 1.0,
                  "krylov epsilon must lie in (0,1)");
  KIBAMRM_REQUIRE(options_.krylov_dim >= 1,
                  "krylov subspace dimension must be >= 1");
  KIBAMRM_REQUIRE(options_.krylov_max_substeps >= 1,
                  "krylov sub-step budget must be >= 1");
}

std::vector<std::vector<double>> KrylovBackend::solve(
    const markov::Ctmc& chain, const std::vector<double>& initial,
    const std::vector<double>& times, const PointCallback& on_point) {
  check_arguments(chain, initial, times);

  stats_ = BackendStats{};
  stats_.time_points = times.size();

  // Row-vector evolution pi' = pi Q becomes the column problem
  // w' = Q^T w; the transposed matvec is a gather over rows of Q^T, so
  // disjoint row ranges write disjoint outputs and the pool shard is
  // bitwise independent of the partition (same argument as the parallel
  // uniformisation backend).
  //
  // Like the fused uniformisation engines, the whole solve runs in the
  // reachable closure of the initial support: probability mass can never
  // leave it, so restricting Q^T to closure x closure is exact -- and
  // the expanded battery chains reach only about half their states from
  // the standard full-charge start, which halves every matvec AND every
  // m^2 n orthogonalisation sweep.  The closure is thread-independent,
  // so the bitwise-determinism guarantee is untouched.
  std::vector<std::uint32_t> seeds;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    if (initial[i] != 0.0) seeds.push_back(static_cast<std::uint32_t>(i));
  }
  const std::vector<std::uint32_t> reachable =
      chain.generator().reachable_rows(seeds);
  const bool compacted = reachable.size() < chain.state_count();
  const linalg::CsrMatrix qt =
      compacted ? chain.generator().transposed_submatrix(reachable)
                : chain.generator().transposed();
  const std::size_t n = qt.rows();
  stats_.active_states = n;
  stats_.active_nonzeros = qt.nonzeros();
  const linalg::StructureStats structure = linalg::structure_stats(qt);
  stats_.matrix_bandwidth = structure.bandwidth;
  stats_.groupable_rows = structure.groupable_rows;
  stats_.longest_uniform_run = structure.longest_uniform_run;
  stats_.diagonal_rows = structure.diagonal_rows;
  stats_.longest_diagonal_run = structure.longest_diagonal_run;
  // ||Q^T||_1 = max_i sum_j |Q(i,j)| = 2 max_i exit_rate(i), exactly, for
  // a generator: the scale of the step-size heuristics.
  const double anorm = 2.0 * chain.max_exit_rate();
  m_cap_ = std::min<std::size_t>(options_.krylov_dim, n);
  m_floor_ = std::min(kMinKrylovDim, m_cap_);
  // Each solve starts at the cap (the fixed-m behaviour) and earns its
  // way down; the learned dimension persists across the increments of
  // this solve, like the controller step.
  current_m_ = m_cap_;
  slack_streak_ = 0;

  const GatherShardPlan shards =
      plan_gather_shards(qt, pool_->thread_count());
  const auto matvec = [&](const std::vector<double>& in,
                          std::vector<double>& out) {
    if (shards.use_pool) {
      pool_->parallel_for(shards.shard_count(),
                          [&](std::size_t shard, std::size_t /*lane*/) {
                            qt.multiply_range(in, out, shards.ranges[shard],
                                              shards.ranges[shard + 1]);
                          });
    } else {
      qt.multiply_range(in, out, 0, n);
    }
    ++stats_.iterations;
  };

  basis_.resize(m_cap_ + 1);
  for (auto& vector : basis_) vector.assign(n, 0.0);
  hess_ = linalg::DenseReal(m_cap_ + 1, m_cap_);
  residual_.assign(n, 0.0);
  stepped_.assign(n, 0.0);
  previous_tau_ = 0.0;

  std::vector<std::vector<double>> results;
  if (options_.collect_distributions) results.reserve(times.size());

  std::vector<double> current;  // pi(t_k), in closure space
  if (compacted) {
    current.resize(n);
    for (std::size_t i = 0; i < n; ++i) current[i] = initial[reachable[i]];
    full_point_.assign(initial.size(), 0.0);
  } else {
    current = initial;
  }
  // Expands the compacted state into full_point_ for results and
  // callbacks; pass-through without compaction.  Unreachable entries are
  // zero forever, so only the closure entries are ever rewritten.
  const auto emit_view =
      [&](const std::vector<double>& point) -> const std::vector<double>& {
    if (!compacted) return point;
    for (std::size_t i = 0; i < n; ++i) {
      full_point_[reachable[i]] = point[i];
    }
    return full_point_;
  };

  double current_time = 0.0;
  for (std::size_t idx = 0; idx < times.size(); ++idx) {
    const double dt = times[idx] - current_time;
    if (dt > 0.0) {
      if (anorm > 0.0) {
        integrate(matvec, current, dt, anorm);
      }  // all-absorbing generator: exp(Q t) = I, the state carries over
      if (options_.renormalize) {
        linalg::normalize_probability(current);
      }
      current_time = times[idx];
    }
    if (options_.collect_distributions || on_point) {
      const std::vector<double>& point = emit_view(current);
      if (options_.collect_distributions) results.push_back(point);
      if (on_point) on_point(idx, times[idx], point);
    }
  }
  return results;
}

void KrylovBackend::integrate(
    const std::function<void(const std::vector<double>&,
                             std::vector<double>&)>& matvec,
    std::vector<double>& state, double dt, double anorm) {
  // Error budget per unit time: accepted sub-steps charge err <= tau * tol
  // so the whole increment stays within `epsilon` -- the same per-increment
  // contract the uniformisation engines honour.
  const double tol = options_.epsilon / dt;
  // Arnoldi declares a happy breakdown when the residual is at round-off
  // scale *relative to the current matvec* -- a couple of decades above
  // machine epsilon, so reorthogonalised round-off cannot fake slow
  // couplings, while genuine invariance (absorbed mass, n <= m chains)
  // is still caught.
  constexpr double kBreakdownRelative = 1e-14;

  double beta = l2_norm(state);
  if (beta == 0.0) return;

  double tau;
  if (previous_tau_ > 0.0) {
    // The controller's converged sub-step from the previous increment:
    // uniform curve grids repeat the same increment, so the ramp-up from
    // the a-priori guess is paid once per solve, not once per point.
    tau = previous_tau_;
  } else {
    // EXPOKIT's initial tau: equate the leading truncation term of the
    // m-term Krylov series, (anorm tau)^m / m!, with the budget.  The
    // controller refines from there, so only the order of magnitude
    // counts.
    const double md = static_cast<double>(current_m_);
    const double fact = std::pow((md + 1.0) / std::exp(1.0), md + 1.0) *
                        std::sqrt(2.0 * std::numbers::pi * (md + 1.0));
    tau = (1.0 / anorm) *
          std::pow(fact * tol / (4.0 * beta * anorm), 1.0 / md);
    if (!std::isfinite(tau) || tau <= 0.0) tau = dt;
  }

  double t_done = 0.0;
  std::size_t substeps_taken = 0;
  while (t_done < dt) {
    // Round-off tail: once the remainder is negligible relative to the
    // increment, it cannot move the distribution within the budget.
    if (dt - t_done <= 1e-12 * dt) break;
    if (++substeps_taken > options_.krylov_max_substeps) {
      throw NumericalError(
          "krylov engine: sub-step budget exhausted after " +
          std::to_string(options_.krylov_max_substeps) +
          " steps (raise krylov_max_substeps or epsilon)");
    }

    // The subspace dimension this factorisation runs at (adapted between
    // sub-steps, see below); the controller exponents follow it.
    const std::size_t m = current_m_;
    const double md = static_cast<double>(m);
    const double xm_default = 1.0 / md;

    beta = l2_norm(state);
    if (beta == 0.0) return;
    basis_[0] = state;
    linalg::scale(basis_[0], 1.0 / beta);
    const linalg::ArnoldiResult arn = linalg::arnoldi(
        matvec, basis_, hess_, m, kBreakdownRelative, pool_.get(),
        &arnoldi_ws_);
    stats_.krylov_dim = std::max<std::uint64_t>(stats_.krylov_dim, arn.dim);
    stats_.krylov_ortho_work +=
        static_cast<std::uint64_t>(arn.dim) * arn.dim;
    const std::size_t k = arn.dim;

    // Happy breakdown: K_k is invariant, the projected exponential is
    // exact, so the error estimate is zero and every trial is accepted
    // (tau still grows geometrically through the controller instead of
    // jumping to the full remainder -- the residual is only zero to
    // round-off, and bounded growth keeps that error incremental).
    double avnorm = 0.0;
    std::optional<linalg::ScaledExpmCache> cache;
    if (arn.happy_breakdown) {
      linalg::DenseReal hk(k, k);
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) hk(i, j) = hess_(i, j);
      }
      cache.emplace(hk);
    } else {
      // EXPOKIT's augmented matrix: the (m+1) x m Hessenberg (its last
      // row is h_{m+1,m} e_m^T) plus the chain entry e_{m+2} e_{m+1}^T.
      // Rows m+1 and m+2 of its exponential deliver the first- and
      // second-order terms of the a-posteriori error expansion; the
      // zero final column is implied by the tall shape (the cache pads).
      linalg::DenseReal augmented(m + 2, m + 1);
      for (std::size_t i = 0; i <= m; ++i) {
        for (std::size_t j = 0; j < m; ++j) augmented(i, j) = hess_(i, j);
      }
      augmented(m + 1, m) = 1.0;
      cache.emplace(augmented);
      matvec(basis_[m], residual_);
      avnorm = l2_norm(residual_);
    }

    std::size_t rejections = 0;
    for (;;) {
      // The attempted sub-step is clipped to the increment boundary; the
      // clip must not feed back into the controller step tau below.
      const double attempted = std::min(tau, dt - t_done);
      if (!(t_done + attempted > t_done)) {
        throw NumericalError(
            "krylov engine: sub-step size underflow (error estimate not "
            "converging; raise krylov_dim or epsilon)");
      }
      const linalg::DenseReal f = cache->expm(attempted);
      ++stats_.hessenberg_expms;

      double err = 0.0;
      double xm = xm_default;
      if (!arn.happy_breakdown) {
        const double p1 = std::abs(beta * f(m, 0));
        const double p2 = std::abs(beta * f(m + 1, 0)) * avnorm;
        if (p1 > 10.0 * p2) {
          err = p2;
        } else if (p1 > p2) {
          err = p1 * p2 / (p1 - p2);
        } else {
          err = p1;
          if (m > 1) xm = 1.0 / (md - 1.0);
        }
      }

      double factor;  // the controller's proposed tau multiplier
      if (!std::isfinite(err)) {
        factor = kMinShrink;  // overflow in the estimate: back off hard
      } else if (err > 0.0) {
        factor = kSafety * std::pow(attempted * tol / err, xm);
      } else {
        factor = kMaxGrow;
      }
      double proposed = attempted * std::clamp(factor, kMinShrink, kMaxGrow);

      bool accepted = std::isfinite(err) && err <= attempted * tol;
      if (accepted) {
        // Tentatively build the step: EXPOKIT's corrected scheme spends
        // one more column than the plain projection -- F(m+1,1) pairs
        // with v_{m+1}.
        const std::size_t columns = arn.happy_breakdown ? k : m + 1;
        linalg::fill(stepped_, 0.0);
        for (std::size_t j = 0; j < columns; ++j) {
          linalg::axpy(beta * f(j, 0), basis_[j], stepped_);
        }
        // Mass handling: columns of Q^T sum to zero, so the true flow
        // preserves sum(w) exactly.  The Krylov step does not inherit
        // the invariant: stiff matvecs cancel +-||A||-scale terms and
        // leave noise ~ eps ||A|| per unit time, which would otherwise
        // random-walk the total mass by percents over a long horizon
        // (and the asymptotic p1/p2 estimate is blind to it).  Small
        // drift is *projected out* by rescaling onto the mass shell;
        // drift at the kMassBlowup level means the projected exponential
        // genuinely diverged -- reject and back off hard.
        const double target_mass = linalg::sum(state);
        const double stepped_mass = linalg::sum(stepped_);
        const double drift = std::abs(stepped_mass - target_mass);
        if (drift <= kMassBlowup * std::abs(target_mass)) {
          if (drift > 0.0) {
            linalg::scale(stepped_, target_mass / stepped_mass);
          }
        } else {
          accepted = false;
          proposed = attempted * 0.25;
        }
      }

      if (accepted) {
        state.swap(stepped_);
        // kibamrm-lint: allow(reduction-contract) sequential time-marching sum; step sizes arrive one at a time, order is the control flow itself
        t_done += attempted;
        ++stats_.substeps;
        // A boundary-clipped accepted step says nothing against the
        // larger controller step; keep whichever is bigger (the policy
        // the adaptive backend uses for the same clip).
        tau = attempted < tau ? std::max(tau, proposed) : proposed;
        // Adapt the next factorisation's dimension off what this sub-step
        // learned.  The accept test above is untouched, so these moves
        // trade matvecs/orthogonalisation against re-stepping without
        // ever loosening the error contract.
        if (options_.krylov_adaptive_dim) {
          if (arn.happy_breakdown) {
            // The subspace closed at k; the state moves, so keep a small
            // margin rather than pinning m = k.
            current_m_ = std::clamp(k + 2, m_floor_, m_cap_);
            slack_streak_ = 0;
          } else if (rejections > 0) {
            // Accuracy-limited: a deeper subspace lifts the attainable
            // step faster than tau-shrinking re-trials converge.
            current_m_ = std::min(m_cap_, m + dim_step(m));
            slack_streak_ = 0;
          } else if (err <= kSlackFraction * attempted * tol) {
            // Order-of-magnitude budget slack: a shallower subspace
            // would have passed too.  Two consecutive slack steps guard
            // against a transient lull; an over-shrink is repaired by
            // the rejection branch above.
            if (++slack_streak_ >= 2) {
              current_m_ =
                  std::max(m_floor_, m - std::min(m - m_floor_, dim_step(m)));
              slack_streak_ = 0;
            }
          } else {
            slack_streak_ = 0;
          }
        }
        break;
      }

      ++rejections;
      if (rejections > kMaxRejections) {
        throw NumericalError(
            "krylov engine: " + std::to_string(kMaxRejections) +
            " consecutive sub-steps rejected (chain too stiff for the "
            "configured krylov_dim; raise it or epsilon)");
      }
      tau = std::min(proposed, attempted * kSafety);  // guaranteed shrink
    }
  }
  previous_tau_ = tau;
}

}  // namespace kibamrm::engine
