#include "kibamrm/engine/ooc_backend.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "kibamrm/common/spill_io.hpp"
#include "kibamrm/linalg/vector_ops.hpp"

namespace kibamrm::engine {

namespace {
constexpr std::size_t kNoTile = std::numeric_limits<std::size_t>::max();
}  // namespace

OutOfCoreBackend::OutOfCoreBackend(BackendOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<common::ThreadPool>(options_.threads)) {
  KIBAMRM_REQUIRE(options_.epsilon > 0.0 && options_.epsilon < 1.0,
                  "transient epsilon must lie in (0,1)");
  KIBAMRM_REQUIRE(options_.tile_bytes >= 1,
                  "ooc tile_bytes must be positive");
}

std::vector<std::vector<double>> OutOfCoreBackend::solve(
    const markov::Ctmc& chain, const std::vector<double>& initial,
    const std::vector<double>& times, const PointCallback& on_point) {
  check_arguments(chain, initial, times);

  double rate = options_.uniformization_rate;
  if (rate == 0.0) {
    rate = 1.02 * chain.max_exit_rate();
    if (rate == 0.0) rate = 1.0;  // generator is all-absorbing
  }
  KIBAMRM_REQUIRE(rate * (1.0 + 1e-12) >= chain.max_exit_rate(),
                  "uniformization rate below maximal exit rate");

  // Reachable closure over P's sparsity pattern without materialising P
  // (bitwise equal to uniformized(rate).reachable_rows; the diagonal
  // never adds reachability).
  std::vector<std::uint32_t> seeds;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    if (initial[i] != 0.0) seeds.push_back(static_cast<std::uint32_t>(i));
  }
  const std::vector<std::uint32_t> reachable =
      linalg::tile_store_reachable_rows(chain.generator(), seeds, rate);

  // Encode the compacted transposed P band by band into the spill file.
  // Peak transient memory here is the generator (owned by the caller's
  // chain either way) plus O(states) index arrays plus one tile -- the
  // allocation profile that lets this backend finish under address-space
  // caps where the in-memory backends cannot construct P at all.
  const std::string spill_path = common::unique_spill_path(
      common::resolve_spill_dir(options_.spill_dir), "kibamrm-tiles");
  linalg::TileStoreOptions store_options;
  store_options.tile_bytes = options_.tile_bytes;
  store_options.direct_io = options_.spill_direct_io;
  linalg::TileStore store = linalg::TileStore::build(
      chain.generator(), reachable, rate, store_options, spill_path);
  store.unlink_keeping_open();  // space reclaims even on abnormal exit

  const std::size_t tile_count = store.tile_count();
  const std::size_t loop_rows = store.rows();

  stats_ = BackendStats{};
  stats_.uniformization_rate = rate;
  stats_.time_points = times.size();
  stats_.active_states = reachable.size();
  stats_.active_nonzeros = store.nonzeros();
  stats_.matrix_bandwidth = store.build_stats().bandwidth;
  stats_.diagonal_rows = store.build_stats().diagonal_rows;
  stats_.longest_diagonal_run = store.build_stats().longest_diagonal_run;
  stats_.ooc_tiles = tile_count;
  stats_.ooc_spill_bytes = store.file_bytes();
  const std::uint64_t windows_computed_before = plan_.windows_computed();
  const std::uint64_t windows_reused_before = plan_.windows_reused();

  // Same pool-engagement policy as plan_gather_shards: below ~16k stored
  // entries one step costs less than waking the pool.
  const std::size_t lanes = pool_->thread_count();
  const bool use_pool =
      lanes > 1 && store.nonzeros() + store.rows() >= 16384;
  const std::size_t parts_per_tile = use_pool ? 4 * lanes : 1;

  // Tile residency state for the double-buffered stream.  Tile t always
  // lives in buffer t % 2, so consecutive tiles occupy alternating
  // buffers and "buffer t % 2 is free" is exactly "tile t - 2 is done".
  std::size_t held[2] = {kNoTile, kNoTile};
  // Entry-balanced local row ranges per tile, computed at first load (the
  // per-row entry table lives in the slab).
  std::vector<std::vector<std::size_t>> tile_ranges(tile_count);

  const auto load_into = [&](std::size_t tile, std::size_t buffer) {
    store.read_tile(tile, buffers_[buffer]);
    held[buffer] = tile;
    ++stats_.ooc_tile_reads;
    stats_.ooc_bytes_streamed += store.tile_slab_bytes(tile);
    if (tile_ranges[tile].empty()) {
      // Shards scale with the tile's stored entries: a small tile split
      // into 4 * lanes slivers costs more in dispatch than the multiply,
      // and the partition never changes results (each row's value is
      // partition-independent, the step delta is a max over shards).
      const std::size_t parts = std::min<std::size_t>(
          parts_per_tile,
          std::max<std::size_t>(1, store.tile_entries(tile) / 2048));
      tile_ranges[tile] =
          store.balanced_tile_ranges(tile, buffers_[buffer], parts);
    }
  };

  // Pipeline state shared by the one pool dispatch per streamed step.
  tile_ready_ = std::make_unique<std::atomic<std::uint32_t>[]>(tile_count);
  tile_claim_ = std::make_unique<std::atomic<std::size_t>[]>(tile_count);
  tile_done_ = std::make_unique<std::atomic<std::size_t>[]>(tile_count);
  tile_stalled_ =
      std::make_unique<std::atomic<std::uint32_t>[]>(tile_count);
  lane_deltas_.assign(lanes, 0.0);

  // Spin-then-yield wait; bails (returning false) once a pipeline role
  // recorded a failure, so a throwing tile read cannot deadlock the step.
  const auto wait_until = [&](auto&& ready) -> bool {
    for (std::uint32_t spins = 0; !ready(); ++spins) {
      if (step_abort_.load(std::memory_order_acquire)) return false;
      if (spins > 64) std::this_thread::yield();
    }
    return true;
  };

  const bool detect = options_.steady_state_detection;
  const double threshold = options_.epsilon / 2.0;

  std::vector<std::vector<double>> results;
  if (options_.collect_distributions) results.reserve(times.size());

  std::vector<double> current(reachable.size());  // pi(t_k), compact space
  for (std::size_t i = 0; i < reachable.size(); ++i) {
    current[i] = initial[reachable[i]];
  }
  full_point_.assign(initial.size(), 0.0);
  next_.assign(current.size(), 0.0);
  accum_.assign(current.size(), 0.0);
  double current_time = 0.0;

  // One streamed DTMC step: sweep every tile once, out = power * P in
  // compact space, fused Poisson accumulation, returns the sup-norm
  // delta (max over shards -- partition- and lane-independent).
  //
  // Pool path: ONE parallel_for for the whole sweep.  The first role is
  // the IO driver -- it streams tile t into buffer t % 2 as soon as the
  // buffer's previous occupant (tile t - 2) retires, then joins compute.
  // The remaining roles claim compute shards tile by tile as tiles become
  // ready.  Dispatching per step instead of per tile keeps the pool
  // wake-up cost amortised even when tiles are small.
  const auto streamed_step = [&](double weight) -> double {
    if (!use_pool) {
      // Inline path: sequential sweep; the two buffers still retain a
      // one- or two-tile store across steps.
      double delta = 0.0;
      for (std::size_t t = 0; t < tile_count; ++t) {
        const std::size_t buffer = t % 2;
        if (held[buffer] == t) {
          ++stats_.ooc_prefetch_hits;
        } else {
          if (tile_count > 1) store.prefetch_tile(t);
          load_into(t, buffer);
        }
        const std::vector<std::size_t>& ranges = tile_ranges[t];
        for (std::size_t s = 0; s + 1 < ranges.size(); ++s) {
          delta = std::max(delta, store.multiply_fused_tile(
                                      t, buffers_[buffer], power_, next_,
                                      accum_, weight, ranges[s],
                                      ranges[s + 1]));
        }
      }
      return delta;
    }

    step_abort_.store(false, std::memory_order_relaxed);
    for (std::size_t t = 0; t < tile_count; ++t) {
      // Tiles already sitting in their buffer skip the IO role entirely.
      // Only the first two tiles may be treated as resident: any later
      // tile's buffer is recycled by the sweep before compute reaches it,
      // so a leftover from the previous step's tail is not reusable.
      tile_ready_[t].store(t < 2 && held[t % 2] == t ? 1 : 0,
                           std::memory_order_relaxed);
      tile_claim_[t].store(0, std::memory_order_relaxed);
      tile_done_[t].store(0, std::memory_order_relaxed);
      tile_stalled_[t].store(0, std::memory_order_relaxed);
    }
    std::fill(lane_deltas_.begin(), lane_deltas_.end(), 0.0);

    const auto compute_role = [&](std::size_t lane) {
      double delta = lane_deltas_[lane];
      for (std::size_t t = 0; t < tile_count; ++t) {
        if (tile_ready_[t].load(std::memory_order_acquire) == 0) {
          tile_stalled_[t].store(1, std::memory_order_relaxed);
          if (!wait_until([&] {
                return tile_ready_[t].load(std::memory_order_acquire) !=
                       0;
              })) {
            break;
          }
        }
        const std::vector<std::size_t>& ranges = tile_ranges[t];
        const std::size_t shard_count = ranges.size() - 1;
        while (true) {
          const std::size_t shard = tile_claim_[t].fetch_add(
              1, std::memory_order_relaxed);
          if (shard >= shard_count) break;
          delta = std::max(delta, store.multiply_fused_tile(
                                      t, buffers_[t % 2], power_, next_,
                                      accum_, weight, ranges[shard],
                                      ranges[shard + 1]));
          tile_done_[t].fetch_add(1, std::memory_order_release);
        }
      }
      lane_deltas_[lane] = delta;
    };

    pool_->parallel_for(lanes, [&](std::size_t role, std::size_t lane) {
      if (role == 0) {
        try {
          for (std::size_t t = 0; t < tile_count; ++t) {
            if (tile_ready_[t].load(std::memory_order_relaxed) != 0) {
              continue;  // resident from the previous step
            }
            if (t >= 2) {
              // Buffer t % 2 frees once every shard of tile t - 2 retired.
              const std::size_t prior_shards =
                  tile_ranges[t - 2].size() - 1;
              if (!wait_until([&] {
                    return tile_done_[t - 2].load(
                               std::memory_order_acquire) == prior_shards;
                  })) {
                return;
              }
            }
            store.prefetch_tile(t);
            load_into(t, t % 2);
            tile_ready_[t].store(1, std::memory_order_release);
          }
        } catch (...) {
          step_abort_.store(true, std::memory_order_release);
          throw;  // parallel_for rethrows the first failure
        }
      }
      compute_role(lane);
    });

    double delta = 0.0;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      delta = std::max(delta, lane_deltas_[lane]);
    }
    for (std::size_t t = 0; t < tile_count; ++t) {
      if (tile_stalled_[t].load(std::memory_order_relaxed) == 0) {
        ++stats_.ooc_prefetch_hits;
      }
    }
    return delta;
  };

  const auto emit_view =
      [&](const std::vector<double>& point) -> const std::vector<double>& {
    for (std::size_t i = 0; i < reachable.size(); ++i) {
      full_point_[reachable[i]] = point[i];
    }
    return full_point_;
  };

  for (std::size_t idx = 0; idx < times.size(); ++idx) {
    const double dt = times[idx] - current_time;
    if (dt > 0.0) {
      const double lambda = rate * dt;
      const std::shared_ptr<const markov::PoissonWindow> window_ptr =
          plan_.window(lambda, options_.epsilon);
      const markov::PoissonWindow& window = *window_ptr;
      linalg::fill(accum_, 0.0);
      power_ = current;
      if (window.left == 0) {
        linalg::axpy(window.weight(0), current, accum_);
      }
      std::uint64_t calm_steps = 0;  // consecutive steps inside the budget
      for (std::uint64_t n = 1; n <= window.right; ++n) {
        const double weight = n >= window.left ? window.weight(n) : 0.0;
        const double delta = streamed_step(weight);
        power_.swap(next_);
        ++stats_.iterations;
        // Steady-state short circuit -- identical decision input and
        // guard to markov::TransientSolver / the parallel backend (the
        // cross-backend bitwise tests pin this down); the tile sweep's
        // max-of-maxima delta is partition- and tile-independent.
        if (detect && n < window.right &&
            static_cast<double>(window.right - n) * delta <= threshold) {
          if (++calm_steps >= 2) {
            double residual = 0.0;
            for (std::uint64_t m = n + 1; m <= window.right; ++m) {
              // kibamrm-lint: allow(reduction-contract) single-threaded sum of Fox-Glynn tail weights in fixed ascending m order; no thread-count dependence
              residual += window.weight(m);
            }
            if (residual > 0.0) {
              linalg::axpy(residual, power_, accum_);
            }
            stats_.iterations_saved += window.right - n;
            ++stats_.steady_state_hits;
            break;
          }
        } else {
          calm_steps = 0;
        }
      }
      current.swap(accum_);
      if (options_.renormalize) {
        linalg::normalize_probability(current);
      }
      current_time = times[idx];
    }
    if (options_.collect_distributions || on_point) {
      const std::vector<double>& point = emit_view(current);
      if (options_.collect_distributions) results.push_back(point);
      if (on_point) on_point(idx, times[idx], point);
    }
  }
  stats_.windows_computed = plan_.windows_computed() - windows_computed_before;
  stats_.windows_reused = plan_.windows_reused() - windows_reused_before;
  (void)loop_rows;
  return results;
}

}  // namespace kibamrm::engine
