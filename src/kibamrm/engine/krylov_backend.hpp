// Krylov-subspace transient backend: exp(Q^T t) v by Arnoldi projection
// with EXPOKIT-style adaptive sub-step splitting (Sidje 1998, dgexpv).
//
// The expanded KiBaM chains turn stiff as the recovery/consumption rate
// ratio and the reward step Delta shrink: the explicit Dormand-Prince
// stepper's stable step collapses below what any iteration count can
// cover, and the Fox-Glynn window of uniformisation grows with q t.  The
// Krylov approximation sidesteps both: per sub-step tau it builds an
// orthonormal basis V_m of K_m(Q^T, w) (m ~ 30) and computes
//     exp(tau Q^T) w  ~=  beta V_m exp(tau H_m) e_1,
// where the small Hessenberg exponential is evaluated exactly (cached
// Pade + scaling/squaring, A-stable) -- so the step size is limited by how
// fast the *solution* moves, not by the spectral radius.  Once the fast
// modes have equilibrated, the a-posteriori error estimate lets tau grow
// geometrically and whole quasi-steady stretches cost a handful of steps.
//
// Mechanics per sub-step (EXPOKIT's corrected scheme):
//   - Arnoldi with modified Gram-Schmidt (linalg/arnoldi); a happy
//     breakdown at k < m means K_k is invariant and the projected
//     exponential is exact for the entire remaining increment.
//   - The (m+2)-augmented Hessenberg [H | h e_m; 0 | e_{m+1}] is
//     exponentiated through one linalg::ScaledExpmCache per factorisation,
//     so rejected trial steps re-use the cached Pade powers and only pay
//     the assembly, LU and squaring chain.
//   - Local error from the EXPOKIT estimate (the |F(m+1,1)| / |F(m+2,1)|
//     pair, the second weighted by ||A v_{m+1}||); accepted when below the
//     increment's pro-rata share of `epsilon`, else tau shrinks and the
//     trial repeats.
//
// The sparse matvec is CsrMatrix::multiply_range on the transposed
// generator -- a gather, so it shards across the ThreadPool exactly like
// the parallel uniformisation backend and stays bitwise deterministic
// across thread counts ("--threads" composes).  The whole solve runs in
// the reachable closure of the initial support (exact: mass cannot leave
// it), which halves both the matvec and the orthogonalisation on the
// paper's expanded chains; the orthogonalisation itself runs sharded over
// the same pool through linalg::arnoldi's fixed-block reduction contract.
//
// Adaptive subspace dimension: between sub-steps m grows on rejected
// trials (the projection was too shallow for the attempted step) and
// shrinks when the a-posteriori estimate sits far inside the budget for
// consecutive accepted steps or the subspace closed early (happy
// breakdown) -- so small easy chains stop paying the m = 30 worst-case
// orthogonalisation and stiff chains stop burning re-stepped trials.
// The accept/reject test is unchanged, so adaptivity affects cost only,
// never the error contract.  BackendOptions::krylov_adaptive_dim pins
// m = krylov_dim for A/B measurement.
#pragma once

#include <memory>
#include <vector>

#include "kibamrm/common/thread_pool.hpp"
#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/linalg/arnoldi.hpp"
#include "kibamrm/linalg/csr_matrix.hpp"
#include "kibamrm/linalg/dense_matrix.hpp"

namespace kibamrm::engine {

class KrylovBackend final : public TransientBackend {
 public:
  explicit KrylovBackend(BackendOptions options);

  std::string_view name() const override { return "krylov"; }

  std::vector<std::vector<double>> solve(
      const markov::Ctmc& chain, const std::vector<double>& initial,
      const std::vector<double>& times,
      const PointCallback& on_point = nullptr) override;

  const BackendStats& last_stats() const override { return stats_; }

  /// Lanes the pool actually runs (after auto-detection).
  std::size_t thread_count() const { return pool_->thread_count(); }

 private:
  /// Advances `state` by dt through adaptive Krylov sub-steps; `matvec`
  /// applies Q^T.  anorm is ||Q^T||_1, the step-size and breakdown scale.
  void integrate(const std::function<void(const std::vector<double>&,
                                          std::vector<double>&)>& matvec,
                 std::vector<double>& state, double dt, double anorm);

  BackendOptions options_;
  BackendStats stats_;
  std::unique_ptr<common::ThreadPool> pool_;
  // Scratch reused across sub-steps and solve() calls: the Arnoldi basis
  // (m_cap+1 vectors of the chain dimension), the Hessenberg projection,
  // the residual matvec target for ||A v_{m+1}||, the sub-step result,
  // and the sharded-orthogonalisation workspace.
  std::vector<std::vector<double>> basis_;
  linalg::DenseReal hess_;
  std::vector<double> residual_;
  std::vector<double> stepped_;
  std::vector<double> full_point_;  // closure -> full-space emission buffer
  linalg::ArnoldiWorkspace arnoldi_ws_;
  // Converged controller sub-step carried across increments of one solve
  // (0 = derive the a-priori EXPOKIT guess); reset per solve().
  double previous_tau_ = 0.0;
  // Adaptive subspace dimension, persisted across sub-steps and
  // increments of one solve: cap = min(krylov_dim, states), floor 4, and
  // the consecutive-slack counter driving shrinks.
  std::size_t m_cap_ = 1;
  std::size_t m_floor_ = 1;
  std::size_t current_m_ = 1;
  std::size_t slack_streak_ = 0;
};

}  // namespace kibamrm::engine
