#include "kibamrm/engine/scenario_batch.hpp"

#include <chrono>
#include <memory>

#include "kibamrm/core/expanded_ctmc.hpp"
#include "kibamrm/engine/plan_cache.hpp"
#include "kibamrm/engine/transient_backend.hpp"

namespace kibamrm::engine {

namespace {

/// Backend instance one pool lane reuses across all scenarios it picks up
/// (its internal spmv scratch persists between solve() calls).
struct LaneScratch {
  std::unique_ptr<TransientBackend> backend;
};

}  // namespace

ScenarioBatch::ScenarioBatch(ScenarioBatchOptions options)
    : options_(std::move(options)), pool_(options_.threads) {
  // Fail on unknown engine names at construction, not in the middle of a
  // running batch.  Name check only: instantiating a backend here would
  // spin up (and discard) a whole thread pool for engine = "parallel".
  if (!is_backend_name(options_.engine)) {
    (void)make_backend(options_.engine);  // throws, listing the choices
  }
}

std::vector<ScenarioResult> ScenarioBatch::solve_all(
    const std::vector<Scenario>& scenarios) {
  // One plan cache per batch: sweeps solve many scenarios of identical
  // Q*-structure (same sparsity, rates and initial support, different
  // time grids), so the closure + transpose + gather-plan setup is built
  // once and shared across all lanes (GatherPlanCache is thread-safe).
  const std::shared_ptr<GatherPlanCache> plan_cache =
      std::make_shared<GatherPlanCache>();
  const BackendOptions backend_options{
      .epsilon = options_.epsilon,
      .dense_state_limit = options_.dense_state_limit,
      .threads = options_.engine_threads,
      // Batches stream Pr{empty} through the callback; the distributions
      // themselves are never materialised.
      .collect_distributions = false,
      .fused_kernels = options_.fused_kernels,
      .steady_state_detection = options_.steady_state_detection,
      .tile_bytes = options_.tile_bytes,
      .spill_dir = options_.spill_dir,
      .kernel_dispatch = options_.kernel_dispatch,
      .shards = options_.shards,
      .plan_cache = plan_cache};

  const core::StateOrdering ordering =
      core::parse_state_ordering(options_.reorder);

  std::vector<ScenarioResult> results(scenarios.size());
  std::vector<LaneScratch> lanes(pool_.thread_count());

  const auto batch_start = std::chrono::steady_clock::now();
  pool_.parallel_for(
      scenarios.size(), [&](std::size_t index, std::size_t lane) {
        const Scenario& scenario = scenarios[index];
        ScenarioResult& result = results[index];
        result.label = scenario.label;

        LaneScratch& scratch = lanes[lane];
        if (!scratch.backend) {
          scratch.backend = make_backend(options_.engine, backend_options);
        }

        const auto start = std::chrono::steady_clock::now();
        const core::ExpandedChain expanded = core::build_expanded_chain(
            scenario.model, scenario.delta, ordering);
        result.stats.engine = options_.engine;
        result.stats.reorder = core::state_ordering_name(expanded.ordering);
        result.stats.expanded_states = expanded.grid.state_count();
        result.stats.generator_nonzeros =
            expanded.chain.generator().nonzeros();
        try {
          result.curve = core::solve_empty_probability_curve(
              expanded, *scratch.backend, scenario.times, options_.epsilon);
          core::absorb_backend_stats(result.stats,
                                     scratch.backend->last_stats());
        } catch (const UnsupportedChainError& error) {
          result.skipped = true;
          result.skip_reason = error.what();
        } catch (const NumericalError& error) {
          // One stiff scenario must not abort the batch and discard every
          // completed curve; the failure is recorded in place.  Anything
          // other than a solver convergence failure still propagates.
          result.failed = true;
          result.failure_reason = error.what();
        } catch (const IpcError& error) {
          // A crashed sharded worker fails its scenario the same way: the
          // coordinator has already reaped the solve's worker processes,
          // so the lane and the rest of the batch continue unharmed.
          result.failed = true;
          result.failure_reason = error.what();
        }
        result.wall_seconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
      });

  stats_ = BatchStats{};
  stats_.scenarios = scenarios.size();
  stats_.threads = pool_.thread_count();
  stats_.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - batch_start)
                            .count();
  for (const ScenarioResult& result : results) {
    if (result.skipped) ++stats_.skipped;
    if (result.failed) ++stats_.failed;
    stats_.solve_seconds_total += result.wall_seconds;
    stats_.iterations_total += result.stats.uniformization_iterations;
    stats_.iterations_saved_total += result.stats.iterations_saved;
  }
  stats_.plans_built = plan_cache->plans_built();
  stats_.plans_reused = plan_cache->plans_reused();
  return results;
}

}  // namespace kibamrm::engine
