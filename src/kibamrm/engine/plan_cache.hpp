// Cross-scenario cache of solve-plan setup for the fused uniformisation
// engines.
//
// A ScenarioBatch sweep (Fig. 8: one curve per Delta; Table 1: one per
// workload) repeatedly expands chains with *identical* Q*-structure --
// same sparsity, same rates, same initial support -- differing only in
// the time grid.  Each solve used to rebuild the reachable closure, the
// compacted transpose and the FusedGatherPlan from scratch; this cache
// keys that immutable setup on a content hash of (generator structure +
// values, uniformisation rate, initial support) and shares one
// CachedGatherPlan across every lane and solve that matches -- the first
// stepping stone toward ROADMAP item 1's cross-request plan cache.
//
// Sharing is safe because everything cached is immutable after build:
// the consuming backends only read the plan (FusedGatherPlan kernels are
// const), and shared_ptr keeps an entry alive across concurrent lanes.
// Bitwise determinism is untouched -- a cached plan is byte-identical to
// the one the solve would have rebuilt, so curves cannot change.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "kibamrm/common/thread_annotations.hpp"
#include "kibamrm/linalg/csr_matrix.hpp"
#include "kibamrm/linalg/fused_gather.hpp"
#include "kibamrm/linalg/permutation.hpp"

namespace kibamrm::engine {

/// The immutable per-chain setup of a fused uniformisation solve.  Built
/// once (build_cached_gather_plan), then only read.
struct CachedGatherPlan {
  /// Sorted reachable closure of the initial support (full-chain state
  /// ids); the loop dimension is reachable.size().
  std::vector<std::uint32_t> reachable;
  /// Per-row stored-entry counts of the compacted transpose, plus each
  /// row's first/last stored column -- enough to shard and partition
  /// without keeping the CSR arrays alive (linalg::ShardPlan and the
  /// gather shard split both run off these).
  std::vector<std::uint32_t> row_entry_counts;
  std::vector<std::uint32_t> row_col_lo;
  std::vector<std::uint32_t> row_col_hi;
  std::uint64_t nonzeros = 0;
  linalg::StructureStats structure;
  /// Compressed kernel plan; nullopt when the chain fits neither layout.
  std::optional<linalg::FusedGatherPlan> plan;
  /// CSR fallback, retained only when `plan` could not build (the
  /// compressed layout otherwise replaces it).
  linalg::CsrMatrix transpose{1, 1};

  std::size_t rows() const { return row_entry_counts.size(); }
};

/// Uniformises `generator` at `rate`, compacts to the reachable closure
/// of `seeds` and builds the gather plan -- the setup block shared by the
/// parallel and sharded backends, cache or no cache.
std::shared_ptr<const CachedGatherPlan> build_cached_gather_plan(
    const linalg::CsrMatrix& generator, double rate,
    std::span<const std::uint32_t> seeds);

/// Content hash the cache keys on: generator structure arrays and values
/// (exact bytes), the uniformisation rate bits and the seed set.  Chains
/// whose hashes collide would share a plan wrongly; at 64 bits over
/// full-content hashing that is vanishingly unlikely, and lookup()
/// additionally rejects entries whose cheap invariants (state count,
/// closure seed count) disagree.
std::uint64_t gather_plan_key(const linalg::CsrMatrix& generator, double rate,
                              std::span<const std::uint32_t> seeds);

/// Thread-safe keyed store of CachedGatherPlans, shared by every lane of
/// a ScenarioBatch through BackendOptions::plan_cache.
class GatherPlanCache {
 public:
  /// Returns the cached plan for `key`, or builds + inserts one from the
  /// given chain data.  Concurrent lanes may race to build the same key;
  /// the first insert wins and later builders adopt it (the builds are
  /// deterministic, so either copy is byte-identical).
  std::shared_ptr<const CachedGatherPlan> obtain(
      const linalg::CsrMatrix& generator, double rate,
      std::span<const std::uint32_t> seeds);

  /// Counters for telemetry and tests.
  std::uint64_t plans_built() const;
  std::uint64_t plans_reused() const;

 private:
  mutable common::Mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<const CachedGatherPlan>> entries_
      KIBAMRM_GUARDED_BY(mutex_);
  std::uint64_t built_ KIBAMRM_GUARDED_BY(mutex_) = 0;
  std::uint64_t reused_ KIBAMRM_GUARDED_BY(mutex_) = 0;
};

}  // namespace kibamrm::engine
