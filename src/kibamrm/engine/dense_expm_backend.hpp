// Dense matrix-exponential backend: pi(t_{k+1}) = pi(t_k) * expm(Q dt).
//
// The scaling-and-squaring Pade exponential (linalg/expm) is accurate to
// machine precision, making this the cross-validation oracle for the
// iterative engines -- on chains small enough that an O(states^3) dense
// exponential per distinct increment is affordable.  Uniform time grids pay
// for a single exponential: increments repeat, and the propagator is cached
// per distinct dt.
//
// Chains above BackendOptions::dense_state_limit are refused with
// InvalidArgument; use the uniformization engine there.
#pragma once

#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/linalg/dense_matrix.hpp"

namespace kibamrm::engine {

class DenseExpmBackend final : public TransientBackend {
 public:
  explicit DenseExpmBackend(BackendOptions options);

  std::string_view name() const override { return "dense"; }

  std::vector<std::vector<double>> solve(
      const markov::Ctmc& chain, const std::vector<double>& initial,
      const std::vector<double>& times,
      const PointCallback& on_point = nullptr) override;

  const BackendStats& last_stats() const override { return stats_; }

 private:
  BackendOptions options_;
  BackendStats stats_;
};

}  // namespace kibamrm::engine
