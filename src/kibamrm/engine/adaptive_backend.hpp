// Adaptive-step ODE backend: embedded Dormand-Prince 5(4) on the Kolmogorov
// forward equations pi'(t) = pi(t) Q.
//
// Complements the uniformisation backend for small chains: step size adapts
// to the local solution scale instead of the global uniformisation rate, so
// nearly-settled distributions (long tails of lifetime curves, stiff decay
// after a fast transient) integrate with large steps where uniformisation
// keeps paying q * dt iterations.  Also complements core/exact_c1, which is
// exact but restricted to single-well models with charge-independent rates.
//
// Explicit RK is stability-limited to step ~ 3.3 / max_exit_rate on stiff
// chains, which the error controller discovers by rejection; for the large
// expanded battery chains uniformisation stays the production choice.
#pragma once

#include "kibamrm/engine/transient_backend.hpp"

namespace kibamrm::engine {

class AdaptiveBackend final : public TransientBackend {
 public:
  explicit AdaptiveBackend(BackendOptions options);

  std::string_view name() const override { return "adaptive"; }

  std::vector<std::vector<double>> solve(
      const markov::Ctmc& chain, const std::vector<double>& initial,
      const std::vector<double>& times,
      const PointCallback& on_point = nullptr) override;

  const BackendStats& last_stats() const override { return stats_; }

 private:
  /// Advances `state` from `t_from` to `t_to`, adapting the step.
  void integrate(const markov::Ctmc& chain, std::vector<double>& state,
                 double t_from, double t_to);

  BackendOptions options_;
  BackendStats stats_;
  // Stage scratch (k1..k7 and the trial state), reused across increments.
  std::vector<std::vector<double>> stages_;
  std::vector<double> trial_;
  bool first_same_as_last_valid_ = false;
  // Controller step carried across output increments: re-deriving it per
  // increment would pay the growth ramp towards the stability limit at
  // every curve point.
  double previous_step_ = 0.0;
};

}  // namespace kibamrm::engine
