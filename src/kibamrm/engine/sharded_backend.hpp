// Sharded uniformisation backend: the fused transient solve partitioned
// across *processes*, one contiguous band of charge levels per worker.
//
// The parallel backend scales until the compacted transpose and its three
// iteration vectors saturate one node's shared cache hierarchy.  This
// backend forks N workers per solve; worker s owns rows
// [band.row_begin, band.row_end) of the compacted transpose (cut by the
// same entry-scaled fair-share walk the tile store and the thread-level
// shard split use, linalg::ShardPlan) and iterates only that band.  The
// gather reads power[k] for k in the band's column footprint; because the
// chain is banded in charge level, the footprint exceeds the band by a
// thin *halo* of boundary rows, which owners push to subscribers through
// pre-forked shared-memory rings (common::ShmChannel) once per product.
//
// Process model.  Everything immutable -- the gather plan, the shard plan,
// the time grid -- is built before fork() and inherited copy-on-write, so
// workers share those pages physically.  Only the halo rows, one delta
// scalar per step, and one band slice per output point cross the channel.
// Workers die with the coordinator (PR_SET_PDEATHSIG) and always leave via
// _exit(); a worker that crashes mid-solve fails *this scenario* with
// common::IpcError -- the coordinator's alive-poll notices the death within
// a poll slice, reaps the remaining workers, and the batch layer maps the
// error onto one failed scenario, never the whole batch.  The rings are
// anonymous MAP_SHARED mappings: nothing is ever created under /dev/shm,
// so there is nothing to leak.
//
// Determinism.  Every per-row dot product runs the same fused kernel over
// the same operands in the same order as the parallel backend; band and
// lane boundaries only move rows between executors.  The steady-state
// decision input (max of per-band deltas) and the renormalisation total
// (serial Kahan sum over the assembled vector, computed on the coordinator
// only) are reduced exactly as the single-process solver reduces them, so
// curves are bitwise identical to `parallel` at every shards x threads
// combination -- tests/test_engine_sharded.cpp pins this down.
//
// Requires fused_kernels (the band loop is built on the gather plan);
// throws UnsupportedChainError otherwise.  The float32 mixed tier is not
// forwarded -- workers always run the double path, so curves match the
// parallel backend's default tier regardless of --kernels.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "kibamrm/engine/transient_backend.hpp"
#include "kibamrm/markov/fox_glynn.hpp"

namespace kibamrm::engine {

class ShardedBackend final : public TransientBackend {
 public:
  explicit ShardedBackend(BackendOptions options);

  std::string_view name() const override { return "sharded"; }

  std::vector<std::vector<double>> solve(
      const markov::Ctmc& chain, const std::vector<double>& initial,
      const std::vector<double>& times,
      const PointCallback& on_point = nullptr) override;

  const BackendStats& last_stats() const override { return stats_; }

  /// Worker processes a solve forks (>= 1; options.shards clamped below).
  std::size_t shard_count() const { return shards_; }

 private:
  BackendOptions options_;
  BackendStats stats_;
  std::size_t shards_;
  // Compacted current distribution assembled from worker band slices, and
  // the full-dimension buffer it expands into for results and callbacks.
  std::vector<double> assembled_;
  std::vector<double> full_point_;
  // Fox-Glynn windows memoised across increments and solve() calls; the
  // coordinator replicates the parallel backend's iteration bookkeeping
  // off this plan while workers recompute identical windows locally.
  markov::UniformizationPlan plan_;
};

}  // namespace kibamrm::engine
