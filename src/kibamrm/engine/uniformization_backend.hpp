// Uniformisation backend: the paper's transient solver behind the engine
// interface.
//
// Delegates to markov::TransientSolver, which carries the two production
// fast paths: absorbing states uniformise to unit-diagonal rows and are
// carried over without touching the sparse structure (the expanded battery
// chain's whole j1 = 0 layer), and the per-increment scratch vectors are
// reused across the curve so a solve allocates only at its first increment.
#pragma once

#include "kibamrm/engine/transient_backend.hpp"

namespace kibamrm::engine {

class UniformizationBackend final : public TransientBackend {
 public:
  explicit UniformizationBackend(BackendOptions options);

  std::string_view name() const override { return "uniformization"; }

  std::vector<std::vector<double>> solve(
      const markov::Ctmc& chain, const std::vector<double>& initial,
      const std::vector<double>& times,
      const PointCallback& on_point = nullptr) override;

  const BackendStats& last_stats() const override { return stats_; }

 private:
  BackendOptions options_;
  BackendStats stats_;
};

}  // namespace kibamrm::engine
