#include "kibamrm/engine/transient_backend.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "kibamrm/common/error.hpp"
#include "kibamrm/engine/adaptive_backend.hpp"
#include "kibamrm/engine/dense_expm_backend.hpp"
#include "kibamrm/engine/krylov_backend.hpp"
#include "kibamrm/engine/ooc_backend.hpp"
#include "kibamrm/engine/parallel_backend.hpp"
#include "kibamrm/engine/sharded_backend.hpp"
#include "kibamrm/engine/uniformization_backend.hpp"
#include "kibamrm/linalg/kernels.hpp"
#include "kibamrm/linalg/shard_plan.hpp"
#include "kibamrm/linalg/vector_ops.hpp"

namespace kibamrm::engine {

namespace {

std::map<std::string, BackendFactory, std::less<>>& registry() {
  static std::map<std::string, BackendFactory, std::less<>> backends = {
      {"uniformization",
       [](const BackendOptions& options) -> std::unique_ptr<TransientBackend> {
         return std::make_unique<UniformizationBackend>(options);
       }},
      {"adaptive",
       [](const BackendOptions& options) -> std::unique_ptr<TransientBackend> {
         return std::make_unique<AdaptiveBackend>(options);
       }},
      {"dense",
       [](const BackendOptions& options) -> std::unique_ptr<TransientBackend> {
         return std::make_unique<DenseExpmBackend>(options);
       }},
      {"parallel",
       [](const BackendOptions& options) -> std::unique_ptr<TransientBackend> {
         return std::make_unique<ParallelUniformizationBackend>(options);
       }},
      {"krylov",
       [](const BackendOptions& options) -> std::unique_ptr<TransientBackend> {
         return std::make_unique<KrylovBackend>(options);
       }},
      {"ooc",
       [](const BackendOptions& options) -> std::unique_ptr<TransientBackend> {
         return std::make_unique<OutOfCoreBackend>(options);
       }},
      {"sharded",
       [](const BackendOptions& options) -> std::unique_ptr<TransientBackend> {
         return std::make_unique<ShardedBackend>(options);
       }},
  };
  return backends;
}

}  // namespace

GatherShardPlan plan_gather_shards(const linalg::CsrMatrix& matrix,
                                   std::size_t lanes) {
  GatherShardPlan plan;
  plan.use_pool =
      lanes > 1 && matrix.nonzeros() + matrix.rows() >= 16384;
  plan.ranges = plan.use_pool
                    ? matrix.balanced_row_ranges(4 * lanes)
                    : std::vector<std::size_t>{0, matrix.rows()};
  return plan;
}

GatherShardPlan plan_gather_shards(std::span<const std::uint32_t> row_counts,
                                   std::uint64_t nonzeros,
                                   std::size_t row_begin, std::size_t row_end,
                                   std::size_t lanes) {
  GatherShardPlan plan;
  plan.use_pool = lanes > 1 && nonzeros + (row_end - row_begin) >= 16384;
  plan.ranges =
      plan.use_pool
          ? linalg::balanced_count_ranges(row_counts, row_begin, row_end,
                                          4 * lanes)
          : std::vector<std::size_t>{row_begin, row_end};
  return plan;
}

void TransientBackend::check_arguments(const markov::Ctmc& chain,
                                       const std::vector<double>& initial,
                                       const std::vector<double>& times) {
  KIBAMRM_REQUIRE(initial.size() == chain.state_count(),
                  "initial distribution has wrong dimension");
  KIBAMRM_REQUIRE(linalg::is_probability_vector(initial, 1e-6),
                  "initial vector is not a probability distribution");
  KIBAMRM_REQUIRE(std::is_sorted(times.begin(), times.end()),
                  "time points must be sorted ascending");
  KIBAMRM_REQUIRE(times.empty() || times.front() >= 0.0,
                  "time points must be non-negative");
}

std::unique_ptr<TransientBackend> make_backend(std::string_view name,
                                               const BackendOptions& options) {
  // The kernel tier is process-global state (see linalg/kernels.hpp);
  // applying it here covers every construction path, including the
  // per-lane backends of ScenarioBatch.  "auto" is a no-op.
  linalg::kernels::apply_dispatch(options.kernel_dispatch);
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::ostringstream message;
    message << "unknown transient engine '" << name << "'; known engines:";
    for (const std::string& known : backend_names()) {
      message << ' ' << known;
    }
    throw InvalidArgument(message.str());
  }
  return it->second(options);
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) {
    (void)factory;
    names.push_back(name);
  }
  return names;
}

bool is_backend_name(std::string_view name) {
  return registry().find(name) != registry().end();
}

void register_backend(std::string name, BackendFactory factory) {
  KIBAMRM_REQUIRE(!name.empty(), "backend name must be non-empty");
  KIBAMRM_REQUIRE(static_cast<bool>(factory),
                  "backend factory must be callable");
  registry()[std::move(name)] = std::move(factory);
}

}  // namespace kibamrm::engine
