#include "kibamrm/engine/dense_expm_backend.hpp"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/expm.hpp"
#include "kibamrm/linalg/vector_ops.hpp"

namespace kibamrm::engine {

DenseExpmBackend::DenseExpmBackend(BackendOptions options)
    : options_(options) {
  KIBAMRM_REQUIRE(options_.dense_state_limit > 0,
                  "dense engine: state limit must be positive");
}

std::vector<std::vector<double>> DenseExpmBackend::solve(
    const markov::Ctmc& chain, const std::vector<double>& initial,
    const std::vector<double>& times, const PointCallback& on_point) {
  check_arguments(chain, initial, times);
  if (chain.state_count() > options_.dense_state_limit) {
    throw UnsupportedChainError(
        "dense engine: chain has " + std::to_string(chain.state_count()) +
        " states, above the dense_state_limit of " +
        std::to_string(options_.dense_state_limit) +
        "; use the uniformization engine");
  }

  stats_ = BackendStats{};
  stats_.time_points = times.size();

  const linalg::DenseReal q = chain.dense_generator();

  // Uniform grids repeat the same increment; cache propagators per dt.
  std::vector<std::pair<double, linalg::DenseReal>> propagators;
  const auto propagator_for = [&](double dt) -> const linalg::DenseReal& {
    for (const auto& [cached_dt, e] : propagators) {
      if (std::abs(cached_dt - dt) <= 1e-12 * std::max(1.0, dt)) return e;
    }
    propagators.emplace_back(dt, linalg::expm(q.scaled(dt)));
    ++stats_.iterations;  // one dense exponential evaluated
    return propagators.back().second;
  };

  std::vector<std::vector<double>> results;
  results.reserve(times.size());

  std::vector<double> current = initial;
  double current_time = 0.0;
  for (std::size_t idx = 0; idx < times.size(); ++idx) {
    const double dt = times[idx] - current_time;
    if (dt > 0.0) {
      current = propagator_for(dt).left_multiply(current);
      if (options_.renormalize) {
        linalg::normalize_probability(current);
      }
      current_time = times[idx];
    }
    if (options_.collect_distributions) results.push_back(current);
    if (on_point) on_point(idx, times[idx], current);
  }
  return results;
}

}  // namespace kibamrm::engine
