// The pluggable transient-engine layer: one interface over every way this
// library can push a probability distribution through time.
//
// The paper's tailored algorithm (Sec. 5) fixes a single pipeline --
// discretise, build the expanded CTMC Q*, solve by uniformisation.  The
// engine layer decouples the last step: a TransientBackend computes pi(t)
// for a CTMC on a sorted time grid, and callers (core/approx_solver, the
// bench drivers, examples) select an implementation by name:
//
//   "uniformization"  incremental uniformisation with Fox-Glynn windows and
//                     an absorbing-layer fast path -- the production default
//                     for the large expanded battery chains
//   "adaptive"        embedded Runge-Kutta (Dormand-Prince 5(4)) with
//                     adaptive step control on pi' = pi Q -- complements the
//                     transform solver in core/exact_c1 for small stiff
//                     chains and for rate regimes where the Poisson window
//                     grows degenerate
//   "dense"           dense Pade matrix exponential (linalg/expm) with
//                     increment caching -- cross-validation oracle for
//                     chains below a configurable state threshold
//   "parallel"        uniformisation with the spmv sharded across a
//                     ThreadPool (transposed gather kernel, nnz-balanced
//                     row ranges) -- bitwise deterministic across thread
//                     counts; the multi-core production path
//   "krylov"          Arnoldi projection of exp(Q^T t) v onto a small
//                     Krylov subspace with EXPOKIT-style adaptive
//                     sub-step splitting -- the stiff-chain path: its
//                     cost scales with how fast the *solution* moves,
//                     not with the spectral radius that defeats the
//                     explicit stepper and bloats the Poisson window
//   "ooc"             out-of-core uniformisation: the compacted transposed
//                     matrix is encoded band-by-band into a tiled spill
//                     file at solve start and streamed back per DTMC step
//                     through a double-buffered prefetch pipeline --
//                     bitwise identical curves to the fused in-memory
//                     backends at every tile size and thread count, with
//                     a working set of two tiles plus O(states) vectors
//   "sharded"         multi-process uniformisation: a coordinator forks
//                     one worker per shard, each owning a contiguous
//                     level band of the compacted transpose
//                     (linalg::ShardPlan); workers run the fused gather
//                     kernels on their band and exchange only the halo
//                     rows per DTMC step over shared-memory rings
//                     (common/shm_channel) -- bitwise identical curves
//                     to "parallel" at every (shard count, thread
//                     count), with N shards x T threads composing
//
// New backends (GPU, MPI) register through register_backend() without
// another restructure of the call sites.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/csr_matrix.hpp"
#include "kibamrm/markov/ctmc.hpp"

namespace kibamrm::engine {

class GatherPlanCache;  // engine/plan_cache.hpp

/// How a pool-sharded gather matvec splits its rows; shared by the
/// parallel and krylov backends so the engagement threshold and the
/// oversubscription factor stay tuned in exactly one place.
struct GatherShardPlan {
  /// False when one lane (or a matrix too small to amortise waking the
  /// pool) makes the inline loop the faster path.
  bool use_pool = false;
  /// Shard boundaries: ranges[i]..ranges[i+1] is shard i; always at
  /// least {0, rows}.
  std::vector<std::size_t> ranges;

  std::size_t shard_count() const { return ranges.size() - 1; }
};

/// Splits `matrix` for a gather matvec over `lanes` pool lanes.  Below
/// ~16k stored entries one spmv costs less than waking the pool, so the
/// plan stays inline; otherwise rows are nnz-balanced into 4x-lane
/// shards (the oversubscription lets the atomic claim loop absorb cost
/// imbalance a static split cannot see).
GatherShardPlan plan_gather_shards(const linalg::CsrMatrix& matrix,
                                   std::size_t lanes);

/// Same policy from per-row entry counts alone (what the plan cache
/// retains after the CSR arrays are dropped); `row_begin`/`row_end`
/// restrict the split to one shard band for the sharded backend's inner
/// thread ranges.
GatherShardPlan plan_gather_shards(std::span<const std::uint32_t> row_counts,
                                   std::uint64_t nonzeros,
                                   std::size_t row_begin, std::size_t row_end,
                                   std::size_t lanes);

/// Thrown when a backend cannot solve a given chain *by design* (e.g. the
/// dense backend refusing a chain above its state limit) -- as opposed to
/// failing on one.  Sweep drivers catch exactly this to skip a
/// configuration without masking genuine solver errors.
class UnsupportedChainError : public InvalidArgument {
 public:
  using InvalidArgument::InvalidArgument;
};

/// Options understood by every backend; fields irrelevant to a given
/// backend are ignored (documented per field).
struct BackendOptions {
  /// Accuracy knob: uniformisation truncation error per time increment,
  /// or the relative local-error tolerance of the adaptive stepper.  The
  /// dense backend is accurate to the Pade approximant and ignores it.
  double epsilon = 1e-10;
  /// Uniformisation rate; 0 selects 1.02 * max_exit_rate automatically.
  /// Uniformisation backend only.
  double uniformization_rate = 0.0;
  /// Re-normalise the distribution after every output point to counter
  /// accumulated round-off on long curves.
  bool renormalize = true;
  /// The dense backend refuses chains above this state count (its cost is
  /// O(states^3) per distinct increment).
  std::size_t dense_state_limit = 1024;
  /// Execution lanes of the parallel uniformisation backend; 0 auto-detects
  /// the hardware thread count.  Other backends ignore it.
  std::size_t threads = 0;
  /// When false, solve() returns an empty vector and delivers points only
  /// through the callback -- curve consumers on million-state chains avoid
  /// materialising time_points * states doubles they never read.
  bool collect_distributions = true;
  /// Fused spmv+accumulate kernels (uniformisation engines): one finishing
  /// sweep per iteration instead of a separate axpy, with the steady-state
  /// delta as a by-product.  False keeps the pre-fusion loop as the
  /// measured baseline.  Other backends ignore it.
  bool fused_kernels = true;
  /// Steady-state / absorption early termination inside the Poisson window
  /// (uniformisation engines; requires fused_kernels).  The detection
  /// error is charged against `epsilon`, so accuracy guarantees keep
  /// their order.  Other backends ignore it.
  bool steady_state_detection = true;
  /// Krylov backend: Arnoldi subspace dimension cap m.  Larger subspaces
  /// permit larger sub-steps at O(m) extra matvecs and an O(m^3) small
  /// exponential per step; ~30 is the EXPOKIT sweet spot for chains of
  /// this stiffness.  Other backends ignore it.
  std::size_t krylov_dim = 30;
  /// Krylov backend: cap on adaptive sub-steps per time increment before
  /// the solve fails with NumericalError -- a runaway-splitting guard, not
  /// a tuning knob (stiff battery chains finish in tens to hundreds of
  /// sub-steps).  Other backends ignore it.
  std::size_t krylov_max_substeps = 500000;
  /// Krylov backend: adapt the Arnoldi subspace dimension between
  /// sub-steps within [4, krylov_dim] -- grow when trial steps get
  /// rejected, shrink on sustained error-budget slack or an early
  /// invariant subspace -- so easy chains stop paying the worst-case
  /// m^2 n orthogonalisation and stiff chains stop re-stepping.  False
  /// pins m = krylov_dim (the fixed-dimension A/B baseline).  Other
  /// backends ignore it.
  bool krylov_adaptive_dim = true;
  /// Out-of-core backend: serialized-size target per streamed tile of the
  /// compacted transposed matrix (the "ooc" engine's working set is two
  /// such tiles plus O(active states) vectors).  Other backends ignore it.
  std::size_t tile_bytes = 8ull << 20;
  /// Out-of-core backend: directory for the tile spill file; empty selects
  /// $TMPDIR (falling back to /tmp).  The file is unlinked while open, so
  /// it never outlives the solve.  Other backends ignore it.
  std::string spill_dir = "";
  /// Out-of-core backend: attempt O_DIRECT when streaming tiles back
  /// (silently falls back to buffered reads plus posix_fadvise readahead
  /// on filesystems that refuse the flag, e.g. tmpfs).  Off by default:
  /// buffered streaming lets the page cache absorb whatever part of the
  /// tile file fits -- cache pages are kernel memory, so they count
  /// against neither RSS nor an address-space cap -- while O_DIRECT turns
  /// every re-streamed tile into a device round trip.  Turn it on for
  /// working sets that genuinely dwarf RAM, where cache hits are rare and
  /// cache pollution hurts the rest of the machine.  Results are bitwise
  /// identical either way.  Other backends ignore it.
  bool spill_direct_io = false;
  /// Kernel dispatch for the linalg::kernels vector layer, applied
  /// process-globally by make_backend(): "auto" keeps the current process
  /// setting (CPUID-detected unless already pinned), "scalar" / "avx2" /
  /// "avx512" pin a double tier (results are bitwise identical across
  /// them; an unavailable tier falls back to the best supported one with
  /// a stderr note), "mixed" selects the float32-gather throughput tier
  /// of the fused uniformisation kernels (deterministic, ~1e-6-level
  /// accuracy instead of bitwise).  See linalg/kernels.hpp.
  std::string kernel_dispatch = "auto";
  /// Sharded backend: worker processes the solve forks, each owning one
  /// contiguous level band of the compacted transpose.  1 still forks a
  /// single worker (the full coordinator/worker protocol runs, which is
  /// what the 1-vs-N shard perf comparison should measure).  With
  /// `threads` > 1 every worker additionally runs its own pool of that
  /// many lanes, so shards x threads composes; for this backend
  /// `threads` == 0 means one lane per worker (auto-detecting inside N
  /// workers would oversubscribe N-fold).  Other backends ignore it.
  std::size_t shards = 1;
  /// Optional cross-scenario cache of reachable closures + gather plans
  /// (engine/plan_cache.hpp), shared across the lanes of a ScenarioBatch.
  /// Null solves build their plan privately.  Honoured by the fused
  /// uniformisation engines ("parallel", "sharded"); results are
  /// bitwise independent of cache hits.
  std::shared_ptr<GatherPlanCache> plan_cache = nullptr;
};

/// Cost counters, populated by every backend after each solve().
struct BackendStats {
  /// Work unit depends on the backend: DTMC steps (= sparse matrix-vector
  /// products) for uniformisation, right-hand-side evaluations for the
  /// adaptive stepper, dense matrix-matrix products for the expm backend.
  std::uint64_t iterations = 0;
  std::uint64_t time_points = 0;
  /// Adaptive backend: steps whose error estimate forced a retry.
  std::uint64_t rejected_steps = 0;
  /// Uniformisation backend: the rate actually used; 0 elsewhere.
  double uniformization_rate = 0.0;
  /// Uniformisation engines: Poisson terms short-circuited by steady-state
  /// detection (iterations + iterations_saved == full window term count)
  /// and increments on which detection fired; 0 elsewhere.
  std::uint64_t iterations_saved = 0;
  std::uint64_t steady_state_hits = 0;
  /// Uniformisation engines: Fox-Glynn windows computed vs served from the
  /// plan cache during the last solve; 0 elsewhere.
  std::uint64_t windows_computed = 0;
  std::uint64_t windows_reused = 0;
  /// Uniformisation and krylov engines: states inside the reachable
  /// closure of the initial distribution (the dimension the hot loops
  /// iterate); equals the full state count without compaction, 0 for
  /// other backends.
  std::uint64_t active_states = 0;
  /// Uniformisation and krylov engines: stored entries of the matrix the
  /// loop actually iterates (compacted transpose when fused/compacted,
  /// full matrix otherwise); 0 for other backends.
  std::uint64_t active_nonzeros = 0;
  /// Krylov backend: largest Arnoldi subspace dimension used during the
  /// last solve (the configured cap, or less after happy breakdowns on
  /// near-invariant starts); 0 elsewhere.
  std::uint64_t krylov_dim = 0;
  /// Krylov backend: accepted adaptive sub-steps over the whole solve
  /// (each one Arnoldi factorisation); 0 elsewhere.
  std::uint64_t substeps = 0;
  /// Krylov backend: sum of dim^2 over all Arnoldi factorisations -- the
  /// orthogonalisation cost of the solve in units of the state count
  /// (the m^2 n term that dominates 1e5+-state chains), and the metric
  /// the adaptive dimension controller actually optimises; 0 elsewhere.
  std::uint64_t krylov_ortho_work = 0;
  /// Krylov backend: small Hessenberg exponentials evaluated, including
  /// rejected trial steps (each one cached-Pade evaluation); 0 elsewhere.
  std::uint64_t hessenberg_expms = 0;
  /// Structure of the matrix the hot loop iterates (the compacted
  /// transpose for the fused uniformisation and krylov engines): maximal
  /// |col - row|, rows inside >= 4-row equal-length runs -- the rows the
  /// SIMD gather grouping can take, the metric state reordering exists to
  /// raise -- and the longest such run.  0 for backends that do not
  /// report it.
  std::uint64_t matrix_bandwidth = 0;
  std::uint64_t groupable_rows = 0;
  std::uint64_t longest_uniform_run = 0;
  /// Rows whose offset pattern repeats the previous row's exactly
  /// (diagonal runs -- the structure a band-sliding kernel exploits) and
  /// the longest such run; reported by the fused uniformisation engines
  /// and the ooc backend, 0 elsewhere.
  std::uint64_t diagonal_rows = 0;
  std::uint64_t longest_diagonal_run = 0;
  /// Out-of-core backend: tiles in the spill store, tile reads issued
  /// over the whole solve, reads satisfied by the prefetched back buffer
  /// or an already-resident tile, total slab bytes streamed from disk,
  /// and the spill file's on-disk size; 0 for in-memory backends.
  std::uint64_t ooc_tiles = 0;
  std::uint64_t ooc_tile_reads = 0;
  std::uint64_t ooc_prefetch_hits = 0;
  std::uint64_t ooc_bytes_streamed = 0;
  std::uint64_t ooc_spill_bytes = 0;
  /// Sharded backend: worker processes forked, static halo exchange
  /// volume per DTMC step (8 bytes per halo row summed over every
  /// pairwise span), nanoseconds workers spent blocked on halo receives
  /// (summed over workers; the scaling-loss signal) and the band
  /// nnz imbalance max/mean (1.0 = perfectly balanced).  0 for other
  /// backends.
  std::uint64_t shards = 0;
  std::uint64_t halo_bytes_per_step = 0;
  std::uint64_t halo_wait_ns = 0;
  double shard_nnz_imbalance = 0.0;
};

/// Called with (index, time, distribution) as soon as each requested time
/// point is ready; curve consumers stream points this way instead of
/// holding all distributions.
using PointCallback =
    std::function<void(std::size_t, double, const std::vector<double>&)>;

/// Interface of a transient CTMC solver.  Implementations are stateless
/// between solve() calls except for last_stats() and internal scratch.
class TransientBackend {
 public:
  virtual ~TransientBackend() = default;

  /// Registry name of this backend ("uniformization", "adaptive", ...).
  virtual std::string_view name() const = 0;

  /// Computes pi(t) for each t in `times` (sorted ascending, >= 0) starting
  /// from the distribution `initial`.  Returns one distribution per time
  /// point and invokes `on_point` incrementally when given.
  virtual std::vector<std::vector<double>> solve(
      const markov::Ctmc& chain, const std::vector<double>& initial,
      const std::vector<double>& times,
      const PointCallback& on_point = nullptr) = 0;

  /// Counters of the most recent solve().
  virtual const BackendStats& last_stats() const = 0;

 protected:
  /// Shared argument validation (dimension, distribution, sorted times).
  static void check_arguments(const markov::Ctmc& chain,
                              const std::vector<double>& initial,
                              const std::vector<double>& times);
};

/// Factory signature for register_backend().
using BackendFactory =
    std::function<std::unique_ptr<TransientBackend>(const BackendOptions&)>;

/// Instantiates a registered backend by name; throws InvalidArgument naming
/// the known backends otherwise.
std::unique_ptr<TransientBackend> make_backend(
    std::string_view name, const BackendOptions& options = {});

/// Names of all registered backends, sorted; the built-ins are always
/// present.
std::vector<std::string> backend_names();

/// True iff `name` is a registered backend.
bool is_backend_name(std::string_view name);

/// Registers an additional backend under `name` (replacing any previous
/// registration of that name).  Built-ins are pre-registered.
void register_backend(std::string name, BackendFactory factory);

}  // namespace kibamrm::engine
