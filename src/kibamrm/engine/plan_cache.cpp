#include "kibamrm/engine/plan_cache.hpp"

#include <cstring>

#include "kibamrm/common/spill_io.hpp"

namespace kibamrm::engine {

std::shared_ptr<const CachedGatherPlan> build_cached_gather_plan(
    const linalg::CsrMatrix& generator, double rate,
    std::span<const std::uint32_t> seeds) {
  auto cached = std::make_shared<CachedGatherPlan>();
  linalg::CsrMatrix p = generator.uniformized(rate);
  cached->reachable = p.reachable_rows(seeds);
  linalg::CsrMatrix pt = p.transposed_submatrix(cached->reachable);
  p = linalg::CsrMatrix(1, 1);  // only needed for setup
  cached->structure = linalg::structure_stats(pt);
  cached->nonzeros = pt.nonzeros();
  const std::size_t n = pt.rows();
  const std::span<const std::uint32_t> row_ptr = pt.row_pointers();
  const std::span<const std::uint32_t> col_idx = pt.column_indices();
  cached->row_entry_counts.assign(n, 0);
  cached->row_col_lo.assign(n, 0);
  cached->row_col_hi.assign(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t entries = row_ptr[r + 1] - row_ptr[r];
    cached->row_entry_counts[r] = entries;
    if (entries > 0) {
      // CSR columns are sorted: first/last stored column bound the row's
      // gather footprint.
      cached->row_col_lo[r] = col_idx[row_ptr[r]];
      cached->row_col_hi[r] = col_idx[row_ptr[r + 1] - 1];
    }
  }
  cached->plan = linalg::FusedGatherPlan::build(pt);
  if (cached->plan) {
    // The packed layout replaces the CSR copy; chains that fit neither
    // compressed layout keep the transpose as the kernel fallback.
    pt = linalg::CsrMatrix(1, 1);
  }
  cached->transpose = std::move(pt);
  return cached;
}

std::uint64_t gather_plan_key(const linalg::CsrMatrix& generator, double rate,
                              std::span<const std::uint32_t> seeds) {
  const std::span<const std::uint32_t> row_ptr = generator.row_pointers();
  const std::span<const std::uint32_t> col_idx = generator.column_indices();
  const std::span<const double> values = generator.values();
  const std::uint64_t rows = generator.rows();
  std::uint64_t key = common::fnv1a64(&rows, sizeof(rows));
  key = common::fnv1a64(row_ptr.data(), row_ptr.size_bytes(), key);
  key = common::fnv1a64(col_idx.data(), col_idx.size_bytes(), key);
  key = common::fnv1a64(values.data(), values.size_bytes(), key);
  key = common::fnv1a64(&rate, sizeof(rate), key);
  key = common::fnv1a64(seeds.data(), seeds.size_bytes(), key);
  return key;
}

std::shared_ptr<const CachedGatherPlan> GatherPlanCache::obtain(
    const linalg::CsrMatrix& generator, double rate,
    std::span<const std::uint32_t> seeds) {
  const std::uint64_t key = gather_plan_key(generator, rate, seeds);
  {
    common::MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end() &&
        it->second->reachable.size() <= generator.rows()) {
      ++reused_;
      return it->second;
    }
  }
  // Build outside the lock: plan construction walks the whole generator,
  // and concurrent lanes building distinct chains must not serialise.
  std::shared_ptr<const CachedGatherPlan> built =
      build_cached_gather_plan(generator, rate, seeds);
  common::MutexLock lock(mutex_);
  std::shared_ptr<const CachedGatherPlan>& slot = entries_[key];
  if (slot && slot->reachable.size() <= generator.rows()) {
    // A racing lane inserted first; adopt its copy (byte-identical --
    // the build is deterministic).
    ++reused_;
    return slot;
  }
  slot = built;
  ++built_;
  return built;
}

std::uint64_t GatherPlanCache::plans_built() const {
  common::MutexLock lock(mutex_);
  return built_;
}

std::uint64_t GatherPlanCache::plans_reused() const {
  common::MutexLock lock(mutex_);
  return reused_;
}

}  // namespace kibamrm::engine
