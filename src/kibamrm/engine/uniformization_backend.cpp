#include "kibamrm/engine/uniformization_backend.hpp"

#include "kibamrm/markov/uniformization.hpp"

namespace kibamrm::engine {

UniformizationBackend::UniformizationBackend(BackendOptions options)
    : options_(options) {}

std::vector<std::vector<double>> UniformizationBackend::solve(
    const markov::Ctmc& chain, const std::vector<double>& initial,
    const std::vector<double>& times, const PointCallback& on_point) {
  markov::TransientOptions transient;
  transient.epsilon = options_.epsilon;
  transient.uniformization_rate = options_.uniformization_rate;
  transient.renormalize = options_.renormalize;
  transient.collect_results = options_.collect_distributions;
  markov::TransientSolver solver(chain, transient);
  auto results = solver.solve(initial, times, on_point);

  stats_ = BackendStats{};
  stats_.iterations = solver.last_stats().iterations;
  stats_.time_points = solver.last_stats().time_points;
  stats_.uniformization_rate = solver.last_stats().uniformization_rate;
  return results;
}

}  // namespace kibamrm::engine
