#include "kibamrm/engine/uniformization_backend.hpp"

#include "kibamrm/markov/uniformization.hpp"

namespace kibamrm::engine {

UniformizationBackend::UniformizationBackend(BackendOptions options)
    : options_(options) {}

std::vector<std::vector<double>> UniformizationBackend::solve(
    const markov::Ctmc& chain, const std::vector<double>& initial,
    const std::vector<double>& times, const PointCallback& on_point) {
  markov::TransientOptions transient;
  transient.epsilon = options_.epsilon;
  transient.uniformization_rate = options_.uniformization_rate;
  transient.renormalize = options_.renormalize;
  transient.collect_results = options_.collect_distributions;
  transient.fused_kernels = options_.fused_kernels;
  transient.steady_state_detection = options_.steady_state_detection;
  markov::TransientSolver solver(chain, transient);
  auto results = solver.solve(initial, times, on_point);

  stats_ = BackendStats{};
  stats_.iterations = solver.last_stats().iterations;
  stats_.time_points = solver.last_stats().time_points;
  stats_.uniformization_rate = solver.last_stats().uniformization_rate;
  stats_.iterations_saved = solver.last_stats().iterations_saved;
  stats_.steady_state_hits = solver.last_stats().steady_state_hits;
  stats_.windows_computed = solver.last_stats().windows_computed;
  stats_.windows_reused = solver.last_stats().windows_reused;
  stats_.active_states = solver.last_stats().active_states;
  stats_.active_nonzeros = solver.last_stats().active_nonzeros;
  stats_.matrix_bandwidth = solver.last_stats().matrix_bandwidth;
  stats_.groupable_rows = solver.last_stats().groupable_rows;
  stats_.longest_uniform_run = solver.last_stats().longest_uniform_run;
  stats_.diagonal_rows = solver.last_stats().diagonal_rows;
  stats_.longest_diagonal_run = solver.last_stats().longest_diagonal_run;
  return results;
}

}  // namespace kibamrm::engine
