#include "kibamrm/engine/sharded_backend.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include "kibamrm/common/error.hpp"
#include "kibamrm/common/shm_channel.hpp"
#include "kibamrm/common/thread_pool.hpp"
#include "kibamrm/engine/plan_cache.hpp"
#include "kibamrm/linalg/kernels.hpp"
#include "kibamrm/linalg/shard_plan.hpp"
#include "kibamrm/linalg/vector_ops.hpp"

namespace kibamrm::engine {

namespace {

// Wire protocol between the coordinator and its workers.  Every frame
// rides a ShmChannel ring with the length/type/checksum header; the
// payloads below are fixed-layout PODs or raw double spans.
enum FrameType : std::uint32_t {
  kFrameHalo = 1,     // doubles: one halo span of the power vector
  kFrameDelta = 2,    // double: band sup-norm delta of one product
  kFrameVerdict = 3,  // VerdictPayload: steady-state decision for the step
  kFrameSlice = 4,    // doubles: the worker's band of pi(t_k)
  kFrameScale = 5,    // double: renormalisation factor 1/sum
  kFrameStats = 6,    // StatsPayload: end-of-solve telemetry
  kFrameError = 7,    // bytes: worker exception message (best effort)
};

struct VerdictPayload {
  double residual = 0.0;  // Fox-Glynn tail mass to fold in when stopping
  std::uint32_t stop = 0;
  std::uint32_t pad = 0;
};

struct StatsPayload {
  std::uint64_t halo_wait_ns = 0;
  std::uint64_t halo_bytes = 0;
};

// Everything a worker needs, built before fork() and inherited
// copy-on-write: the channel rings are shared mappings, the rest are
// plain read-only pages the kernel never has to duplicate.
struct SharedSetup {
  const BackendOptions* options = nullptr;
  const CachedGatherPlan* cached = nullptr;
  const linalg::ShardPlan* shard_plan = nullptr;
  const std::vector<double>* times = nullptr;
  std::vector<double> initial_compact;
  double rate = 0.0;
  bool detect = false;
  std::size_t inner_lanes = 1;
  std::vector<common::ShmChannel> to_coord;    // one per worker
  std::vector<common::ShmChannel> from_coord;  // one per worker
  std::vector<common::ShmChannel> halo;        // one per plan halo span
};

struct WorkerProc {
  pid_t pid = -1;
  bool reaped = false;
  int status = 0;
};

/// True while the worker process exists; sticky once waitpid() has
/// reaped it (a second waitpid on a reaped pid reports ECHILD, which
/// must not read as "alive again").
bool worker_alive(WorkerProc& worker) {
  if (worker.reaped) return false;
  int status = 0;
  const pid_t r = ::waitpid(worker.pid, &status, WNOHANG);
  if (r == worker.pid) {
    worker.reaped = true;
    worker.status = status;
    return false;
  }
  return true;
}

/// True once the worker has died *abnormally* (signal, or a non-zero exit
/// status).  A clean exit(0) is not a failure: the worker only reaches it
/// after its last frame is in the ring, so a fast worker finishing while
/// the coordinator still drains a slow one must not abort the solve.
bool worker_failed(WorkerProc& worker) {
  if (worker_alive(worker)) return false;
  return !WIFEXITED(worker.status) || WEXITSTATUS(worker.status) != 0;
}

/// Kills and reaps every still-running worker on scope exit, so an
/// exception anywhere in the coordinator (IpcError from a dead peer,
/// NumericalError from renormalisation) never strands child processes.
class WorkerReaper {
 public:
  explicit WorkerReaper(std::vector<WorkerProc>& workers)
      : workers_(workers) {}
  ~WorkerReaper() {
    for (WorkerProc& worker : workers_) {
      if (worker.pid <= 0 || worker.reaped) continue;
      ::kill(worker.pid, SIGKILL);
      ::waitpid(worker.pid, &worker.status, 0);
      worker.reaped = true;
    }
  }
  WorkerReaper(const WorkerReaper&) = delete;
  WorkerReaper& operator=(const WorkerReaper&) = delete;

 private:
  std::vector<WorkerProc>& workers_;
};

// Test-only fault injection: KIBAMRM_SHARDED_FAULT="exit:<shard>[:<min
// states>]" makes that worker _exit(3) before the solve loop, but only
// for chains of at least <min states> rows -- the batch-isolation test
// uses the floor to crash one scenario of a sweep and not the others.
struct FaultSpec {
  std::size_t shard = 0;
  std::size_t min_states = 0;
};

std::optional<FaultSpec> parse_fault_env() {
  const char* raw = std::getenv("KIBAMRM_SHARDED_FAULT");
  if (raw == nullptr || std::strncmp(raw, "exit:", 5) != 0) {
    return std::nullopt;
  }
  FaultSpec spec;
  char* end = nullptr;
  spec.shard = std::strtoul(raw + 5, &end, 10);
  if (end != nullptr && *end == ':') {
    spec.min_states = std::strtoul(end + 1, nullptr, 10);
  }
  return spec;
}

void expect_worker_frame(common::ShmChannel& channel, common::ShmFrame& frame,
                         std::uint32_t want, std::size_t payload_bytes) {
  channel.recv(frame);
  if (frame.type != want || frame.payload.size() != payload_bytes) {
    throw IpcError("sharded worker: unexpected frame " +
                   std::to_string(frame.type) + " from coordinator");
  }
}

/// The worker body: iterate this shard's band of the compacted
/// transpose, exchanging halo rows with peers and deltas/verdicts with
/// the coordinator.  Runs in the forked child; never returns normally --
/// the caller _exit()s.
void run_worker(SharedSetup& shared, std::size_t shard) {
#if defined(__linux__)
  // Die with the coordinator: a crashed or killed parent must not leave
  // workers futex-waiting on rings nobody will ever fill again.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1) ::_exit(4);  // parent died before the prctl
#endif
  const BackendOptions& options = *shared.options;
  const CachedGatherPlan& cached = *shared.cached;
  const linalg::ShardPlan& plan = *shared.shard_plan;
  const linalg::ShardBand& band = plan.bands()[shard];
  const std::size_t n_rows = cached.rows();
  const std::size_t r0 = band.row_begin;
  const std::size_t band_rows = band.rows();

  if (const std::optional<FaultSpec> fault = parse_fault_env();
      fault && fault->shard == shard && n_rows >= fault->min_states) {
    ::_exit(3);
  }

  // This worker's halo traffic, in the deterministic plan order: spans
  // it owns (sends) and spans it subscribes to (receives).  Each span
  // has a dedicated ring, so send/recv order per ring is total.
  struct WorkerSpan {
    std::size_t channel;
    std::size_t begin;
    std::size_t end;
  };
  std::vector<WorkerSpan> sends;
  std::vector<WorkerSpan> recvs;
  const std::span<const linalg::HaloSpan> spans = plan.halo_spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].source == shard) {
      sends.push_back({i, spans[i].begin, spans[i].end});
    }
    if (spans[i].dest == shard) {
      recvs.push_back({i, spans[i].begin, spans[i].end});
    }
  }

  common::ShmChannel& up = shared.to_coord[shard];
  common::ShmChannel& down = shared.from_coord[shard];

  // Thread-level split of the band, same policy as the parallel
  // backend's pool split.  Boundaries are not snapped to gather-plan
  // segments (that helper requires full-matrix coverage); per-row
  // arithmetic is partition-independent, so this only costs partial
  // SIMD groups at lane edges, never a bit of the result.
  const GatherShardPlan inner =
      plan_gather_shards(cached.row_entry_counts, band.nonzeros, r0,
                         band.row_end, shared.inner_lanes);
  std::unique_ptr<common::ThreadPool> pool;
  if (inner.use_pool) {
    pool = std::make_unique<common::ThreadPool>(shared.inner_lanes);
  }
  const std::vector<std::size_t>& ranges = inner.ranges;
  const std::size_t lane_shards = ranges.size() - 1;
  std::vector<double> lane_deltas(lane_shards, 0.0);

  // Full-dimension scratch: the gather reads power[] across the band's
  // column footprint, so the vectors keep loop dimension; only the band
  // and the subscribed halo spans are ever current, the rest is inert.
  std::vector<double> current = shared.initial_compact;
  std::vector<double> power(n_rows, 0.0);
  std::vector<double> next(n_rows, 0.0);
  std::vector<double> accum(n_rows, 0.0);

  markov::UniformizationPlan windows;
  common::ShmFrame frame;
  std::uint64_t halo_wait_ns = 0;
  std::uint64_t halo_bytes = 0;

  const auto send_halos = [&] {
    for (const WorkerSpan& w : sends) {
      const std::size_t bytes = (w.end - w.begin) * sizeof(double);
      shared.halo[w.channel].send(kFrameHalo, power.data() + w.begin, bytes);
      halo_bytes += bytes;
    }
  };
  const auto recv_halos = [&] {
    if (recvs.empty()) return;
    const auto start = std::chrono::steady_clock::now();
    for (const WorkerSpan& w : recvs) {
      expect_worker_frame(shared.halo[w.channel], frame, kFrameHalo,
                          (w.end - w.begin) * sizeof(double));
      std::memcpy(power.data() + w.begin, frame.payload.data(),
                  frame.payload.size());
    }
    halo_wait_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };
  const auto fused_range = [&](std::size_t begin, std::size_t end,
                               double weight) {
    if (cached.plan) {
      return cached.plan->multiply_fused_range(power, next, accum, weight,
                                               begin, end);
    }
    return cached.transpose.multiply_fused_range(power, next, accum, weight,
                                                 begin, end);
  };

  const std::vector<double>& times = *shared.times;
  double current_time = 0.0;
  for (std::size_t idx = 0; idx < times.size(); ++idx) {
    const double dt = times[idx] - current_time;
    if (dt > 0.0) {
      const double lambda = shared.rate * dt;
      const std::shared_ptr<const markov::PoissonWindow> window_ptr =
          windows.window(lambda, options.epsilon);
      const markov::PoissonWindow& window = *window_ptr;
      linalg::fill(accum, 0.0);
      std::copy(current.begin(), current.end(), power.begin());
      // Refresh the footprint before the first product: after a
      // renormalised increment only the band of `current` is live here,
      // the owners hold the rest.
      send_halos();
      recv_halos();
      if (window.left == 0) {
        linalg::kernels::axpy(window.weight(0), current.data() + r0,
                              accum.data() + r0, band_rows);
      }
      for (std::uint64_t n = 1; n <= window.right; ++n) {
        const double weight = n >= window.left ? window.weight(n) : 0.0;
        double delta = 0.0;
        if (inner.use_pool) {
          pool->parallel_for(lane_shards,
                             [&](std::size_t lane_shard, std::size_t) {
                               lane_deltas[lane_shard] =
                                   fused_range(ranges[lane_shard],
                                               ranges[lane_shard + 1], weight);
                             });
          for (const double lane_delta : lane_deltas) {
            delta = std::max(delta, lane_delta);
          }
        } else {
          delta = fused_range(r0, band.row_end, weight);
        }
        power.swap(next);
        if (n < window.right) {
          // Sends strictly precede receives and every ring holds two
          // full frames, so the per-step neighbour exchange cannot
          // deadlock (peers drift by at most one step).
          send_halos();
          if (shared.detect) {
            up.send(kFrameDelta, &delta, sizeof(delta));
          }
          recv_halos();
          if (shared.detect) {
            expect_worker_frame(down, frame, kFrameVerdict,
                                sizeof(VerdictPayload));
            VerdictPayload verdict;
            std::memcpy(&verdict, frame.payload.data(), sizeof(verdict));
            if (verdict.stop != 0) {
              if (verdict.residual > 0.0) {
                linalg::kernels::axpy(verdict.residual, power.data() + r0,
                                      accum.data() + r0, band_rows);
              }
              break;
            }
          }
        }
      }
      current.swap(accum);
      up.send(kFrameSlice, current.data() + r0, band_rows * sizeof(double));
      if (options.renormalize) {
        // The coordinator sums the assembled vector (serial Kahan, same
        // order as normalize_probability) and broadcasts one factor;
        // scaling is elementwise, so band-local application is bitwise
        // identical to whole-vector scaling.
        expect_worker_frame(down, frame, kFrameScale, sizeof(double));
        double alpha = 0.0;
        std::memcpy(&alpha, frame.payload.data(), sizeof(alpha));
        linalg::kernels::scale(current.data() + r0, alpha, band_rows);
      }
      current_time = times[idx];
    }
  }
  const StatsPayload stats{halo_wait_ns, halo_bytes};
  up.send(kFrameStats, &stats, sizeof(stats));
}

[[noreturn]] void worker_main(SharedSetup& shared, std::size_t shard) {
  try {
    run_worker(shared, shard);
  } catch (const std::exception& error) {
    // Best effort: the coordinator also notices the death through its
    // waitpid alive-poll if this frame cannot be delivered.
    const char* what = error.what();
    try {
      shared.to_coord[shard].send(kFrameError, what, std::strlen(what),
                                  nullptr, std::uint64_t{1000000000});
    } catch (const Error&) {
      // ring wedged or peer gone; exit status carries the failure
    }
    ::_exit(2);
  }
  // _exit, never exit(): the child inherited the parent's atexit chain
  // and static destructors, which must run exactly once, in the parent.
  ::_exit(0);
}

}  // namespace

ShardedBackend::ShardedBackend(BackendOptions options)
    : options_(options),
      shards_(std::max<std::size_t>(std::size_t{1}, options.shards)) {
  KIBAMRM_REQUIRE(options_.epsilon > 0.0 && options_.epsilon < 1.0,
                  "transient epsilon must lie in (0,1)");
}

std::vector<std::vector<double>> ShardedBackend::solve(
    const markov::Ctmc& chain, const std::vector<double>& initial,
    const std::vector<double>& times, const PointCallback& on_point) {
  check_arguments(chain, initial, times);
  if (!options_.fused_kernels) {
    throw UnsupportedChainError(
        "sharded backend requires fused kernels; use the parallel engine "
        "for the unfused baseline loop");
  }

  double rate = options_.uniformization_rate;
  if (rate == 0.0) {
    rate = 1.02 * chain.max_exit_rate();
    if (rate == 0.0) rate = 1.0;  // generator is all-absorbing
  }
  KIBAMRM_REQUIRE(rate * (1.0 + 1e-12) >= chain.max_exit_rate(),
                  "uniformization rate below maximal exit rate");

  std::vector<std::uint32_t> seeds;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    if (initial[i] != 0.0) seeds.push_back(static_cast<std::uint32_t>(i));
  }
  // Setup is the same block the parallel backend runs (uniformise,
  // closure, compacted transpose, gather plan); through the batch-shared
  // cache a whole sweep of identical Q*-structures builds it once.
  const std::shared_ptr<const CachedGatherPlan> cached =
      options_.plan_cache
          ? options_.plan_cache->obtain(chain.generator(), rate, seeds)
          : build_cached_gather_plan(chain.generator(), rate, seeds);
  const std::size_t n_rows = cached->rows();

  const linalg::ShardPlan shard_plan = linalg::ShardPlan::build(
      cached->row_entry_counts, cached->row_col_lo, cached->row_col_hi,
      shards_);

  stats_ = BackendStats{};
  stats_.uniformization_rate = rate;
  stats_.time_points = times.size();
  stats_.active_states = cached->reachable.size();
  stats_.active_nonzeros = cached->nonzeros;
  stats_.matrix_bandwidth = cached->structure.bandwidth;
  stats_.groupable_rows = cached->structure.groupable_rows;
  stats_.longest_uniform_run = cached->structure.longest_uniform_run;
  stats_.diagonal_rows = cached->structure.diagonal_rows;
  stats_.longest_diagonal_run = cached->structure.longest_diagonal_run;
  stats_.shards = shards_;
  stats_.halo_bytes_per_step = shard_plan.halo_bytes_per_step();
  stats_.shard_nnz_imbalance = shard_plan.nnz_imbalance();
  const std::uint64_t windows_computed_before = plan_.windows_computed();
  const std::uint64_t windows_reused_before = plan_.windows_reused();

  SharedSetup shared;
  shared.options = &options_;
  shared.cached = cached.get();
  shared.shard_plan = &shard_plan;
  shared.times = &times;
  shared.rate = rate;
  // detect is unconditional here: the backend rejects unfused solves
  // above, and the fused sweep always yields the delta.
  shared.detect = options_.steady_state_detection;
  // threads == 0 means one lane per worker, not auto-detect: N workers
  // each auto-sizing to the whole machine would oversubscribe it N-fold.
  shared.inner_lanes = options_.threads == 0 ? 1 : options_.threads;
  shared.initial_compact.resize(n_rows);
  for (std::size_t i = 0; i < n_rows; ++i) {
    shared.initial_compact[i] = initial[cached->reachable[i]];
  }

  // Rings sized so no well-formed frame ever blocks on capacity: the
  // worker->coordinator ring holds a full band slice, halo rings hold
  // two span frames (maximum in-flight under the one-step skew bound).
  std::size_t max_band_rows = 0;
  for (const linalg::ShardBand& band : shard_plan.bands()) {
    max_band_rows = std::max(max_band_rows, band.rows());
  }
  const std::size_t up_capacity =
      std::max<std::size_t>(4096, common::kShmFrameHeaderBytes +
                                      max_band_rows * sizeof(double) + 64);
  shared.to_coord.reserve(shards_);
  shared.from_coord.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    shared.to_coord.push_back(common::ShmChannel::create(up_capacity));
    shared.from_coord.push_back(common::ShmChannel::create(4096));
  }
  shared.halo.reserve(shard_plan.halo_spans().size());
  for (const linalg::HaloSpan& span : shard_plan.halo_spans()) {
    shared.halo.push_back(common::ShmChannel::create(
        2 * (common::kShmFrameHeaderBytes + span.rows() * sizeof(double)) +
        64));
  }

  std::vector<WorkerProc> workers(shards_);
  WorkerReaper reaper(workers);
  for (std::size_t s = 0; s < shards_; ++s) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw IpcError(std::string("sharded backend: fork failed: ") +
                     std::strerror(errno));
    }
    if (pid == 0) {
      worker_main(shared, s);  // [[noreturn]]
    }
    workers[s].pid = pid;
  }

  common::ShmFrame frame;
  // Every coordinator wait polls the *whole fleet*, not just its own peer:
  // a crashed worker deadlocks its halo neighbours (they block on a halo
  // frame that will never come), and the frame the coordinator is waiting
  // for may be stalled on one of those still-alive-but-wedged channels.
  // Only abnormal deaths abort the wait -- a worker exiting 0 has already
  // put its last frame in the ring.
  const auto fleet_healthy = [&] {
    for (WorkerProc& worker : workers) {
      if (worker_failed(worker)) return false;
    }
    return true;
  };
  // Names the first crashed worker (the root cause) rather than the
  // channel the coordinator happened to be waiting on.
  const auto rethrow_naming_dead_worker = [&](std::size_t s,
                                             const IpcError& error) {
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (worker_failed(workers[w])) {
        throw IpcError("sharded worker " + std::to_string(w) +
                       " died mid-solve: " + error.what());
      }
    }
    throw IpcError("sharded worker " + std::to_string(s) + ": " +
                   error.what());
  };
  const auto recv_from = [&](std::size_t s, std::uint32_t want,
                             std::size_t payload_bytes) {
    try {
      shared.to_coord[s].recv(frame, fleet_healthy);
    } catch (const IpcError& error) {
      rethrow_naming_dead_worker(s, error);
    }
    if (frame.type == kFrameError) {
      throw IpcError("sharded worker " + std::to_string(s) + " failed: " +
                     std::string(reinterpret_cast<const char*>(
                                     frame.payload.data()),
                                 frame.payload.size()));
    }
    if (frame.type != want || frame.payload.size() != payload_bytes) {
      throw IpcError("sharded worker " + std::to_string(s) +
                     ": unexpected frame type " + std::to_string(frame.type));
    }
  };
  const auto send_to = [&](std::size_t s, std::uint32_t type,
                           const void* payload, std::size_t bytes) {
    try {
      shared.from_coord[s].send(type, payload, bytes, fleet_healthy);
    } catch (const IpcError& error) {
      rethrow_naming_dead_worker(s, error);
    }
  };

  std::vector<std::vector<double>> results;
  if (options_.collect_distributions) results.reserve(times.size());
  assembled_ = shared.initial_compact;
  full_point_.assign(initial.size(), 0.0);

  // The coordinator replicates the parallel backend's per-increment
  // bookkeeping exactly (iterations, calm-step guard, residual, hits) --
  // the bitwise and iteration-equality tests in test_engine_sharded.cpp
  // fail on any divergence.  Workers recompute identical Fox-Glynn
  // windows locally, so only deltas and verdicts cross the channel.
  const bool detect = shared.detect;
  const double threshold = options_.epsilon / 2.0;
  double current_time = 0.0;
  for (std::size_t idx = 0; idx < times.size(); ++idx) {
    const double dt = times[idx] - current_time;
    if (dt > 0.0) {
      const double lambda = rate * dt;
      const std::shared_ptr<const markov::PoissonWindow> window_ptr =
          plan_.window(lambda, options_.epsilon);
      const markov::PoissonWindow& window = *window_ptr;
      std::uint64_t calm_steps = 0;
      for (std::uint64_t n = 1; n <= window.right; ++n) {
        ++stats_.iterations;
        if (!detect || n >= window.right) continue;
        double delta = 0.0;
        for (std::size_t s = 0; s < shards_; ++s) {
          recv_from(s, kFrameDelta, sizeof(double));
          double band_delta = 0.0;
          std::memcpy(&band_delta, frame.payload.data(), sizeof(band_delta));
          delta = std::max(delta, band_delta);
        }
        VerdictPayload verdict;
        if (static_cast<double>(window.right - n) * delta <= threshold) {
          if (++calm_steps >= 2) {
            verdict.stop = 1;
            double residual = 0.0;
            for (std::uint64_t m = n + 1; m <= window.right; ++m) {
              // kibamrm-lint: allow(reduction-contract) single-threaded sum of Fox-Glynn tail weights in fixed ascending m order; no thread-count dependence
              residual += window.weight(m);
            }
            verdict.residual = residual;
          }
        } else {
          calm_steps = 0;
        }
        for (std::size_t s = 0; s < shards_; ++s) {
          send_to(s, kFrameVerdict, &verdict, sizeof(verdict));
        }
        if (verdict.stop != 0) {
          stats_.iterations_saved += window.right - n;
          ++stats_.steady_state_hits;
          break;
        }
      }
      for (std::size_t s = 0; s < shards_; ++s) {
        const linalg::ShardBand& band = shard_plan.bands()[s];
        recv_from(s, kFrameSlice, band.rows() * sizeof(double));
        std::memcpy(assembled_.data() + band.row_begin, frame.payload.data(),
                    frame.payload.size());
      }
      if (options_.renormalize) {
        // Same serial Kahan sum over the same element order as
        // normalize_probability on the single-process backends.
        const double total = linalg::sum(assembled_);
        if (!(total > 0.0)) {
          throw NumericalError(
              "normalize_probability: vector sum is not positive");
        }
        const double alpha = 1.0 / total;
        for (std::size_t s = 0; s < shards_; ++s) {
          send_to(s, kFrameScale, &alpha, sizeof(alpha));
        }
        linalg::scale(assembled_, alpha);
      }
      current_time = times[idx];
    }
    if (options_.collect_distributions || on_point) {
      for (std::size_t i = 0; i < n_rows; ++i) {
        full_point_[cached->reachable[i]] = assembled_[i];
      }
      if (options_.collect_distributions) results.push_back(full_point_);
      if (on_point) on_point(idx, times[idx], full_point_);
    }
  }

  for (std::size_t s = 0; s < shards_; ++s) {
    recv_from(s, kFrameStats, sizeof(StatsPayload));
    StatsPayload worker_stats;
    std::memcpy(&worker_stats, frame.payload.data(), sizeof(worker_stats));
    stats_.halo_wait_ns += worker_stats.halo_wait_ns;
  }
  for (std::size_t s = 0; s < shards_; ++s) {
    WorkerProc& worker = workers[s];
    if (!worker.reaped) {
      ::waitpid(worker.pid, &worker.status, 0);
      worker.reaped = true;
    }
    if (!WIFEXITED(worker.status) || WEXITSTATUS(worker.status) != 0) {
      throw IpcError("sharded worker " + std::to_string(s) +
                     " exited abnormally");
    }
  }

  stats_.windows_computed = plan_.windows_computed() - windows_computed_before;
  stats_.windows_reused = plan_.windows_reused() - windows_reused_before;
  return results;
}

}  // namespace kibamrm::engine
