#include "kibamrm/engine/parallel_backend.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "kibamrm/engine/plan_cache.hpp"
#include "kibamrm/linalg/fused_gather.hpp"
#include "kibamrm/linalg/kernels.hpp"
#include "kibamrm/linalg/permutation.hpp"
#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/markov/fox_glynn.hpp"

namespace kibamrm::engine {

ParallelUniformizationBackend::ParallelUniformizationBackend(
    BackendOptions options)
    : options_(options),
      pool_(std::make_unique<common::ThreadPool>(options.threads)) {
  KIBAMRM_REQUIRE(options_.epsilon > 0.0 && options_.epsilon < 1.0,
                  "transient epsilon must lie in (0,1)");
}

std::vector<std::vector<double>> ParallelUniformizationBackend::solve(
    const markov::Ctmc& chain, const std::vector<double>& initial,
    const std::vector<double>& times, const PointCallback& on_point) {
  check_arguments(chain, initial, times);

  double rate = options_.uniformization_rate;
  if (rate == 0.0) {
    rate = 1.02 * chain.max_exit_rate();
    if (rate == 0.0) rate = 1.0;  // generator is all-absorbing
  }
  KIBAMRM_REQUIRE(rate * (1.0 + 1e-12) >= chain.max_exit_rate(),
                  "uniformization rate below maximal exit rate");
  const bool fused = options_.fused_kernels;
  // The fused path mirrors markov::TransientSolver: restrict the loop to
  // the reachable closure of the initial support (expanded battery chains
  // reach only ~half their states from the full-charge start) and run the
  // compressed gather plan over the compacted transpose of P; the closure
  // and the compaction are independent of the thread count, so the
  // bitwise-determinism guarantee is untouched.  That immutable setup
  // block lives in engine/plan_cache.hpp: with a batch-shared cache in
  // options_.plan_cache a sweep of identical Q*-structures builds it
  // once (the cached copy is byte-identical to a private build, so
  // curves cannot change).  The baseline path keeps the full transpose,
  // uncached.  Each output entry of the gather is private to exactly one
  // shard either way.
  std::shared_ptr<const CachedGatherPlan> cached;
  linalg::CsrMatrix pt(1, 1);
  if (fused) {
    std::vector<std::uint32_t> seeds;
    for (std::size_t i = 0; i < initial.size(); ++i) {
      if (initial[i] != 0.0) seeds.push_back(static_cast<std::uint32_t>(i));
    }
    cached = options_.plan_cache
                 ? options_.plan_cache->obtain(chain.generator(), rate, seeds)
                 : build_cached_gather_plan(chain.generator(), rate, seeds);
  } else {
    pt = chain.generator().uniformized(rate).transposed();
  }
  const linalg::StructureStats structure =
      fused ? cached->structure : linalg::StructureStats{};
  // Compressed kernel plan (dictionary values + int16 offsets): bitwise
  // identical arithmetic to the CSR gather at roughly a third of the
  // memory traffic; chains that do not compress fall back to the CSR
  // transpose the cache retains.
  const std::optional<linalg::FusedGatherPlan> no_plan;
  const std::optional<linalg::FusedGatherPlan>& plan =
      fused ? cached->plan : no_plan;
  const std::size_t loop_rows = fused ? cached->rows() : pt.rows();
  const std::size_t loop_nonzeros = fused ? cached->nonzeros : pt.nonzeros();
  // Shared shard policy (see plan_gather_shards): oversubscribed
  // nnz-balanced ranges over the pool, or inline below the pool-wake
  // threshold -- the gather arithmetic is identical either way, results
  // stay bitwise equal.  The fused path splits off the cached per-row
  // entry counts (same fair-share walk as the CSR overload).
  GatherShardPlan shards =
      fused ? plan_gather_shards(cached->row_entry_counts, cached->nonzeros,
                                 0, loop_rows, pool_->thread_count())
            : plan_gather_shards(pt, pool_->thread_count());
  const bool use_pool = shards.use_pool;
  // Snap shard boundaries onto uniform-segment edges (ROADMAP 3c): a
  // boundary inside a segment costs partial SIMD groups at both shard
  // edges.  Per-row arithmetic is partition-independent, so this only
  // moves work, never changes a bit.
  if (plan && use_pool) {
    plan->align_ranges_to_segments(shards.ranges);
  }
  const std::vector<std::size_t>& ranges = shards.ranges;
  const std::size_t shard_count = shards.shard_count();

  // Mixed tier (see markov::TransientSolver): float32 power iteration with
  // double accumulation, only where the row-offset gather plan provides the
  // float kernel; sharding is unchanged -- each output entry is private to
  // one shard, so the thread-count determinism guarantee carries over.
  const bool mixed =
      fused && plan && plan->mixed_supported() &&
      linalg::kernels::active_dispatch() == linalg::kernels::Dispatch::kMixed;

  stats_ = BackendStats{};
  stats_.uniformization_rate = rate;
  stats_.time_points = times.size();
  const std::uint64_t windows_computed_before = plan_.windows_computed();
  const std::uint64_t windows_reused_before = plan_.windows_reused();

  const bool detect = options_.steady_state_detection && fused;
  const double threshold = options_.epsilon / 2.0;
  stats_.active_states = fused ? cached->reachable.size() : initial.size();
  stats_.active_nonzeros = loop_nonzeros;
  stats_.matrix_bandwidth = structure.bandwidth;
  stats_.groupable_rows = structure.groupable_rows;
  stats_.longest_uniform_run = structure.longest_uniform_run;
  stats_.diagonal_rows = structure.diagonal_rows;
  stats_.longest_diagonal_run = structure.longest_diagonal_run;

  std::vector<std::vector<double>> results;
  if (options_.collect_distributions) results.reserve(times.size());

  std::vector<double> current;  // pi(t_k), in loop space
  if (fused) {
    const std::vector<std::uint32_t>& reachable = cached->reachable;
    current.resize(reachable.size());
    for (std::size_t i = 0; i < reachable.size(); ++i) {
      current[i] = initial[reachable[i]];
    }
    full_point_.assign(initial.size(), 0.0);
  } else {
    current = initial;
  }
  next_.assign(current.size(), 0.0);
  accum_.assign(current.size(), 0.0);
  shard_deltas_.assign(shard_count, 0.0);
  double current_time = 0.0;

  // Expands the compacted loop vector into full_point_ for results and
  // callbacks; pass-through in baseline mode.
  const auto emit_view =
      [&](const std::vector<double>& point) -> const std::vector<double>& {
    if (!fused) return point;
    const std::vector<std::uint32_t>& reachable = cached->reachable;
    for (std::size_t i = 0; i < reachable.size(); ++i) {
      full_point_[reachable[i]] = point[i];
    }
    return full_point_;
  };

  for (std::size_t idx = 0; idx < times.size(); ++idx) {
    const double dt = times[idx] - current_time;
    if (dt > 0.0) {
      const double lambda = rate * dt;
      const std::shared_ptr<const markov::PoissonWindow> window_ptr =
          plan_.window(lambda, options_.epsilon);
      const markov::PoissonWindow& window = *window_ptr;
      linalg::fill(accum_, 0.0);
      if (mixed) {
        power_f_.resize(current.size());
        next_f_.resize(current.size());
        for (std::size_t i = 0; i < current.size(); ++i) {
          power_f_[i] = static_cast<float>(current[i]);
        }
      } else {
        power_ = current;
      }
      // n = 0 term (current == pi(t_k) exactly; in mixed mode the double
      // vector feeds the accumulator so the n = 0 term is full precision).
      if (window.left == 0) {
        linalg::axpy(window.weight(0), current, accum_);
      }
      std::uint64_t calm_steps = 0;  // consecutive steps inside the budget
      for (std::uint64_t n = 1; n <= window.right; ++n) {
        const double weight = n >= window.left ? window.weight(n) : 0.0;
        double delta = 0.0;
        if (fused) {
          const auto fused_range = [&](std::size_t begin, std::size_t end) {
            if (mixed) {
              return plan->multiply_fused_range_mixed(power_f_, next_f_,
                                                      accum_, weight, begin,
                                                      end);
            }
            return plan ? plan->multiply_fused_range(power_, next_, accum_,
                                                     weight, begin, end)
                        : cached->transpose.multiply_fused_range(
                              power_, next_, accum_, weight, begin, end);
          };
          if (use_pool) {
            pool_->parallel_for(
                shard_count, [&](std::size_t shard, std::size_t /*lane*/) {
                  shard_deltas_[shard] =
                      fused_range(ranges[shard], ranges[shard + 1]);
                });
            for (const double shard_delta : shard_deltas_) {
              delta = std::max(delta, shard_delta);
            }
          } else {
            delta = fused_range(0, loop_rows);
          }
          if (mixed) {
            power_f_.swap(next_f_);
          } else {
            power_.swap(next_);
          }
        } else {
          if (use_pool) {
            pool_->parallel_for(
                shard_count, [&](std::size_t shard, std::size_t /*lane*/) {
                  pt.multiply_range(power_, next_, ranges[shard],
                                    ranges[shard + 1]);
                });
          } else {
            pt.multiply_range(power_, next_, 0, loop_rows);
          }
          power_.swap(next_);
          if (weight != 0.0) {
            linalg::axpy(weight, power_, accum_);
          }
        }
        ++stats_.iterations;
        // Steady-state short circuit -- keep in lockstep with
        // markov::TransientSolver::solve (the serial/parallel bitwise and
        // iteration-equality tests fail on any divergence): budgeted
        // shrinking-steps heuristic with a two-consecutive-steps guard.
        // The decision input (max of per-shard maxima) is
        // partition-independent, so it fires identically at every thread
        // count.
        if (detect && n < window.right &&
            static_cast<double>(window.right - n) * delta <= threshold) {
          if (++calm_steps >= 2) {
            double residual = 0.0;
            for (std::uint64_t m = n + 1; m <= window.right; ++m) {
              // kibamrm-lint: allow(reduction-contract) single-threaded sum of Fox-Glynn tail weights in fixed ascending m order; no thread-count dependence
              residual += window.weight(m);
            }
            if (residual > 0.0) {
              if (mixed) {
                for (std::size_t i = 0; i < accum_.size(); ++i) {
                  accum_[i] +=
                      residual * static_cast<double>(power_f_[i]);
                }
              } else {
                linalg::axpy(residual, power_, accum_);
              }
            }
            stats_.iterations_saved += window.right - n;
            ++stats_.steady_state_hits;
            break;
          }
        } else {
          calm_steps = 0;
        }
      }
      current.swap(accum_);
      if (options_.renormalize) {
        linalg::normalize_probability(current);
      }
      current_time = times[idx];
    }
    if (options_.collect_distributions || on_point) {
      const std::vector<double>& point = emit_view(current);
      if (options_.collect_distributions) results.push_back(point);
      if (on_point) on_point(idx, times[idx], point);
    }
  }
  stats_.windows_computed = plan_.windows_computed() - windows_computed_before;
  stats_.windows_reused = plan_.windows_reused() - windows_reused_before;
  return results;
}

}  // namespace kibamrm::engine
