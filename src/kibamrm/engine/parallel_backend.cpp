#include "kibamrm/engine/parallel_backend.hpp"

#include <algorithm>
#include <cmath>

#include "kibamrm/linalg/vector_ops.hpp"
#include "kibamrm/markov/fox_glynn.hpp"

namespace kibamrm::engine {

ParallelUniformizationBackend::ParallelUniformizationBackend(
    BackendOptions options)
    : options_(options),
      pool_(std::make_unique<common::ThreadPool>(options.threads)) {
  KIBAMRM_REQUIRE(options_.epsilon > 0.0 && options_.epsilon < 1.0,
                  "transient epsilon must lie in (0,1)");
}

std::vector<std::vector<double>> ParallelUniformizationBackend::solve(
    const markov::Ctmc& chain, const std::vector<double>& initial,
    const std::vector<double>& times, const PointCallback& on_point) {
  check_arguments(chain, initial, times);

  double rate = options_.uniformization_rate;
  if (rate == 0.0) {
    rate = 1.02 * chain.max_exit_rate();
    if (rate == 0.0) rate = 1.0;  // generator is all-absorbing
  }
  KIBAMRM_REQUIRE(rate * (1.0 + 1e-12) >= chain.max_exit_rate(),
                  "uniformization rate below maximal exit rate");
  // P^T once per solve: the gather kernel walks rows of P^T (= columns of
  // P), so each output entry is private to exactly one shard.
  const linalg::CsrMatrix pt =
      chain.generator().uniformized(rate).transposed();
  // More shards than lanes lets the atomic claim loop absorb row-range
  // cost imbalance the static nnz split cannot see (e.g. the all-zero
  // stretch of an early transient vector).  Below ~16k nonzeros one spmv
  // costs less than waking the pool, so small chains run inline -- the
  // gather arithmetic is identical either way, results stay bitwise equal.
  const bool use_pool =
      pool_->thread_count() > 1 && pt.nonzeros() + pt.rows() >= 16384;
  const std::vector<std::size_t> ranges =
      use_pool ? pt.balanced_row_ranges(4 * pool_->thread_count())
               : std::vector<std::size_t>{0, pt.rows()};
  const std::size_t shard_count = ranges.size() - 1;

  stats_ = BackendStats{};
  stats_.uniformization_rate = rate;
  stats_.time_points = times.size();

  std::vector<std::vector<double>> results;
  if (options_.collect_distributions) results.reserve(times.size());

  std::vector<double> current = initial;  // pi(t_k)
  next_.assign(initial.size(), 0.0);
  accum_.assign(initial.size(), 0.0);
  double current_time = 0.0;

  for (std::size_t idx = 0; idx < times.size(); ++idx) {
    const double dt = times[idx] - current_time;
    if (dt > 0.0) {
      const double lambda = rate * dt;
      const markov::PoissonWindow window =
          markov::fox_glynn(lambda, options_.epsilon);
      linalg::fill(accum_, 0.0);
      power_ = current;
      if (window.left == 0) {
        linalg::axpy(window.weight(0), power_, accum_);
      }
      for (std::uint64_t n = 1; n <= window.right; ++n) {
        if (use_pool) {
          pool_->parallel_for(
              shard_count, [&](std::size_t shard, std::size_t /*lane*/) {
                pt.multiply_range(power_, next_, ranges[shard],
                                  ranges[shard + 1]);
              });
        } else {
          pt.multiply_range(power_, next_, 0, pt.rows());
        }
        power_.swap(next_);
        ++stats_.iterations;
        if (n >= window.left) {
          linalg::axpy(window.weight(n), power_, accum_);
        }
      }
      current.swap(accum_);
      if (options_.renormalize) {
        linalg::normalize_probability(current);
      }
      current_time = times[idx];
    }
    if (options_.collect_distributions) results.push_back(current);
    if (on_point) on_point(idx, times[idx], current);
  }
  return results;
}

}  // namespace kibamrm::engine
