// Batched multi-scenario solving: many independent (battery model,
// workload, Delta, horizon grid) questions answered concurrently.
//
// The serving workload this library targets is not one curve but millions
// of them -- every user's device model, load profile and horizon is its own
// small-to-large expanded CTMC (the paper's Figs. 7-11 and Table 1 are
// exactly such scenario sets).  ScenarioBatch takes a vector of scenario
// descriptors and fans them out over a common::ThreadPool, solving each
// through any registered TransientBackend by name.
//
// Per-lane scratch: each pool lane owns one backend instance reused across
// every scenario that lane picks up, so the backend's internal solver
// scratch is allocated once per lane, not once per scenario.
//
// Determinism: scenarios are solved independently and results land in
// their input slots, so the output is identical for every thread count
// (bitwise, when the engine itself is deterministic across thread counts,
// which all built-ins including "parallel" are).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "kibamrm/common/thread_pool.hpp"
#include "kibamrm/core/approx_solver.hpp"
#include "kibamrm/core/kibamrm_model.hpp"
#include "kibamrm/core/lifetime_distribution.hpp"

namespace kibamrm::engine {

/// One independent lifetime-distribution question.
struct Scenario {
  /// Free-form tag carried into the result (bench labels, user ids).
  std::string label;
  /// Battery + workload combination to expand.
  core::KibamRmModel model;
  /// Reward discretisation step Delta.
  double delta = 1.0;
  /// Horizon grid (ascending) on which to sample Pr{empty at t}.
  std::vector<double> times;
};

/// Outcome of one scenario; `skipped` mirrors the sweep-driver convention:
/// an engine refusing the chain by design (UnsupportedChainError) is a
/// skip.  A numerical failure (NumericalError -- e.g. the adaptive
/// stepper underflowing on one stiff scenario) is isolated per scenario
/// as `failed`, so the rest of the batch still returns its curves; only
/// truly unexpected exceptions propagate out of solve_all().
struct ScenarioResult {
  std::string label;
  std::optional<core::LifetimeCurve> curve;
  core::ApproximationStats stats;
  double wall_seconds = 0.0;
  bool skipped = false;
  std::string skip_reason;
  bool failed = false;
  std::string failure_reason;
};

/// Aggregate counters of the last solve_all().
struct BatchStats {
  std::size_t scenarios = 0;
  std::size_t skipped = 0;
  /// Scenarios whose solve failed numerically (ScenarioResult::failed).
  std::size_t failed = 0;
  /// Lanes the pool ran (after auto-detection).
  std::size_t threads = 1;
  /// Wall-clock of the whole batch (what a serving frontend waits for).
  double wall_seconds = 0.0;
  /// Sum of per-scenario wall-clocks (~ CPU time spent solving; the ratio
  /// to wall_seconds is the achieved scenario-level parallelism).
  double solve_seconds_total = 0.0;
  std::uint64_t iterations_total = 0;
  /// Poisson terms skipped by steady-state early termination, summed over
  /// the batch.
  std::uint64_t iterations_saved_total = 0;
  /// Gather-plan cache traffic (engine/plan_cache.hpp): setups built from
  /// scratch vs served from the batch-shared cache.  A sweep of scenarios
  /// with identical Q*-structure builds one plan and reuses the rest.
  std::uint64_t plans_built = 0;
  std::uint64_t plans_reused = 0;
};

struct ScenarioBatchOptions {
  /// Engine every scenario is solved with; see backend_names().
  std::string engine = "uniformization";
  /// Accuracy knob forwarded to the backend.
  double epsilon = 1e-10;
  /// Refusal threshold forwarded to the dense engine.
  std::size_t dense_state_limit = 1024;
  /// Scenario-level concurrency (pool lanes); 0 auto-detects hardware.
  std::size_t threads = 0;
  /// Threads *inside* each backend instance (the "parallel" engine); kept
  /// at 1 by default so batch x engine parallelism does not oversubscribe
  /// -- raise it only for batches of few, huge scenarios.
  std::size_t engine_threads = 1;
  /// Forwarded to the backend: fused spmv+accumulate kernels and
  /// steady-state early termination (uniformisation engines).
  bool fused_kernels = true;
  bool steady_state_detection = true;
  /// Forwarded to the "ooc" engine of every lane: serialized-size target
  /// per streamed tile and the spill directory (empty selects $TMPDIR).
  std::size_t tile_bytes = 8ull << 20;
  std::string spill_dir = "";
  /// Vector-kernel tier pin ("auto" / "scalar" / "avx2" / "avx512" /
  /// "mixed"), forwarded to every lane's
  /// BackendOptions::kernel_dispatch -- the pin is process-global, so one
  /// batch option covers all lanes (the sanitizer CI pins "scalar" here
  /// to keep reports readable).  The double tiers are bitwise identical.
  std::string kernel_dispatch = "auto";
  /// State ordering of every expanded chain ("none" / "level" / "rcm");
  /// see core::ApproximationOptions::reorder.
  std::string reorder = "none";
  /// Worker processes per solve of the "sharded" engine; forwarded to
  /// every lane's BackendOptions::shards.  Other engines ignore it.
  std::size_t shards = 1;
};

class ScenarioBatch {
 public:
  explicit ScenarioBatch(ScenarioBatchOptions options = {});

  /// Solves every scenario; results are positionally aligned with the
  /// input.  Throws InvalidArgument up front for an unknown engine name.
  std::vector<ScenarioResult> solve_all(
      const std::vector<Scenario>& scenarios);

  const BatchStats& last_stats() const { return stats_; }
  std::size_t thread_count() const { return pool_.thread_count(); }

 private:
  ScenarioBatchOptions options_;
  common::ThreadPool pool_;
  BatchStats stats_;
};

}  // namespace kibamrm::engine
