// Small dense matrices (real and complex) with the handful of operations the
// exact transform solver needs: multiply, add, scale, LU solve, 1-norm.
//
// Workload CTMCs in this library are tiny (2-6 states for the paper's
// models), so these are simple O(n^3) routines with no blocking; clarity and
// numerical robustness (partial pivoting) over speed.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "kibamrm/common/error.hpp"

namespace kibamrm::linalg {

/// Row-major dense matrix over double or std::complex<double>.
template <typename Scalar>
class Dense {
 public:
  Dense() : rows_(0), cols_(0) {}
  Dense(std::size_t rows, std::size_t cols, Scalar init = Scalar{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static Dense identity(std::size_t n) {
    Dense m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = Scalar{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Scalar& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  const Scalar& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Dense operator*(const Dense& other) const {
    KIBAMRM_REQUIRE(cols_ == other.rows_, "dense multiply: shape mismatch");
    Dense out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const Scalar a = (*this)(i, k);
        if (a == Scalar{}) continue;
        for (std::size_t j = 0; j < other.cols_; ++j) {
          out(i, j) += a * other(k, j);
        }
      }
    }
    return out;
  }

  Dense operator+(const Dense& other) const {
    KIBAMRM_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                    "dense add: shape mismatch");
    Dense out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
    return out;
  }

  Dense operator-(const Dense& other) const {
    KIBAMRM_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                    "dense subtract: shape mismatch");
    Dense out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
    return out;
  }

  Dense scaled(Scalar alpha) const {
    Dense out = *this;
    for (auto& x : out.data_) x *= alpha;
    return out;
  }

  /// Maximum absolute column sum (the induced 1-norm).
  double norm1() const {
    double worst = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
      double colsum = 0.0;
      for (std::size_t i = 0; i < rows_; ++i) {
        colsum += std::abs((*this)(i, j));
      }
      worst = worst < colsum ? colsum : worst;
    }
    return worst;
  }

  /// row vector * matrix.
  std::vector<Scalar> left_multiply(const std::vector<Scalar>& v) const {
    KIBAMRM_REQUIRE(v.size() == rows_, "dense left_multiply: shape mismatch");
    std::vector<Scalar> out(cols_, Scalar{});
    for (std::size_t i = 0; i < rows_; ++i) {
      const Scalar p = v[i];
      if (p == Scalar{}) continue;
      for (std::size_t j = 0; j < cols_; ++j) out[j] += p * (*this)(i, j);
    }
    return out;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Scalar> data_;
};

using DenseReal = Dense<double>;
using DenseComplex = Dense<std::complex<double>>;

/// Solves A X = B in place of B via LU with partial pivoting; A is consumed.
/// Throws NumericalError on (numerically) singular A.
template <typename Scalar>
Dense<Scalar> lu_solve(Dense<Scalar> a, Dense<Scalar> b) {
  KIBAMRM_REQUIRE(a.rows() == a.cols(), "lu_solve: A must be square");
  KIBAMRM_REQUIRE(a.rows() == b.rows(), "lu_solve: shape mismatch");
  const std::size_t n = a.rows();
  const std::size_t m = b.cols();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot on the largest magnitude entry in this column.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (!(best > 0.0)) {
      throw NumericalError("lu_solve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      for (std::size_t j = 0; j < m; ++j) std::swap(b(col, j), b(pivot, j));
    }
    const Scalar inv = Scalar{1} / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const Scalar factor = a(r, col) * inv;
      if (factor == Scalar{}) continue;
      for (std::size_t j = col; j < n; ++j) a(r, j) -= factor * a(col, j);
      for (std::size_t j = 0; j < m; ++j) b(r, j) -= factor * b(col, j);
    }
  }
  // Back substitution.  True division, not multiplication by a rounded
  // reciprocal: x/x must come out exactly 1, or structurally-invariant
  // rows (absorbing states in expm operands) pick up an ulp of error
  // that a long scaling-and-squaring chain amplifies by 2^squarings.
  for (std::size_t ri = n; ri-- > 0;) {
    const Scalar pivot = a(ri, ri);
    for (std::size_t j = 0; j < m; ++j) {
      Scalar acc = b(ri, j);
      for (std::size_t k = ri + 1; k < n; ++k) acc -= a(ri, k) * b(k, j);
      b(ri, j) = acc / pivot;
    }
  }
  return b;
}

}  // namespace kibamrm::linalg
