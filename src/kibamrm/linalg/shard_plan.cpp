#include "kibamrm/linalg/shard_plan.hpp"

#include <algorithm>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/csr_matrix.hpp"

namespace kibamrm::linalg {

std::vector<std::size_t> entry_scaled_cut_bounds(
    std::span<const std::uint32_t> counts, std::size_t target_bytes,
    std::size_t header_bytes) {
  KIBAMRM_REQUIRE(target_bytes >= 1,
                  "entry_scaled_cut_bounds: target must be positive");
  const std::size_t n = counts.size();
  std::vector<std::size_t> bounds = {0};
  std::uint64_t payload = 0;
  std::uint64_t tile_entries = 0;
  for (std::size_t j = 0; j < n; ++j) {
    payload += entry_scaled_row_bytes(counts[j]);
    tile_entries += counts[j];
    // The dictionary holds distinct doubles, so it can never exceed 8
    // bytes per entry; the allowance grows with the tile's entry count
    // up to a 4KB cap (512 distinct values covers the handful of
    // distinct rates a battery chain produces) -- a flat pre-charge
    // would make small targets degenerate to one row per tile.
    const std::uint64_t dict_allowance =
        8 * std::min<std::uint64_t>(tile_entries, 512);
    const std::uint64_t estimate = header_bytes + payload + dict_allowance;
    if (estimate >= target_bytes && j + 1 < n) {
      bounds.push_back(j + 1);
      payload = 0;
      tile_entries = 0;
    }
  }
  bounds.push_back(n);
  return bounds;
}

std::vector<std::size_t> balanced_count_ranges(
    std::span<const std::uint32_t> counts, std::size_t row_begin,
    std::size_t row_end, std::size_t parts) {
  KIBAMRM_REQUIRE(parts > 0, "balanced_count_ranges: parts must be positive");
  KIBAMRM_REQUIRE(row_begin <= row_end && row_end <= counts.size(),
                  "balanced_count_ranges: row range out of bounds");
  // Weight each row by entries + 1 (the entry-scaled byte estimate is
  // 4 * (entries + 1), so the proportions -- and therefore the cuts --
  // are identical): the +1 charges the unconditional output write, the
  // same policy as CsrMatrix::balanced_row_ranges.
  std::vector<std::size_t> ranges = {row_begin};
  double outstanding = 0.0;
  for (std::size_t row = row_begin; row < row_end; ++row) {
    outstanding += static_cast<double>(counts[row]) + 1.0;
  }
  double carried = 0.0;
  for (std::size_t row = row_begin; row < row_end; ++row) {
    carried += static_cast<double>(counts[row]) + 1.0;
    // Close the current range once it holds its fair share of the weight
    // still outstanding (recomputed after every split, so one huge row
    // cannot starve the later ranges), never creating more ranges than
    // rows remain.
    const std::size_t open = ranges.size();
    const double fair_share =
        outstanding / static_cast<double>(parts - open + 1);
    if (open < parts && carried >= fair_share &&
        row_end - row - 1 >= parts - open) {
      ranges.push_back(row + 1);
      outstanding -= carried;
      carried = 0.0;
    }
  }
  ranges.push_back(row_end);
  return ranges;
}

ShardPlan ShardPlan::build(std::span<const std::uint32_t> counts,
                           std::span<const std::uint32_t> col_lo,
                           std::span<const std::uint32_t> col_hi,
                           std::size_t shards) {
  KIBAMRM_REQUIRE(shards > 0, "shard plan: shard count must be positive");
  KIBAMRM_REQUIRE(
      col_lo.size() == counts.size() && col_hi.size() == counts.size(),
      "shard plan: footprint arrays must match the row count");
  const std::size_t n = counts.size();
  const std::vector<std::size_t> bounds =
      balanced_count_ranges(counts, 0, n, shards);

  ShardPlan plan;
  plan.bands_.reserve(shards);
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
    ShardBand band;
    band.row_begin = bounds[b];
    band.row_end = bounds[b + 1];
    bool any = false;
    std::size_t lo = 0;
    std::size_t hi = 0;
    for (std::size_t r = band.row_begin; r < band.row_end; ++r) {
      band.nonzeros += counts[r];
      if (counts[r] == 0) continue;
      if (!any) {
        lo = col_lo[r];
        hi = static_cast<std::size_t>(col_hi[r]) + 1;
        any = true;
      } else {
        lo = std::min<std::size_t>(lo, col_lo[r]);
        hi = std::max<std::size_t>(hi, static_cast<std::size_t>(col_hi[r]) + 1);
      }
    }
    band.col_begin = any ? lo : band.row_begin;
    band.col_end = any ? hi : band.row_begin;
    plan.bands_.push_back(band);
  }
  // Chains with fewer rows than shards: pad with empty trailing bands so
  // the worker topology is independent of the chain (every worker forks,
  // runs the protocol, and contributes a zero delta).
  while (plan.bands_.size() < shards) {
    ShardBand band;
    band.row_begin = n;
    band.row_end = n;
    band.col_begin = n;
    band.col_end = n;
    plan.bands_.push_back(band);
  }

  // Pairwise halo spans: rows of `source` inside `dest`'s footprint.
  // The footprint is the contiguous hull of the band's column interval
  // -- conservative for a band with interior gaps, but battery chains
  // are banded, so the hull is tight in practice and the precomputation
  // stays O(shards^2).
  for (std::size_t dest = 0; dest < plan.bands_.size(); ++dest) {
    const ShardBand& d = plan.bands_[dest];
    if (d.col_begin >= d.col_end) continue;
    for (std::size_t source = 0; source < plan.bands_.size(); ++source) {
      if (source == dest) continue;
      const ShardBand& s = plan.bands_[source];
      const std::size_t lo = std::max(d.col_begin, s.row_begin);
      const std::size_t hi = std::min(d.col_end, s.row_end);
      if (lo < hi) {
        plan.halos_.push_back(HaloSpan{source, dest, lo, hi});
      }
    }
  }
  return plan;
}

ShardPlan ShardPlan::build(const CsrMatrix& transposed, std::size_t shards) {
  const std::size_t n = transposed.rows();
  const std::span<const std::uint32_t> row_ptr = transposed.row_pointers();
  const std::span<const std::uint32_t> col_idx = transposed.column_indices();
  std::vector<std::uint32_t> counts(n, 0);
  std::vector<std::uint32_t> col_lo(n, 0);
  std::vector<std::uint32_t> col_hi(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    counts[r] = row_ptr[r + 1] - row_ptr[r];
    if (counts[r] > 0) {
      // CSR columns are sorted, so the row's footprint is its first and
      // last stored column.
      col_lo[r] = col_idx[row_ptr[r]];
      col_hi[r] = col_idx[row_ptr[r + 1] - 1];
    }
  }
  return build(counts, col_lo, col_hi, shards);
}

std::vector<HaloSpan> ShardPlan::spans_from(std::size_t source) const {
  std::vector<HaloSpan> spans;
  for (const HaloSpan& span : halos_) {
    if (span.source == source) spans.push_back(span);
  }
  return spans;
}

std::vector<HaloSpan> ShardPlan::spans_to(std::size_t dest) const {
  std::vector<HaloSpan> spans;
  for (const HaloSpan& span : halos_) {
    if (span.dest == dest) spans.push_back(span);
  }
  return spans;
}

double ShardPlan::nnz_imbalance() const {
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (const ShardBand& band : bands_) {
    total += band.nonzeros;
    peak = std::max(peak, band.nonzeros);
  }
  if (total == 0 || bands_.empty()) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(bands_.size());
  return static_cast<double>(peak) / mean;
}

std::uint64_t ShardPlan::halo_bytes_per_step() const {
  std::uint64_t bytes = 0;
  for (const HaloSpan& span : halos_) {
    bytes += static_cast<std::uint64_t>(span.rows()) * sizeof(double);
  }
  return bytes;
}

}  // namespace kibamrm::linalg
