#include "kibamrm/linalg/fused_gather.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/kernels.hpp"
#include "kibamrm/linalg/kernels_internal.hpp"

namespace kibamrm::linalg {

std::optional<FusedGatherPlan> FusedGatherPlan::build(
    const CsrMatrix& matrix) {
  if (matrix.rows() != matrix.cols()) return std::nullopt;
  const auto row_ptr = matrix.row_pointers();
  const auto col_idx = matrix.column_indices();
  const auto values = matrix.values();

  FusedGatherPlan plan;
  plan.lengths_.resize(matrix.rows());
  plan.entry_start_.assign(row_ptr.begin(), row_ptr.end());
  plan.value_ids_.resize(matrix.nonzeros());
  plan.offsets_.resize(matrix.nonzeros());
  std::unordered_map<double, std::uint16_t> ids;
  ids.reserve(1024);

  // First pass: the row-offset layout, plus the length and dictionary
  // constraints shared by both layouts.  A single offset outside int16
  // downgrades to the column-delta layout below (without redoing the
  // dictionary); length or dictionary overflow fails the build outright.
  bool offsets_fit = true;
  for (std::size_t row = 0; row < matrix.rows(); ++row) {
    const std::uint32_t length = row_ptr[row + 1] - row_ptr[row];
    if (length > std::numeric_limits<std::uint8_t>::max()) return std::nullopt;
    plan.lengths_[row] = static_cast<std::uint8_t>(length);
    for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      const auto offset = static_cast<std::int64_t>(col_idx[k]) -
                          static_cast<std::int64_t>(row);
      if (offset < std::numeric_limits<std::int16_t>::min() ||
          offset > std::numeric_limits<std::int16_t>::max()) {
        offsets_fit = false;
      } else {
        plan.offsets_[k] = static_cast<std::int16_t>(offset);
      }
      const auto [it, inserted] = ids.try_emplace(
          values[k], static_cast<std::uint16_t>(plan.dictionary_.size()));
      if (inserted) {
        if (plan.dictionary_.size() >
            std::numeric_limits<std::uint16_t>::max()) {
          return std::nullopt;
        }
        plan.dictionary_.push_back(values[k]);
      }
      plan.value_ids_[k] = it->second;
    }
  }
  if (offsets_fit) return plan;

  // Column-delta fallback: CSR columns are sorted ascending within a row,
  // so consecutive gaps are non-negative; any gap beyond uint16 defeats
  // this layout too.
  plan.layout_ = Layout::kColumnDelta;
  plan.offsets_.clear();
  plan.offsets_.shrink_to_fit();
  plan.first_col_.assign(matrix.rows(), 0);
  plan.deltas_.assign(matrix.nonzeros(), 0);
  for (std::size_t row = 0; row < matrix.rows(); ++row) {
    std::uint32_t previous = 0;
    for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      if (k == row_ptr[row]) {
        plan.first_col_[row] = col_idx[k];
      } else {
        const std::uint32_t gap = col_idx[k] - previous;
        if (gap > std::numeric_limits<std::uint16_t>::max()) {
          return std::nullopt;
        }
        plan.deltas_[k] = static_cast<std::uint16_t>(gap);
      }
      previous = col_idx[k];
    }
  }
  return plan;
}

double FusedGatherPlan::multiply_fused_range(const std::vector<double>& x,
                                             std::vector<double>& out,
                                             std::vector<double>& accum,
                                             double weight,
                                             std::size_t row_begin,
                                             std::size_t row_end) const {
  KIBAMRM_REQUIRE(x.size() == rows() && out.size() == rows() &&
                      accum.size() == rows(),
                  "FusedGatherPlan: vectors not sized to rows()");
  KIBAMRM_REQUIRE(row_begin <= row_end && row_end <= rows(),
                  "FusedGatherPlan: invalid row range");
  return layout_ == Layout::kRowOffset
             ? fused_range_row_offset(x, out, accum, weight, row_begin,
                                      row_end)
             : fused_range_column_delta(x, out, accum, weight, row_begin,
                                        row_end);
}

double FusedGatherPlan::fused_range_row_offset(
    const std::vector<double>& x, std::vector<double>& out,
    std::vector<double>& accum, double weight, std::size_t row_begin,
    std::size_t row_end) const {
#if KIBAMRM_HAVE_AVX2_TIER
  // Row grouping is opt-in (see kernels::gather_grouping): the scalar
  // per-length switch measured faster on gather-slow parts.
  if (kernels::gather_grouping() &&
      kernels::active_dispatch() == kernels::Dispatch::kAvx2 &&
      rows() <= static_cast<std::size_t>(
                    std::numeric_limits<std::int32_t>::max())) {
    return kernels::detail::avx2_plan_fused_rows(
        lengths_.data(), entry_start_.data(), offsets_.data(),
        value_ids_.data(), dictionary_.data(), x.data(), out.data(),
        accum.data(), weight, row_begin, row_end);
  }
#endif
  const std::uint8_t* lengths = lengths_.data();
  const std::int16_t* offsets = offsets_.data();
  const std::uint16_t* value_ids = value_ids_.data();
  const double* dictionary = dictionary_.data();
  const double* in = x.data();
  double delta = 0.0;
  std::size_t k = entry_start_[row_begin];
  for (std::size_t row = row_begin; row < row_end; ++row) {
    double v;
    // Canonical per-length evaluation order, mirrored exactly by
    // CsrMatrix::multiply_fused_range and the AVX2 group kernel, so all
    // kernels agree bitwise.
    switch (lengths[row]) {
      case 0:
        v = 0.0;
        break;
      case 1:
        v = dictionary[value_ids[k]] * in[row + offsets[k]];
        k += 1;
        break;
      case 2:
        v = dictionary[value_ids[k]] * in[row + offsets[k]] +
            dictionary[value_ids[k + 1]] * in[row + offsets[k + 1]];
        k += 2;
        break;
      case 3:
        v = dictionary[value_ids[k]] * in[row + offsets[k]] +
            dictionary[value_ids[k + 1]] * in[row + offsets[k + 1]] +
            dictionary[value_ids[k + 2]] * in[row + offsets[k + 2]];
        k += 3;
        break;
      case 4:
        v = (dictionary[value_ids[k]] * in[row + offsets[k]] +
             dictionary[value_ids[k + 1]] * in[row + offsets[k + 1]]) +
            (dictionary[value_ids[k + 2]] * in[row + offsets[k + 2]] +
             dictionary[value_ids[k + 3]] * in[row + offsets[k + 3]]);
        k += 4;
        break;
      default: {
        double s0 = 0.0;
        double s1 = 0.0;
        std::uint8_t j = 0;
        const std::uint8_t length = lengths[row];
        for (; j + 2 <= length; j += 2) {
          s0 += dictionary[value_ids[k + j]] * in[row + offsets[k + j]];
          s1 +=
              dictionary[value_ids[k + j + 1]] * in[row + offsets[k + j + 1]];
        }
        if (j < length) {
          s0 += dictionary[value_ids[k + j]] * in[row + offsets[k + j]];
        }
        v = s0 + s1;
        k += length;
      }
    }
    out[row] = v;
    if (weight != 0.0) accum[row] += weight * v;
    delta = std::max(delta, std::abs(v - in[row]));
  }
  return delta;
}

double FusedGatherPlan::fused_range_column_delta(
    const std::vector<double>& x, std::vector<double>& out,
    std::vector<double>& accum, double weight, std::size_t row_begin,
    std::size_t row_end) const {
  const std::uint8_t* lengths = lengths_.data();
  const std::uint32_t* first_col = first_col_.data();
  const std::uint16_t* deltas = deltas_.data();
  const std::uint16_t* value_ids = value_ids_.data();
  const double* dictionary = dictionary_.data();
  const double* in = x.data();
  double delta = 0.0;
  std::size_t k = entry_start_[row_begin];
  for (std::size_t row = row_begin; row < row_end; ++row) {
    // Columns rebuild incrementally from the per-row absolute start; the
    // per-length evaluation order is the same canonical one as above, so
    // the two layouts agree bitwise on any matrix both can represent.
    const std::uint8_t length = lengths[row];
    std::uint32_t c0;
    std::uint32_t c1;
    std::uint32_t c2;
    std::uint32_t c3;
    double v;
    switch (length) {
      case 0:
        v = 0.0;
        break;
      case 1:
        v = dictionary[value_ids[k]] * in[first_col[row]];
        k += 1;
        break;
      case 2:
        c0 = first_col[row];
        c1 = c0 + deltas[k + 1];
        v = dictionary[value_ids[k]] * in[c0] +
            dictionary[value_ids[k + 1]] * in[c1];
        k += 2;
        break;
      case 3:
        c0 = first_col[row];
        c1 = c0 + deltas[k + 1];
        c2 = c1 + deltas[k + 2];
        v = dictionary[value_ids[k]] * in[c0] +
            dictionary[value_ids[k + 1]] * in[c1] +
            dictionary[value_ids[k + 2]] * in[c2];
        k += 3;
        break;
      case 4:
        c0 = first_col[row];
        c1 = c0 + deltas[k + 1];
        c2 = c1 + deltas[k + 2];
        c3 = c2 + deltas[k + 3];
        v = (dictionary[value_ids[k]] * in[c0] +
             dictionary[value_ids[k + 1]] * in[c1]) +
            (dictionary[value_ids[k + 2]] * in[c2] +
             dictionary[value_ids[k + 3]] * in[c3]);
        k += 4;
        break;
      default: {
        double s0 = 0.0;
        double s1 = 0.0;
        std::uint32_t even_col = first_col[row];
        std::uint32_t odd_col = even_col + deltas[k + 1];
        std::uint8_t j = 0;
        for (; j + 2 <= length; j += 2) {
          s0 += dictionary[value_ids[k + j]] * in[even_col];
          s1 += dictionary[value_ids[k + j + 1]] * in[odd_col];
          if (j + 2 < length) {
            even_col = odd_col + deltas[k + j + 2];
            if (j + 3 < length) odd_col = even_col + deltas[k + j + 3];
          }
        }
        if (j < length) {
          s0 += dictionary[value_ids[k + j]] * in[even_col];
        }
        v = s0 + s1;
        k += length;
      }
    }
    out[row] = v;
    if (weight != 0.0) accum[row] += weight * v;
    delta = std::max(delta, std::abs(v - in[row]));
  }
  return delta;
}

}  // namespace kibamrm::linalg
