#include "kibamrm/linalg/fused_gather.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "kibamrm/common/error.hpp"

namespace kibamrm::linalg {

std::optional<FusedGatherPlan> FusedGatherPlan::build(
    const CsrMatrix& matrix) {
  if (matrix.rows() != matrix.cols()) return std::nullopt;
  const auto row_ptr = matrix.row_pointers();
  const auto col_idx = matrix.column_indices();
  const auto values = matrix.values();

  FusedGatherPlan plan;
  plan.lengths_.resize(matrix.rows());
  plan.entry_start_.assign(row_ptr.begin(), row_ptr.end());
  plan.offsets_.resize(matrix.nonzeros());
  plan.value_ids_.resize(matrix.nonzeros());
  std::unordered_map<double, std::uint16_t> ids;
  ids.reserve(1024);

  for (std::size_t row = 0; row < matrix.rows(); ++row) {
    const std::uint32_t length = row_ptr[row + 1] - row_ptr[row];
    if (length > std::numeric_limits<std::uint8_t>::max()) return std::nullopt;
    plan.lengths_[row] = static_cast<std::uint8_t>(length);
    for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      const auto offset = static_cast<std::int64_t>(col_idx[k]) -
                          static_cast<std::int64_t>(row);
      if (offset < std::numeric_limits<std::int16_t>::min() ||
          offset > std::numeric_limits<std::int16_t>::max()) {
        return std::nullopt;
      }
      plan.offsets_[k] = static_cast<std::int16_t>(offset);
      const auto [it, inserted] = ids.try_emplace(
          values[k], static_cast<std::uint16_t>(plan.dictionary_.size()));
      if (inserted) {
        if (plan.dictionary_.size() >
            std::numeric_limits<std::uint16_t>::max()) {
          return std::nullopt;
        }
        plan.dictionary_.push_back(values[k]);
      }
      plan.value_ids_[k] = it->second;
    }
  }
  return plan;
}

double FusedGatherPlan::multiply_fused_range(const std::vector<double>& x,
                                             std::vector<double>& out,
                                             std::vector<double>& accum,
                                             double weight,
                                             std::size_t row_begin,
                                             std::size_t row_end) const {
  KIBAMRM_REQUIRE(x.size() == rows() && out.size() == rows() &&
                      accum.size() == rows(),
                  "FusedGatherPlan: vectors not sized to rows()");
  KIBAMRM_REQUIRE(row_begin <= row_end && row_end <= rows(),
                  "FusedGatherPlan: invalid row range");
  const std::uint8_t* lengths = lengths_.data();
  const std::int16_t* offsets = offsets_.data();
  const std::uint16_t* value_ids = value_ids_.data();
  const double* dictionary = dictionary_.data();
  const double* in = x.data();
  double delta = 0.0;
  std::size_t k = entry_start_[row_begin];
  for (std::size_t row = row_begin; row < row_end; ++row) {
    double v;
    // Canonical per-length evaluation order, mirrored exactly by
    // CsrMatrix::multiply_fused_range so the two kernels agree bitwise.
    switch (lengths[row]) {
      case 0:
        v = 0.0;
        break;
      case 1:
        v = dictionary[value_ids[k]] * in[row + offsets[k]];
        k += 1;
        break;
      case 2:
        v = dictionary[value_ids[k]] * in[row + offsets[k]] +
            dictionary[value_ids[k + 1]] * in[row + offsets[k + 1]];
        k += 2;
        break;
      case 3:
        v = dictionary[value_ids[k]] * in[row + offsets[k]] +
            dictionary[value_ids[k + 1]] * in[row + offsets[k + 1]] +
            dictionary[value_ids[k + 2]] * in[row + offsets[k + 2]];
        k += 3;
        break;
      case 4:
        v = (dictionary[value_ids[k]] * in[row + offsets[k]] +
             dictionary[value_ids[k + 1]] * in[row + offsets[k + 1]]) +
            (dictionary[value_ids[k + 2]] * in[row + offsets[k + 2]] +
             dictionary[value_ids[k + 3]] * in[row + offsets[k + 3]]);
        k += 4;
        break;
      default: {
        double s0 = 0.0;
        double s1 = 0.0;
        std::uint8_t j = 0;
        const std::uint8_t length = lengths[row];
        for (; j + 2 <= length; j += 2) {
          s0 += dictionary[value_ids[k + j]] * in[row + offsets[k + j]];
          s1 +=
              dictionary[value_ids[k + j + 1]] * in[row + offsets[k + j + 1]];
        }
        if (j < length) {
          s0 += dictionary[value_ids[k + j]] * in[row + offsets[k + j]];
        }
        v = s0 + s1;
        k += length;
      }
    }
    out[row] = v;
    if (weight != 0.0) accum[row] += weight * v;
    delta = std::max(delta, std::abs(v - in[row]));
  }
  return delta;
}

}  // namespace kibamrm::linalg
