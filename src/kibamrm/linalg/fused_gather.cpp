#include "kibamrm/linalg/fused_gather.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <type_traits>
#include <unordered_map>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/kernels.hpp"
#include "kibamrm/linalg/kernels_internal.hpp"

namespace kibamrm::linalg {

std::optional<FusedGatherPlan> FusedGatherPlan::build(
    const CsrMatrix& matrix) {
  if (matrix.rows() != matrix.cols()) return std::nullopt;
  const auto row_ptr = matrix.row_pointers();
  const auto col_idx = matrix.column_indices();
  const auto values = matrix.values();

  FusedGatherPlan plan;
  plan.lengths_.resize(matrix.rows());
  plan.entry_start_.assign(row_ptr.begin(), row_ptr.end());
  plan.value_ids_.resize(matrix.nonzeros());
  plan.offsets_.resize(matrix.nonzeros());
  std::unordered_map<double, std::uint16_t> ids;
  ids.reserve(1024);

  // First pass: the row-offset layout, plus the length and dictionary
  // constraints shared by both layouts.  A single offset outside int16
  // downgrades to the column-delta layout below (without redoing the
  // dictionary); length or dictionary overflow fails the build outright.
  bool offsets_fit = true;
  std::int64_t max_abs_offset = 0;
  for (std::size_t row = 0; row < matrix.rows(); ++row) {
    const std::uint32_t length = row_ptr[row + 1] - row_ptr[row];
    if (length > std::numeric_limits<std::uint8_t>::max()) return std::nullopt;
    plan.lengths_[row] = static_cast<std::uint8_t>(length);
    for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      const auto offset = static_cast<std::int64_t>(col_idx[k]) -
                          static_cast<std::int64_t>(row);
      if (offset < std::numeric_limits<std::int16_t>::min() ||
          offset > std::numeric_limits<std::int16_t>::max()) {
        offsets_fit = false;
      } else {
        plan.offsets_[k] = static_cast<std::int16_t>(offset);
        max_abs_offset = std::max(max_abs_offset, std::abs(offset));
      }
      const auto [it, inserted] = ids.try_emplace(
          values[k], static_cast<std::uint16_t>(plan.dictionary_.size()));
      if (inserted) {
        if (plan.dictionary_.size() >
            std::numeric_limits<std::uint16_t>::max()) {
          return std::nullopt;
        }
        plan.dictionary_.push_back(values[k]);
      }
      plan.value_ids_[k] = it->second;
    }
  }
  if (offsets_fit) {
    // Software-prefetch heuristic for the scalar kernel on banded
    // layouts: when the band spans more doubles than fit in a
    // L1-resident neighbourhood (~4K doubles = 32KB), the x reads of
    // rows a few iterations ahead miss reliably, and prefetching the
    // first operand of row + distance hides that latency.  Narrow bands
    // stay prefetch-free -- the hardware stride prefetcher already owns
    // them.
    if (max_abs_offset > 4096) plan.prefetch_distance_ = 16;
    plan.build_uniform_segments();
    // float32 shadow dictionary for the mixed tier (a few KB; built
    // eagerly so the mixed kernels never allocate).
    plan.dictionary_f_.assign(plan.dictionary_.begin(),
                              plan.dictionary_.end());
    return plan;
  }

  // Column-delta fallback: CSR columns are sorted ascending within a row,
  // so consecutive gaps are non-negative; any gap beyond uint16 defeats
  // this layout too.
  plan.layout_ = Layout::kColumnDelta;
  plan.offsets_.clear();
  plan.offsets_.shrink_to_fit();
  plan.first_col_.assign(matrix.rows(), 0);
  plan.deltas_.assign(matrix.nonzeros(), 0);
  for (std::size_t row = 0; row < matrix.rows(); ++row) {
    std::uint32_t previous = 0;
    for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      if (k == row_ptr[row]) {
        plan.first_col_[row] = col_idx[k];
      } else {
        const std::uint32_t gap = col_idx[k] - previous;
        if (gap > std::numeric_limits<std::uint16_t>::max()) {
          return std::nullopt;
        }
        plan.deltas_[k] = static_cast<std::uint16_t>(gap);
      }
      previous = col_idx[k];
    }
  }
  return plan;
}

void FusedGatherPlan::build_uniform_segments() {
  // A uniform segment is a maximal run of consecutive rows sharing both
  // their length (1-4, the canonical vector-combine widths) and their
  // entire offset pattern; within one, entry e of neighbouring rows reads
  // x at consecutive addresses.  Runs shorter than 8 rows are not worth a
  // segment (the AVX-512 kernel processes 8 rows per group).
  constexpr std::size_t kMinSegmentRows = 8;
  const std::size_t n = lengths_.size();
  std::size_t run_begin = 0;
  const auto matches_previous = [&](std::size_t row) {
    const std::uint8_t length = lengths_[row];
    if (length != lengths_[row - 1]) return false;
    const std::uint32_t k0 = entry_start_[row - 1];
    const std::uint32_t k1 = entry_start_[row];
    for (std::uint8_t e = 0; e < length; ++e) {
      if (offsets_[k0 + e] != offsets_[k1 + e]) return false;
    }
    return true;
  };
  const auto flush = [&](std::size_t run_end) {
    const std::size_t count = run_end - run_begin;
    const std::uint32_t length = lengths_[run_begin];
    if (count < kMinSegmentRows || length < 1 || length > 4) return;
    UniformSegment segment;
    segment.row_begin = static_cast<std::uint32_t>(run_begin);
    segment.row_count = static_cast<std::uint32_t>(count);
    segment.length = length;
    segment.ids_base = static_cast<std::uint32_t>(segment_ids_.size());
    // Transpose the dictionary ids entry-major so the kernels load the
    // ids of one entry across 4/8 rows with a single contiguous read.
    segment_ids_.resize(segment_ids_.size() + count * length);
    std::uint16_t* ids = segment_ids_.data() + segment.ids_base;
    for (std::size_t r = 0; r < count; ++r) {
      const std::uint32_t k = entry_start_[run_begin + r];
      for (std::uint32_t e = 0; e < length; ++e) {
        ids[e * count + r] = value_ids_[k + e];
      }
    }
    uniform_rows_ += count;
    segments_.push_back(segment);
  };
  for (std::size_t row = 1; row < n; ++row) {
    if (!matches_previous(row)) {
      flush(row);
      run_begin = row;
    }
  }
  if (n > 0) flush(n);
}

double FusedGatherPlan::multiply_fused_range(const std::vector<double>& x,
                                             std::vector<double>& out,
                                             std::vector<double>& accum,
                                             double weight,
                                             std::size_t row_begin,
                                             std::size_t row_end) const {
  KIBAMRM_REQUIRE(x.size() == rows() && out.size() == rows() &&
                      accum.size() == rows(),
                  "FusedGatherPlan: vectors not sized to rows()");
  KIBAMRM_REQUIRE(row_begin <= row_end && row_end <= rows(),
                  "FusedGatherPlan: invalid row range");
  return layout_ == Layout::kRowOffset
             ? fused_range_row_offset(x, out, accum, weight, row_begin,
                                      row_end)
             : fused_range_column_delta(x, out, accum, weight, row_begin,
                                        row_end);
}

template <typename Value>
double FusedGatherPlan::fused_rows_generic(const Value* x, Value* out,
                                           double* accum,
                                           const Value* dictionary,
                                           double weight,
                                           std::size_t row_begin,
                                           std::size_t row_end) const {
  const std::uint8_t* lengths = lengths_.data();
  const std::int16_t* offsets = offsets_.data();
  const std::uint16_t* value_ids = value_ids_.data();
  double delta = 0.0;
  std::size_t k = entry_start_[row_begin];
  // One stored-entry product; for Value = double the casts are no-ops and
  // the arithmetic is the historical scalar kernel unchanged, for Value =
  // float each product promotes exactly to double (the mixed contract).
  const auto term = [&](std::size_t row, std::size_t e) {
    return static_cast<double>(dictionary[value_ids[e]]) *
           static_cast<double>(x[row + offsets[e]]);
  };
  // Prefetching never touches the arithmetic, so the bitwise contract is
  // unaffected; only offsets_-backed (kRowOffset) plans reach this loop.
  const std::size_t prefetch = prefetch_distance_;
  for (std::size_t row = row_begin; row < row_end; ++row) {
#if defined(__GNUC__) || defined(__clang__)
    if (prefetch != 0 && row + prefetch < row_end) {
      const std::size_t ahead = entry_start_[row + prefetch];
      if (ahead < entry_start_[row + prefetch + 1]) {
        __builtin_prefetch(&x[row + prefetch + offsets[ahead]], 0, 1);
      }
    }
#endif
    double v;
    // Canonical per-length evaluation order, mirrored exactly by
    // CsrMatrix::multiply_fused_range and the SIMD kernels, so all
    // double kernels agree bitwise.
    switch (lengths[row]) {
      case 0:
        v = 0.0;
        break;
      case 1:
        v = term(row, k);
        k += 1;
        break;
      case 2:
        v = term(row, k) + term(row, k + 1);
        k += 2;
        break;
      case 3:
        v = term(row, k) + term(row, k + 1) + term(row, k + 2);
        k += 3;
        break;
      case 4:
        v = (term(row, k) + term(row, k + 1)) +
            (term(row, k + 2) + term(row, k + 3));
        k += 4;
        break;
      default: {
        double s0 = 0.0;
        double s1 = 0.0;
        std::uint8_t j = 0;
        const std::uint8_t length = lengths[row];
        for (; j + 2 <= length; j += 2) {
          s0 += term(row, k + j);
          s1 += term(row, k + j + 1);
        }
        if (j < length) {
          s0 += term(row, k + j);
        }
        v = s0 + s1;
        k += length;
      }
    }
    out[row] = static_cast<Value>(v);
    if (weight != 0.0) accum[row] += weight * v;
    delta = std::max(delta, std::abs(v - static_cast<double>(x[row])));
  }
  return delta;
}

template <typename Value>
double FusedGatherPlan::fused_segments_simd(
    const Value* x, Value* out, double* accum, const Value* dictionary,
    double weight, std::size_t row_begin, std::size_t row_end,
    bool use_avx512) const {
#if !KIBAMRM_HAVE_AVX2_TIER
  (void)use_avx512;
  return fused_rows_generic(x, out, accum, dictionary, weight, row_begin,
                            row_end);
#else
  // First segment that can still cover row_begin.
  std::size_t si =
      std::partition_point(segments_.begin(), segments_.end(),
                           [&](const UniformSegment& segment) {
                             return segment.row_begin + segment.row_count <=
                                    row_begin;
                           }) -
      segments_.begin();
  double delta = 0.0;
  std::size_t row = row_begin;
  while (row < row_end) {
    if (si < segments_.size() && segments_[si].row_begin <= row) {
      const UniformSegment& segment = segments_[si];
      const std::size_t segment_end = segment.row_begin + segment.row_count;
      const std::size_t end = std::min(row_end, segment_end);
      const std::int16_t* offsets =
          offsets_.data() + entry_start_[segment.row_begin];
      const std::uint16_t* ids = segment_ids_.data() + segment.ids_base;
      const std::size_t local = row - segment.row_begin;
      double segment_delta;
      if constexpr (std::is_same_v<Value, double>) {
#if KIBAMRM_HAVE_AVX512_TIER
        if (use_avx512) {
          segment_delta = kernels::detail::avx512_plan_uniform_rows(
              segment.length, offsets, ids, segment.row_count, local,
              dictionary, x, out, accum, weight, row, end);
        } else
#endif
        {
          segment_delta = kernels::detail::avx2_plan_uniform_rows(
              segment.length, offsets, ids, segment.row_count, local,
              dictionary, x, out, accum, weight, row, end);
        }
      } else {
#if KIBAMRM_HAVE_AVX512_TIER
        if (use_avx512) {
          segment_delta = kernels::detail::avx512_plan_uniform_rows_mixed(
              segment.length, offsets, ids, segment.row_count, local,
              dictionary, x, out, accum, weight, row, end);
        } else
#endif
        {
          segment_delta = kernels::detail::avx2_plan_uniform_rows_mixed(
              segment.length, offsets, ids, segment.row_count, local,
              dictionary, x, out, accum, weight, row, end);
        }
      }
      delta = std::max(delta, segment_delta);
      row = end;
      if (row >= segment_end) ++si;
    } else {
      const std::size_t end =
          si < segments_.size()
              ? std::min<std::size_t>(row_end, segments_[si].row_begin)
              : row_end;
      delta = std::max(delta, fused_rows_generic(x, out, accum, dictionary,
                                                 weight, row, end));
      row = end;
    }
  }
  return delta;
#endif
}

double FusedGatherPlan::fused_range_row_offset(
    const std::vector<double>& x, std::vector<double>& out,
    std::vector<double>& accum, double weight, std::size_t row_begin,
    std::size_t row_end) const {
#if KIBAMRM_HAVE_AVX2_TIER
  const kernels::Dispatch tier =
      kernels::double_tier(kernels::active_dispatch());
  const bool simd = tier == kernels::Dispatch::kAvx2 ||
                    tier == kernels::Dispatch::kAvx512;
  // Uniform segments dispatch automatically under any SIMD tier: the
  // across-row kernels replace gathers with contiguous loads, which wins
  // wherever segments exist at all (they only exist on reordered chains).
  if (simd && !segments_.empty()) {
    return fused_segments_simd(x.data(), out.data(), accum.data(),
                               dictionary_.data(), weight, row_begin,
                               row_end, tier == kernels::Dispatch::kAvx512);
  }
  // The legacy within-row gather grouping stays opt-in (see
  // kernels::gather_grouping): the scalar per-length switch measured
  // faster on gather-slow parts.
  if (kernels::gather_grouping() && simd &&
      rows() <= static_cast<std::size_t>(
                    std::numeric_limits<std::int32_t>::max())) {
    return kernels::detail::avx2_plan_fused_rows(
        lengths_.data(), entry_start_.data(), offsets_.data(),
        value_ids_.data(), dictionary_.data(), x.data(), out.data(),
        accum.data(), weight, row_begin, row_end);
  }
#endif
  return fused_rows_generic(x.data(), out.data(), accum.data(),
                            dictionary_.data(), weight, row_begin, row_end);
}

double FusedGatherPlan::multiply_fused_range_mixed(
    const std::vector<float>& x, std::vector<float>& out,
    std::vector<double>& accum, double weight, std::size_t row_begin,
    std::size_t row_end) const {
  KIBAMRM_REQUIRE(mixed_supported(),
                  "FusedGatherPlan: mixed kernels need the row-offset "
                  "layout");
  KIBAMRM_REQUIRE(x.size() == rows() && out.size() == rows() &&
                      accum.size() == rows(),
                  "FusedGatherPlan: vectors not sized to rows()");
  KIBAMRM_REQUIRE(row_begin <= row_end && row_end <= rows(),
                  "FusedGatherPlan: invalid row range");
#if KIBAMRM_HAVE_AVX2_TIER
  const kernels::Dispatch tier =
      kernels::double_tier(kernels::active_dispatch());
  if ((tier == kernels::Dispatch::kAvx2 ||
       tier == kernels::Dispatch::kAvx512) &&
      !segments_.empty()) {
    return fused_segments_simd(x.data(), out.data(), accum.data(),
                               dictionary_f_.data(), weight, row_begin,
                               row_end, tier == kernels::Dispatch::kAvx512);
  }
#endif
  return fused_rows_generic(x.data(), out.data(), accum.data(),
                            dictionary_f_.data(), weight, row_begin,
                            row_end);
}

std::vector<std::pair<std::size_t, std::size_t>>
FusedGatherPlan::uniform_segment_spans() const {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  spans.reserve(segments_.size());
  for (const UniformSegment& segment : segments_) {
    spans.emplace_back(segment.row_begin,
                       segment.row_begin + segment.row_count);
  }
  return spans;
}

void FusedGatherPlan::align_ranges_to_segments(
    std::vector<std::size_t>& ranges) const {
  KIBAMRM_REQUIRE(ranges.size() >= 2 && ranges.front() == 0 &&
                      ranges.back() == rows() &&
                      std::is_sorted(ranges.begin(), ranges.end()),
                  "align_ranges_to_segments: not a shard partition");
  if (segments_.empty()) return;
  for (std::size_t i = 1; i + 1 < ranges.size(); ++i) {
    const std::size_t boundary = ranges[i];
    // Segment that could contain the boundary strictly inside it.
    const auto it = std::partition_point(
        segments_.begin(), segments_.end(),
        [&](const UniformSegment& segment) {
          return segment.row_begin + segment.row_count <= boundary;
        });
    if (it == segments_.end() || it->row_begin >= boundary) continue;
    const std::size_t begin = it->row_begin;
    const std::size_t end = it->row_begin + it->row_count;
    ranges[i] = boundary - begin <= end - boundary ? begin : end;
  }
  // Snapping can reorder or collapse neighbouring boundaries; restore a
  // strictly-increasing partition (fewer shards is fine -- the pool's
  // dynamic claim absorbs it).
  std::sort(ranges.begin(), ranges.end());
  ranges.erase(std::unique(ranges.begin(), ranges.end()), ranges.end());
  if (ranges.size() < 2) ranges = {0, rows()};
}

double FusedGatherPlan::fused_range_column_delta(
    const std::vector<double>& x, std::vector<double>& out,
    std::vector<double>& accum, double weight, std::size_t row_begin,
    std::size_t row_end) const {
  const std::uint8_t* lengths = lengths_.data();
  const std::uint32_t* first_col = first_col_.data();
  const std::uint16_t* deltas = deltas_.data();
  const std::uint16_t* value_ids = value_ids_.data();
  const double* dictionary = dictionary_.data();
  const double* in = x.data();
  double delta = 0.0;
  std::size_t k = entry_start_[row_begin];
  for (std::size_t row = row_begin; row < row_end; ++row) {
    // Columns rebuild incrementally from the per-row absolute start; the
    // per-length evaluation order is the same canonical one as above, so
    // the two layouts agree bitwise on any matrix both can represent.
    const std::uint8_t length = lengths[row];
    std::uint32_t c0;
    std::uint32_t c1;
    std::uint32_t c2;
    std::uint32_t c3;
    double v;
    switch (length) {
      case 0:
        v = 0.0;
        break;
      case 1:
        v = dictionary[value_ids[k]] * in[first_col[row]];
        k += 1;
        break;
      case 2:
        c0 = first_col[row];
        c1 = c0 + deltas[k + 1];
        v = dictionary[value_ids[k]] * in[c0] +
            dictionary[value_ids[k + 1]] * in[c1];
        k += 2;
        break;
      case 3:
        c0 = first_col[row];
        c1 = c0 + deltas[k + 1];
        c2 = c1 + deltas[k + 2];
        v = dictionary[value_ids[k]] * in[c0] +
            dictionary[value_ids[k + 1]] * in[c1] +
            dictionary[value_ids[k + 2]] * in[c2];
        k += 3;
        break;
      case 4:
        c0 = first_col[row];
        c1 = c0 + deltas[k + 1];
        c2 = c1 + deltas[k + 2];
        c3 = c2 + deltas[k + 3];
        v = (dictionary[value_ids[k]] * in[c0] +
             dictionary[value_ids[k + 1]] * in[c1]) +
            (dictionary[value_ids[k + 2]] * in[c2] +
             dictionary[value_ids[k + 3]] * in[c3]);
        k += 4;
        break;
      default: {
        double s0 = 0.0;
        double s1 = 0.0;
        std::uint32_t even_col = first_col[row];
        std::uint32_t odd_col = even_col + deltas[k + 1];
        std::uint8_t j = 0;
        for (; j + 2 <= length; j += 2) {
          s0 += dictionary[value_ids[k + j]] * in[even_col];
          s1 += dictionary[value_ids[k + j + 1]] * in[odd_col];
          if (j + 2 < length) {
            even_col = odd_col + deltas[k + j + 2];
            if (j + 3 < length) odd_col = even_col + deltas[k + j + 3];
          }
        }
        if (j < length) {
          s0 += dictionary[value_ids[k + j]] * in[even_col];
        }
        v = s0 + s1;
        k += length;
      }
    }
    out[row] = v;
    if (weight != 0.0) accum[row] += weight * v;
    delta = std::max(delta, std::abs(v - in[row]));
  }
  return delta;
}

}  // namespace kibamrm::linalg
