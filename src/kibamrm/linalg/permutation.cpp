#include "kibamrm/linalg/permutation.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "kibamrm/common/error.hpp"

namespace kibamrm::linalg {

Permutation::Permutation(std::vector<std::uint32_t> new_of_old)
    : new_of_old_(std::move(new_of_old)) {
  KIBAMRM_REQUIRE(
      new_of_old_.size() <= std::numeric_limits<std::uint32_t>::max(),
      "Permutation: size exceeds uint32 index space");
  std::vector<std::uint8_t> seen(new_of_old_.size(), 0);
  for (const std::uint32_t target : new_of_old_) {
    KIBAMRM_REQUIRE(target < new_of_old_.size() && !seen[target],
                    "Permutation: mapping is not a bijection");
    seen[target] = 1;
  }
}

Permutation Permutation::identity(std::size_t n) {
  std::vector<std::uint32_t> map(n);
  std::iota(map.begin(), map.end(), 0u);
  Permutation p;
  p.new_of_old_ = std::move(map);  // trivially a bijection; skip the check
  return p;
}

bool Permutation::is_identity() const {
  for (std::size_t i = 0; i < new_of_old_.size(); ++i) {
    if (new_of_old_[i] != i) return false;
  }
  return true;
}

Permutation Permutation::inverse() const {
  std::vector<std::uint32_t> inv(new_of_old_.size());
  for (std::size_t i = 0; i < new_of_old_.size(); ++i) {
    inv[new_of_old_[i]] = static_cast<std::uint32_t>(i);
  }
  Permutation p;
  p.new_of_old_ = std::move(inv);  // inverse of a bijection is one
  return p;
}

Permutation Permutation::then(const Permutation& other) const {
  KIBAMRM_REQUIRE(size() == other.size(),
                  "Permutation::then: size mismatch");
  std::vector<std::uint32_t> composed(new_of_old_.size());
  for (std::size_t i = 0; i < new_of_old_.size(); ++i) {
    composed[i] = other.new_of_old_[new_of_old_[i]];
  }
  Permutation p;
  p.new_of_old_ = std::move(composed);
  return p;
}

std::vector<double> Permutation::apply(const std::vector<double>& v) const {
  KIBAMRM_REQUIRE(v.size() == size(), "Permutation::apply: size mismatch");
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[new_of_old_[i]] = v[i];
  return out;
}

std::vector<double> Permutation::apply_inverse(
    const std::vector<double>& v) const {
  KIBAMRM_REQUIRE(v.size() == size(),
                  "Permutation::apply_inverse: size mismatch");
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[new_of_old_[i]];
  return out;
}

CsrMatrix Permutation::permuted(const CsrMatrix& matrix) const {
  KIBAMRM_REQUIRE(matrix.rows() == matrix.cols(),
                  "Permutation::permuted: matrix must be square");
  KIBAMRM_REQUIRE(matrix.rows() == size(),
                  "Permutation::permuted: dimension mismatch");
  const auto row_ptr = matrix.row_pointers();
  const auto col_idx = matrix.column_indices();
  const auto values = matrix.values();

  // Distinct source coordinates stay distinct under a bijection, so the
  // builder's duplicate merge never fires; its sort restores the CSR
  // invariants for the renumbered coordinates.  One-time cost at chain
  // build; the hot loops never permute.
  CooBuilder builder(size(), size());
  builder.reserve(matrix.nonzeros());
  for (std::size_t row = 0; row < size(); ++row) {
    const std::uint32_t new_row = new_of_old_[row];
    for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      builder.add(new_row, new_of_old_[col_idx[k]], values[k]);
    }
  }
  return builder.build();
}

Permutation Permutation::reverse_cuthill_mckee(const CsrMatrix& pattern) {
  KIBAMRM_REQUIRE(pattern.rows() == pattern.cols(),
                  "reverse_cuthill_mckee: matrix must be square");
  const std::size_t n = pattern.rows();
  const auto row_ptr = pattern.row_pointers();
  const auto col_idx = pattern.column_indices();

  // Symmetrised adjacency (A + A^T, diagonal dropped) in CSR form.
  std::vector<std::uint32_t> degree(n, 0);
  for (std::size_t row = 0; row < n; ++row) {
    for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      const std::uint32_t col = col_idx[k];
      if (col == row) continue;
      ++degree[row];
      ++degree[col];
    }
  }
  std::vector<std::uint32_t> adj_ptr(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) adj_ptr[i + 1] = adj_ptr[i] + degree[i];
  std::vector<std::uint32_t> adj(adj_ptr[n]);
  std::vector<std::uint32_t> fill(adj_ptr.begin(), adj_ptr.end() - 1);
  for (std::size_t row = 0; row < n; ++row) {
    for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      const std::uint32_t col = col_idx[k];
      if (col == row) continue;
      adj[fill[row]++] = col;
      adj[fill[col]++] = static_cast<std::uint32_t>(row);
    }
  }
  // Duplicate edges (an entry stored in both triangles) only skew the BFS
  // tie-break, never the visited set; deduplicate anyway so degrees mean
  // what Cuthill-McKee assumes.
  std::vector<std::uint32_t> true_degree(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto begin = adj.begin() + adj_ptr[i];
    const auto end = adj.begin() + fill[i];
    std::sort(begin, end);
    true_degree[i] =
        static_cast<std::uint32_t>(std::unique(begin, end) - begin);
  }

  std::vector<std::uint32_t> order;  // order[k] = old index visited k-th
  order.reserve(n);
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<std::uint32_t> frontier;
  // Discovery marks for the component pre-pass; components are disjoint,
  // so the marks never need resetting between seeds.
  std::vector<std::uint8_t> seen(n, 0);
  // Min-degree start per component, scanned in index order so the result
  // is deterministic.
  for (std::size_t seed_scan = 0; seed_scan < n; ++seed_scan) {
    if (visited[seed_scan]) continue;
    std::uint32_t start = static_cast<std::uint32_t>(seed_scan);
    // Cheapest useful peripheral heuristic: the minimum-degree vertex of
    // the component containing seed_scan.  One BFS discovers the
    // component; its min-degree member restarts the numbering sweep.
    {
      std::vector<std::uint32_t> component{start};
      seen[start] = 1;
      for (std::size_t head = 0; head < component.size(); ++head) {
        const std::uint32_t v = component[head];
        for (std::uint32_t k = adj_ptr[v]; k < adj_ptr[v] + true_degree[v];
             ++k) {
          const std::uint32_t w = adj[k];
          if (!seen[w]) {
            seen[w] = 1;
            component.push_back(w);
          }
        }
      }
      for (const std::uint32_t v : component) {
        if (true_degree[v] < true_degree[start] ||
            (true_degree[v] == true_degree[start] && v < start)) {
          start = v;
        }
      }
    }
    // Cuthill-McKee sweep of the component.
    visited[start] = 1;
    order.push_back(start);
    std::size_t head = order.size() - 1;
    while (head < order.size()) {
      const std::uint32_t v = order[head++];
      frontier.clear();
      for (std::uint32_t k = adj_ptr[v]; k < adj_ptr[v] + true_degree[v];
           ++k) {
        const std::uint32_t w = adj[k];
        if (!visited[w]) {
          visited[w] = 1;
          frontier.push_back(w);
        }
      }
      std::sort(frontier.begin(), frontier.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return true_degree[a] != true_degree[b]
                             ? true_degree[a] < true_degree[b]
                             : a < b;
                });
      order.insert(order.end(), frontier.begin(), frontier.end());
    }
  }

  // Reverse the visit order; new_of_old inverts the order array.
  std::vector<std::uint32_t> new_of_old(n);
  for (std::size_t k = 0; k < n; ++k) {
    new_of_old[order[k]] = static_cast<std::uint32_t>(n - 1 - k);
  }
  Permutation p;
  p.new_of_old_ = std::move(new_of_old);
  return p;
}

StructureStats structure_stats(const CsrMatrix& matrix) {
  const auto row_ptr = matrix.row_pointers();
  const auto col_idx = matrix.column_indices();
  StructureStats stats;
  stats.rows = matrix.rows();
  for (std::size_t row = 0; row < matrix.rows(); ++row) {
    for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
      const std::uint64_t distance =
          col_idx[k] >= row ? col_idx[k] - row : row - col_idx[k];
      stats.bandwidth = std::max(stats.bandwidth, distance);
    }
  }
  // Maximal runs of consecutive equal-length rows; runs of >= 4 are what
  // the grouped gather kernels consume.
  std::size_t row = 0;
  while (row < matrix.rows()) {
    const std::uint32_t length = row_ptr[row + 1] - row_ptr[row];
    std::size_t end = row + 1;
    while (end < matrix.rows() &&
           row_ptr[end + 1] - row_ptr[end] == length) {
      ++end;
    }
    const std::uint64_t run = end - row;
    if (run >= 4) stats.groupable_rows += run;
    stats.longest_uniform_run = std::max(stats.longest_uniform_run, run);
    row = end;
  }
  // Diagonal runs: rows repeating the previous row's full offset pattern.
  std::uint64_t current_run = matrix.rows() > 0 ? 1 : 0;
  for (std::size_t r = 1; r < matrix.rows(); ++r) {
    const std::uint32_t length = row_ptr[r + 1] - row_ptr[r];
    bool repeats = length == row_ptr[r] - row_ptr[r - 1];
    if (repeats) {
      const std::uint32_t k0 = row_ptr[r - 1];
      const std::uint32_t k1 = row_ptr[r];
      for (std::uint32_t e = 0; e < length; ++e) {
        if (static_cast<std::int64_t>(col_idx[k0 + e]) -
                static_cast<std::int64_t>(r - 1) !=
            static_cast<std::int64_t>(col_idx[k1 + e]) -
                static_cast<std::int64_t>(r)) {
          repeats = false;
          break;
        }
      }
    }
    if (repeats) {
      ++stats.diagonal_rows;
      ++current_run;
      stats.longest_diagonal_run =
          std::max(stats.longest_diagonal_run, current_run);
    } else {
      current_run = 1;
    }
  }
  return stats;
}

}  // namespace kibamrm::linalg
