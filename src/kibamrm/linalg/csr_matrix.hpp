// Compressed sparse row matrices and a coordinate-format builder.
//
// The Markovian approximation of Sec. 5 produces CTMC generators with up to
// millions of non-zeros; CSR with contiguous storage is the workhorse format
// for the repeated vector-matrix products of uniformisation.
//
// Probability vectors are row vectors, so the hot kernel is the *left*
// product  out = pi * A  (CsrMatrix::left_multiply), implemented as a scatter
// over rows: for each i, out[j] += pi[i] * A(i,j).  This walks A exactly once
// in storage order, which is as cache-friendly as CSR allows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace kibamrm::linalg {

/// One (row, col, value) entry of a matrix under construction.
struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

class CsrMatrix;

/// Accumulates (row, col, value) triplets, then compresses to CSR.
/// Duplicate coordinates are summed, zeros dropped.
class CooBuilder {
 public:
  CooBuilder(std::size_t rows, std::size_t cols);

  /// Adds `value` at (row, col).  Bounds-checked.
  void add(std::size_t row, std::size_t col, double value);

  /// Number of triplets accumulated so far (before duplicate merging).
  std::size_t entry_count() const { return triplets_.size(); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Reserves triplet storage (an exact-size reserve avoids re-allocation
  /// spikes when building multi-million-entry generators).
  void reserve(std::size_t n) { triplets_.reserve(n); }

  /// Sorts, merges duplicates, drops explicit zeros and builds the CSR
  /// matrix.  The builder is left empty afterwards.
  CsrMatrix build();

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

/// Immutable compressed-sparse-row matrix.
class CsrMatrix {
 public:
  /// Empty matrix of the given shape.
  CsrMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// out = A * x  (column vector on the right).
  void multiply(const std::vector<double>& x, std::vector<double>& out) const;

  /// Row-range slice of multiply(): writes out[row] for row in
  /// [row_begin, row_end) only and touches nothing else.  `out` must
  /// already have size rows().  Because each output entry is a gather over
  /// one CSR row, disjoint ranges write disjoint entries -- this is the
  /// thread-safe spmv entry point the parallel uniformisation backend
  /// shards across a ThreadPool, and the result is bitwise independent of
  /// how the rows are partitioned.
  void multiply_range(const std::vector<double>& x, std::vector<double>& out,
                      std::size_t row_begin, std::size_t row_end) const;

  /// Splits the rows into at most `parts` contiguous ranges of roughly
  /// equal non-zero count (each row also weighted by one write, so empty
  /// rows are not free).  Returns the range boundaries: ranges[i] ..
  /// ranges[i+1] is part i, ranges.front() == 0, ranges.back() == rows().
  /// Fewer ranges come back when the matrix is too small to fill `parts`.
  std::vector<std::size_t> balanced_row_ranges(std::size_t parts) const;

  /// out = pi * A  (row vector on the left).  This is the uniformisation
  /// kernel; `out` is overwritten (its capacity is reused across calls, so
  /// repeated products over time increments allocate nothing).
  void left_multiply(const std::vector<double>& pi,
                     std::vector<double>& out) const;

  /// Sparsity-aware variant of left_multiply for uniformised chains with
  /// absorbing states.  `active` and `identity` partition the row indices:
  /// rows in `identity` are guaranteed (by the caller, see identity_rows())
  /// to hold exactly a unit diagonal, so their contribution is
  /// out[row] += pi[row] without touching the CSR arrays -- the absorbing
  /// j1 = 0 layer of the expanded battery chain costs one add per state
  /// instead of a pointer chase per iteration.  Rows in `active` are
  /// scattered through the sparse structure as usual.
  void left_multiply_partitioned(const std::vector<double>& pi,
                                 std::vector<double>& out,
                                 std::span<const std::uint32_t> active,
                                 std::span<const std::uint32_t> identity) const;

  /// Fused uniformisation step: left_multiply_partitioned() plus, in the
  /// same finishing sweep over `out`, the Poisson-weighted accumulation
  /// accum += weight * out (skipped for weight == 0, i.e. terms left of
  /// the Fox-Glynn window) and the sup-norm step delta
  ///     max_i |out[i] - pi[i]|  ==  ||pi P^n - pi P^(n-1)||_inf,
  /// which is the steady-state detection signal.  Replaces the separate
  /// axpy and norm passes of the unfused loop -- one full read of `out`
  /// and one of `pi` per iteration instead of three.  Square matrices
  /// only; returns the delta.
  ///
  /// This is the scatter-flavoured fused variant; the production solvers
  /// use the gather-side multiply_fused_range / FusedGatherPlan (faster
  /// on the paper's chains), and this kernel is kept for A/B measurement
  /// and for workloads where the zero-row skip of the scatter wins.
  double left_multiply_partitioned_fused(
      const std::vector<double>& pi, std::vector<double>& out,
      std::span<const std::uint32_t> active,
      std::span<const std::uint32_t> identity, double weight,
      std::vector<double>& accum) const;

  /// Fused gather-side uniformisation step on a *transposed* transition
  /// matrix: for rows in [row_begin, row_end) computes
  ///     out[row]   = dot(this row, x)        (== (x * P)[row]),
  ///     accum[row] += weight * out[row]      (skipped for weight == 0),
  /// and returns the range-local sup norm max |out[row] - x[row]|.  The
  /// row dot product dispatches on the row length (expanded battery chains
  /// average ~3 entries per row, so the row loop dominates, not the dot)
  /// with a fixed evaluation order per case, so results are bitwise
  /// independent of how rows are sharded -- the parallel backend's
  /// determinism guarantee carries over.  The per-length order is the
  /// canonical one mirrored bitwise by linalg::FusedGatherPlan.  Square
  /// matrices only; disjoint ranges touch disjoint out/accum entries.
  double multiply_fused_range(const std::vector<double>& x,
                              std::vector<double>& out,
                              std::vector<double>& accum, double weight,
                              std::size_t row_begin,
                              std::size_t row_end) const;

  /// Rows whose only stored entry is a unit diagonal -- absorbing states of
  /// a uniformised transition matrix P = I + Q/q.
  std::vector<std::uint32_t> identity_rows() const;

  /// Per-row sums (for generator validation: rows of Q must sum to ~0).
  std::vector<double> row_sums() const;

  /// Entry lookup by binary search within the row; O(log nnz_row).
  double at(std::size_t row, std::size_t col) const;

  /// Returns a copy scaled by alpha.
  CsrMatrix scaled(double alpha) const;

  /// Maximum over rows of the negated diagonal entry, max_i(-A(i,i)).
  /// For a generator matrix this is the minimal uniformisation rate.
  double max_exit_rate() const;

  /// Builds the uniformised transition-probability matrix
  /// P = I + Q / q for a generator Q and uniformisation rate q >=
  /// max_exit_rate().  Diagonal entries are clamped to [0,1] against
  /// round-off.  Throws InvalidArgument if q is too small or the matrix is
  /// not square.
  CsrMatrix uniformized(double q) const;

  /// Raw structure accessors (read-only views) for kernels and tests.
  std::span<const std::uint32_t> row_pointers() const { return row_ptr_; }
  std::span<const std::uint32_t> column_indices() const { return col_idx_; }
  std::span<const double> values() const { return values_; }

  /// Transposed copy (used to express backward equations and in tests).
  CsrMatrix transposed() const;

  /// Rows reachable from `seeds` following stored entries row -> column
  /// (the sparsity pattern as a directed graph).  Returns the sorted
  /// closure, seeds included.  Square matrices only.  For a transition
  /// matrix and the support of an initial distribution this is every
  /// state the chain can ever occupy -- the paper's expanded battery
  /// chains reach only about half their state space from the standard
  /// full-charge start, and the transient solvers exploit that.
  std::vector<std::uint32_t> reachable_rows(
      std::span<const std::uint32_t> seeds) const;

  /// Transpose of the submatrix induced by `keep` x `keep`, with indices
  /// compacted to 0..keep.size()-1 in order (`keep` must be sorted,
  /// unique and in range).  Entries keep their relative order, so kernels
  /// over the compacted matrix sum in the same order as over the full
  /// transpose restricted to `keep`.  Square matrices only.
  CsrMatrix transposed_submatrix(std::span<const std::uint32_t> keep) const;

 private:
  friend class CooBuilder;

  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint32_t> row_ptr_;  // size rows_+1
  std::vector<std::uint32_t> col_idx_;  // size nnz
  std::vector<double> values_;          // size nnz
};

}  // namespace kibamrm::linalg
