// Private interface between the dispatching kernel entry points and the
// AVX2 translation unit (kernels_avx2.cpp, compiled with -mavx2 and FP
// contraction off).  Not installed; include only from linalg/*.cpp.
//
// Every avx2_* function implements exactly the canonical arithmetic order
// documented at its scalar counterpart -- the bitwise-parity tests in
// tests/test_linalg_kernels.cpp hold the two tiers together.
#pragma once

#include <cstddef>
#include <cstdint>

// The AVX2 tier exists only on x86-64 GCC/Clang builds; elsewhere the
// dispatcher never leaves the scalar tier and kernels_avx2.cpp compiles to
// an empty TU.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KIBAMRM_HAVE_AVX2_TIER 1
#else
#define KIBAMRM_HAVE_AVX2_TIER 0
#endif

namespace kibamrm::linalg::kernels::detail {

#if KIBAMRM_HAVE_AVX2_TIER

/// Block partials of the fixed-block pairwise dot (contract in
/// kernels.hpp), blocks [block_begin, block_end).
void avx2_dot_blocks(const double* a, const double* b, std::size_t n,
                     std::size_t block_begin, std::size_t block_end,
                     double* partials);

void avx2_axpy(double alpha, const double* x, double* y, std::size_t n);

void avx2_scale(double* v, double alpha, std::size_t n);

/// CSR gather rows [row_begin, row_end): out[row] = dot(row, x) in the
/// sequential per-row order of CsrMatrix::multiply_range.
void avx2_csr_multiply_rows(const std::uint32_t* row_ptr,
                            const std::uint32_t* col_idx,
                            const double* values, const double* x,
                            double* out, std::size_t row_begin,
                            std::size_t row_end);

/// Fused uniformisation step over the compressed row-offset plan layout
/// (per-row canonical order of FusedGatherPlan::multiply_fused_range);
/// returns the range-local sup-norm delta.  `entry_start` indexes the
/// first stored entry of each row.
double avx2_plan_fused_rows(const std::uint8_t* lengths,
                            const std::uint32_t* entry_start,
                            const std::int16_t* offsets,
                            const std::uint16_t* value_ids,
                            const double* dictionary, const double* x,
                            double* out, double* accum, double weight,
                            std::size_t row_begin, std::size_t row_end);

#endif  // KIBAMRM_HAVE_AVX2_TIER

}  // namespace kibamrm::linalg::kernels::detail
