// Private interface between the dispatching kernel entry points and the
// SIMD translation units (kernels_avx2.cpp with -mavx2, kernels_avx512.cpp
// with -mavx512{f,dq,vl,bw}, both with FP contraction off).  Not
// installed; include only from linalg/*.cpp.
//
// Every avx2_*/avx512_* double-precision function implements exactly the
// canonical arithmetic order documented at its scalar counterpart -- the
// bitwise-parity tests in tests/test_linalg_kernels.cpp hold the tiers
// together.  The *_mixed functions implement the mixed-precision contract
// (float operands, every product promoted to double before accumulation
// in the canonical order); they are deterministic but not bitwise
// comparable to the double tiers.
#pragma once

#include <cstddef>
#include <cstdint>

// The SIMD tiers exist only on x86-64 GCC/Clang builds; elsewhere the
// dispatcher never leaves the scalar tier and the SIMD .cpp files compile
// to empty TUs.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KIBAMRM_HAVE_AVX2_TIER 1
#define KIBAMRM_HAVE_AVX512_TIER 1
#else
#define KIBAMRM_HAVE_AVX2_TIER 0
#define KIBAMRM_HAVE_AVX512_TIER 0
#endif

namespace kibamrm::linalg::kernels::detail {

#if KIBAMRM_HAVE_AVX2_TIER

/// Block partials of the fixed-block pairwise dot (contract in
/// kernels.hpp), blocks [block_begin, block_end).
void avx2_dot_blocks(const double* a, const double* b, std::size_t n,
                     std::size_t block_begin, std::size_t block_end,
                     double* partials);

void avx2_axpy(double alpha, const double* x, double* y, std::size_t n);

void avx2_scale(double* v, double alpha, std::size_t n);

/// CSR gather rows [row_begin, row_end): out[row] = dot(row, x) in the
/// sequential per-row order of CsrMatrix::multiply_range.
void avx2_csr_multiply_rows(const std::uint32_t* row_ptr,
                            const std::uint32_t* col_idx,
                            const double* values, const double* x,
                            double* out, std::size_t row_begin,
                            std::size_t row_end);

/// Fused uniformisation step over the compressed row-offset plan layout
/// (per-row canonical order of FusedGatherPlan::multiply_fused_range);
/// returns the range-local sup-norm delta.  `entry_start` indexes the
/// first stored entry of each row.
double avx2_plan_fused_rows(const std::uint8_t* lengths,
                            const std::uint32_t* entry_start,
                            const std::int16_t* offsets,
                            const std::uint16_t* value_ids,
                            const double* dictionary, const double* x,
                            double* out, double* accum, double weight,
                            std::size_t row_begin, std::size_t row_end);

/// Fused uniformisation step over one uniform segment: rows
/// [row_begin, row_end) all store `length` entries (1..4) at the shared
/// column offsets `offsets[0..length)`, so x loads are contiguous across
/// rows.  `ids_t` is the segment's entry-major transposed dictionary-id
/// slab (ids_t[e * seg_rows + r] = entry e of segment-local row r) and
/// `local_begin` is row_begin's index within the segment.  Per-row
/// arithmetic follows the canonical per-length order; returns the
/// range-local sup-norm delta.
double avx2_plan_uniform_rows(std::uint32_t length,
                              const std::int16_t* offsets,
                              const std::uint16_t* ids_t,
                              std::size_t seg_rows, std::size_t local_begin,
                              const double* dictionary, const double* x,
                              double* out, double* accum, double weight,
                              std::size_t row_begin, std::size_t row_end);

/// Mixed-precision uniform segment: float operands, products promoted to
/// double and accumulated in the canonical per-length order; out is
/// float, accum stays double.
double avx2_plan_uniform_rows_mixed(
    std::uint32_t length, const std::int16_t* offsets,
    const std::uint16_t* ids_t, std::size_t seg_rows,
    std::size_t local_begin, const float* dictionary, const float* x,
    float* out, double* accum, double weight, std::size_t row_begin,
    std::size_t row_end);

#endif  // KIBAMRM_HAVE_AVX2_TIER

#if KIBAMRM_HAVE_AVX512_TIER

/// AVX-512 twins of the avx2_* kernels above; same contracts.  The
/// reduction holds the sixteen contract lanes in two zmm registers and
/// folds through the identical pairwise tree, so dot partials stay
/// bitwise equal to the scalar and AVX2 tiers.
void avx512_dot_blocks(const double* a, const double* b, std::size_t n,
                       std::size_t block_begin, std::size_t block_end,
                       double* partials);

void avx512_axpy(double alpha, const double* x, double* y, std::size_t n);

void avx512_scale(double* v, double alpha, std::size_t n);

double avx512_plan_uniform_rows(std::uint32_t length,
                                const std::int16_t* offsets,
                                const std::uint16_t* ids_t,
                                std::size_t seg_rows,
                                std::size_t local_begin,
                                const double* dictionary, const double* x,
                                double* out, double* accum, double weight,
                                std::size_t row_begin, std::size_t row_end);

double avx512_plan_uniform_rows_mixed(
    std::uint32_t length, const std::int16_t* offsets,
    const std::uint16_t* ids_t, std::size_t seg_rows,
    std::size_t local_begin, const float* dictionary, const float* x,
    float* out, double* accum, double weight, std::size_t row_begin,
    std::size_t row_end);

#endif  // KIBAMRM_HAVE_AVX512_TIER

}  // namespace kibamrm::linalg::kernels::detail
