// Matrix exponential for small dense matrices.
//
// Scaling-and-squaring with the degree-13 Pade approximant (Higham 2005,
// "The scaling and squaring method for the matrix exponential revisited").
// This is exactly the algorithm behind expm in MATLAB/SciPy.  We need the
// complex variant because the exact battery-lifetime solver evaluates
// exp(t (Q - s R)) on the Bromwich contour, where s is complex
// (see core/exact_c1.hpp).
#pragma once

#include "kibamrm/linalg/dense_matrix.hpp"

namespace kibamrm::linalg {

/// exp(A) for a real square matrix.
DenseReal expm(const DenseReal& a);

/// exp(A) for a complex square matrix.
DenseComplex expm(const DenseComplex& a);

}  // namespace kibamrm::linalg
