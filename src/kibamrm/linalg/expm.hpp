// Matrix exponential for small dense matrices.
//
// Scaling-and-squaring with the degree-13 Pade approximant (Higham 2005,
// "The scaling and squaring method for the matrix exponential revisited").
// This is exactly the algorithm behind expm in MATLAB/SciPy.  We need the
// complex variant because the exact battery-lifetime solver evaluates
// exp(t (Q - s R)) on the Bromwich contour, where s is complex
// (see core/exact_c1.hpp).
//
// ScaledExpmCache evaluates exp(s A) for one fixed A and many scalars s:
// the even Pade powers A^2, A^4, A^6 are computed once and rescaled per
// call ((sA)^2k == s^2k A^2k), so repeated evaluations -- the Krylov
// backend re-exponentiating one Hessenberg matrix across trial sub-steps
// -- skip the three dominant matrix products of a fresh expm.
#pragma once

#include <cstdint>

#include "kibamrm/common/thread_annotations.hpp"
#include "kibamrm/linalg/dense_matrix.hpp"

namespace kibamrm::linalg {

/// exp(A) for a real square matrix.
DenseReal expm(const DenseReal& a);

/// exp(A) for a complex square matrix.
DenseComplex expm(const DenseComplex& a);

/// Evaluates exp(s A) for a fixed small matrix A and varying scalars s.
///
/// The degree-13 Pade approximant needs A^2, A^4 and A^6; because matrix
/// powers scale as (sA)^k = s^k A^k, those three products are cached at
/// construction and every evaluation only assembles the Pade numerator /
/// denominator (two products + one LU solve) plus the squaring chain.
///
/// A may be non-square with rows() >= cols(): the missing trailing columns
/// are taken as zero and A is embedded into the rows() x rows() frame.
/// This is the shape the Krylov backend's augmented Arnoldi Hessenberg
/// matrix arrives in -- its final column (the error-estimate chain e_{m+2})
/// is structurally zero and need not be materialised by the caller.
class ScaledExpmCache {
 public:
  /// Caches the Pade powers of A (zero-padded square if rows > cols).
  /// Throws InvalidArgument if rows() < cols() or A is empty.
  explicit ScaledExpmCache(const DenseReal& a);

  /// exp(s A), accurate to the Pade-13 approximant for any s (the matrix
  /// is rescaled until ||s A|| is below the Higham theta, then squared
  /// back up).
  DenseReal expm(double s) const;

  /// Side of the square embedding (== rows() of the input).
  std::size_t dimension() const { return a_.rows(); }

  /// Exponentials evaluated so far (cost counter for BackendStats).
  std::uint64_t evaluations() const { return evaluations_; }

 private:
  // KIBAMRM_EXTERNALLY_SYNCHRONIZED: one cache per KrylovBackend solve
  // (or per expm() call), owned and queried by a single thread -- the
  // pool shards *inside* a solve never touch the Hessenberg expm.  The
  // cached powers are immutable after construction; evaluations_ is the
  // only mutation and rides the same single-owner contract (a shared
  // cache would need it atomic *and* the Pade scratch per-thread).
  DenseReal a_;   // square embedding of the input, pre-divided by prescale_
  DenseReal a2_;  // A^2
  DenseReal a4_;  // A^4
  DenseReal a6_;  // A^6
  double norm_ = 0.0;      // ||A||_1 of the (prescaled) embedding
  double prescale_ = 1.0;  // exact power of two keeping A^6 representable
  mutable std::uint64_t evaluations_ = 0 KIBAMRM_EXTERNALLY_SYNCHRONIZED(
      "single-owner cache; see the class invariant note above");
};

}  // namespace kibamrm::linalg
