#include "kibamrm/linalg/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "kibamrm/common/cpu_features.hpp"
#include "kibamrm/common/error.hpp"
#include "kibamrm/common/thread_annotations.hpp"
#include "kibamrm/linalg/kernels_internal.hpp"

namespace kibamrm::linalg::kernels {

namespace {

// Pinned tier, or kNoPin.  Reads are on every kernel call, so relaxed
// atomics; the pin itself is a rare configuration event.
// KIBAMRM_LOCK_FREE: each flag is an independent word -- no invariant
// couples them, every load observes some pin that was fully set, and
// set_dispatch() documents that a pin takes effect "on the next kernel
// call", which is exactly the guarantee a relaxed store provides.
constexpr int kNoPin = -1;
std::atomic<int> g_pin{kNoPin} KIBAMRM_LOCK_FREE(
    "independent word; relaxed pin visible on the next kernel call");
std::atomic<bool> g_gather_grouping{false} KIBAMRM_LOCK_FREE(
    "independent word; relaxed toggle, bits identical either way");

void apply_environment_pin_once() {
  static const bool applied = [] {
    if (const char* gather = std::getenv("KIBAMRM_SIMD_GATHER")) {
      const std::string_view value(gather);
      set_gather_grouping(value == "on" || value == "1" || value == "true");
    }
    const char* value = std::getenv("KIBAMRM_KERNELS");
    if (value == nullptr) return true;
    try {
      if (const auto parsed = parse_dispatch(value)) set_dispatch(*parsed);
    } catch (const Error& error) {
      // Startup configuration must not abort the process; fall back to
      // CPUID and say so once.
      std::fprintf(stderr, "kibamrm: ignoring KIBAMRM_KERNELS=%s (%s)\n",
                   value, error.what());
    }
    return true;
  }();
  (void)applied;
}

// One scalar reduction block in the canonical sixteen-lane order (see the
// contract in kernels.hpp).  The AVX2 tier holds the same sixteen lanes in
// four ymm registers, so the two tiers agree bit for bit.
double scalar_dot_block(const double* a, const double* b, std::size_t begin,
                        std::size_t end) {
  double l[16] = {};
  std::size_t i = begin;
  for (; i + 16 <= end; i += 16) {
    for (std::size_t j = 0; j < 16; ++j) l[j] += a[i + j] * b[i + j];
  }
  // Partial group of four feeds the first register's lanes, exactly as
  // the AVX2 four-wide cleanup loop does.
  for (; i + 4 <= end; i += 4) {
    for (std::size_t j = 0; j < 4; ++j) l[j] += a[i + j] * b[i + j];
  }
  double tail = 0.0;
  for (; i < end; ++i) tail += a[i] * b[i];
  // Fold registers pairwise ((A0+A2)+(A1+A3)), then lanes ((c0+c2)+(c1+c3)).
  double c[4];
  for (std::size_t r = 0; r < 4; ++r) {
    c[r] = (l[r] + l[8 + r]) + (l[4 + r] + l[12 + r]);
  }
  return ((c[0] + c[2]) + (c[1] + c[3])) + tail;
}

void scalar_dot_blocks(const double* a, const double* b, std::size_t n,
                       std::size_t block_begin, std::size_t block_end,
                       double* partials) {
  for (std::size_t block = block_begin; block < block_end; ++block) {
    const std::size_t begin = block * kBlockDoubles;
    const std::size_t end = std::min(n, begin + kBlockDoubles);
    partials[block] = scalar_dot_block(a, b, begin, end);
  }
}

void scalar_axpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scalar_scale(double* v, double alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) v[i] *= alpha;
}

// Per-thread partials scratch: dot()/nrm2() are called tens of thousands
// of times per solve, a heap allocation per call would dominate small
// vectors.
std::vector<double>& partials_scratch(std::size_t blocks) {
  thread_local std::vector<double> scratch;
  if (scratch.size() < blocks) scratch.resize(blocks);
  return scratch;
}

}  // namespace

Dispatch detected_dispatch() {
  if (KIBAMRM_HAVE_AVX512_TIER && common::cpu_has_avx512()) {
    return Dispatch::kAvx512;
  }
  return common::cpu_has_avx2_fma() && KIBAMRM_HAVE_AVX2_TIER
             ? Dispatch::kAvx2
             : Dispatch::kScalar;
}

Dispatch active_dispatch() {
  apply_environment_pin_once();
  const int pin = g_pin.load(std::memory_order_relaxed);
  return pin == kNoPin ? detected_dispatch() : static_cast<Dispatch>(pin);
}

Dispatch double_tier(Dispatch dispatch) {
  return dispatch == Dispatch::kMixed ? detected_dispatch() : dispatch;
}

void set_dispatch(Dispatch dispatch) {
  if (dispatch == Dispatch::kAvx2 || dispatch == Dispatch::kAvx512) {
    KIBAMRM_REQUIRE(
        static_cast<int>(detected_dispatch()) >= static_cast<int>(dispatch),
        "cannot pin " + std::string(dispatch_name(dispatch)) +
            " kernels: CPU lacks the required ISA extensions");
  }
  g_pin.store(static_cast<int>(dispatch), std::memory_order_relaxed);
}

void clear_dispatch() { g_pin.store(kNoPin, std::memory_order_relaxed); }

bool gather_grouping() {
  apply_environment_pin_once();
  return g_gather_grouping.load(std::memory_order_relaxed);
}

void set_gather_grouping(bool enabled) {
  g_gather_grouping.store(enabled, std::memory_order_relaxed);
}

std::string_view dispatch_name(Dispatch dispatch) {
  switch (dispatch) {
    case Dispatch::kAvx2:
      return "avx2";
    case Dispatch::kAvx512:
      return "avx512";
    case Dispatch::kMixed:
      return "mixed";
    default:
      return "scalar";
  }
}

std::optional<Dispatch> parse_dispatch(std::string_view name) {
  if (name == "auto") return std::nullopt;
  if (name == "scalar") return Dispatch::kScalar;
  if (name == "avx2") return Dispatch::kAvx2;
  if (name == "avx512") return Dispatch::kAvx512;
  if (name == "mixed") return Dispatch::kMixed;
  throw InvalidArgument("unknown kernel dispatch '" + std::string(name) +
                        "'; choices: auto scalar avx2 avx512 mixed");
}

void apply_dispatch(std::string_view name) {
  const auto parsed = parse_dispatch(name);
  if (!parsed) {
    clear_dispatch();  // "auto": drop any earlier pin, back to CPUID
    return;
  }
  const Dispatch requested = *parsed;
  if ((requested == Dispatch::kAvx2 || requested == Dispatch::kAvx512) &&
      static_cast<int>(detected_dispatch()) < static_cast<int>(requested)) {
    // CLI flags and env pins travel in scripts shared across machines; a
    // request this CPU cannot honour degrades to the best tier it can
    // (results of the double tiers are bitwise identical anyway).
    const Dispatch fallback = detected_dispatch();
    std::fprintf(stderr,
                 "kibamrm: %s kernels unavailable on this CPU; using %s\n",
                 std::string(dispatch_name(requested)).c_str(),
                 std::string(dispatch_name(fallback)).c_str());
    set_dispatch(fallback);
    return;
  }
  set_dispatch(requested);
}

std::size_t block_count(std::size_t n) {
  return (n + kBlockDoubles - 1) / kBlockDoubles;
}

void dot_blocks(const double* a, const double* b, std::size_t n,
                std::size_t block_begin, std::size_t block_end,
                double* partials) {
  const Dispatch tier = double_tier(active_dispatch());
  (void)tier;
#if KIBAMRM_HAVE_AVX512_TIER
  if (tier == Dispatch::kAvx512) {
    detail::avx512_dot_blocks(a, b, n, block_begin, block_end, partials);
    return;
  }
#endif
#if KIBAMRM_HAVE_AVX2_TIER
  if (tier == Dispatch::kAvx2) {
    detail::avx2_dot_blocks(a, b, n, block_begin, block_end, partials);
    return;
  }
#endif
  scalar_dot_blocks(a, b, n, block_begin, block_end, partials);
}

double reduce_pairwise(const double* partials, std::size_t count) {
  if (count == 0) return 0.0;
  if (count == 1) return partials[0];
  if (count == 2) return partials[0] + partials[1];
  const std::size_t half = count / 2;
  return reduce_pairwise(partials, half) +
         reduce_pairwise(partials + half, count - half);
}

double dot(const double* a, const double* b, std::size_t n) {
  const std::size_t blocks = block_count(n);
  std::vector<double>& partials = partials_scratch(blocks);
  dot_blocks(a, b, n, 0, blocks, partials.data());
  return reduce_pairwise(partials.data(), blocks);
}

double nrm2(const double* v, std::size_t n) {
  return std::sqrt(dot(v, v, n));
}

void axpy(double alpha, const double* x, double* y, std::size_t n) {
  const Dispatch tier = double_tier(active_dispatch());
  (void)tier;
#if KIBAMRM_HAVE_AVX512_TIER
  if (tier == Dispatch::kAvx512) {
    detail::avx512_axpy(alpha, x, y, n);
    return;
  }
#endif
#if KIBAMRM_HAVE_AVX2_TIER
  if (tier == Dispatch::kAvx2) {
    detail::avx2_axpy(alpha, x, y, n);
    return;
  }
#endif
  scalar_axpy(alpha, x, y, n);
}

void scale(double* v, double alpha, std::size_t n) {
  const Dispatch tier = double_tier(active_dispatch());
  (void)tier;
#if KIBAMRM_HAVE_AVX512_TIER
  if (tier == Dispatch::kAvx512) {
    detail::avx512_scale(v, alpha, n);
    return;
  }
#endif
#if KIBAMRM_HAVE_AVX2_TIER
  if (tier == Dispatch::kAvx2) {
    detail::avx2_scale(v, alpha, n);
    return;
  }
#endif
  scalar_scale(v, alpha, n);
}

}  // namespace kibamrm::linalg::kernels
