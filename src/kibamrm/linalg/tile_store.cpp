#include "kibamrm/linalg/tile_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/shard_plan.hpp"

namespace kibamrm::linalg {

namespace {

constexpr char kMagic[8] = {'K', 'B', 'R', 'M', 'T', 'S', 'P', '1'};
constexpr std::size_t kFileAlign = 4096;

/// On-disk file header at offset 0, patched after the last slab.  The
/// spill format is process-local scratch: native endianness, no padding
/// surprises (every field is 8 bytes past the magic).
struct FileHeader {
  char magic[8];
  std::uint64_t rows;
  std::uint64_t nonzeros;
  std::uint64_t tile_count;
  std::uint64_t index_offset;
  std::uint64_t bandwidth;
  std::uint64_t diagonal_rows;
  std::uint64_t longest_diagonal_run;
  std::uint64_t index_checksum;
  std::uint64_t header_checksum;  // fnv1a64 of every preceding byte
};
static_assert(sizeof(FileHeader) == 80);

/// Per-slab header; arrays follow at the byte offsets it names, in
/// decreasing alignment order (doubles, uint32, int32/int16, uint16) so
/// every pointer into the slab is naturally aligned.
struct SlabHeader {
  std::uint32_t encoding;
  std::uint32_t reserved;
  std::uint64_t rows;
  std::uint64_t entries;
  std::uint64_t dict_size;     // 0 for the inline encoding
  std::uint64_t values_off;    // dictionary or inline values (doubles)
  std::uint64_t entry_start_off;
  std::uint64_t offsets_off;
  std::uint64_t ids_off;       // 0 when the encoding carries no ids
  std::uint64_t total_bytes;   // == TileInfo::slab_bytes
};
static_assert(sizeof(SlabHeader) == 72);

std::uint64_t round_up(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) / align * align;
}

/// The canonical fused uniformisation step over one slab's rows, shared
/// by all three encodings through `value_at(e)`.  Term order per row
/// length mirrors CsrMatrix::multiply_fused_range and
/// FusedGatherPlan::fused_rows_generic exactly -- see the bitwise
/// contract in the header.
template <typename Offset, typename ValueAt>
double fused_tile_rows(const std::uint32_t* entry_start,
                       const Offset* offsets, ValueAt value_at,
                       std::size_t global_base, const double* x, double* out,
                       double* accum, double weight, std::size_t local_begin,
                       std::size_t local_end) {
  double delta = 0.0;
  for (std::size_t local = local_begin; local < local_end; ++local) {
    const std::size_t row = global_base + local;
    const std::uint32_t b = entry_start[local];
    const std::uint32_t e = entry_start[local + 1];
    const auto term = [&](std::uint32_t k) {
      return value_at(k) *
             x[static_cast<std::size_t>(
                 static_cast<std::int64_t>(row) + offsets[k])];
    };
    double v;
    switch (e - b) {
      case 0:
        v = 0.0;
        break;
      case 1:
        v = term(b);
        break;
      case 2:
        v = term(b) + term(b + 1);
        break;
      case 3:
        v = term(b) + term(b + 1) + term(b + 2);
        break;
      case 4:
        v = (term(b) + term(b + 1)) + (term(b + 2) + term(b + 3));
        break;
      default: {
        double s0 = 0.0;
        double s1 = 0.0;
        std::uint32_t k = b;
        for (; k + 2 <= e; k += 2) {
          s0 += term(k);
          s1 += term(k + 1);
        }
        if (k < e) s0 += term(k);
        v = s0 + s1;
      }
    }
    out[row] = v;
    if (weight != 0.0) accum[row] += weight * v;
    delta = std::max(delta, std::abs(v - x[row]));
  }
  return delta;
}

/// Streams the rows of P = I + Q/rate restricted to the closure without
/// materialising P: calls emit(compact_col, value) in ascending column
/// order for compact row `i`, reproducing CsrMatrix::uniformized (zero
/// drop before merge, diagonal merge, [0,1] diagonal clamp) followed by
/// transposed_submatrix's zero-entry drop, entry for entry.
class UniformizedRowStream {
 public:
  UniformizedRowStream(const CsrMatrix& generator,
                       std::span<const std::uint32_t> keep, double rate)
      : row_ptr_(generator.row_pointers()),
        col_idx_(generator.column_indices()),
        values_(generator.values()),
        keep_(keep),
        rate_(rate),
        compact_(generator.rows(), kDropped) {
    for (std::size_t i = 0; i < keep.size(); ++i) {
      KIBAMRM_REQUIRE(keep[i] < generator.rows() &&
                          (i == 0 || keep[i] > keep[i - 1]),
                      "tile store: keep must be sorted, unique and in range");
      compact_[keep[i]] = static_cast<std::uint32_t>(i);
    }
  }

  template <typename Emit>
  void for_each_entry(std::size_t i, Emit&& emit) const {
    const std::uint32_t r = keep_[i];
    // Diagonal of P: the COO pass adds (r, r, 1.0) plus values[k]/rate
    // per stored entry; add() drops exact zeros before the merge, the
    // merge drops an exactly-zero sum, and uniformized() clamps the
    // surviving diagonal into [0, 1].
    double diagonal = 1.0;
    for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] == r) {
        const double scaled = values_[k] / rate_;
        if (scaled != 0.0) diagonal += scaled;
        break;
      }
    }
    bool diagonal_kept = diagonal != 0.0;
    if (diagonal_kept) {
      diagonal = std::clamp(diagonal, 0.0, 1.0);
      // transposed_submatrix rebuilds through a CooBuilder, whose add()
      // drops a diagonal clamped to exactly 0.
      diagonal_kept = diagonal != 0.0;
    }
    bool diagonal_emitted = false;
    for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::uint32_t col = col_idx_[k];
      if (col == r) {
        if (diagonal_kept) emit(i, diagonal);
        diagonal_emitted = true;
        continue;
      }
      if (!diagonal_emitted && col > r) {
        if (diagonal_kept) emit(i, diagonal);
        diagonal_emitted = true;
      }
      const double scaled = values_[k] / rate_;
      if (scaled == 0.0) continue;
      const std::uint32_t compact_col = compact_[col];
      if (compact_col == kDropped) continue;
      emit(compact_col, scaled);
    }
    if (!diagonal_emitted && diagonal_kept) emit(i, diagonal);
  }

  /// Reachable closure over exactly P's sparsity pattern: the BFS skips
  /// generator entries whose scaled value underflows to zero (they never
  /// make it into P), so the closure matches
  /// uniformized(rate).reachable_rows(seeds) bit for bit.
  static std::vector<std::uint32_t> reachable_rows(
      const CsrMatrix& generator, std::span<const std::uint32_t> seeds,
      double rate) {
    const auto row_ptr = generator.row_pointers();
    const auto col_idx = generator.column_indices();
    const auto values = generator.values();
    std::vector<std::uint8_t> seen(generator.rows(), 0);
    std::vector<std::uint32_t> frontier;
    frontier.reserve(seeds.size());
    for (const std::uint32_t seed : seeds) {
      KIBAMRM_REQUIRE(seed < generator.rows(),
                      "tile store: seed out of range");
      if (!seen[seed]) {
        seen[seed] = 1;
        frontier.push_back(seed);
      }
    }
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const std::uint32_t row = frontier[head];
      for (std::uint32_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
        const std::uint32_t col = col_idx[k];
        if (!seen[col] && values[k] / rate != 0.0) {
          seen[col] = 1;
          frontier.push_back(col);
        }
      }
    }
    std::sort(frontier.begin(), frontier.end());
    return frontier;
  }

 private:
  static constexpr std::uint32_t kDropped =
      std::numeric_limits<std::uint32_t>::max();
  std::span<const std::uint32_t> row_ptr_;
  std::span<const std::uint32_t> col_idx_;
  std::span<const double> values_;
  std::span<const std::uint32_t> keep_;
  double rate_;
  std::vector<std::uint32_t> compact_;
};

}  // namespace

TileStore TileStore::build(const CsrMatrix& generator,
                           std::span<const std::uint32_t> keep, double rate,
                           const TileStoreOptions& options,
                           const std::string& path) {
  KIBAMRM_REQUIRE(generator.rows() == generator.cols(),
                  "tile store: generator must be square");
  KIBAMRM_REQUIRE(!keep.empty(), "tile store: empty reachable closure");
  KIBAMRM_REQUIRE(rate > 0.0, "tile store: rate must be positive");
  KIBAMRM_REQUIRE(options.tile_bytes >= 1,
                  "tile store: tile_bytes must be positive");
  const std::size_t n = keep.size();
  KIBAMRM_REQUIRE(
      n <= static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()),
      "tile store: closure exceeds the int32 offset range");

  const UniformizedRowStream stream(generator, keep, rate);

  // Pass A: per-transpose-row entry counts, the compact bandwidth and
  // the total entry count -- O(states) of index arrays, no matrix copy.
  std::vector<std::uint32_t> counts(n, 0);
  std::uint64_t total_entries = 0;
  std::uint64_t bandwidth = 0;
  for (std::size_t i = 0; i < n; ++i) {
    stream.for_each_entry(i, [&](std::uint32_t transpose_row, double) {
      ++counts[transpose_row];
      ++total_entries;
      const std::uint64_t distance =
          transpose_row > i
              ? transpose_row - i
              : static_cast<std::uint64_t>(i) - transpose_row;
      bandwidth = std::max(bandwidth, distance);
    });
  }

  // Tile boundaries: the entry-scaled cut estimator shared with the
  // sharded backend's band partition (linalg/shard_plan.hpp) cuts once
  // the estimated slab size -- header + entry table + 4 bytes per entry
  // + the capped dictionary allowance -- reaches the target.  The
  // estimate assumes the narrow encoding; a tile forced into a wider
  // one simply overshoots the target, it never breaks.
  const std::vector<std::size_t> tile_bounds =
      entry_scaled_cut_bounds(counts, options.tile_bytes, sizeof(SlabHeader));
  const std::size_t tile_count = tile_bounds.size() - 1;

  common::SpillFile file = common::SpillFile::create(path);
  std::vector<TileInfo> tiles(tile_count);
  std::uint64_t cursor = kFileAlign;  // header occupies block 0

  // Diagonal-run structure stats, computed on the fly over the transpose
  // rows in order (a run = consecutive rows repeating the same offset
  // pattern; on an RCM/level-banded chain these are the rows a
  // band-sliding kernel could stream without re-decoding).
  std::vector<std::int32_t> previous_offsets;
  bool have_previous = false;
  std::uint64_t diagonal_rows = 0;
  std::uint64_t longest_diagonal_run = 0;
  std::uint64_t current_run = 1;

  // Pass B: one band-limited scan per tile.  Rows contributing entries
  // to transpose rows [c0, c1) lie within bandwidth of the band, so each
  // scan touches O(tile + band) source rows, not the whole chain.
  std::vector<std::uint32_t> local_start;
  std::vector<std::uint32_t> fill;
  std::vector<std::uint32_t> entry_cols;
  std::vector<double> entry_vals;
  std::vector<std::byte> slab;
  std::unordered_map<double, std::uint32_t> dictionary_ids;
  std::vector<double> dictionary;
  for (std::size_t t = 0; t < tile_count; ++t) {
    const std::size_t c0 = tile_bounds[t];
    const std::size_t c1 = tile_bounds[t + 1];
    const std::size_t tile_rows = c1 - c0;
    local_start.assign(tile_rows + 1, 0);
    for (std::size_t j = c0; j < c1; ++j) {
      local_start[j - c0 + 1] = local_start[j - c0] + counts[j];
    }
    const std::size_t tile_total = local_start[tile_rows];
    fill.assign(tile_rows, 0);
    entry_cols.resize(tile_total);
    entry_vals.resize(tile_total);

    const std::size_t scan_begin =
        c0 > bandwidth ? c0 - static_cast<std::size_t>(bandwidth) : 0;
    const std::size_t scan_end =
        std::min<std::size_t>(n, c1 + static_cast<std::size_t>(bandwidth));
    for (std::size_t i = scan_begin; i < scan_end; ++i) {
      stream.for_each_entry(i, [&](std::uint32_t transpose_row,
                                   double value) {
        if (transpose_row < c0 || transpose_row >= c1) return;
        const std::size_t local = transpose_row - c0;
        // i ascends across the scan, so each transpose row receives its
        // entries in ascending column order -- the CooBuilder sort order
        // of transposed_submatrix.
        const std::size_t slot = local_start[local] + fill[local]++;
        entry_cols[slot] = static_cast<std::uint32_t>(i);
        entry_vals[slot] = value;
      });
    }

    // Pick the narrowest encoding this tile fits.
    dictionary_ids.clear();
    dictionary.clear();
    bool dictionary_fits = true;
    for (const double value : entry_vals) {
      if (dictionary_ids.size() >= 65536 &&
          !dictionary_ids.contains(value)) {
        dictionary_fits = false;
        break;
      }
      const auto [it, inserted] = dictionary_ids.try_emplace(
          value, static_cast<std::uint32_t>(dictionary.size()));
      if (inserted) dictionary.push_back(value);
    }
    bool offsets_narrow = true;
    for (std::size_t local = 0; local < tile_rows; ++local) {
      const std::int64_t row = static_cast<std::int64_t>(c0 + local);
      for (std::size_t k = local_start[local]; k < local_start[local + 1];
           ++k) {
        const std::int64_t offset =
            static_cast<std::int64_t>(entry_cols[k]) - row;
        if (offset < std::numeric_limits<std::int16_t>::min() ||
            offset > std::numeric_limits<std::int16_t>::max()) {
          offsets_narrow = false;
          break;
        }
      }
      if (!offsets_narrow) break;
    }
    const Encoding encoding =
        !dictionary_fits
            ? Encoding::kInlineOff32
            : (offsets_narrow ? Encoding::kDict16Off16
                              : Encoding::kDict16Off32);

    // Serialize: header, doubles, entry table, offsets, ids.
    SlabHeader header{};
    header.encoding = static_cast<std::uint32_t>(encoding);
    header.rows = tile_rows;
    header.entries = tile_total;
    header.dict_size =
        encoding == Encoding::kInlineOff32 ? 0 : dictionary.size();
    std::uint64_t at = sizeof(SlabHeader);
    const std::uint64_t value_count = encoding == Encoding::kInlineOff32
                                          ? tile_total
                                          : dictionary.size();
    header.values_off = at;
    at += value_count * sizeof(double);
    header.entry_start_off = at;
    at += (tile_rows + 1) * sizeof(std::uint32_t);
    header.offsets_off = at;
    at += encoding == Encoding::kDict16Off16 ? tile_total * sizeof(std::int16_t)
                                             : tile_total * sizeof(std::int32_t);
    if (encoding == Encoding::kInlineOff32) {
      header.ids_off = 0;
    } else {
      at = round_up(at, alignof(std::uint16_t));
      header.ids_off = at;
      at += tile_total * sizeof(std::uint16_t);
    }
    header.total_bytes = at;

    slab.assign(at, std::byte{0});
    std::memcpy(slab.data(), &header, sizeof(header));
    auto* values_out =
        reinterpret_cast<double*>(slab.data() + header.values_off);
    auto* entry_start_out = reinterpret_cast<std::uint32_t*>(
        slab.data() + header.entry_start_off);
    for (std::size_t local = 0; local <= tile_rows; ++local) {
      entry_start_out[local] = local_start[local];
    }
    if (encoding == Encoding::kInlineOff32) {
      std::memcpy(values_out, entry_vals.data(),
                  tile_total * sizeof(double));
    } else {
      std::memcpy(values_out, dictionary.data(),
                  dictionary.size() * sizeof(double));
      auto* ids_out =
          reinterpret_cast<std::uint16_t*>(slab.data() + header.ids_off);
      for (std::size_t k = 0; k < tile_total; ++k) {
        ids_out[k] = static_cast<std::uint16_t>(dictionary_ids[entry_vals[k]]);
      }
    }
    if (encoding == Encoding::kDict16Off16) {
      auto* offsets_out =
          reinterpret_cast<std::int16_t*>(slab.data() + header.offsets_off);
      for (std::size_t local = 0; local < tile_rows; ++local) {
        const std::int64_t row = static_cast<std::int64_t>(c0 + local);
        for (std::size_t k = local_start[local]; k < local_start[local + 1];
             ++k) {
          offsets_out[k] = static_cast<std::int16_t>(
              static_cast<std::int64_t>(entry_cols[k]) - row);
        }
      }
    } else {
      auto* offsets_out =
          reinterpret_cast<std::int32_t*>(slab.data() + header.offsets_off);
      for (std::size_t local = 0; local < tile_rows; ++local) {
        const std::int64_t row = static_cast<std::int64_t>(c0 + local);
        for (std::size_t k = local_start[local]; k < local_start[local + 1];
             ++k) {
          offsets_out[k] = static_cast<std::int32_t>(
              static_cast<std::int64_t>(entry_cols[k]) - row);
        }
      }
    }

    // Diagonal-run stats over this tile's rows (runs continue across
    // tile boundaries: previous_offsets carries over).
    for (std::size_t local = 0; local < tile_rows; ++local) {
      const std::int64_t row = static_cast<std::int64_t>(c0 + local);
      const std::size_t length = local_start[local + 1] - local_start[local];
      bool repeats = have_previous && previous_offsets.size() == length;
      if (repeats) {
        for (std::size_t e = 0; e < length; ++e) {
          if (previous_offsets[e] !=
              static_cast<std::int64_t>(
                  entry_cols[local_start[local] + e]) -
                  row) {
            repeats = false;
            break;
          }
        }
      }
      if (repeats) {
        ++diagonal_rows;
        ++current_run;
        longest_diagonal_run = std::max(longest_diagonal_run, current_run);
      } else {
        current_run = 1;
      }
      previous_offsets.resize(length);
      for (std::size_t e = 0; e < length; ++e) {
        previous_offsets[e] = static_cast<std::int32_t>(
            static_cast<std::int64_t>(entry_cols[local_start[local] + e]) -
            row);
      }
      have_previous = true;
    }

    file.write_exact(slab.data(), slab.size(), cursor);
    TileInfo& info = tiles[t];
    info.file_offset = cursor;
    info.slab_bytes = slab.size();
    info.row_begin = c0;
    info.row_end = c1;
    info.entries = tile_total;
    info.checksum = common::fnv1a64(slab.data(), slab.size());
    cursor = round_up(cursor + slab.size(), kFileAlign);
  }
  // Index after the last slab, then the header is patched in.
  const std::uint64_t index_offset = cursor;
  file.write_exact(tiles.data(), tiles.size() * sizeof(TileInfo),
                   index_offset);
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.rows = n;
  header.nonzeros = total_entries;
  header.tile_count = tile_count;
  header.index_offset = index_offset;
  header.bandwidth = bandwidth;
  header.diagonal_rows = diagonal_rows;
  header.longest_diagonal_run = longest_diagonal_run;
  header.index_checksum =
      common::fnv1a64(tiles.data(), tiles.size() * sizeof(TileInfo));
  header.header_checksum = common::fnv1a64(
      &header, sizeof(FileHeader) - sizeof(std::uint64_t));
  file.write_exact(&header, sizeof(header), 0);
  file.sync();
  file.close();

  return open(path, options);
}

TileStore TileStore::open(const std::string& path,
                          const TileStoreOptions& options) {
  TileStore store;
  // Header and index read through a plain buffered descriptor (O_DIRECT
  // would constrain these small unaligned reads); the streaming
  // descriptor opens separately so slab reads can go direct.
  common::SpillFile metadata = common::SpillFile::open_readonly(path, false);
  const std::uint64_t file_size = metadata.size();
  FileHeader header{};
  KIBAMRM_REQUIRE(file_size >= sizeof(FileHeader),
                  "tile store '" + path + "': file shorter than its header");
  metadata.read_exact(&header, sizeof(header), 0);
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    throw Error("tile store '" + path + "': bad magic (not a tile spill "
                "file, or the header is corrupt)");
  }
  const std::uint64_t expected_header_checksum = common::fnv1a64(
      &header, sizeof(FileHeader) - sizeof(std::uint64_t));
  if (header.header_checksum != expected_header_checksum) {
    throw Error("tile store '" + path + "': header checksum mismatch");
  }
  const std::uint64_t index_bytes =
      header.tile_count * sizeof(TileInfo);
  if (header.index_offset > file_size ||
      index_bytes > file_size - header.index_offset) {
    throw Error("tile store '" + path + "': tile index out of bounds "
                "(truncated file?)");
  }
  store.tiles_.resize(header.tile_count);
  if (header.tile_count > 0) {
    metadata.read_exact(store.tiles_.data(), index_bytes,
                        header.index_offset);
  }
  if (common::fnv1a64(store.tiles_.data(), index_bytes) !=
      header.index_checksum) {
    throw Error("tile store '" + path + "': tile index checksum mismatch");
  }
  store.rows_ = header.rows;
  store.nonzeros_ = header.nonzeros;
  store.build_stats_.bandwidth = header.bandwidth;
  store.build_stats_.diagonal_rows = header.diagonal_rows;
  store.build_stats_.longest_diagonal_run = header.longest_diagonal_run;
  std::uint64_t covered = 0;
  for (std::size_t t = 0; t < store.tiles_.size(); ++t) {
    const TileInfo& info = store.tiles_[t];
    if (info.row_begin != covered || info.row_end < info.row_begin ||
        info.row_end > store.rows_ ||
        (info.row_end == info.row_begin)) {
      throw Error("tile store '" + path +
                  "': tile index rows are not a contiguous partition");
    }
    covered = info.row_end;
    if (info.slab_bytes < sizeof(SlabHeader) ||
        info.file_offset % kFileAlign != 0 ||
        info.file_offset > file_size ||
        info.slab_bytes > file_size - info.file_offset) {
      throw Error("tile store '" + path +
                  "': tile slab out of file bounds (truncated file?)");
    }
    store.max_slab_bytes_ = std::max<std::size_t>(
        store.max_slab_bytes_, info.slab_bytes);
    store.payload_bytes_ += info.slab_bytes;
  }
  if (covered != store.rows_) {
    throw Error("tile store '" + path +
                "': tile index does not cover every row");
  }
  metadata.close();
  store.file_ = common::SpillFile::open_readonly(path, options.direct_io);
  store.validated_.assign(store.tiles_.size(), 0);
  return store;
}

void TileStore::read_tile(std::size_t tile, common::AlignedBuffer& buffer) {
  KIBAMRM_REQUIRE(tile < tiles_.size(), "tile store: tile out of range");
  const TileInfo& info = tiles_[tile];
  // O_DIRECT requires sector-aligned lengths; every slab is followed by
  // alignment padding (or the index block), so the rounded read never
  // passes EOF.
  const std::size_t read_bytes = file_.direct_active()
                                     ? round_up(info.slab_bytes, kFileAlign)
                                     : info.slab_bytes;
  buffer.resize(read_bytes);
  file_.read_exact(buffer.data(), read_bytes, info.file_offset);
  buffer.resize(info.slab_bytes);
  if (!validated_[tile]) {
    if (common::fnv1a64(buffer.data(), info.slab_bytes) != info.checksum) {
      throw Error("tile store '" + file_.path() + "': tile " +
                  std::to_string(tile) + " checksum mismatch (corrupt "
                  "spill file)");
    }
    const SlabView view = parse_slab(tile, buffer.data(), info.slab_bytes);
    validate_slab(tile, view);
    validated_[tile] = 1;
  }
}

void TileStore::prefetch_tile(std::size_t tile) const {
  KIBAMRM_REQUIRE(tile < tiles_.size(), "tile store: tile out of range");
  file_.advise_willneed(tiles_[tile].file_offset, tiles_[tile].slab_bytes);
}

TileStore::SlabView TileStore::parse_slab(std::size_t tile,
                                          const std::byte* slab,
                                          std::size_t slab_bytes) const {
  const TileInfo& info = tiles_[tile];
  const auto fail = [&](const char* what) -> void {
    throw Error("tile store '" + file_.path() + "': tile " +
                std::to_string(tile) + " slab invalid: " + what);
  };
  if (slab_bytes < sizeof(SlabHeader)) fail("shorter than its header");
  SlabHeader header;
  std::memcpy(&header, slab, sizeof(header));
  if (header.total_bytes != slab_bytes) fail("size field mismatch");
  if (header.rows != info.row_end - info.row_begin ||
      header.entries != info.entries) {
    fail("row/entry counts disagree with the tile index");
  }
  SlabView view;
  view.rows = header.rows;
  view.entries = header.entries;
  view.dict_size = header.dict_size;
  const auto span_ok = [&](std::uint64_t offset, std::uint64_t bytes,
                           std::uint64_t align) {
    return offset % align == 0 && offset <= slab_bytes &&
           bytes <= slab_bytes - offset;
  };
  switch (header.encoding) {
    case 0:
      view.encoding = Encoding::kDict16Off16;
      break;
    case 1:
      view.encoding = Encoding::kDict16Off32;
      break;
    case 2:
      view.encoding = Encoding::kInlineOff32;
      break;
    default:
      fail("unknown encoding");
  }
  const bool inline_values = view.encoding == Encoding::kInlineOff32;
  const std::uint64_t value_count =
      inline_values ? header.entries : header.dict_size;
  if (!span_ok(header.values_off, value_count * sizeof(double), 8)) {
    fail("value array out of slab bounds");
  }
  if (!span_ok(header.entry_start_off,
               (header.rows + 1) * sizeof(std::uint32_t), 4)) {
    fail("entry table out of slab bounds");
  }
  const std::uint64_t offset_width =
      view.encoding == Encoding::kDict16Off16 ? sizeof(std::int16_t)
                                              : sizeof(std::int32_t);
  if (!span_ok(header.offsets_off, header.entries * offset_width,
               offset_width)) {
    fail("offset array out of slab bounds");
  }
  if (!inline_values &&
      !span_ok(header.ids_off, header.entries * sizeof(std::uint16_t), 2)) {
    fail("id array out of slab bounds");
  }
  if (inline_values) {
    view.inline_values =
        reinterpret_cast<const double*>(slab + header.values_off);
  } else {
    view.dictionary =
        reinterpret_cast<const double*>(slab + header.values_off);
    view.ids =
        reinterpret_cast<const std::uint16_t*>(slab + header.ids_off);
  }
  view.entry_start =
      reinterpret_cast<const std::uint32_t*>(slab + header.entry_start_off);
  if (view.encoding == Encoding::kDict16Off16) {
    view.offsets16 =
        reinterpret_cast<const std::int16_t*>(slab + header.offsets_off);
  } else {
    view.offsets32 =
        reinterpret_cast<const std::int32_t*>(slab + header.offsets_off);
  }
  return view;
}

void TileStore::validate_slab(std::size_t tile, const SlabView& view) const {
  const TileInfo& info = tiles_[tile];
  const auto fail = [&](const char* what) -> void {
    throw Error("tile store '" + file_.path() + "': tile " +
                std::to_string(tile) + " slab invalid: " + what);
  };
  if (view.entry_start[0] != 0 || view.entry_start[view.rows] != view.entries) {
    fail("entry table endpoints");
  }
  for (std::size_t local = 0; local < view.rows; ++local) {
    if (view.entry_start[local + 1] < view.entry_start[local]) {
      fail("entry table not monotone");
    }
  }
  // Every (row + offset) must land inside [0, rows_): the kernels index x
  // with it unchecked, so a damaged offset that survived the checksum
  // must still never become UB.
  for (std::size_t local = 0; local < view.rows; ++local) {
    const std::int64_t row =
        static_cast<std::int64_t>(info.row_begin + local);
    for (std::uint32_t k = view.entry_start[local];
         k < view.entry_start[local + 1]; ++k) {
      const std::int64_t offset = view.offsets16 != nullptr
                                      ? view.offsets16[k]
                                      : view.offsets32[k];
      const std::int64_t column = row + offset;
      if (column < 0 || column >= static_cast<std::int64_t>(rows_)) {
        fail("column offset out of matrix bounds");
      }
      if (view.ids != nullptr && view.ids[k] >= view.dict_size) {
        fail("dictionary id out of range");
      }
    }
  }
}

double TileStore::multiply_fused_tile(std::size_t tile,
                                      const common::AlignedBuffer& slab,
                                      const std::vector<double>& x,
                                      std::vector<double>& out,
                                      std::vector<double>& accum,
                                      double weight, std::size_t local_begin,
                                      std::size_t local_end) const {
  KIBAMRM_REQUIRE(tile < tiles_.size(), "tile store: tile out of range");
  KIBAMRM_REQUIRE(x.size() == rows_ && out.size() == rows_ &&
                      accum.size() == rows_,
                  "tile store: vectors not sized to rows()");
  const TileInfo& info = tiles_[tile];
  const SlabView view = parse_slab(tile, slab.data(), slab.size());
  KIBAMRM_REQUIRE(local_begin <= local_end && local_end <= view.rows,
                  "tile store: invalid local row range");
  const std::size_t base = info.row_begin;
  if (view.encoding == Encoding::kDict16Off16) {
    return fused_tile_rows(
        view.entry_start, view.offsets16,
        [&](std::uint32_t k) { return view.dictionary[view.ids[k]]; }, base,
        x.data(), out.data(), accum.data(), weight, local_begin, local_end);
  }
  if (view.encoding == Encoding::kDict16Off32) {
    return fused_tile_rows(
        view.entry_start, view.offsets32,
        [&](std::uint32_t k) { return view.dictionary[view.ids[k]]; }, base,
        x.data(), out.data(), accum.data(), weight, local_begin, local_end);
  }
  return fused_tile_rows(
      view.entry_start, view.offsets32,
      [&](std::uint32_t k) { return view.inline_values[k]; }, base, x.data(),
      out.data(), accum.data(), weight, local_begin, local_end);
}

std::vector<std::size_t> TileStore::balanced_tile_ranges(
    std::size_t tile, const common::AlignedBuffer& slab,
    std::size_t parts) const {
  KIBAMRM_REQUIRE(parts > 0, "tile store: parts must be positive");
  const SlabView view = parse_slab(tile, slab.data(), slab.size());
  // Same fair-share policy as CsrMatrix::balanced_row_ranges (nnz + 1
  // weighting); the partition never affects results, only balance.
  std::vector<std::size_t> ranges = {0};
  double outstanding = static_cast<double>(view.entries + view.rows);
  double carried = 0.0;
  for (std::size_t local = 0; local < view.rows; ++local) {
    carried += static_cast<double>(view.entry_start[local + 1] -
                                   view.entry_start[local]) +
               1.0;
    const std::size_t open = ranges.size();
    const double fair_share =
        outstanding / static_cast<double>(parts - open + 1);
    if (open < parts && carried >= fair_share &&
        view.rows - local - 1 >= parts - open) {
      ranges.push_back(local + 1);
      outstanding -= carried;
      carried = 0.0;
    }
  }
  ranges.push_back(view.rows);
  return ranges;
}

/// Exposed for the ooc backend: P-pattern-exact reachable closure without
/// materialising P.
std::vector<std::uint32_t> tile_store_reachable_rows(
    const CsrMatrix& generator, std::span<const std::uint32_t> seeds,
    double rate) {
  return UniformizedRowStream::reachable_rows(generator, seeds, rate);
}

}  // namespace kibamrm::linalg
