// Arnoldi process: orthonormal bases of Krylov subspaces K_m(A, v).
//
// The Krylov transient backend approximates exp(t A) v by projecting A
// onto the small subspace span{v, Av, ..., A^{m-1} v}:
//     exp(t A) v  ~=  beta V_m exp(t H_m) e_1,     beta = ||v||_2,
// where V_m is the orthonormal Arnoldi basis and H_m = V_m^T A V_m the
// (m+1) x m upper-Hessenberg projection.  Only matrix-vector products with
// A are needed, so the caller supplies the matvec (the backend shards it
// across a thread pool) and this module owns just the orthogonalisation.
//
// Orthogonalisation scheme: classical Gram-Schmidt with a *selective*
// DGKS correction pass (the ARPACK policy; Giraud et al. show the pair
// reaches the same O(eps) orthogonality as reorthogonalised MGS).
// Classical projections all read the *unmodified* w, so each pass batches
// its j+1 dots and j+1 axpys into one fused sweep over memory -- two
// sweeps per Krylov step in the common case, two more only when the
// Daniel-et-al. cancellation criterion demands the correction -- against
// the ~4j strided passes of sequential MGS, which is the difference that
// matters on 1e5+-state chains where the m^2 n orthogonalisation is
// memory-bound, not flop-bound.  See the in-code note for why the
// correction pass matters on stiff chains.
//
// Every vector operation runs on the linalg/kernels layer (runtime SIMD
// dispatch) and optionally shards across a common::ThreadPool.
// Reductions follow the kernels layer's fixed-block pairwise contract,
// so the factorisation is bitwise identical for every thread count and
// dispatch tier.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "kibamrm/linalg/dense_matrix.hpp"

namespace kibamrm::common {
class ThreadPool;
}  // namespace kibamrm::common

namespace kibamrm::linalg {

/// out = A * in; `out` is pre-sized to in.size() and fully overwritten.
using ArnoldiMatvec =
    std::function<void(const std::vector<double>&, std::vector<double>&)>;

/// Result of one Arnoldi factorisation A V_k = V_{k+1} H_k.
struct ArnoldiResult {
  /// Completed Krylov steps k (== columns of H with meaning); k < m only
  /// after a happy breakdown.
  std::size_t dim = 0;
  /// True when the residual norm h_{k+1,k} fell below the breakdown
  /// tolerance relative to ||A v_k||: K_k(A, v) is (numerically)
  /// A-invariant and the projected exponential is exact, for any step
  /// size.  The scale must be the *current* matvec, not ||A||: on stiff
  /// chains a quasi-equilibrated v has ||A v|| orders of magnitude below
  /// ||A||, and an absolute threshold would swallow the slow couplings
  /// that carry the physics.
  bool happy_breakdown = false;
  /// Matrix-vector products performed (== dim).
  std::size_t matvecs = 0;
};

/// Reusable scratch of the sharded orthogonalisation (block partials of
/// the multi-dot, DGKS corrections, shard boundaries).  Optional: arnoldi
/// allocates locally when none is passed; the Krylov backend keeps one
/// across its thousands of factorisations.
struct ArnoldiWorkspace {
  std::vector<double> partials;
  std::vector<double> corrections;
  std::vector<std::size_t> shard_blocks;
};

/// Runs m Arnoldi steps from the unit vector in basis[0] (the caller
/// normalises), filling basis[1..dim] and the (m+1) x m Hessenberg `h`
/// (zeroed here; h may be larger, the top-left block is used).  `basis`
/// must hold at least m+1 vectors of the problem dimension; basis[j+1]
/// doubles as the matvec target of step j, so no extra scratch is needed.
///
/// `pool` (optional) shards the dot/axpy sweeps; the result is bitwise
/// independent of the pool size.  Stops early when
/// h_{k+1,k} <= breakdown_tolerance * ||A v_k|| (happy breakdown); pass a
/// small multiple of machine epsilon.
ArnoldiResult arnoldi(const ArnoldiMatvec& matvec,
                      std::vector<std::vector<double>>& basis, DenseReal& h,
                      std::size_t m, double breakdown_tolerance,
                      common::ThreadPool* pool = nullptr,
                      ArnoldiWorkspace* workspace = nullptr);

}  // namespace kibamrm::linalg
