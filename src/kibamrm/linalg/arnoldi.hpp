// Arnoldi process: orthonormal bases of Krylov subspaces K_m(A, v).
//
// The Krylov transient backend approximates exp(t A) v by projecting A
// onto the small subspace span{v, Av, ..., A^{m-1} v}:
//     exp(t A) v  ~=  beta V_m exp(t H_m) e_1,     beta = ||v||_2,
// where V_m is the orthonormal Arnoldi basis and H_m = V_m^T A V_m the
// (m+1) x m upper-Hessenberg projection.  Only matrix-vector products with
// A are needed, so the caller supplies the matvec (the backend shards it
// across a thread pool) and this module owns just the orthogonalisation.
//
// Modified Gram-Schmidt with one reorthogonalisation pass is used
// (EXPOKIT runs plain MGS; the extra pass costs no matvecs and keeps the
// slow couplings resolvable on chains whose fast/slow rate ratio
// approaches 1/eps -- see the note at ArnoldiResult::happy_breakdown).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "kibamrm/linalg/dense_matrix.hpp"

namespace kibamrm::linalg {

/// out = A * in; `out` is pre-sized to in.size() and fully overwritten.
using ArnoldiMatvec =
    std::function<void(const std::vector<double>&, std::vector<double>&)>;

/// Result of one Arnoldi factorisation A V_k = V_{k+1} H_k.
struct ArnoldiResult {
  /// Completed Krylov steps k (== columns of H with meaning); k < m only
  /// after a happy breakdown.
  std::size_t dim = 0;
  /// True when the residual norm h_{k+1,k} fell below the breakdown
  /// tolerance relative to ||A v_k||: K_k(A, v) is (numerically)
  /// A-invariant and the projected exponential is exact, for any step
  /// size.  The scale must be the *current* matvec, not ||A||: on stiff
  /// chains a quasi-equilibrated v has ||A v|| orders of magnitude below
  /// ||A||, and an absolute threshold would swallow the slow couplings
  /// that carry the physics.
  bool happy_breakdown = false;
  /// Matrix-vector products performed (== dim).
  std::size_t matvecs = 0;
};

/// Runs m Arnoldi steps from the unit vector in basis[0] (the caller
/// normalises), filling basis[1..dim] and the (m+1) x m Hessenberg `h`
/// (zeroed here).  `basis` must hold at least m+1 vectors of the problem
/// dimension; basis[j+1] doubles as the matvec target of step j, so no
/// extra scratch is needed.
///
/// Stops early when h_{k+1,k} <= breakdown_tolerance * ||A v_k|| (happy
/// breakdown); pass a small multiple of machine epsilon.
ArnoldiResult arnoldi(const ArnoldiMatvec& matvec,
                      std::vector<std::vector<double>>& basis, DenseReal& h,
                      std::size_t m, double breakdown_tolerance);

}  // namespace kibamrm::linalg
