// AVX-512 tier of the dispatched kernel layer.  Compiled with
// -mavx512{f,dq,vl,bw} and FP contraction off (see CMakeLists); the
// double-precision kernels reproduce the canonical arithmetic order of
// their scalar counterparts bit for bit:
//
//   * the reduction holds the contract's sixteen interleaved lanes in two
//     zmm registers whose ymm halves are exactly the four AVX2 contract
//     registers, so the register-pairwise fold is literally the same
//     arithmetic,
//   * element-wise kernels round per element; the masked tails only
//     change which instruction performs an order-free operation,
//   * the uniform-run kernel vectorises ACROSS rows (lane r = row r), so
//     each lane executes the scalar per-length order unchanged -- eight
//     rows share registers, no row's arithmetic is reassociated.
//
// Dictionary values are fetched with vgatherdpd: unlike the general
// gather pattern PR 5 measured (and shelved) on AVX2, the uniform-run
// kernel gathers from a dictionary of a few thousand distinct rates that
// stays cache-resident, where the hardware gather's fixed cost is
// amortised over eight lanes.  The x operands need no gather at all --
// identical column offsets across the run make them contiguous loads.
#include "kibamrm/linalg/kernels_internal.hpp"

#if KIBAMRM_HAVE_AVX512_TIER

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "kibamrm/linalg/kernels.hpp"

namespace kibamrm::linalg::kernels::detail {

namespace {

/// Canonical lane combine of one reduction block: (l0+l2)+(l1+l3).
inline double lane_combine(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // (l0+l2, l1+l3)
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

/// One block of the fixed-block dot.  The two zmm accumulators hold the
/// contract's sixteen lanes with z0 = (A0 | A1) and z1 = (A2 | A3) in the
/// AVX2 tier's register naming, so extracting the four ymm halves and
/// folding ((A0+A2)+(A1+A3)) reproduces the canonical order exactly.
inline double dot_block(const double* a, const double* b, std::size_t begin,
                        std::size_t end) {
  __m512d z0 = _mm512_setzero_pd();
  __m512d z1 = _mm512_setzero_pd();
  std::size_t i = begin;
  for (; i + 16 <= end; i += 16) {
    z0 = _mm512_add_pd(z0, _mm512_mul_pd(_mm512_loadu_pd(a + i),
                                         _mm512_loadu_pd(b + i)));
    z1 = _mm512_add_pd(z1, _mm512_mul_pd(_mm512_loadu_pd(a + i + 8),
                                         _mm512_loadu_pd(b + i + 8)));
  }
  __m256d a0 = _mm512_castpd512_pd256(z0);
  const __m256d a1 = _mm512_extractf64x4_pd(z0, 1);
  const __m256d a2 = _mm512_castpd512_pd256(z1);
  const __m256d a3 = _mm512_extractf64x4_pd(z1, 1);
  // Partial group of four feeds the first register's lanes, exactly as
  // the scalar and AVX2 cleanup loops do.
  for (; i + 4 <= end; i += 4) {
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                         _mm256_loadu_pd(b + i)));
  }
  double tail = 0.0;
  for (; i < end; ++i) tail += a[i] * b[i];
  const __m256d folded =
      _mm256_add_pd(_mm256_add_pd(a0, a2), _mm256_add_pd(a1, a3));
  return lane_combine(folded) + tail;
}

/// Canonical per-length combine of per-entry product vectors, one row per
/// lane: the same association as FusedGatherPlan's scalar switch.
template <typename Entry>
inline __m512d combine_entries512(std::uint32_t length, const Entry& entry) {
  __m512d v = entry(0);
  if (length == 2) {
    v = _mm512_add_pd(v, entry(1));
  } else if (length == 3) {
    v = _mm512_add_pd(_mm512_add_pd(v, entry(1)), entry(2));
  } else if (length == 4) {
    v = _mm512_add_pd(_mm512_add_pd(v, entry(1)),
                      _mm512_add_pd(entry(2), entry(3)));
  }
  return v;
}

/// Scalar remainder of a uniform run (< 8 rows), canonical order.
/// Templated over the operand type: double (identity promotion) or float
/// (each product promoted exactly to double).
template <typename Value>
inline double uniform_row_scalar(std::uint32_t length,
                                 const std::int16_t* offsets,
                                 const std::uint16_t* ids_t,
                                 std::size_t seg_rows, std::size_t r,
                                 const Value* dictionary, const Value* x,
                                 std::size_t row) {
  const auto term = [&](std::uint32_t e) {
    return static_cast<double>(dictionary[ids_t[e * seg_rows + r]]) *
           static_cast<double>(x[row + offsets[e]]);
  };
  switch (length) {
    case 1:
      return term(0);
    case 2:
      return term(0) + term(1);
    case 3:
      return term(0) + term(1) + term(2);
    default:
      return (term(0) + term(1)) + (term(2) + term(3));
  }
}

}  // namespace

void avx512_dot_blocks(const double* a, const double* b, std::size_t n,
                       std::size_t block_begin, std::size_t block_end,
                       double* partials) {
  for (std::size_t block = block_begin; block < block_end; ++block) {
    const std::size_t begin = block * kBlockDoubles;
    const std::size_t end = std::min(n, begin + kBlockDoubles);
    partials[block] = dot_block(a, b, begin, end);
  }
}

void avx512_axpy(double alpha, const double* x, double* y, std::size_t n) {
  const __m512d av = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_add_pd(_mm512_loadu_pd(y + i),
                             _mm512_mul_pd(av, _mm512_loadu_pd(x + i))));
  }
  if (i < n) {
    const __mmask8 mask =
        static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512d xv = _mm512_maskz_loadu_pd(mask, x + i);
    const __m512d yv = _mm512_maskz_loadu_pd(mask, y + i);
    _mm512_mask_storeu_pd(y + i, mask,
                          _mm512_add_pd(yv, _mm512_mul_pd(av, xv)));
  }
}

void avx512_scale(double* v, double alpha, std::size_t n) {
  const __m512d av = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(v + i, _mm512_mul_pd(av, _mm512_loadu_pd(v + i)));
  }
  if (i < n) {
    const __mmask8 mask =
        static_cast<__mmask8>((1u << (n - i)) - 1u);
    _mm512_mask_storeu_pd(
        v + i, mask,
        _mm512_mul_pd(av, _mm512_maskz_loadu_pd(mask, v + i)));
  }
}

double avx512_plan_uniform_rows(std::uint32_t length,
                                const std::int16_t* offsets,
                                const std::uint16_t* ids_t,
                                std::size_t seg_rows,
                                std::size_t local_begin,
                                const double* dictionary, const double* x,
                                double* out, double* accum, double weight,
                                std::size_t row_begin, std::size_t row_end) {
  const __m512d sign_mask = _mm512_set1_pd(-0.0);
  const __m512d weight_v = _mm512_set1_pd(weight);
  __m512d delta_v = _mm512_setzero_pd();
  double delta = 0.0;
  std::size_t row = row_begin;
  std::size_t r = local_begin;
  for (; row + 8 <= row_end; row += 8, r += 8) {
    const auto entry = [&](std::uint32_t e) {
      // Eight consecutive rows of the run: dictionary ids are contiguous
      // in the transposed slab, x operands are contiguous because the
      // column offset is shared.
      const __m128i ids16 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(ids_t + e * seg_rows + r));
      const __m256i idx = _mm256_cvtepu16_epi32(ids16);
      const __m512d dv = _mm512_i32gather_pd(idx, dictionary, 8);
      const __m512d xv = _mm512_loadu_pd(x + row + offsets[e]);
      return _mm512_mul_pd(dv, xv);
    };
    const __m512d v = combine_entries512(length, entry);
    _mm512_storeu_pd(out + row, v);
    if (weight != 0.0) {
      _mm512_storeu_pd(accum + row,
                       _mm512_add_pd(_mm512_loadu_pd(accum + row),
                                     _mm512_mul_pd(weight_v, v)));
    }
    delta_v = _mm512_max_pd(
        delta_v, _mm512_andnot_pd(
                     sign_mask, _mm512_sub_pd(v, _mm512_loadu_pd(x + row))));
  }
  for (; row < row_end; ++row, ++r) {
    const double v = uniform_row_scalar(length, offsets, ids_t, seg_rows, r,
                                        dictionary, x, row);
    out[row] = v;
    if (weight != 0.0) accum[row] += weight * v;
    delta = std::max(delta, std::abs(v - x[row]));
  }
  return std::max(delta, _mm512_reduce_max_pd(delta_v));
}

double avx512_plan_uniform_rows_mixed(
    std::uint32_t length, const std::int16_t* offsets,
    const std::uint16_t* ids_t, std::size_t seg_rows,
    std::size_t local_begin, const float* dictionary, const float* x,
    float* out, double* accum, double weight, std::size_t row_begin,
    std::size_t row_end) {
  const __m512d sign_mask = _mm512_set1_pd(-0.0);
  const __m512d weight_v = _mm512_set1_pd(weight);
  __m512d delta_v = _mm512_setzero_pd();
  double delta = 0.0;
  std::size_t row = row_begin;
  std::size_t r = local_begin;
  for (; row + 8 <= row_end; row += 8, r += 8) {
    const auto entry = [&](std::uint32_t e) {
      const __m128i ids16 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(ids_t + e * seg_rows + r));
      const __m256i idx = _mm256_cvtepu16_epi32(ids16);
      // float32 operands halve the streamed bytes; the promotion to
      // double before the multiply keeps every product exact.
      const __m256 dvf = _mm256_i32gather_ps(dictionary, idx, 4);
      const __m512d dv = _mm512_cvtps_pd(dvf);
      const __m512d xv =
          _mm512_cvtps_pd(_mm256_loadu_ps(x + row + offsets[e]));
      return _mm512_mul_pd(dv, xv);
    };
    const __m512d v = combine_entries512(length, entry);
    _mm256_storeu_ps(out + row, _mm512_cvtpd_ps(v));
    if (weight != 0.0) {
      _mm512_storeu_pd(accum + row,
                       _mm512_add_pd(_mm512_loadu_pd(accum + row),
                                     _mm512_mul_pd(weight_v, v)));
    }
    const __m512d xr = _mm512_cvtps_pd(_mm256_loadu_ps(x + row));
    delta_v = _mm512_max_pd(
        delta_v, _mm512_andnot_pd(sign_mask, _mm512_sub_pd(v, xr)));
  }
  for (; row < row_end; ++row, ++r) {
    const double v = uniform_row_scalar(length, offsets, ids_t, seg_rows, r,
                                        dictionary, x, row);
    out[row] = static_cast<float>(v);
    if (weight != 0.0) accum[row] += weight * v;
    delta = std::max(delta, std::abs(v - static_cast<double>(x[row])));
  }
  return std::max(delta, _mm512_reduce_max_pd(delta_v));
}

}  // namespace kibamrm::linalg::kernels::detail

#endif  // KIBAMRM_HAVE_AVX512_TIER
