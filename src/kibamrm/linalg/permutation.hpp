// State-reordering permutations for the expanded battery chains.
//
// The gather kernels' SIMD row grouping needs *runs* of consecutive
// equal-length rows, and the compressed plan layout needs column offsets
// within int16 of the row -- both are properties of the state numbering,
// not of the chain.  The natural numbering of core/expanded_ctmc keeps
// the workload state innermost, which alternates row structure every
// other row and defeats grouping entirely (the PR 5 measurement); a
// level-major or reverse Cuthill-McKee renumbering exposes the banded
// structure the kernels want.  This header is the permutation algebra
// those renumberings share: build, apply, invert, compose -- including
// composition with the reachable-closure compaction, which is itself
// just an (injective) index map.
//
// Convention: a Permutation stores new_of_old, i.e. p[i] is the new index
// of old state i.  apply() moves data old -> new (out[p[i]] = in[i]);
// apply_inverse() moves it back.  Permuting a matrix symmetric-permutes
// rows and columns together, so a generator stays a generator and row
// sums are untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kibamrm/linalg/csr_matrix.hpp"

namespace kibamrm::linalg {

class Permutation {
 public:
  /// The empty permutation (size 0); also what a default member is.
  Permutation() = default;

  /// Adopts and validates new_of_old: must be a bijection on
  /// {0, ..., n-1}; throws InvalidArgument otherwise.
  explicit Permutation(std::vector<std::uint32_t> new_of_old);

  static Permutation identity(std::size_t n);

  std::size_t size() const { return new_of_old_.size(); }
  bool empty() const { return new_of_old_.empty(); }

  /// New index of old state i.
  std::uint32_t operator[](std::size_t old_index) const {
    return new_of_old_[old_index];
  }

  /// True iff p[i] == i for all i (the cheap fast-path test; an empty
  /// permutation counts as identity).
  bool is_identity() const;

  Permutation inverse() const;

  /// Composition "this, then other": result[i] = other[(*this)[i]].
  /// Sizes must match.
  Permutation then(const Permutation& other) const;

  /// out[p[i]] = v[i] -- data follows the states to their new indices.
  std::vector<double> apply(const std::vector<double>& v) const;

  /// out[i] = v[p[i]] -- the inverse move, back to the old numbering.
  std::vector<double> apply_inverse(const std::vector<double>& v) const;

  /// Symmetric permutation B(p[i], p[j]) = A(i, j) of a square matrix.
  CsrMatrix permuted(const CsrMatrix& matrix) const;

  /// Reverse Cuthill-McKee over the symmetrised sparsity pattern of a
  /// square matrix (diagonal ignored): per connected component, a
  /// breadth-first sweep from a minimum-degree start with neighbours
  /// visited in ascending-degree order, then the whole numbering
  /// reversed.  The classic bandwidth-minimising heuristic.
  static Permutation reverse_cuthill_mckee(const CsrMatrix& pattern);

 private:
  std::vector<std::uint32_t> new_of_old_;
};

/// Structure metrics of a sparse matrix that decide which gather kernels
/// can win on it: the band width the compressed plan must represent and
/// the equal-length row runs the SIMD grouping consumes.
struct StructureStats {
  /// max |col - row| over stored entries.
  std::uint64_t bandwidth = 0;
  /// Rows of the matrix.
  std::uint64_t rows = 0;
  /// Rows inside maximal runs of >= 4 consecutive equal-length rows --
  /// the rows a 4-wide grouped gather kernel can take.
  std::uint64_t groupable_rows = 0;
  /// Length of the longest such run.
  std::uint64_t longest_uniform_run = 0;
  /// Rows whose entire column-offset pattern (col - row, per entry)
  /// repeats the previous row's -- "diagonal runs", the structure an
  /// RCM/level-banded numbering produces in bulk.  Inside one, entry e of
  /// consecutive rows reads consecutive x addresses, which is what the
  /// uniform-segment SIMD kernels and the software-prefetch heuristic
  /// key on; unlike groupable_rows this requires identical offsets, not
  /// just equal lengths.
  std::uint64_t diagonal_rows = 0;
  /// Length of the longest diagonal run (counting its first row).
  std::uint64_t longest_diagonal_run = 0;

  /// groupable_rows / rows (0 for an empty matrix).
  double groupable_fraction() const {
    return rows == 0 ? 0.0
                     : static_cast<double>(groupable_rows) /
                           static_cast<double>(rows);
  }
};

StructureStats structure_stats(const CsrMatrix& matrix);

}  // namespace kibamrm::linalg
