// A compressed, fused gather kernel for the uniformisation power iteration.
//
// The hot loop of uniformisation streams the same sparse matrix tens of
// thousands of times; at ~3 stored entries per row the kernel is bound by
// memory traffic, not arithmetic.  Expanded battery chains are (a) banded
// -- every column index is within a few hundred of its row -- and (b)
// value-sparse: the generator is assembled from a small set of rates, so
// the ~1e6 stored doubles take only a few thousand distinct values.
//
// FusedGatherPlan exploits both.  Two compressed layouts exist:
//
//   kRowOffset     each entry packs into 4 bytes: int16 column offset from
//                  the row plus uint16 index into a value dictionary
//                  (CSR spends 12); row lengths stream as one uint8 each.
//                  ~1/3 the per-iteration traffic on the paper's Fig. 8
//                  chains, measured ~1.3-1.5x end-to-end over the CSR
//                  gather.  This layout is SIMD-dispatched: runs of
//                  equal-length rows evaluate four rows per AVX2 gather
//                  group when the avx2 kernel tier is active.
//
//   kColumnDelta   fallback for wide chains whose column offsets escape
//                  int16: per-row absolute first column (uint32) plus
//                  uint16 deltas between consecutive columns -- CSR
//                  columns are sorted, so any row whose largest gap fits
//                  16 bits compresses, regardless of the band width.
//                  Same 4 bytes per entry plus 4 per row; scalar kernel
//                  only (the running-column dependency defeats the
//                  gather grouping).
//
// The kernel itself is the same fused uniformisation step as
// CsrMatrix::multiply_fused_range (spmv + Poisson-weighted accumulate +
// sup-norm step delta in one pass) with bitwise-identical arithmetic: the
// dictionary stores exact doubles and every row length evaluates in the
// same canonical order, so a solver may pick either kernel, either
// layout, or either dispatch tier -- or shard any of them across threads
// -- without changing a single bit of the result.
//
// Chains that fit neither layout (a within-row column gap beyond uint16,
// more than 65535 distinct values, rows longer than 255 entries) simply
// fail build(); callers fall back to the CSR kernel.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "kibamrm/linalg/csr_matrix.hpp"

namespace kibamrm::linalg {

class FusedGatherPlan {
 public:
  enum class Layout {
    kRowOffset,    ///< int16 (column - row) offsets; SIMD-dispatched
    kColumnDelta,  ///< absolute first column + uint16 in-row deltas; scalar
  };

  /// Builds a plan from a square (transposed-transition) matrix, or
  /// returns nullopt when the matrix fits neither compressed layout.
  static std::optional<FusedGatherPlan> build(const CsrMatrix& matrix);

  std::size_t rows() const { return lengths_.size(); }

  /// Entries actually stored (== source nonzeros).
  std::size_t nonzeros() const { return value_ids_.size(); }

  Layout layout() const { return layout_; }

  /// Same contract and bitwise-identical result as
  /// CsrMatrix::multiply_fused_range on the source matrix: for rows in
  /// [row_begin, row_end) computes out[row] = dot(row, x), accumulates
  /// accum[row] += weight * out[row] (skipped for weight == 0) and
  /// returns the range-local max |out[row] - x[row]|.  Disjoint ranges
  /// touch disjoint entries, so ranges shard across threads freely.
  double multiply_fused_range(const std::vector<double>& x,
                              std::vector<double>& out,
                              std::vector<double>& accum, double weight,
                              std::size_t row_begin,
                              std::size_t row_end) const;

 private:
  FusedGatherPlan() = default;

  double fused_range_row_offset(const std::vector<double>& x,
                                std::vector<double>& out,
                                std::vector<double>& accum, double weight,
                                std::size_t row_begin,
                                std::size_t row_end) const;
  double fused_range_column_delta(const std::vector<double>& x,
                                  std::vector<double>& out,
                                  std::vector<double>& accum, double weight,
                                  std::size_t row_begin,
                                  std::size_t row_end) const;

  Layout layout_ = Layout::kRowOffset;
  std::vector<std::uint8_t> lengths_;      // stored entries per row
  std::vector<std::uint32_t> entry_start_; // per-row entry offset (size rows+1);
                                           // read once per kernel call, not per row
  std::vector<std::uint16_t> value_ids_;   // dictionary index, per entry
  std::vector<double> dictionary_;         // distinct values, exact bit patterns
  // kRowOffset layout:
  std::vector<std::int16_t> offsets_;      // column - row, per entry
  // kColumnDelta layout:
  std::vector<std::uint32_t> first_col_;   // absolute column of entry 0, per row
  std::vector<std::uint16_t> deltas_;      // column gap to the previous entry
                                           // (entry 0 of each row stores 0)
};

}  // namespace kibamrm::linalg
