// A compressed, fused gather kernel for the uniformisation power iteration.
//
// The hot loop of uniformisation streams the same sparse matrix tens of
// thousands of times; at ~3 stored entries per row the kernel is bound by
// memory traffic, not arithmetic.  Expanded battery chains are (a) banded
// -- every column index is within a few hundred of its row -- and (b)
// value-sparse: the generator is assembled from a small set of rates, so
// the ~1e6 stored doubles take only a few thousand distinct values.
//
// FusedGatherPlan exploits both.  Two compressed layouts exist:
//
//   kRowOffset     each entry packs into 4 bytes: int16 column offset from
//                  the row plus uint16 index into a value dictionary
//                  (CSR spends 12); row lengths stream as one uint8 each.
//                  ~1/3 the per-iteration traffic on the paper's Fig. 8
//                  chains, measured ~1.3-1.5x end-to-end over the CSR
//                  gather.  This layout is SIMD-dispatched: runs of
//                  equal-length rows evaluate four rows per AVX2 gather
//                  group when the avx2 kernel tier is active.
//
//                  Additionally, build() detects UNIFORM SEGMENTS -- runs
//                  of consecutive rows that share both their length (1-4)
//                  and their entire column-offset pattern.  On a
//                  level-major-reordered battery chain (see
//                  core::StateOrdering::kLevel) ~99% of rows fall into
//                  such segments, and within one the x operands of entry
//                  e across neighbouring rows are CONTIGUOUS: the SIMD
//                  kernels vectorise across rows (one row per lane, 8 for
//                  AVX-512 / 4 for AVX2) with plain vector loads for x, a
//                  cache-resident dictionary gather for the values, and
//                  the unchanged per-row canonical order -- so the
//                  segment kernels stay inside the bitwise contract.
//                  Segment dispatch is automatic whenever a SIMD tier is
//                  active (unlike the opt-in legacy row-group gather,
//                  which loses on unordered chains).
//
//   kColumnDelta   fallback for wide chains whose column offsets escape
//                  int16: per-row absolute first column (uint32) plus
//                  uint16 deltas between consecutive columns -- CSR
//                  columns are sorted, so any row whose largest gap fits
//                  16 bits compresses, regardless of the band width.
//                  Same 4 bytes per entry plus 4 per row; scalar kernel
//                  only (the running-column dependency defeats the
//                  gather grouping).
//
// The kernel itself is the same fused uniformisation step as
// CsrMatrix::multiply_fused_range (spmv + Poisson-weighted accumulate +
// sup-norm step delta in one pass) with bitwise-identical arithmetic: the
// dictionary stores exact doubles and every row length evaluates in the
// same canonical order, so a solver may pick either kernel, either
// layout, or either dispatch tier -- or shard any of them across threads
// -- without changing a single bit of the result.
//
// Chains that fit neither layout (a within-row column gap beyond uint16,
// more than 65535 distinct values, rows longer than 255 entries) simply
// fail build(); callers fall back to the CSR kernel.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "kibamrm/linalg/csr_matrix.hpp"

namespace kibamrm::linalg {

class FusedGatherPlan {
 public:
  enum class Layout {
    kRowOffset,    ///< int16 (column - row) offsets; SIMD-dispatched
    kColumnDelta,  ///< absolute first column + uint16 in-row deltas; scalar
  };

  /// Builds a plan from a square (transposed-transition) matrix, or
  /// returns nullopt when the matrix fits neither compressed layout.
  static std::optional<FusedGatherPlan> build(const CsrMatrix& matrix);

  std::size_t rows() const { return lengths_.size(); }

  /// Entries actually stored (== source nonzeros).
  std::size_t nonzeros() const { return value_ids_.size(); }

  Layout layout() const { return layout_; }

  /// Fraction of rows covered by uniform segments (identical length and
  /// offset pattern, runs of >= 8 rows).  ~0 for naturally-ordered
  /// battery chains, ~0.99 after level-major reordering.
  double uniform_fraction() const {
    return lengths_.empty()
               ? 0.0
               : static_cast<double>(uniform_rows_) /
                     static_cast<double>(lengths_.size());
  }

  /// Whether multiply_fused_range_mixed is available: the row-offset
  /// layout carries a float32 shadow dictionary, the column-delta
  /// fallback does not.
  bool mixed_supported() const { return layout_ == Layout::kRowOffset; }

  /// (row_begin, row_end) of every uniform segment, ascending.
  std::vector<std::pair<std::size_t, std::size_t>> uniform_segment_spans()
      const;

  /// Snaps the interior boundaries of a shard partition (ascending,
  /// ranges.front() == 0, ranges.back() == rows()) to the nearest uniform
  /// segment edge, deduplicating boundaries that collapse.  A boundary
  /// inside a segment forces the SIMD segment kernel to take partial
  /// groups at both shard edges; after snapping, every segment is
  /// processed whole by exactly one shard.  Bitwise-safe by construction:
  /// per-row arithmetic is partition-independent, so only load balance
  /// can change.  No-op for the column-delta layout or when no segments
  /// exist.
  void align_ranges_to_segments(std::vector<std::size_t>& ranges) const;

  /// Same contract and bitwise-identical result as
  /// CsrMatrix::multiply_fused_range on the source matrix: for rows in
  /// [row_begin, row_end) computes out[row] = dot(row, x), accumulates
  /// accum[row] += weight * out[row] (skipped for weight == 0) and
  /// returns the range-local max |out[row] - x[row]|.  Disjoint ranges
  /// touch disjoint entries, so ranges shard across threads freely.
  double multiply_fused_range(const std::vector<double>& x,
                              std::vector<double>& out,
                              std::vector<double>& accum, double weight,
                              std::size_t row_begin,
                              std::size_t row_end) const;

  /// Mixed-precision fused step (requires mixed_supported()): reads x as
  /// float32, writes out as float32, accumulates accum[row] += weight *
  /// sum in DOUBLE -- each product is (double)value_f * (double)x_f,
  /// which is exact, so only the float32 operand rounding (~1e-7
  /// relative) is lost per entry.  Deterministic across threads and row
  /// partitions (per-row arithmetic is partition-independent), but NOT
  /// bitwise comparable to the double kernels.  Returns the range-local
  /// max |sum - (double)x[row]|.
  double multiply_fused_range_mixed(const std::vector<float>& x,
                                    std::vector<float>& out,
                                    std::vector<double>& accum,
                                    double weight, std::size_t row_begin,
                                    std::size_t row_end) const;

 private:
  FusedGatherPlan() = default;

  double fused_range_row_offset(const std::vector<double>& x,
                                std::vector<double>& out,
                                std::vector<double>& accum, double weight,
                                std::size_t row_begin,
                                std::size_t row_end) const;
  double fused_range_column_delta(const std::vector<double>& x,
                                  std::vector<double>& out,
                                  std::vector<double>& accum, double weight,
                                  std::size_t row_begin,
                                  std::size_t row_end) const;

  /// One maximal run of rows sharing length (1-4) and offset pattern.
  struct UniformSegment {
    std::uint32_t row_begin = 0;
    std::uint32_t row_count = 0;
    std::uint32_t length = 0;
    std::uint32_t ids_base = 0;  ///< offset into segment_ids_
  };

  void build_uniform_segments();

  template <typename Value>
  double fused_rows_generic(const Value* x, Value* out, double* accum,
                            const Value* dictionary, double weight,
                            std::size_t row_begin, std::size_t row_end) const;

  /// Walks [row_begin, row_end) alternating between uniform segments
  /// (vectorised kernel, 8 or 4 rows per group) and the canonical scalar
  /// span between them.
  template <typename Value>
  double fused_segments_simd(const Value* x, Value* out, double* accum,
                             const Value* dictionary, double weight,
                             std::size_t row_begin, std::size_t row_end,
                             bool use_avx512) const;

  Layout layout_ = Layout::kRowOffset;
  std::vector<std::uint8_t> lengths_;      // stored entries per row
  std::vector<std::uint32_t> entry_start_; // per-row entry offset (size rows+1);
                                           // read once per kernel call, not per row
  std::vector<std::uint16_t> value_ids_;   // dictionary index, per entry
  std::vector<double> dictionary_;         // distinct values, exact bit patterns
  std::vector<float> dictionary_f_;        // float32 shadow for the mixed tier
  // kRowOffset layout:
  std::vector<std::int16_t> offsets_;      // column - row, per entry
  // Uniform segments (kRowOffset only), ascending by row_begin:
  std::vector<UniformSegment> segments_;
  std::vector<std::uint16_t> segment_ids_; // entry-major transposed ids:
                                           // ids_base + e*row_count + r
  std::size_t uniform_rows_ = 0;           // rows covered by segments_
  // Rows of look-ahead for the scalar kernel's software prefetch of x;
  // 0 disables.  Set at build() time when the band is wide enough that
  // the x accesses of upcoming rows fall outside the L1-resident
  // neighbourhood the hardware prefetcher already covers (narrow bands
  // measured a wash or a small loss from the extra instructions).
  std::size_t prefetch_distance_ = 0;
  // kColumnDelta layout:
  std::vector<std::uint32_t> first_col_;   // absolute column of entry 0, per row
  std::vector<std::uint16_t> deltas_;      // column gap to the previous entry
                                           // (entry 0 of each row stores 0)
};

}  // namespace kibamrm::linalg
