// A compressed, fused gather kernel for the uniformisation power iteration.
//
// The hot loop of uniformisation streams the same sparse matrix tens of
// thousands of times; at ~3 stored entries per row the kernel is bound by
// memory traffic, not arithmetic.  Expanded battery chains are (a) banded
// -- every column index is within a few hundred of its row -- and (b)
// value-sparse: the generator is assembled from a small set of rates, so
// the ~1e6 stored doubles take only a few thousand distinct values.
//
// FusedGatherPlan exploits both: each entry packs into 4 bytes (int16
// column offset from the row + uint16 index into a value dictionary)
// instead of CSR's 12, and row lengths stream as one uint8 each instead
// of 4-byte row pointers.  That cuts the per-iteration traffic roughly
// threefold on the paper's Fig. 8 chains -- measured ~1.3-1.5x
// end-to-end over the plain CSR gather.
//
// The kernel itself is the same fused uniformisation step as
// CsrMatrix::multiply_fused_range (spmv + Poisson-weighted accumulate +
// sup-norm step delta in one pass) with bitwise-identical arithmetic: the
// dictionary stores exact doubles and every row length evaluates in the
// same canonical order, so a solver may pick either kernel -- or shard
// either across threads -- without changing a single bit of the result.
//
// Chains that do not compress (offsets beyond int16, more than 65535
// distinct values, rows longer than 255 entries) simply fail build();
// callers fall back to the CSR kernel.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "kibamrm/linalg/csr_matrix.hpp"

namespace kibamrm::linalg {

class FusedGatherPlan {
 public:
  /// Builds a plan from a square (transposed-transition) matrix, or
  /// returns nullopt when the matrix does not fit the compressed layout.
  static std::optional<FusedGatherPlan> build(const CsrMatrix& matrix);

  std::size_t rows() const { return lengths_.size(); }

  /// Entries actually stored (== source nonzeros).
  std::size_t nonzeros() const { return offsets_.size(); }

  /// Same contract and bitwise-identical result as
  /// CsrMatrix::multiply_fused_range on the source matrix: for rows in
  /// [row_begin, row_end) computes out[row] = dot(row, x), accumulates
  /// accum[row] += weight * out[row] (skipped for weight == 0) and
  /// returns the range-local max |out[row] - x[row]|.  Disjoint ranges
  /// touch disjoint entries, so ranges shard across threads freely.
  double multiply_fused_range(const std::vector<double>& x,
                              std::vector<double>& out,
                              std::vector<double>& accum, double weight,
                              std::size_t row_begin,
                              std::size_t row_end) const;

 private:
  FusedGatherPlan() = default;

  std::vector<std::uint8_t> lengths_;      // stored entries per row
  std::vector<std::uint32_t> entry_start_; // per-row entry offset (size rows+1);
                                           // read once per kernel call, not per row
  std::vector<std::int16_t> offsets_;      // column - row, per entry
  std::vector<std::uint16_t> value_ids_;   // dictionary index, per entry
  std::vector<double> dictionary_;         // distinct values, exact bit patterns
};

}  // namespace kibamrm::linalg
