#include "kibamrm/linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/kernels.hpp"

namespace kibamrm::linalg {

double sum(const std::vector<double>& v) {
  // Kahan summation: uniformisation adds ~1e5 tiny Poisson-weighted terms,
  // plain accumulation loses digits we later compare against 1.
  double total = 0.0;
  double carry = 0.0;
  for (double x : v) {
    const double y = x - carry;
    const double t = total + y;
    carry = (t - total) - y;
    total = t;
  }
  return total;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  KIBAMRM_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  // Dispatched fixed-block pairwise kernel: SIMD when available, and a
  // result that no longer depends on which tier ran (see kernels.hpp).
  return kernels::dot(a.data(), b.data(), a.size());
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  KIBAMRM_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  kernels::axpy(alpha, x.data(), y.data(), x.size());
}

void scale(std::vector<double>& v, double alpha) {
  kernels::scale(v.data(), alpha, v.size());
}

void fill(std::vector<double>& v, double value) {
  std::fill(v.begin(), v.end(), value);
}

double linf_distance(const std::vector<double>& a,
                     const std::vector<double>& b) {
  KIBAMRM_REQUIRE(a.size() == b.size(), "linf_distance: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

double linf_norm(const std::vector<double>& v) {
  double worst = 0.0;
  for (double x : v) worst = std::max(worst, std::abs(x));
  return worst;
}

double l1_norm(const std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) total += std::abs(x);
  return total;
}

void normalize_probability(std::vector<double>& v) {
  const double total = sum(v);
  if (!(total > 0.0)) {
    throw NumericalError("normalize_probability: vector sum is not positive");
  }
  scale(v, 1.0 / total);
}

bool is_probability_vector(const std::vector<double>& v, double eps) {
  for (double x : v) {
    if (x < -eps || x > 1.0 + eps) return false;
  }
  return std::abs(sum(v) - 1.0) <= eps;
}

}  // namespace kibamrm::linalg
