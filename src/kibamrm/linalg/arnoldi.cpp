#include "kibamrm/linalg/arnoldi.hpp"

#include <algorithm>
#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/common/thread_pool.hpp"
#include "kibamrm/linalg/kernels.hpp"

namespace kibamrm::linalg {

namespace {

// Vectors below this size run inline: one dot costs less than waking the
// pool (the same engagement threshold the gather shard plan uses).
constexpr std::size_t kPoolThresholdElements = 16384;

// Reorthogonalise when the projection removed more than this fraction of
// w's norm (eta = 1/sqrt(2), the classic Daniel et al. choice): above it
// the first Gram-Schmidt pass is provably accurate enough on its own.
constexpr double kReorthThreshold = 0.70710678118654752;

// The sharded sweeps over one factorisation.  Shards are contiguous
// *block* ranges of the kernels layer's fixed reduction blocks, so every
// block partial is computed whole inside one shard and the pairwise
// reduction over the full partial array is bitwise independent of the
// partition; element-wise work (axpy, scale) is order-free anyway.
class ShardedSweeps {
 public:
  ShardedSweeps(common::ThreadPool* pool, ArnoldiWorkspace& ws,
                std::size_t n, std::size_t m)
      : ws_(ws), n_(n), blocks_(kernels::block_count(n)) {
    pool_ = (pool != nullptr && pool->thread_count() > 1 &&
             n >= kPoolThresholdElements && blocks_ > 1)
                ? pool
                : nullptr;
    const std::size_t lanes = pool_ ? pool_->thread_count() : 1;
    // 4x oversubscription lets the pool's claim loop absorb lane jitter.
    // Floor of one shard: a zero-dimensional problem (blocks_ == 0) still
    // runs its (empty) sweeps and exits through the happy-breakdown test,
    // like the pre-sharded code did.
    const std::size_t shards = std::max<std::size_t>(
        1, std::min(blocks_, pool_ ? 4 * lanes : std::size_t{1}));
    ws_.shard_blocks.assign(shards + 1, 0);
    for (std::size_t s = 0; s <= shards; ++s) {
      ws_.shard_blocks[s] = blocks_ * s / shards;
    }
    ws_.partials.assign((m + 1) * blocks_, 0.0);
    ws_.corrections.assign(m + 1, 0.0);
  }

  std::size_t blocks() const { return blocks_; }
  double* partials(std::size_t row) {
    return ws_.partials.data() + row * blocks_;
  }
  double* corrections() { return ws_.corrections.data(); }

  /// Runs sweep(block_begin, block_end, elem_begin, elem_end) over every
  /// shard (on the pool when engaged).
  template <typename Sweep>
  void run(const Sweep& sweep) {
    const std::size_t shards = ws_.shard_blocks.size() - 1;
    const auto shard_body = [&](std::size_t s) {
      const std::size_t block_begin = ws_.shard_blocks[s];
      const std::size_t block_end = ws_.shard_blocks[s + 1];
      const std::size_t elem_begin = block_begin * kernels::kBlockDoubles;
      const std::size_t elem_end =
          std::min(n_, block_end * kernels::kBlockDoubles);
      sweep(block_begin, block_end, elem_begin, elem_end);
    };
    if (pool_ != nullptr) {
      pool_->parallel_for(shards,
                          [&](std::size_t s, std::size_t /*lane*/) {
                            shard_body(s);
                          });
    } else {
      for (std::size_t s = 0; s < shards; ++s) shard_body(s);
    }
  }

  double reduce(std::size_t row) {
    return kernels::reduce_pairwise(partials(row), blocks_);
  }

 private:
  ArnoldiWorkspace& ws_;
  common::ThreadPool* pool_ = nullptr;
  std::size_t n_;
  std::size_t blocks_;
};

}  // namespace

ArnoldiResult arnoldi(const ArnoldiMatvec& matvec,
                      std::vector<std::vector<double>>& basis, DenseReal& h,
                      std::size_t m, double breakdown_tolerance,
                      common::ThreadPool* pool,
                      ArnoldiWorkspace* workspace) {
  KIBAMRM_REQUIRE(m >= 1, "arnoldi: subspace dimension must be >= 1");
  KIBAMRM_REQUIRE(basis.size() >= m + 1,
                  "arnoldi: basis must hold at least m+1 vectors");
  KIBAMRM_REQUIRE(h.rows() >= m + 1 && h.cols() >= m,
                  "arnoldi: Hessenberg must be at least (m+1) x m");

  for (std::size_t i = 0; i < h.rows(); ++i) {
    for (std::size_t j = 0; j < h.cols(); ++j) h(i, j) = 0.0;
  }

  const std::size_t n = basis[0].size();
  ArnoldiWorkspace local;
  ShardedSweeps sweeps(pool, workspace ? *workspace : local, n, m);

  ArnoldiResult result;
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<double>& w = basis[j + 1];
    matvec(basis[j], w);
    ++result.matvecs;
    double* wd = w.data();
    // CGS2 orthogonalisation in three fused sweeps (the ARPACK scheme:
    // classical Gram-Schmidt plus one DGKS correction pass; Giraud et al.
    // show the pair reaches the same O(eps) orthogonality as MGS with a
    // second pass).  Classical projections all read the *unmodified* w,
    // so the j+1 dots of a pass batch into one sweep over memory -- on
    // the 1e5+-state chains where this factorisation lives, memory
    // passes, not flops, are the wall.
    //
    // Sweep 1: every first-pass projection h_i = <v_i, w> plus the
    // breakdown scale ||A v_j||, one read of w.
    sweeps.run([&](std::size_t bb, std::size_t be, std::size_t,
                   std::size_t) {
      kernels::dot_blocks(wd, wd, n, bb, be, sweeps.partials(m));
      for (std::size_t i = 0; i <= j; ++i) {
        kernels::dot_blocks(basis[i].data(), wd, n, bb, be,
                            sweeps.partials(i));
      }
    });
    const double wnorm = std::sqrt(sweeps.reduce(m));
    double* coefficients = sweeps.corrections();
    for (std::size_t i = 0; i <= j; ++i) {
      coefficients[i] = sweeps.reduce(i);
      h(i, j) = coefficients[i];
    }
    // Sweep 2: apply the projections and measure what is left of w in
    // the same pass.
    sweeps.run([&](std::size_t bb, std::size_t be, std::size_t eb,
                   std::size_t ee) {
      for (std::size_t i = 0; i <= j; ++i) {
        kernels::axpy(-coefficients[i], basis[i].data() + eb, wd + eb,
                      ee - eb);
      }
      kernels::dot_blocks(wd, wd, n, bb, be, sweeps.partials(m));
    });
    double residual = std::sqrt(sweeps.reduce(m));
    // Selective DGKS correction (Daniel/Gragg/Kaufman/Stewart criterion,
    // the ARPACK policy): the first pass lost orthogonality only if the
    // projection cancelled most of w -- on stiff chains ||A v_j|| dwarfs
    // the residual and the cancellation leaves O(eps ||A v_j||)
    // components along the basis, a relative perturbation that would
    // poison exactly the slow couplings the Krylov projection exists to
    // resolve.  The correction pass removes them and folds into H, so
    // the Arnoldi relation A V_k = V_{k+1} H_k keeps holding; when the
    // residual kept most of w's norm (the mild-chain common case) the
    // pass is provably unnecessary and its two memory sweeps are
    // skipped.  The trigger compares bitwise-deterministic norms, so
    // thread count and dispatch tier cannot flip it.
    if (residual < kReorthThreshold * wnorm) {
      sweeps.run([&](std::size_t bb, std::size_t be, std::size_t,
                     std::size_t) {
        for (std::size_t i = 0; i <= j; ++i) {
          kernels::dot_blocks(basis[i].data(), wd, n, bb, be,
                              sweeps.partials(i));
        }
      });
      for (std::size_t i = 0; i <= j; ++i) {
        coefficients[i] = sweeps.reduce(i);
        h(i, j) += coefficients[i];
      }
      sweeps.run([&](std::size_t bb, std::size_t be, std::size_t eb,
                     std::size_t ee) {
        for (std::size_t i = 0; i <= j; ++i) {
          kernels::axpy(-coefficients[i], basis[i].data() + eb, wd + eb,
                        ee - eb);
        }
        kernels::dot_blocks(wd, wd, n, bb, be, sweeps.partials(m));
      });
      residual = std::sqrt(sweeps.reduce(m));
    }
    h(j + 1, j) = residual;
    result.dim = j + 1;
    if (residual <= breakdown_tolerance * wnorm) {
      result.happy_breakdown = true;
      return result;
    }
    const double inverse = 1.0 / residual;
    sweeps.run([&](std::size_t, std::size_t, std::size_t eb,
                   std::size_t ee) {
      kernels::scale(wd + eb, inverse, ee - eb);
    });
  }
  return result;
}

}  // namespace kibamrm::linalg
