#include "kibamrm/linalg/arnoldi.hpp"

#include <cmath>

#include "kibamrm/common/error.hpp"
#include "kibamrm/linalg/vector_ops.hpp"

namespace kibamrm::linalg {

ArnoldiResult arnoldi(const ArnoldiMatvec& matvec,
                      std::vector<std::vector<double>>& basis, DenseReal& h,
                      std::size_t m, double breakdown_tolerance) {
  KIBAMRM_REQUIRE(m >= 1, "arnoldi: subspace dimension must be >= 1");
  KIBAMRM_REQUIRE(basis.size() >= m + 1,
                  "arnoldi: basis must hold at least m+1 vectors");
  KIBAMRM_REQUIRE(h.rows() >= m + 1 && h.cols() >= m,
                  "arnoldi: Hessenberg must be at least (m+1) x m");

  for (std::size_t i = 0; i < h.rows(); ++i) {
    for (std::size_t j = 0; j < h.cols(); ++j) h(i, j) = 0.0;
  }

  ArnoldiResult result;
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<double>& w = basis[j + 1];
    matvec(basis[j], w);
    ++result.matvecs;
    const double wnorm = std::sqrt(dot(w, w));
    // Modified Gram-Schmidt: project out each basis vector in turn (the
    // updated w feeds the next projection, which is what distinguishes
    // MGS from the unstable classical variant).
    for (std::size_t i = 0; i <= j; ++i) {
      const double hij = dot(basis[i], w);
      h(i, j) = hij;
      axpy(-hij, basis[i], w);
    }
    // Reorthogonalise once ("twice is enough", Kahan/Parlett): on stiff
    // chains ||A v_j|| dwarfs the residual, so the first pass leaves
    // O(eps ||A v_j||) components along the basis from cancellation --
    // a relative perturbation that would poison exactly the slow
    // couplings the Krylov projection exists to resolve.  The second
    // pass removes them; its corrections fold into H so the Arnoldi
    // relation A V_k = V_{k+1} H_k keeps holding.
    for (std::size_t i = 0; i <= j; ++i) {
      const double correction = dot(basis[i], w);
      h(i, j) += correction;
      axpy(-correction, basis[i], w);
    }
    const double residual = std::sqrt(dot(w, w));
    h(j + 1, j) = residual;
    result.dim = j + 1;
    if (residual <= breakdown_tolerance * wnorm) {
      result.happy_breakdown = true;
      return result;
    }
    scale(w, 1.0 / residual);
  }
  return result;
}

}  // namespace kibamrm::linalg
