#include "kibamrm/linalg/expm.hpp"

#include <array>
#include <cmath>

namespace kibamrm::linalg {

namespace {

// Pade-13 coefficients from Higham (2005), Table 10.4 machinery.
constexpr std::array<double, 14> kPade13 = {
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
    1187353796428800.0,  129060195264000.0,   10559470521600.0,
    670442572800.0,      33522128640.0,       1323241920.0,
    40840800.0,          960960.0,            16380.0,
    182.0,               1.0};

// theta_13: scale until norm1(A) <= theta to keep the Pade error below
// machine epsilon.
constexpr double kTheta13 = 5.371920351148152;

template <typename Scalar>
Dense<Scalar> expm_impl(const Dense<Scalar>& a_in) {
  KIBAMRM_REQUIRE(a_in.rows() == a_in.cols(), "expm: matrix must be square");
  const std::size_t n = a_in.rows();

  Dense<Scalar> a = a_in;
  int squarings = 0;
  const double norm = a.norm1();
  if (norm > kTheta13) {
    squarings = static_cast<int>(std::ceil(std::log2(norm / kTheta13)));
    a = a.scaled(Scalar{1} / Scalar(std::ldexp(1.0, squarings)));
  }

  // Pade-13: U = A (b13 A6^2 + b11 A6 A4? ...) -- use the standard grouping:
  //   A2 = A^2, A4 = A2^2, A6 = A2 A4
  //   U = A * (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
  //   V =      A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
  //   expm(A) ~= (V - U)^{-1} (V + U)
  const Dense<Scalar> eye = Dense<Scalar>::identity(n);
  const Dense<Scalar> a2 = a * a;
  const Dense<Scalar> a4 = a2 * a2;
  const Dense<Scalar> a6 = a2 * a4;

  const auto b = [](int i) { return Scalar(kPade13[static_cast<std::size_t>(i)]); };

  Dense<Scalar> w1 = a6.scaled(b(13)) + a4.scaled(b(11)) + a2.scaled(b(9));
  Dense<Scalar> w2 =
      a6.scaled(b(7)) + a4.scaled(b(5)) + a2.scaled(b(3)) + eye.scaled(b(1));
  Dense<Scalar> u = a * (a6 * w1 + w2);

  Dense<Scalar> z1 = a6.scaled(b(12)) + a4.scaled(b(10)) + a2.scaled(b(8));
  Dense<Scalar> v =
      a6 * z1 + a6.scaled(b(6)) + a4.scaled(b(4)) + a2.scaled(b(2)) +
      eye.scaled(b(0));

  Dense<Scalar> result = lu_solve(v - u, v + u);
  for (int i = 0; i < squarings; ++i) result = result * result;
  return result;
}

}  // namespace

DenseReal expm(const DenseReal& a) { return expm_impl(a); }
DenseComplex expm(const DenseComplex& a) { return expm_impl(a); }

}  // namespace kibamrm::linalg
