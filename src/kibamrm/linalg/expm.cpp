#include "kibamrm/linalg/expm.hpp"

#include <array>
#include <cmath>
#include <complex>

namespace kibamrm::linalg {

namespace {

// Pade-13 coefficients from Higham (2005), Table 10.4 machinery.
constexpr std::array<double, 14> kPade13 = {
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
    1187353796428800.0,  129060195264000.0,   10559470521600.0,
    670442572800.0,      33522128640.0,       1323241920.0,
    40840800.0,          960960.0,            16380.0,
    182.0,               1.0};

// theta_13: scale until norm1(A) <= theta to keep the Pade error below
// machine epsilon.
constexpr double kTheta13 = 5.371920351148152;

// Norms above this would overflow the cached sixth power (limit ~
// DBL_MAX^(1/6) ~ 1e51); such matrices are pre-divided by an exact power
// of two before the powers are formed, and the factor folds back into
// the per-evaluation scalar -- bitwise equivalent to the classic
// scale-first formulation, so the power caching costs no domain.
constexpr double kPowerOverflowLimit = 1e50;

/// Smallest exact power of two bringing `norm` under kPowerOverflowLimit
/// (1.0 when none is needed).
inline double prescale_factor(double norm) {
  if (!(norm > kPowerOverflowLimit)) return 1.0;
  const int shift =
      static_cast<int>(std::ceil(std::log2(norm / kPowerOverflowLimit)));
  return std::ldexp(1.0, shift);
}

/// exp(s A) from precomputed even powers of A.  Matrix powers scale as
/// (sA)^k = s^k A^k, so the scaled Pade operands are the cached A^2, A^4,
/// A^6 times scalar powers of the per-call scaling c = s / 2^squarings --
/// each evaluation costs three matrix products, one LU solve and the
/// squaring chain, instead of a fresh expm's six products.
template <typename Scalar>
Dense<Scalar> pade13_scaled(const Dense<Scalar>& a, const Dense<Scalar>& a2,
                            const Dense<Scalar>& a4, const Dense<Scalar>& a6,
                            double norm, Scalar s) {
  const std::size_t n = a.rows();

  int squarings = 0;
  const double scaled_norm = std::abs(s) * norm;
  if (scaled_norm > kTheta13) {
    squarings = static_cast<int>(std::ceil(std::log2(scaled_norm / kTheta13)));
  }
  const Scalar c = s / Scalar(std::ldexp(1.0, squarings));
  const Scalar c2 = c * c;
  const Scalar c4 = c2 * c2;
  const Scalar c6 = c2 * c4;

  const auto b = [](int i) {
    return Scalar(kPade13[static_cast<std::size_t>(i)]);
  };
  const Dense<Scalar> eye = Dense<Scalar>::identity(n);

  // With B = cA: U = B (B6 w1 + w2), V = B6 z1 + w3, where w1/w2/z1/w3 are
  // the Pade combinations of B2 = c^2 A2 etc.; the scalars fold into the
  // coefficients so no scaled matrix copies of the powers are needed.
  // c6 is applied to w1/z1 *before* the product with a6: the products
  // a6 * w1 and a6 * z1 can overflow for pre-scaled extreme norms (a6 up
  // to ~1e300 times z1 ~ 1e10), while c6-scaled operands keep every
  // intermediate bounded by theta-power combinations.
  const Dense<Scalar> w1 =
      a6.scaled(b(13) * c6) + a4.scaled(b(11) * c4) + a2.scaled(b(9) * c2);
  const Dense<Scalar> w2 = a6.scaled(b(7) * c6) + a4.scaled(b(5) * c4) +
                           a2.scaled(b(3) * c2) + eye.scaled(b(1));
  const Dense<Scalar> u = (a * (a6 * w1.scaled(c6) + w2)).scaled(c);

  const Dense<Scalar> z1 =
      a6.scaled(b(12) * c6) + a4.scaled(b(10) * c4) + a2.scaled(b(8) * c2);
  const Dense<Scalar> v = a6 * z1.scaled(c6) + a6.scaled(b(6) * c6) +
                          a4.scaled(b(4) * c4) + a2.scaled(b(2) * c2) +
                          eye.scaled(b(0));

  Dense<Scalar> result = lu_solve(v - u, v + u);
  for (int i = 0; i < squarings; ++i) result = result * result;
  return result;
}

template <typename Scalar>
Dense<Scalar> expm_impl(const Dense<Scalar>& a_in) {
  KIBAMRM_REQUIRE(a_in.rows() == a_in.cols(), "expm: matrix must be square");
  const double norm = a_in.norm1();
  const double prescale = prescale_factor(norm);
  const Dense<Scalar> a =
      prescale == 1.0 ? a_in : a_in.scaled(Scalar{1} / Scalar(prescale));
  const Dense<Scalar> a2 = a * a;
  const Dense<Scalar> a4 = a2 * a2;
  const Dense<Scalar> a6 = a2 * a4;
  return pade13_scaled(a, a2, a4, a6, norm / prescale, Scalar(prescale));
}

}  // namespace

DenseReal expm(const DenseReal& a) { return expm_impl(a); }
DenseComplex expm(const DenseComplex& a) { return expm_impl(a); }

ScaledExpmCache::ScaledExpmCache(const DenseReal& a) {
  KIBAMRM_REQUIRE(a.rows() > 0, "ScaledExpmCache: matrix must be non-empty");
  KIBAMRM_REQUIRE(a.rows() >= a.cols(),
                  "ScaledExpmCache: matrix must be square or tall "
                  "(missing trailing columns are zero)");
  if (a.rows() == a.cols()) {
    a_ = a;
  } else {
    // Embed the tall matrix into the square frame; the padded columns stay
    // zero (the augmented-Hessenberg layout of the Krylov backend).
    a_ = DenseReal(a.rows(), a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t j = 0; j < a.cols(); ++j) a_(i, j) = a(i, j);
    }
  }
  norm_ = a_.norm1();
  prescale_ = prescale_factor(norm_);
  if (prescale_ != 1.0) {
    a_ = a_.scaled(1.0 / prescale_);
    norm_ /= prescale_;
  }
  a2_ = a_ * a_;
  a4_ = a2_ * a2_;
  a6_ = a2_ * a4_;
}

DenseReal ScaledExpmCache::expm(double s) const {
  ++evaluations_;
  return pade13_scaled(a_, a2_, a4_, a6_, norm_, s * prescale_);
}

}  // namespace kibamrm::linalg
